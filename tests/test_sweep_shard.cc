// Distributed sweep sharding: the shard round-trip locked in end to end.
// The assignment rule partitions the grid; runShard() uses the exact
// per-point seeds of the full run; shard files serialize/parse
// losslessly; merging reassembles input-order results byte-identical to
// the single-machine sweep (the correctness oracle is resultFingerprint,
// same as the determinism goldens); and the merge rejects overlapping,
// missing, or mismatched shards instead of silently mis-assembling.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/sweep_shard.h"

namespace homa {
namespace {

// ------------------------------------------------------ shard assignment

TEST(ShardSpec, ParseAcceptsIOverN) {
    ShardSpec s;
    ASSERT_TRUE(parseShardSpec("0/3", s));
    EXPECT_EQ(s.index, 0);
    EXPECT_EQ(s.count, 3);
    ASSERT_TRUE(parseShardSpec("2/3", s));
    EXPECT_EQ(s.index, 2);
    ASSERT_TRUE(parseShardSpec("0/1", s));
    EXPECT_EQ(s.count, 1);
}

TEST(ShardSpec, ParseRejectsMalformedSpecs) {
    ShardSpec s{7, 9};
    for (const char* bad : {"", "/", "1/", "/3", "3/3", "4/3", "-1/3",
                            "a/3", "1/b", "1/0", "1/-2", "1.5/3", "1/3x"}) {
        EXPECT_FALSE(parseShardSpec(bad, s)) << bad;
        // A failed parse leaves the spec untouched.
        EXPECT_EQ(s.index, 7) << bad;
        EXPECT_EQ(s.count, 9) << bad;
    }
}

TEST(ShardSpec, ValidateCatchesBadSpecs) {
    EXPECT_EQ(validateShardSpec({0, 1}), nullptr);
    EXPECT_EQ(validateShardSpec({2, 3}), nullptr);
    EXPECT_NE(validateShardSpec({0, 0}), nullptr);
    EXPECT_NE(validateShardSpec({3, 3}), nullptr);
    EXPECT_NE(validateShardSpec({-1, 3}), nullptr);
}

TEST(ShardSpec, AssignmentPartitionsEveryGrid) {
    // Every point owned by exactly one shard, and shardPointIndices
    // matches shardOwns — including count > totalPoints (empty shards).
    for (const uint64_t total : {0u, 1u, 5u, 12u, 13u}) {
        for (const int count : {1, 2, 3, 5, 17}) {
            std::vector<int> owners(total, 0);
            for (int k = 0; k < count; k++) {
                for (uint64_t i : shardPointIndices({k, count}, total)) {
                    ASSERT_LT(i, total);
                    EXPECT_TRUE(shardOwns({k, count}, i));
                    owners[i]++;
                }
            }
            for (uint64_t i = 0; i < total; i++) {
                EXPECT_EQ(owners[i], 1) << "point " << i << " of " << total
                                        << " over " << count << " shards";
            }
        }
    }
}

// --------------------------------------------------- file serialization

ShardFile sampleShardFile() {
    ShardFile f;
    f.sweep = "unit_test";
    f.shard = {1, 3};
    f.totalPoints = 7;
    f.baseSeed = 0xDEADBEEFCAFEF00Dull;  // > 2^53: must survive JSON
    f.deriveSeeds = true;
    f.threads = 4;
    f.wallSeconds = 1.25;
    f.serialWallSeconds = 3.5;
    f.identical = true;
    for (uint64_t i : {1u, 4u}) {
        ShardPoint p;
        p.index = i;
        p.seed = deriveSweepSeed(f.baseSeed, i);
        p.label = "label \"quoted\" \\ backslash";
        p.fingerprint = "generated=12;util=0x1.8p-1;";
        f.points.push_back(std::move(p));
    }
    return f;
}

TEST(ShardFileFormat, RoundTripsLosslessly) {
    const ShardFile f = sampleShardFile();
    std::string err;
    ShardFile back;
    ASSERT_TRUE(parseShardFile(writeShardFile(f), back, err)) << err;
    EXPECT_EQ(back.sweep, f.sweep);
    EXPECT_EQ(back.shard.index, f.shard.index);
    EXPECT_EQ(back.shard.count, f.shard.count);
    EXPECT_EQ(back.totalPoints, f.totalPoints);
    EXPECT_EQ(back.baseSeed, f.baseSeed);
    EXPECT_EQ(back.deriveSeeds, f.deriveSeeds);
    EXPECT_EQ(back.threads, f.threads);
    EXPECT_DOUBLE_EQ(back.wallSeconds, f.wallSeconds);
    EXPECT_DOUBLE_EQ(back.serialWallSeconds, f.serialWallSeconds);
    EXPECT_EQ(back.identical, f.identical);
    ASSERT_EQ(back.points.size(), f.points.size());
    for (size_t k = 0; k < f.points.size(); k++) {
        EXPECT_EQ(back.points[k].index, f.points[k].index);
        EXPECT_EQ(back.points[k].seed, f.points[k].seed);
        EXPECT_EQ(back.points[k].label, f.points[k].label);
        EXPECT_EQ(back.points[k].fingerprint, f.points[k].fingerprint);
    }
    EXPECT_EQ(sweepFingerprint(back.points), sweepFingerprint(f.points));
}

TEST(ShardFileFormat, ExtraRawFieldsSurviveParsing) {
    // The sweep_speedup bench splices its BENCH_sweep.json keys into the
    // same object; the parser must tolerate (and ignore) them.
    const ShardFile f = sampleShardFile();
    const std::string json = writeShardFile(f, benchCompatExtras(f));
    EXPECT_NE(json.find("\"speedup\""), std::string::npos);
    EXPECT_NE(json.find("\"results_identical_across_thread_counts\""),
              std::string::npos);
    std::string err;
    ShardFile back;
    ASSERT_TRUE(parseShardFile(json, back, err)) << err;
    EXPECT_EQ(back.points.size(), f.points.size());
}

TEST(ShardFileFormat, ControlCharactersInLabelsRoundTrip) {
    // jsonEscape writes control characters as \u00XX; the parser must
    // decode them back (writer and parser live in the same module — they
    // have to round-trip each other's output).
    ShardFile f = sampleShardFile();
    f.points[0].label = std::string("ctl:\x01\x1f") + "\n\ttail";
    std::string err;
    ShardFile back;
    ASSERT_TRUE(parseShardFile(writeShardFile(f), back, err)) << err;
    EXPECT_EQ(back.points[0].label, f.points[0].label);
}

TEST(ShardFileFormat, RejectsOversizedGrids) {
    // A corrupt/hostile total_points header must produce a parse error,
    // not drive the merge's slot allocation to std::bad_alloc.
    ShardFile f = sampleShardFile();
    const std::string good = writeShardFile(f);
    std::string bad = good;
    bad.replace(bad.find("\"total_points\": 7"),
                std::string("\"total_points\": 7").size(),
                "\"total_points\": 1000000000000000");
    std::string err;
    ShardFile out;
    EXPECT_FALSE(parseShardFile(bad, out, err));
    EXPECT_NE(err.find("total_points"), std::string::npos) << err;

    // Same guard on the in-memory merge path.
    f.totalPoints = 2'000'000;
    f.points.clear();
    ShardFile merged;
    EXPECT_FALSE(mergeShardFiles({f}, merged, err));
    EXPECT_NE(err.find("total_points"), std::string::npos) << err;
}

TEST(ShardFileFormat, RejectsCorruptInputs) {
    const ShardFile f = sampleShardFile();
    const std::string good = writeShardFile(f);
    std::string err;
    ShardFile out;
    EXPECT_FALSE(parseShardFile("not json", out, err));
    EXPECT_FALSE(parseShardFile("{}", out, err));

    // Wrong format string.
    std::string bad = good;
    bad.replace(bad.find("homa-sweep-shard-v1"),
                std::string("homa-sweep-shard-v1").size(),
                "homa-sweep-shard-v9");
    EXPECT_FALSE(parseShardFile(bad, out, err));

    // A point the declared shard does not own (index 2 for shard 1/3).
    bad = good;
    bad.replace(bad.find("\"index\": 1"), std::string("\"index\": 1").size(),
                "\"index\": 2");
    EXPECT_FALSE(parseShardFile(bad, out, err));
    EXPECT_NE(err.find("not owned"), std::string::npos) << err;

    // Tampered fingerprint no longer matches the recorded sweep hash.
    bad = good;
    const size_t fp = bad.find("generated=12");
    ASSERT_NE(fp, std::string::npos);
    bad.replace(fp, 12, "generated=13");
    EXPECT_FALSE(parseShardFile(bad, out, err));
    EXPECT_NE(err.find("sweep_fingerprint"), std::string::npos) << err;
}

TEST(ShardManifest, RoundTripsAndValidates) {
    ShardManifest m;
    m.sweep = "sweep_speedup";
    m.totalPoints = 12;
    m.shardCount = 5;  // shards 3 and 4 hold 2 points, the rest 3
    m.baseSeed = 99;
    m.deriveSeeds = true;
    const std::string json = writeShardManifest(m);
    EXPECT_NE(json.find("--shard=4/5"), std::string::npos);

    std::string err;
    ShardManifest back;
    ASSERT_TRUE(parseShardManifest(json, back, err)) << err;
    EXPECT_EQ(back.sweep, m.sweep);
    EXPECT_EQ(back.totalPoints, m.totalPoints);
    EXPECT_EQ(back.shardCount, m.shardCount);
    EXPECT_EQ(back.baseSeed, m.baseSeed);
    EXPECT_EQ(back.deriveSeeds, m.deriveSeeds);

    // A manifest whose shards list disagrees with the positional rule is
    // rejected (hand-edited plans must not silently reshuffle points).
    std::string bad = json;
    const size_t pts = bad.find("\"points\": [4, 9]");
    ASSERT_NE(pts, std::string::npos);
    bad.replace(pts, std::string("\"points\": [4, 9]").size(),
                "\"points\": [4, 10]");
    EXPECT_FALSE(parseShardManifest(bad, back, err));

    EXPECT_FALSE(parseShardManifest("{\"format\": \"nope\"}", back, err));

    // Manifest <-> shard-file agreement.
    ShardFile f;
    f.sweep = m.sweep;
    f.shard = {0, 5};
    f.totalPoints = 12;
    f.baseSeed = 99;
    f.deriveSeeds = true;
    EXPECT_TRUE(shardMatchesManifest(m, f, err)) << err;
    f.baseSeed = 100;
    EXPECT_FALSE(shardMatchesManifest(m, f, err));
}

// ------------------------------------- merge correctness and rejection

/// Builds shard files for `count` shards of a synthetic 7-point sweep
/// without running experiments (fingerprints are synthetic strings).
std::vector<ShardFile> syntheticShards(int count, uint64_t total = 7) {
    std::vector<ShardFile> out;
    for (int k = 0; k < count; k++) {
        ShardFile f;
        f.sweep = "synthetic";
        f.shard = {k, count};
        f.totalPoints = total;
        f.baseSeed = 42;
        f.deriveSeeds = true;
        f.threads = 2;
        f.wallSeconds = 1.0 + k;
        f.identical = true;
        for (uint64_t i : shardPointIndices({k, count}, total)) {
            ShardPoint p;
            p.index = i;
            p.seed = deriveSweepSeed(42, i);
            p.label = "pt" + std::to_string(i);
            p.fingerprint = "fp-" + std::to_string(i) + ";";
            f.points.push_back(std::move(p));
        }
        out.push_back(std::move(f));
    }
    return out;
}

TEST(ShardMerge, ReassemblesInputOrderFromAnyInputOrder) {
    std::vector<ShardFile> shards = syntheticShards(3);
    // Present the shards out of order: merge output must not care.
    std::swap(shards[0], shards[2]);
    ShardFile merged;
    std::string err;
    ASSERT_TRUE(mergeShardFiles(shards, merged, err)) << err;
    ASSERT_EQ(merged.points.size(), 7u);
    for (uint64_t i = 0; i < 7; i++) {
        EXPECT_EQ(merged.points[i].index, i);
        EXPECT_EQ(merged.points[i].fingerprint,
                  "fp-" + std::to_string(i) + ";");
    }
    EXPECT_EQ(merged.shard.index, 0);
    EXPECT_EQ(merged.shard.count, 1);
    // Max over shards: machines run concurrently.
    EXPECT_DOUBLE_EQ(merged.wallSeconds, 3.0);
    EXPECT_EQ(merged.threads, 6);
    // Identical fingerprint to the same points assembled directly.
    EXPECT_EQ(sweepFingerprint(merged.points),
              sweepFingerprint(syntheticShards(1)[0].points));
}

TEST(ShardMerge, SingleShardAndEmptyShardsMerge) {
    // 1 shard: the merge is the identity.
    ShardFile merged;
    std::string err;
    ASSERT_TRUE(mergeShardFiles(syntheticShards(1), merged, err)) << err;
    EXPECT_EQ(merged.points.size(), 7u);

    // More shards than points: shards 3.. are legitimately empty, and the
    // merge still covers the grid.
    const std::vector<ShardFile> sparse = syntheticShards(5, 3);
    EXPECT_TRUE(sparse[3].points.empty());
    EXPECT_TRUE(sparse[4].points.empty());
    ASSERT_TRUE(mergeShardFiles(sparse, merged, err)) << err;
    EXPECT_EQ(merged.points.size(), 3u);
}

TEST(ShardMerge, RejectsOverlapGapsAndMismatches) {
    const std::vector<ShardFile> shards = syntheticShards(3);
    ShardFile merged;
    std::string err;

    // Overlap: the same shard presented twice.
    std::vector<ShardFile> twice = {shards[0], shards[1], shards[1]};
    EXPECT_FALSE(mergeShardFiles(twice, merged, err));
    EXPECT_NE(err.find("overlapping"), std::string::npos) << err;

    // Overlapping *points* from a hand-built file that duplicates
    // another shard's point under its own (valid) ownership: simulate by
    // mutating shard 1 to count=3/index=1 but with shard 0's point 0
    // relabelled — ownership check in merge catches index collisions via
    // the duplicate-slot rule when counts differ. Simpler: a shard with
    // count mismatch is itself rejected.
    std::vector<ShardFile> mismatched = {shards[0], shards[1],
                                         syntheticShards(4)[3]};
    EXPECT_FALSE(mergeShardFiles(mismatched, merged, err));
    EXPECT_NE(err.find("shard_count"), std::string::npos) << err;

    // Gap: a missing shard.
    std::vector<ShardFile> incomplete = {shards[0], shards[2]};
    EXPECT_FALSE(mergeShardFiles(incomplete, merged, err));
    EXPECT_NE(err.find("missing"), std::string::npos) << err;

    // Header mismatches.
    std::vector<ShardFile> wrongSeed = shards;
    wrongSeed[1].baseSeed = 43;
    EXPECT_FALSE(mergeShardFiles(wrongSeed, merged, err));

    std::vector<ShardFile> wrongSweep = shards;
    wrongSweep[2].sweep = "other";
    EXPECT_FALSE(mergeShardFiles(wrongSweep, merged, err));

    std::vector<ShardFile> wrongTotal = shards;
    wrongTotal[0].totalPoints = 8;
    EXPECT_FALSE(mergeShardFiles(wrongTotal, merged, err));

    // An invalid in-memory shard spec is rejected before any indexing
    // (no file parser ran to catch it earlier).
    std::vector<ShardFile> badSpec = shards;
    badSpec[1].shard.index = 5;  // >= count
    EXPECT_FALSE(mergeShardFiles(badSpec, merged, err));

    EXPECT_FALSE(mergeShardFiles({}, merged, err));
}

// --------------------------- the oracle: sharded == single-machine run

ExperimentConfig tinyConfig(WorkloadId wl, double load, Protocol kind) {
    ExperimentConfig cfg;
    cfg.net = NetworkConfig::singleRack16();
    cfg.proto.kind = kind;
    cfg.traffic.workload = wl;
    cfg.traffic.load = load;
    cfg.traffic.stop = milliseconds(1);
    cfg.drainGrace = milliseconds(10);
    return cfg;
}

std::vector<ExperimentConfig> tinyGrid() {
    std::vector<ExperimentConfig> points;
    points.push_back(tinyConfig(WorkloadId::W1, 0.5, Protocol::Homa));
    points.push_back(tinyConfig(WorkloadId::W2, 0.6, Protocol::Homa));
    points.push_back(tinyConfig(WorkloadId::W1, 0.5, Protocol::PFabric));
    points.push_back(tinyConfig(WorkloadId::W2, 0.4, Protocol::Pias));
    points.push_back(tinyConfig(WorkloadId::W3, 0.5, Protocol::Homa));
    return points;
}

TEST(ShardMerge, MergedShardsReproduceSingleMachineFingerprints) {
    SweepOptions opts;
    opts.deriveSeeds = true;
    opts.baseSeed = 7;
    opts.threads = 2;
    const std::vector<ExperimentConfig> grid = tinyGrid();

    // The single-machine reference run.
    const SweepOutcome full = SweepRunner(opts).run(grid);
    std::vector<ShardPoint> reference;
    for (size_t i = 0; i < full.results.size(); i++) {
        ShardPoint p;
        p.index = i;
        p.seed = deriveSweepSeed(opts.baseSeed, i);
        p.fingerprint = resultFingerprint(full.results[i]);
        reference.push_back(std::move(p));
    }

    // Three shards, run independently, serialized and parsed back (the
    // full cross-machine round trip), then merged out of order.
    std::vector<ShardFile> files;
    for (int k : {2, 0, 1}) {
        const ShardOutcome out =
            SweepRunner(opts).runShard(grid, {k, 3});
        // The shard ran with the exact seeds of the full run.
        for (size_t j = 0; j < out.indices.size(); j++) {
            EXPECT_EQ(out.seeds[j],
                      deriveSweepSeed(opts.baseSeed, out.indices[j]));
        }
        const ShardFile f =
            shardFileFromOutcome("tiny", opts, {k, 3}, out, {});
        std::string err;
        ShardFile parsed;
        ASSERT_TRUE(parseShardFile(writeShardFile(f), parsed, err)) << err;
        files.push_back(std::move(parsed));
    }
    ShardFile merged;
    std::string err;
    ASSERT_TRUE(mergeShardFiles(files, merged, err)) << err;

    // Byte-for-byte: every per-point fingerprint and the whole-sweep
    // fingerprint match the unsharded run.
    ASSERT_EQ(merged.points.size(), reference.size());
    for (size_t i = 0; i < reference.size(); i++) {
        EXPECT_EQ(merged.points[i].index, reference[i].index);
        EXPECT_EQ(merged.points[i].seed, reference[i].seed);
        EXPECT_EQ(merged.points[i].fingerprint, reference[i].fingerprint)
            << "point " << i;
    }
    EXPECT_EQ(sweepFingerprint(merged.points), sweepFingerprint(reference));
}

TEST(ShardMerge, SingleShardRunEqualsFullRun) {
    SweepOptions opts;
    opts.deriveSeeds = true;
    opts.baseSeed = 11;
    opts.threads = 2;
    std::vector<ExperimentConfig> grid = tinyGrid();
    grid.resize(2);  // keep this variant cheap

    const SweepOutcome full = SweepRunner(opts).run(grid);
    const ShardOutcome whole = SweepRunner(opts).runShard(grid, {0, 1});
    ASSERT_EQ(whole.results.size(), full.results.size());
    for (size_t i = 0; i < full.results.size(); i++) {
        EXPECT_EQ(resultFingerprint(whole.results[i]),
                  resultFingerprint(full.results[i]));
    }

    // An empty shard of the same grid (more shards than points).
    const ShardOutcome empty = SweepRunner(opts).runShard(grid, {2, 3});
    EXPECT_TRUE(empty.results.empty());
    EXPECT_EQ(empty.totalPoints, grid.size());
}

// ----------------------------------------------------- CLI round trip

#ifdef HOMA_SWEEP_SHARD_BIN

std::string tmpPath(const std::string& name) {
    return testing::TempDir() + "sweep_shard_" + name;
}

void writeFileOrDie(const std::string& path, const std::string& text) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << path;
    out << text;
}

int runTool(const std::string& args) {
    const std::string cmd = std::string(HOMA_SWEEP_SHARD_BIN) + " " + args +
                            " > /dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(SweepShardCli, PlanMergeVerifyRoundTrip) {
    const std::string manifest = tmpPath("manifest.json");
    EXPECT_EQ(runTool("plan --sweep synthetic --points 7 --shards 3 "
                      "--base-seed 42 --derive-seeds --out " + manifest),
              0);
    std::string text, err;
    {
        std::ifstream in(manifest);
        ASSERT_TRUE(in);
        std::stringstream buf;
        buf << in.rdbuf();
        text = buf.str();
    }
    ShardManifest m;
    ASSERT_TRUE(parseShardManifest(text, m, err)) << err;
    EXPECT_EQ(m.shardCount, 3);

    const std::vector<ShardFile> shards = syntheticShards(3);
    std::vector<std::string> paths;
    for (int k = 0; k < 3; k++) {
        paths.push_back(tmpPath("shard" + std::to_string(k) + ".json"));
        writeFileOrDie(paths[k], writeShardFile(shards[k]));
    }
    ShardFile wholeFile;  // the "unsharded reference": same points, 1 shard
    std::string errMerge;
    ASSERT_TRUE(mergeShardFiles(shards, wholeFile, errMerge)) << errMerge;
    const std::string reference = tmpPath("reference.json");
    writeFileOrDie(reference, writeShardFile(wholeFile));

    const std::string merged = tmpPath("merged.json");
    EXPECT_EQ(runTool("merge --manifest " + manifest + " --out " + merged +
                      " --verify-against " + reference + " " + paths[2] +
                      " " + paths[0] + " " + paths[1]),
              0);
    EXPECT_EQ(runTool("fingerprint " + merged), 0);

    // Overlap (a shard twice) and gaps (a shard missing) fail.
    EXPECT_EQ(runTool("merge " + paths[0] + " " + paths[1] + " " + paths[1]),
              1);
    EXPECT_EQ(runTool("merge " + paths[0] + " " + paths[1]), 1);

    // A diverging reference is detected.
    ShardFile tampered = wholeFile;
    tampered.points[3].fingerprint = "fp-changed;";
    const std::string bad = tmpPath("tampered.json");
    writeFileOrDie(bad, writeShardFile(tampered));
    EXPECT_EQ(runTool("merge --verify-against " + bad + " " + paths[0] +
                      " " + paths[1] + " " + paths[2]),
              1);
}

#endif  // HOMA_SWEEP_SHARD_BIN

}  // namespace
}  // namespace homa
