// Scenario engine tests: per-pattern load calibration (generated wire
// bytes track the requested load fraction) and destination-histogram
// sanity checks against each pattern's declared traffic matrix.
#include <gtest/gtest.h>

#include <map>

#include "sim/network.h"
#include "workload/generator.h"

namespace homa {
namespace {

// Swallows every message: pattern tests only need the generation side, so
// runs cost one event per message instead of a full protocol simulation.
class SinkTransport final : public Transport {
public:
    void sendMessage(const Message&) override {}
    void handlePacket(const Packet&) override {}
};

struct GenRun {
    std::vector<Message> msgs;
    int hostCount = 0;
    int perRack = 0;
    int64_t wireBytes = 0;
    double offeredFraction = 0;  // wire bytes / aggregate link capacity
    double lineBytes = 0;        // one host link's capacity over the window
};

GenRun generate(const ScenarioConfig& scenario, double load = 0.6,
                Duration window = milliseconds(1),
                WorkloadId wl = WorkloadId::W1, uint64_t seed = 99) {
    NetworkConfig netCfg = NetworkConfig::fatTree144();
    Network net(netCfg,
                [](HostServices&) { return std::make_unique<SinkTransport>(); });
    TrafficConfig cfg;
    cfg.workload = wl;
    cfg.load = load;
    cfg.stop = window;
    cfg.seed = seed;
    cfg.scenario = scenario;
    GenRun run;
    run.hostCount = net.hostCount();
    run.perRack = netCfg.hostsPerRack;
    TrafficGenerator gen(net, cfg, [&](const Message& m) {
        run.msgs.push_back(m);
        run.wireBytes += messageWireBytes(m.length);
    });
    gen.start();
    net.loop().runUntil(window);
    run.lineBytes = toSeconds(window) * 1e12 /
                    static_cast<double>(netCfg.hostLink.psPerByte);
    run.offeredFraction = static_cast<double>(run.wireBytes) /
                          (run.lineBytes * static_cast<double>(run.hostCount));
    return run;
}

ScenarioConfig scenarioOf(TrafficPatternKind kind) {
    ScenarioConfig s;
    s.kind = kind;
    return s;
}

// --- Load calibration: every Poisson pattern must offer the requested ---
// --- fraction of aggregate host-link bandwidth, within 2%.            ---

class PatternCalibration
    : public ::testing::TestWithParam<TrafficPatternKind> {};

TEST_P(PatternCalibration, WireBytesMatchRequestedLoad) {
    const double load = 0.6;
    GenRun run = generate(scenarioOf(GetParam()), load);
    ASSERT_GT(run.msgs.size(), 10000u);
    EXPECT_NEAR(run.offeredFraction, load, 0.02 * load)
        << patternName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllPoisson, PatternCalibration,
    ::testing::Values(TrafficPatternKind::Uniform,
                      TrafficPatternKind::Permutation,
                      TrafficPatternKind::RackSkew, TrafficPatternKind::Incast,
                      TrafficPatternKind::ParetoSenders),
    [](const auto& info) {
        std::string n = patternName(info.param);
        std::replace(n.begin(), n.end(), '-', '_');
        return n;
    });

// --- Destination histograms: each pattern's declared matrix. ---

TEST(TrafficPatterns, UniformDestinationsAreBalanced) {
    GenRun run = generate(scenarioOf(TrafficPatternKind::Uniform));
    std::vector<int64_t> perDst(run.hostCount, 0);
    for (const Message& m : run.msgs) {
        ASSERT_NE(m.src, m.dst);
        perDst[m.dst]++;
    }
    // Chi-square-style sanity: every destination within 20% of the mean
    // (expected count per dst is ~2.5k; 20% is many standard deviations).
    const double mean = static_cast<double>(run.msgs.size()) /
                        static_cast<double>(run.hostCount);
    for (int h = 0; h < run.hostCount; h++) {
        EXPECT_GT(static_cast<double>(perDst[h]), 0.8 * mean) << "host " << h;
        EXPECT_LT(static_cast<double>(perDst[h]), 1.2 * mean) << "host " << h;
    }
}

TEST(TrafficPatterns, PermutationIsAFixedDerangement) {
    GenRun run = generate(scenarioOf(TrafficPatternKind::Permutation));
    std::map<HostId, HostId> dstOf;
    for (const Message& m : run.msgs) {
        ASSERT_NE(m.src, m.dst);
        auto [it, inserted] = dstOf.emplace(m.src, m.dst);
        EXPECT_EQ(it->second, m.dst) << "src " << m.src << " changed target";
    }
    // Every host sends, and every host receives from exactly one sender.
    EXPECT_EQ(dstOf.size(), static_cast<size_t>(run.hostCount));
    std::vector<int> inDegree(run.hostCount, 0);
    for (const auto& [src, dst] : dstOf) inDegree[dst]++;
    for (int h = 0; h < run.hostCount; h++) EXPECT_EQ(inDegree[h], 1);
}

TEST(TrafficPatterns, RackSkewKeepsTheDeclaredLocalFraction) {
    ScenarioConfig s = scenarioOf(TrafficPatternKind::RackSkew);
    s.rackLocalFraction = 0.8;
    GenRun run = generate(s);
    int64_t local = 0;
    for (const Message& m : run.msgs) {
        if (m.src / run.perRack == m.dst / run.perRack) local++;
    }
    // The uniform remainder also lands intra-rack occasionally.
    const double expected =
        s.rackLocalFraction +
        (1 - s.rackLocalFraction) * static_cast<double>(run.perRack - 1) /
            static_cast<double>(run.hostCount - 1);
    EXPECT_NEAR(static_cast<double>(local) /
                    static_cast<double>(run.msgs.size()),
                expected, 0.01);
}

TEST(TrafficPatterns, IncastConcentratesOnHotReceivers) {
    ScenarioConfig s = scenarioOf(TrafficPatternKind::Incast);
    s.hotspots = 2;
    s.hotspotDegree = 16;
    s.hotspotFraction = 1.0;
    GenRun run = generate(s);
    // Hot receivers are hosts [0, hotspots); their fan-in senders are the
    // next hotspots*degree hosts, round-robin. With fraction 1, every
    // group sender aims only at its own hotspot.
    std::vector<int64_t> perDst(run.hostCount, 0);
    int64_t fromGroupSenders = 0, groupToOwnHotspot = 0;
    for (const Message& m : run.msgs) {
        perDst[m.dst]++;
        const int i = m.src - s.hotspots;
        if (m.src >= s.hotspots && i < s.hotspots * s.hotspotDegree) {
            fromGroupSenders++;
            if (m.dst == i % s.hotspots) groupToOwnHotspot++;
        }
    }
    EXPECT_GT(fromGroupSenders, 0);
    EXPECT_EQ(groupToOwnHotspot, fromGroupSenders);
    // Each hotspot draws ~degree/hostCount of all traffic vs ~1/hostCount
    // for a background host: a huge concentration factor.
    const double mean = static_cast<double>(run.msgs.size()) /
                        static_cast<double>(run.hostCount);
    for (int h = 0; h < s.hotspots; h++) {
        EXPECT_GT(static_cast<double>(perDst[h]), 8 * mean) << "hotspot " << h;
    }
}

TEST(TrafficPatterns, ParetoSkewsSenderPopularity) {
    ScenarioConfig s = scenarioOf(TrafficPatternKind::ParetoSenders);
    s.paretoAlpha = 1.2;
    // Low load: the line-rate water-filling cap (1/load = 10x the mean
    // sender) barely binds, so the raw rank^-1.2 skew is visible.
    GenRun run = generate(s, /*load=*/0.1, milliseconds(3));
    std::vector<int64_t> perSrc(run.hostCount, 0);
    for (const Message& m : run.msgs) perSrc[m.src]++;
    std::sort(perSrc.begin(), perSrc.end(), std::greater<>());
    // rank^-1.2 weights: the most popular sender should carry many times
    // the median sender's traffic, and the top decile a large share.
    ASSERT_GT(perSrc[run.hostCount / 2], 0);
    EXPECT_GT(perSrc[0], 10 * perSrc[run.hostCount / 2]);
    int64_t top = 0, total = 0;
    for (int i = 0; i < run.hostCount; i++) {
        if (i < run.hostCount / 10) top += perSrc[i];
        total += perSrc[i];
    }
    EXPECT_GT(static_cast<double>(top), 0.5 * static_cast<double>(total));
}

TEST(TrafficPatterns, ParetoWaterFillingCapsTopSendersAtLineRate) {
    ScenarioConfig s = scenarioOf(TrafficPatternKind::ParetoSenders);
    s.paretoAlpha = 1.2;
    const double load = 0.6;
    GenRun run = generate(s, load, milliseconds(2));
    // Raw rank^-1.2 weights would give the top sender ~38x the mean rate
    // (~19x its line rate at 60% load). Water-filling must cap every
    // sender's offered wire bytes at ~its line-rate share of the window,
    // while keeping the aggregate calibrated (checked by calibration
    // tests). Poisson arrivals + the size tail put ~±20% noise on one
    // sender's short-window bytes; 1.3x still decisively rejects the
    // uncapped ~19x demand.
    std::vector<int64_t> bytesBySrc(run.hostCount, 0);
    for (const Message& m : run.msgs) {
        bytesBySrc[m.src] += messageWireBytes(m.length);
    }
    for (int h = 0; h < run.hostCount; h++) {
        EXPECT_LT(static_cast<double>(bytesBySrc[h]), 1.3 * run.lineBytes)
            << "sender " << h;
    }
    // And the cap must actually bind: some senders sit at ~line rate.
    std::sort(bytesBySrc.begin(), bytesBySrc.end(), std::greater<>());
    EXPECT_GT(static_cast<double>(bytesBySrc[0]), 0.8 * run.lineBytes);
}

// --- ON-OFF modulation: bursts, idle periods, calibrated average. ---

TEST(OnOffArrivals, AggregateLoadStaysCalibrated) {
    // ON at 4x the average rate for ~a quarter of the time: the long-run
    // offered load must still track the request. Short periods give each
    // host ~20 cycles in the window, so the duty-cycle estimate averages
    // out across 144 hosts; the tolerance is looser than the Poisson
    // patterns' ±2% because period randomness adds variance.
    ScenarioConfig s = scenarioOf(TrafficPatternKind::Uniform);
    s.onOff.enabled = true;
    s.onOff.onMean = microseconds(50);
    s.onOff.offMean = microseconds(150);
    const double load = 0.6;
    GenRun run = generate(s, load, milliseconds(4));
    ASSERT_GT(run.msgs.size(), 10000u);
    EXPECT_NEAR(run.offeredFraction, load, 0.05 * load);
}

TEST(OnOffArrivals, ParetoPeriodsStayRoughlyCalibrated) {
    ScenarioConfig s = scenarioOf(TrafficPatternKind::Uniform);
    s.onOff.enabled = true;
    s.onOff.onMean = microseconds(50);
    s.onOff.offMean = microseconds(150);
    s.onOff.dist = OnOffDist::Pareto;
    s.onOff.paretoShape = 2.5;
    const double load = 0.6;
    GenRun run = generate(s, load, milliseconds(4));
    ASSERT_GT(run.msgs.size(), 10000u);
    // Heavy-tailed periods converge slower; a 10% band still rejects a
    // mis-scaled burst rate (which would miss by 4x).
    EXPECT_NEAR(run.offeredFraction, load, 0.10 * load);
}

TEST(OnOffArrivals, ComposesWithSkewedPatterns) {
    // The modulator must not disturb the pattern's traffic matrix: incast
    // group senders still aim at their hotspot.
    ScenarioConfig s = scenarioOf(TrafficPatternKind::Incast);
    s.hotspots = 2;
    s.hotspotDegree = 16;
    s.hotspotFraction = 1.0;
    s.onOff.enabled = true;
    GenRun run = generate(s, 0.6, milliseconds(2));
    ASSERT_GT(run.msgs.size(), 1000u);
    for (const Message& m : run.msgs) {
        const int i = m.src - s.hotspots;
        if (m.src >= s.hotspots && i < s.hotspots * s.hotspotDegree) {
            EXPECT_EQ(m.dst, i % s.hotspots);
        }
    }
}

TEST(OnOffArrivals, ArrivalsAreActuallyBursty) {
    // A single host's arrival sequence must alternate dense bursts and
    // long silences: its largest inter-arrival gap dwarfs its mean gap,
    // unlike the unmodulated Poisson process at the same average rate.
    ScenarioConfig plain = scenarioOf(TrafficPatternKind::Uniform);
    ScenarioConfig bursty = plain;
    bursty.onOff.enabled = true;
    bursty.onOff.onMean = microseconds(50);
    bursty.onOff.offMean = microseconds(300);
    auto maxToMeanGap = [](const GenRun& run) {
        std::vector<Time> at;
        for (const Message& m : run.msgs) {
            if (m.src == 0) at.push_back(m.created);
        }
        EXPECT_GT(at.size(), 50u);
        Duration maxGap = 0;
        for (size_t i = 1; i < at.size(); i++) {
            maxGap = std::max(maxGap, at[i] - at[i - 1]);
        }
        const double meanGap = toSeconds(at.back() - at.front()) /
                               static_cast<double>(at.size() - 1);
        return toSeconds(maxGap) / meanGap;
    };
    const double plainRatio = maxToMeanGap(generate(plain, 0.6, milliseconds(4)));
    const double burstyRatio =
        maxToMeanGap(generate(bursty, 0.6, milliseconds(4)));
    EXPECT_GT(burstyRatio, 3.0 * plainRatio);
}

TEST(OnOffArrivals, SpecParsing) {
    ScenarioConfig s;
    ASSERT_TRUE(scenarioFromSpec("incast+on-off", s));
    EXPECT_EQ(s.kind, TrafficPatternKind::Incast);
    EXPECT_TRUE(s.onOff.enabled);
    ASSERT_TRUE(scenarioFromSpec("closed-loop", s));
    EXPECT_EQ(s.kind, TrafficPatternKind::ClosedLoop);
    EXPECT_FALSE(s.onOff.enabled);
    // DAG specs carry parameters — the only pattern that takes them.
    ASSERT_TRUE(scenarioFromSpec("dag:fanout=40,depth=2+on-off", s));
    EXPECT_EQ(s.kind, TrafficPatternKind::Dag);
    EXPECT_TRUE(s.onOff.enabled);
    EXPECT_EQ(s.dag.fanout, 40);
    EXPECT_EQ(s.dag.depth, 2);
    ASSERT_TRUE(scenarioFromSpec("dag", s));
    EXPECT_EQ(s.kind, TrafficPatternKind::Dag);
    EXPECT_FALSE(s.onOff.enabled);
    ScenarioConfig untouched;
    untouched.kind = TrafficPatternKind::RackSkew;
    EXPECT_FALSE(scenarioFromSpec("bogus+on-off", untouched));
    EXPECT_FALSE(scenarioFromSpec("uniform+onoff", untouched));
    EXPECT_FALSE(scenarioFromSpec("", untouched));
    EXPECT_FALSE(scenarioFromSpec("dag:fanout=0", untouched));
    EXPECT_FALSE(scenarioFromSpec("uniform:fanout=2", untouched));
    EXPECT_EQ(untouched.kind, TrafficPatternKind::RackSkew);
}

TEST(ServingSpecSegments, TenantsAndReplicasParseAndRoundTrip) {
    // The '+tenants:'/'+replicas:' scenario modifiers route through the
    // same parsers as the --tenants/--replicas flags; the parsed configs
    // must survive the canonical-string round trip.
    ScenarioConfig s;
    ASSERT_TRUE(scenarioFromSpec(
        "uniform+tenants:name=web,wl=W1,load=0.6,clients=4;"
        "name=batch,wl=W5,mode=closed,window=8,clients=2,group=bulk"
        "+replicas:name=fast,n=2,lb=p2c,hedge=p95,hedge_floor_us=20,"
        "hedge_min=32;name=bulk,n=0,lb=rr", s));
    ASSERT_TRUE(s.serving.enabled());
    ASSERT_EQ(s.serving.tenants.size(), 2u);
    ASSERT_EQ(s.serving.groups.size(), 2u);
    EXPECT_EQ(s.serving.tenants[0].name, "web");
    EXPECT_EQ(s.serving.tenants[1].group, "bulk");
    EXPECT_EQ(s.serving.groups[0].policy, LbPolicy::PowerOfTwo);
    EXPECT_DOUBLE_EQ(s.serving.groups[0].hedgePercentile, 0.95);

    ScenarioConfig again;
    ASSERT_TRUE(scenarioFromSpec(
        "uniform+tenants:" + tenantsSpecToString(s.serving.tenants) +
        "+replicas:" + replicasSpecToString(s.serving.groups), again));
    EXPECT_EQ(tenantsSpecToString(again.serving.tenants),
              tenantsSpecToString(s.serving.tenants));
    EXPECT_EQ(replicasSpecToString(again.serving.groups),
              replicasSpecToString(s.serving.groups));

    // Serving composes with topology segments — the spec carries both.
    ASSERT_TRUE(scenarioFromSpec(
        "uniform+tenants:name=a,wl=W1,load=0.5,clients=4+topo:racks=2,"
        "hosts=8", s));
    ASSERT_TRUE(s.serving.enabled());
}

TEST(ServingSpecSegments, RejectionsNameTheConflict) {
    struct Case {
        const char* spec;
        const char* expect;
    };
    const Case cases[] = {
        {"tenants:name=a,clients=4", "cannot come first"},
        {"replicas:name=pool", "cannot come first"},
        {"uniform+replicas:name=pool",
         "requires a tenants: segment"},
        {"incast+tenants:name=a,clients=4",
         "require the 'uniform' pattern placeholder"},
        {"uniform+tenants:name=a,clients=4+tenants:name=b,clients=2",
         "at most one tenants: segment"},
        {"uniform+tenants:bogus", "bad tenants spec"},
        {"uniform+tenants:name=a,clients=4+replicas:lb=p2c",
         "bad replicas spec"},
        {"uniform+on-off+tenants:name=a,clients=4",
         "do not compose with on-off"},
        {"uniform+fault:flap=aggr0,at=1ms,for=1ms+tenants:name=a,clients=4",
         "do not compose with fault injection"},
        {"uniform+fluid:20000+tenants:name=a,clients=4",
         "do not compose with fluid"},
        {"uniform+tenants:name=a,clients=4,group=nowhere",
         "references unknown replica group"},
    };
    for (const Case& c : cases) {
        ScenarioConfig untouched;
        untouched.kind = TrafficPatternKind::RackSkew;
        std::string err;
        EXPECT_FALSE(scenarioFromSpec(c.spec, untouched, &err)) << c.spec;
        EXPECT_NE(err.find(c.expect), std::string::npos)
            << c.spec << " gave: " << err;
        EXPECT_EQ(untouched.kind, TrafficPatternKind::RackSkew);
        EXPECT_FALSE(untouched.serving.enabled());
    }
}

TEST(OnOffArrivals, DistNamesRoundTrip) {
    for (OnOffDist d : {OnOffDist::Exponential, OnOffDist::Pareto}) {
        OnOffDist parsed;
        ASSERT_TRUE(onOffDistFromName(onOffDistName(d), parsed));
        EXPECT_EQ(parsed, d);
    }
    OnOffDist unchanged = OnOffDist::Exponential;
    EXPECT_FALSE(onOffDistFromName("weibull", unchanged));
    EXPECT_EQ(unchanged, OnOffDist::Exponential);
}

// --- Trace replay: exact schedule, exact bytes. ---

TEST(TrafficPatterns, TraceReplayFollowsTheSchedule) {
    ScenarioConfig s;
    s.kind = TrafficPatternKind::TraceReplay;
    s.traceText =
        "# time_us src dst size\n"
        "10 3 7 1000\n"
        "5 1 2 500\n"       // out of order in the text: sorted by time
        "200 0 143 99999\n"
        "\n"
        "5000 2 1 400\n";   // beyond the 1 ms window: not replayed
    GenRun run = generate(s, /*load=*/0.6, milliseconds(1));
    ASSERT_EQ(run.msgs.size(), 3u);
    EXPECT_EQ(run.msgs[0].src, 1);
    EXPECT_EQ(run.msgs[0].dst, 2);
    EXPECT_EQ(run.msgs[0].length, 500u);
    EXPECT_EQ(run.msgs[0].created, microseconds(5));
    EXPECT_EQ(run.msgs[1].length, 1000u);
    EXPECT_EQ(run.msgs[1].created, microseconds(10));
    EXPECT_EQ(run.msgs[2].dst, 143);
    EXPECT_EQ(run.wireBytes, messageWireBytes(500) + messageWireBytes(1000) +
                                 messageWireBytes(99999));
}

TEST(TrafficPatterns, TraceParserHandlesCommentsAndSorting) {
    const std::vector<TraceRecord> recs = parseTrace(
        "# header comment\n"
        "2.5 0 1 100   # trailing comment\n"
        "1 1 0 200\n",
        /*hostCount=*/16);
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].at, microseconds(1));
    EXPECT_EQ(recs[0].size, 200u);
    EXPECT_EQ(recs[1].at, nanoseconds(2500));
    EXPECT_EQ(recs[1].src, 0);
}

TEST(TrafficPatterns, IncastClampsInfeasibleHotspotConfigs) {
    // 9 hotspots on a 16-host rack leaves fewer senders than hotspots:
    // the pattern must clamp to 8 hotspots with a 1-sender fan-in each
    // (not hit UB or degenerate to uniform).
    ScenarioConfig s = scenarioOf(TrafficPatternKind::Incast);
    s.hotspots = 9;
    s.hotspotDegree = 16;
    auto pattern = makeTrafficPattern(s, /*hostCount=*/16,
                                      /*hostsPerRack=*/16, /*seed=*/1);
    Rng rng(7);
    for (HostId src = 8; src < 16; src++) {
        EXPECT_EQ(pattern->pickDestination(src, rng), src - 8);
    }
}

TEST(TrafficPatternsDeathTest, TraceParserRejectsBadLines) {
    // Oversized size fields must be rejected, not silently truncated to
    // 32 bits; same for self-sends, short lines, and out-of-range hosts.
    EXPECT_EXIT(parseTrace("0 0 1 4294967297\n"),
                ::testing::ExitedWithCode(2), "trace line 1");
    EXPECT_EXIT(parseTrace("0 0 0 100\n"), ::testing::ExitedWithCode(2),
                "trace line 1");
    EXPECT_EXIT(parseTrace("5 0\n"), ::testing::ExitedWithCode(2),
                "trace line 1");
    EXPECT_EXIT(parseTrace("time src dst bytes\n0 0 1 100\n"),
                ::testing::ExitedWithCode(2), "trace line 1");
    EXPECT_EXIT(parseTrace("0 0 20 100\n", /*hostCount=*/16),
                ::testing::ExitedWithCode(2), "trace line 1");
}

TEST(TrafficPatterns, PatternNamesRoundTrip) {
    for (TrafficPatternKind kind :
         {TrafficPatternKind::Uniform, TrafficPatternKind::Permutation,
          TrafficPatternKind::RackSkew, TrafficPatternKind::Incast,
          TrafficPatternKind::ParetoSenders, TrafficPatternKind::TraceReplay,
          TrafficPatternKind::ClosedLoop}) {
        TrafficPatternKind parsed;
        ASSERT_TRUE(patternFromName(patternName(kind), parsed));
        EXPECT_EQ(parsed, kind);
    }
    TrafficPatternKind unchanged = TrafficPatternKind::Uniform;
    EXPECT_FALSE(patternFromName("no-such-pattern", unchanged));
    EXPECT_EQ(unchanged, TrafficPatternKind::Uniform);
}

// --- Seed behavior of the pattern layer. ---

TEST(TrafficPatterns, PatternsAreDeterministicGivenSeed) {
    for (TrafficPatternKind kind :
         {TrafficPatternKind::Permutation, TrafficPatternKind::Incast,
          TrafficPatternKind::ParetoSenders}) {
        GenRun a = generate(scenarioOf(kind), 0.4, microseconds(200));
        GenRun b = generate(scenarioOf(kind), 0.4, microseconds(200));
        ASSERT_EQ(a.msgs.size(), b.msgs.size()) << patternName(kind);
        for (size_t i = 0; i < a.msgs.size(); i++) {
            EXPECT_EQ(a.msgs[i].src, b.msgs[i].src);
            EXPECT_EQ(a.msgs[i].dst, b.msgs[i].dst);
            EXPECT_EQ(a.msgs[i].length, b.msgs[i].length);
            EXPECT_EQ(a.msgs[i].created, b.msgs[i].created);
        }
    }
}

TEST(TrafficPatterns, DifferentSeedsPickDifferentPermutations) {
    GenRun a = generate(scenarioOf(TrafficPatternKind::Permutation), 0.4,
                        microseconds(200), WorkloadId::W1, /*seed=*/1);
    GenRun b = generate(scenarioOf(TrafficPatternKind::Permutation), 0.4,
                        microseconds(200), WorkloadId::W1, /*seed=*/2);
    std::map<HostId, HostId> pa, pb;
    for (const Message& m : a.msgs) pa.emplace(m.src, m.dst);
    for (const Message& m : b.msgs) pb.emplace(m.src, m.dst);
    EXPECT_NE(pa, pb);
}

}  // namespace
}  // namespace homa
