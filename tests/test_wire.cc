#include <gtest/gtest.h>

#include <array>

#include "sim/random.h"
#include "wire/checksum.h"
#include "wire/header.h"

namespace homa {
namespace {

using wire::decodeHeader;
using wire::encodeHeader;
using wire::kWireHeaderSize;

Packet samplePacket() {
    Packet p;
    p.type = PacketType::Data;
    p.src = 12;
    p.dst = 131;
    p.msg = 0x1122334455667788ull;
    p.offset = 14420;
    p.length = 1442;
    p.messageLength = 500000;
    p.priority = 5;
    p.grantPriority = 2;
    p.flags = kFlagRequest | kFlagLast;
    p.grantOffset = 24120;
    p.remaining = 485580;
    return p;
}

TEST(Crc32c, KnownVectors) {
    // RFC 3720 test vector: 32 bytes of zeros -> 0x8A9136AA.
    std::array<std::byte, 32> zeros{};
    EXPECT_EQ(wire::crc32c(zeros), 0x8A9136AAu);
    // "123456789" -> 0xE3069283.
    const char* digits = "123456789";
    EXPECT_EQ(wire::crc32c(std::as_bytes(std::span(digits, 9))), 0xE3069283u);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
    std::array<std::byte, 64> data;
    Rng rng(4);
    for (auto& b : data) b = static_cast<std::byte>(rng.below(256));
    uint32_t crc = ~0u;
    crc = wire::crc32cUpdate(crc, std::span(data).subspan(0, 20));
    crc = wire::crc32cUpdate(crc, std::span(data).subspan(20));
    EXPECT_EQ(~crc, wire::crc32c(data));
}

TEST(WireHeader, RoundTripsAllFields) {
    Packet p = samplePacket();
    std::array<std::byte, kWireHeaderSize> buf;
    EXPECT_EQ(encodeHeader(p, buf), kWireHeaderSize);
    auto q = decodeHeader(buf);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->type, p.type);
    EXPECT_EQ(q->src, p.src);
    EXPECT_EQ(q->dst, p.dst);
    EXPECT_EQ(q->msg, p.msg);
    EXPECT_EQ(q->offset, p.offset);
    EXPECT_EQ(q->length, p.length);
    EXPECT_EQ(q->messageLength, p.messageLength);
    EXPECT_EQ(q->priority, p.priority);
    EXPECT_EQ(q->grantPriority, p.grantPriority);
    EXPECT_EQ(q->flags, p.flags);
    EXPECT_EQ(q->grantOffset, p.grantOffset);
    EXPECT_EQ(q->remaining, p.remaining);
}

TEST(WireHeader, RoundTripsEveryPacketType) {
    for (int t = 0; t <= static_cast<int>(PacketType::Rts); t++) {
        Packet p = samplePacket();
        p.type = static_cast<PacketType>(t);
        std::array<std::byte, kWireHeaderSize> buf;
        encodeHeader(p, buf);
        auto q = decodeHeader(buf);
        ASSERT_TRUE(q.has_value()) << t;
        EXPECT_EQ(static_cast<int>(q->type), t);
    }
}

TEST(WireHeader, RejectsShortBuffer) {
    Packet p = samplePacket();
    std::array<std::byte, kWireHeaderSize> buf;
    encodeHeader(p, buf);
    EXPECT_FALSE(decodeHeader(std::span(buf).subspan(0, 10)).has_value());
    std::array<std::byte, 8> tiny{};
    EXPECT_EQ(encodeHeader(p, tiny), 0u);
}

TEST(WireHeader, RejectsBadMagic) {
    Packet p = samplePacket();
    std::array<std::byte, kWireHeaderSize> buf;
    encodeHeader(p, buf);
    buf[0] = std::byte{0x00};
    EXPECT_FALSE(decodeHeader(buf).has_value());
}

TEST(WireHeader, DetectsEverySingleBitFlip) {
    Packet p = samplePacket();
    std::array<std::byte, kWireHeaderSize> buf;
    encodeHeader(p, buf);
    for (size_t byteIdx = 0; byteIdx < kWireHeaderSize; byteIdx++) {
        for (int bit = 0; bit < 8; bit++) {
            auto corrupted = buf;
            corrupted[byteIdx] ^= static_cast<std::byte>(1 << bit);
            auto q = decodeHeader(corrupted);
            // Either rejected outright, or (impossible for CRC-32C with a
            // single-bit error) decoded identically.
            EXPECT_FALSE(q.has_value())
                << "flip at byte " << byteIdx << " bit " << bit;
        }
    }
}

TEST(WireHeader, RejectsOutOfRangePriority) {
    Packet p = samplePacket();
    p.priority = 9;  // invalid: only 8 levels exist
    std::array<std::byte, kWireHeaderSize> buf;
    encodeHeader(p, buf);
    EXPECT_FALSE(decodeHeader(buf).has_value());
}

TEST(WireHeader, FuzzRoundTripRandomPackets) {
    Rng rng(99);
    for (int i = 0; i < 500; i++) {
        Packet p;
        p.type = static_cast<PacketType>(rng.below(9));
        p.src = static_cast<HostId>(rng.below(1000));
        p.dst = static_cast<HostId>(rng.below(1000));
        p.msg = rng.next();
        p.offset = static_cast<uint32_t>(rng.next());
        p.length = static_cast<uint32_t>(rng.next());
        p.messageLength = static_cast<uint32_t>(rng.next());
        p.priority = static_cast<uint8_t>(rng.below(8));
        p.flags = static_cast<uint16_t>(rng.below(1 << 6));
        std::array<std::byte, kWireHeaderSize> buf;
        encodeHeader(p, buf);
        auto q = decodeHeader(buf);
        ASSERT_TRUE(q.has_value());
        EXPECT_EQ(q->msg, p.msg);
        EXPECT_EQ(q->offset, p.offset);
    }
}

}  // namespace
}  // namespace homa
