// Network-level probes: wasted-bandwidth sampling, queue summaries,
// priority usage accounting.
#include <gtest/gtest.h>

#include "driver/experiment.h"
#include "stats/counters.h"

namespace homa {
namespace {

Network makeIdleNet() {
    NetworkConfig cfg = NetworkConfig::singleRack16();
    return Network(cfg,
                   HomaTransport::factory({}, cfg, &workload(WorkloadId::W3)));
}

TEST(WastedBandwidth, ZeroOnIdleNetwork) {
    Network net = makeIdleNet();
    WastedBandwidthProbe probe(net, microseconds(5));
    probe.start(0, microseconds(500));
    net.loop().run();
    EXPECT_EQ(probe.wastedFraction(), 0.0);
}

TEST(WastedBandwidth, DetectsWithheldIdleReceiver) {
    // Overcommit degree 1 + two needy inbound messages whose senders went
    // silent: the downlink is idle while work is withheld -> waste.
    NetworkConfig cfg = NetworkConfig::singleRack16();
    HomaConfig homa;
    homa.overcommitDegree = 1;
    homa.resendTimeout = milliseconds(100);  // keep RESENDs out of the way
    Network net(cfg, HomaTransport::factory(homa, cfg, &workload(WorkloadId::W3)));

    // Hand-deliver first packets of two long messages to host 0's
    // transport; their "senders" never follow up.
    for (MsgId id = 1; id <= 2; id++) {
        Packet p;
        p.type = PacketType::Data;
        p.src = static_cast<HostId>(id);
        p.dst = 0;
        p.msg = 1000 + id;
        p.created = 0;
        p.offset = 0;
        p.length = 1442;
        p.messageLength = 400000;
        net.host(0).transport().handlePacket(p);
    }
    EXPECT_TRUE(net.host(0).transport().hasWithheldWork());

    WastedBandwidthProbe probe(net, microseconds(5));
    probe.start(0, microseconds(500));
    net.loop().runUntil(microseconds(600));
    // Host 0 is 1 of 16 sampled hosts and always wasted: fraction ~1/16.
    EXPECT_NEAR(probe.wastedFraction(), 1.0 / 16.0, 0.02);
}

TEST(QueueSummary, EmptyPortsGiveZero) {
    QueueOccupancy q = summarizeQueues({}, kSecond);
    EXPECT_EQ(q.meanBytes, 0.0);
    EXPECT_EQ(q.maxBytes, 0);
}

TEST(QueueSummary, AggregatesAcrossPorts) {
    EventLoop loop;
    EgressPort a(loop, k10Gbps, std::make_unique<StrictPriorityQdisc>());
    EgressPort b(loop, k10Gbps, std::make_unique<StrictPriorityQdisc>());
    // Fill a's queue with two packets behind one transmitting.
    Packet p;
    p.type = PacketType::Data;
    p.length = kMaxPayload;
    a.enqueue(p);
    a.enqueue(p);
    a.enqueue(p);
    loop.run();
    QueueOccupancy q = summarizeQueues({&a, &b}, loop.now());
    EXPECT_GT(q.meanBytes, 0.0);
    EXPECT_EQ(q.maxBytes, 2 * (kMaxPayload + kHeaderBytes));
}

TEST(PriorityUsage, SumsToUtilization) {
    NetworkConfig cfg = NetworkConfig::singleRack16();
    Network net(cfg, HomaTransport::factory({}, cfg, &workload(WorkloadId::W3)));
    for (int i = 0; i < 10; i++) {
        Message m;
        m.id = net.nextMsgId();
        m.src = static_cast<HostId>(i % 8);
        m.dst = static_cast<HostId>(8 + i % 8);
        m.length = 30000;
        net.sendMessage(m);
    }
    net.loop().run();
    const Time elapsed = net.loop().now();
    auto usage = priorityUsage(net, elapsed);
    double sum = 0;
    for (double u : usage) sum += u;
    EXPECT_NEAR(sum, downlinkUtilization(net, elapsed), 1e-9);
    EXPECT_GT(sum, 0.0);
}

TEST(PriorityUsage, ZeroElapsedSafe) {
    Network net = makeIdleNet();
    auto usage = priorityUsage(net, 0);
    for (double u : usage) EXPECT_EQ(u, 0.0);
    EXPECT_EQ(downlinkUtilization(net, 0), 0.0);
}

}  // namespace
}  // namespace homa
