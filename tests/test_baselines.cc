// Behavioural tests for the baseline protocols on the simulated network.
#include <gtest/gtest.h>

#include "driver/experiment.h"
#include "driver/oracle.h"

namespace homa {
namespace {

struct TestNet {
    NetworkConfig cfg;
    std::unique_ptr<Network> net;
    std::vector<std::pair<Message, DeliveryInfo>> delivered;

    explicit TestNet(ProtocolConfig proto,
                 NetworkConfig net_ = NetworkConfig::fatTree144(),
                 WorkloadId wl = WorkloadId::W3)
        : cfg(net_) {
        if (!cfg.switchQdisc) cfg.switchQdisc = switchQdiscFor(proto);
        net = std::make_unique<Network>(
            cfg, makeTransportFactory(proto, cfg, &workload(wl)));
        net->setDeliveryCallback(
            [this](const Message& m, const DeliveryInfo& i) {
                delivered.emplace_back(m, i);
            });
    }

    Message send(HostId src, HostId dst, uint32_t len) {
        Message m;
        m.id = net->nextMsgId();
        m.src = src;
        m.dst = dst;
        m.length = len;
        net->sendMessage(m);
        m.created = net->loop().now();
        return m;
    }
};

ProtocolConfig proto(Protocol kind) {
    ProtocolConfig p;
    p.kind = kind;
    return p;
}

class BaselineDelivery : public ::testing::TestWithParam<Protocol> {};

TEST_P(BaselineDelivery, SingleMessageArrivesIntact) {
    TestNet run(proto(GetParam()));
    run.send(0, 100, 12345);
    run.net->loop().run();
    ASSERT_EQ(run.delivered.size(), 1u);
    EXPECT_EQ(run.delivered[0].first.length, 12345u);
}

TEST_P(BaselineDelivery, MixOfSizesAllDeliver) {
    TestNet run(proto(GetParam()));
    Rng rng(11);
    int sent = 0;
    for (int i = 0; i < 60; i++) {
        HostId src = static_cast<HostId>(rng.below(144));
        HostId dst = static_cast<HostId>(rng.below(144));
        if (src == dst) continue;
        run.send(src, dst, 1 + static_cast<uint32_t>(rng.below(100000)));
        sent++;
    }
    run.net->loop().run();
    EXPECT_EQ(static_cast<int>(run.delivered.size()), sent);
}

TEST_P(BaselineDelivery, FanInToOneReceiver) {
    TestNet run(proto(GetParam()));
    for (int s = 1; s <= 20; s++) run.send(static_cast<HostId>(s), 0, 30000);
    run.net->loop().run();
    EXPECT_EQ(run.delivered.size(), 20u);
}

TEST_P(BaselineDelivery, LongTransferFinishesNearLineRate) {
    TestNet run(proto(GetParam()));
    const uint32_t size = 2'000'000;
    Message m = run.send(0, 143, size);
    run.net->loop().run();
    ASSERT_EQ(run.delivered.size(), 1u);
    const double secs = toSeconds(run.delivered[0].second.completed - m.created);
    const double lineRate = static_cast<double>(messageWireBytes(size)) / 1.25e9;
    EXPECT_LT(secs, 2.0 * lineRate + 100e-6) << protocolName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, BaselineDelivery,
    ::testing::Values(Protocol::Homa, Protocol::Basic, Protocol::PHost,
                      Protocol::Pias, Protocol::PFabric, Protocol::Ndp,
                      Protocol::StreamSC, Protocol::StreamMC),
    [](const ::testing::TestParamInfo<Protocol>& info) {
        std::string n = protocolName(info.param);
        n.erase(std::remove(n.begin(), n.end(), '-'), n.end());
        return n;
    });

TEST(StreamingHol, SingleConnectionBlocksShortBehindLong) {
    // The Figure 8 story: on one stream, a short message enqueued behind a
    // long one waits for all of it; with per-message connections it does
    // not.
    auto measure = [](Protocol kind) {
        TestNet run(proto(kind));
        run.send(0, 1, 5'000'000);  // ~4 ms of wire time
        Message shortMsg;
        Time done = 0;
        run.net->loop().at(microseconds(10), [&] {
            shortMsg = run.send(0, 1, 200);
        });
        run.net->loop().run();
        for (const auto& [m, info] : run.delivered) {
            if (m.length == 200) done = info.completed - shortMsg.created;
        }
        return done;
    };
    const Duration sc = measure(Protocol::StreamSC);
    const Duration mc = measure(Protocol::StreamMC);
    ASSERT_GT(sc, 0);
    ASSERT_GT(mc, 0);
    // SC: the short message waits ~the whole long transfer (milliseconds).
    EXPECT_GT(sc, milliseconds(3));
    // MC: it shares the link fairly and finishes ~100x sooner.
    EXPECT_LT(mc * 50, sc);
}

TEST(PFabricBehavior, ShortMessagePreemptsLongViaFineGrainedPriority) {
    TestNet run(proto(Protocol::PFabric));
    run.send(1, 0, 3'000'000);
    Message shortMsg;
    run.net->loop().at(microseconds(500), [&] { shortMsg = run.send(2, 0, 500); });
    run.net->loop().run();
    ASSERT_EQ(run.delivered.size(), 2u);
    EXPECT_EQ(run.delivered[0].first.length, 500u) << "short finishes first";
    Oracle oracle(run.cfg);
    const Duration elapsed = run.delivered[0].second.completed - shortMsg.created;
    EXPECT_LT(elapsed, 3 * oracle.bestOneWay(500));
}

TEST(PFabricBehavior, DropsAndRecoversUnderOverload) {
    // 30 senders x 100KB into one receiver overflows the tiny pFabric
    // buffers; retransmission must still complete every message.
    TestNet run(proto(Protocol::PFabric));
    for (int s = 1; s <= 30; s++) run.send(static_cast<HostId>(s), 0, 100'000);
    run.net->loop().run();
    EXPECT_EQ(run.delivered.size(), 30u);
}

TEST(NdpBehavior, TrimmingKeepsQueuesBoundedAndRecovers) {
    TestNet run(proto(Protocol::Ndp));
    for (int s = 1; s <= 25; s++) run.send(static_cast<HostId>(s), 0, 50'000);
    run.net->loop().run();
    EXPECT_EQ(run.delivered.size(), 25u);
    // The 8-packet data cap must have held everywhere; trimmed headers
    // bypass it (separate header queue), so allow a headers' worth of slack.
    for (const auto* p : run.net->torDownlinkPorts()) {
        EXPECT_LE(p->stats().maxQueueBytes, 8 * 1500 + 200 * kHeaderBytes);
    }
}

TEST(NdpBehavior, FairShareNotSrpt) {
    // Two messages of very different sizes arriving together: NDP's
    // round-robin pulls interleave them, so the short one's completion is
    // delayed relative to SRPT but the long one is not starved.
    TestNet run(proto(Protocol::Ndp));
    run.send(1, 0, 20 * 1442);
    run.send(2, 0, 200 * 1442);
    run.net->loop().run();
    ASSERT_EQ(run.delivered.size(), 2u);
    EXPECT_EQ(run.delivered[0].first.length, 20u * 1442);
}

TEST(PHostBehavior, TokensScheduleBeyondFirstRtt) {
    TestNet run(proto(Protocol::PHost));
    Message m = run.send(0, 100, 100'000);  // ~10 RTTs of data
    run.net->loop().run();
    ASSERT_EQ(run.delivered.size(), 1u);
    Oracle oracle(run.cfg);
    const Duration elapsed = run.delivered[0].second.completed - m.created;
    EXPECT_LT(static_cast<double>(elapsed),
              1.5 * static_cast<double>(oracle.bestOneWay(100'000)));
}

TEST(PiasBehavior, EcnMarksAppearUnderCongestion) {
    TestNet run(proto(Protocol::Pias));
    for (int s = 1; s <= 40; s++) run.send(static_cast<HostId>(s), 0, 400'000);
    run.net->loop().run();
    EXPECT_EQ(run.delivered.size(), 40u);
    uint64_t marks = 0;
    for (const auto* p : run.net->torDownlinkPorts()) {
        marks += p->qdisc().stats().ecnMarked;
    }
    EXPECT_GT(marks, 0u) << "40x400KB fan-in must cross the ECN threshold";
}

TEST(BasicBehavior, GrantsEveryoneNoWithholding) {
    TestNet run(proto(Protocol::Basic));
    for (int s = 1; s <= 30; s++) run.send(static_cast<HostId>(s), 0, 60'000);
    run.net->loop().runUntil(microseconds(300));
    // Basic has no overcommitment limit, so nothing is ever withheld.
    EXPECT_FALSE(run.net->host(0).transport().hasWithheldWork());
    run.net->loop().run();
    EXPECT_EQ(run.delivered.size(), 30u);
}

TEST(HomaBehavior, WithholdsBeyondOvercommitDegree) {
    TestNet run(proto(Protocol::Homa));
    // W3 allocation: 4 scheduled levels -> overcommitment degree 4. With 12
    // long inbound messages, grants must be withheld from some.
    for (int s = 1; s <= 12; s++) run.send(static_cast<HostId>(s), 0, 200'000);
    run.net->loop().runUntil(microseconds(400));
    EXPECT_TRUE(run.net->host(0).transport().hasWithheldWork());
    run.net->loop().run();
    EXPECT_EQ(run.delivered.size(), 12u);
}

}  // namespace
}  // namespace homa
