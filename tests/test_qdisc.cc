#include <gtest/gtest.h>

#include "sim/qdisc.h"

namespace homa {
namespace {

Packet dataPacket(uint8_t prio, uint32_t len = kMaxPayload, MsgId msg = 1,
                  uint32_t offset = 0) {
    Packet p;
    p.type = PacketType::Data;
    p.priority = prio;
    p.length = len;
    p.msg = msg;
    p.offset = offset;
    return p;
}

TEST(StrictPriority, HigherPriorityDequeuesFirst) {
    StrictPriorityQdisc q;
    Packet lo = dataPacket(1), hi = dataPacket(6), mid = dataPacket(3);
    q.enqueue(lo);
    q.enqueue(hi);
    q.enqueue(mid);
    EXPECT_EQ(q.dequeue()->priority, 6);
    EXPECT_EQ(q.dequeue()->priority, 3);
    EXPECT_EQ(q.dequeue()->priority, 1);
    EXPECT_FALSE(q.dequeue().has_value());
}

TEST(StrictPriority, FifoWithinLevel) {
    StrictPriorityQdisc q;
    for (uint32_t i = 0; i < 5; i++) {
        Packet p = dataPacket(4, 100, /*msg=*/i);
        q.enqueue(p);
    }
    for (uint32_t i = 0; i < 5; i++) EXPECT_EQ(q.dequeue()->msg, i);
}

TEST(StrictPriority, TracksBytesAndPackets) {
    StrictPriorityQdisc q;
    Packet a = dataPacket(0, 1000), b = dataPacket(7, 200);
    q.enqueue(a);
    q.enqueue(b);
    EXPECT_EQ(q.queuedPackets(), 2u);
    EXPECT_EQ(q.queuedBytes(), 1000 + 200 + 2 * kHeaderBytes);
    q.dequeue();
    EXPECT_EQ(q.queuedPackets(), 1u);
}

TEST(StrictPriority, HeadPriority) {
    StrictPriorityQdisc q;
    EXPECT_EQ(q.headPriority(), -1);
    Packet p = dataPacket(2);
    q.enqueue(p);
    EXPECT_EQ(q.headPriority(), 2);
    Packet p2 = dataPacket(5);
    q.enqueue(p2);
    EXPECT_EQ(q.headPriority(), 5);
}

TEST(StrictPriority, CapDropsWhenFull) {
    StrictPriorityOptions o;
    o.capBytes = 3 * 1500;
    StrictPriorityQdisc q(o);
    int accepted = 0;
    for (int i = 0; i < 10; i++) {
        Packet p = dataPacket(0);
        if (q.enqueue(p)) accepted++;
    }
    EXPECT_EQ(accepted, 3);  // 3 x (1442+58) = 4500 fits exactly
    EXPECT_EQ(q.stats().dropped, 7u);
}

TEST(StrictPriority, DropAccountingLeavesQueueStateUntouched) {
    StrictPriorityOptions o;
    o.capBytes = 2 * 1500;
    StrictPriorityQdisc q(o);
    Packet a = dataPacket(3), b = dataPacket(5);
    ASSERT_TRUE(q.enqueue(a));
    ASSERT_TRUE(q.enqueue(b));
    const int64_t bytesBefore = q.queuedBytes();
    const size_t packetsBefore = q.queuedPackets();
    for (uint32_t i = 0; i < 4; i++) {
        Packet p = dataPacket(7, kMaxPayload, /*msg=*/100 + i);
        EXPECT_FALSE(q.enqueue(p));
    }
    // A rejected packet must not perturb occupancy or the enqueued count.
    EXPECT_EQ(q.queuedBytes(), bytesBefore);
    EXPECT_EQ(q.queuedPackets(), packetsBefore);
    EXPECT_EQ(q.stats().dropped, 4u);
    EXPECT_EQ(q.stats().enqueued, 2u);
    // The queue keeps serving what it accepted.
    EXPECT_EQ(q.dequeue()->priority, 5);
    EXPECT_EQ(q.dequeue()->priority, 3);
    EXPECT_FALSE(q.dequeue().has_value());
}

TEST(StrictPriority, DrainingBelowCapAcceptsAgain) {
    StrictPriorityOptions o;
    o.capBytes = 1500;
    StrictPriorityQdisc q(o);
    Packet a = dataPacket(0);
    ASSERT_TRUE(q.enqueue(a));
    Packet b = dataPacket(0);
    EXPECT_FALSE(q.enqueue(b));
    q.dequeue();
    Packet c = dataPacket(0);
    EXPECT_TRUE(q.enqueue(c));
    EXPECT_EQ(q.stats().dropped, 1u);
    EXPECT_EQ(q.stats().enqueued, 2u);
}

TEST(StrictPriority, TrimAccountsHeaderBytesOnly) {
    StrictPriorityOptions o;
    o.capBytes = 2 * 1500;
    o.trimOnOverflow = true;
    StrictPriorityQdisc q(o);
    Packet a = dataPacket(0), b = dataPacket(0);
    ASSERT_TRUE(q.enqueue(a));
    ASSERT_TRUE(q.enqueue(b));
    const int64_t bytesBefore = q.queuedBytes();
    Packet c = dataPacket(0, kMaxPayload, /*msg=*/7, /*offset=*/2884);
    ASSERT_TRUE(q.enqueue(c));
    // The trimmed packet occupies one header, no payload, and keeps its
    // message identity so the receiver can request a retransmission.
    EXPECT_EQ(q.queuedBytes(), bytesBefore + kHeaderBytes);
    EXPECT_EQ(q.stats().trimmed, 1u);
    EXPECT_EQ(q.stats().dropped, 0u);
    EXPECT_EQ(q.stats().enqueued, 3u);
    auto first = q.dequeue();
    EXPECT_EQ(first->msg, 7u);
    EXPECT_EQ(first->offset, 2884u);
}

TEST(StrictPriority, TrimOnOverflowConvertsToHeader) {
    StrictPriorityOptions o;
    o.capBytes = 2 * 1500;
    o.trimOnOverflow = true;
    StrictPriorityQdisc q(o);
    Packet a = dataPacket(0), b = dataPacket(0);
    ASSERT_TRUE(q.enqueue(a));
    ASSERT_TRUE(q.enqueue(b));  // fills the cap
    Packet c = dataPacket(0, kMaxPayload, /*msg=*/9);
    ASSERT_TRUE(q.enqueue(c));  // trimmed, not dropped
    EXPECT_EQ(q.stats().trimmed, 1u);
    EXPECT_EQ(q.stats().dropped, 0u);
    // The trimmed header comes out first (highest priority).
    auto first = q.dequeue();
    ASSERT_TRUE(first.has_value());
    EXPECT_TRUE(first->hasFlag(kFlagTrimmed));
    EXPECT_EQ(first->msg, 9u);
    EXPECT_EQ(first->priority, kHighestPriority);
    EXPECT_EQ(first->wireBytes(), kHeaderBytes + kFrameOverhead);
}

TEST(StrictPriority, EcnMarksAboveThreshold) {
    StrictPriorityOptions o;
    o.ecnThresholdBytes = 2 * 1500;
    StrictPriorityQdisc q(o);
    Packet a = dataPacket(0), b = dataPacket(0), c = dataPacket(0);
    q.enqueue(a);
    q.enqueue(b);
    EXPECT_FALSE(b.hasFlag(kFlagEcn));
    q.enqueue(c);  // occupancy now >= threshold at enqueue time
    EXPECT_TRUE(c.hasFlag(kFlagEcn));
    EXPECT_EQ(q.stats().ecnMarked, 1u);
}

TEST(PFabric, DequeuesSmallestRemaining) {
    PFabricQdisc q;
    for (uint32_t rem : {50000u, 100u, 7000u}) {
        Packet p = dataPacket(0, kMaxPayload, /*msg=*/rem);
        p.remaining = rem;
        q.enqueue(p);
    }
    EXPECT_EQ(q.dequeue()->remaining, 100u);
    EXPECT_EQ(q.dequeue()->remaining, 7000u);
    EXPECT_EQ(q.dequeue()->remaining, 50000u);
}

TEST(PFabric, EarliestOffsetWithinWinningMessage) {
    PFabricQdisc q;
    for (uint32_t off : {2884u, 0u, 1442u}) {
        Packet p = dataPacket(0, kMaxPayload, /*msg=*/5, off);
        p.remaining = 1000;
        q.enqueue(p);
    }
    EXPECT_EQ(q.dequeue()->offset, 0u);
    EXPECT_EQ(q.dequeue()->offset, 1442u);
    EXPECT_EQ(q.dequeue()->offset, 2884u);
}

TEST(PFabric, OverflowDropsLargestRemaining) {
    PFabricQdisc q(PFabricOptions{2 * 1500});
    Packet a = dataPacket(0, kMaxPayload, 1);
    a.remaining = 10;
    Packet b = dataPacket(0, kMaxPayload, 2);
    b.remaining = 999999;
    ASSERT_TRUE(q.enqueue(a));
    ASSERT_TRUE(q.enqueue(b));
    // Queue full. An urgent packet evicts the 999999-remaining one.
    Packet c = dataPacket(0, kMaxPayload, 3);
    c.remaining = 20;
    ASSERT_TRUE(q.enqueue(c));
    EXPECT_EQ(q.stats().dropped, 1u);
    EXPECT_EQ(q.dequeue()->msg, 1u);
    EXPECT_EQ(q.dequeue()->msg, 3u);
    EXPECT_FALSE(q.dequeue().has_value());
}

TEST(PFabric, IncomingWorstIsDroppedItself) {
    PFabricQdisc q(PFabricOptions{2 * 1500});
    Packet a = dataPacket(0, kMaxPayload, 1);
    a.remaining = 10;
    Packet b = dataPacket(0, kMaxPayload, 2);
    b.remaining = 20;
    ASSERT_TRUE(q.enqueue(a));
    ASSERT_TRUE(q.enqueue(b));
    Packet c = dataPacket(0, kMaxPayload, 3);
    c.remaining = 30;  // worse than everything queued
    EXPECT_FALSE(q.enqueue(c));
    EXPECT_EQ(q.stats().dropped, 1u);
}

TEST(PFabric, EvictionAccountingStaysConsistent) {
    PFabricQdisc q(PFabricOptions{2 * 1500});
    Packet a = dataPacket(0, kMaxPayload, 1);
    a.remaining = 10;
    Packet b = dataPacket(0, kMaxPayload, 2);
    b.remaining = 999999;
    ASSERT_TRUE(q.enqueue(a));
    ASSERT_TRUE(q.enqueue(b));
    const int64_t bytesFull = q.queuedBytes();
    Packet c = dataPacket(0, kMaxPayload, 3);
    c.remaining = 20;
    ASSERT_TRUE(q.enqueue(c));  // evicts b
    // Eviction swaps one packet for another: occupancy is unchanged, and
    // enqueued counts accepted packets while dropped counts the victim.
    EXPECT_EQ(q.queuedBytes(), bytesFull);
    EXPECT_EQ(q.queuedPackets(), 2u);
    EXPECT_EQ(q.stats().enqueued, 3u);
    EXPECT_EQ(q.stats().dropped, 1u);
    q.dequeue();
    q.dequeue();
    EXPECT_EQ(q.queuedBytes(), 0);
    EXPECT_EQ(q.queuedPackets(), 0u);
}

TEST(PFabric, ControlServedBeforeData) {
    PFabricQdisc q;
    Packet d = dataPacket(0);
    d.remaining = 1;
    q.enqueue(d);
    Packet ack;
    ack.type = PacketType::Ack;
    ack.priority = kHighestPriority;
    q.enqueue(ack);
    EXPECT_EQ(q.dequeue()->type, PacketType::Ack);
    EXPECT_EQ(q.dequeue()->type, PacketType::Data);
}

TEST(PFabric, ControlNeverDroppedByCap) {
    PFabricQdisc q(PFabricOptions{1500});
    Packet d = dataPacket(0);
    d.remaining = 5;
    ASSERT_TRUE(q.enqueue(d));
    for (int i = 0; i < 10; i++) {
        Packet ack;
        ack.type = PacketType::Ack;
        EXPECT_TRUE(q.enqueue(ack));
    }
}

}  // namespace
}  // namespace homa
