#include <gtest/gtest.h>

#include <set>

#include "sim/random.h"
#include "sim/time.h"

namespace homa {
namespace {

TEST(TimeUnits, ConversionsAreExact) {
    EXPECT_EQ(nanoseconds(1), 1000);
    EXPECT_EQ(microseconds(1), 1'000'000);
    EXPECT_EQ(milliseconds(1), 1'000'000'000);
    EXPECT_EQ(microseconds(1), nanoseconds(1000));
    EXPECT_DOUBLE_EQ(toMicros(microseconds(15)), 15.0);
    EXPECT_DOUBLE_EQ(toSeconds(milliseconds(250)), 0.25);
}

TEST(Bandwidth, CommonRatesAreExactIntegers) {
    EXPECT_EQ(k10Gbps.psPerByte, 800);
    EXPECT_EQ(k40Gbps.psPerByte, 200);
    EXPECT_DOUBLE_EQ(k10Gbps.gbps(), 10.0);
    EXPECT_DOUBLE_EQ(k40Gbps.gbps(), 40.0);
}

TEST(Bandwidth, SerializationTimes) {
    // A full 1524-byte wire packet at 10 Gbps takes 1219.2 ns.
    EXPECT_EQ(k10Gbps.serialize(1524), 1'219'200);
    EXPECT_EQ(k40Gbps.serialize(1524), 304'800);
    EXPECT_EQ(k10Gbps.serialize(0), 0);
}

TEST(Bandwidth, BytesInInvertsSerialize) {
    for (int64_t bytes : {1, 64, 1500, 9700, 1000000}) {
        EXPECT_EQ(k10Gbps.bytesIn(k10Gbps.serialize(bytes)), bytes);
    }
}

TEST(Rng, DeterministicFromSeed) {
    Rng a(42), b(42);
    for (int i = 0; i < 1000; i++) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++) {
        if (a.next() == b.next()) same++;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    double sum = 0;
    for (int i = 0; i < 100000; i++) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
    Rng rng(9);
    std::array<int, 10> counts{};
    for (int i = 0; i < 100000; i++) {
        uint64_t v = rng.below(10);
        ASSERT_LT(v, 10u);
        counts[v]++;
    }
    for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, RangeInclusive) {
    Rng rng(10);
    std::set<int64_t> seen;
    for (int i = 0; i < 1000; i++) seen.insert(rng.range(-3, 3));
    EXPECT_EQ(seen.size(), 7u);
    EXPECT_EQ(*seen.begin(), -3);
    EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, ExponentialHasRequestedMean) {
    Rng rng(11);
    double sum = 0;
    const double mean = 25.0;
    const int n = 200000;
    for (int i = 0; i < n; i++) {
        double v = rng.exponential(mean);
        ASSERT_GE(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, mean, 0.25);
}

TEST(Rng, ForkProducesIndependentStream) {
    Rng a(5);
    Rng child = a.fork();
    // The child must not replay the parent's sequence.
    Rng b(5);
    b.fork();
    int same = 0;
    for (int i = 0; i < 100; i++) {
        if (child.next() == b.next()) same++;
    }
    EXPECT_LT(same, 5);
}

TEST(Rng, ChanceExtremes) {
    Rng rng(13);
    for (int i = 0; i < 100; i++) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

}  // namespace
}  // namespace homa
