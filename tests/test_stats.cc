#include <gtest/gtest.h>

#include "stats/percentile.h"
#include "stats/report.h"
#include "stats/slowdown.h"
#include "workload/workloads.h"

namespace homa {
namespace {

TEST(Samples, EmptyIsSafe) {
    Samples s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.percentile(0.5), 0.0);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(Samples, BasicStatistics) {
    Samples s;
    for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) s.add(v);
    EXPECT_EQ(s.count(), 5u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Samples, PercentileNearestRank) {
    Samples s;
    for (int i = 1; i <= 100; i++) s.add(i);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.50), 50.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.99), 99.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
}

TEST(Samples, SingleSampleAnswersEveryQuery) {
    Samples s;
    s.add(7.5);
    EXPECT_EQ(s.count(), 1u);
    for (double p : {0.0, 0.25, 0.5, 0.99, 1.0}) {
        EXPECT_DOUBLE_EQ(s.percentile(p), 7.5) << "p=" << p;
    }
    EXPECT_DOUBLE_EQ(s.mean(), 7.5);
    EXPECT_DOUBLE_EQ(s.min(), 7.5);
    EXPECT_DOUBLE_EQ(s.max(), 7.5);
}

TEST(Samples, DuplicateHeavyInput) {
    // 990 copies of 1.0 and 10 of 2.0: nearest-rank percentiles must sit
    // on the duplicated value through p99 and step up only past it.
    Samples s;
    for (int i = 0; i < 990; i++) s.add(1.0);
    for (int i = 0; i < 10; i++) s.add(2.0);
    EXPECT_DOUBLE_EQ(s.median(), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.99), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.995), 2.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 2.0);
    EXPECT_DOUBLE_EQ(s.mean(), (990.0 + 20.0) / 1000.0);
}

TEST(Samples, PercentileClampsOutOfRangeP) {
    Samples s;
    s.add(1.0);
    s.add(2.0);
    EXPECT_DOUBLE_EQ(s.percentile(-0.5), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.5), 2.0);
}

TEST(Samples, InterleavedAddAndQuery) {
    Samples s;
    s.add(10);
    EXPECT_DOUBLE_EQ(s.median(), 10.0);
    s.add(20);
    s.add(30);
    EXPECT_DOUBLE_EQ(s.median(), 20.0);  // re-sorts after new samples
}

TEST(SlowdownTracker, RecordsIntoCorrectDecileBuckets) {
    const auto& dist = workload(WorkloadId::W3);  // deciles start 36, 77...
    SlowdownTracker t(dist, [](uint32_t) { return microseconds(1); });
    t.record(10, microseconds(2));    // bucket 0 (<= 36)
    t.record(36, microseconds(3));    // bucket 0 boundary
    t.record(100, microseconds(4));   // bucket 2 (<= 110)
    t.record(1u << 30, microseconds(9));  // clamps to last bucket
    auto rows = t.rows();
    ASSERT_EQ(rows.size(), 10u);
    EXPECT_EQ(rows[0].count, 2u);
    EXPECT_EQ(rows[2].count, 1u);
    EXPECT_EQ(rows[9].count, 1u);
    EXPECT_DOUBLE_EQ(rows[2].median, 4.0);
}

TEST(SlowdownTracker, SlowdownIsElapsedOverOracle) {
    const auto& dist = workload(WorkloadId::W1);
    SlowdownTracker t(dist, [](uint32_t size) {
        return microseconds(1) * (1 + size / 1000);
    });
    t.record(2000, microseconds(9));  // oracle = 3us -> slowdown 3
    EXPECT_DOUBLE_EQ(t.overallPercentile(0.5), 3.0);
}

TEST(SlowdownTracker, TailDelaySourcesUsesShortMessagesNearP99) {
    const auto& dist = workload(WorkloadId::W3);
    SlowdownTracker t(dist, [](uint32_t) { return microseconds(1); });
    // 99 fast short messages with distinct delays and zero decomposition,
    // plus one slow one with a big decomposition. The p98 threshold selects
    // the slowest 3 (98, 99, and 1000 us); only the slow one contributes.
    for (int i = 1; i <= 99; i++) {
        t.record(30, microseconds(i), 0, 0);
    }
    t.record(30, microseconds(1000), microseconds(30), microseconds(15));
    auto [queueing, lag] = t.tailDelaySources();
    EXPECT_EQ(queueing, microseconds(30) / 3);
    EXPECT_EQ(lag, microseconds(15) / 3);
}

TEST(SlowdownTracker, IgnoresLargeMessagesForTailDecomposition) {
    const auto& dist = workload(WorkloadId::W3);
    SlowdownTracker t(dist, [](uint32_t) { return microseconds(1); });
    t.record(5'000'000, microseconds(1000), microseconds(500), microseconds(500));
    auto [queueing, lag] = t.tailDelaySources();
    EXPECT_EQ(queueing, 0);
    EXPECT_EQ(lag, 0);
}

TEST(SlowdownTracker, EmptyTrackerIsSafe) {
    const auto& dist = workload(WorkloadId::W2);
    SlowdownTracker t(dist, [](uint32_t) { return microseconds(1); });
    EXPECT_EQ(t.count(), 0u);
    EXPECT_EQ(t.overallPercentile(0.99), 0.0);
    auto rows = t.rows();
    ASSERT_EQ(rows.size(), 10u);
    for (const auto& row : rows) {
        EXPECT_EQ(row.count, 0u);
        EXPECT_EQ(row.median, 0.0);
        EXPECT_EQ(row.p99, 0.0);
    }
    auto [queueing, lag] = t.tailDelaySources();
    EXPECT_EQ(queueing, 0);
    EXPECT_EQ(lag, 0);
}

TEST(SlowdownTracker, DuplicateHeavySamplesKeepExactPercentiles) {
    const auto& dist = workload(WorkloadId::W1);
    SlowdownTracker t(dist, [](uint32_t) { return microseconds(1); });
    for (int i = 0; i < 500; i++) t.record(100, microseconds(1));  // slowdown 1
    t.record(100, microseconds(50));  // one straggler
    EXPECT_DOUBLE_EQ(t.overallPercentile(0.5), 1.0);
    EXPECT_DOUBLE_EQ(t.overallPercentile(0.99), 1.0);
    EXPECT_DOUBLE_EQ(t.overallPercentile(1.0), 50.0);
}

TEST(Table, FormatsAlignedColumns) {
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "22"});
    const std::string out = t.format();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    // Every line has the same structure: header, rule, 2 rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, NumberFormatting) {
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(3.0, 0), "3");
    EXPECT_EQ(Table::bytes(512), "512");
    EXPECT_EQ(Table::bytes(16129), "16.1K");
    EXPECT_EQ(Table::bytes(28840000), "28.8M");
}

TEST(Banner, ContainsTitle) {
    EXPECT_NE(banner("Hello").find("Hello"), std::string::npos);
}

}  // namespace
}  // namespace homa
