#include <gtest/gtest.h>

#include "sim/event_loop.h"

namespace homa {
namespace {

TEST(EventLoop, StartsAtZero) {
    EventLoop loop;
    EXPECT_EQ(loop.now(), 0);
    EXPECT_EQ(loop.pendingEvents(), 0u);
}

TEST(EventLoop, RunsEventsInTimeOrder) {
    EventLoop loop;
    std::vector<int> order;
    loop.at(30, [&] { order.push_back(3); });
    loop.at(10, [&] { order.push_back(1); });
    loop.at(20, [&] { order.push_back(2); });
    loop.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, TiesRunInSchedulingOrder) {
    EventLoop loop;
    std::vector<int> order;
    for (int i = 0; i < 10; i++) {
        loop.at(5, [&, i] { order.push_back(i); });
    }
    loop.run();
    for (int i = 0; i < 10; i++) EXPECT_EQ(order[i], i);
}

TEST(EventLoop, AfterSchedulesRelative) {
    EventLoop loop;
    Time fired = -1;
    loop.at(100, [&] {
        loop.after(50, [&] { fired = loop.now(); });
    });
    loop.run();
    EXPECT_EQ(fired, 150);
}

TEST(EventLoop, PastTimesClampToNow) {
    EventLoop loop;
    Time fired = -1;
    loop.at(100, [&] {
        loop.at(10, [&] { fired = loop.now(); });  // in the past
    });
    loop.run();
    EXPECT_EQ(fired, 100);
}

TEST(EventLoop, RunOneReturnsFalseWhenEmpty) {
    EventLoop loop;
    EXPECT_FALSE(loop.runOne());
    loop.at(1, [] {});
    EXPECT_TRUE(loop.runOne());
    EXPECT_FALSE(loop.runOne());
}

TEST(EventLoop, RunUntilAdvancesClockWithoutEvents) {
    EventLoop loop;
    loop.runUntil(12345);
    EXPECT_EQ(loop.now(), 12345);
}

TEST(EventLoop, RunUntilExecutesOnlyDueEvents) {
    EventLoop loop;
    int ran = 0;
    loop.at(10, [&] { ran++; });
    loop.at(20, [&] { ran++; });
    loop.runUntil(15);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(loop.now(), 15);
    EXPECT_EQ(loop.pendingEvents(), 1u);
}

TEST(EventLoop, RunWithLimitStops) {
    EventLoop loop;
    for (int i = 0; i < 100; i++) loop.at(i, [] {});
    EXPECT_EQ(loop.run(10), 10u);
    EXPECT_EQ(loop.pendingEvents(), 90u);
}

TEST(EventLoop, CountsExecutedEvents) {
    EventLoop loop;
    for (int i = 0; i < 7; i++) loop.at(i, [] {});
    loop.run();
    EXPECT_EQ(loop.executedEvents(), 7u);
}

TEST(Timer, FiresAfterDelay) {
    EventLoop loop;
    int fired = 0;
    Timer t(loop, [&] { fired++; });
    t.schedule(microseconds(5));
    EXPECT_TRUE(t.armed());
    loop.run();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(t.armed());
    EXPECT_EQ(loop.now(), microseconds(5));
}

TEST(Timer, CancelPreventsFiring) {
    EventLoop loop;
    int fired = 0;
    Timer t(loop, [&] { fired++; });
    t.schedule(100);
    t.cancel();
    loop.run();
    EXPECT_EQ(fired, 0);
}

TEST(Timer, RescheduleSupersedesPriorArming) {
    EventLoop loop;
    std::vector<Time> fireTimes;
    Timer t(loop, [&] { fireTimes.push_back(loop.now()); });
    t.schedule(100);
    t.schedule(200);  // supersedes
    loop.run();
    ASSERT_EQ(fireTimes.size(), 1u);
    EXPECT_EQ(fireTimes[0], 200);
}

TEST(Timer, CanRearmFromCallback) {
    EventLoop loop;
    int fired = 0;
    Timer* tp = nullptr;
    Timer t(loop, [&] {
        fired++;
        if (fired < 3) tp->schedule(10);
    });
    tp = &t;
    t.schedule(10);
    loop.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(loop.now(), 30);
}

TEST(Timer, DestructionCancelsSafely) {
    EventLoop loop;
    int fired = 0;
    {
        Timer t(loop, [&] { fired++; });
        t.schedule(50);
    }
    loop.run();  // stale heap entry must not crash or fire
    EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace homa
