#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_loop.h"

namespace homa {
namespace {

TEST(EventLoop, StartsAtZero) {
    EventLoop loop;
    EXPECT_EQ(loop.now(), 0);
    EXPECT_EQ(loop.pendingEvents(), 0u);
}

TEST(EventLoop, RunsEventsInTimeOrder) {
    EventLoop loop;
    std::vector<int> order;
    loop.at(30, [&] { order.push_back(3); });
    loop.at(10, [&] { order.push_back(1); });
    loop.at(20, [&] { order.push_back(2); });
    loop.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, TiesRunInSchedulingOrder) {
    EventLoop loop;
    std::vector<int> order;
    for (int i = 0; i < 10; i++) {
        loop.at(5, [&, i] { order.push_back(i); });
    }
    loop.run();
    for (int i = 0; i < 10; i++) EXPECT_EQ(order[i], i);
}

TEST(EventLoop, AfterSchedulesRelative) {
    EventLoop loop;
    Time fired = -1;
    loop.at(100, [&] {
        loop.after(50, [&] { fired = loop.now(); });
    });
    loop.run();
    EXPECT_EQ(fired, 150);
}

TEST(EventLoop, PastTimesClampToNow) {
    EventLoop loop;
    Time fired = -1;
    loop.at(100, [&] {
        loop.at(10, [&] { fired = loop.now(); });  // in the past
    });
    loop.run();
    EXPECT_EQ(fired, 100);
}

TEST(EventLoop, RunOneReturnsFalseWhenEmpty) {
    EventLoop loop;
    EXPECT_FALSE(loop.runOne());
    loop.at(1, [] {});
    EXPECT_TRUE(loop.runOne());
    EXPECT_FALSE(loop.runOne());
}

TEST(EventLoop, RunUntilAdvancesClockWithoutEvents) {
    EventLoop loop;
    loop.runUntil(12345);
    EXPECT_EQ(loop.now(), 12345);
}

TEST(EventLoop, RunUntilExecutesOnlyDueEvents) {
    EventLoop loop;
    int ran = 0;
    loop.at(10, [&] { ran++; });
    loop.at(20, [&] { ran++; });
    loop.runUntil(15);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(loop.now(), 15);
    EXPECT_EQ(loop.pendingEvents(), 1u);
}

TEST(EventLoop, RunWithLimitStops) {
    EventLoop loop;
    for (int i = 0; i < 100; i++) loop.at(i, [] {});
    EXPECT_EQ(loop.run(10), 10u);
    EXPECT_EQ(loop.pendingEvents(), 90u);
}

TEST(EventLoop, CountsExecutedEvents) {
    EventLoop loop;
    for (int i = 0; i < 7; i++) loop.at(i, [] {});
    loop.run();
    EXPECT_EQ(loop.executedEvents(), 7u);
}

TEST(EventLoopClamp, PastEventJoinsBackOfCurrentInstantFifo) {
    // Clamping t < now() must not reorder same-instant events: the clamped
    // event joins the back of the current instant's queue, behind events
    // already scheduled for now(), in scheduling order.
    EventLoop loop;
    std::vector<int> order;
    loop.at(100, [&] {
        loop.at(100, [&] { order.push_back(1); });  // same instant, first
        loop.at(10, [&] { order.push_back(2); });   // past: clamped to 100
        loop.at(50, [&] { order.push_back(3); });   // past: clamped to 100
    });
    loop.run();
    EXPECT_EQ(loop.now(), 100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoopClamp, ClampedEventsPreserveMutualFifo) {
    EventLoop loop;
    std::vector<int> order;
    loop.at(200, [&] {
        // All in the past, in "wrong" time order: scheduling order rules.
        loop.at(30, [&] { order.push_back(1); });
        loop.at(20, [&] { order.push_back(2); });
        loop.at(10, [&] { order.push_back(3); });
    });
    loop.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoopClamp, ClampAfterRunUntilAdvancedClock) {
    EventLoop loop;
    loop.runUntil(1000);  // no events; clock moved forward
    Time fired = -1;
    loop.at(5, [&] { fired = loop.now(); });  // far in the past
    loop.run();
    EXPECT_EQ(fired, 1000);
}

TEST(EventLoopCancel, CancelledEventNeverRuns) {
    EventLoop loop;
    int fired = 0;
    auto h = loop.at(10, [&] { fired++; });
    EXPECT_TRUE(loop.pending(h));
    EXPECT_TRUE(loop.cancel(h));
    EXPECT_FALSE(loop.pending(h));
    EXPECT_FALSE(loop.cancel(h));  // second cancel is a stale no-op
    loop.run();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(loop.executedEvents(), 0u);
}

TEST(EventLoopCancel, PendingCountExcludesCancelled) {
    EventLoop loop;
    auto h1 = loop.at(10, [] {});
    loop.at(20, [] {});
    EXPECT_EQ(loop.pendingEvents(), 2u);
    loop.cancel(h1);
    EXPECT_EQ(loop.pendingEvents(), 1u);
    EXPECT_EQ(loop.run(), 1u);
}

TEST(EventLoopCancel, StaleHandleAfterExecutionIsHarmless) {
    EventLoop loop;
    auto h = loop.at(10, [] {});
    loop.run();
    EXPECT_FALSE(loop.pending(h));
    EXPECT_FALSE(loop.cancel(h));
}

TEST(EventLoopCancel, SlotReuseInvalidatesOldHandles) {
    EventLoop loop;
    auto h1 = loop.at(10, [] {});
    loop.cancel(h1);
    int fired = 0;
    loop.at(20, [&] { fired++; });  // recycles h1's slot, new generation
    EXPECT_FALSE(loop.cancel(h1)) << "old handle must not cancel new event";
    loop.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventLoopCancel, RunUntilSkipsCancelledGhosts) {
    EventLoop loop;
    auto h = loop.at(10, [] {});
    loop.at(50, [] {});
    loop.cancel(h);
    loop.runUntil(30);  // the ghost at t=10 must not stall or execute
    EXPECT_EQ(loop.now(), 30);
    EXPECT_EQ(loop.executedEvents(), 0u);
    EXPECT_EQ(loop.pendingEvents(), 1u);
}

TEST(EventLoopCancel, CancelAfterRunUntilBoundaryIsExact) {
    // runUntil(t) runs events at exactly t; a handle for such an event is
    // stale afterwards, while an event one tick later must still be
    // cancellable. Locks the boundary the parallel engine's windowed
    // stepping leans on (<= for runUntil, < for runBefore).
    EventLoop loop;
    int atBoundary = 0, afterBoundary = 0;
    auto hAt = loop.at(100, [&] { atBoundary++; });
    auto hAfter = loop.at(101, [&] { afterBoundary++; });
    loop.runUntil(100);
    EXPECT_EQ(atBoundary, 1);
    EXPECT_FALSE(loop.pending(hAt));
    EXPECT_FALSE(loop.cancel(hAt)) << "boundary event already ran";
    EXPECT_TRUE(loop.pending(hAfter));
    EXPECT_TRUE(loop.cancel(hAfter));
    loop.run();
    EXPECT_EQ(afterBoundary, 0);
}

TEST(EventLoopCancel, GhostCompactionBoundsHeapUnderChurn) {
    // Pathological cancel churn: arm and cancel far more events than ever
    // run. Lazy ghost discarding plus compaction must keep the heap and
    // slab bounded by the live population, not the churn volume.
    EventLoop loop;
    int fired = 0;
    loop.at(1'000'000, [&] { fired++; });  // one live survivor
    for (int round = 0; round < 1000; round++) {
        EventLoop::EventHandle hs[64];
        for (int i = 0; i < 64; i++) {
            hs[i] = loop.at(500'000 + round * 64 + i, [&] { fired++; });
        }
        for (int i = 0; i < 64; i++) EXPECT_TRUE(loop.cancel(hs[i]));
    }
    EXPECT_EQ(loop.pendingEvents(), 1u);
    // 6464 events were heap-pushed; compaction must have kept the heap to
    // a small multiple of the single live event, and the slab recycles
    // freed slots instead of growing per arm.
    EXPECT_LE(loop.slabSlots(), 128u);
    loop.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(loop.executedEvents(), 1u);
}

TEST(EventLoopWindow, RunBeforeExcludesTheBoundaryInstant) {
    // runBefore(t) is the parallel engine's window step: strictly-before
    // semantics, clock parked exactly at t, the t-instant FIFO intact for
    // the next window.
    EventLoop loop;
    std::vector<int> order;
    loop.at(10, [&] { order.push_back(1); });
    loop.at(20, [&] { order.push_back(2); });  // exactly the boundary
    loop.at(20, [&] { order.push_back(3); });
    loop.runBefore(20);
    EXPECT_EQ(loop.now(), 20);
    EXPECT_EQ(order, (std::vector<int>{1}));
    EXPECT_EQ(loop.pendingEvents(), 2u);
    loop.runBefore(21);  // next window picks up the whole instant, in order
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(loop.now(), 21);
}

TEST(EventLoopWindow, RunBeforePreservesSchedulingOrderAcrossWindows) {
    // Events injected for the boundary instant *during* the window (e.g. a
    // cross-shard arrival drained at the barrier) must interleave with
    // pre-existing boundary events purely by scheduling order when the
    // next window runs them.
    EventLoop loop;
    std::vector<int> order;
    loop.at(30, [&] { order.push_back(1); });
    loop.at(10, [&] {
        loop.at(30, [&] { order.push_back(2); });  // scheduled mid-window
    });
    loop.runBefore(30);
    EXPECT_TRUE(order.empty());
    loop.runBefore(40);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoopWindow, RunBeforeNeverMovesClockBackwards) {
    EventLoop loop;
    loop.runUntil(500);
    loop.runBefore(100);  // window end in the past: no-op, clock stays
    EXPECT_EQ(loop.now(), 500);
}

TEST(EventLoopWindow, NextEventTimeSeesThroughGhosts) {
    // The window-skipping optimization trusts nextEventTime(); a cancelled
    // ghost at the heap top must not masquerade as the next event.
    EventLoop loop;
    EXPECT_EQ(loop.nextEventTime(), EventLoop::kNoEvent);
    auto h = loop.at(10, [] {});
    loop.at(50, [] {});
    EXPECT_EQ(loop.nextEventTime(), 10);
    loop.cancel(h);
    EXPECT_EQ(loop.nextEventTime(), 50);
    loop.run();
    EXPECT_EQ(loop.nextEventTime(), EventLoop::kNoEvent);
}

TEST(EventLoopSlab, SlotsAreRecycledAcrossEvents) {
    EventLoop loop;
    std::function<void(int)> chain = [&](int depth) {
        if (depth > 0) loop.after(1, [&, depth] { chain(depth - 1); });
    };
    chain(10000);
    loop.run();
    EXPECT_EQ(loop.executedEvents(), 10000u);
    // One event pending at a time: the slab never grows past a handful.
    EXPECT_LE(loop.slabSlots(), 4u);
}

TEST(EventLoopSlab, LargeCallablesAreBoxedCorrectly) {
    EventLoop loop;
    std::array<int64_t, 16> payload{};  // 128 bytes: exceeds inline storage
    for (size_t i = 0; i < payload.size(); i++) payload[i] = static_cast<int64_t>(i);
    int64_t sum = 0;
    loop.at(1, [payload, &sum] {
        for (int64_t v : payload) sum += v;
    });
    loop.run();
    EXPECT_EQ(sum, 120);
}

TEST(EventLoopSlab, DestructorReleasesPendingCallables) {
    auto marker = std::make_shared<int>(7);
    std::weak_ptr<int> weak = marker;
    {
        EventLoop loop;
        loop.at(10, [marker] { (void)*marker; });
        marker.reset();
        EXPECT_FALSE(weak.expired());
    }
    EXPECT_TRUE(weak.expired()) << "pending closure destroyed with the loop";
}

TEST(Timer, FiresAfterDelay) {
    EventLoop loop;
    int fired = 0;
    Timer t(loop, [&] { fired++; });
    t.schedule(microseconds(5));
    EXPECT_TRUE(t.armed());
    loop.run();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(t.armed());
    EXPECT_EQ(loop.now(), microseconds(5));
}

TEST(Timer, CancelPreventsFiring) {
    EventLoop loop;
    int fired = 0;
    Timer t(loop, [&] { fired++; });
    t.schedule(100);
    t.cancel();
    loop.run();
    EXPECT_EQ(fired, 0);
}

TEST(Timer, RescheduleSupersedesPriorArming) {
    EventLoop loop;
    std::vector<Time> fireTimes;
    Timer t(loop, [&] { fireTimes.push_back(loop.now()); });
    t.schedule(100);
    t.schedule(200);  // supersedes
    loop.run();
    ASSERT_EQ(fireTimes.size(), 1u);
    EXPECT_EQ(fireTimes[0], 200);
}

TEST(Timer, CanRearmFromCallback) {
    EventLoop loop;
    int fired = 0;
    Timer* tp = nullptr;
    Timer t(loop, [&] {
        fired++;
        if (fired < 3) tp->schedule(10);
    });
    tp = &t;
    t.schedule(10);
    loop.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(loop.now(), 30);
}

TEST(Timer, DestructionCancelsSafely) {
    EventLoop loop;
    int fired = 0;
    {
        Timer t(loop, [&] { fired++; });
        t.schedule(50);
    }
    loop.run();  // stale heap entry must not crash or fire
    EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace homa
