// White-box tests of Homa's protocol mechanisms: grant pacing, scheduled
// priority assignment, overcommitment, BUSY/RESEND, priority collapsing.
//
// These drive a HomaTransport through a mock host so every packet it emits
// can be inspected without a network.
#include <gtest/gtest.h>

#include <deque>

#include "core/homa_transport.h"
#include "workload/workloads.h"

namespace homa {
namespace {

constexpr int64_t kRtt = 9640;

/// Minimal host: captures pushed packets, pulls on demand.
class MockHost : public HostServices {
public:
    EventLoop& loop() override { return loop_; }
    HostId id() const override { return 0; }
    void pushPacket(Packet p) override {
        p.src = 0;
        pushed.push_back(p);
    }
    void kickNic() override { kicks++; }
    Rng& rng() override { return rng_; }

    EventLoop loop_;
    Rng rng_{1};
    std::vector<Packet> pushed;
    int kicks = 0;
};

struct Harness {
    MockHost host;
    std::unique_ptr<HomaTransport> transport;
    std::vector<std::pair<Message, DeliveryInfo>> delivered;
    PriorityAllocation alloc;

    explicit Harness(HomaConfig cfg = {},
                     WorkloadId wl = WorkloadId::W3) {
        alloc = computeAllocation(workload(wl), cfg, kRtt);
        transport = std::make_unique<HomaTransport>(host, cfg, kRtt, &alloc);
        transport->setDeliveryCallback(
            [this](const Message& m, const DeliveryInfo& i) {
                delivered.emplace_back(m, i);
            });
    }

    Message makeMessage(MsgId id, uint32_t len, HostId src = 1) {
        Message m;
        m.id = id;
        m.src = src;
        m.dst = 0;
        m.length = len;
        m.created = host.loop_.now();
        return m;
    }

    /// Deliver one DATA packet of message `m` to the transport.
    void rxData(const Message& m, uint32_t offset, uint32_t len,
                uint8_t prio = 7) {
        Packet p;
        p.type = PacketType::Data;
        p.src = m.src;
        p.dst = 0;
        p.msg = m.id;
        p.created = m.created;
        p.offset = offset;
        p.length = len;
        p.messageLength = m.length;
        p.priority = prio;
        transport->handlePacket(p);
    }

    std::vector<Packet> takeGrants() {
        std::vector<Packet> out;
        for (auto& p : host.pushed) {
            if (p.type == PacketType::Grant) out.push_back(p);
        }
        host.pushed.clear();
        return out;
    }

    /// Drain all currently-sendable packets from the sender.
    std::vector<Packet> pullAll(int limit = 10000) {
        std::vector<Packet> out;
        while (limit-- > 0) {
            auto p = transport->pullPacket();
            if (!p) break;
            out.push_back(*p);
        }
        return out;
    }
};

// ---------------------------------------------------------------- sender

TEST(HomaSender, SendsUnscheduledRegionImmediately) {
    Harness h;
    Message m = h.makeMessage(1, 100000, /*src=*/0);
    m.dst = 5;
    h.transport->sendMessage(m);
    auto pkts = h.pullAll();
    int64_t bytes = 0;
    for (const auto& p : pkts) bytes += p.length;
    EXPECT_EQ(bytes, kRtt);  // exactly RTTbytes blind
    EXPECT_GT(h.host.kicks, 0);
}

TEST(HomaSender, ShortMessageEntirelyUnscheduled) {
    Harness h;
    Message m = h.makeMessage(1, 700, 0);
    m.dst = 5;
    h.transport->sendMessage(m);
    auto pkts = h.pullAll();
    ASSERT_EQ(pkts.size(), 1u);
    EXPECT_EQ(pkts[0].length, 700u);
    EXPECT_TRUE(pkts[0].hasFlag(kFlagLast));
}

TEST(HomaSender, SrptOrderAcrossMessages) {
    Harness h;
    Message big = h.makeMessage(1, 8000, 0);
    big.dst = 5;
    Message small = h.makeMessage(2, 600, 0);
    small.dst = 6;
    h.transport->sendMessage(big);
    h.transport->sendMessage(small);
    // First pull: the small message wins despite arriving second.
    auto p = h.transport->pullPacket();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->msg, 2u);
    // Then the big one streams out.
    EXPECT_EQ(h.transport->pullPacket()->msg, 1u);
}

TEST(HomaSender, UnscheduledPriorityDependsOnMessageSize) {
    Harness h;  // W3: several unscheduled levels with size cutoffs
    Message tiny = h.makeMessage(1, 40, 0);
    tiny.dst = 5;
    Message mid = h.makeMessage(2, 2000, 0);
    mid.dst = 6;
    h.transport->sendMessage(tiny);
    h.transport->sendMessage(mid);
    auto pkts = h.pullAll();
    ASSERT_GE(pkts.size(), 2u);
    EXPECT_GT(pkts[0].priority, pkts[1].priority)
        << "smaller message must use a higher unscheduled level";
}

TEST(HomaSender, StopsAtUnscheduledLimitUntilGranted) {
    Harness h;
    Message m = h.makeMessage(7, 50000, 0);
    m.dst = 5;
    h.transport->sendMessage(m);
    auto first = h.pullAll();
    int64_t sent = 0;
    for (const auto& p : first) sent += p.length;
    EXPECT_EQ(sent, kRtt);
    EXPECT_FALSE(h.transport->pullPacket().has_value());

    // A GRANT reopens the tap with the granted priority.
    Packet g;
    g.type = PacketType::Grant;
    g.msg = 7;
    g.grantOffset = static_cast<uint32_t>(kRtt) + 5000;
    g.grantPriority = 2;
    h.transport->handlePacket(g);
    auto more = h.pullAll();
    int64_t granted = 0;
    for (const auto& p : more) {
        granted += p.length;
        EXPECT_EQ(p.priority, 2);  // wire = logical with 8 levels
    }
    EXPECT_EQ(granted, 5000);
}

TEST(HomaSender, WirePriorityCollapsing) {
    HomaConfig cfg;
    cfg.wirePriorities = 2;  // HomaP2
    Harness h(cfg);
    Message tiny = h.makeMessage(1, 40, 0);
    tiny.dst = 5;
    h.transport->sendMessage(tiny);
    auto pkts = h.pullAll();
    ASSERT_EQ(pkts.size(), 1u);
    EXPECT_LT(pkts[0].priority, 2);  // collapsed onto {0, 1}
}

// -------------------------------------------------------------- receiver

TEST(HomaReceiver, NoGrantNeededForUnscheduledOnlyMessage) {
    Harness h;
    Message m = h.makeMessage(1, 5000);
    h.rxData(m, 0, 1442);
    EXPECT_TRUE(h.takeGrants().empty());
}

TEST(HomaReceiver, GrantsKeepRttBytesOutstanding) {
    Harness h;
    Message m = h.makeMessage(1, 100000);
    h.rxData(m, 0, 1442);
    auto grants = h.takeGrants();
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(grants[0].grantOffset, 1442u + kRtt);
    // Each further packet advances the grant window by its length.
    h.rxData(m, 1442, 1442);
    grants = h.takeGrants();
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(grants[0].grantOffset, 2884u + kRtt);
}

TEST(HomaReceiver, GrantNeverExceedsMessageLength) {
    Harness h;
    Message m = h.makeMessage(1, static_cast<uint32_t>(kRtt) + 1000);
    h.rxData(m, 0, 1442);
    auto grants = h.takeGrants();
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(grants[0].grantOffset, m.length);
}

TEST(HomaReceiver, SingleActiveMessageUsesLowestScheduledLevel) {
    // Figure 21 at low load: one schedulable message -> P0, leaving higher
    // levels free for preemption (Figure 5).
    Harness h;
    Message m = h.makeMessage(1, 100000);
    h.rxData(m, 0, 1442);
    auto grants = h.takeGrants();
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(grants[0].grantPriority, 0);
}

TEST(HomaReceiver, ShorterMessageGetsHigherScheduledPriority) {
    Harness h;
    Message longMsg = h.makeMessage(1, 500000, 1);
    Message shortMsg = h.makeMessage(2, 60000, 2);
    h.rxData(longMsg, 0, 1442);
    h.takeGrants();
    h.rxData(shortMsg, 0, 1442);
    auto grants = h.takeGrants();
    ASSERT_EQ(grants.size(), 1u);  // grant for the new (short) message
    EXPECT_EQ(grants[0].msg, 2u);
    EXPECT_EQ(grants[0].grantPriority, 1) << "short preempts via level 1";
    // The long message's next grant drops to level 0.
    h.rxData(longMsg, 1442, 1442);
    grants = h.takeGrants();
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(grants[0].grantPriority, 0);
}

TEST(HomaReceiver, OvercommitmentLimitsActiveSet) {
    // Degree of overcommitment = number of scheduled levels (§3.5).
    Harness h;
    const int degree = h.alloc.schedLevels;
    const int inbound = degree + 3;
    for (MsgId id = 1; id <= static_cast<MsgId>(inbound); id++) {
        Message m = h.makeMessage(id, 100000 + static_cast<uint32_t>(id),
                                  static_cast<HostId>(id));
        h.rxData(m, 0, 1442);
    }
    std::set<MsgId> grantees;
    for (const auto& g : h.takeGrants()) grantees.insert(g.msg);
    EXPECT_EQ(static_cast<int>(grantees.size()), degree);
    EXPECT_TRUE(h.transport->hasWithheldWork());
}

TEST(HomaReceiver, CompletionActivatesWithheldMessage) {
    Harness h;
    const MsgId last = static_cast<MsgId>(h.alloc.schedLevels + 1);
    std::vector<Message> msgs;
    for (MsgId id = 1; id <= last; id++) {
        msgs.push_back(h.makeMessage(id, 20000, static_cast<HostId>(id)));
        h.rxData(msgs.back(), 0, 1442);
    }
    EXPECT_TRUE(h.transport->hasWithheldWork());
    h.takeGrants();
    // Complete message 1 fully.
    for (uint32_t off = 1442; off < 20000; off += 1442) {
        h.rxData(msgs[0], off, std::min<uint32_t>(1442, 20000 - off));
    }
    ASSERT_EQ(h.delivered.size(), 1u);
    // The previously-withheld last message now gets grants.
    bool sawLast = false;
    for (const auto& g : h.takeGrants()) {
        if (g.msg == last) sawLast = true;
    }
    EXPECT_TRUE(sawLast);
    EXPECT_FALSE(h.transport->hasWithheldWork());
}

TEST(HomaReceiver, DeliversOnceDespiteDuplicateTail) {
    Harness h;
    Message m = h.makeMessage(1, 2000);
    h.rxData(m, 0, 1442);
    h.rxData(m, 1442, 558);
    ASSERT_EQ(h.delivered.size(), 1u);
    h.rxData(m, 1442, 558);  // duplicate after completion
    EXPECT_EQ(h.delivered.size(), 1u);
}

TEST(HomaReceiver, AccumulatesDelayDecomposition) {
    Harness h;
    Packet p;
    p.type = PacketType::Data;
    p.src = 1;
    p.msg = 1;
    p.created = 0;
    p.offset = 0;
    p.length = 1442;
    p.messageLength = 2000;
    p.queueingDelay = nanoseconds(300);
    p.preemptionLag = nanoseconds(700);
    h.transport->handlePacket(p);
    p.offset = 1442;
    p.length = 558;
    h.transport->handlePacket(p);
    ASSERT_EQ(h.delivered.size(), 1u);
    EXPECT_EQ(h.delivered[0].second.queueingDelay, nanoseconds(600));
    EXPECT_EQ(h.delivered[0].second.preemptionLag, nanoseconds(1400));
    EXPECT_EQ(h.delivered[0].second.packetsReceived, 2u);
}

// ------------------------------------------------------- loss / timeouts

TEST(HomaLoss, ReceiverResendsAfterTimeout) {
    Harness h;
    Message m = h.makeMessage(1, 30000);
    h.rxData(m, 0, 1442);  // then silence: granted bytes never arrive
    h.takeGrants();
    h.host.loop_.runUntil(milliseconds(5));
    bool sawResend = false;
    for (const auto& p : h.host.pushed) {
        if (p.type == PacketType::Resend) {
            sawResend = true;
            EXPECT_EQ(p.offset, 1442u);
            // Never asks beyond what was granted.
            EXPECT_LE(p.offset + p.length, 1442u + kRtt);
        }
    }
    EXPECT_TRUE(sawResend);
}

TEST(HomaLoss, NoResendForIntentionallyWithheldMessage) {
    Harness h;
    // schedLevels+1 long messages; the last is withheld. It must NOT
    // trigger RESENDs: its silence is the receiver's own doing.
    const MsgId last = static_cast<MsgId>(h.alloc.schedLevels + 1);
    std::vector<Message> msgs;
    for (MsgId id = 1; id < last; id++) {
        msgs.push_back(h.makeMessage(id, 200000, static_cast<HostId>(id)));
    }
    // The withheld message: largest remaining (SRPT-last), so it never
    // enters the active set; deliver its entire unscheduled region so
    // nothing granted is outstanding for it.
    msgs.push_back(h.makeMessage(last, 800000, static_cast<HostId>(last)));
    // Shorter messages arrive first and claim every scheduled level, so
    // the big one is withheld from its very first packet.
    for (MsgId id = 1; id < last; id++) h.rxData(msgs[id - 1], 0, 1442);
    for (int64_t off = 0; off < kRtt; off += 1442) {
        h.rxData(msgs[last - 1], static_cast<uint32_t>(off),
                 static_cast<uint32_t>(std::min<int64_t>(1442, kRtt - off)));
    }
    h.host.pushed.clear();
    h.host.loop_.runUntil(milliseconds(20));
    for (const auto& p : h.host.pushed) {
        if (p.type == PacketType::Resend) {
            EXPECT_NE(p.msg, last) << "withheld message must stay silent";
        }
    }
}

TEST(HomaLoss, SenderAnswersBusyWhenOccupiedElsewhere) {
    Harness h;
    // Two outgoing messages; exhaust the small one... actually: make msg A
    // huge and granted, msg B small: a RESEND for A while B is pending
    // yields BUSY (SRPT prefers B).
    Message a = h.makeMessage(1, 500000, 0);
    a.dst = 5;
    Message b = h.makeMessage(2, 400, 0);
    b.dst = 6;
    h.transport->sendMessage(a);
    h.transport->sendMessage(b);
    Packet r;
    r.type = PacketType::Resend;
    r.src = 5;
    r.msg = 1;
    r.offset = 0;
    r.length = 1442;
    h.transport->handlePacket(r);
    bool sawBusy = false;
    for (const auto& p : h.host.pushed) {
        if (p.type == PacketType::Busy && p.msg == 1) sawBusy = true;
    }
    EXPECT_TRUE(sawBusy);
}

TEST(HomaLoss, SenderRetransmitsWhenIdleAndAsked) {
    Harness h;
    Message a = h.makeMessage(1, 2000, 0);
    a.dst = 5;
    h.transport->sendMessage(a);
    auto sent = h.pullAll();
    ASSERT_EQ(sent.size(), 2u);
    // Much later, the receiver reports the first packet missing.
    h.host.loop_.runUntil(milliseconds(3));
    Packet r;
    r.type = PacketType::Resend;
    r.src = 5;
    r.msg = 1;
    r.offset = 0;
    r.length = 1442;
    h.transport->handlePacket(r);
    auto retrans = h.pullAll();
    ASSERT_EQ(retrans.size(), 1u);
    EXPECT_EQ(retrans[0].offset, 0u);
    EXPECT_EQ(retrans[0].length, 1442u);
    EXPECT_TRUE(retrans[0].hasFlag(kFlagRetransmit));
}

TEST(HomaLoss, ReceiverAbortsAfterMaxResends) {
    HomaConfig cfg;
    cfg.maxResends = 2;
    Harness h(cfg);
    Message m = h.makeMessage(1, 30000);
    h.rxData(m, 0, 1442);
    h.host.loop_.runUntil(milliseconds(50));
    EXPECT_EQ(h.transport->receiver().incompleteMessages(), 0u);
    EXPECT_EQ(h.transport->receiver().abortedMessages(), 1u);
    EXPECT_TRUE(h.delivered.empty());
}

TEST(HomaLoss, BusyResetsReceiverPatience) {
    Harness h;
    Message m = h.makeMessage(1, 30000);
    h.rxData(m, 0, 1442);
    for (int i = 0; i < 20; i++) {
        h.host.loop_.runUntil(h.host.loop_.now() + milliseconds(1));
        Packet busy;
        busy.type = PacketType::Busy;
        busy.src = 1;
        busy.msg = 1;
        h.transport->handlePacket(busy);
    }
    // The sender kept saying BUSY, so the receiver must not have aborted.
    EXPECT_EQ(h.transport->receiver().incompleteMessages(), 1u);
}

// -------------------------------------------------------------- incast

TEST(HomaIncast, MarkedMessageUsesSmallUnscheduledLimit) {
    Harness h;
    Message m = h.makeMessage(1, 100000, 0);
    m.dst = 5;
    m.flags = kFlagIncastMark;
    h.transport->sendMessage(m);
    auto pkts = h.pullAll();
    int64_t blind = 0;
    for (const auto& p : pkts) blind += p.length;
    EXPECT_EQ(blind, 320);  // incastUnschedBytes default
}

TEST(HomaIncast, DisabledControlIgnoresMark) {
    HomaConfig cfg;
    cfg.incastControl = false;
    Harness h(cfg);
    Message m = h.makeMessage(1, 100000, 0);
    m.dst = 5;
    m.flags = kFlagIncastMark;
    h.transport->sendMessage(m);
    auto pkts = h.pullAll();
    int64_t blind = 0;
    for (const auto& p : pkts) blind += p.length;
    EXPECT_EQ(blind, kRtt);
}

TEST(HomaIncast, ReceiverGrantWindowMatchesMarkedLimit) {
    // The receiver must base "already granted" on the marked limit, or it
    // would think RTTbytes were outstanding and under-grant.
    Harness h;
    Packet p;
    p.type = PacketType::Data;
    p.src = 1;
    p.msg = 1;
    p.created = 0;
    p.offset = 0;
    p.length = 320;
    p.messageLength = 100000;
    p.flags = kFlagIncastMark;
    h.transport->handlePacket(p);
    auto grants = h.takeGrants();
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(grants[0].grantOffset, 320u + kRtt);
}

}  // namespace
}  // namespace homa
