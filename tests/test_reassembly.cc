#include <gtest/gtest.h>

#include "sim/random.h"
#include "transport/message.h"

namespace homa {
namespace {

TEST(Reassembly, EmptyState) {
    Reassembly r(1000);
    EXPECT_FALSE(r.complete());
    EXPECT_EQ(r.receivedBytes(), 0u);
    EXPECT_EQ(r.contiguousPrefix(), 0u);
    auto gap = r.firstGap();
    ASSERT_TRUE(gap.has_value());
    EXPECT_EQ(gap->first, 0u);
    EXPECT_EQ(gap->second, 1000u);
}

TEST(Reassembly, SingleRangeCompletes) {
    Reassembly r(500);
    EXPECT_EQ(r.addRange(0, 500), 500u);
    EXPECT_TRUE(r.complete());
    EXPECT_FALSE(r.firstGap().has_value());
}

TEST(Reassembly, InOrderPackets) {
    Reassembly r(4326);  // 3 full packets
    EXPECT_EQ(r.addRange(0, 1442), 1442u);
    EXPECT_EQ(r.contiguousPrefix(), 1442u);
    EXPECT_EQ(r.addRange(1442, 1442), 1442u);
    EXPECT_EQ(r.addRange(2884, 1442), 1442u);
    EXPECT_TRUE(r.complete());
}

TEST(Reassembly, OutOfOrderPackets) {
    Reassembly r(4326);
    r.addRange(2884, 1442);
    EXPECT_EQ(r.contiguousPrefix(), 0u);
    r.addRange(0, 1442);
    EXPECT_EQ(r.contiguousPrefix(), 1442u);
    auto gap = r.firstGap();
    ASSERT_TRUE(gap.has_value());
    EXPECT_EQ(gap->first, 1442u);
    EXPECT_EQ(gap->second, 1442u);
    r.addRange(1442, 1442);
    EXPECT_TRUE(r.complete());
}

TEST(Reassembly, DuplicatesCountZeroNewBytes) {
    Reassembly r(3000);
    EXPECT_EQ(r.addRange(0, 1442), 1442u);
    EXPECT_EQ(r.addRange(0, 1442), 0u);
    EXPECT_EQ(r.addRange(100, 500), 0u);
    EXPECT_EQ(r.receivedBytes(), 1442u);
}

TEST(Reassembly, PartialOverlapCountsOnlyNewBytes) {
    Reassembly r(3000);
    r.addRange(0, 1000);
    EXPECT_EQ(r.addRange(500, 1000), 500u);
    EXPECT_EQ(r.receivedBytes(), 1500u);
    EXPECT_EQ(r.contiguousPrefix(), 1500u);
}

TEST(Reassembly, OverlapSpanningMultipleRanges) {
    Reassembly r(10000);
    r.addRange(1000, 1000);
    r.addRange(4000, 1000);
    r.addRange(7000, 1000);
    // Covers all three existing ranges plus the gaps between them.
    EXPECT_EQ(r.addRange(500, 8000), 5000u);
    EXPECT_EQ(r.receivedBytes(), 8000u);
    auto gap = r.firstGap();
    ASSERT_TRUE(gap.has_value());
    EXPECT_EQ(gap->first, 0u);
    EXPECT_EQ(gap->second, 500u);
}

TEST(Reassembly, RangeBeyondLengthIsClipped) {
    Reassembly r(1000);
    EXPECT_EQ(r.addRange(900, 1442), 100u);
    EXPECT_EQ(r.addRange(1000, 500), 0u);  // entirely past the end
    EXPECT_EQ(r.addRange(5000, 10), 0u);
    EXPECT_EQ(r.receivedBytes(), 100u);
}

TEST(Reassembly, ZeroLengthRangeIsNoop) {
    Reassembly r(1000);
    EXPECT_EQ(r.addRange(10, 0), 0u);
    EXPECT_EQ(r.receivedBytes(), 0u);
}

TEST(Reassembly, AdjacentRangesMerge) {
    Reassembly r(3000);
    r.addRange(0, 1000);
    r.addRange(1000, 1000);  // exactly adjacent
    EXPECT_EQ(r.contiguousPrefix(), 2000u);
    auto gap = r.firstGap();
    ASSERT_TRUE(gap.has_value());
    EXPECT_EQ(gap->first, 2000u);
}

// Property: random permutations of packets with random duplicates always
// reassemble exactly, and newly-counted bytes always sum to the length.
class ReassemblyProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReassemblyProperty, RandomArrivalOrderAlwaysCompletes) {
    Rng rng(GetParam());
    const uint32_t length = 1 + static_cast<uint32_t>(rng.below(200000));
    Reassembly r(length);

    std::vector<std::pair<uint32_t, uint32_t>> packets;
    for (uint32_t off = 0; off < length; off += kMaxPayload) {
        packets.emplace_back(off, std::min<uint32_t>(kMaxPayload, length - off));
    }
    // Shuffle and inject duplicates.
    for (size_t i = packets.size(); i > 1; i--) {
        std::swap(packets[i - 1], packets[rng.below(i)]);
    }
    const size_t dups = rng.below(packets.size() + 1);
    for (size_t i = 0; i < dups; i++) {
        packets.push_back(packets[rng.below(packets.size())]);
    }

    uint64_t newBytes = 0;
    for (auto [off, len] : packets) newBytes += r.addRange(off, len);
    EXPECT_TRUE(r.complete());
    EXPECT_EQ(newBytes, length);
    EXPECT_EQ(r.contiguousPrefix(), length);
    EXPECT_FALSE(r.firstGap().has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReassemblyProperty,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace homa
