// Tests for the optional extensions (the paper's §3.5/§5.1 future-work
// alternatives): oldest-message bandwidth reservation and fixed
// overcommitment degree.
#include <gtest/gtest.h>

#include "driver/experiment.h"
#include "driver/oracle.h"

namespace homa {
namespace {

struct TestNet {
    NetworkConfig cfg = NetworkConfig::singleRack16();
    std::unique_ptr<Network> net;
    std::vector<std::pair<Message, DeliveryInfo>> delivered;

    explicit TestNet(HomaConfig homa) {
        net = std::make_unique<Network>(
            cfg, HomaTransport::factory(homa, cfg, &workload(WorkloadId::W4)));
        net->setDeliveryCallback(
            [this](const Message& m, const DeliveryInfo& i) {
                delivered.emplace_back(m, i);
            });
    }

    Message send(HostId src, HostId dst, uint32_t len) {
        Message m;
        m.id = net->nextMsgId();
        m.src = src;
        m.dst = dst;
        m.length = len;
        net->sendMessage(m);
        m.created = net->loop().now();
        return m;
    }
};

Duration completionOf(const TestNet& t, MsgId id) {
    for (const auto& [m, info] : t.delivered) {
        if (m.id == id) return info.completed - m.created;
    }
    return -1;
}

TEST(OldestReservation, OldMessageMakesProgressDespiteSrptPressure) {
    // One old 1MB message competes with a continuous stream of newer,
    // shorter messages that SRPT always prefers. With the reservation the
    // old message finishes much sooner.
    auto run = [](double reservation) {
        HomaConfig cfg;
        cfg.oldestReservation = reservation;
        TestNet t(cfg);
        Message old = t.send(1, 0, 1'000'000);
        // Newer 200KB messages arrive every 150us from rotating senders;
        // each is shorter-remaining than the old message for its lifetime.
        for (int i = 0; i < 40; i++) {
            t.net->loop().at(microseconds(20 + 150 * i), [&t, i] {
                t.send(static_cast<HostId>(2 + (i % 13)), 0, 200'000);
            });
        }
        t.net->loop().run();
        return completionOf(t, old.id);
    };
    const Duration without = run(0.0);
    const Duration with = run(0.10);
    ASSERT_GT(without, 0);
    ASSERT_GT(with, 0);
    EXPECT_LT(with, without) << "reservation must help the starved message";
}

TEST(OldestReservation, NoEffectWhenAlone) {
    // A lone message behaves identically with or without the reservation.
    auto run = [](double reservation) {
        HomaConfig cfg;
        cfg.oldestReservation = reservation;
        TestNet t(cfg);
        Message m = t.send(1, 0, 500'000);
        t.net->loop().run();
        return completionOf(t, m.id);
    };
    EXPECT_EQ(run(0.0), run(0.15));
}

TEST(OldestReservation, AllMessagesStillComplete) {
    HomaConfig cfg;
    cfg.oldestReservation = 0.10;
    TestNet t(cfg);
    for (int s = 1; s <= 15; s++) {
        t.send(static_cast<HostId>(s), 0, 50'000 + 1000 * s);
    }
    t.net->loop().run();
    EXPECT_EQ(t.delivered.size(), 15u);
}

TEST(FixedOvercommit, DegreeOneGrantsSingleMessage) {
    HomaConfig cfg;
    cfg.overcommitDegree = 1;
    TestNet t(cfg);
    for (int s = 1; s <= 5; s++) t.send(static_cast<HostId>(s), 0, 100'000);
    t.net->loop().runUntil(microseconds(200));
    EXPECT_TRUE(t.net->host(0).transport().hasWithheldWork());
    t.net->loop().run();
    EXPECT_EQ(t.delivered.size(), 5u);
}

TEST(FixedOvercommit, MoreOvercommitmentWastesLessBandwidth) {
    // The essence of Figure 16: receiver bandwidth wasted by withheld
    // grants shrinks monotonically as the overcommitment degree grows.
    auto wasted = [](int degree) {
        ExperimentConfig cfg;
        cfg.net = NetworkConfig::fatTree144();
        cfg.proto.homa.logicalPriorities = 1 + degree;
        cfg.proto.homa.unschedPriorities = 1;
        cfg.traffic.workload = WorkloadId::W4;
        cfg.traffic.load = 0.8;
        cfg.traffic.stop = milliseconds(6);
        cfg.measureWastedBandwidth = true;
        return runExperiment(cfg).wastedBandwidth;
    };
    const double w1 = wasted(1);
    const double w4 = wasted(4);
    const double w7 = wasted(7);
    EXPECT_GT(w1, 0.02) << "degree 1 must waste noticeable bandwidth";
    EXPECT_GT(w1, 2 * w4);
    EXPECT_GE(w4, w7);
}

}  // namespace
}  // namespace homa
