#include <gtest/gtest.h>

#include "core/homa_transport.h"
#include "workload/generator.h"
#include "workload/workloads.h"

namespace homa {
namespace {

TEST(Workloads, AllFiveExistWithCorrectOrdering) {
    // Figure 1: workloads ordered by average message size, W1 smallest.
    double prev = 0;
    for (WorkloadId id : kAllWorkloads) {
        const double mean = workload(id).meanSize();
        EXPECT_GT(mean, prev) << workload(id).name();
        prev = mean;
    }
}

TEST(Workloads, LookupByName) {
    EXPECT_EQ(workloadFromName("W3"), WorkloadId::W3);
    EXPECT_THROW(workloadFromName("W9"), std::invalid_argument);
}

TEST(Workloads, DecilesMatchThePaperTicks) {
    EXPECT_EQ(workload(WorkloadId::W1).deciles()[0], 2u);
    EXPECT_EQ(workload(WorkloadId::W1).deciles()[9], 16129u);
    EXPECT_EQ(workload(WorkloadId::W3).deciles()[2], 110u);
    EXPECT_EQ(workload(WorkloadId::W4).deciles()[9], 10000000u);
    EXPECT_EQ(workload(WorkloadId::W5).deciles()[9], 28840000u);
}

TEST(Workloads, W5IsFullPacketQuantized) {
    const auto& w5 = workload(WorkloadId::W5);
    for (uint32_t d : w5.deciles()) EXPECT_EQ(d % 1442, 0u) << d;
    Rng rng(3);
    for (int i = 0; i < 1000; i++) {
        EXPECT_EQ(w5.sample(rng) % 1442, 0u);
    }
}

class DistributionProperty
    : public ::testing::TestWithParam<WorkloadId> {};

TEST_P(DistributionProperty, SamplesStayInBounds) {
    const auto& dist = workload(GetParam());
    Rng rng(21);
    for (int i = 0; i < 20000; i++) {
        const uint32_t s = dist.sample(rng);
        EXPECT_GE(s, dist.minSize());
        EXPECT_LE(s, dist.maxSize());
    }
}

TEST_P(DistributionProperty, EmpiricalDecilesMatchDeclared) {
    // The sampled distribution must pass through the declared deciles: the
    // fraction of samples <= decile[i] must be ~ (i+1)/10.
    const auto& dist = workload(GetParam());
    Rng rng(22);
    const int n = 200000;
    std::vector<uint32_t> samples(n);
    for (auto& s : samples) s = dist.sample(rng);
    for (int i = 0; i < 9; i++) {  // the 10th is the max, trivially 100%
        const uint32_t edge = dist.deciles()[i];
        int below = 0;
        for (uint32_t s : samples) {
            if (s <= edge) below++;
        }
        const double frac = static_cast<double>(below) / n;
        EXPECT_NEAR(frac, (i + 1) / 10.0, 0.02)
            << dist.name() << " decile " << i;
    }
}

TEST_P(DistributionProperty, CdfQuantileAreInverse) {
    const auto& dist = workload(GetParam());
    for (double p : {0.05, 0.15, 0.35, 0.55, 0.75, 0.95}) {
        const double q = dist.quantile(p);
        EXPECT_NEAR(dist.cdf(q), p, 0.01) << dist.name();
    }
}

TEST_P(DistributionProperty, MeanMatchesMonteCarlo) {
    const auto& dist = workload(GetParam());
    Rng rng(23);
    double sum = 0;
    const int n = 300000;
    for (int i = 0; i < n; i++) sum += dist.sample(rng);
    const double mcMean = sum / n;
    // Heavy tails make this noisy; 10% agreement is enough to catch a
    // broken closed form.
    EXPECT_NEAR(dist.meanSize() / mcMean, 1.0, 0.10) << dist.name();
}

TEST_P(DistributionProperty, MeanWireBytesExceedsMeanSize) {
    const auto& dist = workload(GetParam());
    EXPECT_GT(dist.meanWireBytes(), dist.meanSize());
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, DistributionProperty,
                         ::testing::ValuesIn(kAllWorkloads),
                         [](const auto& info) {
                             return workload(info.param).name();
                         });

TEST(MessageWireBytes, SinglePacket) {
    EXPECT_EQ(messageWireBytes(1), 1 + kHeaderBytes + kFrameOverhead);
    EXPECT_EQ(messageWireBytes(1442), 1442 + kHeaderBytes + kFrameOverhead);
}

TEST(MessageWireBytes, MultiPacket) {
    EXPECT_EQ(messageWireBytes(1443), 1443 + 2 * (kHeaderBytes + kFrameOverhead));
    EXPECT_EQ(messageWireBytes(10 * 1442),
              10 * 1442 + 10 * (kHeaderBytes + kFrameOverhead));
}

TEST(TrafficGenerator, AchievesConfiguredLoad) {
    NetworkConfig cfg = NetworkConfig::singleRack16();
    Network net(cfg, HomaTransport::factory({}, cfg, &workload(WorkloadId::W2)));
    TrafficConfig tcfg;
    tcfg.workload = WorkloadId::W2;
    tcfg.load = 0.5;
    tcfg.stop = milliseconds(20);
    TrafficGenerator gen(net, tcfg);
    gen.start();
    net.loop().runUntil(tcfg.stop);

    // Offered wire bytes / capacity must be ~the requested load.
    double wire = 0;
    uint64_t n = gen.generatedMessages();
    ASSERT_GT(n, 1000u);
    wire = static_cast<double>(gen.generatedBytes()) +
           /* header overhead approximation via mean */ 0.0;
    const double capacity = 16 * 1.25e9 * toSeconds(tcfg.stop);
    const double loadNoHeaders = wire / capacity;
    EXPECT_GT(loadNoHeaders, 0.35);
    EXPECT_LT(loadNoHeaders, 0.60);
}

TEST(TrafficGenerator, DestinationsNeverSelf) {
    NetworkConfig cfg = NetworkConfig::singleRack16();
    Network net(cfg, HomaTransport::factory({}, cfg, &workload(WorkloadId::W1)));
    TrafficConfig tcfg;
    tcfg.workload = WorkloadId::W1;
    tcfg.load = 0.3;
    tcfg.stop = milliseconds(2);
    bool ok = true;
    TrafficGenerator gen(net, tcfg, [&](const Message& m) {
        if (m.src == m.dst) ok = false;
    });
    gen.start();
    net.loop().run();
    EXPECT_TRUE(ok);
    EXPECT_GT(gen.generatedMessages(), 100u);
}

}  // namespace
}  // namespace homa
