// The oracle must agree with the event simulator on an idle network —
// this pins down every timing constant in the substrate.
#include <gtest/gtest.h>

#include "core/homa_transport.h"
#include "driver/oracle.h"
#include "sim/network.h"
#include "workload/workloads.h"

namespace homa {
namespace {

TEST(Oracle, MonotoneInSize) {
    Oracle oracle(NetworkConfig::fatTree144());
    Duration prev = 0;
    for (uint32_t size = 1; size < 2'000'000; size = size * 3 / 2 + 7) {
        const Duration t = oracle.bestOneWay(size);
        EXPECT_GT(t, prev == 0 ? 0 : prev - 1);
        EXPECT_GE(t, prev);
        prev = t;
    }
}

TEST(Oracle, SmallMessageMatchesPaperConstant) {
    // The paper: minimum one-way time for a small message is 2.3 us on the
    // simulated fat-tree.
    Oracle oracle(NetworkConfig::fatTree144());
    const double us = toMicros(oracle.bestOneWay(100));
    EXPECT_GT(us, 2.0);
    EXPECT_LT(us, 2.8);
}

TEST(Oracle, RttBytesMatchesPaperConstant) {
    // ~9.7 KB at 10 Gbps (§5.2).
    const auto t = NetworkTimings::compute(NetworkConfig::fatTree144());
    EXPECT_GT(t.rttBytes, 9000);
    EXPECT_LT(t.rttBytes, 10500);
    EXPECT_NEAR(toMicros(t.rttSmallGrant), 7.8, 0.4);
}

TEST(Oracle, SingleRackRpcMatchesPaperScale) {
    // The paper: best-case 100-byte echo RPC ~4.7 us on the CloudLab
    // cluster (whose software overheads differ slightly from the simulated
    // 1.5 us); accept the same ballpark.
    Oracle oracle(NetworkConfig::singleRack16());
    const double us = toMicros(oracle.bestEchoRpc(100));
    EXPECT_GT(us, 3.0);
    EXPECT_LT(us, 5.5);
}

TEST(Oracle, LargeMessageApproachesLineRate) {
    Oracle oracle(NetworkConfig::fatTree144());
    const uint32_t size = 10'000'000;
    const double secs = toSeconds(oracle.bestOneWay(size));
    const double lineRate = static_cast<double>(messageWireBytes(size)) / 1.25e9;
    EXPECT_GT(secs, lineRate);
    EXPECT_LT(secs, lineRate * 1.01);
}

TEST(Oracle, CachedLookupsAreStable) {
    Oracle oracle(NetworkConfig::fatTree144());
    for (uint32_t s : {1u, 777u, 10000u}) {
        EXPECT_EQ(oracle.bestOneWay(s), oracle.bestOneWay(s));
    }
}

// The definitive check: Homa on an otherwise idle simulated network hits
// the oracle exactly for unscheduled-only messages, across both topologies
// and a sweep of sizes.
class OracleVsSim
    : public ::testing::TestWithParam<std::tuple<bool, uint32_t>> {};

TEST_P(OracleVsSim, IdleNetworkMatchesOracleExactly) {
    const auto [singleRack, size] = GetParam();
    NetworkConfig cfg = singleRack ? NetworkConfig::singleRack16()
                                   : NetworkConfig::fatTree144();
    Network net(cfg, HomaTransport::factory({}, cfg, &workload(WorkloadId::W3)));
    Oracle oracle(cfg);

    Duration measured = -1;
    Time created = 0;
    net.setDeliveryCallback([&](const Message& m, const DeliveryInfo& info) {
        measured = info.completed - m.created;
        (void)created;
    });
    Message m;
    m.id = net.nextMsgId();
    m.src = 0;
    m.dst = static_cast<HostId>(cfg.hostCount() - 1);
    m.length = size;
    net.sendMessage(m);
    net.loop().run();

    ASSERT_GE(measured, 0);
    // Single-packet messages match the oracle exactly. Multi-packet ones
    // can exceed it slightly: the oracle is the best case over spraying
    // choices, and an unlucky draw can queue a runt packet behind a full
    // one (~66 ns per hop); scheduled messages may also pay a one-grant
    // hiccup. Never faster than the oracle, never more than 10% + 1 us
    // slower on an idle network.
    const Duration best = oracle.bestOneWay(size);
    EXPECT_GE(measured, best);
    if (size <= static_cast<uint32_t>(kMaxPayload)) {
        EXPECT_EQ(measured, best);
    } else {
        EXPECT_LE(static_cast<double>(measured),
                  1.10 * static_cast<double>(best) + microseconds(1));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OracleVsSim,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(1u, 64u, 100u, 500u, 1442u, 1443u,
                                         2884u, 5000u, 9000u, 20000u, 100000u,
                                         1000000u)),
    [](const auto& info) {
        return std::string(std::get<0>(info.param) ? "rack" : "fattree") +
               "_" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace homa
