// Tests for the unscheduled priority allocation algorithm (Figure 4).
#include <gtest/gtest.h>

#include "sched/priority_allocator.h"
#include "sim/topology.h"
#include "workload/workloads.h"

namespace homa {
namespace {

int64_t rttBytes() {
    static const int64_t v =
        NetworkTimings::compute(NetworkConfig::fatTree144()).rttBytes;
    return v;
}

TEST(Allocation, W1AllocatesMostLevelsToUnscheduled) {
    // W1: nearly all bytes are in messages < RTTbytes, so almost all levels
    // go to unscheduled traffic (the paper: 7 of 8).
    auto alloc = computeAllocation(workload(WorkloadId::W1), {}, rttBytes());
    EXPECT_GE(alloc.unschedLevels, 6);
    EXPECT_LE(alloc.unschedLevels, 7);
    EXPECT_EQ(alloc.unschedLevels + alloc.schedLevels, 8);
}

TEST(Allocation, W4W5AllocateOneUnscheduledLevel) {
    // W4/W5 bytes are dominated by huge messages; the paper allocates just
    // one unscheduled level.
    for (WorkloadId wl : {WorkloadId::W4, WorkloadId::W5}) {
        auto alloc = computeAllocation(workload(wl), {}, rttBytes());
        EXPECT_EQ(alloc.unschedLevels, 1) << workload(wl).name();
        EXPECT_EQ(alloc.schedLevels, 7) << workload(wl).name();
    }
}

TEST(Allocation, W3SplitsRoughlyEvenly) {
    // Figure 21: W3 uses 4 scheduled + 4 unscheduled.
    auto alloc = computeAllocation(workload(WorkloadId::W3), {}, rttBytes());
    EXPECT_GE(alloc.unschedLevels, 3);
    EXPECT_LE(alloc.unschedLevels, 5);
}

TEST(Allocation, W3TwoLevelCutoffNearPaperValue) {
    // The paper: balancing unscheduled bytes across 2 levels for W3 picks a
    // cutoff of ~1930 bytes (Figure 18).
    HomaConfig cfg;
    cfg.unschedPriorities = 2;
    auto alloc = computeAllocation(workload(WorkloadId::W3), cfg, rttBytes());
    ASSERT_EQ(alloc.cutoffs.size(), 1u);
    EXPECT_GT(alloc.cutoffs[0], 1200u);
    EXPECT_LT(alloc.cutoffs[0], 2800u);
}

TEST(Allocation, CutoffsAscendAndShorterMessagesGetHigherPriority) {
    auto alloc = computeAllocation(workload(WorkloadId::W2), {}, rttBytes());
    for (size_t i = 1; i < alloc.cutoffs.size(); i++) {
        EXPECT_GE(alloc.cutoffs[i], alloc.cutoffs[i - 1]);
    }
    // Priorities are non-increasing in message size.
    int prev = kPriorityLevels;
    for (uint32_t size : {1u, 100u, 1000u, 10000u, 100000u}) {
        const int prio = alloc.unschedPriorityFor(size);
        EXPECT_LE(prio, prev);
        EXPECT_GE(prio, alloc.lowestUnschedLevel());
        EXPECT_LE(prio, kHighestPriority);
        prev = prio;
    }
    // The smallest message always gets the top level.
    EXPECT_EQ(alloc.unschedPriorityFor(1), kHighestPriority);
}

TEST(Allocation, ExplicitCutoffsRespected) {
    HomaConfig cfg;
    cfg.unschedPriorities = 2;
    cfg.explicitCutoffs = {500};
    auto alloc = computeAllocation(workload(WorkloadId::W3), cfg, rttBytes());
    ASSERT_EQ(alloc.cutoffs.size(), 1u);
    EXPECT_EQ(alloc.cutoffs[0], 500u);
    EXPECT_EQ(alloc.unschedPriorityFor(400), kHighestPriority);
    EXPECT_EQ(alloc.unschedPriorityFor(600), kHighestPriority - 1);
}

TEST(Allocation, BalancesUnscheduledBytesAcrossLevels) {
    // Property: with the computed cutoffs, each unscheduled level carries
    // roughly 1/k of unscheduled bytes.
    const auto& dist = workload(WorkloadId::W2);
    auto alloc = computeAllocation(dist, {}, rttBytes());
    const int k = alloc.unschedLevels;
    ASSERT_GE(k, 2);
    std::vector<double> perLevel(k, 0);
    double total = 0;
    Rng rng(31);
    for (int i = 0; i < 200000; i++) {
        const uint32_t size = dist.sample(rng);
        const double unsched =
            std::min<double>(size, static_cast<double>(rttBytes()));
        const int level = alloc.unschedPriorityFor(size);
        perLevel[kHighestPriority - level] += unsched;
        total += unsched;
    }
    for (int lvl = 0; lvl < k; lvl++) {
        EXPECT_NEAR(perLevel[lvl] / total, 1.0 / k, 0.08)
            << "level " << lvl;
    }
}

TEST(Allocation, SingleLevelHasNoCutoffs) {
    HomaConfig cfg;
    cfg.unschedPriorities = 1;
    auto alloc = computeAllocation(workload(WorkloadId::W1), cfg, rttBytes());
    EXPECT_TRUE(alloc.cutoffs.empty());
    EXPECT_EQ(alloc.unschedPriorityFor(1), kHighestPriority);
    EXPECT_EQ(alloc.unschedPriorityFor(1 << 20), kHighestPriority);
}

TEST(Allocation, ReducedLogicalLevels) {
    HomaConfig cfg;
    cfg.logicalPriorities = 4;
    auto alloc = computeAllocation(workload(WorkloadId::W3), cfg, rttBytes());
    EXPECT_EQ(alloc.logicalLevels, 4);
    EXPECT_EQ(alloc.unschedLevels + alloc.schedLevels, 4);
    EXPECT_LE(alloc.unschedPriorityFor(1), 3);
}

TEST(TrafficMeter, FallsBackUntilEnoughData) {
    TrafficMeter meter;
    PriorityAllocation fallback;
    fallback.unschedLevels = 3;
    fallback.schedLevels = 5;
    auto alloc = meter.allocate({}, rttBytes(), fallback);
    EXPECT_EQ(alloc.unschedLevels, 3);
}

TEST(TrafficMeter, LearnsDistributionOnline) {
    // Feed W4-like sizes (huge messages): the meter must converge to one
    // unscheduled level.
    TrafficMeter meter;
    const auto& dist = workload(WorkloadId::W4);
    Rng rng(5);
    for (int i = 0; i < 5000; i++) meter.recordMessage(dist.sample(rng));
    auto alloc = meter.allocate({}, rttBytes(), {});
    EXPECT_EQ(alloc.unschedLevels, 1);

    // Now feed W1-like tiny sizes; it adapts the other way.
    TrafficMeter meter2;
    const auto& w1 = workload(WorkloadId::W1);
    for (int i = 0; i < 5000; i++) meter2.recordMessage(w1.sample(rng));
    auto alloc2 = meter2.allocate({}, rttBytes(), {});
    EXPECT_GE(alloc2.unschedLevels, 6);
}

TEST(TrafficMeter, ReservoirBoundsMemory) {
    TrafficMeter meter(256);
    for (int i = 0; i < 100000; i++) meter.recordMessage(100);
    EXPECT_EQ(meter.observed(), 100000u);
    auto alloc = meter.allocate({}, rttBytes(), {});
    // All bytes unscheduled -> round(1.0 * 8) clamped to 7 levels.
    EXPECT_EQ(alloc.unschedLevels, 7);
}

}  // namespace
}  // namespace homa
