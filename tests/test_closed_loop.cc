// Closed-loop workload tests: the outstanding-window invariant (verified
// with accounting external to the generator), stall behavior without
// deliveries, think-time pacing, ON-OFF gating, and the end-to-end
// closed-loop metrics reported by runExperiment / runRpcExperiment.
#include <gtest/gtest.h>

#include <algorithm>

#include "driver/rpc_experiment.h"
#include "driver/sweep.h"
#include "workload/generator.h"

namespace homa {
namespace {

// Delivers every message back after a fixed service time without
// simulating any packets: exercises the pure closed-loop control loop.
class EchoDelayTransport final : public Transport {
public:
    explicit EchoDelayTransport(HostServices& host) : host_(host) {}
    void sendMessage(const Message& m) override {
        host_.loop().after(microseconds(3), [this, m] {
            DeliveryInfo info;
            info.completed = host_.loop().now();
            notifyDelivered(m, info);
        });
    }
    void handlePacket(const Packet&) override {}

private:
    HostServices& host_;
};

// Swallows every message: nothing is ever delivered.
class SinkTransport final : public Transport {
public:
    void sendMessage(const Message&) override {}
    void handlePacket(const Packet&) override {}
};

TrafficConfig closedLoopConfig(int window, Duration think = 0,
                               bool onOff = false) {
    TrafficConfig cfg;
    cfg.workload = WorkloadId::W1;
    cfg.stop = milliseconds(2);
    cfg.scenario.kind = TrafficPatternKind::ClosedLoop;
    cfg.scenario.closedLoopWindow = window;
    cfg.scenario.thinkTime = think;
    cfg.scenario.onOff.enabled = onOff;
    return cfg;
}

struct LoopRun {
    uint64_t generated = 0;
    int maxSeen = 0;       // external per-host outstanding accounting
    int genReported = 0;   // TrafficGenerator::maxOutstanding()
};

LoopRun runLoop(const TrafficConfig& cfg) {
    Network net(NetworkConfig::singleRack16(), [](HostServices& h) {
        return std::make_unique<EchoDelayTransport>(h);
    });
    LoopRun run;
    std::vector<int> outstanding(net.hostCount(), 0);
    TrafficGenerator gen(net, cfg, [&](const Message& m) {
        outstanding[m.src]++;
        run.maxSeen = std::max(run.maxSeen, outstanding[m.src]);
    });
    net.setDeliveryCallback([&](const Message& m, const DeliveryInfo&) {
        outstanding[m.src]--;
        EXPECT_GE(outstanding[m.src], 0);
        gen.onDelivered(m);
    });
    gen.start();
    net.loop().runUntil(cfg.stop + milliseconds(1));
    run.generated = gen.generatedMessages();
    run.genReported = gen.maxOutstanding();
    return run;
}

TEST(ClosedLoop, WindowNeverExceeded) {
    const int window = 3;
    LoopRun run = runLoop(closedLoopConfig(window));
    EXPECT_GT(run.generated, 1000u);  // the loop actually turned
    EXPECT_GT(run.maxSeen, 0);
    EXPECT_LE(run.maxSeen, window);
    EXPECT_EQ(run.genReported, run.maxSeen);
}

TEST(ClosedLoop, WindowHeldUnderOnOffGating) {
    const int window = 4;
    LoopRun plain = runLoop(closedLoopConfig(window));
    LoopRun gated = runLoop(closedLoopConfig(window, 0, /*onOff=*/true));
    EXPECT_GT(gated.generated, 100u);
    EXPECT_LE(gated.maxSeen, window);
    // Idle periods must actually suppress issuing: the gated run moves
    // well fewer messages than the free-running loop (duty cycle 0.25).
    EXPECT_LT(static_cast<double>(gated.generated),
              0.7 * static_cast<double>(plain.generated));
}

TEST(ClosedLoop, StallsAtWindowWithoutDeliveries) {
    // With a transport that never delivers, each host issues exactly its
    // initial window and then waits forever.
    Network net(NetworkConfig::singleRack16(),
                [](HostServices&) { return std::make_unique<SinkTransport>(); });
    TrafficConfig cfg = closedLoopConfig(5);
    TrafficGenerator gen(net, cfg);
    gen.start();
    net.loop().runUntil(cfg.stop + milliseconds(1));
    EXPECT_EQ(gen.generatedMessages(),
              static_cast<uint64_t>(net.hostCount()) * 5u);
    EXPECT_EQ(gen.maxOutstanding(), 5);
}

TEST(ClosedLoop, ThinkTimeSlowsTheLoop) {
    LoopRun eager = runLoop(closedLoopConfig(2));
    LoopRun thoughtful = runLoop(closedLoopConfig(2, microseconds(30)));
    EXPECT_GT(thoughtful.generated, 100u);
    // Service time is 3 us; adding a mean 30 us think time must cut
    // throughput by several-fold.
    EXPECT_LT(static_cast<double>(thoughtful.generated),
              0.5 * static_cast<double>(eager.generated));
}

TEST(ClosedLoop, EndToEndExperimentReportsClosedLoopMetrics) {
    ExperimentConfig cfg;
    cfg.net = NetworkConfig::singleRack16();
    cfg.traffic.workload = WorkloadId::W1;
    cfg.traffic.stop = milliseconds(2);
    cfg.traffic.scenario.kind = TrafficPatternKind::ClosedLoop;
    cfg.traffic.scenario.closedLoopWindow = 4;
    cfg.drainGrace = milliseconds(20);
    ExperimentResult r = runExperiment(cfg);
    EXPECT_GT(r.delivered, 0u);
    EXPECT_TRUE(r.keptUp);  // bounded in-flight: the loop always keeps up
    EXPECT_GT(r.maxOutstanding, 0);
    EXPECT_LE(r.maxOutstanding, 4);
    ASSERT_TRUE(r.closedLoop);
    EXPECT_EQ(r.closedLoop->clients(), 16);
    uint64_t sum = 0;
    for (int c = 0; c < r.closedLoop->clients(); c++) {
        EXPECT_GT(r.closedLoop->client(c).completed, 0u) << "client " << c;
        sum += r.closedLoop->client(c).completed;
    }
    EXPECT_EQ(sum, r.closedLoop->totalCompleted());
    EXPECT_GT(r.closedLoop->aggregateOpsPerSec(), 0.0);
    EXPECT_GT(r.closedLoop->aggregateGbps(), 0.0);
    EXPECT_GE(r.closedLoop->latencyPercentileUs(0.99),
              r.closedLoop->latencyPercentileUs(0.50));
    EXPECT_GE(r.closedLoop->maxClientCompleted(),
              r.closedLoop->minClientCompleted());
}

TEST(ClosedLoop, OpenLoopResultsCarryNoClosedLoopTracker) {
    ExperimentConfig cfg;
    cfg.net = NetworkConfig::singleRack16();
    cfg.traffic.workload = WorkloadId::W1;
    cfg.traffic.load = 0.4;
    cfg.traffic.stop = milliseconds(1);
    ExperimentResult r = runExperiment(cfg);
    EXPECT_GT(r.delivered, 0u);
    EXPECT_FALSE(r.closedLoop);
    EXPECT_EQ(r.maxOutstanding, 0);
}

TEST(ClosedLoopRpc, ClosedLoopEchoRpcsReportPerClientThroughput) {
    RpcExperimentConfig cfg;
    cfg.workload = WorkloadId::W1;
    cfg.stop = milliseconds(4);
    cfg.closedLoopWindow = 2;
    RpcExperimentResult r = runRpcExperiment(cfg);
    EXPECT_GT(r.completed, 0u);
    EXPECT_TRUE(r.keptUp);
    ASSERT_TRUE(r.perClient);
    EXPECT_EQ(r.perClient->clients(), cfg.clients);
    for (int c = 0; c < cfg.clients; c++) {
        EXPECT_GT(r.perClient->client(c).completed, 0u) << "client " << c;
    }
    EXPECT_GT(r.perClient->latencyPercentileUs(0.50), 0.0);
}

TEST(ClosedLoopRpc, RpcModesAreDeterministic) {
    for (bool onOff : {false, true}) {
        RpcExperimentConfig cfg;
        cfg.workload = WorkloadId::W1;
        cfg.stop = milliseconds(3);
        cfg.closedLoopWindow = 2;
        cfg.thinkTime = microseconds(5);
        cfg.onOff.enabled = onOff;
        RpcExperimentResult a = runRpcExperiment(cfg);
        RpcExperimentResult b = runRpcExperiment(cfg);
        EXPECT_GT(a.completed, 0u) << "onOff=" << onOff;
        EXPECT_EQ(a.completed, b.completed) << "onOff=" << onOff;
        EXPECT_EQ(a.perClient->totalCompleted(), b.perClient->totalCompleted());
        EXPECT_EQ(a.perClient->latencyPercentileUs(0.99),
                  b.perClient->latencyPercentileUs(0.99));
    }
}

TEST(ClosedLoopRpc, OnOffOpenLoopStillCalibrates) {
    // Open-loop RPC arrivals under ON-OFF: the long-run issue rate tracks
    // `load`; compare completed counts with and without modulation.
    RpcExperimentConfig base;
    base.workload = WorkloadId::W1;
    base.load = 0.4;
    base.stop = milliseconds(8);
    RpcExperimentConfig bursty = base;
    bursty.onOff.enabled = true;
    bursty.onOff.onMean = microseconds(50);
    bursty.onOff.offMean = microseconds(150);
    RpcExperimentResult a = runRpcExperiment(base);
    RpcExperimentResult b = runRpcExperiment(bursty);
    ASSERT_GT(a.issued, 1000u);
    EXPECT_NEAR(static_cast<double>(b.issued), static_cast<double>(a.issued),
                0.10 * static_cast<double>(a.issued));
}

}  // namespace
}  // namespace homa
