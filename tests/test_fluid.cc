// Fluid fast-path tests: engine calibration against the oracle, the
// FluidFidelity suite (hybrid-vs-packet slowdown percentiles within
// tolerance, threshold extremes, conservation ledgers), determinism
// goldens (same-seed replay, thread-count invariance), and the
// "+fluid:" scenario spec grammar.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "driver/sweep.h"
#include "sim/fluid.h"

namespace homa {
namespace {

ExperimentConfig fluidConfig(WorkloadId wl, double load, int64_t threshold) {
    ExperimentConfig cfg;
    cfg.traffic.workload = wl;
    cfg.traffic.load = load;
    cfg.traffic.stop = milliseconds(2);
    cfg.drainGrace = milliseconds(50);
    cfg.fluidThresholdBytes = threshold;
    return cfg;
}

// Larger than any workload's biggest message: admits nothing.
constexpr int64_t kNeverFluid = int64_t{1} << 40;

// ---------------------------------------------------------------- engine

struct EngineFixture {
    NetworkConfig net = NetworkConfig::fatTree144();
    EventLoop loop;
    Oracle oracle;
    FluidEngine engine;
    Time deliveredAt = -1;
    uint64_t deliveries = 0;

    explicit EngineFixture(double reserved = 0.0,
                           NetworkConfig cfg = NetworkConfig::fatTree144())
        : net(cfg), oracle(net), engine(loop, net, makeConfig(reserved)) {
        engine.setDeliveryCallback(
            [this](const Message&, const DeliveryInfo& info) {
                deliveredAt = info.completed;
                deliveries++;
            });
    }

    FluidConfig makeConfig(double reserved) {
        FluidConfig fc;
        fc.thresholdBytes = 0;
        fc.reservedFraction = reserved;
        fc.bestOneWay = [this](uint32_t s, bool intraRack) {
            return oracle.bestOneWay(s, intraRack);
        };
        return fc;
    }

    Message msg(MsgId id, HostId src, HostId dst, uint32_t length) {
        Message m;
        m.id = id;
        m.src = src;
        m.dst = dst;
        m.length = length;
        m.created = loop.now();
        return m;
    }
};

TEST(FluidEngine, UnloadedCrossRackFlowCompletesAtOracleBest) {
    EngineFixture f;
    ASSERT_TRUE(f.engine.offer(f.msg(1, 0, 20, 1000000)));
    f.loop.run();
    ASSERT_EQ(f.deliveries, 1u);
    const double best =
        static_cast<double>(f.oracle.bestOneWay(1000000, false));
    // The solver quantizes the transfer end to whole picoseconds; the
    // latency-tail calibration absorbs everything else exactly.
    EXPECT_NEAR(static_cast<double>(f.deliveredAt), best, 100.0);
}

TEST(FluidEngine, UnloadedIntraRackFlowCompletesAtOracleBest) {
    EngineFixture f;
    ASSERT_TRUE(f.engine.offer(f.msg(1, 0, 1, 500000)));
    f.loop.run();
    ASSERT_EQ(f.deliveries, 1u);
    const double best = static_cast<double>(f.oracle.bestOneWay(500000, true));
    EXPECT_NEAR(static_cast<double>(f.deliveredAt), best, 100.0);
}

TEST(FluidEngine, TwoFlowsSharingADownlinkHalveTheirRate) {
    EngineFixture f;
    // Different source racks, same destination host: the only shared link
    // is the receiver NIC, so each flow gets half its capacity and the
    // transfer takes ~2x the unloaded time (plus the pipeline tail).
    ASSERT_TRUE(f.engine.offer(f.msg(1, 0, 40, 2000000)));
    ASSERT_TRUE(f.engine.offer(f.msg(2, 16, 40, 2000000)));
    f.loop.run();
    ASSERT_EQ(f.deliveries, 2u);
    const double best =
        static_cast<double>(f.oracle.bestOneWay(2000000, false));
    // wire bytes: 2e6 payload + ceil(2e6/1442) packets x 82 overhead
    const double serialization = 800.0 * 2113734.0;
    const double expected = best + serialization;  // 2x transfer + same tail
    EXPECT_NEAR(static_cast<double>(f.deliveredAt), expected,
                0.01 * expected);
}

TEST(FluidEngine, OversubscribedCoreTrunkBottlenecksCrossPodFlows) {
    NetworkConfig cfg = NetworkConfig::fatTree144();
    cfg.racks = 8;
    cfg.hostsPerRack = 4;
    cfg.aggrSwitches = 2;
    cfg.coreSwitches = 2;
    cfg.podCount = 2;
    cfg.oversubscription = 4.0;
    EngineFixture f(0.0, cfg);
    // Saturate the pod-0 -> core trunk with one flow per pod-0 host, all
    // aimed at pod 1. Pod trunk capacity: aggr x core x aggrCoreLink.
    const int podHosts = 16;
    for (int h = 0; h < podHosts; h++) {
        ASSERT_TRUE(f.engine.offer(
            f.msg(h + 1, h, static_cast<HostId>(podHosts + h), 1000000)));
    }
    f.loop.run();
    EXPECT_EQ(f.deliveries, static_cast<uint64_t>(podHosts));
    const double podTrunkBytesPerPs =
        2.0 * 2.0 / static_cast<double>(cfg.aggrCoreLink().psPerByte);
    const double perFlow = podTrunkBytesPerPs / podHosts;
    const double wire = 1056908.0;  // 1e6 + 694 packets x 82 overhead
    // All 16 flows bottleneck on the shared trunk, far below NIC rate.
    EXPECT_LT(perFlow, 1.0 / 800.0);
    EXPECT_GT(static_cast<double>(f.deliveredAt), wire / perFlow);
    FluidStats s = f.engine.stats();
    EXPECT_EQ(s.flows, static_cast<uint64_t>(podHosts));
    EXPECT_EQ(s.delivered, static_cast<uint64_t>(podHosts));
    EXPECT_EQ(s.wireBytes, s.deliveredWireBytes);
}

TEST(FluidEngine, ReservedFractionScalesCapacity) {
    EngineFixture half(0.5);
    ASSERT_TRUE(half.engine.offer(half.msg(1, 0, 20, 2000000)));
    half.loop.run();
    EngineFixture full(0.0);
    ASSERT_TRUE(full.engine.offer(full.msg(1, 0, 20, 2000000)));
    full.loop.run();
    // Half the capacity -> the transfer component doubles; with the tail
    // re-calibrated against the scaled NIC the total is not exactly 2x,
    // but must sit clearly above the unreserved run.
    EXPECT_GT(half.deliveredAt, full.deliveredAt);
    EXPECT_GT(static_cast<double>(half.deliveredAt),
              1.5 * static_cast<double>(full.deliveredAt));
}

TEST(FluidEngine, BelowThresholdMessagesAreDeclined) {
    NetworkConfig net = NetworkConfig::fatTree144();
    EventLoop loop;
    Oracle oracle(net);
    FluidConfig fc;
    fc.thresholdBytes = 10000;
    fc.bestOneWay = [&oracle](uint32_t s, bool ir) {
        return oracle.bestOneWay(s, ir);
    };
    FluidEngine engine(loop, net, std::move(fc));
    Message m;
    m.id = 1;
    m.src = 0;
    m.dst = 20;
    m.length = 9999;
    EXPECT_FALSE(engine.offer(m));
    m.length = 10000;
    EXPECT_TRUE(engine.offer(m));
    EXPECT_EQ(engine.stats().flows, 1u);
}

// -------------------------------------------------------------- fidelity

TEST(FluidFidelity, AllPacketThresholdIsByteIdenticalToDisabled) {
    // The "infinite threshold" extreme: the engine is attached but admits
    // nothing, so the run — and its fingerprint, which omits the fluid
    // block when no flow was admitted — must be byte-identical to a run
    // without the engine. This is what keeps pre-fluid goldens valid.
    ExperimentConfig off = fluidConfig(WorkloadId::W4, 0.5, -1);
    ExperimentConfig allPacket = fluidConfig(WorkloadId::W4, 0.5, kNeverFluid);
    const ExperimentResult a = runExperiment(off);
    const ExperimentResult b = runExperiment(allPacket);
    ASSERT_TRUE(b.fluid != nullptr);
    EXPECT_EQ(b.fluid->flows, 0u);
    EXPECT_EQ(resultFingerprint(a), resultFingerprint(b));
}

TEST(FluidFidelity, AllFluidExtremeDeliversEverythingNearBest) {
    // Threshold 0: every message is a fluid flow; at moderate load the
    // max-min shares sit near line rate, so slowdowns hug 1.0.
    ExperimentConfig cfg = fluidConfig(WorkloadId::W4, 0.5, 0);
    const ExperimentResult r = runExperiment(cfg);
    ASSERT_TRUE(r.fluid != nullptr);
    EXPECT_GT(r.fluid->flows, 0u);
    EXPECT_EQ(r.fluid->flows, r.fluid->delivered);
    EXPECT_EQ(r.fluid->wireBytes, r.fluid->deliveredWireBytes);
    EXPECT_TRUE(r.keptUp);
    EXPECT_GE(r.slowdown->overallPercentile(0.50), 1.0);
    EXPECT_LT(r.slowdown->overallPercentile(0.50), 1.5);
}

// Hybrid-vs-packet tolerance: the fluid model trades per-packet fidelity
// for speed, so percentiles drift — the p50 (dominated by the untouched
// packet regime, which sees *less* contention once elephants leave the
// wires) stays tight, while the p99 (the regime boundary) may move by up
// to this factor either way. The bench_compare --fidelity gate enforces
// the same bounds on BENCH_fluid.json artifacts.
void expectHybridWithinTolerance(TrafficPatternKind kind, int hotspots = 0) {
    ExperimentConfig packet = fluidConfig(WorkloadId::W4, 0.5, -1);
    packet.traffic.scenario.kind = kind;
    if (hotspots > 0) {
        packet.traffic.scenario.hotspots = hotspots;
        packet.traffic.scenario.hotspotDegree = 16;
    }
    ExperimentConfig hybrid = packet;
    hybrid.fluidThresholdBytes = 100000;
    const ExperimentResult p = runExperiment(packet);
    const ExperimentResult h = runExperiment(hybrid);
    ASSERT_TRUE(h.fluid != nullptr);
    EXPECT_GT(h.fluid->flows, 0u);
    const double p50p = p.slowdown->overallPercentile(0.50);
    const double p50h = h.slowdown->overallPercentile(0.50);
    const double p99p = p.slowdown->overallPercentile(0.99);
    const double p99h = h.slowdown->overallPercentile(0.99);
    EXPECT_GT(p50p, 0.0);
    EXPECT_GT(p99p, 0.0);
    EXPECT_NEAR(p50h, p50p, 0.25 * p50p)
        << "hybrid p50 drifted: packet=" << p50p << " hybrid=" << p50h;
    EXPECT_LT(p99h, 2.5 * p99p)
        << "hybrid p99 too pessimistic: packet=" << p99p
        << " hybrid=" << p99h;
    EXPECT_GT(p99h, p99p / 2.5)
        << "hybrid p99 too optimistic: packet=" << p99p
        << " hybrid=" << p99h;
}

TEST(FluidFidelity, UniformHybridPercentilesWithinTolerance) {
    expectHybridWithinTolerance(TrafficPatternKind::Uniform);
}

TEST(FluidFidelity, PermutationHybridPercentilesWithinTolerance) {
    expectHybridWithinTolerance(TrafficPatternKind::Permutation);
}

TEST(FluidFidelity, IncastHybridPercentilesWithinTolerance) {
    expectHybridWithinTolerance(TrafficPatternKind::Incast, 2);
}

TEST(FluidFidelity, HybridConservationLedger) {
    // Injected == delivered + drops, per regime: the fluid ledger must
    // zero out (every admitted wire byte delivered), the packet regime
    // must deliver everything it generated (Homa does not drop), and the
    // two regimes together must account for every generated message.
    ExperimentConfig cfg = fluidConfig(WorkloadId::W4, 0.6, 50000);
    const ExperimentResult r = runExperiment(cfg);
    ASSERT_TRUE(r.fluid != nullptr);
    EXPECT_GT(r.fluid->flows, 0u);
    EXPECT_EQ(r.fluid->flows, r.fluid->delivered);
    EXPECT_EQ(r.fluid->wireBytes, r.fluid->deliveredWireBytes);
    EXPECT_EQ(r.switchDrops, 0u);
    EXPECT_TRUE(r.keptUp);
    // deliveredTotal covers both regimes; the fluid share is within it.
    EXPECT_GE(r.deliveredTotal, r.fluid->delivered);
}

TEST(FluidFidelity, PerRegimeStatsSplitTheTraffic) {
    ExperimentConfig cfg = fluidConfig(WorkloadId::W4, 0.5, 20000);
    const ExperimentResult r = runExperiment(cfg);
    ASSERT_TRUE(r.fluid != nullptr);
    EXPECT_EQ(r.fluid->thresholdBytes, 20000);
    EXPECT_GT(r.fluid->flows, 0u);
    EXPECT_LT(r.fluid->flows, r.deliveredTotal);  // both regimes ran
    EXPECT_GT(r.fluid->slowP50, 0.0);
    EXPECT_GE(r.fluid->slowP99, r.fluid->slowP50);
    EXPECT_GT(r.fluid->maxConcurrent, 0u);
    EXPECT_GT(r.fluid->solves, 0u);
}

// ----------------------------------------------------------- determinism

TEST(FluidDeterminism, SameSeedReplaysByteIdentically) {
    ExperimentConfig cfg = fluidConfig(WorkloadId::W4, 0.5, 20000);
    const ExperimentResult a = runExperiment(cfg);
    ASSERT_TRUE(a.fluid != nullptr);
    EXPECT_GT(a.fluid->flows, 0u);
    EXPECT_EQ(resultFingerprint(a), resultFingerprint(runExperiment(cfg)));
    ExperimentConfig reseeded = cfg;
    reseeded.traffic.seed = cfg.traffic.seed + 1;
    EXPECT_NE(resultFingerprint(a),
              resultFingerprint(runExperiment(reseeded)));
}

TEST(FluidDeterminism, ThreadCountInvariant) {
    // Fluid runs force the network serial (the engine's flow set lives on
    // shard 0), so any --sim-threads value must yield byte-identical
    // results — the fluid form of the serial-vs-parallel identity.
    ExperimentConfig serial = fluidConfig(WorkloadId::W3, 0.6, 30000);
    ExperimentConfig threaded = serial;
    threaded.parallel.threads = 4;
    EXPECT_EQ(resultFingerprint(runExperiment(serial)),
              resultFingerprint(runExperiment(threaded)));
}

TEST(FluidDeterminism, ThresholdChangesFingerprint) {
    ExperimentConfig a = fluidConfig(WorkloadId::W4, 0.5, 20000);
    ExperimentConfig b = fluidConfig(WorkloadId::W4, 0.5, 40000);
    EXPECT_NE(resultFingerprint(runExperiment(a)),
              resultFingerprint(runExperiment(b)));
}

TEST(FluidDeterminism, SpecDrivenRunMatchesConfigDriven) {
    // "+fluid:" in the scenario spec and ExperimentConfig's knob must be
    // the same experiment (the spec wins when both are set).
    ExperimentConfig viaConfig = fluidConfig(WorkloadId::W4, 0.5, 25000);
    ExperimentConfig viaSpec = fluidConfig(WorkloadId::W4, 0.5, -1);
    ScenarioConfig parsed;
    ASSERT_TRUE(scenarioFromSpec("uniform+fluid:25000", parsed));
    viaSpec.traffic.scenario = parsed;
    EXPECT_EQ(resultFingerprint(runExperiment(viaConfig)),
              resultFingerprint(runExperiment(viaSpec)));
}

// ------------------------------------------------------------- spec

TEST(FluidSpec, ParsesThresholdModifier) {
    ScenarioConfig cfg;
    ASSERT_TRUE(scenarioFromSpec("uniform+fluid:20000", cfg));
    EXPECT_EQ(cfg.kind, TrafficPatternKind::Uniform);
    EXPECT_EQ(cfg.fluidThresholdBytes, 20000);
    ASSERT_TRUE(scenarioFromSpec("incast+fluid:0+on-off", cfg));
    EXPECT_EQ(cfg.fluidThresholdBytes, 0);
    EXPECT_TRUE(cfg.onOff.enabled);
}

TEST(FluidSpec, DefaultLeavesThresholdUnset) {
    ScenarioConfig cfg;
    ASSERT_TRUE(scenarioFromSpec("uniform", cfg));
    EXPECT_EQ(cfg.fluidThresholdBytes, -1);
}

TEST(FluidSpec, RejectsMalformedSpecs) {
    ScenarioConfig cfg;
    std::string err;
    EXPECT_FALSE(scenarioFromSpec("uniform+fluid:", cfg, &err));
    EXPECT_FALSE(scenarioFromSpec("uniform+fluid:12k", cfg, &err));
    EXPECT_FALSE(scenarioFromSpec("uniform+fluid:-1", cfg, &err));
    EXPECT_FALSE(scenarioFromSpec("fluid:20000", cfg, &err));
    EXPECT_NE(err.find("fluid"), std::string::npos);
    EXPECT_FALSE(
        scenarioFromSpec("uniform+fluid:100+fluid:200", cfg, &err));
}

TEST(FluidSpec, RejectsFluidWithFaults) {
    ScenarioConfig cfg;
    std::string err;
    EXPECT_FALSE(scenarioFromSpec(
        "uniform+fluid:20000+fault:flap=aggr0,at=5ms,for=1ms", cfg, &err));
    EXPECT_NE(err.find("fault"), std::string::npos);
    EXPECT_FALSE(scenarioFromSpec(
        "uniform+fault:flap=aggr0,at=5ms,for=1ms+fluid:20000", cfg, &err));
}

// ------------------------------------------------- CLI misuse (--fluid)

#ifdef HOMA_RUN_EXPERIMENT_BIN

TEST(FluidCli, RejectsBadFluidFlags) {
    auto runCli = [](const std::string& args) {
        const std::string cmd = std::string(HOMA_RUN_EXPERIMENT_BIN) + " " +
                                args + " > /dev/null 2>&1";
        const int status = std::system(cmd.c_str());
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    };
    EXPECT_EQ(runCli("--fluid"), 2);         // missing threshold
    EXPECT_EQ(runCli("--fluid 12k"), 2);     // not a byte count
    EXPECT_EQ(runCli("--fluid -5"), 2);      // negative
    // Fluid does not compose with fault injection, in either flag order.
    EXPECT_EQ(runCli("--fluid 20000 --fault kill=aggr0,at=1ms"), 2);
    EXPECT_EQ(runCli("--fault kill=aggr0,at=1ms --fluid 20000"), 2);
}

#endif  // HOMA_RUN_EXPERIMENT_BIN

}  // namespace
}  // namespace homa
