// Topology property suite for the configurable three-tier fat-tree
// (sim/topology.h, sim/network.cc): over a grid of (racks, hostsPerRack,
// aggr, core, oversub) shapes it proves the wiring invariants — every
// link bidirectional and uniquely id'd in canonical order, every host
// pair routable with the hop count the closed-form oracle predicts,
// bisection bandwidth matching the oversubscription knob — and the
// degenerate-shape clamp: core=0 and single-rack configs reproduce the
// pre-refactor two-tier results byte-for-byte (golden fingerprint
// hashes locked in below). TopologyDeterminism.* extends the replay
// goldens to the third tier: fault runs on core switches, ECMP reroute
// around a dead core, serial-vs-sharded identity, and the oversubscribed
// core-contention signature.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/homa_transport.h"
#include "driver/oracle.h"
#include "driver/sweep.h"
#include "sim/network.h"
#include "workload/workloads.h"

namespace homa {
namespace {

// ------------------------------------------------------------ the grid
//
// Specs are applied over the fatTree144 preset by parseTopoSpec, so every
// shape here is also a valid "--topo"/"topo:" argument. Two-tier and
// single-rack shapes ride along to pin the degenerate forms.
const char* const kShapeSpecs[] = {
    "racks=9,hosts=16,aggr=4",                          // the paper's tree
    "racks=1,hosts=16,aggr=0,pods=1",                   // §5.1 single rack
    "racks=3,hosts=4,aggr=2,pods=1",                    // small two-tier
    "racks=2,hosts=2,aggr=1,pods=1",                    // minimal two-tier
    "racks=6,hosts=4,aggr=3,pods=1",                    // odd two-tier
    "racks=4,hosts=4,aggr=2,core=1,pods=2,oversub=1",   // one core switch
    "racks=4,hosts=4,aggr=2,core=2,pods=2,oversub=2",
    "racks=8,hosts=2,aggr=2,core=2,pods=4,oversub=4",   // many pods
    "racks=6,hosts=3,aggr=2,core=3,pods=3,oversub=1.5", // fractional knob
    "racks=8,hosts=4,aggr=3,core=2,pods=2,oversub=8",   // heavy oversub
    "racks=9,hosts=2,aggr=2,core=3,pods=3,oversub=4",   // odd rack count
    "racks=2,hosts=4,aggr=2,core=4,pods=2,oversub=1",   // single-rack pods
    "racks=12,hosts=2,aggr=1,core=2,pods=6,oversub=2",  // one aggr per pod
};

NetworkConfig shapeConfig(const std::string& spec) {
    NetworkConfig cfg = NetworkConfig::fatTree144();
    std::string err;
    EXPECT_TRUE(parseTopoSpec(spec, cfg, &err)) << spec << ": " << err;
    return cfg;
}

Network makeNet(const NetworkConfig& cfg) {
    return Network(cfg,
                   HomaTransport::factory({}, cfg, &workload(WorkloadId::W3)));
}

TEST(TopologyShapes, GridSpecsAreValidAndClassifiedRight) {
    int threeTier = 0;
    for (const char* spec : kShapeSpecs) {
        const NetworkConfig cfg = shapeConfig(spec);
        EXPECT_EQ(validateTopoConfig(cfg), "") << spec;
        EXPECT_EQ(cfg.threeTier(), cfg.coreSwitches > 0 && !cfg.singleRack())
            << spec;
        EXPECT_EQ(cfg.podRacks() * cfg.pods(), cfg.racks) << spec;
        threeTier += cfg.threeTier();
    }
    EXPECT_GE(std::size(kShapeSpecs), 12u);
    EXPECT_GE(threeTier, 6);  // the grid genuinely exercises the new tier
}

TEST(TopologyShapes, SwitchAndPortCountsMatchTheConfig) {
    for (const char* spec : kShapeSpecs) {
        const NetworkConfig cfg = shapeConfig(spec);
        Network net = makeNet(cfg);
        const int perRack = cfg.hostsPerRack;
        const int uplinks = cfg.singleRack() ? 0 : cfg.aggrSwitches;
        const int nCore = cfg.threeTier() ? cfg.coreSwitches : 0;
        EXPECT_EQ(net.hostCount(), cfg.hostCount()) << spec;
        EXPECT_EQ(net.rackCount(), cfg.racks) << spec;
        EXPECT_EQ(net.aggrCount(), cfg.totalAggrs()) << spec;
        EXPECT_EQ(net.coreCount(), nCore) << spec;
        for (int r = 0; r < net.rackCount(); r++) {
            EXPECT_EQ(net.tor(r).portCount(),
                      static_cast<size_t>(perRack + uplinks))
                << spec << " tor" << r;
        }
        for (int g = 0; g < net.aggrCount(); g++) {
            EXPECT_EQ(net.aggr(g).portCount(),
                      static_cast<size_t>(cfg.podRacks() + nCore))
                << spec << " aggr" << g;
        }
        for (int c = 0; c < net.coreCount(); c++) {
            EXPECT_EQ(net.core(c).portCount(),
                      static_cast<size_t>(cfg.totalAggrs()))
                << spec << " core" << c;
        }
        EXPECT_EQ(net.torUplinkPorts().size(),
                  static_cast<size_t>(cfg.racks * uplinks))
            << spec;
        EXPECT_EQ(net.aggrUplinkPorts().size(),
                  static_cast<size_t>(cfg.totalAggrs() * nCore))
            << spec;
        EXPECT_EQ(net.coreDownlinkPorts().size(),
                  static_cast<size_t>(nCore * cfg.totalAggrs()))
            << spec;
    }
}

TEST(TopologyShapes, LinkIdsAreUniqueDenseAndCanonicallyOrdered) {
    for (const char* spec : kShapeSpecs) {
        const NetworkConfig cfg = shapeConfig(spec);
        Network net = makeNet(cfg);
        std::vector<int32_t> ids;
        for (HostId h = 0; h < net.hostCount(); h++) {
            // NIC ids are the host ids — canonical order starts here.
            EXPECT_EQ(net.host(h).nic().linkId(), h) << spec;
            ids.push_back(net.host(h).nic().linkId());
        }
        for (int r = 0; r < net.rackCount(); r++) {
            for (size_t i = 0; i < net.tor(r).portCount(); i++) {
                ids.push_back(net.tor(r).port(static_cast<int>(i)).linkId());
            }
        }
        for (int g = 0; g < net.aggrCount(); g++) {
            for (size_t i = 0; i < net.aggr(g).portCount(); i++) {
                ids.push_back(net.aggr(g).port(static_cast<int>(i)).linkId());
            }
        }
        for (int c = 0; c < net.coreCount(); c++) {
            for (size_t i = 0; i < net.core(c).portCount(); i++) {
                ids.push_back(net.core(c).port(static_cast<int>(i)).linkId());
            }
        }
        // TOR ports continue right after the NICs, rack by rack.
        EXPECT_EQ(net.tor(0).port(0).linkId(), net.hostCount()) << spec;
        const std::set<int32_t> unique(ids.begin(), ids.end());
        EXPECT_EQ(unique.size(), ids.size()) << spec;
        EXPECT_EQ(*unique.begin(), 0) << spec;
        EXPECT_EQ(*unique.rbegin(), static_cast<int32_t>(ids.size()) - 1)
            << spec;  // dense: ids are exactly [0, linkCount)
    }
}

TEST(TopologyShapes, EveryLinkHasAMatchingReverseLink) {
    for (const char* spec : kShapeSpecs) {
        const NetworkConfig cfg = shapeConfig(spec);
        Network net = makeNet(cfg);
        const int perRack = cfg.hostsPerRack;
        const int uplinks = cfg.singleRack() ? 0 : cfg.aggrSwitches;
        const int nCore = cfg.threeTier() ? cfg.coreSwitches : 0;
        // host <-> TOR, both directions.
        for (HostId h = 0; h < net.hostCount(); h++) {
            const int r = net.rackOf(h);
            EXPECT_EQ(net.host(h).nic().peer(),
                      static_cast<PacketSink*>(&net.tor(r)))
                << spec << " host" << h;
            EXPECT_EQ(net.tor(r).port(h % perRack).peer(),
                      static_cast<PacketSink*>(&net.host(h)))
                << spec << " host" << h;
        }
        // TOR <-> aggr: uplink a of rack r pairs with downlink of the
        // a-th aggr *of r's pod*, at r's in-pod index.
        for (int r = 0; r < net.rackCount(); r++) {
            const int podBase = cfg.podOfRack(r) * uplinks;
            const int inPod = r - cfg.podOfRack(r) * cfg.podRacks();
            for (int a = 0; a < uplinks; a++) {
                EXPECT_EQ(net.tor(r).port(perRack + a).peer(),
                          static_cast<PacketSink*>(&net.aggr(podBase + a)))
                    << spec << " tor" << r;
                EXPECT_EQ(net.aggr(podBase + a).port(inPod).peer(),
                          static_cast<PacketSink*>(&net.tor(r)))
                    << spec << " tor" << r;
            }
        }
        // aggr <-> core, both directions, global aggr index.
        for (int g = 0; g < net.aggrCount(); g++) {
            for (int c = 0; c < nCore; c++) {
                EXPECT_EQ(net.aggr(g).port(cfg.podRacks() + c).peer(),
                          static_cast<PacketSink*>(&net.core(c)))
                    << spec << " aggr" << g;
                EXPECT_EQ(net.core(c).port(g).peer(),
                          static_cast<PacketSink*>(&net.aggr(g)))
                    << spec << " aggr" << g;
            }
        }
    }
}

TEST(TopologyShapes, BisectionBandwidthMatchesTheOversubscriptionKnob) {
    for (const char* spec : kShapeSpecs) {
        const NetworkConfig cfg = shapeConfig(spec);
        if (!cfg.threeTier()) continue;
        Network net = makeNet(cfg);
        for (int g = 0; g < net.aggrCount(); g++) {
            double down = 0, up = 0;  // bytes per picosecond
            for (int r = 0; r < cfg.podRacks(); r++) {
                down += 1.0 / net.aggr(g).port(r).bandwidth().psPerByte;
            }
            for (int c = 0; c < cfg.coreSwitches; c++) {
                up += 1.0 /
                      net.aggr(g).port(cfg.podRacks() + c).bandwidth().psPerByte;
            }
            // Downlink capacity / uplink capacity == the knob, up to the
            // integer rounding of psPerByte (sub-percent at these rates).
            EXPECT_NEAR(down / up, cfg.oversubscription,
                        cfg.oversubscription * 0.01)
                << spec << " aggr" << g;
        }
    }
}

// -------------------------------------------------- routability & hops

// Delivery time of one small (single-packet, unscheduled) message on an
// otherwise idle network — exact, so it encodes the hop count: every
// store-and-forward hop adds its serialization plus the switch delay.
Duration measureOneWay(const NetworkConfig& cfg, HostId src, HostId dst,
                       uint32_t size) {
    Network net = makeNet(cfg);
    Duration measured = -1;
    net.setDeliveryCallback([&](const Message& m, const DeliveryInfo& info) {
        measured = info.completed - m.created;
    });
    Message m;
    m.id = net.nextMsgId();
    m.src = src;
    m.dst = dst;
    m.length = size;
    net.sendMessage(m);
    net.loop().run();
    EXPECT_GE(measured, 0) << "undelivered " << src << "->" << dst;
    return measured;
}

TEST(TopologyShapes, HopLatenciesMatchTheClosedFormOracle) {
    const uint32_t size = 400;  // single unscheduled packet: oracle-exact
    for (const char* spec : kShapeSpecs) {
        const NetworkConfig cfg = shapeConfig(spec);
        const Oracle oracle(cfg);
        // Intra-rack: host -> TOR -> host (1 switch).
        const Duration intraRack = measureOneWay(cfg, 0, 1, size);
        EXPECT_EQ(intraRack, oracle.bestOneWay(size, /*intraRack=*/true))
            << spec;
        if (cfg.singleRack()) continue;
        if (cfg.threeTier()) {
            // Cross-pod: 5 switches, through the oversubscribed core —
            // the worst-case placement the oracle models.
            const HostId far = static_cast<HostId>(cfg.hostCount() - 1);
            const Duration crossPod = measureOneWay(cfg, 0, far, size);
            EXPECT_EQ(crossPod, oracle.bestOneWay(size)) << spec;
            if (cfg.podRacks() >= 2) {
                // Intra-pod cross-rack: 3 switches, never touches the
                // core — the same path a two-tier tree would take.
                NetworkConfig twoTier = cfg;
                twoTier.coreSwitches = 0;
                const Duration intraPod = measureOneWay(
                    cfg, 0, static_cast<HostId>(cfg.hostsPerRack), size);
                EXPECT_EQ(intraPod, Oracle(twoTier).bestOneWay(size)) << spec;
                EXPECT_GT(crossPod, intraPod) << spec;
                EXPECT_GT(intraPod, intraRack) << spec;
            } else {
                EXPECT_GT(crossPod, intraRack) << spec;
            }
        } else {
            // Two-tier cross-rack: 3 switches.
            const Duration crossRack = measureOneWay(
                cfg, 0, static_cast<HostId>(cfg.hostCount() - 1), size);
            EXPECT_EQ(crossRack, oracle.bestOneWay(size)) << spec;
            EXPECT_GT(crossRack, intraRack) << spec;
        }
    }
}

TEST(TopologyShapes, EveryHostPairIsRoutable) {
    // All-pairs delivery on every shape small enough to sweep (the large
    // shapes' wiring is covered by the counts/peers invariants above).
    for (const char* spec : kShapeSpecs) {
        const NetworkConfig cfg = shapeConfig(spec);
        if (cfg.hostCount() > 36) continue;
        Network net = makeNet(cfg);
        int delivered = 0;
        net.setDeliveryCallback(
            [&](const Message&, const DeliveryInfo&) { delivered++; });
        int sent = 0;
        for (HostId s = 0; s < net.hostCount(); s++) {
            for (HostId d = 0; d < net.hostCount(); d++) {
                if (s == d) continue;
                Message m;
                m.id = net.nextMsgId();
                m.src = s;
                m.dst = d;
                m.length = 1000;
                net.sendMessage(m);
                sent++;
            }
        }
        net.loop().run();
        EXPECT_EQ(delivered, sent) << spec;
    }
}

TEST(TopologyShapes, OnlyCrossPodTrafficTouchesTheCore) {
    for (const char* spec : kShapeSpecs) {
        const NetworkConfig cfg = shapeConfig(spec);
        if (!cfg.threeTier() || cfg.podRacks() < 2) continue;
        const int64_t wire = messageWireBytes(50000);
        {
            // Cross-pod: the full message climbs over aggr->core links.
            Network net = makeNet(cfg);
            Message m;
            m.id = net.nextMsgId();
            m.src = 0;
            m.dst = static_cast<HostId>(cfg.hostCount() - 1);
            m.length = 50000;
            net.sendMessage(m);
            net.loop().run();
            int64_t coreBytes = 0, coreDownBytes = 0;
            for (const auto* p : net.aggrUplinkPorts())
                coreBytes += p->stats().wireBytesSent;
            for (const auto* p : net.coreDownlinkPorts())
                coreDownBytes += p->stats().wireBytesSent;
            EXPECT_GE(coreBytes, wire) << spec;
            EXPECT_GE(coreDownBytes, wire) << spec;
        }
        {
            // Intra-pod cross-rack: zero bytes on any core link.
            Network net = makeNet(cfg);
            Message m;
            m.id = net.nextMsgId();
            m.src = 0;
            m.dst = static_cast<HostId>(cfg.hostsPerRack);  // rack 1, pod 0
            m.length = 50000;
            net.sendMessage(m);
            net.loop().run();
            int64_t coreBytes = 0;
            for (const auto* p : net.aggrUplinkPorts())
                coreBytes += p->stats().wireBytesSent;
            for (const auto* p : net.coreDownlinkPorts())
                coreBytes += p->stats().wireBytesSent;
            EXPECT_EQ(coreBytes, 0) << spec;
        }
    }
}

// ------------------------------------------------- degenerate clamping

ExperimentConfig smallConfig(WorkloadId wl, double load,
                             Protocol kind = Protocol::Homa) {
    ExperimentConfig cfg;
    cfg.proto.kind = kind;
    cfg.traffic.workload = wl;
    cfg.traffic.load = load;
    cfg.traffic.stop = milliseconds(2);
    cfg.drainGrace = milliseconds(20);
    return cfg;
}

TEST(TopologyClamp, CoreZeroRunsAreByteIdenticalToTwoTier) {
    // The three-tier knobs must be inert at core=0: same fingerprint as
    // the untouched two-tier tree however pods/oversub are set, whether
    // the knobs arrive via the config or the scenario "topo:" modifier.
    const ExperimentConfig plain = smallConfig(WorkloadId::W2, 0.6);
    const std::string golden = resultFingerprint(runExperiment(plain));

    ExperimentConfig knobs = plain;
    knobs.net.coreSwitches = 0;
    knobs.net.podCount = 3;
    knobs.net.oversubscription = 8.0;
    EXPECT_EQ(golden, resultFingerprint(runExperiment(knobs)));

    ExperimentConfig viaSpec = plain;
    viaSpec.traffic.scenario.topoSpec = "core=0,pods=3,oversub=8";
    EXPECT_EQ(golden, resultFingerprint(runExperiment(viaSpec)));
}

TEST(TopologyClamp, SingleRackIgnoresTheCoreKnobs) {
    ExperimentConfig plain = smallConfig(WorkloadId::W1, 0.5);
    plain.net = NetworkConfig::singleRack16();
    const std::string golden = resultFingerprint(runExperiment(plain));
    ExperimentConfig knobs = plain;
    knobs.net.oversubscription = 4.0;
    knobs.net.podCount = 1;
    EXPECT_EQ(golden, resultFingerprint(runExperiment(knobs)));
}

TEST(TopologyClamp, TopoSpecRejectsInvalidShapes) {
    NetworkConfig cfg = NetworkConfig::fatTree144();
    std::string err;
    EXPECT_FALSE(parseTopoSpec("racks=0", cfg, &err));
    EXPECT_FALSE(parseTopoSpec("racks=8,pods=3,core=2", cfg, &err));
    EXPECT_FALSE(parseTopoSpec("racks=1,core=2", cfg, &err));  // no pods
    EXPECT_FALSE(parseTopoSpec("oversub=0", cfg, &err));
    EXPECT_FALSE(parseTopoSpec("bogus=3", cfg, &err));
    EXPECT_FALSE(parseTopoSpec("racks", cfg, &err));
    // Failed parses leave the config untouched.
    EXPECT_EQ(cfg.racks, 9);
    EXPECT_EQ(cfg.coreSwitches, 0);
}

// --------------------------------------------------- replay goldens
//
// FNV-1a of the full resultFingerprint, captured on the pre-core-layer
// tree: the refactor (and any future change) must reproduce these runs
// byte-for-byte. On mismatch the test streams the live fingerprint so
// the diff against the goldens is inspectable.
uint64_t fnv1a(const std::string& s) {
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

TEST(TopologyDeterminism, TwoTierGoldenFingerprintsUnchanged) {
    struct Golden {
        Protocol proto;
        WorkloadId wl;
        uint64_t hash;
        size_t length;
    };
    const Golden goldens[] = {
        {Protocol::Homa, WorkloadId::W3, 0xf55c33d31023811cull, 1717},
        {Protocol::PFabric, WorkloadId::W3, 0x91c59c26a2d7c7b4ull, 1635},
        {Protocol::Homa, WorkloadId::W2, 0x7832e2b8da2c777full, 1718},
        {Protocol::Homa, WorkloadId::W4, 0xf9a675df2b776ca1ull, 1640},
    };
    for (const Golden& g : goldens) {
        ExperimentConfig cfg = smallConfig(g.wl, 0.8, g.proto);
        cfg.traffic.seed = 99;
        const std::string fp = resultFingerprint(runExperiment(cfg));
        EXPECT_EQ(fnv1a(fp), g.hash)
            << protocolName(g.proto) << " live fingerprint:\n"
            << fp;
        EXPECT_EQ(fp.size(), g.length) << protocolName(g.proto);
    }
}

// The grid's mid-size three-tier point, oversubscribed 4x.
ExperimentConfig threeTierConfig(WorkloadId wl, double load,
                                 Protocol kind = Protocol::Homa) {
    ExperimentConfig cfg = smallConfig(wl, load, kind);
    cfg.traffic.scenario.topoSpec = "racks=8,hosts=4,aggr=2,core=2,oversub=4";
    return cfg;
}

TEST(TopologyDeterminism, ThreeTierRunsReplayByteIdentically) {
    for (Protocol kind : {Protocol::Homa, Protocol::PFabric}) {
        const ExperimentConfig cfg = threeTierConfig(WorkloadId::W2, 0.6, kind);
        const ExperimentResult a = runExperiment(cfg);
        EXPECT_GT(a.delivered, 0u) << protocolName(kind);
        EXPECT_EQ(a.coreSwitches, 2) << protocolName(kind);
        EXPECT_EQ(resultFingerprint(a), resultFingerprint(runExperiment(cfg)))
            << protocolName(kind);
        ExperimentConfig reseeded = cfg;
        reseeded.traffic.seed = cfg.traffic.seed + 1;
        EXPECT_NE(resultFingerprint(a),
                  resultFingerprint(runExperiment(reseeded)))
            << protocolName(kind);
    }
}

TEST(TopologyDeterminism, ThreeTierSerialEqualsParallel) {
    // The acceptance bar for the core tier: aggr<->core crossings ride
    // the same outbox machinery, so a sharded run is byte-identical.
    for (Protocol kind : {Protocol::Homa, Protocol::Ndp}) {
        ExperimentConfig cfg = threeTierConfig(WorkloadId::W2, 0.6, kind);
        const ExperimentResult serial = runExperiment(cfg);
        EXPECT_GT(serial.delivered, 0u) << protocolName(kind);
        cfg.parallel.threads = 4;
        EXPECT_EQ(resultFingerprint(serial),
                  resultFingerprint(runExperiment(cfg)))
            << protocolName(kind);
    }
}

TEST(TopologyDeterminism, CoreFaultsReplayAndMatchSerial) {
    // Fault goldens extended to the third tier: killing / flapping /
    // degrading a core switch replays from the seed and survives
    // sharding, with the drop-by-cause counters in the fingerprint.
    for (const char* body : {"kill=core0,at=400us", "flap=core1,at=500us,for=200us",
                             "degrade=core0,at=200us,for=1ms,bw=0.5,drop=0.02"}) {
        ExperimentConfig cfg = threeTierConfig(WorkloadId::W2, 0.6);
        FaultSpec f;
        std::string err;
        ASSERT_TRUE(parseFaultSpec(body, f, &err)) << body << ": " << err;
        cfg.traffic.scenario.faults.push_back(f);
        const ExperimentResult a = runExperiment(cfg);
        ASSERT_TRUE(a.faults) << body;
        EXPECT_GT(a.delivered, 0u) << body;
        EXPECT_EQ(resultFingerprint(a), resultFingerprint(runExperiment(cfg)))
            << body;
        cfg.parallel.threads = 4;
        EXPECT_EQ(resultFingerprint(a), resultFingerprint(runExperiment(cfg)))
            << body;
        ExperimentConfig reseeded = cfg;
        reseeded.traffic.seed = cfg.traffic.seed + 1;
        EXPECT_NE(resultFingerprint(a),
                  resultFingerprint(runExperiment(reseeded)))
            << body;
    }
}

TEST(TopologyDeterminism, EcmpReroutesAroundADeadCoreSwitch) {
    // With per-message ECMP the aggr->core hop hashes over *alive*
    // uplinks, so killing one core switch degrades capacity instead of
    // blackholing half the cross-pod flows — and the rerouted run is
    // still byte-identical under sharding.
    ExperimentConfig cfg = threeTierConfig(WorkloadId::W2, 0.5);
    cfg.traffic.scenario.ecmpUplinks = true;
    FaultSpec f;
    std::string err;
    ASSERT_TRUE(parseFaultSpec("kill=core0,at=300us", f, &err)) << err;
    cfg.traffic.scenario.faults.push_back(f);
    const ExperimentResult serial = runExperiment(cfg);
    ASSERT_TRUE(serial.faults);
    EXPECT_EQ(serial.faults->switchKills, 1u);
    EXPECT_GT(serial.delivered, 0u);
    cfg.parallel.threads = 4;
    EXPECT_EQ(resultFingerprint(serial), resultFingerprint(runExperiment(cfg)));
}

TEST(TopologyDeterminism, OversubscribedCoreContendsHarderThanAggr) {
    // The whole point of the knob: at oversub=4 a cross-pod-heavy
    // pattern drives the aggr->core links hotter than the TOR->aggr
    // links — while the run stays byte-identical across shard counts.
    for (TrafficPatternKind kind :
         {TrafficPatternKind::Permutation, TrafficPatternKind::Incast}) {
        ExperimentConfig cfg = threeTierConfig(WorkloadId::W3, 0.8);
        cfg.traffic.scenario.kind = kind;
        const ExperimentResult serial = runExperiment(cfg);
        EXPECT_GT(serial.delivered, 0u) << patternName(kind);
        EXPECT_GT(serial.coreLinkUtilization, 0.0) << patternName(kind);
        EXPECT_GT(serial.coreLinkUtilization, serial.aggrLinkUtilization)
            << patternName(kind);
        cfg.parallel.threads = 4;
        EXPECT_EQ(resultFingerprint(serial),
                  resultFingerprint(runExperiment(cfg)))
            << patternName(kind);
    }
}

TEST(TopologyDeterminism, SweepPointsWithTopoSpecsAreThreadInvariant) {
    // Mixed two-/three-tier sweep: fingerprints independent of sweep
    // fan-out, and the three-tier block appears only where it should.
    std::vector<ExperimentConfig> points;
    points.push_back(smallConfig(WorkloadId::W1, 0.5));
    points.push_back(threeTierConfig(WorkloadId::W1, 0.5));
    points.push_back(threeTierConfig(WorkloadId::W2, 0.6, Protocol::PFabric));

    SweepOptions serial;
    serial.threads = 1;
    serial.deriveSeeds = true;
    SweepOptions parallel = serial;
    parallel.threads = 3;

    const SweepOutcome one = SweepRunner(serial).run(points);
    const SweepOutcome many = SweepRunner(parallel).run(points);
    ASSERT_EQ(one.results.size(), points.size());
    for (size_t i = 0; i < points.size(); i++) {
        EXPECT_EQ(resultFingerprint(one.results[i]),
                  resultFingerprint(many.results[i]))
            << "point " << i;
    }
    EXPECT_EQ(resultFingerprint(one.results[0]).find("coreSwitches"),
              std::string::npos);
    EXPECT_NE(resultFingerprint(one.results[1]).find("coreSwitches"),
              std::string::npos);
}

}  // namespace
}  // namespace homa
