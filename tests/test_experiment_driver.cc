// Integration tests of the experiment harness itself: load calibration,
// measurement windows, utilization accounting, overload detection.
#include <gtest/gtest.h>

#include "driver/experiment.h"
#include "driver/rpc_experiment.h"

namespace homa {
namespace {

ExperimentConfig smallConfig(WorkloadId wl, double load,
                             Protocol kind = Protocol::Homa) {
    ExperimentConfig cfg;
    cfg.proto.kind = kind;
    cfg.traffic.workload = wl;
    cfg.traffic.load = load;
    cfg.traffic.stop = milliseconds(4);
    cfg.drainGrace = milliseconds(30);
    return cfg;
}

TEST(ExperimentDriver, ModerateLoadKeepsUp) {
    // W2: light enough tail that a short window gives a clean verdict.
    ExperimentResult r = runExperiment(smallConfig(WorkloadId::W2, 0.5));
    EXPECT_TRUE(r.keptUp);
    EXPECT_GT(r.generated, 1000u);
    EXPECT_EQ(r.delivered, r.generated);
    EXPECT_EQ(r.switchDrops, 0u);
}

TEST(ExperimentDriver, UtilizationTracksOfferedLoad) {
    // W2's tail is light enough that a short window measures utilization
    // decently: expect downlink utilization within ~25% of offered.
    ExperimentResult r = runExperiment(smallConfig(WorkloadId::W2, 0.6));
    EXPECT_GT(r.downlinkUtilization, 0.45);
    EXPECT_LT(r.downlinkUtilization, 0.75);
}

TEST(ExperimentDriver, GrossOverloadDetected) {
    // 120% offered load cannot be sustained by anything.
    ExperimentResult r = runExperiment(smallConfig(WorkloadId::W2, 1.2));
    EXPECT_FALSE(r.keptUp);
}

TEST(ExperimentDriver, SlowdownsAreAtLeastOne) {
    ExperimentResult r = runExperiment(smallConfig(WorkloadId::W3, 0.7));
    EXPECT_GE(r.slowdown->overallPercentile(0.0), 1.0 - 1e-9);
    EXPECT_GE(r.slowdown->overallPercentile(0.99),
              r.slowdown->overallPercentile(0.50));
}

TEST(ExperimentDriver, PriorityUsageSumsBelowUtilization) {
    ExperimentResult r = runExperiment(smallConfig(WorkloadId::W3, 0.6));
    double sum = 0;
    for (double v : r.prioUsage) {
        EXPECT_GE(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum, r.downlinkUtilization, 1e-6);
}

TEST(ExperimentDriver, HigherLoadRaisesTailSlowdown) {
    ExperimentResult lo = runExperiment(smallConfig(WorkloadId::W3, 0.4));
    ExperimentResult hi = runExperiment(smallConfig(WorkloadId::W3, 0.85));
    EXPECT_GT(hi.slowdown->overallPercentile(0.99),
              lo.slowdown->overallPercentile(0.99));
}

TEST(ExperimentDriver, DeterministicGivenSeed) {
    auto run = [] {
        ExperimentResult r = runExperiment(smallConfig(WorkloadId::W1, 0.6));
        return std::make_tuple(r.generated, r.delivered,
                               r.slowdown->overallPercentile(0.99));
    };
    EXPECT_EQ(run(), run());
}

TEST(ExperimentDriver, SeedChangesTraffic) {
    ExperimentConfig a = smallConfig(WorkloadId::W1, 0.6);
    ExperimentConfig b = a;
    b.traffic.seed = a.traffic.seed + 1;
    EXPECT_NE(runExperiment(a).generated, runExperiment(b).generated);
}

TEST(ExperimentDriver, WastedBandwidthProbeOnlyWhenRequested) {
    ExperimentConfig cfg = smallConfig(WorkloadId::W4, 0.7);
    cfg.measureWastedBandwidth = false;
    EXPECT_EQ(runExperiment(cfg).wastedBandwidth, 0.0);
}

class ProtocolsUnderLoad
    : public ::testing::TestWithParam<std::tuple<Protocol, double>> {};

TEST_P(ProtocolsUnderLoad, DeliversAndStaysSane) {
    auto [kind, load] = GetParam();
    ExperimentConfig cfg = smallConfig(WorkloadId::W3, load, kind);
    ExperimentResult r = runExperiment(cfg);
    EXPECT_GT(r.generated, 500u);
    // Every protocol must deliver nearly everything at these easy loads.
    EXPECT_GE(static_cast<double>(r.delivered),
              0.98 * static_cast<double>(r.generated))
        << protocolName(kind) << " @ " << load;
    EXPECT_GE(r.slowdown->overallPercentile(0.5), 1.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ProtocolsUnderLoad,
    ::testing::Combine(::testing::Values(Protocol::Homa, Protocol::Basic,
                                         Protocol::PHost, Protocol::Pias,
                                         Protocol::PFabric),
                       ::testing::Values(0.3, 0.55)),
    [](const auto& info) {
        std::string n = protocolName(std::get<0>(info.param));
        n.erase(std::remove(n.begin(), n.end(), '-'), n.end());
        return n + "_" +
               std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(RpcExperiment, EchoSlowdownsReasonableAtModerateLoad) {
    RpcExperimentConfig cfg;
    cfg.workload = WorkloadId::W3;
    cfg.load = 0.5;
    cfg.stop = milliseconds(8);
    RpcExperimentResult r = runRpcExperiment(cfg);
    EXPECT_TRUE(r.keptUp);
    EXPECT_GT(r.issued, 300u);
    EXPECT_GE(r.slowdown->overallPercentile(0.5), 1.0 - 1e-9);
    EXPECT_LT(r.slowdown->overallPercentile(0.5), 3.0);
}

TEST(RpcExperiment, HomaBeatsStreamingTail) {
    RpcExperimentConfig cfg;
    cfg.workload = WorkloadId::W3;
    cfg.load = 0.7;
    cfg.stop = milliseconds(8);
    RpcExperimentResult homa = runRpcExperiment(cfg);
    cfg.proto.kind = Protocol::StreamSC;
    RpcExperimentResult stream = runRpcExperiment(cfg);
    EXPECT_LT(10 * homa.slowdown->overallPercentile(0.99),
              stream.slowdown->overallPercentile(0.99));
}

TEST(FindMaxLoad, DetectsACapForPHost) {
    // pHost (no overcommitment) must cap strictly below Homa on W3.
    ExperimentConfig base = smallConfig(WorkloadId::W3, 0.5, Protocol::PHost);
    base.traffic.stop = milliseconds(5);
    const double phost = findMaxLoad(base, 50, 10, 95);
    base.proto.kind = Protocol::Homa;
    const double homa = findMaxLoad(base, 50, 10, 95);
    EXPECT_GE(homa, phost);
    EXPECT_LT(phost, 95.0);
}

}  // namespace
}  // namespace homa
