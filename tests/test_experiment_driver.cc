// Integration tests of the experiment harness itself: load calibration,
// measurement windows, utilization accounting, overload detection.
#include <gtest/gtest.h>

#include "driver/experiment.h"
#include "driver/rpc_experiment.h"

namespace homa {
namespace {

ExperimentConfig smallConfig(WorkloadId wl, double load,
                             Protocol kind = Protocol::Homa) {
    ExperimentConfig cfg;
    cfg.proto.kind = kind;
    cfg.traffic.workload = wl;
    cfg.traffic.load = load;
    cfg.traffic.stop = milliseconds(4);
    cfg.drainGrace = milliseconds(30);
    return cfg;
}

TEST(ExperimentDriver, ModerateLoadKeepsUp) {
    // W2: light enough tail that a short window gives a clean verdict.
    ExperimentResult r = runExperiment(smallConfig(WorkloadId::W2, 0.5));
    EXPECT_TRUE(r.keptUp);
    EXPECT_GT(r.generated, 1000u);
    EXPECT_EQ(r.delivered, r.generated);
    EXPECT_EQ(r.switchDrops, 0u);
}

TEST(ExperimentDriver, UtilizationTracksOfferedLoad) {
    // W2's tail is light enough that a short window measures utilization
    // decently: expect downlink utilization within ~25% of offered.
    ExperimentResult r = runExperiment(smallConfig(WorkloadId::W2, 0.6));
    EXPECT_GT(r.downlinkUtilization, 0.45);
    EXPECT_LT(r.downlinkUtilization, 0.75);
}

TEST(ExperimentDriver, GrossOverloadDetected) {
    // 120% offered load cannot be sustained by anything.
    ExperimentResult r = runExperiment(smallConfig(WorkloadId::W2, 1.2));
    EXPECT_FALSE(r.keptUp);
}

TEST(ExperimentDriver, SlowdownsAreAtLeastOne) {
    ExperimentResult r = runExperiment(smallConfig(WorkloadId::W3, 0.7));
    EXPECT_GE(r.slowdown->overallPercentile(0.0), 1.0 - 1e-9);
    EXPECT_GE(r.slowdown->overallPercentile(0.99),
              r.slowdown->overallPercentile(0.50));
}

TEST(ExperimentDriver, PriorityUsageSumsBelowUtilization) {
    ExperimentResult r = runExperiment(smallConfig(WorkloadId::W3, 0.6));
    double sum = 0;
    for (double v : r.prioUsage) {
        EXPECT_GE(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum, r.downlinkUtilization, 1e-6);
}

TEST(ExperimentDriver, HigherLoadRaisesTailSlowdown) {
    ExperimentResult lo = runExperiment(smallConfig(WorkloadId::W3, 0.4));
    ExperimentResult hi = runExperiment(smallConfig(WorkloadId::W3, 0.85));
    EXPECT_GT(hi.slowdown->overallPercentile(0.99),
              lo.slowdown->overallPercentile(0.99));
}

TEST(ExperimentDriver, DeterministicGivenSeed) {
    auto run = [] {
        ExperimentResult r = runExperiment(smallConfig(WorkloadId::W1, 0.6));
        return std::make_tuple(r.generated, r.delivered,
                               r.slowdown->overallPercentile(0.99));
    };
    EXPECT_EQ(run(), run());
}

TEST(ExperimentDriver, SeedChangesTraffic) {
    ExperimentConfig a = smallConfig(WorkloadId::W1, 0.6);
    ExperimentConfig b = a;
    b.traffic.seed = a.traffic.seed + 1;
    EXPECT_NE(runExperiment(a).generated, runExperiment(b).generated);
}

TEST(ExperimentDriver, WastedBandwidthProbeOnlyWhenRequested) {
    ExperimentConfig cfg = smallConfig(WorkloadId::W4, 0.7);
    cfg.measureWastedBandwidth = false;
    EXPECT_EQ(runExperiment(cfg).wastedBandwidth, 0.0);
}

class ProtocolsUnderLoad
    : public ::testing::TestWithParam<std::tuple<Protocol, double>> {};

TEST_P(ProtocolsUnderLoad, DeliversAndStaysSane) {
    auto [kind, load] = GetParam();
    ExperimentConfig cfg = smallConfig(WorkloadId::W3, load, kind);
    ExperimentResult r = runExperiment(cfg);
    EXPECT_GT(r.generated, 500u);
    // Every protocol must deliver nearly everything at these easy loads.
    EXPECT_GE(static_cast<double>(r.delivered),
              0.98 * static_cast<double>(r.generated))
        << protocolName(kind) << " @ " << load;
    EXPECT_GE(r.slowdown->overallPercentile(0.5), 1.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ProtocolsUnderLoad,
    ::testing::Combine(::testing::Values(Protocol::Homa, Protocol::Basic,
                                         Protocol::PHost, Protocol::Pias,
                                         Protocol::PFabric),
                       ::testing::Values(0.3, 0.55)),
    [](const auto& info) {
        std::string n = protocolName(std::get<0>(info.param));
        n.erase(std::remove(n.begin(), n.end(), '-'), n.end());
        return n + "_" +
               std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(RpcExperiment, EchoSlowdownsReasonableAtModerateLoad) {
    RpcExperimentConfig cfg;
    cfg.workload = WorkloadId::W3;
    cfg.load = 0.5;
    cfg.stop = milliseconds(8);
    RpcExperimentResult r = runRpcExperiment(cfg);
    EXPECT_TRUE(r.keptUp);
    EXPECT_GT(r.issued, 300u);
    EXPECT_GE(r.slowdown->overallPercentile(0.5), 1.0 - 1e-9);
    EXPECT_LT(r.slowdown->overallPercentile(0.5), 3.0);
}

TEST(RpcExperiment, HomaBeatsStreamingTail) {
    RpcExperimentConfig cfg;
    cfg.workload = WorkloadId::W3;
    cfg.load = 0.7;
    cfg.stop = milliseconds(8);
    RpcExperimentResult homa = runRpcExperiment(cfg);
    cfg.proto.kind = Protocol::StreamSC;
    RpcExperimentResult stream = runRpcExperiment(cfg);
    EXPECT_LT(10 * homa.slowdown->overallPercentile(0.99),
              stream.slowdown->overallPercentile(0.99));
}

TEST(ExperimentDriver, WarmupZeroCountsEveryMessage) {
    ExperimentConfig cfg = smallConfig(WorkloadId::W2, 0.4);
    cfg.warmupFraction = 0.0;
    ExperimentResult r = runExperiment(cfg);
    EXPECT_EQ(r.windowStart, cfg.traffic.start);
    // Every generated message is in-window, so the window counters and the
    // all-inclusive totals coincide.
    EXPECT_GT(r.generated, 0u);
    EXPECT_EQ(r.delivered, r.deliveredTotal);
    EXPECT_EQ(r.slowdown->count(), r.delivered);
}

TEST(ExperimentDriver, WarmupOneYieldsEmptyWindowSafely) {
    ExperimentConfig cfg = smallConfig(WorkloadId::W2, 0.4);
    cfg.warmupFraction = 1.0;
    ExperimentResult r = runExperiment(cfg);
    EXPECT_EQ(r.windowStart, r.windowEnd);
    EXPECT_EQ(r.generated, 0u);
    EXPECT_EQ(r.delivered, 0u);
    EXPECT_EQ(r.slowdown->count(), 0u);
    EXPECT_FALSE(r.keptUp);
    EXPECT_EQ(r.downlinkUtilization, 0.0);  // zero-length window
    EXPECT_GT(r.deliveredTotal, 0u);        // traffic still flowed
}

TEST(ExperimentDriver, WindowBoundariesExcludeStraddlingMessages) {
    // Trace replay pins message creation times exactly: one message lands
    // before windowStart (warm-up), one inside the window, one at the very
    // first instant of the window, and generation stops at windowEnd.
    ExperimentConfig cfg;
    cfg.net = NetworkConfig::singleRack16();
    cfg.traffic.stop = milliseconds(10);
    cfg.warmupFraction = 0.5;  // windowStart = 5 ms
    cfg.traffic.scenario.kind = TrafficPatternKind::TraceReplay;
    cfg.traffic.scenario.traceText =
        "1000 1 2 2000\n"    // 1 ms: warm-up, excluded
        "5000 3 4 2000\n"    // exactly windowStart: included
        "7000 5 6 2000\n";   // inside the window: included
    ExperimentResult r = runExperiment(cfg);
    EXPECT_EQ(r.generated, 2u);
    EXPECT_EQ(r.delivered, 2u);
    EXPECT_EQ(r.deliveredTotal, 3u);
    EXPECT_EQ(r.slowdown->count(), 2u);
}

TEST(ExperimentDriver, IncastOverflowDropsPropagateToResult) {
    // Finite tail-drop buffers + an N-to-1 fan-in hotspot: the hot
    // receiver's TOR downlink must overflow, and the qdiscs' drop counts
    // must surface as ExperimentResult::switchDrops.
    ExperimentConfig cfg = smallConfig(WorkloadId::W3, 0.6);
    cfg.traffic.scenario.kind = TrafficPatternKind::Incast;
    cfg.traffic.scenario.hotspots = 2;
    cfg.traffic.scenario.hotspotDegree = 32;
    cfg.net.switchQdisc = [] {
        StrictPriorityOptions o;
        o.capBytes = 50'000;  // far below the fan-in burst
        return std::make_unique<StrictPriorityQdisc>(o);
    };
    ExperimentResult r = runExperiment(cfg);
    EXPECT_GT(r.switchDrops, 0u);
    EXPECT_EQ(r.switchTrims, 0u);  // tail-drop path, not trimming
    EXPECT_FALSE(r.keptUp);        // 32x oversubscription cannot keep up
}

TEST(ExperimentDriver, IncastOverflowTrimsOnNdp) {
    // Same hotspot under NDP's default switch: overflowing DATA packets
    // are trimmed to headers (never dropped), and the trim counts must
    // surface as ExperimentResult::switchTrims.
    ExperimentConfig cfg = smallConfig(WorkloadId::W3, 0.6, Protocol::Ndp);
    cfg.traffic.scenario.kind = TrafficPatternKind::Incast;
    cfg.traffic.scenario.hotspots = 2;
    cfg.traffic.scenario.hotspotDegree = 32;
    ExperimentResult r = runExperiment(cfg);
    EXPECT_GT(r.switchTrims, 0u);
    EXPECT_EQ(r.switchDrops, 0u);
}

TEST(ExperimentDriver, GenerousBuffersAbsorbTheSameIncast) {
    // Control for the drop test: the identical hotspot with the default
    // unbounded switch produces zero drops (the overload shows up as
    // backlog, not loss).
    ExperimentConfig cfg = smallConfig(WorkloadId::W3, 0.6);
    cfg.traffic.scenario.kind = TrafficPatternKind::Incast;
    cfg.traffic.scenario.hotspots = 2;
    cfg.traffic.scenario.hotspotDegree = 32;
    ExperimentResult r = runExperiment(cfg);
    EXPECT_EQ(r.switchDrops, 0u);
    EXPECT_EQ(r.switchTrims, 0u);
}

TEST(FindMaxLoad, DetectsACapForPHost) {
    // pHost (no overcommitment) must cap strictly below Homa on W3.
    ExperimentConfig base = smallConfig(WorkloadId::W3, 0.5, Protocol::PHost);
    base.traffic.stop = milliseconds(5);
    const double phost = findMaxLoad(base, 50, 10, 95);
    base.proto.kind = Protocol::Homa;
    const double homa = findMaxLoad(base, 50, 10, 95);
    EXPECT_GE(homa, phost);
    EXPECT_LT(phost, 95.0);
}

}  // namespace
}  // namespace homa
