// Small pieces: packet helpers, wire-size accounting, switch spraying
// determinism, message flag plumbing.
#include <gtest/gtest.h>

#include "sim/packet.h"
#include "sim/switch.h"

namespace homa {
namespace {

TEST(Packet, WireBytesData) {
    Packet p;
    p.type = PacketType::Data;
    p.length = kMaxPayload;
    EXPECT_EQ(p.wireBytes(), kFullPacketWireBytes);
    p.length = 1;
    EXPECT_EQ(p.wireBytes(), 1 + kHeaderBytes + kFrameOverhead);
}

TEST(Packet, WireBytesControlIgnoresLengthField) {
    Packet p;
    p.type = PacketType::Resend;
    p.length = 99999;  // RESEND uses length as a byte-range, not payload
    EXPECT_EQ(p.wireBytes(), kHeaderBytes + kFrameOverhead);
}

TEST(Packet, TrimmedLosesPayload) {
    Packet p;
    p.type = PacketType::Data;
    p.length = kMaxPayload;
    p.setFlag(kFlagTrimmed);
    EXPECT_EQ(p.wireBytes(), kHeaderBytes + kFrameOverhead);
}

TEST(Packet, FlagOperations) {
    Packet p;
    EXPECT_FALSE(p.hasFlag(kFlagRetransmit));
    p.setFlag(kFlagRetransmit);
    p.setFlag(kFlagLast);
    EXPECT_TRUE(p.hasFlag(kFlagRetransmit));
    EXPECT_TRUE(p.hasFlag(kFlagLast));
    EXPECT_FALSE(p.hasFlag(kFlagEcn));
}

TEST(Packet, TypeNamesAndSummary) {
    EXPECT_STREQ(packetTypeName(PacketType::Data), "DATA");
    EXPECT_STREQ(packetTypeName(PacketType::Grant), "GRANT");
    EXPECT_STREQ(packetTypeName(PacketType::Busy), "BUSY");
    Packet p;
    p.type = PacketType::Data;
    p.msg = 42;
    p.src = 1;
    p.dst = 2;
    const std::string s = p.summary();
    EXPECT_NE(s.find("DATA"), std::string::npos);
    EXPECT_NE(s.find("msg=42"), std::string::npos);
}

TEST(Switch, RoutesByCallback) {
    EventLoop loop;
    Switch sw(loop, "t", nanoseconds(250), Rng(1));
    struct Sink : PacketSink {
        int got = 0;
        void deliver(Packet) override { got++; }
    } sinkA, sinkB;
    sw.addPort(k10Gbps, std::make_unique<StrictPriorityQdisc>(), &sinkA);
    sw.addPort(k10Gbps, std::make_unique<StrictPriorityQdisc>(), &sinkB);
    sw.setRoute([](const Packet& p, Rng&) { return p.dst == 7 ? 1 : 0; });
    Packet p;
    p.type = PacketType::Data;
    p.length = 100;
    p.dst = 7;
    sw.deliver(p);
    p.dst = 3;
    sw.deliver(p);
    loop.run();
    EXPECT_EQ(sinkA.got, 1);
    EXPECT_EQ(sinkB.got, 1);
}

TEST(Switch, InternalDelayApplied) {
    EventLoop loop;
    Switch sw(loop, "t", nanoseconds(250), Rng(1));
    struct Sink : PacketSink {
        Time at = -1;
        EventLoop* loop = nullptr;
        void deliver(Packet) override { at = loop->now(); }
    } sink;
    sink.loop = &loop;
    sw.addPort(k10Gbps, std::make_unique<StrictPriorityQdisc>(), &sink);
    sw.setRoute([](const Packet&, Rng&) { return 0; });
    Packet p;
    p.type = PacketType::Data;
    p.length = 100;
    sw.deliver(p);
    loop.run();
    // 250 ns internal delay + serialization of 182 wire bytes at 10 Gbps.
    EXPECT_EQ(sink.at, nanoseconds(250) + k10Gbps.serialize(100 + 82));
}

TEST(Switch, HopCounterIncrements) {
    EventLoop loop;
    Switch sw(loop, "t", nanoseconds(250), Rng(1));
    struct Sink : PacketSink {
        uint32_t hops = 0;
        void deliver(Packet p) override { hops = p.hops; }
    } sink;
    sw.addPort(k10Gbps, std::make_unique<StrictPriorityQdisc>(), &sink);
    sw.setRoute([](const Packet&, Rng&) { return 0; });
    Packet p;
    p.type = PacketType::Data;
    p.length = 10;
    p.hops = 3;
    sw.deliver(p);
    loop.run();
    EXPECT_EQ(sink.hops, 4u);
}

}  // namespace
}  // namespace homa
