// Fan-out/fan-in DAG workload tests: spec parsing and validation, tree
// sampling, the unloaded critical-path ideal, fan-in completion semantics
// (a parent's response must never be emitted before its last child's
// response is delivered — verified with accounting external to the
// engine, as in test_closed_loop.cc), straggler dominance of tree
// latency, end-to-end metrics from runExperiment, the RPC-level
// partition-aggregate mode of runRpcExperiment, and the CLI runner's
// contradictory-flag validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <tuple>

#ifdef HOMA_RUN_EXPERIMENT_BIN
#include <sys/wait.h>
#endif

#include "driver/rpc_experiment.h"
#include "driver/sweep.h"
#include "workload/generator.h"

namespace homa {
namespace {

// ---------------------------------------------------------------- specs

TEST(DagSpec, ParsesDefaultsAndParameters) {
    ScenarioConfig s;
    ASSERT_TRUE(scenarioFromSpec("dag", s));
    EXPECT_EQ(s.kind, TrafficPatternKind::Dag);
    EXPECT_FALSE(s.onOff.enabled);

    ASSERT_TRUE(scenarioFromSpec("dag:fanout=40,depth=2", s));
    EXPECT_EQ(s.kind, TrafficPatternKind::Dag);
    EXPECT_EQ(s.dag.fanout, 40);
    EXPECT_EQ(s.dag.depth, 2);

    ASSERT_TRUE(scenarioFromSpec(
        "dag:fanout=8,depth=1,window=2,roots=4,req=100,"
        "resp=16000/2000,straggler=0.1,factor=20+on-off", s));
    EXPECT_TRUE(s.onOff.enabled);
    EXPECT_EQ(s.dag.fanout, 8);
    EXPECT_EQ(s.dag.depth, 1);
    EXPECT_EQ(s.dag.window, 2);
    EXPECT_EQ(s.dag.roots, 4);
    EXPECT_EQ(s.dag.requestBytes, 100u);
    ASSERT_EQ(s.dag.stageResponseBytes.size(), 2u);
    EXPECT_EQ(s.dag.stageResponseBytes[0], 16000u);
    EXPECT_EQ(s.dag.stageResponseBytes[1], 2000u);
    EXPECT_DOUBLE_EQ(s.dag.stragglerFraction, 0.1);
    EXPECT_DOUBLE_EQ(s.dag.stragglerFactor, 20.0);
}

TEST(DagSpec, RejectsMalformedSpecs) {
    ScenarioConfig untouched;
    untouched.kind = TrafficPatternKind::RackSkew;
    for (const char* spec :
         {"dag:", "dag:bogus=1", "dag:fanout", "dag:fanout=",
          "dag:fanout=abc", "dag:fanout=0", "dag:depth=0", "dag:window=0",
          "dag:resp=", "dag:resp=100/", "dag:straggler=1.5",
          "dag:factor=0.5", "dag:fanout=100,depth=3",
          "uniform:fanout=2", "incast:hotspots=2", "dag+onoff"}) {
        EXPECT_FALSE(scenarioFromSpec(spec, untouched)) << spec;
    }
    EXPECT_EQ(untouched.kind, TrafficPatternKind::RackSkew);
}

TEST(DagSpec, ValidateReportsTheFirstProblem) {
    DagConfig ok;
    EXPECT_EQ(validateDagConfig(ok), nullptr);
    DagConfig bad = ok;
    bad.fanout = 0;
    EXPECT_NE(validateDagConfig(bad), nullptr);
    bad = ok;
    bad.depth = 0;
    EXPECT_NE(validateDagConfig(bad), nullptr);
    bad = ok;
    bad.stragglerFraction = 2.0;
    EXPECT_NE(validateDagConfig(bad), nullptr);
    bad = ok;
    bad.fanout = 100;
    bad.depth = 3;  // 100 + 10^4 + 10^6 nodes: over the cap
    EXPECT_NE(validateDagConfig(bad), nullptr);
    EXPECT_EQ(dagTreeNodeCount(bad), kMaxDagNodes + 1);  // saturates
}

TEST(DagSpec, PatternNameRoundTrips) {
    TrafficPatternKind kind = TrafficPatternKind::Uniform;
    ASSERT_TRUE(patternFromName("dag", kind));
    EXPECT_EQ(kind, TrafficPatternKind::Dag);
    EXPECT_STREQ(patternName(TrafficPatternKind::Dag), "dag");
}

// ------------------------------------------------------------- sampling

DagTreeSpec sampleTree(const DagConfig& cfg, uint64_t seed = 7,
                       int hosts = 16) {
    Rng rng(seed);
    return sampleDagTree(cfg, nullptr, rng, /*root=*/0,
                         [hosts](HostId parent, Rng& r) {
                             return uniformHostExcept(hosts, parent, r);
                         });
}

TEST(DagTree, SamplesTheConfiguredShape) {
    DagConfig cfg;
    cfg.fanout = 3;
    cfg.depth = 2;
    cfg.stageResponseBytes = {16000, 2000};
    const DagTreeSpec tree = sampleTree(cfg);
    ASSERT_EQ(tree.nodes.size(), 1u + 3u + 9u);
    EXPECT_EQ(dagTreeNodeCount(cfg), 12);
    EXPECT_EQ(tree.nodes[0].parent, -1);
    EXPECT_EQ(tree.nodes[0].stage, 0);
    for (size_t i = 1; i < tree.nodes.size(); i++) {
        const DagNodeSpec& n = tree.nodes[i];
        ASSERT_GE(n.parent, 0);
        ASSERT_LT(static_cast<size_t>(n.parent), i);  // BFS order
        const DagNodeSpec& p = tree.nodes[n.parent];
        EXPECT_EQ(n.stage, p.stage + 1);
        EXPECT_NE(n.host, p.host);
        // The parent's child range covers this node.
        EXPECT_GE(static_cast<int>(i), p.firstChild);
        EXPECT_LT(static_cast<int>(i), p.firstChild + p.childCount);
        EXPECT_EQ(n.respBytes, n.stage == 1 ? 16000u : 2000u);
    }
    for (const DagNodeSpec& n : tree.nodes) {
        if (n.stage < cfg.depth) {
            EXPECT_EQ(n.childCount, 3);
        } else {
            EXPECT_EQ(n.childCount, 0);
        }
    }
    // One request per edge plus every node's response.
    EXPECT_EQ(dagTreeBytes(cfg, tree),
              12 * 320 + 3 * 16000 + 9 * 2000);
}

TEST(DagTree, StragglersInflateOnlyLeaves) {
    DagConfig cfg;
    cfg.fanout = 4;
    cfg.depth = 2;
    cfg.stageResponseBytes = {1000, 100};
    cfg.stragglerFraction = 1.0;  // every leaf
    cfg.stragglerFactor = 3.0;
    const DagTreeSpec tree = sampleTree(cfg);
    for (const DagNodeSpec& n : tree.nodes) {
        if (n.stage == 1) {
            EXPECT_EQ(n.respBytes, 1000u);
        } else if (n.stage == 2) {
            EXPECT_EQ(n.respBytes, 300u);
        }
    }
}

TEST(DagTree, IdealIsTheSlowestLeafToRootChain) {
    DagConfig cfg;
    cfg.fanout = 2;
    cfg.depth = 2;
    cfg.requestBytes = 10;
    cfg.stageResponseBytes = {50, 20};
    const DagTreeSpec tree = sampleTree(cfg);
    // Cost = bytes (host-independent), so every leaf chain costs
    // (10 + 20) at the leaf edge plus (10 + 50) at the aggregator edge.
    const Duration ideal = dagTreeIdeal(
        tree, cfg.requestBytes,
        [](HostId, HostId, uint32_t bytes) {
            return static_cast<Duration>(bytes);
        });
    EXPECT_EQ(ideal, 10 + 20 + 10 + 50);
    EXPECT_EQ(dagTreeIdeal(tree, cfg.requestBytes, nullptr), 0);
}

// ------------------------------------------------- multi-parent joins

// Delivers every message after a size-dependent service time without
// simulating packets: exercises the pure tree control flow.
class DelayTransport final : public Transport {
public:
    explicit DelayTransport(HostServices& host) : host_(host) {}
    void sendMessage(const Message& m) override {
        const Duration service =
            microseconds(1) + static_cast<Duration>(m.length) * 100;
        host_.loop().after(service, [this, m] {
            DeliveryInfo info;
            info.completed = host_.loop().now();
            notifyDelivered(m, info);
        });
    }
    void handlePacket(const Packet&) override {}

private:
    HostServices& host_;
};

TrafficConfig dagConfig(DagConfig dag, Duration stop = milliseconds(2)) {
    TrafficConfig cfg;
    cfg.workload = WorkloadId::W1;
    cfg.stop = stop;
    cfg.scenario.kind = TrafficPatternKind::Dag;
    cfg.scenario.dag = dag;
    return cfg;
}

TEST(DagJoins, SamplingIsDeterministicAndWellFormed) {
    DagConfig cfg;
    cfg.fanout = 3;
    cfg.depth = 3;
    cfg.stageResponseBytes = {4000, 1000, 200};
    cfg.joinFraction = 0.5;
    const DagTreeSpec tree = sampleTree(cfg);
    ASSERT_FALSE(tree.joins.empty());
    int lastChild = -1;
    for (const DagJoinEdge& e : tree.joins) {
        ASSERT_GE(e.parent, 0);
        ASSERT_LT(static_cast<size_t>(e.child), tree.nodes.size());
        // An extra parent sits exactly one stage up, is never the node's
        // own parent, never shares its host, and precedes it in BFS
        // order — the acyclicity guarantee.
        EXPECT_LT(e.parent, e.child);
        EXPECT_EQ(tree.nodes[e.parent].stage, tree.nodes[e.child].stage - 1);
        EXPECT_NE(e.parent, tree.nodes[e.child].parent);
        EXPECT_NE(tree.nodes[e.parent].host, tree.nodes[e.child].host);
        EXPECT_GE(tree.nodes[e.child].stage, 2);  // no root-level joins
        EXPECT_GT(e.child, lastChild);  // child-ascending, one edge per node
        lastChild = e.child;
    }
    // Same seed => the same DAG, edge for edge.
    const DagTreeSpec again = sampleTree(cfg);
    ASSERT_EQ(again.joins.size(), tree.joins.size());
    for (size_t i = 0; i < tree.joins.size(); i++) {
        EXPECT_EQ(again.joins[i].parent, tree.joins[i].parent);
        EXPECT_EQ(again.joins[i].child, tree.joins[i].child);
    }
    // The adjacency view covers every edge exactly once.
    const std::vector<std::vector<int>> kids = dagJoinChildren(tree);
    size_t total = 0;
    for (const std::vector<int>& k : kids) total += k.size();
    EXPECT_EQ(total, tree.joins.size());
}

TEST(DagJoins, ZeroFractionIsByteIdenticalToPureTrees) {
    // joinFraction = 0 must draw nothing from the RNG: the sampled shape
    // is node-for-node identical to a config that predates the knob, so
    // existing tree goldens are unperturbed by the DAG extension.
    DagConfig pure;
    pure.fanout = 3;
    pure.depth = 3;
    pure.stageResponseBytes = {4000, 1000, 200};
    DagConfig zeroed = pure;
    zeroed.joinFraction = 0.0;
    const DagTreeSpec a = sampleTree(pure);
    const DagTreeSpec b = sampleTree(zeroed);
    EXPECT_TRUE(b.joins.empty());
    ASSERT_EQ(a.nodes.size(), b.nodes.size());
    for (size_t i = 0; i < a.nodes.size(); i++) {
        EXPECT_EQ(a.nodes[i].host, b.nodes[i].host);
        EXPECT_EQ(a.nodes[i].parent, b.nodes[i].parent);
        EXPECT_EQ(a.nodes[i].respBytes, b.nodes[i].respBytes);
    }
}

TEST(DagJoins, JoinsOnlyLengthenTheIdealAndAddBytes) {
    DagConfig cfg;
    cfg.fanout = 3;
    cfg.depth = 3;
    cfg.requestBytes = 10;
    cfg.stageResponseBytes = {50, 30, 20};
    cfg.joinFraction = 0.7;
    const DagTreeSpec joined = sampleTree(cfg);
    ASSERT_FALSE(joined.joins.empty());
    DagTreeSpec stripped = joined;
    stripped.joins.clear();
    const DagCostFn cost = [](HostId, HostId, uint32_t bytes) {
        return static_cast<Duration>(bytes);
    };
    // Join edges add constraints (an extra parent to answer) and carry
    // their own request + response copy: the ideal can only grow, and
    // the byte count grows by exactly one edge's worth per join.
    EXPECT_GE(dagTreeIdeal(joined, cfg.requestBytes, cost),
              dagTreeIdeal(stripped, cfg.requestBytes, cost));
    int64_t joinBytes = 0;
    for (const DagJoinEdge& e : joined.joins) {
        joinBytes += cfg.requestBytes + joined.nodes[e.child].respBytes;
    }
    EXPECT_EQ(dagTreeBytes(cfg, joined),
              dagTreeBytes(cfg, stripped) + joinBytes);
    // A pure tree's ideal must match the historical slowest-chain value
    // (the absolute-time reformulation is a pure refactor for trees).
    EXPECT_GT(dagTreeIdeal(stripped, cfg.requestBytes, cost), 0);
}

TEST(DagJoins, EngineHoldsFanInForJoinChildrenToo) {
    // External ledger over the message-level engine: a node may answer
    // *any* parent only after every one of its own children AND every
    // join child it queried has delivered its response to it.
    DagConfig dag;
    dag.fanout = 3;
    dag.depth = 3;
    dag.roots = 4;
    dag.stageResponseBytes = {500, 300, 200};
    dag.joinFraction = 0.5;
    Network net(NetworkConfig::singleRack16(), [](HostServices& h) {
        return std::make_unique<DelayTransport>(h);
    });
    TrafficGenerator* genPtr = nullptr;
    // (tree, child, parent) triples whose response was delivered — join
    // children answer each parent separately, so the parent matters.
    std::set<std::tuple<uint64_t, int, int>> deliveredResponses;
    uint64_t joinEdgesSeen = 0, joinFanInsChecked = 0;
    std::set<uint64_t> treesSeen;
    TrafficGenerator gen(net, dagConfig(dag, milliseconds(3)), [&](const Message& m) {
        const auto role = genPtr->dag()->roleOf(m.id);
        ASSERT_TRUE(role.has_value());
        const DagTreeSpec* spec = genPtr->dag()->treeSpec(role->tree);
        ASSERT_NE(spec, nullptr);
        if (treesSeen.insert(role->tree).second) {
            joinEdgesSeen += spec->joins.size();
        }
        if (!role->response) return;
        const DagNodeSpec& n = spec->nodes[role->node];
        for (int c = 0; c < n.childCount; c++) {
            EXPECT_TRUE(deliveredResponses.count(
                {role->tree, n.firstChild + c, role->node}) != 0)
                << "tree " << role->tree << " node " << role->node
                << " responded before own child " << n.firstChild + c;
        }
        const std::vector<std::vector<int>> kids = dagJoinChildren(*spec);
        for (int jc : kids[static_cast<size_t>(role->node)]) {
            EXPECT_TRUE(deliveredResponses.count(
                {role->tree, jc, role->node}) != 0)
                << "tree " << role->tree << " node " << role->node
                << " responded before join child " << jc;
            joinFanInsChecked++;
        }
    });
    genPtr = &gen;
    net.setDeliveryCallback([&](const Message& m, const DeliveryInfo&) {
        const auto role = gen.dag()->roleOf(m.id);
        ASSERT_TRUE(role.has_value());
        if (role->response) {
            deliveredResponses.insert({role->tree, role->node, role->parent});
        }
        gen.onDelivered(m);
    });
    gen.start();
    net.loop().runUntil(milliseconds(4));
    EXPECT_GT(gen.dag()->treesCompleted(), 5u);
    EXPECT_GT(joinEdgesSeen, 0u);       // the DAGs actually had joins
    EXPECT_GT(joinFanInsChecked, 0u);   // and their fan-ins were checked
}

TEST(DagJoins, SpecParsesAndEndToEndReplaysByteIdentically) {
    ScenarioConfig s;
    ASSERT_TRUE(scenarioFromSpec("dag:fanout=3,depth=3,join=0.4", s));
    EXPECT_DOUBLE_EQ(s.dag.joinFraction, 0.4);
    ScenarioConfig untouched;
    EXPECT_FALSE(scenarioFromSpec("dag:join=1.5", untouched));
    EXPECT_FALSE(scenarioFromSpec("dag:join=abc", untouched));

    ExperimentConfig cfg;
    cfg.net = NetworkConfig::singleRack16();
    cfg.traffic.workload = WorkloadId::W1;
    cfg.traffic.stop = milliseconds(2);
    cfg.traffic.scenario.kind = TrafficPatternKind::Dag;
    cfg.traffic.scenario.dag.fanout = 3;
    cfg.traffic.scenario.dag.depth = 3;
    cfg.traffic.scenario.dag.roots = 4;
    cfg.traffic.scenario.dag.stageResponseBytes = {4000, 1000, 200};
    cfg.traffic.scenario.dag.joinFraction = 0.5;
    const ExperimentResult a = runExperiment(cfg);
    ASSERT_TRUE(a.dag);
    EXPECT_GT(a.dag->trees(), 0u);
    EXPECT_EQ(resultFingerprint(a), resultFingerprint(runExperiment(cfg)));
    ExperimentConfig reseeded = cfg;
    reseeded.traffic.seed = cfg.traffic.seed + 1;
    EXPECT_NE(resultFingerprint(a), resultFingerprint(runExperiment(reseeded)));
}

// --------------------------------------------- fan-in semantics (external)

TEST(DagFanIn, ParentResponseNeverFiresBeforeLastChildDelivery) {
    DagConfig dag;
    dag.fanout = 3;
    dag.depth = 2;
    dag.roots = 4;
    dag.stageResponseBytes = {500, 200};
    Network net(NetworkConfig::singleRack16(), [](HostServices& h) {
        return std::make_unique<DelayTransport>(h);
    });
    TrafficGenerator* genPtr = nullptr;
    // External ledger: which (tree, node) responses have been delivered.
    std::set<std::pair<uint64_t, int>> deliveredResponses;
    uint64_t responsesChecked = 0;
    TrafficGenerator gen(net, dagConfig(dag), [&](const Message& m) {
        const auto role = genPtr->dag()->roleOf(m.id);
        ASSERT_TRUE(role.has_value());  // every dag message is the engine's
        if (!role->response) return;
        const DagTreeSpec* spec = genPtr->dag()->treeSpec(role->tree);
        ASSERT_NE(spec, nullptr);
        const DagNodeSpec& n = spec->nodes[role->node];
        // The node fires its own response only after every one of its
        // children's responses was *delivered* to it.
        for (int c = 0; c < n.childCount; c++) {
            EXPECT_TRUE(deliveredResponses.count(
                {role->tree, n.firstChild + c}) != 0)
                << "tree " << role->tree << " node " << role->node
                << " responded before child " << n.firstChild + c;
            responsesChecked++;
        }
    });
    genPtr = &gen;
    net.setDeliveryCallback([&](const Message& m, const DeliveryInfo&) {
        const auto role = gen.dag()->roleOf(m.id);
        ASSERT_TRUE(role.has_value());
        if (role->response) {
            deliveredResponses.insert({role->tree, role->node});
        }
        gen.onDelivered(m);
    });
    gen.start();
    net.loop().runUntil(milliseconds(3));
    EXPECT_GT(gen.dag()->treesCompleted(), 20u);
    EXPECT_GT(responsesChecked, 100u);  // internal-node fan-ins were checked
}

TEST(DagFanIn, TreeWindowNeverExceeded) {
    DagConfig dag;
    dag.fanout = 2;
    dag.depth = 2;
    dag.window = 3;
    Network net(NetworkConfig::singleRack16(), [](HostServices& h) {
        return std::make_unique<DelayTransport>(h);
    });
    TrafficGenerator* genPtr = nullptr;
    // External per-root accounting of outstanding trees: a tree starts
    // when its first message appears, ends at the completion callback.
    std::map<uint64_t, HostId> treeRoot;
    std::map<HostId, int> outstanding;
    int maxSeen = 0;
    TrafficGenerator gen(net, dagConfig(dag), [&](const Message& m) {
        const auto role = genPtr->dag()->roleOf(m.id);
        ASSERT_TRUE(role.has_value());
        if (treeRoot.count(role->tree) != 0) return;
        const DagTreeSpec* spec = genPtr->dag()->treeSpec(role->tree);
        ASSERT_NE(spec, nullptr);
        treeRoot[role->tree] = spec->nodes[0].host;
        const int now = ++outstanding[spec->nodes[0].host];
        maxSeen = std::max(maxSeen, now);
    });
    genPtr = &gen;
    gen.setOnTreeComplete([&](const DagTreeResult& r) {
        outstanding[r.root]--;
        EXPECT_GE(outstanding[r.root], 0);
    });
    net.setDeliveryCallback([&](const Message& m, const DeliveryInfo&) {
        gen.onDelivered(m);
    });
    gen.start();
    net.loop().runUntil(milliseconds(3));
    EXPECT_GT(gen.dag()->treesCompleted(), 100u);
    EXPECT_GT(maxSeen, 0);
    EXPECT_LE(maxSeen, dag.window);
    EXPECT_EQ(gen.maxOutstanding(), maxSeen);
}

// ------------------------------------------------------------ end to end

ExperimentConfig dagExperiment(DagConfig dag) {
    ExperimentConfig cfg;
    cfg.net = NetworkConfig::singleRack16();
    cfg.traffic.workload = WorkloadId::W1;
    cfg.traffic.stop = milliseconds(2);
    cfg.traffic.scenario.kind = TrafficPatternKind::Dag;
    cfg.traffic.scenario.dag = dag;
    cfg.drainGrace = milliseconds(20);
    return cfg;
}

TEST(DagEndToEnd, ExperimentReportsDagMetrics) {
    DagConfig dag;
    dag.fanout = 4;
    dag.depth = 2;
    dag.roots = 4;
    dag.stageResponseBytes = {4000, 1000};
    ExperimentResult r = runExperiment(dagExperiment(dag));
    EXPECT_GT(r.delivered, 0u);
    EXPECT_TRUE(r.keptUp);  // bounded in-flight: the tree loop keeps up
    EXPECT_FALSE(r.closedLoop);
    ASSERT_TRUE(r.dag);
    EXPECT_EQ(r.dag->roots(), 4);
    EXPECT_GT(r.dag->trees(), 50u);
    EXPECT_EQ(r.dag->totalNodes(), r.dag->trees() * 20u);
    EXPECT_GT(r.maxOutstanding, 0);
    EXPECT_LE(r.maxOutstanding, dag.window);
    for (int root = 0; root < r.dag->roots(); root++) {
        EXPECT_GT(r.dag->rootTrees(root), 0u) << "root " << root;
    }
    EXPECT_GE(r.dag->maxRootTrees(), r.dag->minRootTrees());
    EXPECT_GE(r.dag->completionPercentileUs(0.99),
              r.dag->completionPercentileUs(0.50));
    EXPECT_GT(r.dag->treesPerSec(), 0.0);
    EXPECT_GT(r.dag->aggregateGbps(), 0.0);
    // The ideal is a lower bound (it ignores fan-out serialization), so
    // measured slowdown sits at or above ~1.
    EXPECT_GT(r.dag->slowdownSamples(), 0u);
    EXPECT_GE(r.dag->slowdownPercentile(0.50), 1.0);
}

TEST(DagEndToEnd, StragglersDominateTreeLatency) {
    DagConfig base;
    base.fanout = 8;
    base.depth = 1;
    base.roots = 4;
    base.stageResponseBytes = {2000};
    DagConfig straggly = base;
    straggly.stragglerFraction = 0.2;  // P(tree has none) = 0.8^8 ~ 0.17
    straggly.stragglerFactor = 40.0;   // 80 KB shard vs 2 KB siblings
    ExperimentResult fast = runExperiment(dagExperiment(base));
    ExperimentResult slow = runExperiment(dagExperiment(straggly));
    ASSERT_TRUE(fast.dag);
    ASSERT_TRUE(slow.dag);
    EXPECT_GT(fast.dag->trees(), 50u);
    EXPECT_GT(slow.dag->trees(), 20u);
    // One inflated shard gates the whole tree: the median tree is several
    // times slower even though only ~1.6 of 8 shards straggle.
    EXPECT_GT(slow.dag->completionPercentileUs(0.50),
              3.0 * fast.dag->completionPercentileUs(0.50));
}

TEST(DagEndToEnd, ComposesWithOnOffModulation) {
    DagConfig dag;
    dag.fanout = 4;
    dag.depth = 1;
    dag.roots = 8;
    dag.stageResponseBytes = {1000};
    ExperimentConfig cfg = dagExperiment(dag);
    ExperimentResult plain = runExperiment(cfg);
    cfg.traffic.scenario.onOff.enabled = true;  // duty cycle 0.25
    ExperimentResult gated = runExperiment(cfg);
    ASSERT_TRUE(plain.dag);
    ASSERT_TRUE(gated.dag);
    EXPECT_GT(gated.dag->trees(), 10u);
    // Idle periods must actually suppress tree issues.
    EXPECT_LT(static_cast<double>(gated.dag->trees()),
              0.7 * static_cast<double>(plain.dag->trees()));
}

TEST(DagEndToEnd, SpecRunsForAllSixProtocolsWithSweepIdentity) {
    // The acceptance bar for the scenario seam: a `dag:` spec parsed the
    // way the benches parse HOMA_SCENARIO runs end-to-end on every
    // protocol family, and the whole grid fingerprints byte-identically
    // at 1 vs N sweep threads.
    ScenarioConfig scenario;
    ASSERT_TRUE(scenarioFromSpec(
        "dag:fanout=4,depth=2,roots=4,resp=4000/1000", scenario));
    std::vector<ExperimentConfig> points;
    for (Protocol kind : {Protocol::Homa, Protocol::Basic, Protocol::PHost,
                          Protocol::Pias, Protocol::PFabric, Protocol::Ndp}) {
        ExperimentConfig cfg;
        cfg.net = NetworkConfig::singleRack16();
        cfg.proto.kind = kind;
        cfg.traffic.workload = WorkloadId::W1;
        cfg.traffic.stop = milliseconds(2);
        cfg.traffic.scenario = scenario;
        cfg.drainGrace = milliseconds(20);
        points.push_back(std::move(cfg));
    }
    SweepOptions serial;
    serial.threads = 1;
    serial.deriveSeeds = true;
    SweepOptions parallel = serial;
    parallel.threads = 4;
    SweepOutcome one = SweepRunner(serial).run(points);
    SweepOutcome many = SweepRunner(parallel).run(points);
    for (size_t i = 0; i < points.size(); i++) {
        const char* proto = protocolName(points[i].proto.kind);
        ASSERT_TRUE(one.results[i].dag) << proto;
        EXPECT_GT(one.results[i].dag->trees(), 10u) << proto;
        EXPECT_EQ(resultFingerprint(one.results[i]),
                  resultFingerprint(many.results[i]))
            << proto;
    }
}

// ----------------------------------------------------- RPC-level trees

TEST(DagRpc, PartitionAggregateOverRealRpcs) {
    RpcExperimentConfig cfg;
    cfg.workload = WorkloadId::W1;
    cfg.stop = milliseconds(4);
    cfg.dagMode = true;
    cfg.dag.fanout = 3;
    cfg.dag.depth = 2;
    cfg.dag.stageResponseBytes = {4000, 1000};
    RpcExperimentResult r = runRpcExperiment(cfg);
    EXPECT_GT(r.completed, 10u);
    EXPECT_TRUE(r.keptUp);
    ASSERT_TRUE(r.dag);
    EXPECT_EQ(r.dag->roots(), cfg.clients);
    // `completed` counts trees issued in the window; the tracker counts
    // trees *finishing* in it — the same loop seen at its two edges.
    EXPECT_GT(r.dag->trees(), 10u);
    EXPECT_EQ(r.dag->totalNodes(), r.dag->trees() * 12u);
    EXPECT_GE(r.dag->completionPercentileUs(0.99),
              r.dag->completionPercentileUs(0.50));
    EXPECT_GE(r.dag->slowdownPercentile(0.50), 1.0);
    ASSERT_TRUE(r.perClient);
    for (int c = 0; c < cfg.clients; c++) {
        EXPECT_GT(r.perClient->client(c).completed, 0u) << "client " << c;
    }
}

TEST(DagRpc, WideFanoutRevisitsServers) {
    // Fan-out beyond the server pool: siblings repeat hosts — that
    // repetition is the deliberate incast.
    RpcExperimentConfig cfg;
    cfg.workload = WorkloadId::W1;
    cfg.stop = milliseconds(4);
    cfg.dagMode = true;
    cfg.dag.fanout = 12;  // 8 servers
    cfg.dag.depth = 1;
    cfg.dag.stageResponseBytes = {2000};
    RpcExperimentResult r = runRpcExperiment(cfg);
    EXPECT_GT(r.completed, 10u);
    ASSERT_TRUE(r.dag);
    EXPECT_GE(r.dag->slowdownPercentile(0.50), 1.0);
}

TEST(DagRpc, RpcTreesAreDeterministic) {
    RpcExperimentConfig cfg;
    cfg.workload = WorkloadId::W1;
    cfg.stop = milliseconds(3);
    cfg.dagMode = true;
    cfg.dag.fanout = 4;
    cfg.dag.depth = 2;
    cfg.dag.stageResponseBytes = {2000, 500};
    RpcExperimentResult a = runRpcExperiment(cfg);
    RpcExperimentResult b = runRpcExperiment(cfg);
    EXPECT_GT(a.completed, 0u);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.dag->trees(), b.dag->trees());
    EXPECT_EQ(a.dag->completionPercentileUs(0.99),
              b.dag->completionPercentileUs(0.99));
    EXPECT_EQ(a.dag->slowdownPercentile(0.99), b.dag->slowdownPercentile(0.99));
}

// ------------------------------------------------- CLI misuse validation

#ifdef HOMA_RUN_EXPERIMENT_BIN

int runCli(const std::string& args) {
    const std::string cmd = std::string(HOMA_RUN_EXPERIMENT_BIN) + " " +
                            args + " > /dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(RunExperimentCli, RejectsContradictoryFlagCombinations) {
    // Usage errors exit with status 2.
    EXPECT_EQ(runCli("--dag-fanout 4"), 2);               // dag flags, no dag
    EXPECT_EQ(runCli("--dag-depth 2 --pattern incast"), 2);
    EXPECT_EQ(runCli("--pattern dag --window 3"), 2);     // closed-loop knob
    EXPECT_EQ(runCli("--pattern dag --think-us 5"), 2);
    EXPECT_EQ(runCli("--trace /dev/null --dag-fanout 2"), 2);
    EXPECT_EQ(runCli("--pattern dag --trace /dev/null"), 2);
    EXPECT_EQ(runCli("--pattern dag --dag-fanout 0"), 2);  // invalid config
    EXPECT_EQ(runCli("--pattern dag --dag-fanout 100 --dag-depth 3"), 2);
    EXPECT_EQ(runCli("--pattern dag --dag-stage-sizes 16000,abc"), 2);
    EXPECT_EQ(runCli("--pattern dag --dag-stage-sizes 16000,"), 2);
    EXPECT_EQ(runCli("--pattern dag --dag-stage-sizes 0"), 2);
    EXPECT_EQ(runCli("--pattern dag --dag-req -5"), 2);
    EXPECT_EQ(runCli("--pattern dag --dag-req 4294967297"), 2);
    EXPECT_EQ(runCli("--pattern dag --dag-fanout abc"), 2);
    EXPECT_EQ(runCli("--pattern dag --dag-straggler x"), 2);
    EXPECT_EQ(runCli("--pattern dag --dag-join 1.5"), 2);  // out of [0, 1]
    EXPECT_EQ(runCli("--pattern dag --dag-join abc"), 2);
    EXPECT_EQ(runCli("--window 3"), 2);                   // pre-existing rule
    EXPECT_EQ(runCli("--on-us 5"), 2);
}

TEST(RunExperimentCli, RunsAValidDagPoint) {
    EXPECT_EQ(runCli("--single-rack --workload W1 --window-ms 1 "
                     "--pattern dag --dag-fanout 2 --dag-depth 1 "
                     "--dag-roots 2 --dag-stage-sizes 1000"),
              0);
}

#endif  // HOMA_RUN_EXPERIMENT_BIN

}  // namespace
}  // namespace homa
