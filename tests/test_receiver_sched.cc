// Receiver-side loss recovery and overcommitment accounting (§3.5, §3.7,
// Figure 16): timeout/RESEND/abort progressions, BUSY handling, and the
// hasWithheldWork() probe under the pluggable grant scheduler.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/homa_transport.h"
#include "workload/workloads.h"

namespace homa {
namespace {

constexpr int64_t kRtt = 9640;

class MockHost : public HostServices {
public:
    EventLoop& loop() override { return loop_; }
    HostId id() const override { return 0; }
    void pushPacket(Packet p) override {
        p.src = 0;
        pushed.push_back(p);
    }
    void kickNic() override {}
    Rng& rng() override { return rng_; }

    int countType(PacketType t) const {
        return static_cast<int>(
            std::count_if(pushed.begin(), pushed.end(),
                          [t](const Packet& p) { return p.type == t; }));
    }

    EventLoop loop_;
    Rng rng_{1};
    std::vector<Packet> pushed;
};

struct Harness {
    MockHost host;
    PriorityAllocation alloc;
    std::unique_ptr<HomaTransport> transport;

    explicit Harness(HomaConfig cfg = fastTimeoutConfig()) {
        alloc = computeAllocation(workload(WorkloadId::W3), cfg, kRtt);
        transport = std::make_unique<HomaTransport>(host, cfg, kRtt, &alloc);
    }

    static HomaConfig fastTimeoutConfig() {
        HomaConfig cfg;
        cfg.resendTimeout = microseconds(100);  // compress the test timeline
        return cfg;
    }

    void rxData(MsgId id, uint32_t msgLen, uint32_t offset, uint32_t len,
                HostId src = 1) {
        Packet p;
        p.type = PacketType::Data;
        p.src = src;
        p.dst = 0;
        p.msg = id;
        p.created = host.loop_.now();
        p.offset = offset;
        p.length = len;
        p.messageLength = msgLen;
        transport->handlePacket(p);
    }

    void rxBusy(MsgId id, HostId src = 1) {
        Packet p;
        p.type = PacketType::Busy;
        p.src = src;
        p.dst = 0;
        p.msg = id;
        transport->handlePacket(p);
    }

    HomaReceiver& rx() { return transport->receiver(); }
};

TEST(ReceiverLoss, ResendTargetsFirstGapClippedToGrant) {
    Harness h;
    // Bytes [0,1442) and [2884,4326) arrive; [1442,2884) is the gap.
    h.rxData(1, 200000, 0, 1442);
    h.rxData(1, 200000, 2884, 1442);
    h.host.pushed.clear();
    h.host.loop_.runUntil(microseconds(300));
    ASSERT_GE(h.rx().resendsSent(), 1u);
    bool sawResend = false;
    for (const auto& p : h.host.pushed) {
        if (p.type != PacketType::Resend) continue;
        sawResend = true;
        EXPECT_EQ(p.offset, 1442u);
        EXPECT_LE(p.offset + p.length, static_cast<uint32_t>(kRtt) + 1442u)
            << "RESEND must never authorize ungranted bytes";
    }
    EXPECT_TRUE(sawResend);
}

TEST(ReceiverLoss, AbortsAfterMaxResendsOfSilence) {
    Harness h;
    h.rxData(1, 200000, 0, 1442);  // then total silence
    EXPECT_EQ(h.rx().incompleteMessages(), 1u);
    // Patience doubles per resend (100us * 2^k): 5 resends and the final
    // abort all land well within 15 ms.
    h.host.loop_.runUntil(milliseconds(15));
    EXPECT_EQ(h.rx().resendsSent(), 5u);
    EXPECT_EQ(h.rx().abortedMessages(), 1u);
    EXPECT_EQ(h.rx().incompleteMessages(), 0u);
}

TEST(ReceiverLoss, BusyResetsTheResendClock) {
    Harness h;
    h.rxData(1, 200000, 0, 1442);
    h.host.loop_.runUntil(milliseconds(15));
    ASSERT_EQ(h.rx().abortedMessages(), 1u);  // control: silence aborts

    // Same silence, but the sender answers BUSY periodically: the message
    // must survive indefinitely (Figure 3's starvation case).
    h.rxData(2, 200000, 0, 1442);
    for (int i = 0; i < 100; i++) {
        h.host.loop_.runUntil(h.host.loop_.now() + microseconds(150));
        h.rxBusy(2);
    }
    EXPECT_EQ(h.rx().abortedMessages(), 1u) << "BUSY keeps the message alive";
    EXPECT_EQ(h.rx().incompleteMessages(), 1u);
}

TEST(ReceiverLoss, WithheldMessageIsNeverResentOrAborted) {
    HomaConfig cfg = Harness::fastTimeoutConfig();
    cfg.overcommitDegree = 2;
    Harness h(cfg);
    // Three long messages; the largest is withheld. Deliver its entire
    // unscheduled region so nothing granted is outstanding for it.
    h.rxData(1, 200000, 0, 1442, 1);
    h.rxData(2, 300000, 0, 1442, 2);
    for (int64_t off = 0; off < kRtt; off += 1442) {
        h.rxData(3, 800000, static_cast<uint32_t>(off),
                 static_cast<uint32_t>(std::min<int64_t>(1442, kRtt - off)), 3);
    }
    ASSERT_TRUE(h.rx().hasWithheldWork());
    h.host.pushed.clear();
    h.host.loop_.runUntil(milliseconds(30));
    for (const auto& p : h.host.pushed) {
        if (p.type == PacketType::Resend) {
            EXPECT_NE(p.msg, 3u) << "withheld message must stay silent";
        }
    }
    // The granted-but-silent messages abort; the withheld one survives.
    EXPECT_EQ(h.rx().abortedMessages(), 2u);
    EXPECT_EQ(h.rx().incompleteMessages(), 1u);
}

TEST(ReceiverWithheld, CountsMessagesBeyondOvercommitDegree) {
    HomaConfig cfg = Harness::fastTimeoutConfig();
    cfg.overcommitDegree = 2;
    Harness h(cfg);
    for (MsgId id = 1; id <= 5; id++) {
        h.rxData(id, 100000 + static_cast<uint32_t>(id) * 1000, 0, 1442,
                 static_cast<HostId>(id));
    }
    EXPECT_TRUE(h.rx().hasWithheldWork());
    EXPECT_EQ(h.rx().scheduler().withheld(), 3);
}

TEST(ReceiverWithheld, CompletionUnblocksWithheldMessage) {
    HomaConfig cfg = Harness::fastTimeoutConfig();
    cfg.overcommitDegree = 2;
    Harness h(cfg);
    const uint32_t shortLen = 20000;
    h.rxData(1, shortLen, 0, 1442, 1);
    h.rxData(2, 100000, 0, 1442, 2);
    h.rxData(3, 200000, 0, 1442, 3);
    ASSERT_EQ(h.rx().scheduler().withheld(), 1);
    h.host.pushed.clear();
    // Complete message 1; its slot must pass to message 3.
    for (uint32_t off = 1442; off < shortLen; off += 1442) {
        h.rxData(1, shortLen, off, std::min<uint32_t>(1442, shortLen - off), 1);
    }
    EXPECT_EQ(h.rx().incompleteMessages(), 2u);
    EXPECT_EQ(h.rx().scheduler().withheld(), 0);
    bool msg3Granted = false;
    for (const auto& p : h.host.pushed) {
        if (p.type == PacketType::Grant && p.msg == 3) msg3Granted = true;
    }
    EXPECT_TRUE(msg3Granted);
    EXPECT_FALSE(h.rx().hasWithheldWork());
}

TEST(ReceiverWithheld, FullyGrantedMessagesHoldNoActiveSlot) {
    HomaConfig cfg = Harness::fastTimeoutConfig();
    cfg.overcommitDegree = 2;
    Harness h(cfg);
    // Two messages shorter than RTTbytes: fully granted at birth, so they
    // consume no scheduler slots even while incomplete.
    h.rxData(1, 5000, 0, 1442, 1);
    h.rxData(2, 5000, 0, 1442, 2);
    // Two long messages must BOTH be schedulable despite degree 2.
    h.rxData(3, 200000, 0, 1442, 3);
    h.rxData(4, 300000, 0, 1442, 4);
    EXPECT_EQ(h.rx().incompleteMessages(), 4u);
    EXPECT_FALSE(h.rx().hasWithheldWork());
    int grants3 = 0, grants4 = 0;
    for (const auto& p : h.host.pushed) {
        if (p.type != PacketType::Grant) continue;
        if (p.msg == 3) grants3++;
        if (p.msg == 4) grants4++;
    }
    EXPECT_GT(grants3, 0);
    EXPECT_GT(grants4, 0);
}

TEST(ReceiverWithheld, AbortFreesSlotAtNextDecision) {
    HomaConfig cfg = Harness::fastTimeoutConfig();
    cfg.overcommitDegree = 1;
    Harness h(cfg);
    h.rxData(1, 200000, 0, 1442, 1);  // active, then silent -> will abort
    // The withheld message delivers its whole unscheduled region so the
    // receiver is not expecting anything from it (no spurious abort).
    for (int64_t off = 0; off < kRtt; off += 1442) {
        h.rxData(2, 300000, static_cast<uint32_t>(off),
                 static_cast<uint32_t>(std::min<int64_t>(1442, kRtt - off)), 2);
    }
    ASSERT_EQ(h.rx().scheduler().withheld(), 1);
    h.host.loop_.runUntil(milliseconds(15));
    ASSERT_EQ(h.rx().abortedMessages(), 1u);
    h.host.pushed.clear();
    // Next data arrival triggers a fresh decision granting message 2.
    h.rxData(2, 300000, static_cast<uint32_t>(kRtt), 1442, 2);
    bool granted = false;
    for (const auto& p : h.host.pushed) {
        if (p.type == PacketType::Grant && p.msg == 2) granted = true;
    }
    EXPECT_TRUE(granted);
    EXPECT_FALSE(h.rx().hasWithheldWork());
}

}  // namespace
}  // namespace homa
