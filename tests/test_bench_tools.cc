// Subprocess tests for the CI bench tooling: bench_compare's fluid and
// fidelity gates plus the skip-annotation write-back, and
// bench_trajectory's history folding. These exec the real binaries the
// CI workflow runs, against artifacts written to the test temp dir and
// the checked-in fixtures under bench/baselines/testdata/.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace homa {
namespace {

#if defined(HOMA_BENCH_COMPARE_BIN) && defined(HOMA_BENCH_TRAJECTORY_BIN)

std::string tempPath(const std::string& name) {
    return ::testing::TempDir() + name;
}

void writeFile(const std::string& path, const std::string& text) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out) << path;
    out << text;
}

std::string readFile(const std::string& path) {
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

size_t countOf(const std::string& text, const std::string& needle) {
    size_t n = 0;
    for (size_t at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + 1)) {
        n++;
    }
    return n;
}

/// Runs `bin args`, returns the exit status and captures stdout+stderr.
int runTool(const std::string& bin, const std::string& args,
            std::string* output = nullptr) {
    const std::string cmd = bin + " " + args + " 2>&1";
    FILE* pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    if (pipe == nullptr) return -1;
    std::string out;
    char buf[512];
    while (fgets(buf, sizeof buf, pipe) != nullptr) out += buf;
    const int status = pclose(pipe);
    if (output != nullptr) *output = out;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

const std::string kSweepBaseline = R"({
  "bench": "sweep_speedup",
  "hardware_cores": 8,
  "speedup": 3.0,
  "results_identical_across_thread_counts": true
})";

TEST(BenchCompareCli, AnnotatesSkippedSpeedupGateIntoTheArtifact) {
    const std::string base = tempPath("skipgate_base.json");
    const std::string cur = tempPath("skipgate_cur.json");
    writeFile(base, kSweepBaseline);
    writeFile(cur, R"({
  "bench": "sweep_speedup",
  "hardware_cores": 1,
  "speedup": 0.8,
  "results_identical_across_thread_counts": true
})");
    // The starved runner passes (skip, not silent failure)...
    EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN, base + " " + cur), 0);
    // ...but the skip is now recorded in the artifact itself.
    const std::string annotated = readFile(cur);
    EXPECT_NE(annotated.find("\"speedup_gate_skipped\": true"),
              std::string::npos) << annotated;
    EXPECT_NE(annotated.find("hardware cores"), std::string::npos);
    // Idempotent: a second compare does not stack annotations.
    EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN, base + " " + cur), 0);
    EXPECT_EQ(countOf(readFile(cur), "speedup_gate_skipped"), 1u);
}

TEST(BenchCompareCli, GatedRunnerIsNotAnnotated) {
    const std::string base = tempPath("nogate_base.json");
    const std::string cur = tempPath("nogate_cur.json");
    writeFile(base, kSweepBaseline);
    writeFile(cur, kSweepBaseline);
    EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN, base + " " + cur), 0);
    EXPECT_EQ(readFile(cur).find("speedup_gate_skipped"),
              std::string::npos);
}

const std::string kFluidArtifact = R"({
  "bench": "fluid_speedup",
  "hardware_cores": 8,
  "hosts": 10240,
  "speedup": 14.6,
  "fidelity": [
    {"scenario": "uniform", "packet_p50": 1.03, "hybrid_p50": 1.00,
     "packet_p99": 1.72, "hybrid_p99": 2.53}
  ],
  "all_packet_identical": true
})";

TEST(BenchCompareCli, FluidGateEnforcesTheSpeedupFloor) {
    const std::string base = tempPath("fluid_base.json");
    const std::string cur = tempPath("fluid_cur.json");
    writeFile(base, kFluidArtifact);
    writeFile(cur, kFluidArtifact);
    EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN, base + " " + cur), 0);
    // Same artifact, speedup below the floor: fails at any tolerance.
    std::string slow = kFluidArtifact;
    slow.replace(slow.find("14.6"), 4, "08.1");
    writeFile(cur, slow);
    std::string out;
    EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN,
                      "--tolerance 9 " + base + " " + cur, &out), 1);
    EXPECT_NE(out.find("below the 10x floor"), std::string::npos) << out;
}

TEST(BenchCompareCli, FluidGateHardFailsOnBrokenIdentity) {
    const std::string base = tempPath("fluid_id_base.json");
    const std::string cur = tempPath("fluid_id_cur.json");
    writeFile(base, kFluidArtifact);
    std::string broken = kFluidArtifact;
    broken.replace(broken.find("\"all_packet_identical\": true"),
                   std::string("\"all_packet_identical\": true").size(),
                   "\"all_packet_identical\": false");
    writeFile(cur, broken);
    std::string out;
    EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN,
                      "--tolerance 9 " + base + " " + cur, &out), 1);
    EXPECT_NE(out.find("all_packet_identical"), std::string::npos) << out;
}

TEST(BenchCompareCli, FidelityModePassesHealthyAndFailsDegraded) {
    const std::string healthy = tempPath("fid_ok.json");
    writeFile(healthy, kFluidArtifact);
    EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN, "--fidelity " + healthy), 0);
    // Inflate the hybrid tail past the 2.5x band.
    std::string degraded = kFluidArtifact;
    degraded.replace(degraded.find("\"hybrid_p99\": 2.53"),
                     std::string("\"hybrid_p99\": 2.53").size(),
                     "\"hybrid_p99\": 12.0");
    const std::string bad = tempPath("fid_bad.json");
    writeFile(bad, degraded);
    std::string out;
    EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN, "--fidelity " + bad, &out), 1);
    EXPECT_NE(out.find("fidelity drift"), std::string::npos) << out;
    // And a drifted p50 fails independently of the p99 band.
    std::string shifted = kFluidArtifact;
    shifted.replace(shifted.find("\"hybrid_p50\": 1.00"),
                    std::string("\"hybrid_p50\": 1.00").size(),
                    "\"hybrid_p50\": 1.40");
    writeFile(bad, shifted);
    EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN, "--fidelity " + bad, &out), 1);
    EXPECT_NE(out.find("drift at p50"), std::string::npos) << out;
}

// A healthy serving artifact matching the BENCH_serving.json schema.
const std::string kServingArtifact = R"({
  "bench": "serving",
  "hardware_cores": 8,
  "hosts": 16,
  "tenants": 3,
  "p2c_p99_slowdown": 1.85,
  "random_p99_slowdown": 1.96,
  "tail_win": 1.06,
  "hedges_issued": 100,
  "hedges_won": 40,
  "hedges_cancelled": 60,
  "hedges_failed": 0,
  "hedge_conservation_holds": true,
  "serial_parallel_identical": true,
  "sweep_identical": true
})";

TEST(BenchCompareCli, ServingGateRequiresTheStrictTailWin) {
    const std::string base = tempPath("serving_base.json");
    const std::string cur = tempPath("serving_cur.json");
    writeFile(base, kServingArtifact);
    writeFile(cur, kServingArtifact);
    EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN, base + " " + cur), 0);
    // p2c p99 >= random p99: the headline claim fails at any tolerance.
    std::string lost = kServingArtifact;
    lost.replace(lost.find("\"p2c_p99_slowdown\": 1.85"),
                 std::string("\"p2c_p99_slowdown\": 1.85").size(),
                 "\"p2c_p99_slowdown\": 2.10");
    writeFile(cur, lost);
    std::string out;
    EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN,
                      "--tolerance 9 " + base + " " + cur, &out), 1);
    EXPECT_NE(out.find("not strictly below random"), std::string::npos)
        << out;
}

TEST(BenchCompareCli, ServingGateHardFailsOnBrokenInvariantFlags) {
    const std::string base = tempPath("serving_flag_base.json");
    const std::string cur = tempPath("serving_flag_cur.json");
    writeFile(base, kServingArtifact);
    for (const char* flag :
         {"hedge_conservation_holds", "serial_parallel_identical",
          "sweep_identical"}) {
        std::string broken = kServingArtifact;
        const std::string on = std::string("\"") + flag + "\": true";
        broken.replace(broken.find(on), on.size(),
                       std::string("\"") + flag + "\": false");
        writeFile(cur, broken);
        std::string out;
        EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN,
                          "--tolerance 9 " + base + " " + cur, &out), 1)
            << flag;
        EXPECT_NE(out.find(flag), std::string::npos) << out;
        EXPECT_NE(out.find("broke its invariants"), std::string::npos)
            << out;
    }
}

TEST(BenchCompareCli, ServingGateBoundsBaselineDrift) {
    const std::string base = tempPath("serving_drift_base.json");
    const std::string cur = tempPath("serving_drift_cur.json");
    writeFile(base, kServingArtifact);
    // Still strictly below random, but 30% above the baseline tail.
    std::string drifted = kServingArtifact;
    drifted.replace(drifted.find("\"p2c_p99_slowdown\": 1.85"),
                    std::string("\"p2c_p99_slowdown\": 1.85").size(),
                    "\"p2c_p99_slowdown\": 1.95");
    drifted.replace(drifted.find("\"random_p99_slowdown\": 1.96"),
                    std::string("\"random_p99_slowdown\": 1.96").size(),
                    "\"random_p99_slowdown\": 3.00");
    writeFile(cur, drifted);
    std::string out;
    EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN,
                      "--tolerance 0.02 " + base + " " + cur, &out), 1);
    EXPECT_NE(out.find("vs baseline"), std::string::npos) << out;
    // The same pair passes at the default 15% tolerance (1.95/1.85 ≈ 5%).
    EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN, base + " " + cur), 0);
}

TEST(BenchCompareCli, ServingFidelityModeIsSelfContained) {
    const std::string healthy = tempPath("serving_fid.json");
    writeFile(healthy, kServingArtifact);
    EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN, "--fidelity " + healthy), 0);
    // The checked-in degraded fixture trips three distinct gates.
    std::string out;
    EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN,
                      "--fidelity " + std::string(HOMA_TESTDATA_DIR) +
                          "/BENCH_serving_degraded.json", &out), 1);
    EXPECT_NE(out.find("hedge_conservation_holds"), std::string::npos) << out;
    EXPECT_NE(out.find("sweep_identical"), std::string::npos) << out;
    EXPECT_NE(out.find("not strictly below random"), std::string::npos)
        << out;
}

TEST(BenchCompareCli, UnrecognizedSchemaIsAFailureNotASilentSkip) {
    // A new BENCH_*.json with a schema the gate does not know must fail
    // loudly in both modes — this is how BENCH_serving.json was added
    // without being silently dropped, and how the next artifact will be.
    const std::string mystery = tempPath("mystery.json");
    writeFile(mystery, R"({"bench": "mystery", "metric": 1.0})");
    std::string out;
    EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN,
                      mystery + " " + mystery, &out), 1);
    EXPECT_NE(out.find("unrecognized schema 'mystery'"), std::string::npos)
        << out;
    EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN, "--fidelity " + mystery, &out),
              1);
    EXPECT_NE(out.find("unrecognized schema 'mystery'"), std::string::npos)
        << out;
}

TEST(BenchTrajectoryCli, FoldsRunHistoryIntoAMarkdownReport) {
    const std::string out = tempPath("BENCH_trajectory.md");
    EXPECT_EQ(runTool(HOMA_BENCH_TRAJECTORY_BIN,
                      std::string(HOMA_TESTDATA_DIR) + "/trajectory " + out),
              0);
    const std::string md = readFile(out);
    // Both fixture artifacts, in both layouts (flat and artifact subdir).
    EXPECT_NE(md.find("## BENCH_fluid.json"), std::string::npos) << md;
    EXPECT_NE(md.find("## BENCH_sweep.json"), std::string::npos) << md;
    // Deltas vs the previous run, and the recorded gate skip surfaced.
    EXPECT_NE(md.find("+10.6%"), std::string::npos) << md;
    EXPECT_NE(md.find("skipped"), std::string::npos) << md;
}

TEST(BenchTrajectoryCli, ServingMetricsAppearAndMysterySchemasWarn) {
    // Build a one-run history holding a serving artifact plus an
    // unknown-schema artifact: the serving headline columns must render,
    // and the mystery file must draw the per-file warning and the report
    // note — never a silent empty row.
    const std::string history = tempPath("trajectory_serving");
    ASSERT_EQ(std::system(("rm -rf " + history + " && mkdir -p " + history +
                           "/run-001").c_str()), 0);
    writeFile(history + "/run-001/BENCH_serving.json", kServingArtifact);
    writeFile(history + "/run-001/BENCH_mystery.json",
              R"({"bench": "mystery", "metric": 1.0})");
    const std::string md = tempPath("trajectory_serving.md");
    std::string out;
    EXPECT_EQ(runTool(HOMA_BENCH_TRAJECTORY_BIN, history + " " + md, &out),
              0);
    EXPECT_NE(out.find("BENCH_mystery.json: unrecognized schema"),
              std::string::npos) << out;
    const std::string report = readFile(md);
    EXPECT_NE(report.find("## BENCH_serving.json"), std::string::npos)
        << report;
    EXPECT_NE(report.find("p2c_p99_slowdown"), std::string::npos) << report;
    EXPECT_NE(report.find("tail_win"), std::string::npos) << report;
    EXPECT_NE(report.find("1 artifact file(s) had an unrecognized schema"),
              std::string::npos) << report;
}

TEST(BenchTrajectoryCli, RejectsEmptyHistory) {
    const std::string empty = tempPath("trajectory_empty");
    std::remove(empty.c_str());
    ASSERT_EQ(std::system(("mkdir -p " + empty).c_str()), 0);
    EXPECT_EQ(runTool(HOMA_BENCH_TRAJECTORY_BIN,
                      empty + " " + tempPath("unused.md")), 2);
}

#endif  // HOMA_BENCH_COMPARE_BIN && HOMA_BENCH_TRAJECTORY_BIN

}  // namespace
}  // namespace homa
