// Subprocess tests for the CI bench tooling: bench_compare's fluid and
// fidelity gates plus the skip-annotation write-back, and
// bench_trajectory's history folding. These exec the real binaries the
// CI workflow runs, against artifacts written to the test temp dir and
// the checked-in fixtures under bench/baselines/testdata/.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace homa {
namespace {

#if defined(HOMA_BENCH_COMPARE_BIN) && defined(HOMA_BENCH_TRAJECTORY_BIN)

std::string tempPath(const std::string& name) {
    return ::testing::TempDir() + name;
}

void writeFile(const std::string& path, const std::string& text) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out) << path;
    out << text;
}

std::string readFile(const std::string& path) {
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

size_t countOf(const std::string& text, const std::string& needle) {
    size_t n = 0;
    for (size_t at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + 1)) {
        n++;
    }
    return n;
}

/// Runs `bin args`, returns the exit status and captures stdout+stderr.
int runTool(const std::string& bin, const std::string& args,
            std::string* output = nullptr) {
    const std::string cmd = bin + " " + args + " 2>&1";
    FILE* pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    if (pipe == nullptr) return -1;
    std::string out;
    char buf[512];
    while (fgets(buf, sizeof buf, pipe) != nullptr) out += buf;
    const int status = pclose(pipe);
    if (output != nullptr) *output = out;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

const std::string kSweepBaseline = R"({
  "bench": "sweep_speedup",
  "hardware_cores": 8,
  "speedup": 3.0,
  "results_identical_across_thread_counts": true
})";

TEST(BenchCompareCli, AnnotatesSkippedSpeedupGateIntoTheArtifact) {
    const std::string base = tempPath("skipgate_base.json");
    const std::string cur = tempPath("skipgate_cur.json");
    writeFile(base, kSweepBaseline);
    writeFile(cur, R"({
  "bench": "sweep_speedup",
  "hardware_cores": 1,
  "speedup": 0.8,
  "results_identical_across_thread_counts": true
})");
    // The starved runner passes (skip, not silent failure)...
    EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN, base + " " + cur), 0);
    // ...but the skip is now recorded in the artifact itself.
    const std::string annotated = readFile(cur);
    EXPECT_NE(annotated.find("\"speedup_gate_skipped\": true"),
              std::string::npos) << annotated;
    EXPECT_NE(annotated.find("hardware cores"), std::string::npos);
    // Idempotent: a second compare does not stack annotations.
    EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN, base + " " + cur), 0);
    EXPECT_EQ(countOf(readFile(cur), "speedup_gate_skipped"), 1u);
}

TEST(BenchCompareCli, GatedRunnerIsNotAnnotated) {
    const std::string base = tempPath("nogate_base.json");
    const std::string cur = tempPath("nogate_cur.json");
    writeFile(base, kSweepBaseline);
    writeFile(cur, kSweepBaseline);
    EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN, base + " " + cur), 0);
    EXPECT_EQ(readFile(cur).find("speedup_gate_skipped"),
              std::string::npos);
}

const std::string kFluidArtifact = R"({
  "bench": "fluid_speedup",
  "hardware_cores": 8,
  "hosts": 10240,
  "speedup": 14.6,
  "fidelity": [
    {"scenario": "uniform", "packet_p50": 1.03, "hybrid_p50": 1.00,
     "packet_p99": 1.72, "hybrid_p99": 2.53}
  ],
  "all_packet_identical": true
})";

TEST(BenchCompareCli, FluidGateEnforcesTheSpeedupFloor) {
    const std::string base = tempPath("fluid_base.json");
    const std::string cur = tempPath("fluid_cur.json");
    writeFile(base, kFluidArtifact);
    writeFile(cur, kFluidArtifact);
    EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN, base + " " + cur), 0);
    // Same artifact, speedup below the floor: fails at any tolerance.
    std::string slow = kFluidArtifact;
    slow.replace(slow.find("14.6"), 4, "08.1");
    writeFile(cur, slow);
    std::string out;
    EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN,
                      "--tolerance 9 " + base + " " + cur, &out), 1);
    EXPECT_NE(out.find("below the 10x floor"), std::string::npos) << out;
}

TEST(BenchCompareCli, FluidGateHardFailsOnBrokenIdentity) {
    const std::string base = tempPath("fluid_id_base.json");
    const std::string cur = tempPath("fluid_id_cur.json");
    writeFile(base, kFluidArtifact);
    std::string broken = kFluidArtifact;
    broken.replace(broken.find("\"all_packet_identical\": true"),
                   std::string("\"all_packet_identical\": true").size(),
                   "\"all_packet_identical\": false");
    writeFile(cur, broken);
    std::string out;
    EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN,
                      "--tolerance 9 " + base + " " + cur, &out), 1);
    EXPECT_NE(out.find("all_packet_identical"), std::string::npos) << out;
}

TEST(BenchCompareCli, FidelityModePassesHealthyAndFailsDegraded) {
    const std::string healthy = tempPath("fid_ok.json");
    writeFile(healthy, kFluidArtifact);
    EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN, "--fidelity " + healthy), 0);
    // Inflate the hybrid tail past the 2.5x band.
    std::string degraded = kFluidArtifact;
    degraded.replace(degraded.find("\"hybrid_p99\": 2.53"),
                     std::string("\"hybrid_p99\": 2.53").size(),
                     "\"hybrid_p99\": 12.0");
    const std::string bad = tempPath("fid_bad.json");
    writeFile(bad, degraded);
    std::string out;
    EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN, "--fidelity " + bad, &out), 1);
    EXPECT_NE(out.find("fidelity drift"), std::string::npos) << out;
    // And a drifted p50 fails independently of the p99 band.
    std::string shifted = kFluidArtifact;
    shifted.replace(shifted.find("\"hybrid_p50\": 1.00"),
                    std::string("\"hybrid_p50\": 1.00").size(),
                    "\"hybrid_p50\": 1.40");
    writeFile(bad, shifted);
    EXPECT_EQ(runTool(HOMA_BENCH_COMPARE_BIN, "--fidelity " + bad, &out), 1);
    EXPECT_NE(out.find("drift at p50"), std::string::npos) << out;
}

TEST(BenchTrajectoryCli, FoldsRunHistoryIntoAMarkdownReport) {
    const std::string out = tempPath("BENCH_trajectory.md");
    EXPECT_EQ(runTool(HOMA_BENCH_TRAJECTORY_BIN,
                      std::string(HOMA_TESTDATA_DIR) + "/trajectory " + out),
              0);
    const std::string md = readFile(out);
    // Both fixture artifacts, in both layouts (flat and artifact subdir).
    EXPECT_NE(md.find("## BENCH_fluid.json"), std::string::npos) << md;
    EXPECT_NE(md.find("## BENCH_sweep.json"), std::string::npos) << md;
    // Deltas vs the previous run, and the recorded gate skip surfaced.
    EXPECT_NE(md.find("+10.6%"), std::string::npos) << md;
    EXPECT_NE(md.find("skipped"), std::string::npos) << md;
}

TEST(BenchTrajectoryCli, RejectsEmptyHistory) {
    const std::string empty = tempPath("trajectory_empty");
    std::remove(empty.c_str());
    ASSERT_EQ(std::system(("mkdir -p " + empty).c_str()), 0);
    EXPECT_EQ(runTool(HOMA_BENCH_TRAJECTORY_BIN,
                      empty + " " + tempPath("unused.md")), 2);
}

#endif  // HOMA_BENCH_COMPARE_BIN && HOMA_BENCH_TRAJECTORY_BIN

}  // namespace
}  // namespace homa
