// Unit tests for the src/sched/ subsystem: the incremental SRPT index, the
// round-robin ring, the GrantScheduler policies, the PriorityAllocator's
// scheduled-level assignment, and the packet pool plumbing.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sched/grant_scheduler.h"
#include "sched/priority_allocator.h"
#include "sched/round_robin.h"
#include "sched/srpt_index.h"
#include "sim/packet_pool.h"

namespace homa {
namespace {

// ------------------------------------------------------------- SrptIndex

TEST(SrptIndex, OrdersByKeyThenId) {
    SrptIndex<MsgId> idx;
    idx.upsert(3, 500);
    idx.upsert(1, 100);
    idx.upsert(2, 100);
    std::vector<MsgId> order;
    idx.visitInOrder([&](MsgId id, int64_t) {
        order.push_back(id);
        return true;
    });
    EXPECT_EQ(order, (std::vector<MsgId>{1, 2, 3}));
    EXPECT_EQ(idx.best(), std::optional<MsgId>(1));
}

TEST(SrptIndex, UpdateOnDeltaReorders) {
    SrptIndex<MsgId> idx;
    idx.upsert(1, 300);
    idx.upsert(2, 200);
    EXPECT_EQ(idx.best(), std::optional<MsgId>(2));
    idx.upsert(1, 100);  // delta: message 1 shrank
    EXPECT_EQ(idx.best(), std::optional<MsgId>(1));
    EXPECT_EQ(idx.size(), 2u);
}

TEST(SrptIndex, EraseAndEmpty) {
    SrptIndex<MsgId> idx;
    EXPECT_FALSE(idx.best().has_value());
    idx.upsert(7, 10);
    EXPECT_TRUE(idx.erase(7));
    EXPECT_FALSE(idx.erase(7));
    EXPECT_TRUE(idx.empty());
}

TEST(SrptIndex, BoundedVisitStopsEarly) {
    SrptIndex<MsgId> idx;
    for (MsgId id = 1; id <= 100; id++) idx.upsert(id, static_cast<int64_t>(id));
    int seen = 0;
    idx.visitInOrder([&](MsgId, int64_t) { return ++seen < 3; });
    EXPECT_EQ(seen, 3);
}

// ---------------------------------------------------------- RoundRobinSet

TEST(RoundRobinSet, CyclesFairly) {
    RoundRobinSet<MsgId> ring;
    ring.insert(1);
    ring.insert(2);
    ring.insert(3);
    std::vector<MsgId> seen;
    for (int i = 0; i < 6; i++) seen.push_back(*ring.next());
    // Every member appears exactly twice in 6 draws.
    for (MsgId id = 1; id <= 3; id++) {
        EXPECT_EQ(std::count(seen.begin(), seen.end(), id), 2) << id;
    }
}

TEST(RoundRobinSet, EraseKeepsCursorValid) {
    RoundRobinSet<MsgId> ring;
    for (MsgId id = 1; id <= 4; id++) ring.insert(id);
    const MsgId atCursor = *ring.peek();
    ring.erase(atCursor);
    EXPECT_EQ(ring.size(), 3u);
    // Cursor moved to a surviving member; next() keeps cycling.
    std::vector<MsgId> seen;
    for (int i = 0; i < 3; i++) seen.push_back(*ring.next());
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(seen.size(), 3u);
    EXPECT_TRUE(std::unique(seen.begin(), seen.end()) == seen.end());
}

TEST(RoundRobinSet, EraseLastMemberEmptiesRing) {
    RoundRobinSet<MsgId> ring;
    ring.insert(5);
    EXPECT_TRUE(ring.erase(5));
    EXPECT_FALSE(ring.next().has_value());
    ring.insert(6);  // reusable after emptying
    EXPECT_EQ(ring.next(), std::optional<MsgId>(6));
}

TEST(RoundRobinSet, VisitDoesNotAdvance) {
    RoundRobinSet<MsgId> ring;
    ring.insert(1);
    ring.insert(2);
    const MsgId before = *ring.peek();
    int visited = 0;
    ring.visit(2, [&](MsgId) { visited++; });
    EXPECT_EQ(visited, 2);
    EXPECT_EQ(*ring.peek(), before);
}

// -------------------------------------------------------- GrantScheduler

GrantContext ctx8(int degree = 0) {
    GrantContext c;
    c.degree = degree;
    c.schedLevels = 7;
    c.rttBytes = 10000;
    return c;
}

TEST(SrptScheduler, ActiveSetIsTopKByRemaining) {
    auto s = makeGrantScheduler(GrantPolicy::Srpt);
    for (MsgId id = 1; id <= 10; id++) {
        s->add(id, 1000 * static_cast<int64_t>(id), /*created=*/0);
    }
    std::vector<ActiveGrant> out;
    s->decide(ctx8(4), out);
    ASSERT_EQ(out.size(), 4u);
    for (int i = 0; i < 4; i++) {
        EXPECT_EQ(out[i].id, static_cast<MsgId>(i + 1));
        EXPECT_EQ(out[i].rank, i);
    }
    EXPECT_EQ(s->withheld(), 6);
}

TEST(SrptScheduler, LowestAvailableLevels) {
    // Figure 5: k active messages occupy logical levels 0..k-1, most
    // urgent highest; overflow shares the top scheduled level.
    auto s = makeGrantScheduler(GrantPolicy::Srpt);
    for (MsgId id = 1; id <= 3; id++) s->add(id, 1000 * static_cast<int64_t>(id), 0);
    std::vector<ActiveGrant> out;
    s->decide(ctx8(0), out);  // degree <= 0 -> schedLevels (7)
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].logicalPriority, 2);
    EXPECT_EQ(out[1].logicalPriority, 1);
    EXPECT_EQ(out[2].logicalPriority, 0);
}

TEST(SrptScheduler, DeltaPromotesMessage) {
    auto s = makeGrantScheduler(GrantPolicy::Srpt);
    s->add(1, 5000, 0);
    s->add(2, 9000, 0);
    s->update(2, 1000);  // message 2 received data, now shortest
    std::vector<ActiveGrant> out;
    s->decide(ctx8(2), out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].id, 2u);
}

TEST(SrptScheduler, OldestReservationHoldsLastSlot) {
    auto s = makeGrantScheduler(GrantPolicy::Srpt);
    // Message 9 is the oldest but has the most remaining bytes: pure SRPT
    // with degree 2 would exclude it forever.
    s->add(9, 1000000, /*created=*/5);
    s->add(1, 1000, /*created=*/50);
    s->add(2, 2000, /*created=*/60);
    s->add(3, 3000, /*created=*/70);
    GrantContext c = ctx8(2);
    c.oldestReservation = 0.1;
    std::vector<ActiveGrant> out;
    s->decide(c, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].id, 1u);
    EXPECT_EQ(out[1].id, 9u) << "oldest takes the last active slot";
    EXPECT_EQ(out[1].logicalPriority, c.schedLevels - 1)
        << "reserved trickle goes at the top scheduled level";
    EXPECT_EQ(out[1].window, kMaxPayload)
        << "10% of rtt < 1 packet clamps to one full packet";
}

TEST(SrptScheduler, RemoveFreesSlotForWithheldMessage) {
    auto s = makeGrantScheduler(GrantPolicy::Srpt);
    for (MsgId id = 1; id <= 3; id++) s->add(id, 1000 * static_cast<int64_t>(id), 0);
    std::vector<ActiveGrant> out;
    s->decide(ctx8(2), out);
    EXPECT_EQ(s->withheld(), 1);
    s->remove(1);
    s->decide(ctx8(2), out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].id, 2u);
    EXPECT_EQ(out[1].id, 3u);
    EXPECT_EQ(s->withheld(), 0);
}

TEST(FifoScheduler, GrantsInArrivalOrder) {
    auto s = makeGrantScheduler(GrantPolicy::Fifo);
    s->add(5, 100, /*created=*/30);   // shortest, but latest
    s->add(6, 90000, /*created=*/10);
    s->add(7, 50000, /*created=*/20);
    std::vector<ActiveGrant> out;
    s->decide(ctx8(2), out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].id, 6u);
    EXPECT_EQ(out[1].id, 7u);
    EXPECT_EQ(s->withheld(), 1);
}

TEST(RoundRobinScheduler, RotatesActiveWindow) {
    auto s = makeGrantScheduler(GrantPolicy::RoundRobin);
    for (MsgId id = 1; id <= 3; id++) s->add(id, 1000, 0);
    std::vector<ActiveGrant> a, b, c;
    s->decide(ctx8(1), a);
    s->decide(ctx8(1), b);
    s->decide(ctx8(1), c);
    ASSERT_EQ(a.size(), 1u);
    ASSERT_EQ(b.size(), 1u);
    ASSERT_EQ(c.size(), 1u);
    // Three consecutive single-slot decisions grant three distinct messages.
    EXPECT_NE(a[0].id, b[0].id);
    EXPECT_NE(b[0].id, c[0].id);
    EXPECT_NE(a[0].id, c[0].id);
}

TEST(UnlimitedScheduler, OnlyDirtyMessagesListedAndNothingWithheld) {
    auto s = makeGrantScheduler(GrantPolicy::Unlimited);
    for (MsgId id = 1; id <= 50; id++) s->add(id, 100000, 0);
    std::vector<ActiveGrant> out;
    s->decide(ctx8(1), out);
    EXPECT_EQ(out.size(), 50u) << "initial adds are all dirty";
    EXPECT_EQ(s->withheld(), 0);

    s->update(7, 90000);
    s->decide(ctx8(1), out);
    ASSERT_EQ(out.size(), 1u) << "only the delta'd message re-decided";
    EXPECT_EQ(out[0].id, 7u);

    s->decide(ctx8(1), out);
    EXPECT_TRUE(out.empty()) << "no deltas, no work";
}

// ----------------------------------------------------- PriorityAllocator

TEST(PriorityAllocator, ScheduledLevelAssignment) {
    PriorityAllocation a;
    a.logicalLevels = 8;
    a.unschedLevels = 1;
    a.schedLevels = 7;
    PriorityAllocator prio(a);
    // 3 active: ranks 0,1,2 -> levels 2,1,0.
    EXPECT_EQ(prio.scheduledLevel(0, 3), 2);
    EXPECT_EQ(prio.scheduledLevel(1, 3), 1);
    EXPECT_EQ(prio.scheduledLevel(2, 3), 0);
    // 9 active with 7 levels: the two most urgent share the top level.
    EXPECT_EQ(prio.scheduledLevel(0, 9), 6);
    EXPECT_EQ(prio.scheduledLevel(1, 9), 6);
    EXPECT_EQ(prio.scheduledLevel(2, 9), 6);
    EXPECT_EQ(prio.scheduledLevel(8, 9), 0);
}

// ------------------------------------------------------------ PacketPool

TEST(PacketPool, RecyclesSlots) {
    PacketPool pool;
    Packet p;
    p.msg = 42;
    const auto h1 = pool.acquire(p);
    EXPECT_EQ(pool.at(h1).msg, 42u);
    pool.release(h1);
    p.msg = 43;
    const auto h2 = pool.acquire(p);
    EXPECT_EQ(h2, h1) << "freed slot is reused";
    EXPECT_EQ(pool.capacity(), 1u);
}

TEST(IndexRing, FifoAcrossGrowth) {
    IndexRing ring;
    for (uint32_t i = 0; i < 100; i++) ring.push_back(i);
    for (uint32_t i = 0; i < 100; i++) {
        ASSERT_FALSE(ring.empty());
        EXPECT_EQ(ring.pop_front(), i);
    }
    EXPECT_TRUE(ring.empty());
}

TEST(IndexRing, InterleavedPushPopKeepsOrder) {
    IndexRing ring;
    uint32_t nextPush = 0, nextPop = 0;
    for (int round = 0; round < 200; round++) {
        ring.push_back(nextPush++);
        ring.push_back(nextPush++);
        EXPECT_EQ(ring.pop_front(), nextPop++);
    }
    while (!ring.empty()) EXPECT_EQ(ring.pop_front(), nextPop++);
    EXPECT_EQ(nextPop, nextPush);
}

}  // namespace
}  // namespace homa
