// Network wiring, port accounting, and timing constants.
#include <gtest/gtest.h>

#include "core/homa_transport.h"
#include "sim/network.h"
#include "workload/workloads.h"

namespace homa {
namespace {

Network makeNet(NetworkConfig cfg) {
    return Network(cfg, HomaTransport::factory({}, cfg, &workload(WorkloadId::W3)));
}

TEST(Topology, FatTreePresetMatchesFigure11) {
    NetworkConfig cfg = NetworkConfig::fatTree144();
    EXPECT_EQ(cfg.hostCount(), 144);
    EXPECT_EQ(cfg.racks, 9);
    EXPECT_EQ(cfg.hostsPerRack, 16);
    EXPECT_EQ(cfg.aggrSwitches, 4);
    EXPECT_FALSE(cfg.singleRack());
    EXPECT_EQ(cfg.switchDelay, nanoseconds(250));
    EXPECT_EQ(cfg.softwareDelay, nanoseconds(1500));
}

TEST(Topology, SingleRackPreset) {
    NetworkConfig cfg = NetworkConfig::singleRack16();
    EXPECT_EQ(cfg.hostCount(), 16);
    EXPECT_TRUE(cfg.singleRack());
}

TEST(NetworkWiring, PortGroupCounts) {
    Network net = makeNet(NetworkConfig::fatTree144());
    EXPECT_EQ(net.torDownlinkPorts().size(), 144u);
    EXPECT_EQ(net.torUplinkPorts().size(), 9u * 4u);
    EXPECT_EQ(net.aggrDownlinkPorts().size(), 4u * 9u);
}

TEST(NetworkWiring, SingleRackHasNoCore) {
    Network net = makeNet(NetworkConfig::singleRack16());
    EXPECT_EQ(net.torDownlinkPorts().size(), 16u);
    EXPECT_TRUE(net.torUplinkPorts().empty());
    EXPECT_TRUE(net.aggrDownlinkPorts().empty());
}

TEST(NetworkWiring, RackOfMapsHostsToTors) {
    Network net = makeNet(NetworkConfig::fatTree144());
    EXPECT_EQ(net.rackOf(0), 0);
    EXPECT_EQ(net.rackOf(15), 0);
    EXPECT_EQ(net.rackOf(16), 1);
    EXPECT_EQ(net.rackOf(143), 8);
}

TEST(NetworkWiring, CrossRackTrafficUsesCoreLinks) {
    NetworkConfig cfg = NetworkConfig::fatTree144();
    Network net(cfg, HomaTransport::factory({}, cfg, &workload(WorkloadId::W3)));
    int delivered = 0;
    net.setDeliveryCallback([&](const Message&, const DeliveryInfo&) {
        delivered++;
    });
    Message m;
    m.id = net.nextMsgId();
    m.src = 0;
    m.dst = 140;  // rack 8
    m.length = 50000;
    net.sendMessage(m);
    net.loop().run();
    EXPECT_EQ(delivered, 1);
    int64_t coreBytes = 0;
    for (const auto* p : net.torUplinkPorts()) {
        coreBytes += p->stats().wireBytesSent;
    }
    EXPECT_GE(coreBytes, messageWireBytes(50000));
}

TEST(NetworkWiring, IntraRackTrafficStaysLocal) {
    NetworkConfig cfg = NetworkConfig::fatTree144();
    Network net(cfg, HomaTransport::factory({}, cfg, &workload(WorkloadId::W3)));
    Message m;
    m.id = net.nextMsgId();
    m.src = 0;
    m.dst = 1;  // same rack
    m.length = 50000;
    net.sendMessage(m);
    net.loop().run();
    for (const auto* p : net.torUplinkPorts()) {
        // Only control packets could ever appear here; data must not.
        EXPECT_EQ(p->stats().wireBytesSent, 0);
    }
}

TEST(NetworkWiring, SprayingSpreadsAcrossUplinks) {
    NetworkConfig cfg = NetworkConfig::fatTree144();
    Network net(cfg, HomaTransport::factory({}, cfg, &workload(WorkloadId::W3)));
    Message m;
    m.id = net.nextMsgId();
    m.src = 0;
    m.dst = 143;
    m.length = 400 * 1442;  // 400 packets
    net.sendMessage(m);
    net.loop().run();
    // Rack 0's four uplinks each carried a reasonable share.
    auto ports = net.torUplinkPorts();
    for (int u = 0; u < 4; u++) {
        const auto& st = ports[u]->stats();
        EXPECT_GT(st.packetsSent, 50u) << "uplink " << u;
        EXPECT_LT(st.packetsSent, 200u) << "uplink " << u;
    }
}

TEST(PortStats, BusyTimeAndBytesConsistent) {
    NetworkConfig cfg = NetworkConfig::singleRack16();
    Network net(cfg, HomaTransport::factory({}, cfg, &workload(WorkloadId::W3)));
    Message m;
    m.id = net.nextMsgId();
    m.src = 3;
    m.dst = 4;
    m.length = 100000;
    net.sendMessage(m);
    net.loop().run();
    const auto& st = net.downlink(4).stats();
    EXPECT_EQ(st.busyTime, k10Gbps.serialize(st.wireBytesSent));
    EXPECT_GE(st.wireBytesSent, messageWireBytes(100000));
}

TEST(PortStats, PriorityByteAccounting) {
    NetworkConfig cfg = NetworkConfig::singleRack16();
    Network net(cfg, HomaTransport::factory({}, cfg, &workload(WorkloadId::W3)));
    Message m;
    m.id = net.nextMsgId();
    m.src = 3;
    m.dst = 4;
    m.length = 100;  // single tiny unscheduled packet at the top level
    net.sendMessage(m);
    net.loop().run();
    const auto& st = net.downlink(4).stats();
    int64_t total = 0;
    for (int p = 0; p < kPriorityLevels; p++) total += st.bytesByPriority[p];
    EXPECT_EQ(total, st.wireBytesSent);
    EXPECT_GT(st.bytesByPriority[kHighestPriority], 0);
}

TEST(PortStats, QueueOccupancyTracked) {
    // Two senders blast the same receiver: its downlink must queue, and
    // the time-weighted mean must be positive but below the max.
    NetworkConfig cfg = NetworkConfig::singleRack16();
    Network net(cfg, HomaTransport::factory({}, cfg, &workload(WorkloadId::W3)));
    for (HostId s : {1, 2, 3}) {
        Message m;
        m.id = net.nextMsgId();
        m.src = s;
        m.dst = 0;
        m.length = 9000;
        net.sendMessage(m);
    }
    net.loop().run();
    const auto& st = net.downlink(0).stats();
    EXPECT_GT(st.maxQueueBytes, 0);
    const double mean = st.meanQueueBytes(net.loop().now());
    EXPECT_GT(mean, 0.0);
    EXPECT_LT(mean, static_cast<double>(st.maxQueueBytes));
}

TEST(HostSoftwareDelay, AppliedOncePerPacket) {
    // One-packet message: total time = wire path + exactly one software
    // delay. Doubling the configured delay adds exactly the difference.
    auto measure = [](Duration swDelay) {
        NetworkConfig cfg = NetworkConfig::singleRack16();
        cfg.softwareDelay = swDelay;
        Network net(cfg,
                    HomaTransport::factory({}, cfg, &workload(WorkloadId::W3)));
        Duration elapsed = -1;
        net.setDeliveryCallback([&](const Message& m, const DeliveryInfo& i) {
            elapsed = i.completed - m.created;
        });
        Message m;
        m.id = net.nextMsgId();
        m.src = 0;
        m.dst = 1;
        m.length = 100;
        net.sendMessage(m);
        net.loop().run();
        return elapsed;
    };
    const Duration base = measure(nanoseconds(1500));
    const Duration doubled = measure(nanoseconds(3000));
    EXPECT_EQ(doubled - base, nanoseconds(1500));
}

TEST(NetworkTimingsTest, SingleRackRttSmallerThanFatTree) {
    const auto rack = NetworkTimings::compute(NetworkConfig::singleRack16());
    const auto tree = NetworkTimings::compute(NetworkConfig::fatTree144());
    EXPECT_LT(rack.rttSmallGrant, tree.rttSmallGrant);
    EXPECT_LT(rack.rttBytes, tree.rttBytes);
}

}  // namespace
}  // namespace homa
