// White-box unit tests for baseline protocol mechanisms.
#include <gtest/gtest.h>

#include "baselines/phost.h"
#include "baselines/pias.h"
#include "workload/workloads.h"

namespace homa {
namespace {

// ----------------------------------------------------------- PIAS

TEST(PiasThresholds, AscendingAndCoverFirstPacket) {
    for (WorkloadId wl : kAllWorkloads) {
        auto t = piasThresholdsFor(workload(wl));
        ASSERT_EQ(t.size(), 7u) << workload(wl).name();
        EXPECT_GE(t[0], static_cast<uint32_t>(kMaxPayload))
            << "single-packet messages ride the top priority";
        for (size_t i = 1; i < t.size(); i++) EXPECT_GE(t[i], t[i - 1]);
    }
}

TEST(PiasThresholds, RoughlyEqualBytesPerLevel) {
    const auto& dist = workload(WorkloadId::W5);  // heavy tail exercises it
    auto t = piasThresholdsFor(dist);
    // Bytes a message of size s contributes to level i:
    //   min(s, t[i]) - min(s, t[i-1]).
    Rng rng(8);
    std::vector<double> perLevel(8, 0);
    double total = 0;
    for (int n = 0; n < 100000; n++) {
        const double s = dist.sample(rng);
        double prev = 0;
        for (int lvl = 0; lvl < 8; lvl++) {
            const double hi = lvl < 7 ? std::min<double>(s, t[lvl]) : s;
            perLevel[lvl] += hi - prev;
            prev = hi;
        }
        total += s;
    }
    for (int lvl = 0; lvl < 8; lvl++) {
        EXPECT_NEAR(perLevel[lvl] / total, 1.0 / 8.0, 0.06) << "level " << lvl;
    }
}

class MockHost : public HostServices {
public:
    EventLoop& loop() override { return loop_; }
    HostId id() const override { return 0; }
    void pushPacket(Packet p) override {
        p.src = 0;
        pushed.push_back(p);
    }
    void kickNic() override {}
    Rng& rng() override { return rng_; }

    EventLoop loop_;
    Rng rng_{1};
    std::vector<Packet> pushed;
};

TEST(PiasSender, PriorityDropsAsBytesAreSent) {
    MockHost host;
    PiasConfig cfg;
    cfg.thresholds = piasThresholdsFor(workload(WorkloadId::W4));
    cfg.initialWindow = 1 << 30;  // no window limit for this test
    cfg.rtt = microseconds(8);
    PiasTransport t(host, cfg);

    Message m;
    m.id = 1;
    m.src = 0;
    m.dst = 5;
    m.length = 3'000'000;
    t.sendMessage(m);

    uint8_t firstPrio = 0, lastPrio = 0;
    int n = 0;
    while (auto p = t.pullPacket()) {
        if (n == 0) firstPrio = p->priority;
        lastPrio = p->priority;
        n++;
        if (n > 2500) break;
    }
    EXPECT_EQ(firstPrio, kHighestPriority) << "flows start at top priority";
    EXPECT_LT(lastPrio, firstPrio) << "demoted as bytes accumulate";
}

TEST(PiasSender, WindowGatesTransmission) {
    MockHost host;
    PiasConfig cfg;
    cfg.thresholds = piasThresholdsFor(workload(WorkloadId::W4));
    cfg.initialWindow = 3 * kMaxPayload;
    cfg.rtt = microseconds(8);
    PiasTransport t(host, cfg);
    Message m;
    m.id = 1;
    m.src = 0;
    m.dst = 5;
    m.length = 1'000'000;
    t.sendMessage(m);
    int sent = 0;
    while (t.pullPacket()) sent++;
    EXPECT_EQ(sent, 3);  // window exhausted until ACKs arrive

    // An ACK opens the window by one packet.
    Packet ack;
    ack.type = PacketType::Ack;
    ack.msg = 1;
    ack.length = kMaxPayload;
    t.handlePacket(ack);
    EXPECT_TRUE(t.pullPacket().has_value());
}

// ----------------------------------------------------------- pHost

TEST(PHostSender, BlindRegionThenTokens) {
    MockHost host;
    PHostConfig cfg;
    cfg.rttBytes = 9640;
    PHostTransport t(host, cfg, k10Gbps.serialize(kFullPacketWireBytes));
    Message m;
    m.id = 1;
    m.src = 0;
    m.dst = 3;
    m.length = 100000;
    t.sendMessage(m);

    int64_t blind = 0;
    int blindPackets = 0;
    while (auto p = t.pullPacket()) {
        EXPECT_EQ(p->priority, kHighestPriority) << "unscheduled = static high";
        blind += p->length;
        blindPackets++;
    }
    EXPECT_EQ(blind, 9640);

    // No more without tokens; one token = one packet at the low priority.
    Packet token;
    token.type = PacketType::Token;
    token.msg = 1;
    t.handlePacket(token);
    auto p = t.pullPacket();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->priority, 0) << "scheduled = static low";
    EXPECT_FALSE(t.pullPacket().has_value());
}

TEST(PHostReceiver, PacesTokensAndStopsWhenDone) {
    MockHost host;
    PHostConfig cfg;
    cfg.rttBytes = 9640;
    const Duration packetTime = k10Gbps.serialize(kFullPacketWireBytes);
    PHostTransport t(host, cfg, packetTime);

    // A 3-packet-beyond-RTT message announces itself.
    Packet first;
    first.type = PacketType::Data;
    first.src = 2;
    first.dst = 0;
    first.msg = 9;
    first.created = 0;
    first.offset = 0;
    first.length = 1442;
    first.messageLength = 9640 + 3 * 1442;
    t.handlePacket(first);
    // After three packet times, exactly the scheduled remainder was issued.
    host.loop_.runUntil(4 * k10Gbps.serialize(kFullPacketWireBytes));
    int tokens = 0;
    for (const auto& p : host.pushed) {
        if (p.type == PacketType::Token) tokens++;
    }
    EXPECT_EQ(tokens, 3) << "exactly the scheduled remainder, paced";
    // The sender never answers, so the free-token timeout eventually rolls
    // the grant back and re-issues (pHost's recovery path).
    host.loop_.runUntil(milliseconds(1));
    tokens = 0;
    for (const auto& p : host.pushed) {
        if (p.type == PacketType::Token) tokens++;
    }
    EXPECT_GT(tokens, 3) << "expired tokens must be re-issued";
}

}  // namespace
}  // namespace homa
