// System-wide property tests: Homa invariants under randomized traffic,
// parameterized across workloads and loads.
#include <gtest/gtest.h>

#include "driver/experiment.h"
#include "workload/generator.h"

namespace homa {
namespace {

class HomaInvariants
    : public ::testing::TestWithParam<std::tuple<WorkloadId, int>> {};

TEST_P(HomaInvariants, RandomTrafficUpholdsProtocolGuarantees) {
    const auto [wl, loadPct] = GetParam();
    NetworkConfig cfg = NetworkConfig::fatTree144();
    Network net(cfg, HomaTransport::factory({}, cfg, &workload(wl)));

    uint64_t delivered = 0;
    int64_t deliveredBytes = 0;
    int64_t duplicateBytes = 0;
    double worstSlowdownBelowOne = 1.0;
    Oracle oracle(cfg);
    net.setDeliveryCallback([&](const Message& m, const DeliveryInfo& info) {
        delivered++;
        deliveredBytes += m.length;
        // Duplicate payload can legitimately appear: under load, granted
        // low-priority data may be starved long enough that the receiver's
        // RESEND races the original copy (at-least-once, §3.8). It must
        // stay rare.
        duplicateBytes += info.duplicateBytes;
        // No message may beat the placement-aware best case.
        const bool intra = m.src / 16 == m.dst / 16;
        const Duration best = oracle.bestOneWay(m.length, intra);
        const double slowdown = static_cast<double>(info.completed - m.created) /
                                static_cast<double>(best);
        worstSlowdownBelowOne = std::min(worstSlowdownBelowOne, slowdown);
    });

    TrafficConfig tcfg;
    tcfg.workload = wl;
    tcfg.load = loadPct / 100.0;
    tcfg.stop = milliseconds(2);
    tcfg.seed = 1234 + loadPct;
    TrafficGenerator gen(net, tcfg);
    gen.start();
    net.loop().run();  // run to full drain

    // Conservation: every generated message delivered, every byte once.
    EXPECT_EQ(delivered, gen.generatedMessages());
    EXPECT_EQ(deliveredBytes, gen.generatedBytes());
    // Retransmission duplicates bounded: well under 0.5% of all payload.
    EXPECT_LT(static_cast<double>(duplicateBytes),
              0.005 * static_cast<double>(gen.generatedBytes()) + 20000.0);
    // Physics: nothing faster than the oracle.
    EXPECT_GE(worstSlowdownBelowOne, 1.0 - 1e-9);

    // No switch ever dropped a packet (Table 1's claim at these loads).
    uint64_t drops = 0;
    for (const auto* p : net.torDownlinkPorts()) drops += p->qdisc().stats().dropped;
    for (const auto* p : net.torUplinkPorts()) drops += p->qdisc().stats().dropped;
    for (const auto* p : net.aggrDownlinkPorts()) drops += p->qdisc().stats().dropped;
    EXPECT_EQ(drops, 0u);

    // Buffer occupancy stays within the overcommitment bound: active
    // messages x RTTbytes plus unscheduled collisions. 32 RTTbytes is a
    // generous envelope the paper's Table 1 maxima also respect.
    for (const auto* p : net.torDownlinkPorts()) {
        EXPECT_LT(p->stats().maxQueueBytes, 32 * 9700) << "downlink";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HomaInvariants,
    ::testing::Combine(::testing::Values(WorkloadId::W1, WorkloadId::W2,
                                         WorkloadId::W3, WorkloadId::W4),
                       ::testing::Values(30, 60, 80)),
    [](const auto& info) {
        return workload(std::get<0>(info.param)).name() + "_load" +
               std::to_string(std::get<1>(info.param));
    });

TEST(HomaInvariantsEdge, ZeroByteMessagesRejectedByAssert) {
    // Message lengths must be >= 1 (the transport asserts); document the
    // contract rather than crash in release builds: smallest legal size.
    NetworkConfig cfg = NetworkConfig::singleRack16();
    Network net(cfg, HomaTransport::factory({}, cfg, &workload(WorkloadId::W1)));
    int delivered = 0;
    net.setDeliveryCallback([&](const Message&, const DeliveryInfo&) {
        delivered++;
    });
    Message m;
    m.id = net.nextMsgId();
    m.src = 0;
    m.dst = 1;
    m.length = 1;
    net.sendMessage(m);
    net.loop().run();
    EXPECT_EQ(delivered, 1);
}

TEST(HomaInvariantsEdge, MaxSizedW5MessageDelivers) {
    NetworkConfig cfg = NetworkConfig::fatTree144();
    Network net(cfg, HomaTransport::factory({}, cfg, &workload(WorkloadId::W5)));
    int delivered = 0;
    net.setDeliveryCallback([&](const Message& m, const DeliveryInfo&) {
        EXPECT_EQ(m.length, 28840000u);
        delivered++;
    });
    Message m;
    m.id = net.nextMsgId();
    m.src = 7;
    m.dst = 99;
    m.length = 28840000;  // W5 maximum: 20000 full packets
    net.sendMessage(m);
    net.loop().run();
    EXPECT_EQ(delivered, 1);
}

TEST(HomaInvariantsEdge, SimultaneousBidirectionalTraffic) {
    // A pair of hosts exchanging large messages in both directions must
    // not deadlock (grants flow against data on full-duplex links).
    NetworkConfig cfg = NetworkConfig::singleRack16();
    Network net(cfg, HomaTransport::factory({}, cfg, &workload(WorkloadId::W3)));
    int delivered = 0;
    net.setDeliveryCallback([&](const Message&, const DeliveryInfo&) {
        delivered++;
    });
    for (int i = 0; i < 4; i++) {
        Message ab;
        ab.id = net.nextMsgId();
        ab.src = 0;
        ab.dst = 1;
        ab.length = 500000;
        net.sendMessage(ab);
        Message ba;
        ba.id = net.nextMsgId();
        ba.src = 1;
        ba.dst = 0;
        ba.length = 500000;
        net.sendMessage(ba);
    }
    net.loop().run();
    EXPECT_EQ(delivered, 8);
}

}  // namespace
}  // namespace homa
