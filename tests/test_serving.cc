// Serving-invariant suite: the multi-tenant RPC harness's contracts.
//
// Three layers, matching workload/serving.h -> driver/rpc_experiment.cc:
//
//  1. ReplicaSelector properties: power-of-two-choices never picks a
//     replica strictly deeper than both sampled candidates, round-robin
//     is a fair permutation, and every pick is a pure function of
//     (seed, tenant, rpc sequence) — replay-identical by construction.
//  2. The spec grammar: parse/print round-trips, targeted parse errors,
//     and validateServingConfig's coherence checks (the same checks the
//     CLI and scenario specs route through).
//  3. Hedging ledgers: external conservation invariants over whole runs
//     — exactly one response consumed per logical RPC, cancelled hedges
//     refund server work, hedge counts conserved — across all six
//     protocols, serial and under the parallel-engine knob.
//
// The #ifdef'd tail drives the example_run_experiment binary to pin the
// CLI's serving-mode rejections (contradictory flags exit 2 with a
// targeted message, never a silently ignored knob).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "driver/rpc_experiment.h"
#include "driver/sweep.h"

namespace homa {
namespace {

// ------------------------------------------- ReplicaSelector properties

TEST(ReplicaSelector, P2cNeverPicksDeeperThanBothCandidates) {
    // The defining property of power-of-two-choices: whatever the depth
    // profile, the pick is never strictly deeper than both sampled
    // candidates. Exercised over adversarial depth functions — uniform,
    // monotone, spiky, and one that always penalizes the picked index.
    for (int replicas : {2, 3, 7}) {
        for (uint64_t seed : {1ull, 99ull}) {
            const ReplicaSelector sel(LbPolicy::PowerOfTwo, replicas, seed,
                                      /*tenant=*/0);
            const std::vector<ReplicaSelector::DepthFn> profiles = {
                [](int) { return 5; },
                [](int r) { return r; },
                [](int r) { return r % 2 == 0 ? 100 : 0; },
                [replicas](int r) { return (r * 37) % replicas; },
            };
            for (const auto& depth : profiles) {
                for (uint64_t seq = 0; seq < 500; seq++) {
                    const auto [c1, c2] = sel.candidates(seq);
                    ASSERT_GE(c1, 0);
                    ASSERT_LT(c1, replicas);
                    ASSERT_GE(c2, 0);
                    ASSERT_LT(c2, replicas);
                    if (replicas >= 2) ASSERT_NE(c1, c2);
                    const int picked = sel.pick(seq, depth);
                    ASSERT_TRUE(picked == c1 || picked == c2);
                    EXPECT_LE(depth(picked),
                              std::max(depth(c1), depth(c2)))
                        << "replicas=" << replicas << " seq=" << seq;
                    // Strictly-less depth must win; ties go to c1.
                    if (depth(c1) != depth(c2)) {
                        EXPECT_EQ(depth(picked),
                                  std::min(depth(c1), depth(c2)));
                    } else {
                        EXPECT_EQ(picked, c1);
                    }
                }
            }
        }
    }
}

TEST(ReplicaSelector, RoundRobinIsAFairPermutation) {
    // Each cycle of n picks visits every replica exactly once, and the
    // cycle order repeats — a seeded fair permutation, not "i mod n"
    // (different tenants must not march in phase).
    for (int replicas : {2, 4, 9}) {
        const ReplicaSelector sel(LbPolicy::RoundRobin, replicas, /*seed=*/7,
                                  /*tenant=*/2);
        std::vector<int> firstCycle;
        for (int i = 0; i < replicas; i++) {
            firstCycle.push_back(sel.pick(static_cast<uint64_t>(i), {}));
        }
        EXPECT_EQ(std::set<int>(firstCycle.begin(), firstCycle.end()).size(),
                  static_cast<size_t>(replicas))
            << "cycle is not a permutation, replicas=" << replicas;
        for (int cycle = 1; cycle < 4; cycle++) {
            for (int i = 0; i < replicas; i++) {
                EXPECT_EQ(sel.pick(static_cast<uint64_t>(cycle * replicas + i),
                                   {}),
                          firstCycle[static_cast<size_t>(i)]);
            }
        }
    }
    // Over many picks the counts are exactly balanced.
    const int n = 5;
    const ReplicaSelector sel(LbPolicy::RoundRobin, n, 7, 0);
    std::map<int, int> counts;
    for (uint64_t seq = 0; seq < 20 * n; seq++) counts[sel.pick(seq, {})]++;
    for (const auto& [replica, count] : counts) {
        (void)replica;
        EXPECT_EQ(count, 20);
    }
}

TEST(ReplicaSelector, RoundRobinPermutationsDifferAcrossTenants) {
    // The permutation is seeded per (seed, tenant): co-located tenants
    // must not all hit replica k at the same phase. With 8 replicas
    // (8! orders) and 6 tenants, at least two distinct orders is a
    // deterministic certainty for this seed — pinned, not probabilistic.
    const int replicas = 8;
    std::set<std::vector<int>> orders;
    for (int tenant = 0; tenant < 6; tenant++) {
        const ReplicaSelector sel(LbPolicy::RoundRobin, replicas, 17, tenant);
        std::vector<int> order;
        for (int i = 0; i < replicas; i++) {
            order.push_back(sel.pick(static_cast<uint64_t>(i), {}));
        }
        orders.insert(order);
    }
    EXPECT_GT(orders.size(), 1u);
}

TEST(ReplicaSelector, SelectionIsAPureFunctionOfSeedTenantAndSeq) {
    // Replay-identical: re-constructing the selector with the same
    // (policy, replicas, seed, tenant) reproduces every pick, candidate
    // pair, and hedge choice — no hidden mutable state. Changing seed or
    // tenant moves the stream.
    for (LbPolicy policy : {LbPolicy::RoundRobin, LbPolicy::Random,
                            LbPolicy::PowerOfTwo}) {
        const ReplicaSelector a(policy, 6, /*seed=*/42, /*tenant=*/3);
        const ReplicaSelector b(policy, 6, /*seed=*/42, /*tenant=*/3);
        const auto depth = [](int r) { return (r * 13) % 6; };
        for (uint64_t seq = 0; seq < 300; seq++) {
            EXPECT_EQ(a.pick(seq, depth), b.pick(seq, depth));
            EXPECT_EQ(a.candidates(seq), b.candidates(seq));
            const int primary = a.pick(seq, depth);
            EXPECT_EQ(a.pickHedge(seq, primary), b.pickHedge(seq, primary));
        }
    }
    // Different seed or different tenant => a different pick stream
    // (somewhere in the first few hundred draws).
    const ReplicaSelector base(LbPolicy::Random, 6, 42, 3);
    const ReplicaSelector reseeded(LbPolicy::Random, 6, 43, 3);
    const ReplicaSelector retenanted(LbPolicy::Random, 6, 42, 4);
    bool seedDiffers = false, tenantDiffers = false;
    for (uint64_t seq = 0; seq < 300; seq++) {
        seedDiffers |= base.pick(seq, {}) != reseeded.pick(seq, {});
        tenantDiffers |= base.pick(seq, {}) != retenanted.pick(seq, {});
    }
    EXPECT_TRUE(seedDiffers);
    EXPECT_TRUE(tenantDiffers);
}

TEST(ReplicaSelector, HedgeTargetExcludesThePrimaryAndCoversTheRest) {
    const int replicas = 5;
    const ReplicaSelector sel(LbPolicy::Random, replicas, 11, 0);
    for (int primary = 0; primary < replicas; primary++) {
        std::set<int> seen;
        for (uint64_t seq = 0; seq < 200; seq++) {
            const int h = sel.pickHedge(seq, primary);
            ASSERT_GE(h, 0);
            ASSERT_LT(h, replicas);
            ASSERT_NE(h, primary);
            seen.insert(h);
        }
        // Uniform over the other replicas: 200 draws over 4 targets
        // reach all of them.
        EXPECT_EQ(seen.size(), static_cast<size_t>(replicas - 1));
    }
}

TEST(ReplicaSelector, RandomPolicyCoversAllReplicas) {
    const int replicas = 6;
    const ReplicaSelector sel(LbPolicy::Random, replicas, 5, 1);
    std::set<int> seen;
    for (uint64_t seq = 0; seq < 300; seq++) {
        const int r = sel.pick(seq, {});
        ASSERT_GE(r, 0);
        ASSERT_LT(r, replicas);
        seen.insert(r);
    }
    EXPECT_EQ(seen.size(), static_cast<size_t>(replicas));
}

// ------------------------------------------------ spec grammar + validate

TEST(ServingSpec, TenantsRoundTripThroughTheCanonicalString) {
    std::vector<TenantConfig> tenants;
    std::string err;
    ASSERT_TRUE(parseTenantsSpec(
        "name=web,wl=W1,load=0.6,clients=4;"
        "name=batch,wl=W5,mode=closed,window=8,think_us=12.5,clients=2,"
        "group=bulk",
        tenants, &err))
        << err;
    ASSERT_EQ(tenants.size(), 2u);
    EXPECT_EQ(tenants[0].name, "web");
    EXPECT_EQ(tenants[0].workload, WorkloadId::W1);
    EXPECT_EQ(tenants[0].mode, ArrivalMode::Open);
    EXPECT_DOUBLE_EQ(tenants[0].load, 0.6);
    EXPECT_EQ(tenants[0].clients, 4);
    EXPECT_EQ(tenants[1].mode, ArrivalMode::Closed);
    EXPECT_EQ(tenants[1].window, 8);
    EXPECT_EQ(tenants[1].think, microseconds(12) + nanoseconds(500));
    EXPECT_EQ(tenants[1].group, "bulk");

    // parse(print(x)) == x: the canonical string re-parses to the same
    // configs, and printing again is a fixed point.
    const std::string canonical = tenantsSpecToString(tenants);
    std::vector<TenantConfig> again;
    ASSERT_TRUE(parseTenantsSpec(canonical, again, &err)) << canonical;
    EXPECT_EQ(tenantsSpecToString(again), canonical);
    ASSERT_EQ(again.size(), tenants.size());
    for (size_t i = 0; i < tenants.size(); i++) {
        EXPECT_EQ(again[i].name, tenants[i].name);
        EXPECT_EQ(again[i].workload, tenants[i].workload);
        EXPECT_EQ(again[i].mode, tenants[i].mode);
        EXPECT_DOUBLE_EQ(again[i].load, tenants[i].load);
        EXPECT_EQ(again[i].window, tenants[i].window);
        EXPECT_EQ(again[i].think, tenants[i].think);
        EXPECT_EQ(again[i].clients, tenants[i].clients);
        EXPECT_EQ(again[i].group, tenants[i].group);
    }
}

TEST(ServingSpec, ReplicasRoundTripThroughTheCanonicalString) {
    std::vector<ReplicaGroupConfig> groups;
    std::string err;
    ASSERT_TRUE(parseReplicasSpec(
        "name=fast,n=2,lb=p2c,hedge=p95,hedge_floor_us=15,hedge_min=16;"
        "name=bulk,n=0,lb=rr",
        groups, &err))
        << err;
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].policy, LbPolicy::PowerOfTwo);
    EXPECT_DOUBLE_EQ(groups[0].hedgePercentile, 0.95);
    EXPECT_EQ(groups[0].hedgeFloor, microseconds(15));
    EXPECT_EQ(groups[0].hedgeMinSamples, 16);
    EXPECT_EQ(groups[1].replicas, 0);
    EXPECT_EQ(groups[1].policy, LbPolicy::RoundRobin);
    EXPECT_FALSE(groups[1].hedging());

    const std::string canonical = replicasSpecToString(groups);
    std::vector<ReplicaGroupConfig> again;
    ASSERT_TRUE(parseReplicasSpec(canonical, again, &err)) << canonical;
    EXPECT_EQ(replicasSpecToString(again), canonical);
}

TEST(ServingSpec, ParseErrorsAreTargeted) {
    // Every rejection names the offending key or entry — the CLI
    // forwards these verbatim, so they must diagnose, not just fail.
    struct Case {
        const char* body;
        const char* expect;
        bool tenants;  // which parser
    };
    const Case cases[] = {
        {"", "empty tenant spec", true},
        {"bogus", "expected k=v", true},
        {"name=a;;name=b", "stray ';'", true},
        {"wl=W1,clients=2", "no name= key", true},
        {"name=a,wl=W9", "expected W1..W5", true},
        {"name=a,mode=sideways", "expected open or closed", true},
        {"name=a,load=fast", "expected a number", true},
        {"name=a,volume=11", "unknown tenant key 'volume'", true},
        {"name=a,window=4", "closed-mode knobs", true},
        {"name=a,mode=closed,load=0.5", "open-mode knob", true},
        {"", "empty replica spec", false},
        {"n=2", "no name= key", false},
        {"name=g,lb=least-loaded", "expected rr, random, or p2c", false},
        {"name=g,hedge=95", "expected off or p1..p99", false},
        {"name=g,hedge=p0", "expected off or p1..p99", false},
        {"name=g,spin=1", "unknown replica key 'spin'", false},
    };
    for (const Case& c : cases) {
        std::string err;
        if (c.tenants) {
            std::vector<TenantConfig> out;
            EXPECT_FALSE(parseTenantsSpec(c.body, out, &err)) << c.body;
        } else {
            std::vector<ReplicaGroupConfig> out;
            EXPECT_FALSE(parseReplicasSpec(c.body, out, &err)) << c.body;
        }
        EXPECT_NE(err.find(c.expect), std::string::npos)
            << "'" << c.body << "' gave: " << err;
    }
}

TEST(ServingSpec, ParseFailureLeavesTheOutputUntouched) {
    std::vector<TenantConfig> tenants;
    ASSERT_TRUE(parseTenantsSpec("name=keep,clients=3", tenants));
    ASSERT_EQ(tenants.size(), 1u);
    EXPECT_FALSE(parseTenantsSpec("name=a,wl=W9", tenants));
    ASSERT_EQ(tenants.size(), 1u);
    EXPECT_EQ(tenants[0].name, "keep");
}

ServingConfig twoTenantConfig() {
    TenantConfig a;
    a.name = "a";
    a.clients = 4;
    TenantConfig b;
    b.name = "b";
    b.clients = 4;
    ServingConfig cfg;
    cfg.tenants = {a, b};
    return cfg;
}

TEST(ServingValidate, CatchesIncoherentConfigs) {
    struct Case {
        const char* expect;
        std::function<void(ServingConfig&)> mutate;
    };
    const Case cases[] = {
        {"duplicate tenant name",
         [](ServingConfig& c) { c.tenants[1].name = "a"; }},
        {"clients must be >= 1",
         [](ServingConfig& c) { c.tenants[0].clients = 0; }},
        {"load must be in (0, 1.5]",
         [](ServingConfig& c) { c.tenants[0].load = 2.0; }},
        {"window must be >= 1",
         [](ServingConfig& c) {
             c.tenants[0].mode = ArrivalMode::Closed;
             c.tenants[0].window = 0;
         }},
        {"targets unknown replica group",
         [](ServingConfig& c) { c.tenants[0].group = "nowhere"; }},
        {"at least one server host",
         [](ServingConfig& c) { c.tenants[0].clients = 12; }},
        {"hedge percentile must be in [0, 1)",
         [](ServingConfig& c) {
             c.groups.push_back(ReplicaGroupConfig{});
             c.groups[0].hedgePercentile = 1.0;
         }},
        {"only legal for the last group",
         [](ServingConfig& c) {
             ReplicaGroupConfig rest;
             rest.name = "rest";
             rest.replicas = 0;
             ReplicaGroupConfig tail;
             tail.name = "tail";
             tail.replicas = 2;
             c.groups = {rest, tail};
         }},
        {"server hosts remain",
         [](ServingConfig& c) {
             c.groups.push_back(ReplicaGroupConfig{});
             c.groups[0].replicas = 99;
         }},
        {"p2c needs >= 2 replicas",
         [](ServingConfig& c) {
             c.groups.push_back(ReplicaGroupConfig{});
             c.groups[0].replicas = 1;
             c.groups[0].policy = LbPolicy::PowerOfTwo;
         }},
        {"hedging needs >= 2 replicas",
         [](ServingConfig& c) {
             c.groups.push_back(ReplicaGroupConfig{});
             c.groups[0].replicas = 1;
             c.groups[0].hedgePercentile = 0.9;
         }},
    };
    ASSERT_EQ(validateServingConfig(twoTenantConfig(), 16), "");
    for (const Case& c : cases) {
        ServingConfig cfg = twoTenantConfig();
        c.mutate(cfg);
        const std::string why = validateServingConfig(cfg, 16);
        EXPECT_NE(why.find(c.expect), std::string::npos)
            << "expected '" << c.expect << "', got: '" << why << "'";
    }
}

TEST(ServingValidate, ResolvesGroupsInDeclarationOrder) {
    ServingConfig cfg = twoTenantConfig();
    ReplicaGroupConfig fast;
    fast.name = "fast";
    fast.replicas = 3;
    ReplicaGroupConfig bulk;
    bulk.name = "bulk";
    bulk.replicas = 0;  // the rest
    cfg.groups = {fast, bulk};
    cfg.tenants[1].group = "bulk";

    std::vector<ResolvedGroup> resolved;
    std::string err;
    ASSERT_TRUE(resolveReplicaGroups(cfg, /*servers=*/8, resolved, &err))
        << err;
    ASSERT_EQ(resolved.size(), 2u);
    EXPECT_EQ(resolved[0].first, 0);
    EXPECT_EQ(resolved[0].count, 3);
    EXPECT_EQ(resolved[1].first, 3);
    EXPECT_EQ(resolved[1].count, 5);
    EXPECT_EQ(tenantGroupIndex(cfg, cfg.tenants[0]), 0);  // empty = first
    EXPECT_EQ(tenantGroupIndex(cfg, cfg.tenants[1]), 1);
}

TEST(ServingValidate, EmptyGroupListGetsTheImplicitPool) {
    const ServingConfig cfg = twoTenantConfig();
    const std::vector<ReplicaGroupConfig> groups = cfg.effectiveGroups();
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].name, "pool");
    EXPECT_EQ(groups[0].replicas, 0);
    EXPECT_EQ(groups[0].policy, LbPolicy::Random);
    EXPECT_EQ(cfg.totalClients(), 8);
}

// ------------------------------------------------- hedging ledgers (runs)

// A small hedged serving mix that still arms hedges within the run:
// aggressive hedge percentile + low sample floor so every protocol
// issues a meaningful number of hedges in 4 simulated milliseconds.
RpcExperimentConfig hedgedServingConfig(Protocol kind) {
    RpcExperimentConfig cfg;
    cfg.net = NetworkConfig::singleRack16();
    cfg.proto.kind = kind;
    cfg.seed = 21;
    cfg.stop = milliseconds(4);

    TenantConfig open;
    open.name = "open";
    open.workload = WorkloadId::W1;
    open.mode = ArrivalMode::Open;
    open.load = 0.4;
    open.clients = 5;

    TenantConfig closed;
    closed.name = "closed";
    closed.workload = WorkloadId::W2;
    closed.mode = ArrivalMode::Closed;
    closed.window = 4;
    closed.clients = 3;

    ReplicaGroupConfig pool;
    pool.name = "pool";
    pool.replicas = 0;  // all 8 remaining hosts
    pool.policy = LbPolicy::PowerOfTwo;
    pool.hedgePercentile = 0.90;
    pool.hedgeMinSamples = 8;

    cfg.serving.tenants = {open, closed};
    cfg.serving.groups = {pool};
    return cfg;
}

void expectLedgersBalance(const RpcExperimentResult& r, const char* what) {
    const ServingStats& s = r.serving;
    // Exactly one response consumed per completed logical RPC — the
    // winner; the loser's response is dropped by the cancel path.
    EXPECT_EQ(s.responsesConsumed, s.logicalCompleted) << what;
    // Call conservation: every endpoint call is a primary or a hedge.
    EXPECT_EQ(s.callsIssued, s.logicalIssued + s.hedgesIssued) << what;
    // Hedge lifecycle: issued hedges all end up won, cancelled, or
    // failed (unresolved at run end) — none vanish.
    EXPECT_EQ(s.hedgesIssued, s.hedgesWon + s.hedgesCancelled + s.hedgesFailed)
        << what;
    // Every hedge win cancelled exactly one primary.
    EXPECT_EQ(s.primariesCancelled, s.hedgesWon) << what;
    // Byte ledger: cancelled calls refund their server work, so issued
    // bytes are fully accounted as consumed + refunded + unresolved.
    EXPECT_EQ(s.issuedBytes,
              s.consumedBytes + s.refundedBytes + s.unresolvedBytes)
        << what;
    EXPECT_GE(s.refundedBytes, 0) << what;
    // The per-tenant tracker's hedge rows sum to the global ledgers.
    ASSERT_TRUE(r.tenants) << what;
    const TenantHedgeStats totals = r.tenants->totalHedges();
    EXPECT_EQ(totals.issued, s.hedgesIssued) << what;
    EXPECT_EQ(totals.won, s.hedgesWon) << what;
    EXPECT_EQ(totals.cancelled, s.hedgesCancelled) << what;
    EXPECT_EQ(totals.failed, s.hedgesFailed) << what;
}

TEST(ServingLedgers, HedgeConservationHoldsAcrossAllProtocols) {
    // The invariants are external ledgers — they do not care which
    // transport carried the calls, so they must hold for every protocol
    // the simulator speaks, serial and under parallel.threads = 4
    // (where the fingerprint must also be byte-identical: the serving
    // harness is single-shard by construction, the knob must be inert).
    for (Protocol kind : {Protocol::Homa, Protocol::Basic, Protocol::PHost,
                          Protocol::Pias, Protocol::PFabric, Protocol::Ndp}) {
        const RpcExperimentConfig cfg = hedgedServingConfig(kind);
        const RpcExperimentResult serial = runRpcExperiment(cfg);
        EXPECT_GT(serial.serving.logicalCompleted, 0u) << protocolName(kind);
        EXPECT_GT(serial.serving.hedgesIssued, 0u)
            << protocolName(kind) << ": hedges never armed — the ledger "
            << "tests would be vacuous";
        expectLedgersBalance(serial, protocolName(kind));

        RpcExperimentConfig par = cfg;
        par.parallel.threads = 4;
        const RpcExperimentResult threaded = runRpcExperiment(par);
        expectLedgersBalance(threaded, protocolName(kind));
        EXPECT_EQ(resultFingerprint(serial), resultFingerprint(threaded))
            << protocolName(kind);
    }
}

TEST(ServingLedgers, UnhedgedRunsKeepTheDegenerateLedgers) {
    // hedge=off: the ledgers collapse — no hedges, no cancellations, no
    // refunds; every issued call is a logical RPC.
    RpcExperimentConfig cfg = hedgedServingConfig(Protocol::Homa);
    cfg.serving.groups[0].hedgePercentile = 0;
    const RpcExperimentResult r = runRpcExperiment(cfg);
    EXPECT_GT(r.serving.logicalCompleted, 0u);
    EXPECT_EQ(r.serving.hedgesIssued, 0u);
    EXPECT_EQ(r.serving.primariesCancelled, 0u);
    EXPECT_EQ(r.serving.refundedBytes, 0);
    EXPECT_EQ(r.serving.callsIssued, r.serving.logicalIssued);
    expectLedgersBalance(r, "unhedged");
}

TEST(ServingLedgers, LedgersBalancePerPolicyAndAcrossGroups) {
    // Two replica groups with different policies, hedging only on one:
    // conservation is global, whatever the group topology.
    for (LbPolicy policy : {LbPolicy::RoundRobin, LbPolicy::Random,
                            LbPolicy::PowerOfTwo}) {
        RpcExperimentConfig cfg = hedgedServingConfig(Protocol::Homa);
        ReplicaGroupConfig fast;
        fast.name = "fast";
        fast.replicas = 4;
        fast.policy = policy;
        fast.hedgePercentile = 0.90;
        fast.hedgeMinSamples = 8;
        ReplicaGroupConfig bulk;
        bulk.name = "bulk";
        bulk.replicas = 0;
        bulk.policy = LbPolicy::RoundRobin;
        cfg.serving.groups = {fast, bulk};
        cfg.serving.tenants[0].group = "fast";
        cfg.serving.tenants[1].group = "bulk";
        const RpcExperimentResult r = runRpcExperiment(cfg);
        EXPECT_GT(r.serving.logicalCompleted, 0u) << lbPolicyName(policy);
        expectLedgersBalance(r, lbPolicyName(policy));
        // Hedging is scoped to the fast group's tenant.
        ASSERT_TRUE(r.tenants);
        EXPECT_EQ(r.tenants->hedges(1).issued, 0u) << lbPolicyName(policy);
    }
}

TEST(ServingHarness, TenantRowsCoverTheMixAndFeedTheFingerprint) {
    const RpcExperimentConfig cfg = hedgedServingConfig(Protocol::Homa);
    const RpcExperimentResult r = runRpcExperiment(cfg);
    ASSERT_TRUE(r.tenants);
    ASSERT_EQ(r.tenants->tenants(), 2);
    for (int t = 0; t < r.tenants->tenants(); t++) {
        EXPECT_GT(r.tenants->completed(t), 0u) << "tenant " << t;
        EXPECT_GT(r.tenants->opsPerSec(t), 0.0) << "tenant " << t;
        EXPECT_GT(r.tenants->latencyPercentileUs(t, 0.99), 0.0)
            << "tenant " << t;
        EXPECT_GE(r.tenants->latencyPercentileUs(t, 0.99),
                  r.tenants->latencyPercentileUs(t, 0.50))
            << "tenant " << t;
        EXPECT_GE(r.tenants->slowdownPercentile(t, 0.5), 1.0)
            << "tenant " << t;
    }
    // The serving block shows up in the fingerprint (keyed rows), so the
    // determinism goldens actually cover the per-tenant percentiles.
    const std::string fp = resultFingerprint(r);
    EXPECT_NE(fp.find("tn"), std::string::npos);
    EXPECT_NE(fp.find("sv"), std::string::npos);
}

// ------------------------------------------------- CLI serving rejections

#ifdef HOMA_RUN_EXPERIMENT_BIN

int runCli(const std::string& args) {
    const std::string cmd = std::string(HOMA_RUN_EXPERIMENT_BIN) + " " +
                            args + " > /dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string runCliOutput(const std::string& args) {
    const std::string cmd =
        std::string(HOMA_RUN_EXPERIMENT_BIN) + " " + args + " 2>&1";
    FILE* pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    if (pipe == nullptr) return "";
    std::string out;
    char buf[512];
    while (fgets(buf, sizeof buf, pipe) != nullptr) out += buf;
    pclose(pipe);
    return out;
}

// A valid minimal tenant spec the contradiction tests bolt flags onto.
const char* kTenants = "--tenants name=a,wl=W1,load=0.4,clients=4";

TEST(ServingCli, RejectsContradictoryFlagsWithTargetedErrors) {
    // Serving mode runs the RPC harness; every message-level shaping
    // flag would be silently ignored — each one must be rejected with a
    // message that names the contradiction. Usage errors exit 2.
    struct Case {
        std::string args;
        const char* expect;
    };
    const Case cases[] = {
        {"--replicas name=pool",
         "replica groups without tenants serve nobody"},
        {std::string(kTenants) + " --trace /dev/null",
         "--tenants contradicts --trace"},
        {std::string(kTenants) + " --dag-depth 3",
         "serving mode and dag mode are separate"},
        {std::string(kTenants) + " --pattern incast",
         "--tenants contradicts --pattern incast"},
        {std::string(kTenants) + " --window 4",
         "--window/--think-us do not apply to --tenants"},
        {std::string(kTenants) + " --on-off",
         "--on-off does not compose with --tenants"},
        {std::string(kTenants) + " --fault flap=tor0,at=1ms,for=1ms",
         "--tenants does not compose with --fault"},
        {std::string(kTenants) + " --fluid 0",
         "--tenants does not compose with --fluid"},
        {std::string(kTenants) + " --ecmp",
         "--ecmp does not apply to --tenants"},
        {std::string(kTenants) + " --wasted-bw",
         "--wasted-bw does not apply to --tenants"},
    };
    for (const Case& c : cases) {
        EXPECT_EQ(runCli(c.args), 2) << c.args;
        const std::string out = runCliOutput(c.args);
        EXPECT_NE(out.find(c.expect), std::string::npos)
            << c.args << " gave:\n" << out;
    }
}

TEST(ServingCli, RejectsMalformedSpecsWithTheParserMessage) {
    EXPECT_EQ(runCli("--tenants bogus"), 2);
    std::string out = runCliOutput("--tenants bogus");
    EXPECT_NE(out.find("expected k=v"), std::string::npos) << out;

    out = runCliOutput("--tenants name=a,wl=W9,clients=4");
    EXPECT_NE(out.find("expected W1..W5"), std::string::npos) << out;

    out = runCliOutput(std::string(kTenants) +
                       " --replicas name=g,lb=least-loaded");
    EXPECT_NE(out.find("expected rr, random, or p2c"), std::string::npos)
        << out;

    // Well-formed but incoherent specs hit validateServingConfig after
    // the topology is final: 15 clients leave one server on the default
    // 16-host serving cluster, and p2c needs two.
    out = runCliOutput("--tenants name=a,wl=W1,load=0.4,clients=15"
                       " --replicas name=pool,n=0,lb=p2c");
    EXPECT_NE(out.find("bad serving config"), std::string::npos) << out;
    EXPECT_NE(out.find("p2c needs >= 2 replicas"), std::string::npos) << out;

    out = runCliOutput("--tenants name=a,wl=W1,load=0.4,clients=20");
    EXPECT_NE(out.find("bad serving config"), std::string::npos) << out;
}

#endif  // HOMA_RUN_EXPERIMENT_BIN

}  // namespace
}  // namespace homa
