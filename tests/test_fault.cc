// Fault-injection suite (sim/fault.h): spec parsing and validation with
// human-readable errors, the packet-conservation law under every fault
// kind across all six protocols, protocol recovery (RESENDs after flaps
// that eat grants or data, receiver abort when a peer dies), closed-loop
// and DAG resilience, and CLI misuse of --fault/--ecmp.
//
// The conservation law is checked with accounting *external* to the fault
// layer: NIC transmission starts on one side, host receptions plus
// counted drop causes plus still-in-flight packets on the other. A leak
// in any fault path (a packet discarded without bumping a cause counter,
// or double-counted) breaks the equality.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "driver/experiment.h"
#include "sim/fault.h"
#include "sim/parallel.h"
#include "sim/topology.h"
#include "workload/generator.h"

namespace homa {
namespace {

// ------------------------------------------------------- spec parsing

std::string parseError(const std::string& body) {
    FaultSpec spec;
    std::string err;
    EXPECT_FALSE(parseFaultSpec(body, spec, &err)) << body;
    return err;
}

TEST(FaultSpec, ParsesEachKind) {
    FaultSpec f;
    ASSERT_TRUE(parseFaultSpec("flap=aggr0,at=50ms,for=10ms", f));
    EXPECT_EQ(f.kind, FaultKind::Flap);
    EXPECT_EQ(f.targetKind, FaultTargetKind::Aggr);
    EXPECT_EQ(f.targetIndex, 0);
    EXPECT_EQ(f.at, milliseconds(50));
    EXPECT_EQ(f.duration, milliseconds(10));

    ASSERT_TRUE(parseFaultSpec("kill=tor2,at=30ms", f));
    EXPECT_EQ(f.kind, FaultKind::Kill);
    EXPECT_EQ(f.targetKind, FaultTargetKind::Tor);
    EXPECT_EQ(f.targetIndex, 2);

    ASSERT_TRUE(parseFaultSpec(
        "degrade=host5,at=1ms,for=5ms,bw=0.25,delay=10us,drop=0.01", f));
    EXPECT_EQ(f.kind, FaultKind::Degrade);
    EXPECT_EQ(f.targetKind, FaultTargetKind::Host);
    EXPECT_EQ(f.targetIndex, 5);
    EXPECT_DOUBLE_EQ(f.bwFactor, 0.25);
    EXPECT_EQ(f.extraDelay, microseconds(10));
    EXPECT_DOUBLE_EQ(f.dropProb, 0.01);
    EXPECT_EQ(f.duration, milliseconds(5));

    ASSERT_TRUE(parseFaultSpec(
        "flap-train=aggr1,at=10ms,count=5,gap=2ms,for=500us", f));
    EXPECT_EQ(f.kind, FaultKind::FlapTrain);
    EXPECT_EQ(f.count, 5);
    EXPECT_EQ(f.gap, milliseconds(2));
    EXPECT_EQ(f.duration, microseconds(500));
}

TEST(FaultSpec, CanonicalStringRoundTrips) {
    for (const char* body :
         {"flap=aggr0,at=50ms,for=10ms", "kill=tor2,at=30ms",
          "degrade=host5,at=1ms,for=5ms,bw=0.25,delay=10us,drop=0.01",
          "flap-train=aggr1,at=10ms,count=5,gap=2ms,for=500us"}) {
        FaultSpec f, again;
        ASSERT_TRUE(parseFaultSpec(body, f)) << body;
        ASSERT_TRUE(parseFaultSpec(faultSpecToString(f), again))
            << faultSpecToString(f);
        EXPECT_EQ(faultSpecToString(f), faultSpecToString(again)) << body;
    }
}

TEST(FaultSpec, ExplainsMalformedSpecs) {
    EXPECT_EQ(parseError(""), "empty fault spec");
    EXPECT_NE(parseError("boom=aggr0,at=1ms").find("must start with"),
              std::string::npos);
    EXPECT_NE(parseError("flap=switch3,at=1ms,for=1ms")
                  .find("bad fault target"),
              std::string::npos);
    EXPECT_NE(parseError("flap=aggr,for=1ms").find("bad fault target index"),
              std::string::npos);
    EXPECT_NE(parseError("flap=aggr0,for=10").find("bad duration"),
              std::string::npos);  // missing ns/us/ms/s suffix
    EXPECT_NE(parseError("flap=aggr0,for=1ms,oops=3")
                  .find("unknown fault key 'oops'"),
              std::string::npos);
    EXPECT_NE(parseError("flap=aggr0,for").find("needs =<value>"),
              std::string::npos);
}

TEST(FaultSpec, ExplainsContradictoryKeys) {
    EXPECT_EQ(parseError("flap=aggr0,at=1ms"), "flap needs for=<duration> > 0");
    EXPECT_EQ(parseError("flap=aggr0,for=1ms,drop=0.1"),
              "flap takes no degrade knobs (bw/delay/drop); use degrade=");
    EXPECT_EQ(parseError("flap=aggr0,for=1ms,count=3"),
              "flap takes no count/gap; use flap-train=");
    EXPECT_EQ(parseError("kill=aggr0,for=1ms"),
              "kill is permanent: 'for' does not apply "
              "(use flap= for a transient outage)");
    EXPECT_EQ(parseError("kill=tor0,bw=0.5"),
              "kill takes no degrade knobs (bw/delay/drop)");
    EXPECT_EQ(parseError("degrade=host0,at=1ms"),
              "degrade needs at least one of bw=, delay=, drop=");
    EXPECT_EQ(parseError("degrade=host0,bw=1.5"), "bw must be in (0, 1]");
    EXPECT_EQ(parseError("degrade=host0,drop=1.0"), "drop must be in [0, 1)");
    EXPECT_EQ(parseError("flap-train=aggr0,for=1ms,gap=1ms"),
              "flap-train needs count=<n> >= 1");
    EXPECT_EQ(parseError("flap-train=aggr0,count=3,for=1ms"),
              "flap-train needs gap=<mean duration> > 0");
    EXPECT_EQ(parseError("flap-train=aggr0,count=3,gap=1ms"),
              "flap-train needs for=<mean down duration> > 0");
}

TEST(FaultSpec, ValidatesTargetsAgainstTopology) {
    const NetworkConfig fat = NetworkConfig::fatTree144();
    const NetworkConfig rack = NetworkConfig::singleRack16();
    FaultSpec f;
    ASSERT_TRUE(parseFaultSpec("flap=aggr3,at=1ms,for=1ms", f));
    EXPECT_EQ(validateFaultSpec(f, fat), "");
    EXPECT_NE(validateFaultSpec(f, rack), "");  // no aggr switches
    ASSERT_TRUE(parseFaultSpec("flap=aggr4,at=1ms,for=1ms", f));
    EXPECT_NE(validateFaultSpec(f, fat), "");  // only 4 aggrs
    ASSERT_TRUE(parseFaultSpec("flap=tor9,at=1ms,for=1ms", f));
    EXPECT_NE(validateFaultSpec(f, fat), "");  // only 9 racks
    ASSERT_TRUE(parseFaultSpec("kill=host15,at=1ms", f));
    EXPECT_EQ(validateFaultSpec(f, rack), "");
    ASSERT_TRUE(parseFaultSpec("kill=host16,at=1ms", f));
    EXPECT_NE(validateFaultSpec(f, rack), "");
}

TEST(FaultSpec, OutOfRangeErrorsNameTheValidRangePerTier) {
    const NetworkConfig fat = NetworkConfig::fatTree144();
    FaultSpec f;
    ASSERT_TRUE(parseFaultSpec("flap=aggr4,at=1ms,for=1ms", f));
    std::string err = validateFaultSpec(f, fat);
    EXPECT_NE(err.find("4 aggregation switches"), std::string::npos) << err;
    EXPECT_NE(err.find("aggr0..aggr3"), std::string::npos) << err;
    ASSERT_TRUE(parseFaultSpec("flap=tor9,at=1ms,for=1ms", f));
    err = validateFaultSpec(f, fat);
    EXPECT_NE(err.find("9 racks"), std::string::npos) << err;
    EXPECT_NE(err.find("tor0..tor8"), std::string::npos) << err;
    ASSERT_TRUE(parseFaultSpec("kill=host144,at=1ms", f));
    err = validateFaultSpec(f, fat);
    EXPECT_NE(err.find("144 hosts"), std::string::npos) << err;
    EXPECT_NE(err.find("host0..host143"), std::string::npos) << err;
}

TEST(FaultSpec, ValidatesCoreTargetsAgainstTheTopology) {
    const NetworkConfig fat = NetworkConfig::fatTree144();
    NetworkConfig tiered = NetworkConfig::fatTree144();
    ASSERT_TRUE(parseTopoSpec("racks=8,aggr=2,core=2,oversub=4", tiered));
    FaultSpec f;
    ASSERT_TRUE(parseFaultSpec("kill=core1,at=1ms", f));
    EXPECT_EQ(f.targetKind, FaultTargetKind::Core);
    EXPECT_EQ(validateFaultSpec(f, tiered), "");
    // No core layer on the paper's two-tier tree.
    std::string err = validateFaultSpec(f, fat);
    EXPECT_NE(err.find("three-tier"), std::string::npos) << err;
    ASSERT_TRUE(parseFaultSpec("kill=core2,at=1ms", f));
    err = validateFaultSpec(f, tiered);
    EXPECT_NE(err.find("2 core switches"), std::string::npos) << err;
    EXPECT_NE(err.find("core0..core1"), std::string::npos) << err;
    // Aggr targets are global across pods: 2 per pod x 2 pods here.
    ASSERT_TRUE(parseFaultSpec("flap=aggr3,at=1ms,for=1ms", f));
    EXPECT_EQ(validateFaultSpec(f, tiered), "");
    ASSERT_TRUE(parseFaultSpec("flap=aggr4,at=1ms,for=1ms", f));
    err = validateFaultSpec(f, tiered);
    EXPECT_NE(err.find("aggr0..aggr3"), std::string::npos) << err;
}

TEST(FaultSpec, ScenarioSpecCarriesFaultSegments) {
    ScenarioConfig sc;
    ASSERT_TRUE(scenarioFromSpec(
        "uniform+ecmp+fault:flap=aggr0,at=50us,for=10us"
        "+fault:degrade=host1,at=0ns,drop=0.01",
        sc));
    EXPECT_TRUE(sc.ecmpUplinks);
    ASSERT_EQ(sc.faults.size(), 2u);
    EXPECT_EQ(sc.faults[0].kind, FaultKind::Flap);
    EXPECT_EQ(sc.faults[0].targetKind, FaultTargetKind::Aggr);
    EXPECT_EQ(sc.faults[1].kind, FaultKind::Degrade);
    EXPECT_EQ(sc.faults[1].targetKind, FaultTargetKind::Host);
}

TEST(FaultSpec, ScenarioSpecExplainsBadFaultSegments) {
    ScenarioConfig sc;
    std::string err;
    EXPECT_FALSE(scenarioFromSpec("uniform+fault:flap=aggr0,at=1ms", sc, &err));
    EXPECT_NE(err.find("bad fault spec"), std::string::npos) << err;
    EXPECT_NE(err.find("flap needs for="), std::string::npos) << err;
    EXPECT_FALSE(scenarioFromSpec("fault:kill=aggr0,at=1ms", sc, &err));
    EXPECT_NE(err.find("cannot come first"), std::string::npos) << err;
    EXPECT_FALSE(scenarioFromSpec("uniform+emcp", sc, &err));
    EXPECT_NE(err.find("unknown scenario modifier"), std::string::npos) << err;
}

TEST(FaultSpec, FaultSeedDerivationIsStableAndDisjoint) {
    // The fault seed is a pure function of the traffic seed, and distinct
    // from it (fault RNG streams must not alias traffic streams).
    EXPECT_EQ(deriveFaultSeed(99), deriveFaultSeed(99));
    EXPECT_NE(deriveFaultSeed(99), deriveFaultSeed(100));
    EXPECT_NE(deriveFaultSeed(99), 99u);
}

// --------------------------------------------------- conservation law

// External packet ledger. "Injected" counts NIC transmission *starts*
// (PortStats::packetsSent); a packet still sitting in a NIC queue has not
// been injected yet and is deliberately excluded from both sides.
struct Ledger {
    uint64_t injected = 0;       // NIC serializations started
    uint64_t delivered = 0;      // packets handed to a host (Host::deliver)
    uint64_t qdiscDrops = 0;     // switch queue-discipline drops (pFabric)
    uint64_t nicQdiscDrops = 0;  // must stay 0: host queues are unbounded
    uint64_t faultDrops = 0;     // all four fault causes
    uint64_t inFlight = 0;       // on a wire, queued in a switch, in transit
};

Ledger audit(Network& net, const FaultStats& faults) {
    Ledger l;
    l.faultDrops = faults.totalDrops();
    for (HostId h = 0; h < net.hostCount(); h++) {
        Host& host = net.host(h);
        l.injected += host.nic().stats().packetsSent;
        l.delivered += host.rxPackets();
        l.nicQdiscDrops += host.nic().qdisc().stats().dropped;
        if (host.nic().busy()) l.inFlight++;
    }
    auto auditSwitch = [&l](Switch& sw) {
        l.inFlight += sw.transitCount();
        for (int i = 0; i < static_cast<int>(sw.portCount()); i++) {
            const EgressPort& p = sw.port(i);
            l.qdiscDrops += p.qdisc().stats().dropped;
            l.inFlight += p.qdisc().queuedPackets();
            if (p.busy()) l.inFlight++;
        }
    };
    for (int r = 0; r < net.rackCount(); r++) auditSwitch(net.tor(r));
    for (int a = 0; a < net.aggrCount(); a++) auditSwitch(net.aggr(a));
    for (int c = 0; c < net.coreCount(); c++) auditSwitch(net.core(c));
    l.inFlight += net.pendingRemotePackets();
    return l;
}

constexpr Protocol kAllProtocols[] = {Protocol::Homa,  Protocol::Basic,
                                      Protocol::PHost, Protocol::Pias,
                                      Protocol::PFabric, Protocol::Ndp};

// Runs open-loop traffic on a small 3-rack fat tree with the given fault
// specs and checks the conservation law. Returns the collected stats so
// callers can assert on specific drop causes.
FaultStats checkConservation(Protocol kind,
                             const std::vector<std::string>& faultBodies,
                             bool ecmp = false,
                             const std::string& topoSpec = "") {
    NetworkConfig netCfg = NetworkConfig::fatTree144();
    netCfg.racks = 3;
    netCfg.hostsPerRack = 4;
    netCfg.aggrSwitches = 2;
    if (!topoSpec.empty()) {
        std::string terr;
        EXPECT_TRUE(parseTopoSpec(topoSpec, netCfg, &terr))
            << topoSpec << ": " << terr;
    }
    if (ecmp) netCfg.uplinkPolicy = UplinkPolicy::Ecmp;

    ProtocolConfig proto;
    proto.kind = kind;
    netCfg.switchQdisc = switchQdiscFor(proto);

    TrafficConfig traffic;
    traffic.workload = WorkloadId::W2;
    traffic.load = 0.6;
    traffic.seed = 7;
    traffic.stop = milliseconds(1);

    std::vector<FaultSpec> faults;
    for (const std::string& body : faultBodies) {
        FaultSpec f;
        std::string err;
        EXPECT_TRUE(parseFaultSpec(body, f, &err)) << body << ": " << err;
        faults.push_back(f);
    }

    Network net(netCfg,
                makeTransportFactory(proto, netCfg, &workload(traffic.workload)));
    FaultTimeline timeline(net, faults, deriveFaultSeed(traffic.seed));
    timeline.schedule();

    TrafficGenerator gen(net, traffic);
    gen.start();
    runNetworkUntil(net, traffic.stop + milliseconds(2));

    const FaultStats stats = timeline.collect();
    const Ledger l = audit(net, stats);
    EXPECT_GT(l.injected, 0u) << protocolName(kind);
    EXPECT_EQ(l.nicQdiscDrops, 0u) << protocolName(kind);
    EXPECT_EQ(l.injected, l.delivered + l.qdiscDrops + l.faultDrops + l.inFlight)
        << protocolName(kind) << ": injected=" << l.injected
        << " delivered=" << l.delivered << " qdiscDrops=" << l.qdiscDrops
        << " wireDrops=" << stats.wireDrops << " probDrops=" << stats.probDrops
        << " deadIngress=" << stats.deadIngressDrops
        << " flushDrops=" << stats.flushDrops << " inFlight=" << l.inFlight;
    return stats;
}

TEST(FaultConservation, NoFaultBaselineBalances) {
    // The ledger itself must balance before faults enter the picture.
    for (Protocol kind : kAllProtocols) {
        const FaultStats fs = checkConservation(kind, {});
        EXPECT_EQ(fs.totalDrops(), 0u) << protocolName(kind);
    }
}

TEST(FaultConservation, LinkFlapAcrossAllProtocols) {
    for (Protocol kind : kAllProtocols) {
        const FaultStats fs =
            checkConservation(kind, {"flap=aggr0,at=200us,for=150us"});
        EXPECT_EQ(fs.linkDownEvents, 1u) << protocolName(kind);
        EXPECT_EQ(fs.linkUpEvents, 1u) << protocolName(kind);
    }
}

TEST(FaultConservation, SwitchDeathWithEcmpAcrossAllProtocols) {
    for (Protocol kind : kAllProtocols) {
        const FaultStats fs =
            checkConservation(kind, {"kill=aggr1,at=300us"}, /*ecmp=*/true);
        EXPECT_EQ(fs.switchKills, 1u) << protocolName(kind);
    }
}

TEST(FaultConservation, DegradedLinksAcrossAllProtocols) {
    for (Protocol kind : kAllProtocols) {
        const FaultStats fs = checkConservation(
            kind, {"degrade=host2,at=100us,for=500us,bw=0.5,delay=2us,drop=0.05",
                   "degrade=aggr0,at=0ns,drop=0.02"});
        EXPECT_EQ(fs.degradeEvents, 2u) << protocolName(kind);
        EXPECT_GT(fs.probDrops, 0u) << protocolName(kind);
    }
}

TEST(FaultConservation, FlapTrainAndTorDeathCompose) {
    for (Protocol kind : {Protocol::Homa, Protocol::Ndp}) {
        const FaultStats fs = checkConservation(
            kind, {"flap-train=aggr1,at=50us,count=4,gap=150us,for=40us",
                   "kill=tor2,at=600us"});
        EXPECT_EQ(fs.linkDownEvents, 4u) << protocolName(kind);
        EXPECT_EQ(fs.switchKills, 1u) << protocolName(kind);
    }
}

TEST(FaultConservation, ThreeTierLedgerBalances) {
    // The same external accounting, now spanning the core tier: every
    // packet parked in a core switch's transit queue or dropped at a
    // dead core's ingress must show up in the ledger.
    for (Protocol kind : kAllProtocols) {
        const FaultStats fs = checkConservation(
            kind, {}, /*ecmp=*/false, "racks=4,aggr=2,core=2,oversub=4");
        EXPECT_EQ(fs.totalDrops(), 0u) << protocolName(kind);
    }
}

TEST(FaultConservation, ThreeTierCoreFaultsBalance) {
    const FaultStats fs = checkConservation(
        Protocol::Homa,
        {"kill=core0,at=300us", "flap=core1,at=200us,for=150us"},
        /*ecmp=*/true, "racks=4,aggr=2,core=2,oversub=4");
    EXPECT_EQ(fs.switchKills, 1u);
    EXPECT_EQ(fs.linkDownEvents, 1u);
    EXPECT_EQ(fs.linkUpEvents, 1u);
}

TEST(FaultConservation, ThreeTierDegradedCoreLinksBalance) {
    for (Protocol kind : {Protocol::Homa, Protocol::PFabric}) {
        const FaultStats fs = checkConservation(
            kind, {"degrade=core0,at=0ns,drop=0.05"},
            /*ecmp=*/false, "racks=4,aggr=2,core=2,oversub=2");
        EXPECT_EQ(fs.degradeEvents, 1u) << protocolName(kind);
        EXPECT_GT(fs.probDrops, 0u) << protocolName(kind);
    }
}

TEST(FaultConservation, HostDeathAndOverlappingFlaps) {
    // The tor0 and aggr0 windows overlap on the shared tor0<->aggr0 links:
    // the nesting down-count must keep them down until *both* windows end,
    // and the ledger must still balance with a host dead underneath.
    const FaultStats fs = checkConservation(
        Protocol::Homa, {"kill=host5,at=250us", "flap=tor0,at=200us,for=300us",
                         "flap=aggr0,at=300us,for=300us"});
    EXPECT_EQ(fs.linkDownEvents, 2u);
    EXPECT_EQ(fs.switchKills, 1u);
}

TEST(FaultConservation, SerialAndParallelLedgersAgree) {
    // The same faulted run through the parallel engine must produce the
    // same ledger (drops by cause included) — the shard-local fault
    // scheduling argument, checked at the accounting level.
    NetworkConfig netCfg = NetworkConfig::fatTree144();
    netCfg.racks = 3;
    netCfg.hostsPerRack = 4;
    netCfg.aggrSwitches = 2;
    ProtocolConfig proto;
    netCfg.switchQdisc = switchQdiscFor(proto);
    TrafficConfig traffic;
    traffic.workload = WorkloadId::W2;
    traffic.load = 0.6;
    traffic.seed = 7;
    traffic.stop = milliseconds(1);
    FaultSpec flap;
    ASSERT_TRUE(parseFaultSpec("flap=aggr0,at=200us,for=150us", flap));

    auto run = [&](int shards) {
        Network net(netCfg,
                    makeTransportFactory(proto, netCfg,
                                         &workload(traffic.workload)),
                    shards);
        FaultTimeline timeline(net, {flap}, deriveFaultSeed(traffic.seed));
        timeline.schedule();
        TrafficGenerator gen(net, traffic);
        gen.start();
        runNetworkUntil(net, traffic.stop + milliseconds(2));
        const FaultStats fs = timeline.collect();
        Ledger l = audit(net, fs);
        EXPECT_EQ(l.injected,
                  l.delivered + l.qdiscDrops + l.faultDrops + l.inFlight)
            << shards << " shards";
        return std::make_tuple(l.injected, l.delivered, fs.wireDrops,
                               fs.probDrops);
    };
    EXPECT_EQ(run(1), run(3));
}

// ------------------------------------------------------ recovery paths

struct Delivered {
    Message msg;
    DeliveryInfo info;
};

// Network-level Homa fixture (mirrors test_homa_e2e) with direct access
// to port fault hooks, for flaps that target one *direction* of a link.
struct HomaFixture {
    NetworkConfig cfg;
    std::unique_ptr<Network> net;
    std::vector<Delivered> delivered;

    explicit HomaFixture(HomaConfig homa = {})
        : cfg(NetworkConfig::fatTree144()) {
        net = std::make_unique<Network>(
            cfg, HomaTransport::factory(homa, cfg, &workload(WorkloadId::W3)));
        net->setDeliveryCallback([this](const Message& m, const DeliveryInfo& i) {
            delivered.push_back({m, i});
        });
    }

    Message send(HostId src, HostId dst, uint32_t len) {
        Message m;
        m.id = net->nextMsgId();
        m.src = src;
        m.dst = dst;
        m.length = len;
        net->sendMessage(m);
        m.created = net->loop().now();
        return m;
    }

    HomaReceiver& rx(HostId h) {
        return static_cast<HomaTransport&>(net->host(h).transport()).receiver();
    }
};

TEST(FaultRecovery, FlapEatingGrantsRecoversViaResend) {
    // 500 KB cross-rack transfer; the *receiver's* NIC (the link carrying
    // grants) goes down for longer than the resend timeout. The sender
    // stalls once granted bytes run out; the receiver's timeout machinery
    // must RESEND and the transfer must still complete after the link
    // returns.
    HomaFixture f;
    const Message m = f.send(0, 17, 500 * 1000);
    EgressPort& grantLink = f.net->host(17).nic();
    f.net->loop().at(microseconds(100), [&] { grantLink.faultLinkDown(); });
    f.net->loop().at(microseconds(100) + milliseconds(3),
                     [&] { grantLink.faultLinkUp(); });
    f.net->loop().run();
    ASSERT_EQ(f.delivered.size(), 1u);
    EXPECT_EQ(f.delivered[0].msg.id, m.id);
    EXPECT_GE(f.rx(17).resendsSent(), 1u);
    EXPECT_EQ(f.rx(17).abortedMessages(), 0u);
}

TEST(FaultRecovery, FlapEatingDataRecoversViaResend) {
    // Same transfer, but the *sender's* NIC (the link carrying data) goes
    // down: the on-wire data packet is killed (a real loss, not just a
    // delay), so recovery must retransmit the gap, not merely drain queues.
    HomaFixture f;
    const Message m = f.send(0, 17, 500 * 1000);
    EgressPort& dataLink = f.net->host(0).nic();
    f.net->loop().at(microseconds(100), [&] { dataLink.faultLinkDown(); });
    f.net->loop().at(microseconds(100) + milliseconds(3),
                     [&] { dataLink.faultLinkUp(); });
    f.net->loop().run();
    EXPECT_GE(dataLink.stats().faultWireDrops, 1u);  // mid-serialization kill
    ASSERT_EQ(f.delivered.size(), 1u);
    EXPECT_EQ(f.delivered[0].msg.id, m.id);
    EXPECT_GE(f.rx(17).resendsSent(), 1u);
}

TEST(FaultRecovery, ReceiverAbortsWhenSenderDiesPermanently) {
    // The sender's host links die mid-transfer and never return. The
    // receiver must burn through its RESEND budget and abort the partial
    // message instead of spinning forever.
    HomaFixture f;
    f.send(0, 17, 500 * 1000);
    f.net->loop().at(microseconds(100), [&] {
        f.net->host(0).nic().faultKill();
        f.net->downlink(0).faultKill();
    });
    f.net->loop().run();
    EXPECT_TRUE(f.delivered.empty());
    EXPECT_EQ(f.rx(17).abortedMessages(), 1u);
    EXPECT_GE(f.rx(17).resendsSent(), 1u);
}

TEST(FaultRecovery, ClosedLoopWindowRefillsAfterFlap) {
    // Closed-loop traffic through a mid-run aggr flap: the delivery-driven
    // refill chain must resume after the outage (completions far beyond
    // the initial windows) without ever exceeding the window bound.
    ExperimentConfig cfg;
    cfg.traffic.workload = WorkloadId::W1;
    cfg.traffic.stop = milliseconds(2);
    cfg.drainGrace = milliseconds(20);
    cfg.traffic.scenario.kind = TrafficPatternKind::ClosedLoop;
    cfg.traffic.scenario.closedLoopWindow = 4;
    FaultSpec flap;
    ASSERT_TRUE(parseFaultSpec("flap=aggr0,at=500us,for=300us", flap));
    cfg.traffic.scenario.faults.push_back(flap);

    const ExperimentResult r = runExperiment(cfg);
    ASSERT_TRUE(r.faults);
    EXPECT_EQ(r.faults->linkDownEvents, 1u);
    ASSERT_TRUE(r.closedLoop);
    const uint64_t initialWindows =
        static_cast<uint64_t>(cfg.net.hostCount()) * 4u;
    EXPECT_GT(r.closedLoop->totalCompleted(), initialWindows);
    EXPECT_LE(r.maxOutstanding, 4);
}

TEST(FaultRecovery, DagTreesCompleteDespiteMidRunFlap) {
    // Fan-out/fan-in trees keep completing through an aggr outage: a flap
    // in the middle of the run delays but must not wedge the cascade.
    ExperimentConfig cfg;
    cfg.traffic.workload = WorkloadId::W1;
    cfg.traffic.stop = milliseconds(2);
    cfg.drainGrace = milliseconds(20);
    cfg.traffic.scenario.kind = TrafficPatternKind::Dag;
    cfg.traffic.scenario.dag.fanout = 4;
    cfg.traffic.scenario.dag.depth = 2;
    cfg.traffic.scenario.dag.roots = 8;
    FaultSpec flap;
    ASSERT_TRUE(parseFaultSpec("flap=aggr1,at=500us,for=200us", flap));
    cfg.traffic.scenario.faults.push_back(flap);

    const ExperimentResult r = runExperiment(cfg);
    ASSERT_TRUE(r.faults);
    EXPECT_EQ(r.faults->linkDownEvents, 1u);
    ASSERT_TRUE(r.dag);
    EXPECT_GT(r.dag->trees(), 0u);
}

TEST(FaultRecovery, EcmpReroutesAroundDeadAggr) {
    // With ECMP uplinks a dead aggregation switch reroutes: traffic keeps
    // completing after the kill instead of blackholing into dead queues.
    ExperimentConfig cfg;
    cfg.traffic.workload = WorkloadId::W2;
    cfg.traffic.load = 0.5;
    cfg.traffic.stop = milliseconds(2);
    cfg.drainGrace = milliseconds(20);
    cfg.traffic.scenario.ecmpUplinks = true;
    FaultSpec kill;
    ASSERT_TRUE(parseFaultSpec("kill=aggr0,at=200us", kill));
    cfg.traffic.scenario.faults.push_back(kill);

    const ExperimentResult r = runExperiment(cfg);
    ASSERT_TRUE(r.faults);
    EXPECT_EQ(r.faults->switchKills, 1u);
    EXPECT_GT(r.delivered, 0u);
    // The vast majority of messages created after the kill still complete;
    // keptUp is the harness's bounded-backlog check.
    EXPECT_TRUE(r.keptUp);
}

// --------------------------------------------- CLI misuse (--fault/--ecmp)

#ifdef HOMA_RUN_EXPERIMENT_BIN

int runCli(const std::string& args) {
    const std::string cmd = std::string(HOMA_RUN_EXPERIMENT_BIN) + " " +
                            args + " > /dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(FaultCli, RejectsBadFaultSpecs) {
    // Usage errors exit with status 2.
    EXPECT_EQ(runCli("--fault flap=aggr0,at=1ms"), 2);       // missing for=
    EXPECT_EQ(runCli("--fault kill=aggr0,for=1ms"), 2);      // kill + for
    EXPECT_EQ(runCli("--fault degrade=host0,at=1ms"), 2);    // no knobs
    EXPECT_EQ(runCli("--fault bogus=aggr0,at=1ms"), 2);      // unknown kind
    EXPECT_EQ(runCli("--fault flap=aggr0,for=10"), 2);       // unitless time
}

TEST(FaultCli, RejectsTargetsOutsideTheTopology) {
    EXPECT_EQ(runCli("--fault flap=aggr9,at=1ms,for=1ms"), 2);   // 4 aggrs
    EXPECT_EQ(runCli("--fault kill=tor9,at=1ms"), 2);            // 9 racks
    // Target validation runs against the *final* topology, so flag order
    // must not matter.
    EXPECT_EQ(runCli("--fault flap=aggr0,at=1ms,for=1ms --single-rack"), 2);
    EXPECT_EQ(runCli("--single-rack --fault flap=aggr0,at=1ms,for=1ms"), 2);
    EXPECT_EQ(runCli("--ecmp --single-rack"), 2);  // no uplinks to hash over
}

// Captures the combined stdout+stderr of a CLI misuse run so the tests
// can check that the error names the valid target range for the tier.
std::string runCliOutput(const std::string& args) {
    const std::string cmd =
        std::string(HOMA_RUN_EXPERIMENT_BIN) + " " + args + " 2>&1";
    FILE* pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    if (pipe == nullptr) return "";
    std::string out;
    char buf[512];
    while (fgets(buf, sizeof buf, pipe) != nullptr) out += buf;
    pclose(pipe);
    return out;
}

TEST(FaultCli, TargetErrorsNameTheValidRangePerTier) {
    std::string out = runCliOutput("--fault flap=aggr9,at=1ms,for=1ms");
    EXPECT_NE(out.find("aggr0..aggr3"), std::string::npos) << out;
    out = runCliOutput("--fault kill=tor9,at=1ms");
    EXPECT_NE(out.find("tor0..tor8"), std::string::npos) << out;
    out = runCliOutput("--fault kill=host144,at=1ms");
    EXPECT_NE(out.find("host0..host143"), std::string::npos) << out;
    // Core targets need a three-tier --topo; the default tree has none.
    out = runCliOutput("--fault kill=core0,at=1ms");
    EXPECT_NE(out.find("three-tier"), std::string::npos) << out;
    out = runCliOutput(
        "--topo racks=8,aggr=2,core=2 --fault kill=core5,at=1ms");
    EXPECT_NE(out.find("core0..core1"), std::string::npos) << out;
}

TEST(FaultCli, ValidatesTopoSpecsAndCoreTargets) {
    // A core target becomes valid once --topo grows a core layer.
    EXPECT_EQ(runCli("--fault kill=core0,at=1ms"), 2);
    EXPECT_EQ(runCli("--topo racks=8,aggr=2,core=2 --fault kill=core5,at=1ms"),
              2);
    EXPECT_EQ(runCli("--topo racks=9,hosts=0"), 2);      // bad shape
    EXPECT_EQ(runCli("--topo racks=8,pods=3,core=2"), 2);  // pods must divide
    EXPECT_EQ(runCli("--topo bogus=1"), 2);              // unknown key
    EXPECT_EQ(runCli("--topo racks=4 --single-rack"), 2);  // contradiction
}

#endif  // HOMA_RUN_EXPERIMENT_BIN

}  // namespace
}  // namespace homa
