// RPC layer: echo semantics, at-least-once recovery, incast marking.
#include <gtest/gtest.h>

#include "core/rpc.h"
#include "workload/workloads.h"

namespace homa {
namespace {

struct Cluster {
    NetworkConfig cfg = NetworkConfig::singleRack16();
    std::unique_ptr<Network> net;
    std::vector<std::unique_ptr<RpcEndpoint>> eps;

    explicit Cluster(HomaConfig homa = {}) {
        net = std::make_unique<Network>(
            cfg, HomaTransport::factory(homa, cfg, &workload(WorkloadId::W3)));
        for (HostId h = 0; h < net->hostCount(); h++) {
            eps.push_back(std::make_unique<RpcEndpoint>(*net, h));
        }
    }
};

TEST(Rpc, EchoRoundTrip) {
    Cluster c;
    uint32_t gotReq = 0, gotResp = 0;
    Duration elapsed = -1;
    c.eps[0]->call(5, 1000, [&](RpcId, uint32_t req, uint32_t resp, Duration d) {
        gotReq = req;
        gotResp = resp;
        elapsed = d;
    });
    c.net->loop().run();
    EXPECT_EQ(gotReq, 1000u);
    EXPECT_EQ(gotResp, 1000u);  // default handler echoes
    EXPECT_GT(elapsed, 0);
    EXPECT_EQ(c.eps[0]->stats().completed, 1u);
    EXPECT_EQ(c.eps[0]->outstanding(), 0u);
}

TEST(Rpc, CustomHandlerControlsResponseSize) {
    Cluster c;
    c.eps[7]->setHandler([](const Message&) { return 4242u; });
    uint32_t gotResp = 0;
    c.eps[0]->call(7, 100, [&](RpcId, uint32_t, uint32_t resp, Duration) {
        gotResp = resp;
    });
    c.net->loop().run();
    EXPECT_EQ(gotResp, 4242u);
}

TEST(Rpc, ManyConcurrentRpcsAllComplete) {
    Cluster c;
    int completed = 0;
    Rng rng(3);
    for (int i = 0; i < 200; i++) {
        const HostId client = static_cast<HostId>(rng.below(8));
        const HostId server = static_cast<HostId>(8 + rng.below(8));
        c.eps[client]->call(server, 1 + static_cast<uint32_t>(rng.below(20000)),
                            [&](RpcId, uint32_t, uint32_t, Duration) {
                                completed++;
                            });
    }
    c.net->loop().run();
    EXPECT_EQ(completed, 200);
}

TEST(Rpc, ConcurrentRpcsToSameServerCompleteInAnyOrder) {
    // §3.1: a client may have many outstanding RPCs to one server; SRPT
    // means a later small RPC overtakes an earlier big one.
    Cluster c;
    std::vector<uint32_t> completionOrder;
    c.eps[0]->call(5, 2'000'000, [&](RpcId, uint32_t req, uint32_t, Duration) {
        completionOrder.push_back(req);
    });
    c.eps[0]->call(5, 300, [&](RpcId, uint32_t req, uint32_t, Duration) {
        completionOrder.push_back(req);
    });
    c.net->loop().run();
    ASSERT_EQ(completionOrder.size(), 2u);
    EXPECT_EQ(completionOrder[0], 300u);
    EXPECT_EQ(completionOrder[1], 2'000'000u);
}

TEST(Rpc, IncastMarkSetBeyondThreshold) {
    Cluster c;
    c.eps[0]->setIncastThreshold(5);
    // Fire 8 RPCs back-to-back; the 6th onward must carry the mark, which
    // caps the response's unscheduled bytes. We detect it indirectly: all
    // complete, and the endpoint saw > threshold outstanding.
    int completed = 0;
    for (int i = 0; i < 8; i++) {
        c.eps[0]->call(static_cast<HostId>(1 + i), 100,
                       [&](RpcId, uint32_t, uint32_t, Duration) { completed++; });
    }
    EXPECT_EQ(c.eps[0]->outstanding(), 8u);
    c.net->loop().run();
    EXPECT_EQ(completed, 8);
}

TEST(Rpc, LostResponseRecoveredViaResend) {
    // Drop-prone network: tiny switch buffers force real loss; the RPC
    // layer must still complete every call (possibly via retries).
    NetworkConfig cfg = NetworkConfig::singleRack16();
    cfg.switchQdisc = [] {
        StrictPriorityOptions o;
        o.capBytes = 64 * 1500;  // small enough to drop under fan-in
        return std::make_unique<StrictPriorityQdisc>(o);
    };
    Network net(cfg, HomaTransport::factory({}, cfg, &workload(WorkloadId::W3)));
    std::vector<std::unique_ptr<RpcEndpoint>> eps;
    for (HostId h = 0; h < net.hostCount(); h++) {
        eps.push_back(std::make_unique<RpcEndpoint>(net, h));
        eps.back()->setHandler([](const Message&) { return 40000u; });
    }
    int completed = 0;
    for (int s = 1; s <= 15; s++) {
        for (int k = 0; k < 4; k++) {
            eps[0]->call(static_cast<HostId>(s), 64,
                         [&](RpcId, uint32_t, uint32_t, Duration) {
                             completed++;
                         });
        }
    }
    net.loop().run();
    EXPECT_EQ(completed, 60);
}

TEST(Rpc, ResponseIdEncoding) {
    EXPECT_TRUE(isResponseId(5ull | kRpcResponseBit));
    EXPECT_FALSE(isResponseId(5ull));
    EXPECT_EQ(requestIdOf(5ull | kRpcResponseBit), 5ull);
}

TEST(Rpc, StatsTrackIssuedAndCompleted) {
    Cluster c;
    for (int i = 0; i < 10; i++) {
        c.eps[2]->call(9, 500, [](RpcId, uint32_t, uint32_t, Duration) {});
    }
    c.net->loop().run();
    EXPECT_EQ(c.eps[2]->stats().issued, 10u);
    EXPECT_EQ(c.eps[2]->stats().completed, 10u);
    EXPECT_EQ(c.eps[2]->stats().aborted, 0u);
}

}  // namespace
}  // namespace homa
