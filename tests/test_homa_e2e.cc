// End-to-end tests of the Homa transport on the simulated network.
#include <gtest/gtest.h>

#include "core/homa_transport.h"
#include "driver/oracle.h"
#include "sim/network.h"
#include "workload/workloads.h"

namespace homa {
namespace {

struct Delivered {
    Message msg;
    DeliveryInfo info;
};

struct Fixture {
    NetworkConfig cfg;
    std::unique_ptr<Network> net;
    std::vector<Delivered> delivered;

    explicit Fixture(NetworkConfig c = NetworkConfig::fatTree144(),
                     HomaConfig homa = {}) : cfg(c) {
        net = std::make_unique<Network>(
            cfg, HomaTransport::factory(homa, cfg, &workload(WorkloadId::W3)));
        net->setDeliveryCallback([this](const Message& m, const DeliveryInfo& i) {
            delivered.push_back({m, i});
        });
    }

    Message send(HostId src, HostId dst, uint32_t len) {
        Message m;
        m.id = net->nextMsgId();
        m.src = src;
        m.dst = dst;
        m.length = len;
        net->sendMessage(m);
        m.created = net->loop().now();
        return m;
    }
};

TEST(HomaE2E, SingleSmallMessageDelivers) {
    Fixture f;
    f.send(0, 130, 100);
    f.net->loop().run();
    ASSERT_EQ(f.delivered.size(), 1u);
    EXPECT_EQ(f.delivered[0].msg.length, 100u);
    EXPECT_EQ(f.delivered[0].msg.src, 0);
    EXPECT_EQ(f.delivered[0].msg.dst, 130);
}

TEST(HomaE2E, UnloadedLatencyMatchesOracleSmall) {
    // On an idle network Homa should hit the oracle's best case exactly:
    // a single unscheduled packet, no queuing anywhere.
    Fixture f;
    Oracle oracle(f.cfg);
    for (uint32_t size : {1u, 100u, 500u, 1442u}) {
        f.delivered.clear();
        Message m = f.send(1, 20, size);
        f.net->loop().run();
        ASSERT_EQ(f.delivered.size(), 1u) << size;
        const Duration elapsed = f.delivered[0].info.completed - m.created;
        EXPECT_EQ(elapsed, oracle.bestOneWay(size)) << "size=" << size;
    }
}

TEST(HomaE2E, UnloadedLatencyCloseToOracleMultiPacket) {
    // Multi-packet messages pay the grant control loop; on an unloaded
    // network Homa's RTTbytes of blind data hides nearly all of it. Allow
    // a modest margin over the oracle.
    Fixture f;
    Oracle oracle(f.cfg);
    for (uint32_t size : {5000u, 9700u, 20000u, 100000u}) {
        f.delivered.clear();
        Message m = f.send(3, 77, size);
        f.net->loop().run();
        ASSERT_EQ(f.delivered.size(), 1u) << size;
        const Duration elapsed = f.delivered[0].info.completed - m.created;
        const Duration best = oracle.bestOneWay(size);
        EXPECT_GE(elapsed, best) << "size=" << size;
        EXPECT_LE(static_cast<double>(elapsed), 1.25 * static_cast<double>(best))
            << "size=" << size;
    }
}

TEST(HomaE2E, ManyMessagesAllDeliver) {
    Fixture f;
    Rng rng(5);
    const auto& dist = workload(WorkloadId::W3);
    int sent = 0;
    for (int i = 0; i < 200; i++) {
        HostId src = static_cast<HostId>(rng.below(144));
        HostId dst = static_cast<HostId>(rng.below(144));
        if (src == dst) continue;
        f.send(src, dst, dist.sample(rng));
        sent++;
    }
    f.net->loop().run();
    EXPECT_EQ(static_cast<int>(f.delivered.size()), sent);
}

TEST(HomaE2E, BytesConserved) {
    Fixture f;
    Rng rng(6);
    int64_t sentBytes = 0;
    for (int i = 0; i < 50; i++) {
        uint32_t len = 1 + static_cast<uint32_t>(rng.below(50000));
        f.send(static_cast<HostId>(i % 16), 16 + (i % 8), len);
        sentBytes += len;
    }
    f.net->loop().run();
    int64_t gotBytes = 0;
    for (const auto& d : f.delivered) gotBytes += d.msg.length;
    EXPECT_EQ(gotBytes, sentBytes);
}

TEST(HomaE2E, IncastManySendersOneReceiver) {
    // 100 simultaneous 10KB messages into host 0: Homa's grant scheduling
    // must deliver all of them without loss on an unbounded-buffer switch.
    Fixture f;
    for (int s = 1; s <= 100; s++) {
        f.send(static_cast<HostId>(s), 0, 10000);
    }
    f.net->loop().run();
    EXPECT_EQ(f.delivered.size(), 100u);
}

TEST(HomaE2E, SrptShortMessageBeatsLongUnderContention) {
    // Start a 2 MB transfer, then a 300-byte message from another sender to
    // the same receiver: the short one must finish long before the big one.
    Fixture f;
    f.send(1, 0, 2'000'000);
    Message shortMsg;
    f.net->loop().at(microseconds(300), [&] {
        shortMsg = f.send(2, 0, 300);
    });
    f.net->loop().run();
    ASSERT_EQ(f.delivered.size(), 2u);
    EXPECT_EQ(f.delivered[0].msg.length, 300u) << "short must complete first";
    Oracle oracle(f.cfg);
    const Duration shortElapsed =
        f.delivered[0].info.completed - shortMsg.created;
    // Worst case it waits behind one full-size packet per hop plus a bit.
    EXPECT_LT(shortElapsed, 2 * oracle.bestOneWay(300));
}

TEST(HomaE2E, SingleRackClusterWorksToo) {
    Fixture f(NetworkConfig::singleRack16());
    f.send(0, 15, 100);
    f.send(3, 7, 50000);
    f.net->loop().run();
    EXPECT_EQ(f.delivered.size(), 2u);
}

TEST(HomaE2E, DeterministicAcrossRuns) {
    auto run = [] {
        Fixture f;
        Rng rng(42);
        for (int i = 0; i < 100; i++) {
            f.send(static_cast<HostId>(rng.below(144)),
                   static_cast<HostId>(72 + rng.below(72)),
                   1 + static_cast<uint32_t>(rng.below(30000)));
        }
        f.net->loop().run();
        std::vector<std::pair<MsgId, Time>> sig;
        for (const auto& d : f.delivered) {
            sig.emplace_back(d.msg.id, d.info.completed);
        }
        return sig;
    };
    EXPECT_EQ(run(), run());
}

TEST(HomaE2E, GrantsKeepRttBytesOutstanding) {
    // A long transfer on an idle network should proceed at line rate: total
    // time ~ size / 10Gbps. If granting stalled, this would blow up.
    Fixture f;
    const uint32_t size = 1'000'000;
    Message m = f.send(0, 143, size);
    f.net->loop().run();
    ASSERT_EQ(f.delivered.size(), 1u);
    const double seconds = toSeconds(f.delivered[0].info.completed - m.created);
    const double lineRateSeconds =
        static_cast<double>(messageWireBytes(size)) / 1.25e9;
    EXPECT_LT(seconds, 1.1 * lineRateSeconds + 20e-6);
}

}  // namespace
}  // namespace homa
