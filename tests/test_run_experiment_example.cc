// Guard tests for pieces the CLI runner and Figure 1 bench rely on:
// workload name round-trips and byte-weighted CDF sanity.
#include <gtest/gtest.h>

#include "driver/experiment.h"
#include "workload/workloads.h"

namespace homa {
namespace {

TEST(ProtocolNames, RoundTripAllProtocols) {
    for (Protocol p : {Protocol::Homa, Protocol::Basic, Protocol::PHost,
                       Protocol::Pias, Protocol::PFabric, Protocol::Ndp,
                       Protocol::StreamSC, Protocol::StreamMC}) {
        EXPECT_STRNE(protocolName(p), "?");
    }
}

TEST(ByteWeightedCdf, MonotoneAndBounded) {
    for (WorkloadId wl : kAllWorkloads) {
        const auto& d = workload(wl);
        double prev = 0;
        for (double s : {10., 100., 1000., 1e4, 1e5, 1e6, 1e7, 1e8}) {
            const double c = d.byteWeightedCdf(s);
            EXPECT_GE(c, prev) << d.name() << " @ " << s;
            EXPECT_GE(c, 0.0);
            EXPECT_LE(c, 1.0);
            prev = c;
        }
        EXPECT_NEAR(d.byteWeightedCdf(d.maxSize()), 1.0, 1e-9) << d.name();
    }
}

TEST(ByteWeightedCdf, PaperShapeFacts) {
    // Figure 1 lower graph, as stated in §2.1: in W1, more than 70% of all
    // bytes are in messages under 1000 bytes... the paper says "less than
    // 1000 bytes" accounts for >70% of *traffic* for W1 under its ETC
    // model; our anchored model puts ~45% under 1000 and >85% under
    // RTTbytes, preserving the fact that matters for the protocol: almost
    // all W1 bytes travel unscheduled.
    EXPECT_GT(workload(WorkloadId::W1).byteWeightedCdf(9640), 0.80);
    // W5: messages under 100 KB carry ~<1% of bytes (heavy tail).
    EXPECT_LT(workload(WorkloadId::W5).byteWeightedCdf(100000), 0.05);
    // W3 sits in between: roughly half its bytes below ~10 KB.
    const double w3 = workload(WorkloadId::W3).byteWeightedCdf(9640);
    EXPECT_GT(w3, 0.35);
    EXPECT_LT(w3, 0.60);
}

TEST(WorkloadNames, AllParse) {
    for (WorkloadId wl : kAllWorkloads) {
        EXPECT_EQ(workloadFromName(workload(wl).name()), wl);
    }
}

}  // namespace
}  // namespace homa
