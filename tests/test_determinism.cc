// Determinism golden tests: the ARCHITECTURE.md claim that runs replay
// bit-for-bit from a seed, locked in at the harness layer — same seed =>
// byte-identical ExperimentResult fingerprints (counts, slowdown
// percentiles, queue occupancies) across repeated runs and across
// SweepRunner thread counts; different seeds => different results.
#include <gtest/gtest.h>

#include <set>

#include "driver/rpc_experiment.h"
#include "driver/sweep.h"

namespace homa {
namespace {

ExperimentConfig smallConfig(WorkloadId wl, double load,
                             Protocol kind = Protocol::Homa) {
    ExperimentConfig cfg;
    cfg.proto.kind = kind;
    cfg.traffic.workload = wl;
    cfg.traffic.load = load;
    cfg.traffic.stop = milliseconds(2);
    cfg.drainGrace = milliseconds(20);
    return cfg;
}

TEST(Determinism, SameSeedGivesByteIdenticalResults) {
    const ExperimentConfig cfg = smallConfig(WorkloadId::W2, 0.6);
    const ExperimentResult a = runExperiment(cfg);
    EXPECT_GT(a.delivered, 0u);
    EXPECT_EQ(resultFingerprint(a), resultFingerprint(runExperiment(cfg)));
}

TEST(Determinism, SameSeedIdenticalAcrossProtocolsAndScenarios) {
    for (Protocol kind : {Protocol::PFabric, Protocol::Ndp}) {
        ExperimentConfig cfg = smallConfig(WorkloadId::W3, 0.5, kind);
        cfg.traffic.scenario.kind = TrafficPatternKind::RackSkew;
        EXPECT_EQ(resultFingerprint(runExperiment(cfg)),
                  resultFingerprint(runExperiment(cfg)))
            << protocolName(kind);
    }
}

TEST(Determinism, ClosedLoopAndOnOffReplayByteIdentically) {
    // The new arrival modes golden-locked like the Poisson ones: the
    // closed-loop refill chain and the ON-OFF period sequence must replay
    // bit-for-bit from the seed (fingerprints cover the closed-loop
    // per-client metrics too), and a different seed must actually move
    // the results.
    ExperimentConfig closed = smallConfig(WorkloadId::W1, 0.5);
    closed.traffic.scenario.kind = TrafficPatternKind::ClosedLoop;
    closed.traffic.scenario.closedLoopWindow = 4;
    closed.traffic.scenario.thinkTime = microseconds(2);

    ExperimentConfig bursty = smallConfig(WorkloadId::W2, 0.6);
    bursty.traffic.scenario.onOff.enabled = true;

    ExperimentConfig both = closed;
    both.traffic.scenario.onOff.enabled = true;

    for (const ExperimentConfig& cfg : {closed, bursty, both}) {
        const ExperimentResult a = runExperiment(cfg);
        EXPECT_GT(a.delivered, 0u);
        EXPECT_EQ(resultFingerprint(a), resultFingerprint(runExperiment(cfg)));
        ExperimentConfig reseeded = cfg;
        reseeded.traffic.seed = cfg.traffic.seed + 1;
        EXPECT_NE(resultFingerprint(a),
                  resultFingerprint(runExperiment(reseeded)));
    }
}

TEST(Determinism, DagTreesReplayByteIdentically) {
    // The DAG engine's whole cascade — tree shapes, per-node sizes, child
    // requests, fan-in completions, window refills — must replay
    // bit-for-bit from the seed; fingerprints cover the per-tree metrics.
    ExperimentConfig cfg = smallConfig(WorkloadId::W1, 0.5);
    cfg.traffic.scenario.kind = TrafficPatternKind::Dag;
    cfg.traffic.scenario.dag.fanout = 4;
    cfg.traffic.scenario.dag.depth = 2;
    cfg.traffic.scenario.dag.roots = 8;
    cfg.traffic.scenario.dag.stageResponseBytes = {4000, 1000};

    ExperimentConfig bursty = cfg;
    bursty.traffic.scenario.onOff.enabled = true;

    ExperimentConfig sampledSizes = cfg;  // workload-sampled responses
    sampledSizes.traffic.scenario.dag.stageResponseBytes.clear();

    for (const ExperimentConfig& point : {cfg, bursty, sampledSizes}) {
        const ExperimentResult a = runExperiment(point);
        EXPECT_GT(a.delivered, 0u);
        ASSERT_TRUE(a.dag);
        EXPECT_GT(a.dag->trees(), 0u);
        EXPECT_EQ(resultFingerprint(a), resultFingerprint(runExperiment(point)));
        ExperimentConfig reseeded = point;
        reseeded.traffic.seed = point.traffic.seed + 1;
        EXPECT_NE(resultFingerprint(a),
                  resultFingerprint(runExperiment(reseeded)));
    }
}

TEST(Determinism, DifferentSeedsGiveDifferentResults) {
    ExperimentConfig a = smallConfig(WorkloadId::W2, 0.6);
    ExperimentConfig b = a;
    b.traffic.seed = a.traffic.seed + 1;
    EXPECT_NE(resultFingerprint(runExperiment(a)),
              resultFingerprint(runExperiment(b)));
}

TEST(SweepRunner, ResultsIdenticalAtOneAndManyThreads) {
    // A mixed grid: protocols, workloads, and scenarios. The contract: the
    // fingerprint of every point is byte-identical whatever the thread
    // count, because each point is an isolated simulation and collection
    // order is the input order.
    std::vector<ExperimentConfig> points;
    points.push_back(smallConfig(WorkloadId::W1, 0.5));
    points.push_back(smallConfig(WorkloadId::W3, 0.7, Protocol::PFabric));
    ExperimentConfig incast = smallConfig(WorkloadId::W2, 0.6);
    incast.traffic.scenario.kind = TrafficPatternKind::Incast;
    points.push_back(incast);
    ExperimentConfig perm = smallConfig(WorkloadId::W2, 0.6, Protocol::Pias);
    perm.traffic.scenario.kind = TrafficPatternKind::Permutation;
    points.push_back(perm);
    ExperimentConfig closed = smallConfig(WorkloadId::W1, 0.5);
    closed.traffic.scenario.kind = TrafficPatternKind::ClosedLoop;
    closed.traffic.scenario.closedLoopWindow = 4;
    points.push_back(closed);
    ExperimentConfig bursty = smallConfig(WorkloadId::W1, 0.6);
    bursty.traffic.scenario.onOff.enabled = true;
    points.push_back(bursty);
    ExperimentConfig burstyClosed = closed;
    burstyClosed.traffic.scenario.onOff.enabled = true;
    points.push_back(burstyClosed);
    ExperimentConfig dag = smallConfig(WorkloadId::W1, 0.5);
    dag.traffic.scenario.kind = TrafficPatternKind::Dag;
    dag.traffic.scenario.dag.fanout = 4;
    dag.traffic.scenario.dag.depth = 2;
    dag.traffic.scenario.dag.roots = 8;
    points.push_back(dag);
    ExperimentConfig burstyDag = dag;
    burstyDag.traffic.scenario.onOff.enabled = true;
    burstyDag.proto.kind = Protocol::PFabric;
    points.push_back(burstyDag);

    SweepOptions serial;
    serial.threads = 1;
    serial.deriveSeeds = true;
    SweepOptions parallel = serial;
    parallel.threads = 4;

    SweepOutcome one = SweepRunner(serial).run(points);
    SweepOutcome many = SweepRunner(parallel).run(points);
    ASSERT_EQ(one.results.size(), points.size());
    ASSERT_EQ(many.results.size(), points.size());
    for (size_t i = 0; i < points.size(); i++) {
        EXPECT_GT(one.results[i].delivered, 0u) << "point " << i;
        EXPECT_EQ(resultFingerprint(one.results[i]),
                  resultFingerprint(many.results[i]))
            << "point " << i;
    }
}

TEST(ParallelDeterminism, MatchesSerialAcrossAllProtocols) {
    // The tentpole contract of the parallel engine (sim/parallel.h): a run
    // sharded across worker threads is byte-identical to the serial run —
    // not statistically close, the same fingerprint — for every protocol.
    // Conservative windows + the canonical switch-transit order make the
    // event interleaving a pure function of the configuration.
    for (Protocol kind : {Protocol::Homa, Protocol::Basic, Protocol::PHost,
                          Protocol::Pias, Protocol::PFabric, Protocol::Ndp}) {
        ExperimentConfig cfg = smallConfig(WorkloadId::W2, 0.6, kind);
        const ExperimentResult serial = runExperiment(cfg);
        EXPECT_GT(serial.delivered, 0u) << protocolName(kind);
        cfg.parallel.threads = 4;
        EXPECT_EQ(resultFingerprint(serial),
                  resultFingerprint(runExperiment(cfg)))
            << protocolName(kind);
    }
}

TEST(ParallelDeterminism, FingerprintInvariantAcrossThreadCounts) {
    // Not just serial == 4 threads: every thread count lands on the same
    // bytes (shard count changes which loop owns which rack, but the
    // window protocol replays the same global event order regardless).
    ExperimentConfig cfg = smallConfig(WorkloadId::W3, 0.7);
    cfg.parallel.threads = 1;
    const std::string golden = resultFingerprint(runExperiment(cfg));
    for (int threads : {2, 3, 4}) {
        cfg.parallel.threads = threads;
        EXPECT_EQ(golden, resultFingerprint(runExperiment(cfg)))
            << threads << " threads";
    }
}

TEST(ParallelDeterminism, MatchesSerialAcrossScenarios) {
    // Scenario machinery exercises different generator paths (per-host
    // arrival processes, ON-OFF modulation, trace replay with explicit
    // cross-rack sends) — all must replay identically under sharding.
    ExperimentConfig incast = smallConfig(WorkloadId::W2, 0.6);
    incast.traffic.scenario.kind = TrafficPatternKind::Incast;

    ExperimentConfig skew = smallConfig(WorkloadId::W3, 0.5, Protocol::PFabric);
    skew.traffic.scenario.kind = TrafficPatternKind::RackSkew;

    ExperimentConfig perm = smallConfig(WorkloadId::W2, 0.6, Protocol::Pias);
    perm.traffic.scenario.kind = TrafficPatternKind::Permutation;

    ExperimentConfig bursty = smallConfig(WorkloadId::W1, 0.6);
    bursty.traffic.scenario.onOff.enabled = true;

    ExperimentConfig trace = smallConfig(WorkloadId::W1, 0.5);
    trace.traffic.scenario.kind = TrafficPatternKind::TraceReplay;
    trace.traffic.scenario.traceText =
        "100 0 17 20000\n"    // cross-rack (rack 0 -> rack 1)
        "100 17 0 20000\n"    // simultaneous reverse direction
        "150 5 130 150000\n"  // rack 0 -> rack 8, spans many windows
        "150 131 6 1000\n"
        "900 40 41 500\n";    // rack-local, stays inside one shard

    for (const ExperimentConfig& point : {incast, skew, perm, bursty, trace}) {
        ExperimentConfig par = point;
        par.parallel.threads = 4;
        const ExperimentResult a = runExperiment(point);
        EXPECT_GT(a.deliveredTotal, 0u) << patternName(point.traffic.scenario.kind);
        EXPECT_EQ(resultFingerprint(a), resultFingerprint(runExperiment(par)))
            << patternName(point.traffic.scenario.kind);
    }
}

TEST(ParallelDeterminism, ZeroLookaheadScenariosFallBackToSerial) {
    // Closed-loop and DAG scenarios react to deliveries with zero
    // lookahead, so the driver runs them single-shard whatever
    // parallel.threads says — the knob must be a no-op, not a crash or a
    // divergence.
    ExperimentConfig closed = smallConfig(WorkloadId::W1, 0.5);
    closed.traffic.scenario.kind = TrafficPatternKind::ClosedLoop;
    closed.traffic.scenario.closedLoopWindow = 4;

    ExperimentConfig dag = smallConfig(WorkloadId::W1, 0.5);
    dag.traffic.scenario.kind = TrafficPatternKind::Dag;
    dag.traffic.scenario.dag.fanout = 4;
    dag.traffic.scenario.dag.depth = 2;
    dag.traffic.scenario.dag.roots = 8;

    for (const ExperimentConfig& point : {closed, dag}) {
        ExperimentConfig par = point;
        par.parallel.threads = 4;
        EXPECT_EQ(resultFingerprint(runExperiment(point)),
                  resultFingerprint(runExperiment(par)));
    }
}

TEST(ParallelDeterminism, SingleRackClampsToOneShard) {
    // A single-switch topology has no cross-shard seam to cut, so the
    // shard count clamps to 1: asking for threads must be identity.
    ExperimentConfig cfg = smallConfig(WorkloadId::W2, 0.6);
    cfg.net = NetworkConfig::singleRack16();
    const std::string golden = resultFingerprint(runExperiment(cfg));
    cfg.parallel.threads = 8;
    EXPECT_EQ(golden, resultFingerprint(runExperiment(cfg)));
}

TEST(ParallelDeterminism, SweepSimThreadsComposesByteIdentically) {
    // SweepOptions::simThreads stacks shard-level parallelism under
    // point-level fan-out; the composition must still reproduce the
    // serial sweep bit-for-bit (same derived seeds, same fingerprints).
    std::vector<ExperimentConfig> points;
    points.push_back(smallConfig(WorkloadId::W1, 0.5));
    points.push_back(smallConfig(WorkloadId::W3, 0.7, Protocol::PFabric));

    SweepOptions serial;
    serial.threads = 1;
    serial.deriveSeeds = true;
    SweepOptions stacked = serial;
    stacked.threads = 2;
    stacked.simThreads = 3;

    SweepOutcome one = SweepRunner(serial).run(points);
    SweepOutcome many = SweepRunner(stacked).run(points);
    ASSERT_EQ(one.results.size(), many.results.size());
    for (size_t i = 0; i < one.results.size(); i++) {
        EXPECT_EQ(resultFingerprint(one.results[i]),
                  resultFingerprint(many.results[i]))
            << "point " << i;
    }
}

// ------------------------------------------------------ fault goldens

ExperimentConfig faultConfig(Protocol kind, const std::string& faultBody,
                             bool ecmp = false) {
    ExperimentConfig cfg = smallConfig(WorkloadId::W2, 0.6, kind);
    FaultSpec f;
    std::string err;
    EXPECT_TRUE(parseFaultSpec(faultBody, f, &err)) << faultBody << ": " << err;
    cfg.traffic.scenario.faults.push_back(f);
    cfg.traffic.scenario.ecmpUplinks = ecmp;
    return cfg;
}

TEST(FaultDeterminism, FaultRunsReplayByteIdentically) {
    // A faulted run is still a pure function of the seed: the flap
    // schedule, the degrade RNG draws, and the flap-train expansion all
    // derive from it, so same seed => same fingerprint (fault counters
    // included), different seed => different results.
    for (const char* body :
         {"flap=aggr0,at=500us,for=200us",
          "degrade=aggr1,at=200us,for=1ms,bw=0.5,drop=0.02",
          "flap-train=aggr2,at=100us,count=5,gap=300us,for=80us"}) {
        ExperimentConfig cfg = faultConfig(Protocol::Homa, body);
        const ExperimentResult a = runExperiment(cfg);
        ASSERT_TRUE(a.faults) << body;
        EXPECT_GT(a.delivered, 0u) << body;
        EXPECT_EQ(resultFingerprint(a), resultFingerprint(runExperiment(cfg)))
            << body;
        ExperimentConfig reseeded = cfg;
        reseeded.traffic.seed = cfg.traffic.seed + 1;
        EXPECT_NE(resultFingerprint(a),
                  resultFingerprint(runExperiment(reseeded)))
            << body;
    }
}

TEST(FaultDeterminism, SerialEqualsParallelUnderFaults) {
    // The fault layer composes with the parallel engine: every primitive
    // action lands on its owning shard's loop before the run starts, so a
    // faulted sharded run is byte-identical to the serial one — including
    // the drop-by-cause counters in the fingerprint.
    struct Case {
        Protocol kind;
        const char* body;
        bool ecmp;
    };
    const Case cases[] = {
        {Protocol::Homa, "flap=aggr0,at=500us,for=200us", false},
        {Protocol::PFabric, "degrade=aggr1,at=200us,for=1ms,bw=0.5,drop=0.02",
         false},
        {Protocol::Ndp, "kill=aggr0,at=400us", true},
        {Protocol::Basic, "flap-train=tor1,at=100us,count=4,gap=250us,for=60us",
         false},
    };
    for (const Case& c : cases) {
        ExperimentConfig cfg = faultConfig(c.kind, c.body, c.ecmp);
        const ExperimentResult serial = runExperiment(cfg);
        ASSERT_TRUE(serial.faults) << c.body;
        EXPECT_GT(serial.faults->linkDownEvents + serial.faults->switchKills +
                      serial.faults->degradeEvents,
                  0u)
            << c.body;
        cfg.parallel.threads = 4;
        EXPECT_EQ(resultFingerprint(serial),
                  resultFingerprint(runExperiment(cfg)))
            << protocolName(c.kind) << " " << c.body;
    }
}

TEST(SweepRunner, FaultPointsIdenticalAtOneAndManyThreads) {
    // Fault scenarios ride through the sweep fan-out like any other point.
    std::vector<ExperimentConfig> points;
    points.push_back(faultConfig(Protocol::Homa, "flap=aggr0,at=500us,for=200us"));
    points.push_back(faultConfig(Protocol::PFabric, "kill=aggr1,at=400us",
                                 /*ecmp=*/true));
    points.push_back(smallConfig(WorkloadId::W1, 0.5));  // fault-free control

    SweepOptions serial;
    serial.threads = 1;
    serial.deriveSeeds = true;
    SweepOptions parallel = serial;
    parallel.threads = 4;

    const SweepOutcome one = SweepRunner(serial).run(points);
    const SweepOutcome many = SweepRunner(parallel).run(points);
    ASSERT_EQ(one.results.size(), many.results.size());
    ASSERT_TRUE(one.results[0].faults);
    ASSERT_FALSE(one.results[2].faults);
    for (size_t i = 0; i < one.results.size(); i++) {
        EXPECT_EQ(resultFingerprint(one.results[i]),
                  resultFingerprint(many.results[i]))
            << "point " << i;
    }
}

TEST(SweepRunner, DerivedSeedsDifferPerPointAndReproduce) {
    // Two sweep points with identical configs must still run different
    // experiments (per-point seed derivation) ...
    ExperimentConfig cfg = smallConfig(WorkloadId::W1, 0.5);
    SweepOptions opts;
    opts.threads = 2;
    opts.deriveSeeds = true;
    SweepOutcome out = SweepRunner(opts).run({cfg, cfg});
    EXPECT_NE(resultFingerprint(out.results[0]),
              resultFingerprint(out.results[1]));
    // ... and running point i standalone with the derived seed reproduces
    // the sweep's result exactly (the documented seed-derivation rule).
    cfg.traffic.seed = deriveSweepSeed(opts.baseSeed, 1);
    EXPECT_EQ(resultFingerprint(runExperiment(cfg)),
              resultFingerprint(out.results[1]));
}

// --------------------------------------------------- serving goldens

// A serving mix exercising all three selector policies, hedging, and
// both arrival modes — everything the serving fingerprint covers.
RpcExperimentConfig servingConfig(uint64_t seed = 31) {
    RpcExperimentConfig cfg;
    cfg.net = NetworkConfig::singleRack16();
    cfg.seed = seed;
    cfg.stop = milliseconds(3);

    TenantConfig open;
    open.name = "open";
    open.workload = WorkloadId::W1;
    open.mode = ArrivalMode::Open;
    open.load = 0.4;
    open.clients = 4;
    TenantConfig closed;
    closed.name = "closed";
    closed.workload = WorkloadId::W2;
    closed.mode = ArrivalMode::Closed;
    closed.window = 4;
    closed.clients = 2;
    closed.group = "bulk";

    ReplicaGroupConfig fast;  // hedged p2c pool
    fast.name = "fast";
    fast.replicas = 5;
    fast.policy = LbPolicy::PowerOfTwo;
    fast.hedgePercentile = 0.90;
    fast.hedgeMinSamples = 8;
    ReplicaGroupConfig bulk;
    bulk.name = "bulk";
    bulk.replicas = 0;
    bulk.policy = LbPolicy::RoundRobin;

    cfg.serving.tenants = {open, closed};
    cfg.serving.groups = {fast, bulk};
    return cfg;
}

TEST(ServingDeterminism, SameSeedReplaysByteIdentically) {
    // Tenants + replica selection + hedging are all derived from the
    // seed: the whole serving cascade — arrival draws, p2c depth
    // tie-breaks, hedge timers, cancellations — must replay bit-for-bit,
    // and a different seed must actually move the results.
    const RpcExperimentConfig cfg = servingConfig();
    const RpcExperimentResult a = runRpcExperiment(cfg);
    ASSERT_TRUE(a.tenants);
    EXPECT_GT(a.serving.logicalCompleted, 0u);
    EXPECT_GT(a.serving.hedgesIssued, 0u);
    EXPECT_EQ(resultFingerprint(a), resultFingerprint(runRpcExperiment(cfg)));
    EXPECT_NE(resultFingerprint(a),
              resultFingerprint(runRpcExperiment(servingConfig(32))));
}

TEST(ServingDeterminism, SerialEqualsParallelKnob) {
    // The serving harness orchestrates every tenant from one loop, so
    // parallel.threads must be inert — same bytes, not just same stats.
    for (Protocol kind : {Protocol::Homa, Protocol::PFabric, Protocol::Ndp}) {
        RpcExperimentConfig cfg = servingConfig();
        cfg.proto.kind = kind;
        const RpcExperimentResult serial = runRpcExperiment(cfg);
        cfg.parallel.threads = 4;
        EXPECT_EQ(resultFingerprint(serial),
                  resultFingerprint(runRpcExperiment(cfg)))
            << protocolName(kind);
    }
}

TEST(ServingDeterminism, SweepPointsIdenticalAtOneAndManyThreads) {
    // Serving points ride the RPC sweep fan-out: per-point derived seeds,
    // collection in input order, byte-identical whatever the width.
    std::vector<RpcExperimentConfig> points;
    points.push_back(servingConfig());
    RpcExperimentConfig random = servingConfig();
    random.serving.groups[0].policy = LbPolicy::Random;
    points.push_back(random);
    RpcExperimentConfig unhedged = servingConfig();
    unhedged.serving.groups[0].hedgePercentile = 0;
    points.push_back(unhedged);

    SweepOptions serial;
    serial.threads = 1;
    serial.deriveSeeds = true;
    SweepOptions parallel = serial;
    parallel.threads = 4;

    const RpcSweepOutcome one = runRpcSweep(points, serial);
    const RpcSweepOutcome many = runRpcSweep(points, parallel);
    ASSERT_EQ(one.results.size(), points.size());
    ASSERT_EQ(many.results.size(), points.size());
    for (size_t i = 0; i < points.size(); i++) {
        EXPECT_GT(one.results[i].serving.logicalCompleted, 0u)
            << "point " << i;
        EXPECT_EQ(resultFingerprint(one.results[i]),
                  resultFingerprint(many.results[i]))
            << "point " << i;
    }
    // Identical configs at different grid indices still differ (per-point
    // seed derivation), and the derived seed reproduces the point.
    EXPECT_NE(resultFingerprint(one.results[0]),
              resultFingerprint(one.results[1]));
    RpcExperimentConfig standalone = points[2];
    standalone.seed = deriveSweepSeed(serial.baseSeed, 2);
    EXPECT_EQ(resultFingerprint(runRpcExperiment(standalone)),
              resultFingerprint(one.results[2]));
}

TEST(ServingDeterminism, NoTenantsFingerprintHasNoServingBlock) {
    // The serving block is gated on the tracker's presence: a plain RPC
    // run's fingerprint must not grow tenant keys just because the
    // serving layer exists — existing goldens stay byte-identical.
    RpcExperimentConfig cfg;
    cfg.net = NetworkConfig::singleRack16();
    cfg.stop = milliseconds(2);
    const RpcExperimentResult r = runRpcExperiment(cfg);
    ASSERT_FALSE(r.tenants);
    const std::string fp = resultFingerprint(r);
    EXPECT_EQ(fp.find("tn"), std::string::npos) << fp;
    EXPECT_EQ(fp.find("sv"), std::string::npos) << fp;
    EXPECT_EQ(resultFingerprint(r), resultFingerprint(runRpcExperiment(cfg)));
}

TEST(SweepRunner, SeedDerivationIsAPureSpreadFunction) {
    std::set<uint64_t> seen;
    for (uint64_t base : {0ull, 99ull, 1ull << 63}) {
        for (uint64_t i = 0; i < 100; i++) {
            EXPECT_EQ(deriveSweepSeed(base, i), deriveSweepSeed(base, i));
            seen.insert(deriveSweepSeed(base, i));
        }
    }
    EXPECT_EQ(seen.size(), 300u);  // no collisions across bases or indices
}

}  // namespace
}  // namespace homa
