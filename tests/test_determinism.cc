// Determinism golden tests: the ARCHITECTURE.md claim that runs replay
// bit-for-bit from a seed, locked in at the harness layer — same seed =>
// byte-identical ExperimentResult fingerprints (counts, slowdown
// percentiles, queue occupancies) across repeated runs and across
// SweepRunner thread counts; different seeds => different results.
#include <gtest/gtest.h>

#include <set>

#include "driver/sweep.h"

namespace homa {
namespace {

ExperimentConfig smallConfig(WorkloadId wl, double load,
                             Protocol kind = Protocol::Homa) {
    ExperimentConfig cfg;
    cfg.proto.kind = kind;
    cfg.traffic.workload = wl;
    cfg.traffic.load = load;
    cfg.traffic.stop = milliseconds(2);
    cfg.drainGrace = milliseconds(20);
    return cfg;
}

TEST(Determinism, SameSeedGivesByteIdenticalResults) {
    const ExperimentConfig cfg = smallConfig(WorkloadId::W2, 0.6);
    const ExperimentResult a = runExperiment(cfg);
    EXPECT_GT(a.delivered, 0u);
    EXPECT_EQ(resultFingerprint(a), resultFingerprint(runExperiment(cfg)));
}

TEST(Determinism, SameSeedIdenticalAcrossProtocolsAndScenarios) {
    for (Protocol kind : {Protocol::PFabric, Protocol::Ndp}) {
        ExperimentConfig cfg = smallConfig(WorkloadId::W3, 0.5, kind);
        cfg.traffic.scenario.kind = TrafficPatternKind::RackSkew;
        EXPECT_EQ(resultFingerprint(runExperiment(cfg)),
                  resultFingerprint(runExperiment(cfg)))
            << protocolName(kind);
    }
}

TEST(Determinism, ClosedLoopAndOnOffReplayByteIdentically) {
    // The new arrival modes golden-locked like the Poisson ones: the
    // closed-loop refill chain and the ON-OFF period sequence must replay
    // bit-for-bit from the seed (fingerprints cover the closed-loop
    // per-client metrics too), and a different seed must actually move
    // the results.
    ExperimentConfig closed = smallConfig(WorkloadId::W1, 0.5);
    closed.traffic.scenario.kind = TrafficPatternKind::ClosedLoop;
    closed.traffic.scenario.closedLoopWindow = 4;
    closed.traffic.scenario.thinkTime = microseconds(2);

    ExperimentConfig bursty = smallConfig(WorkloadId::W2, 0.6);
    bursty.traffic.scenario.onOff.enabled = true;

    ExperimentConfig both = closed;
    both.traffic.scenario.onOff.enabled = true;

    for (const ExperimentConfig& cfg : {closed, bursty, both}) {
        const ExperimentResult a = runExperiment(cfg);
        EXPECT_GT(a.delivered, 0u);
        EXPECT_EQ(resultFingerprint(a), resultFingerprint(runExperiment(cfg)));
        ExperimentConfig reseeded = cfg;
        reseeded.traffic.seed = cfg.traffic.seed + 1;
        EXPECT_NE(resultFingerprint(a),
                  resultFingerprint(runExperiment(reseeded)));
    }
}

TEST(Determinism, DagTreesReplayByteIdentically) {
    // The DAG engine's whole cascade — tree shapes, per-node sizes, child
    // requests, fan-in completions, window refills — must replay
    // bit-for-bit from the seed; fingerprints cover the per-tree metrics.
    ExperimentConfig cfg = smallConfig(WorkloadId::W1, 0.5);
    cfg.traffic.scenario.kind = TrafficPatternKind::Dag;
    cfg.traffic.scenario.dag.fanout = 4;
    cfg.traffic.scenario.dag.depth = 2;
    cfg.traffic.scenario.dag.roots = 8;
    cfg.traffic.scenario.dag.stageResponseBytes = {4000, 1000};

    ExperimentConfig bursty = cfg;
    bursty.traffic.scenario.onOff.enabled = true;

    ExperimentConfig sampledSizes = cfg;  // workload-sampled responses
    sampledSizes.traffic.scenario.dag.stageResponseBytes.clear();

    for (const ExperimentConfig& point : {cfg, bursty, sampledSizes}) {
        const ExperimentResult a = runExperiment(point);
        EXPECT_GT(a.delivered, 0u);
        ASSERT_TRUE(a.dag);
        EXPECT_GT(a.dag->trees(), 0u);
        EXPECT_EQ(resultFingerprint(a), resultFingerprint(runExperiment(point)));
        ExperimentConfig reseeded = point;
        reseeded.traffic.seed = point.traffic.seed + 1;
        EXPECT_NE(resultFingerprint(a),
                  resultFingerprint(runExperiment(reseeded)));
    }
}

TEST(Determinism, DifferentSeedsGiveDifferentResults) {
    ExperimentConfig a = smallConfig(WorkloadId::W2, 0.6);
    ExperimentConfig b = a;
    b.traffic.seed = a.traffic.seed + 1;
    EXPECT_NE(resultFingerprint(runExperiment(a)),
              resultFingerprint(runExperiment(b)));
}

TEST(SweepRunner, ResultsIdenticalAtOneAndManyThreads) {
    // A mixed grid: protocols, workloads, and scenarios. The contract: the
    // fingerprint of every point is byte-identical whatever the thread
    // count, because each point is an isolated simulation and collection
    // order is the input order.
    std::vector<ExperimentConfig> points;
    points.push_back(smallConfig(WorkloadId::W1, 0.5));
    points.push_back(smallConfig(WorkloadId::W3, 0.7, Protocol::PFabric));
    ExperimentConfig incast = smallConfig(WorkloadId::W2, 0.6);
    incast.traffic.scenario.kind = TrafficPatternKind::Incast;
    points.push_back(incast);
    ExperimentConfig perm = smallConfig(WorkloadId::W2, 0.6, Protocol::Pias);
    perm.traffic.scenario.kind = TrafficPatternKind::Permutation;
    points.push_back(perm);
    ExperimentConfig closed = smallConfig(WorkloadId::W1, 0.5);
    closed.traffic.scenario.kind = TrafficPatternKind::ClosedLoop;
    closed.traffic.scenario.closedLoopWindow = 4;
    points.push_back(closed);
    ExperimentConfig bursty = smallConfig(WorkloadId::W1, 0.6);
    bursty.traffic.scenario.onOff.enabled = true;
    points.push_back(bursty);
    ExperimentConfig burstyClosed = closed;
    burstyClosed.traffic.scenario.onOff.enabled = true;
    points.push_back(burstyClosed);
    ExperimentConfig dag = smallConfig(WorkloadId::W1, 0.5);
    dag.traffic.scenario.kind = TrafficPatternKind::Dag;
    dag.traffic.scenario.dag.fanout = 4;
    dag.traffic.scenario.dag.depth = 2;
    dag.traffic.scenario.dag.roots = 8;
    points.push_back(dag);
    ExperimentConfig burstyDag = dag;
    burstyDag.traffic.scenario.onOff.enabled = true;
    burstyDag.proto.kind = Protocol::PFabric;
    points.push_back(burstyDag);

    SweepOptions serial;
    serial.threads = 1;
    serial.deriveSeeds = true;
    SweepOptions parallel = serial;
    parallel.threads = 4;

    SweepOutcome one = SweepRunner(serial).run(points);
    SweepOutcome many = SweepRunner(parallel).run(points);
    ASSERT_EQ(one.results.size(), points.size());
    ASSERT_EQ(many.results.size(), points.size());
    for (size_t i = 0; i < points.size(); i++) {
        EXPECT_GT(one.results[i].delivered, 0u) << "point " << i;
        EXPECT_EQ(resultFingerprint(one.results[i]),
                  resultFingerprint(many.results[i]))
            << "point " << i;
    }
}

TEST(SweepRunner, DerivedSeedsDifferPerPointAndReproduce) {
    // Two sweep points with identical configs must still run different
    // experiments (per-point seed derivation) ...
    ExperimentConfig cfg = smallConfig(WorkloadId::W1, 0.5);
    SweepOptions opts;
    opts.threads = 2;
    opts.deriveSeeds = true;
    SweepOutcome out = SweepRunner(opts).run({cfg, cfg});
    EXPECT_NE(resultFingerprint(out.results[0]),
              resultFingerprint(out.results[1]));
    // ... and running point i standalone with the derived seed reproduces
    // the sweep's result exactly (the documented seed-derivation rule).
    cfg.traffic.seed = deriveSweepSeed(opts.baseSeed, 1);
    EXPECT_EQ(resultFingerprint(runExperiment(cfg)),
              resultFingerprint(out.results[1]));
}

TEST(SweepRunner, SeedDerivationIsAPureSpreadFunction) {
    std::set<uint64_t> seen;
    for (uint64_t base : {0ull, 99ull, 1ull << 63}) {
        for (uint64_t i = 0; i < 100; i++) {
            EXPECT_EQ(deriveSweepSeed(base, i), deriveSweepSeed(base, i));
            seen.insert(deriveSweepSeed(base, i));
        }
    }
    EXPECT_EQ(seen.size(), 300u);  // no collisions across bases or indices
}

}  // namespace
}  // namespace homa
