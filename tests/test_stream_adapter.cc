// The byte-stream layer over Homa (§3.1/§3.8 future work).
#include <gtest/gtest.h>

#include "core/rpc.h"
#include "core/stream_adapter.h"
#include "workload/workloads.h"

namespace homa {
namespace {

struct Pair {
    NetworkConfig cfg = NetworkConfig::singleRack16();
    std::unique_ptr<Network> net;
    std::vector<std::unique_ptr<StreamMux>> muxes;

    Pair() {
        net = std::make_unique<Network>(
            cfg, HomaTransport::factory({}, cfg, &workload(WorkloadId::W3)));
        for (HostId h = 0; h < net->hostCount(); h++) {
            muxes.push_back(std::make_unique<StreamMux>(*net, h));
        }
    }
};

TEST(StreamIds, EncodingRoundTrips) {
    const MsgId id = streamMessageId(97, 1234, 987654321);
    EXPECT_EQ(streamIdOf(id), 1234u);
    EXPECT_EQ(streamSeqOf(id), 987654321u);
    EXPECT_FALSE(isResponseId(id));  // top bit reserved for RPC responses
    // Different hosts never collide.
    EXPECT_NE(streamMessageId(1, 1, 0), streamMessageId(2, 1, 0));
}

TEST(StreamAdapter, BytesArriveInOrder) {
    Pair p;
    const uint32_t sid = p.muxes[0]->openStream(7);
    uint64_t got = 0;
    bool ordered = true;
    uint64_t expectSeqStart = 0;
    p.muxes[7]->setReadCallback(
        [&](HostId from, uint32_t stream, const std::vector<uint8_t>& data) {
            EXPECT_EQ(from, 0);
            EXPECT_EQ(stream, sid);
            got += data.size();
            (void)expectSeqStart;
            (void)ordered;
        });
    p.muxes[0]->write(sid, 200000);
    p.net->loop().run();
    EXPECT_EQ(got, 200000u);
    EXPECT_EQ(p.muxes[7]->bytesRead(0, sid), 200000u);
    EXPECT_EQ(p.muxes[0]->bytesWritten(sid), 200000u);
}

TEST(StreamAdapter, MultipleWritesPreserveOrder) {
    Pair p;
    const uint32_t sid = p.muxes[1]->openStream(2);
    std::vector<size_t> sizes;
    p.muxes[2]->setReadCallback(
        [&](HostId, uint32_t, const std::vector<uint8_t>& data) {
            sizes.push_back(data.size());
        });
    // Writes of decreasing size: without sequencing, Homa's SRPT would
    // deliver the small ones first; the stream layer must reorder.
    p.muxes[1]->write(sid, 150000);
    p.muxes[1]->write(sid, 5000);
    p.muxes[1]->write(sid, 100);
    p.net->loop().run();
    ASSERT_EQ(p.muxes[2]->bytesRead(1, sid), 155100u);
    // In-order delivery: chunks of the 150000 write come before the rest.
    ASSERT_GE(sizes.size(), 3u);
    EXPECT_EQ(sizes.back(), 100u);
}

TEST(StreamAdapter, IndependentStreamsDoNotBlockEachOther) {
    // The whole point vs TCP: a small stream to the same peer is not stuck
    // behind a big one.
    Pair p;
    const uint32_t big = p.muxes[0]->openStream(5);
    const uint32_t small = p.muxes[0]->openStream(5);
    Time bigDone = 0, smallDone = 0;
    p.muxes[5]->setReadCallback(
        [&](HostId, uint32_t stream, const std::vector<uint8_t>&) {
            if (stream == big && p.muxes[5]->bytesRead(0, big) == 3'000'000) {
                bigDone = p.net->loop().now();
            }
            if (stream == small && p.muxes[5]->bytesRead(0, small) == 400) {
                smallDone = p.net->loop().now();
            }
        });
    p.muxes[0]->write(big, 3'000'000);
    p.muxes[0]->write(small, 400);
    p.net->loop().run();
    ASSERT_GT(bigDone, 0);
    ASSERT_GT(smallDone, 0);
    EXPECT_LT(smallDone * 10, bigDone)
        << "small stream must finish far earlier (SRPT, no stream HOL)";
}

TEST(StreamAdapter, ChunkSizeControlsMessageCount) {
    Pair p;
    p.muxes[3]->chunkBytes = 10000;
    const uint32_t sid = p.muxes[3]->openStream(4);
    int messages = 0;
    p.muxes[4]->setReadCallback(
        [&](HostId, uint32_t, const std::vector<uint8_t>&) { messages++; });
    p.muxes[3]->write(sid, 95000);
    p.net->loop().run();
    EXPECT_EQ(messages, 10);  // 9 x 10000 + 1 x 5000
    EXPECT_EQ(p.muxes[4]->bytesRead(3, sid), 95000u);
}

TEST(StreamAdapter, ManyStreamsManyPeers) {
    Pair p;
    struct S {
        HostId from;
        uint32_t id;
        uint32_t bytes;
    };
    std::vector<S> streams;
    Rng rng(17);
    for (int i = 0; i < 30; i++) {
        const HostId from = static_cast<HostId>(rng.below(8));
        const HostId to = static_cast<HostId>(8 + rng.below(8));
        const uint32_t sid = p.muxes[from]->openStream(to);
        const uint32_t bytes = 1 + static_cast<uint32_t>(rng.below(300000));
        p.muxes[from]->write(sid, bytes);
        streams.push_back({from, sid, bytes});
        (void)to;
    }
    p.net->loop().run();
    for (const auto& s : streams) {
        bool found = false;
        for (HostId h = 8; h < 16; h++) {
            if (p.muxes[h]->bytesRead(s.from, s.id) == s.bytes) found = true;
        }
        EXPECT_TRUE(found) << "stream " << s.id << " from " << s.from;
    }
}

}  // namespace
}  // namespace homa
