// EgressPort: serialization timing, pull model, and the Figure 14
// preemption-lag/queueing-delay decomposition.
#include <gtest/gtest.h>

#include <deque>

#include "sim/port.h"

namespace homa {
namespace {

struct CollectSink : PacketSink {
    std::vector<std::pair<Time, Packet>> got;
    EventLoop* loop = nullptr;
    void deliver(Packet p) override { got.emplace_back(loop->now(), p); }
};

Packet mkData(uint8_t prio, uint32_t len = kMaxPayload, MsgId id = 1) {
    Packet p;
    p.type = PacketType::Data;
    p.priority = prio;
    p.length = len;
    p.msg = id;
    return p;
}

struct PortFixture {
    EventLoop loop;
    CollectSink sink;
    EgressPort port{loop, k10Gbps, std::make_unique<StrictPriorityQdisc>()};
    PortFixture() {
        sink.loop = &loop;
        port.connectTo(&sink);
    }
};

TEST(EgressPort, SerializationTimeExact) {
    PortFixture f;
    f.port.enqueue(mkData(0));  // wire = 1442 + 58 + 24 = 1524 B
    f.loop.run();
    ASSERT_EQ(f.sink.got.size(), 1u);
    EXPECT_EQ(f.sink.got[0].first, k10Gbps.serialize(1524));
}

TEST(EgressPort, BackToBackPacketsPipeline) {
    PortFixture f;
    f.port.enqueue(mkData(0, kMaxPayload, 1));
    f.port.enqueue(mkData(0, kMaxPayload, 2));
    f.loop.run();
    ASSERT_EQ(f.sink.got.size(), 2u);
    EXPECT_EQ(f.sink.got[1].first - f.sink.got[0].first,
              k10Gbps.serialize(1524));
}

TEST(EgressPort, HigherPriorityOvertakesQueued) {
    PortFixture f;
    f.port.enqueue(mkData(0, kMaxPayload, 1));  // starts transmitting
    f.port.enqueue(mkData(0, kMaxPayload, 2));  // queued
    f.port.enqueue(mkData(7, 100, 3));          // queued, higher priority
    f.loop.run();
    ASSERT_EQ(f.sink.got.size(), 3u);
    EXPECT_EQ(f.sink.got[0].second.msg, 1u);  // in flight, can't preempt
    EXPECT_EQ(f.sink.got[1].second.msg, 3u);  // jumps the queue
    EXPECT_EQ(f.sink.got[2].second.msg, 2u);
}

TEST(EgressPort, PreemptionLagAttributedToLowerPriorityHolder) {
    PortFixture f;
    f.port.enqueue(mkData(0, kMaxPayload, 1));
    // Arrives while the P0 packet holds the wire: the residual wait is
    // preemption lag, not queueing delay.
    f.loop.at(k10Gbps.serialize(1524) / 2, [&] {
        f.port.enqueue(mkData(7, 100, 2));
    });
    f.loop.run();
    ASSERT_EQ(f.sink.got.size(), 2u);
    const Packet& hi = f.sink.got[1].second;
    EXPECT_EQ(hi.msg, 2u);
    EXPECT_EQ(hi.preemptionLag, k10Gbps.serialize(1524) / 2);
    EXPECT_EQ(hi.queueingDelay, 0);
}

TEST(EgressPort, QueueingDelayBehindEqualPriority) {
    PortFixture f;
    f.port.enqueue(mkData(5, kMaxPayload, 1));
    f.port.enqueue(mkData(5, kMaxPayload, 2));
    f.loop.run();
    const Packet& second = f.sink.got[1].second;
    EXPECT_EQ(second.preemptionLag, 0);
    EXPECT_EQ(second.queueingDelay, k10Gbps.serialize(1524));
}

TEST(EgressPort, MixedWaitSplitsCorrectly) {
    PortFixture f;
    // P0 full packet transmitting; then a P7 packet and another P7 behind
    // it. Second P7: preemption lag = residual of P0, queueing = first P7.
    f.port.enqueue(mkData(0, kMaxPayload, 1));
    f.port.enqueue(mkData(7, kMaxPayload, 2));
    f.port.enqueue(mkData(7, kMaxPayload, 3));
    f.loop.run();
    const Packet& third = f.sink.got[2].second;
    EXPECT_EQ(third.msg, 3u);
    EXPECT_EQ(third.preemptionLag, k10Gbps.serialize(1524));
    EXPECT_EQ(third.queueingDelay, k10Gbps.serialize(1524));
}

struct ScriptedSource : PacketSource {
    std::deque<Packet> script;
    std::optional<Packet> pullPacket() override {
        if (script.empty()) return std::nullopt;
        Packet p = script.front();
        script.pop_front();
        return p;
    }
};

TEST(EgressPort, PullModeDrainsSource) {
    PortFixture f;
    ScriptedSource src;
    for (int i = 0; i < 5; i++) src.script.push_back(mkData(0, 1000, i));
    f.port.setSource(&src);
    f.port.kick();
    f.loop.run();
    EXPECT_EQ(f.sink.got.size(), 5u);
    EXPECT_TRUE(src.script.empty());
}

TEST(EgressPort, PushedControlBeatsPulledData) {
    PortFixture f;
    ScriptedSource src;
    src.script.push_back(mkData(0, kMaxPayload, 1));
    src.script.push_back(mkData(0, kMaxPayload, 2));
    f.port.setSource(&src);
    f.port.kick();
    // While packet 1 is on the wire, a control packet is pushed: it must
    // go out before pulled packet 2 (the qdisc is consulted first).
    Packet ctrl;
    ctrl.type = PacketType::Grant;
    ctrl.priority = kHighestPriority;
    ctrl.msg = 99;
    f.loop.at(100, [&] { f.port.enqueue(ctrl); });
    f.loop.run();
    ASSERT_EQ(f.sink.got.size(), 3u);
    EXPECT_EQ(f.sink.got[1].second.msg, 99u);
}

TEST(EgressPort, IdleFlagReflectsState) {
    PortFixture f;
    EXPECT_TRUE(f.port.idle());
    f.port.enqueue(mkData(0));
    EXPECT_FALSE(f.port.idle());
    f.loop.run();
    EXPECT_TRUE(f.port.idle());
}

TEST(EgressPort, BacklogCountsQueuedAndInFlight) {
    PortFixture f;
    f.port.enqueue(mkData(0));
    f.port.enqueue(mkData(0));
    EXPECT_GT(f.port.backlogBytes(), 1524);
    f.loop.run();
    EXPECT_EQ(f.port.backlogBytes(), 0);
}

}  // namespace
}  // namespace homa
