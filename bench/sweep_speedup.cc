// SweepRunner multi-core speedup evidence -> BENCH_sweep.json.
//
// Runs a fixed protocol x workload x scenario sweep twice — once on one
// thread, once on all cores — verifies the per-point results are
// byte-identical (the determinism contract that makes the parallel runner
// trustworthy), and reports the wall-clock speedup as JSON:
//
//   ./bench_sweep_speedup [output.json]     (default BENCH_sweep.json)
//
// The artifact doubles as a distributed-sweep results file
// (docs/BENCHMARKS.md): it carries per-point resultFingerprint records,
// so the same binary shards and reassembles the sweep across machines:
//
//   ./bench_sweep_speedup --shard=i/N [shard.json]
//       run only shard i of N (identical per-point seeds to the full
//       run) and emit a mergeable fragment
//   ./bench_sweep_speedup --merge <shard.json...> [--results merged.json]
//       [--verify-against full.json]
//       reassemble fragments into a full BENCH_sweep.json-compatible
//       artifact, rejecting overlap/gaps; --verify-against proves the
//       merged sweep byte-identical to an unsharded run
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_shard.h"

using namespace homa;
using namespace homa::bench;

int main(int argc, char** argv) {
    SweepCli cli = parseSweepCli(argc, argv);
    if (cli.merge) {
        if (cli.resultsOut.empty()) {
            cli.resultsOut = cli.positional.empty() ? "BENCH_sweep.json"
                                                    : cli.positional[0];
        }
        return runShardMerge("sweep_speedup", cli);
    }
    const ShardSpec shard = cli.sharded ? cli.shard : ShardSpec{0, 1};
    std::string outPath = cli.positional.empty() ? "" : cli.positional[0];
    if (!outPath.empty() && !cli.resultsOut.empty()) {
        std::fprintf(stderr, "give either a positional output path or "
                             "--results, not both\n");
        return 2;
    }
    if (outPath.empty()) outPath = cli.resultsOut;
    if (outPath.empty()) {
        outPath = cli.sharded
                      ? "BENCH_sweep.shard" + std::to_string(shard.index) +
                            "of" + std::to_string(shard.count) + ".json"
                      : "BENCH_sweep.json";
    }
    printHeader("SweepRunner: multi-core sweep speedup",
                "parallel figure-bench harness (BENCH_sweep.json)");

    // A representative slice of the figure grids: three protocols, three
    // workloads, and the three scenario families beyond uniform.
    std::vector<ExperimentConfig> points;
    std::vector<std::string> labels;
    auto add = [&](Protocol proto, WorkloadId wl, TrafficPatternKind pattern) {
        ExperimentConfig cfg;
        cfg.proto.kind = proto;
        cfg.traffic.workload = wl;
        cfg.traffic.load = 0.7;
        cfg.traffic.stop = fullScale() ? milliseconds(40) : milliseconds(4);
        cfg.traffic.scenario.kind = pattern;
        labels.push_back(std::string(protocolName(proto)) + "/" +
                         workload(wl).name() + "/" + patternName(pattern));
        points.push_back(std::move(cfg));
    };
    for (Protocol proto : {Protocol::Homa, Protocol::PFabric, Protocol::Pias}) {
        for (WorkloadId wl : {WorkloadId::W1, WorkloadId::W3, WorkloadId::W4}) {
            add(proto, wl, TrafficPatternKind::Uniform);
        }
    }
    add(Protocol::Homa, WorkloadId::W3, TrafficPatternKind::Incast);
    add(Protocol::Homa, WorkloadId::W3, TrafficPatternKind::RackSkew);
    add(Protocol::Homa, WorkloadId::W3, TrafficPatternKind::Permutation);

    SweepOptions serial;
    serial.threads = 1;
    serial.deriveSeeds = true;
    const ShardOutcome one = SweepRunner(serial).runShard(points, shard);

    SweepOptions parallel = serial;
    // All cores, but at least 4 workers so the identity check exercises
    // real thread interleaving even on small machines.
    parallel.threads =
        std::max(4, static_cast<int>(std::thread::hardware_concurrency()));
    const ShardOutcome many = SweepRunner(parallel).runShard(points, shard);

    bool identical = true;
    for (size_t k = 0; k < one.results.size(); k++) {
        if (resultFingerprint(one.results[k]) !=
            resultFingerprint(many.results[k])) {
            identical = false;
            std::printf("MISMATCH at point %llu (%s)\n",
                        static_cast<unsigned long long>(one.indices[k]),
                        labels[one.indices[k]].c_str());
        }
    }

    const double speedup =
        many.wallSeconds > 0 ? one.wallSeconds / many.wallSeconds : 0;
    std::printf("shard %d/%d, %zu of %zu points: %.2f s on 1 thread, "
                "%.2f s on %d threads (%.2fx), results identical: %s\n",
                shard.index, shard.count, one.results.size(), points.size(),
                one.wallSeconds, many.wallSeconds, many.threadsUsed, speedup,
                identical ? "yes" : "NO");

    ShardFile f =
        shardFileFromOutcome("sweep_speedup", parallel, shard, many, labels);
    f.serialWallSeconds = one.wallSeconds;
    f.identical = identical;
    std::string extras = benchCompatExtras(f);
    {
        char buf[128];
        std::snprintf(buf, sizeof(buf), "  \"scale\": \"%s\",\n",
                      fullScale() ? "full" : "quick");
        extras += buf;
        std::snprintf(buf, sizeof(buf), "  \"hardware_cores\": %u,\n",
                      std::thread::hardware_concurrency());
        extras += buf;
    }
    if (!writeTextFile(outPath, writeShardFile(f, extras))) {
        std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
        return 1;
    }
    std::printf("sweep fingerprint %s\nwrote %s\n",
                sweepFingerprint(f.points).c_str(), outPath.c_str());
    return identical ? 0 : 1;
}
