// SweepRunner multi-core speedup evidence -> BENCH_sweep.json.
//
// Runs a fixed protocol x workload x scenario sweep twice — once on one
// thread, once on all cores — verifies the per-point results are
// byte-identical (the determinism contract that makes the parallel runner
// trustworthy), and reports the wall-clock speedup as JSON:
//
//   ./bench_sweep_speedup [output.json]     (default BENCH_sweep.json)
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"

using namespace homa;
using namespace homa::bench;

int main(int argc, char** argv) {
    const std::string outPath = argc > 1 ? argv[1] : "BENCH_sweep.json";
    printHeader("SweepRunner: multi-core sweep speedup",
                "parallel figure-bench harness (BENCH_sweep.json)");

    // A representative slice of the figure grids: three protocols, three
    // workloads, and the three scenario families beyond uniform.
    std::vector<ExperimentConfig> points;
    std::vector<std::string> labels;
    auto add = [&](Protocol proto, WorkloadId wl, TrafficPatternKind pattern) {
        ExperimentConfig cfg;
        cfg.proto.kind = proto;
        cfg.traffic.workload = wl;
        cfg.traffic.load = 0.7;
        cfg.traffic.stop = fullScale() ? milliseconds(40) : milliseconds(4);
        cfg.traffic.scenario.kind = pattern;
        labels.push_back(std::string(protocolName(proto)) + "/" +
                         workload(wl).name() + "/" + patternName(pattern));
        points.push_back(std::move(cfg));
    };
    for (Protocol proto : {Protocol::Homa, Protocol::PFabric, Protocol::Pias}) {
        for (WorkloadId wl : {WorkloadId::W1, WorkloadId::W3, WorkloadId::W4}) {
            add(proto, wl, TrafficPatternKind::Uniform);
        }
    }
    add(Protocol::Homa, WorkloadId::W3, TrafficPatternKind::Incast);
    add(Protocol::Homa, WorkloadId::W3, TrafficPatternKind::RackSkew);
    add(Protocol::Homa, WorkloadId::W3, TrafficPatternKind::Permutation);

    SweepOptions serial;
    serial.threads = 1;
    serial.deriveSeeds = true;
    SweepOutcome one = SweepRunner(serial).run(points);

    SweepOptions parallel = serial;
    // All cores, but at least 4 workers so the identity check exercises
    // real thread interleaving even on small machines.
    parallel.threads =
        std::max(4, static_cast<int>(std::thread::hardware_concurrency()));
    SweepOutcome many = SweepRunner(parallel).run(points);

    bool identical = true;
    for (size_t i = 0; i < points.size(); i++) {
        if (resultFingerprint(one.results[i]) !=
            resultFingerprint(many.results[i])) {
            identical = false;
            std::printf("MISMATCH at point %zu (%s)\n", i, labels[i].c_str());
        }
    }

    const double speedup =
        many.wallSeconds > 0 ? one.wallSeconds / many.wallSeconds : 0;
    std::printf("%zu points: %.2f s on 1 thread, %.2f s on %d threads "
                "(%.2fx), results identical: %s\n",
                points.size(), one.wallSeconds, many.wallSeconds,
                many.threadsUsed, speedup, identical ? "yes" : "NO");

    FILE* out = std::fopen(outPath.c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
        return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"sweep_speedup\",\n"
                 "  \"points\": %zu,\n"
                 "  \"scale\": \"%s\",\n"
                 "  \"wall_seconds_1_thread\": %.3f,\n"
                 "  \"wall_seconds_parallel\": %.3f,\n"
                 "  \"hardware_cores\": %u,\n"
                 "  \"threads\": %d,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"results_identical_across_thread_counts\": %s\n"
                 "}\n",
                 points.size(), fullScale() ? "full" : "quick",
                 one.wallSeconds, many.wallSeconds,
                 std::thread::hardware_concurrency(), many.threadsUsed,
                 speedup, identical ? "true" : "false");
    std::fclose(out);
    std::printf("wrote %s\n", outPath.c_str());
    return identical ? 0 : 1;
}
