// Parallel simulation engine speedup evidence -> BENCH_parallel.json.
//
// Runs ONE large experiment point (the 144-host fat-tree at high load —
// the shape where a single simulation, not the sweep grid, is the wall
// clock) at --sim-threads 1 and at each thread count in the curve,
// verifies every parallel run is byte-identical to the serial run (the
// sim/parallel.h determinism contract), and reports the wall-clock
// speedup curve as JSON:
//
//   ./bench_parallel_speedup [output.json]   (default BENCH_parallel.json)
//
// The identity flag is a hard CI failure at any tolerance
// (tools/bench_compare); the speedup is gated only on machines with >= 4
// hardware cores, since a starved runner measures scheduling, not the
// engine (the artifact records hardware_cores so the gate can tell).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "driver/sweep_shard.h"

using namespace homa;
using namespace homa::bench;

namespace {

double timedRun(ExperimentConfig cfg, int threads, std::string& fingerprint) {
    cfg.parallel.threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    const ExperimentResult r = runExperiment(cfg);
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    fingerprint = resultFingerprint(r);
    return wall;
}

}  // namespace

int main(int argc, char** argv) {
    const std::string outPath = argc > 1 ? argv[1] : "BENCH_parallel.json";
    printHeader("Parallel engine: single-point simulation speedup",
                "conservative-window parallel runtime (BENCH_parallel.json)");

    // One big point: every rack busy, scheduled traffic on every downlink.
    ExperimentConfig cfg;
    cfg.net = NetworkConfig::fatTree144();
    cfg.proto.kind = Protocol::Homa;
    cfg.traffic.workload = WorkloadId::W4;
    cfg.traffic.load = 0.8;
    cfg.traffic.stop = fullScale() ? milliseconds(40) : milliseconds(6);

    const unsigned cores = std::thread::hardware_concurrency();
    std::vector<int> counts{2, 4};
    if (cores >= 8) counts.push_back(8);

    std::string serialFp;
    const double serialWall = timedRun(cfg, 1, serialFp);
    std::printf("%d hosts, load %.2f: %.2f s serial\n",
                cfg.net.hostCount(), cfg.traffic.load, serialWall);

    bool identical = true;
    double bestWall = serialWall;
    int bestThreads = 1;
    std::string curve = "  \"curve\": [\n";
    {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "    {\"threads\": 1, \"wall_seconds\": %.4f, "
                      "\"speedup\": 1.0}",
                      serialWall);
        curve += buf;
    }
    for (int threads : counts) {
        std::string fp;
        const double wall = timedRun(cfg, threads, fp);
        if (fp != serialFp) {
            identical = false;
            std::printf("MISMATCH at %d threads: parallel run diverged "
                        "from serial\n", threads);
        }
        const double speedup = wall > 0 ? serialWall / wall : 0;
        std::printf("%d threads: %.2f s (%.2fx), identical: %s\n", threads,
                    wall, speedup, fp == serialFp ? "yes" : "NO");
        if (wall < bestWall) {
            bestWall = wall;
            bestThreads = threads;
        }
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      ",\n    {\"threads\": %d, \"wall_seconds\": %.4f, "
                      "\"speedup\": %.4f}",
                      threads, wall, speedup);
        curve += buf;
    }
    curve += "\n  ],\n";

    const double bestSpeedup = bestWall > 0 ? serialWall / bestWall : 0;
    std::string json = "{\n  \"bench\": \"parallel_speedup\",\n";
    {
        char buf[256];
        std::snprintf(buf, sizeof(buf), "  \"scale\": \"%s\",\n",
                      fullScale() ? "full" : "quick");
        json += buf;
        std::snprintf(buf, sizeof(buf), "  \"hardware_cores\": %u,\n", cores);
        json += buf;
        std::snprintf(buf, sizeof(buf), "  \"hosts\": %d,\n",
                      cfg.net.hostCount());
        json += buf;
        std::snprintf(buf, sizeof(buf), "  \"load\": %.2f,\n",
                      cfg.traffic.load);
        json += buf;
        std::snprintf(buf, sizeof(buf),
                      "  \"wall_seconds_1_thread\": %.4f,\n", serialWall);
        json += buf;
        std::snprintf(buf, sizeof(buf),
                      "  \"wall_seconds_parallel\": %.4f,\n", bestWall);
        json += buf;
        std::snprintf(buf, sizeof(buf), "  \"threads\": %d,\n", bestThreads);
        json += buf;
        std::snprintf(buf, sizeof(buf), "  \"speedup\": %.4f,\n", bestSpeedup);
        json += buf;
    }
    json += curve;
    json += std::string("  \"results_identical_across_thread_counts\": ") +
            (identical ? "true" : "false") + "\n}\n";

    if (!writeTextFile(outPath, json)) {
        std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
        return 1;
    }
    std::printf("best: %.2fx at %d threads; wrote %s\n", bestSpeedup,
                bestThreads, outPath.c_str());
    return identical ? 0 : 1;
}
