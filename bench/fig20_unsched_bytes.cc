// Figure 20: how many bytes should be sent blindly? Sweep the unscheduled
// byte limit on W4 at 80% load. RTTbytes is the sweet spot: below it,
// messages shorter than RTTbytes stall waiting for grants; above it, extra
// blind traffic pollutes the single unscheduled priority level.
#include "bench_common.h"

using namespace homa;
using namespace homa::bench;

int main() {
    printHeader("Figure 20: unscheduled byte limit (W4)",
                "99% slowdown vs size for several blind-transmission "
                "limits, 80% load");

    const auto timings = NetworkTimings::compute(NetworkConfig::fatTree144());
    const SizeDistribution& dist = workload(WorkloadId::W4);

    std::vector<std::pair<std::string, int64_t>> limits = {
        {"1B", 1},
        {"500B", 500},
        {"1000B", 1000},
        {"RTTbytes", timings.rttBytes},
        {"2xRTT", 2 * timings.rttBytes},
    };

    std::vector<ExperimentResult> results;
    std::vector<std::string> names;
    for (const auto& [name, limit] : limits) {
        ExperimentConfig cfg;
        cfg.traffic.workload = WorkloadId::W4;
        cfg.traffic.load = 0.8;
        cfg.traffic.stop = simWindow();
        cfg.proto.homa.unschedBytesLimit = limit;
        results.push_back(runExperiment(cfg));
        names.push_back(name);
    }
    std::vector<std::pair<std::string, const SlowdownTracker*>> curves;
    for (size_t i = 0; i < results.size(); i++) {
        curves.emplace_back(names[i], results[i].slowdown.get());
    }
    printSlowdownTable(dist, curves, /*tail=*/true);
    std::printf(
        "Expected shape (paper): messages between the limit and RTTbytes\n"
        "suffer ~2.5x with small limits; limits beyond RTTbytes hurt small\n"
        "messages via extra unscheduled traffic on one level.\n");
    return 0;
}
