// Shared helpers for the figure/table reproduction harnesses.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation (§5) and prints it as text. `HOMA_BENCH_SCALE=full` switches
// from the quick preset (minutes for the whole suite) to paper-scale
// message counts.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "driver/experiment.h"
#include "stats/report.h"

namespace homa::bench {

inline bool fullScale() {
    const char* env = std::getenv("HOMA_BENCH_SCALE");
    return env != nullptr && std::strcmp(env, "full") == 0;
}

/// Traffic generation window for one-way simulation experiments.
inline Duration simWindow() {
    return fullScale() ? milliseconds(150) : milliseconds(8);
}

/// Window for RPC (implementation-style) experiments. Heavy-tailed
/// workloads need longer windows to issue a statistically useful number of
/// RPCs (W5's mean RPC moves ~2.4 MB, so arrivals are ~millisecond-scale).
inline Duration rpcWindow(WorkloadId wl) {
    Duration base;
    switch (wl) {
        case WorkloadId::W4: base = milliseconds(80); break;
        case WorkloadId::W5: base = milliseconds(400); break;
        default: base = milliseconds(25); break;
    }
    return fullScale() ? 8 * base : base;
}

inline void printHeader(const std::string& what, const std::string& paperRef) {
    std::printf("%s", banner(what).c_str());
    std::printf("Reproduces: %s\n", paperRef.c_str());
    std::printf("Scale: %s (set HOMA_BENCH_SCALE=full for paper-scale runs)\n\n",
                fullScale() ? "full" : "quick");
}

/// Print per-decile slowdown rows for several labelled trackers side by
/// side (the paper's Figures 8/9/12/13 as a table: one column per curve).
inline void printSlowdownTable(
    const SizeDistribution& dist,
    const std::vector<std::pair<std::string, const SlowdownTracker*>>& curves,
    bool tail /* true: p99, false: median */) {
    std::vector<std::string> header{"size<="};
    for (const auto& [name, tracker] : curves) header.push_back(name);
    Table table(header);
    const auto& deciles = dist.deciles();
    std::vector<std::vector<SlowdownRow>> rows;
    rows.reserve(curves.size());
    for (const auto& [name, tracker] : curves) rows.push_back(tracker->rows());
    for (int i = 0; i < 10; i++) {
        std::vector<std::string> row{Table::bytes(deciles[i])};
        for (const auto& r : rows) {
            row.push_back(Table::num(tail ? r[i].p99 : r[i].median));
        }
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.format().c_str());
}

}  // namespace homa::bench
