// Shared helpers for the figure/table reproduction harnesses.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation (§5) and prints it as text. `HOMA_BENCH_SCALE=full` switches
// from the quick preset (minutes for the whole suite) to paper-scale
// message counts.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "driver/experiment.h"
#include "driver/sweep.h"
#include "stats/report.h"

namespace homa::bench {

inline bool fullScale() {
    const char* env = std::getenv("HOMA_BENCH_SCALE");
    return env != nullptr && std::strcmp(env, "full") == 0;
}

/// Scenario override for the figure benches: HOMA_SCENARIO takes a spec
/// "<pattern>" or "<pattern>+on-off" (uniform|permutation|rack-skew|
/// incast|pareto|closed-loop|dag); dag also takes parameters
/// ("dag:fanout=40,depth=2"), every other pattern keeps its
/// ScenarioConfig defaults. Trace replay needs an explicit schedule, so
/// it is driven via example_run_experiment --trace instead.
inline ScenarioConfig scenarioFromEnv() {
    ScenarioConfig s;
    const char* env = std::getenv("HOMA_SCENARIO");
    if (env != nullptr && !scenarioFromSpec(env, s)) {
        std::fprintf(stderr, "HOMA_SCENARIO: unknown scenario spec '%s'\n",
                     env);
        std::exit(2);
    }
    if (s.kind == TrafficPatternKind::TraceReplay) {
        std::fprintf(stderr,
                     "HOMA_SCENARIO=trace needs a schedule; use "
                     "example_run_experiment --trace FILE\n");
        std::exit(2);
    }
    if (s.serving.enabled()) {
        std::fprintf(stderr,
                     "HOMA_SCENARIO with tenants: serving scenarios run "
                     "the RPC harness, not the message-level benches; use "
                     "example_run_experiment --tenants / bench_serving "
                     "instead\n");
        std::exit(2);
    }
    if (s.kind == TrafficPatternKind::ClosedLoop ||
        s.kind == TrafficPatternKind::Dag) {
        // These modes set their own rate, so a bench's load axis
        // collapses: points differing only in load run identical
        // experiments.
        std::fprintf(stderr,
                     "note: %s ignores per-point load; rows labelled with "
                     "different loads will coincide\n", patternName(s.kind));
    }
    return s;
}

/// Sweep thread count for the figure benches: HOMA_SWEEP_THREADS, default
/// all cores (SweepRunner's results are identical either way).
inline SweepOptions sweepOptionsFromEnv() {
    SweepOptions opts;
    const char* env = std::getenv("HOMA_SWEEP_THREADS");
    if (env != nullptr) {
        char* end = nullptr;
        const long n = std::strtol(env, &end, 10);
        if (end == env || *end != '\0' || n < 1 || n > 4096) {
            std::fprintf(stderr,
                         "HOMA_SWEEP_THREADS: expected a thread count, "
                         "got '%s'\n", env);
            std::exit(2);
        }
        opts.threads = static_cast<int>(n);
    }
    return opts;
}

inline void printSweepFooter(const SweepOutcome& sweep) {
    std::printf("sweep: %zu points on %d threads in %.1f s\n\n",
                sweep.results.size(), sweep.threadsUsed, sweep.wallSeconds);
}

/// Traffic generation window for one-way simulation experiments.
inline Duration simWindow() {
    return fullScale() ? milliseconds(150) : milliseconds(8);
}

/// Window for RPC (implementation-style) experiments. Heavy-tailed
/// workloads need longer windows to issue a statistically useful number of
/// RPCs (W5's mean RPC moves ~2.4 MB, so arrivals are ~millisecond-scale).
inline Duration rpcWindow(WorkloadId wl) {
    Duration base;
    switch (wl) {
        case WorkloadId::W4: base = milliseconds(80); break;
        case WorkloadId::W5: base = milliseconds(400); break;
        default: base = milliseconds(25); break;
    }
    return fullScale() ? 8 * base : base;
}

inline void printHeader(const std::string& what, const std::string& paperRef) {
    std::printf("%s", banner(what).c_str());
    std::printf("Reproduces: %s\n", paperRef.c_str());
    std::printf("Scale: %s (set HOMA_BENCH_SCALE=full for paper-scale runs)\n",
                fullScale() ? "full" : "quick");
    const char* scenario = std::getenv("HOMA_SCENARIO");
    if (scenario != nullptr) std::printf("Scenario: %s\n", scenario);
    std::printf("\n");
}

/// Print per-decile slowdown rows for several labelled trackers side by
/// side (the paper's Figures 8/9/12/13 as a table: one column per curve).
inline void printSlowdownTable(
    const SizeDistribution& dist,
    const std::vector<std::pair<std::string, const SlowdownTracker*>>& curves,
    bool tail /* true: p99, false: median */) {
    std::vector<std::string> header{"size<="};
    for (const auto& [name, tracker] : curves) header.push_back(name);
    Table table(header);
    const auto& deciles = dist.deciles();
    std::vector<std::vector<SlowdownRow>> rows;
    rows.reserve(curves.size());
    for (const auto& [name, tracker] : curves) rows.push_back(tracker->rows());
    for (int i = 0; i < 10; i++) {
        std::vector<std::string> row{Table::bytes(deciles[i])};
        for (const auto& r : rows) {
            row.push_back(Table::num(tail ? r[i].p99 : r[i].median));
        }
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.format().c_str());
}

}  // namespace homa::bench
