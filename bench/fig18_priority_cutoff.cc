// Figure 18: the cutoff between two unscheduled priority levels (W3).
// Homa's policy balances unscheduled bytes across levels; this sweep shows
// why: too-low cutoffs starve mid-size messages, too-high cutoffs hurt the
// majority.
#include "sched/priority_allocator.h"

#include "bench_common.h"

using namespace homa;
using namespace homa::bench;

int main() {
    printHeader("Figure 18: unscheduled cutoff sweep (W3)",
                "99% slowdown vs size with 2 unscheduled levels and varying "
                "cutoff, 80% load");

    const SizeDistribution& dist = workload(WorkloadId::W3);

    // What would Homa's balancing policy pick? (The paper computes 1930.)
    HomaConfig probe;
    probe.unschedPriorities = 2;
    const auto timings =
        NetworkTimings::compute(NetworkConfig::fatTree144());
    PriorityAllocation alloc = computeAllocation(dist, probe, timings.rttBytes);
    std::printf("Homa's byte-balancing policy would pick cutoff = %u\n\n",
                alloc.cutoffs.empty() ? 0 : alloc.cutoffs[0]);

    std::vector<ExperimentResult> results;
    std::vector<std::string> names;
    for (uint32_t cutoff : {100u, 400u, 1000u, 2000u, 4000u}) {
        ExperimentConfig cfg;
        cfg.traffic.workload = WorkloadId::W3;
        cfg.traffic.load = 0.8;
        cfg.traffic.stop = simWindow();
        cfg.proto.homa.unschedPriorities = 2;
        cfg.proto.homa.explicitCutoffs = {cutoff};
        results.push_back(runExperiment(cfg));
        names.push_back("cutoff " + std::to_string(cutoff));
    }
    std::vector<std::pair<std::string, const SlowdownTracker*>> curves;
    for (size_t i = 0; i < results.size(); i++) {
        curves.emplace_back(names[i], results[i].slowdown.get());
    }
    printSlowdownTable(dist, curves, /*tail=*/true);
    std::printf(
        "Expected shape (paper): raising the cutoff to ~2000 helps larger\n"
        "messages at negligible cost to small ones; 4000 noticeably hurts\n"
        "~90%% of messages. The balancing policy picks ~1930.\n");
    return 0;
}
