// Fluid fast-path speedup + fidelity evidence -> BENCH_fluid.json.
//
// Three measurements in one artifact (tools/bench_compare gates each):
//
//  1. Speedup: ONE 10k+ host experiment point (the million-host-scale
//     story in miniature: a 256-rack x 40-host fat-tree where packet
//     simulation is the wall clock), run all-packet and then hybrid with
//     the fluid threshold at 20 kB. Both runs are serial — the ratio is
//     the fluid engine's point-throughput win, not thread scaling. The
//     gate floor is 10x.
//  2. All-packet identity: a threshold above every message size must
//     replay byte-identical to a run with the engine disabled (the
//     fingerprint-level proof that pre-fluid goldens stay valid). A hard
//     CI failure at any tolerance.
//  3. Fidelity: at 144 hosts, packet-vs-hybrid overall slowdown
//     percentiles for uniform / permutation / incast, recorded per
//     scenario for the bench_compare --fidelity gate (p50 drift and p99
//     band checks live there, not here).
//
//   ./bench_fluid_speedup [output.json]   (default BENCH_fluid.json)
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "driver/sweep_shard.h"

using namespace homa;
using namespace homa::bench;

namespace {

double timedRun(const ExperimentConfig& cfg, ExperimentResult& out) {
    const auto t0 = std::chrono::steady_clock::now();
    out = runExperiment(cfg);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

struct FidelityPoint {
    const char* name;
    TrafficPatternKind kind;
    int hotspots;
};

}  // namespace

int main(int argc, char** argv) {
    const std::string outPath = argc > 1 ? argv[1] : "BENCH_fluid.json";
    printHeader("Fluid fast path: flow-level speedup at 10k-host scale",
                "hybrid packet/fluid engine (BENCH_fluid.json)");

    constexpr int64_t kThreshold = 20000;
    // Fidelity is measured with only true elephants fluid (the same
    // threshold the FluidFidelity unit suite pins): at lower thresholds
    // the mid-size flows Homa would SRPT-prioritize fall into max-min
    // sharing and the incast p99 inflates ~3x — more speed, less
    // fidelity, the trade the threshold knob exists to pick.
    constexpr int64_t kFidelityThreshold = 100000;

    // --- 1. the 10k-host point -------------------------------------
    ExperimentConfig big;
    big.net.racks = 256;
    big.net.hostsPerRack = 40;
    big.proto.kind = Protocol::Homa;
    big.traffic.workload = WorkloadId::W4;
    big.traffic.load = 0.5;
    big.traffic.stop = fullScale() ? milliseconds(4) : milliseconds(1);
    big.parallel.threads = 1;  // serial vs serial: engine win, not threads

    ExperimentResult packetBig, hybridBig;
    ExperimentConfig hybridCfg = big;
    hybridCfg.fluidThresholdBytes = kThreshold;
    const double hybridWall = timedRun(hybridCfg, hybridBig);
    std::printf("%d hosts, load %.2f, fluid >= %lld B: %.2f s hybrid "
                "(%llu fluid flows, %llu packet msgs)\n",
                big.net.hostCount(), big.traffic.load,
                static_cast<long long>(kThreshold), hybridWall,
                static_cast<unsigned long long>(hybridBig.fluid->flows),
                static_cast<unsigned long long>(
                    hybridBig.deliveredTotal - hybridBig.fluid->delivered));
    const double packetWall = timedRun(big, packetBig);
    const double speedup = hybridWall > 0 ? packetWall / hybridWall : 0;
    std::printf("all-packet: %.2f s -> speedup %.1fx\n", packetWall, speedup);

    // --- 2. all-packet identity at 144 hosts -----------------------
    ExperimentConfig small;
    small.traffic.workload = WorkloadId::W4;
    small.traffic.load = 0.5;
    small.traffic.stop = milliseconds(2);
    ExperimentConfig neverFluid = small;
    neverFluid.fluidThresholdBytes = int64_t{1} << 40;
    ExperimentResult disabled, never;
    timedRun(small, disabled);
    timedRun(neverFluid, never);
    const bool identical =
        resultFingerprint(disabled) == resultFingerprint(never);
    std::printf("all-packet threshold byte-identical to disabled: %s\n",
                identical ? "yes" : "NO");

    // --- 3. fidelity points at 144 hosts ---------------------------
    const std::vector<FidelityPoint> points{
        {"uniform", TrafficPatternKind::Uniform, 0},
        {"permutation", TrafficPatternKind::Permutation, 0},
        {"incast", TrafficPatternKind::Incast, 2},
    };
    std::string fidelity = "  \"fidelity\": [\n";
    for (size_t i = 0; i < points.size(); i++) {
        const FidelityPoint& p = points[i];
        ExperimentConfig packet = small;
        packet.traffic.scenario.kind = p.kind;
        if (p.hotspots > 0) {
            packet.traffic.scenario.hotspots = p.hotspots;
            packet.traffic.scenario.hotspotDegree = 16;
        }
        ExperimentConfig hybrid = packet;
        hybrid.fluidThresholdBytes = kFidelityThreshold;
        ExperimentResult pr, hr;
        timedRun(packet, pr);
        timedRun(hybrid, hr);
        const double pp50 = pr.slowdown->overallPercentile(0.50);
        const double hp50 = hr.slowdown->overallPercentile(0.50);
        const double pp99 = pr.slowdown->overallPercentile(0.99);
        const double hp99 = hr.slowdown->overallPercentile(0.99);
        std::printf("%-12s p50 %.2f vs %.2f, p99 %.2f vs %.2f "
                    "(packet vs hybrid)\n", p.name, pp50, hp50, pp99, hp99);
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "    {\"scenario\": \"%s\", \"hosts\": %d, "
                      "\"threshold_bytes\": %lld, "
                      "\"packet_p50\": %.4f, \"hybrid_p50\": %.4f, "
                      "\"packet_p99\": %.4f, \"hybrid_p99\": %.4f}%s\n",
                      p.name, small.net.hostCount(),
                      static_cast<long long>(kFidelityThreshold), pp50, hp50,
                      pp99, hp99, i + 1 < points.size() ? "," : "");
        fidelity += buf;
    }
    fidelity += "  ],\n";

    std::string json = "{\n  \"bench\": \"fluid_speedup\",\n";
    {
        char buf[256];
        std::snprintf(buf, sizeof(buf), "  \"scale\": \"%s\",\n",
                      fullScale() ? "full" : "quick");
        json += buf;
        std::snprintf(buf, sizeof(buf), "  \"hardware_cores\": %u,\n",
                      std::thread::hardware_concurrency());
        json += buf;
        std::snprintf(buf, sizeof(buf), "  \"hosts\": %d,\n",
                      big.net.hostCount());
        json += buf;
        std::snprintf(buf, sizeof(buf), "  \"load\": %.2f,\n",
                      big.traffic.load);
        json += buf;
        std::snprintf(buf, sizeof(buf), "  \"threshold_bytes\": %lld,\n",
                      static_cast<long long>(kThreshold));
        json += buf;
        std::snprintf(buf, sizeof(buf),
                      "  \"wall_seconds_packet\": %.4f,\n", packetWall);
        json += buf;
        std::snprintf(buf, sizeof(buf),
                      "  \"wall_seconds_hybrid\": %.4f,\n", hybridWall);
        json += buf;
        std::snprintf(buf, sizeof(buf), "  \"speedup\": %.4f,\n", speedup);
        json += buf;
        std::snprintf(buf, sizeof(buf), "  \"fluid_flows\": %llu,\n",
                      static_cast<unsigned long long>(hybridBig.fluid->flows));
        json += buf;
        std::snprintf(buf, sizeof(buf),
                      "  \"fluid_solves\": %llu,\n",
                      static_cast<unsigned long long>(
                          hybridBig.fluid->solves));
        json += buf;
    }
    json += fidelity;
    json += std::string("  \"all_packet_identical\": ") +
            (identical ? "true" : "false") + "\n}\n";

    if (!writeTextFile(outPath, json)) {
        std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
        return 1;
    }
    std::printf("speedup %.1fx at %d hosts; wrote %s\n", speedup,
                big.net.hostCount(), outPath.c_str());
    return identical ? 0 : 1;
}
