// Core oversubscription sweep on the three-tier fat-tree: slowdown and
// per-tier link utilization vs the NetworkConfig::oversubscription knob,
// per protocol.
//
// The paper's evaluation assumes "the core is never the bottleneck"
// (§3): the 144-host tree has full bisection bandwidth, so all queueing
// happens at the TOR downlinks where receiver-driven scheduling can see
// it. This bench stresses exactly that assumption: the same uniform
// traffic on a 2-pod tree whose aggr->core links shrink by 1x/2x/4x/8x.
// At oversub 1 the three-tier numbers track the two-tier ones; as the
// knob grows, cross-pod traffic contends on links no receiver schedules,
// core utilization climbs past the TOR->aggr level, and the slowdown
// tail departs — for every protocol, since none of them control the
// core. HOMA_SCENARIO swaps the traffic pattern (e.g. "permutation" or
// "incast" to skew the matrix); the topology axis is the subject, so
// "topo:" modifiers in HOMA_SCENARIO are rejected.
#include "bench_common.h"

using namespace homa;
using namespace homa::bench;

int main(int argc, char** argv) {
    (void)argc;
    (void)argv;
    printHeader("Core oversubscription: slowdown vs bisection ratio",
                "three-tier extension of §5.2; 64-host 2-pod tree, "
                "uniform traffic at 80% load");

    const ScenarioConfig scenario = scenarioFromEnv();
    if (!scenario.topoSpec.empty()) {
        std::fprintf(stderr,
                     "fig_oversub sweeps the topology itself; drop the "
                     "topo: modifier from HOMA_SCENARIO\n");
        return 2;
    }

    const std::vector<std::pair<const char*, Protocol>> protocols = {
        {"Homa", Protocol::Homa},
        {"pFabric", Protocol::PFabric},
        {"NDP", Protocol::Ndp},
    };
    const double oversubs[] = {1, 2, 4, 8};

    std::vector<ExperimentConfig> configs;
    for (const auto& [name, kind] : protocols) {
        for (double oversub : oversubs) {
            ExperimentConfig cfg;
            cfg.proto.kind = kind;
            cfg.traffic.workload = WorkloadId::W3;
            cfg.traffic.load = 0.8;
            cfg.traffic.stop = simWindow();
            cfg.traffic.scenario = scenario;
            char spec[96];
            std::snprintf(spec, sizeof(spec),
                          "racks=8,hosts=8,aggr=2,core=2,pods=2,oversub=%g",
                          oversub);
            cfg.traffic.scenario.topoSpec = spec;
            configs.push_back(std::move(cfg));
        }
    }
    SweepOutcome sweep =
        SweepRunner(sweepOptionsFromEnv()).run(std::move(configs));

    size_t i = 0;
    for (const auto& [name, kind] : protocols) {
        std::printf("--- %s ---\n", name);
        Table t({"oversub", "slow p50", "slow p99", "aggr util", "core util",
                 "coreQ mean B", "coreQ max B", "keptUp"});
        for (double oversub : oversubs) {
            const ExperimentResult& r = sweep.results[i++];
            t.addRow({Table::num(oversub, 0),
                      Table::num(r.slowdown->overallPercentile(0.50)),
                      Table::num(r.slowdown->overallPercentile(0.99)),
                      Table::num(r.aggrLinkUtilization, 2),
                      Table::num(r.coreLinkUtilization, 2),
                      Table::num(r.aggrUp.meanBytes, 0),
                      std::to_string(static_cast<long long>(r.aggrUp.maxBytes)),
                      r.keptUp ? "yes" : "no"});
        }
        std::printf("%s\n", t.format().c_str());
    }
    printSweepFooter(sweep);
    std::printf(
        "Expected shape: at oversub 1 core utilization sits below the\n"
        "TOR->aggr level and every protocol behaves like the two-tier\n"
        "tree. As the knob grows the aggr->core links saturate first —\n"
        "core util overtakes aggr util — and the slowdown tail inflates\n"
        "for all protocols alike: the contended queues sit in the core,\n"
        "where neither receiver-driven grants (Homa), in-network SRPT\n"
        "(pFabric), nor trimming (NDP) has any purchase.\n");
    return 0;
}
