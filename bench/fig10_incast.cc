// Figure 10: incast. One client issues N concurrent RPCs (tiny request,
// ~RTTbytes response) to 15 servers; total client goodput vs N, with
// Homa's incast control enabled and disabled.
#include "bench_common.h"
#include "driver/rpc_experiment.h"

using namespace homa;
using namespace homa::bench;

int main() {
    printHeader("Figure 10: incast control",
                "client goodput vs # concurrent 10KB-response RPCs, "
                "incast control on/off");

    std::vector<int> concurrency = {1, 10, 50, 100, 200, 300, 500, 1000, 2000};
    if (fullScale()) concurrency.push_back(5000);

    Table table({"#concurrent", "Gbps (control ON)", "retries",
                 "Gbps (control OFF)", "retries"});
    for (int n : concurrency) {
        const int total = fullScale() ? std::max(4 * n, 4000)
                                      : std::max(2 * n, 1000);
        IncastResult on = runIncastExperiment(n, true, 10000, total);
        IncastResult off = runIncastExperiment(n, false, 10000, total);
        table.addRow({std::to_string(n), Table::num(on.throughputGbps),
                      std::to_string(on.retries),
                      Table::num(off.throughputGbps),
                      std::to_string(off.retries)});
    }
    std::printf("%s\n", table.format().c_str());
    std::printf(
        "Expected shape (paper): with incast control, goodput stays ~9 Gbps\n"
        "out to thousands of concurrent RPCs; without it, throughput\n"
        "degrades beyond a few hundred concurrent RPCs as drops force\n"
        "retransmission timeouts.\n");
    return 0;
}
