// Figure 19: scheduled priority levels (W4). Latency barely changes from 4
// to 7 levels — the extra levels matter for sustainable load (Figure 16),
// not tail latency.
#include "bench_common.h"

using namespace homa;
using namespace homa::bench;

int main() {
    printHeader("Figure 19: scheduled priority levels (W4)",
                "99% slowdown vs size with 4 vs 7 scheduled levels "
                "(1 unscheduled), 80% load");

    const SizeDistribution& dist = workload(WorkloadId::W4);
    std::vector<ExperimentResult> results;
    std::vector<std::string> names;
    for (int s : {4, 7}) {
        ExperimentConfig cfg;
        cfg.traffic.workload = WorkloadId::W4;
        cfg.traffic.load = 0.8;
        cfg.traffic.stop = simWindow();
        cfg.proto.homa.logicalPriorities = 1 + s;
        cfg.proto.homa.unschedPriorities = 1;
        results.push_back(runExperiment(cfg));
        names.push_back(std::to_string(s) + " sched");
    }
    std::vector<std::pair<std::string, const SlowdownTracker*>> curves;
    for (size_t i = 0; i < results.size(); i++) {
        curves.emplace_back(names[i], results[i].slowdown.get());
    }
    printSlowdownTable(dist, curves, /*tail=*/true);
    std::printf(
        "Expected shape (paper): the two curves nearly coincide; W4 cannot\n"
        "even run at 80%% load with fewer than 4 scheduled levels.\n");
    return 0;
}
