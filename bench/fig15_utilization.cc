// Figure 15: the highest network load each protocol can sustain, per
// workload. A load is "sustained" when ~all messages generated in the
// measurement window are delivered by the end of the drain (open-loop
// generation: an overloaded protocol's backlog grows without bound).
#include "bench_common.h"

using namespace homa;
using namespace homa::bench;

int main() {
    printHeader("Figure 15: maximum sustainable network load",
                "highest load (%) each protocol supports per workload");

    struct Entry {
        std::string name;
        Protocol kind;
    };
    const std::vector<Entry> protos = {
        {"Homa", Protocol::Homa},
        {"pFabric", Protocol::PFabric},
        {"pHost", Protocol::PHost},
        {"PIAS", Protocol::Pias},
        {"NDP", Protocol::Ndp},  // W5 only, like the paper
    };

    const std::vector<WorkloadId> workloads =
        fullScale() ? std::vector<WorkloadId>(std::begin(kAllWorkloads),
                                              std::end(kAllWorkloads))
                    : std::vector<WorkloadId>{WorkloadId::W2, WorkloadId::W3,
                                              WorkloadId::W4, WorkloadId::W5};

    Table table({"Protocol", "W1", "W2", "W3", "W4", "W5"});
    for (const Entry& e : protos) {
        std::vector<std::string> row{e.name};
        for (WorkloadId wl : kAllWorkloads) {
            const bool selected =
                std::find(workloads.begin(), workloads.end(), wl) !=
                workloads.end();
            if (!selected || (e.kind == Protocol::Ndp && wl != WorkloadId::W5)) {
                row.push_back("-");
                continue;
            }
            ExperimentConfig cfg;
            cfg.proto.kind = e.kind;
            cfg.traffic.workload = wl;
            cfg.traffic.stop = simWindow();
            cfg.drainGrace = milliseconds(fullScale() ? 150 : 60);
            const double cap = fullScale() ? findMaxLoad(cfg, 40, 2.5, 95)
                                           : findMaxLoad(cfg, 50, 10, 95);
            row.push_back(Table::num(cap, 0));
        }
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.format().c_str());
    std::printf(
        "Expected shape (paper): Homa sustains the highest loads (~80-90%%)\n"
        "and is the most stable across workloads; pFabric is close behind;\n"
        "pHost tops out at ~58-73%%; NDP ~73%% on W5; PIAS in between with\n"
        "more workload sensitivity.\n"
        "NOTE: quick-mode windows are shorter than W4/W5's largest message,\n"
        "so overload detection saturates there (see EXPERIMENTS.md); use\n"
        "HOMA_BENCH_SCALE=full to resolve the paper's capacity ordering.\n");
    return 0;
}
