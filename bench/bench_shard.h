// Distributed-sweep CLI plumbing shared by the sweep benches.
//
// Every SweepRunner-based bench (sweep_speedup, fig12_13, fig14, table1,
// fig_dag) grows the same two flags through this header:
//
//   --shard=i/N            run only shard i of N (global-index seeds, so
//                          the slice is byte-identical to the same points
//                          of an unsharded run) and write a shard results
//                          file instead of the human-readable table
//   --merge <files...>     merge shard results files (any order) into a
//                          full-coverage results file, verifying complete
//                          non-overlapping coverage
//   --results FILE         where to write the shard/merged file
//                          (defaults: <sweep>.shard<i>of<N>.json in
//                          shard mode, <sweep>.merged.json in merge
//                          mode; the chosen path is printed either way)
//   --verify-against FILE  with --merge: compare the merged sweep
//                          fingerprint (and every per-point fingerprint)
//                          against another results file — the unsharded
//                          run — and fail on any difference
//
// The heavy lifting (formats, merge validation, fingerprints) lives in
// src/driver/sweep_shard.*; this header only adapts argv and prints.
#pragma once

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/sweep_shard.h"

namespace homa::bench {

struct SweepCli {
    bool sharded = false;
    ShardSpec shard;
    bool merge = false;
    std::vector<std::string> mergeInputs;
    std::string resultsOut;
    std::string verifyAgainst;
    /// Args not consumed by the shard/merge flags, for the bench's own
    /// positional parameters (e.g. sweep_speedup's output path).
    std::vector<std::string> positional;
};

/// Parses the shared sweep flags out of argv; exits(2) with a usage
/// message on a malformed flag. Everything unrecognized lands in
/// `positional` untouched.
inline SweepCli parseSweepCli(int argc, char** argv) {
    SweepCli cli;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        auto needValue = [&](const char* flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg.rfind("--shard=", 0) == 0) {
            if (!parseShardSpec(arg.substr(8), cli.shard)) {
                std::fprintf(stderr,
                             "--shard expects i/N with 0 <= i < N, got "
                             "'%s'\n", arg.c_str() + 8);
                std::exit(2);
            }
            cli.sharded = true;
        } else if (arg == "--shard") {
            const std::string spec = needValue("--shard");
            if (!parseShardSpec(spec, cli.shard)) {
                std::fprintf(stderr,
                             "--shard expects i/N with 0 <= i < N, got "
                             "'%s'\n", spec.c_str());
                std::exit(2);
            }
            cli.sharded = true;
        } else if (arg == "--merge") {
            cli.merge = true;
        } else if (arg == "--results") {
            cli.resultsOut = needValue("--results");
        } else if (arg == "--verify-against") {
            cli.verifyAgainst = needValue("--verify-against");
        } else if (cli.merge) {
            cli.mergeInputs.push_back(arg);
        } else {
            cli.positional.push_back(arg);
        }
    }
    if (cli.sharded && cli.merge) {
        std::fprintf(stderr, "--shard and --merge are mutually exclusive\n");
        std::exit(2);
    }
    if (cli.merge && cli.mergeInputs.empty()) {
        std::fprintf(stderr, "--merge needs at least one shard file\n");
        std::exit(2);
    }
    if (!cli.verifyAgainst.empty() && !cli.merge) {
        std::fprintf(stderr, "--verify-against only applies to --merge\n");
        std::exit(2);
    }
    return cli;
}

/// Compares two results files via the library's sweepsIdentical oracle;
/// prints the divergences (or the success line). Returns true when
/// byte-identical.
inline bool verifySameSweep(const ShardFile& merged, const ShardFile& ref) {
    std::string err;
    if (!sweepsIdentical(merged, ref, err)) {
        std::fprintf(stderr, "verify: %s\n", err.c_str());
        return false;
    }
    std::printf("verify: merged sweep identical to the reference run "
                "(fingerprint %s, %zu points)\n",
                sweepFingerprint(merged.points).c_str(),
                merged.points.size());
    return true;
}

/// --shard mode driver: run the slice, write the shard results file,
/// print a short summary. Returns the process exit code.
inline int runShardedSweep(const char* sweepName, const SweepCli& cli,
                           const SweepOptions& opts,
                           std::vector<ExperimentConfig> configs,
                           const std::vector<std::string>& labels) {
    const size_t total = configs.size();
    const ShardOutcome outcome =
        SweepRunner(opts).runShard(std::move(configs), cli.shard);
    const ShardFile f =
        shardFileFromOutcome(sweepName, opts, cli.shard, outcome, labels);
    std::string path = cli.resultsOut;
    if (path.empty()) {
        path = std::string(sweepName) + ".shard" +
               std::to_string(cli.shard.index) + "of" +
               std::to_string(cli.shard.count) + ".json";
    }
    if (!writeTextFile(path, writeShardFile(f))) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::printf("shard %d/%d: %zu of %zu points on %d threads in %.2f s, "
                "fingerprint %s\nwrote %s\n",
                cli.shard.index, cli.shard.count, outcome.indices.size(),
                total, outcome.threadsUsed, outcome.wallSeconds,
                sweepFingerprint(f.points).c_str(), path.c_str());
    return 0;
}

/// --merge mode driver: parse + merge the shard files, optionally verify
/// against a reference results file, write the merged file. Returns the
/// process exit code.
inline int runShardMerge(const char* sweepName, const SweepCli& cli) {
    std::vector<ShardFile> shards;
    for (const std::string& path : cli.mergeInputs) {
        std::string text, err;
        ShardFile f;
        if (!readTextFile(path, text)) {
            std::fprintf(stderr, "cannot read %s\n", path.c_str());
            return 1;
        }
        if (!parseShardFile(text, f, err)) {
            std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
            return 1;
        }
        shards.push_back(std::move(f));
    }
    ShardFile merged;
    std::string err;
    if (!mergeShardFiles(shards, merged, err)) {
        std::fprintf(stderr, "merge failed: %s\n", err.c_str());
        return 1;
    }
    if (sweepName != nullptr && merged.sweep != sweepName) {
        std::fprintf(stderr,
                     "merge: shard files are from sweep \"%s\", not "
                     "\"%s\"\n", merged.sweep.c_str(), sweepName);
        return 1;
    }
    std::printf("merged %zu shard files: %zu points, fingerprint %s\n",
                shards.size(), merged.points.size(),
                sweepFingerprint(merged.points).c_str());
    if (!cli.verifyAgainst.empty()) {
        std::string text;
        ShardFile ref;
        if (!readTextFile(cli.verifyAgainst, text)) {
            std::fprintf(stderr, "cannot read %s\n",
                         cli.verifyAgainst.c_str());
            return 1;
        }
        if (!parseShardFile(text, ref, err)) {
            std::fprintf(stderr, "%s: %s\n", cli.verifyAgainst.c_str(),
                         err.c_str());
            return 1;
        }
        if (!verifySameSweep(merged, ref)) return 1;
    }
    std::string path = cli.resultsOut;
    if (path.empty()) path = merged.sweep + ".merged.json";
    if (!writeTextFile(path,
                       writeShardFile(merged, benchCompatExtras(merged)))) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", path.c_str());
    return 0;
}

}  // namespace homa::bench
