// Figure 1: the five workloads' message-size distributions, as a table —
// cumulative % of messages (upper graph) and of bytes (lower graph) at a
// log-spaced grid of sizes. Validates the synthetic distributions against
// the properties the paper states (ordering by mean, decile ticks, W1-W3
// byte mass concentrated far below W4-W5's).
#include "bench_common.h"

using namespace homa;
using namespace homa::bench;

int main() {
    printHeader("Figure 1: workload message-size distributions",
                "cumulative %% of messages and of bytes vs size, W1-W5");

    const std::vector<uint32_t> grid = {10,     100,     1000,    10000,
                                        100000, 1000000, 10000000};

    std::vector<std::string> header{"size<="};
    for (WorkloadId wl : kAllWorkloads) header.push_back(workload(wl).name());

    std::printf("Cumulative %% of messages:\n");
    Table msgs(header);
    for (uint32_t s : grid) {
        std::vector<std::string> row{Table::bytes(s)};
        for (WorkloadId wl : kAllWorkloads) {
            row.push_back(Table::num(100.0 * workload(wl).cdf(s), 1));
        }
        msgs.addRow(std::move(row));
    }
    std::printf("%s\n", msgs.format().c_str());

    std::printf("Cumulative %% of bytes:\n");
    Table bytes(header);
    for (uint32_t s : grid) {
        std::vector<std::string> row{Table::bytes(s)};
        for (WorkloadId wl : kAllWorkloads) {
            row.push_back(Table::num(100.0 * workload(wl).byteWeightedCdf(s), 1));
        }
        bytes.addRow(std::move(row));
    }
    std::printf("%s\n", bytes.format().c_str());

    Table stats({"Workload", "mean size", "mean wire bytes",
                 "unsched fraction @9.6KB"});
    for (WorkloadId wl : kAllWorkloads) {
        const auto& d = workload(wl);
        // Unscheduled byte fraction with the fat-tree RTTbytes.
        Rng rng(3);
        double total = 0, unsched = 0;
        for (int i = 0; i < 100000; i++) {
            const double s = d.sample(rng);
            total += s;
            unsched += std::min(s, 9640.0);
        }
        stats.addRow({d.name(), Table::bytes(static_cast<int64_t>(d.meanSize())),
                      Table::bytes(static_cast<int64_t>(d.meanWireBytes())),
                      Table::num(unsched / total, 2)});
    }
    std::printf("%s\n", stats.format().c_str());
    std::printf(
        "Expected shape (paper): workloads ordered W1 < ... < W5 by mean;\n"
        "W1-W3 have >85%% of *messages* under 1000 B; W5's bytes are almost\n"
        "entirely in multi-MB messages; the unscheduled fraction drives the\n"
        "priority split of Figure 4 (W2 ~0.8 -> 6 of 8 levels unscheduled,\n"
        "W4/W5 ~0 -> 1 level).\n");
    return 0;
}
