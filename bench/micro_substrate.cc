// Micro-benchmarks of the simulator substrate (google-benchmark): these
// bound how much simulated traffic the experiment harnesses can push.
#include <benchmark/benchmark.h>

#include "sim/event_loop.h"
#include "sim/qdisc.h"
#include "sim/random.h"
#include "transport/message.h"
#include "wire/header.h"
#include "workload/workloads.h"

namespace homa {
namespace {

void BM_EventLoopScheduleRun(benchmark::State& state) {
    for (auto _ : state) {
        EventLoop loop;
        int sink = 0;
        for (int i = 0; i < 1000; i++) {
            loop.at(i, [&sink] { sink++; });
        }
        loop.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopScheduleRun);

void BM_StrictPriorityQdisc(benchmark::State& state) {
    StrictPriorityQdisc q;
    Rng rng(1);
    Packet p;
    p.type = PacketType::Data;
    p.length = kMaxPayload;
    for (auto _ : state) {
        for (int i = 0; i < 64; i++) {
            p.priority = static_cast<uint8_t>(rng.below(8));
            q.enqueue(p);
        }
        for (int i = 0; i < 64; i++) benchmark::DoNotOptimize(q.dequeue());
    }
    state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_StrictPriorityQdisc);

void BM_PFabricQdisc(benchmark::State& state) {
    PFabricQdisc q;
    Rng rng(1);
    Packet p;
    p.type = PacketType::Data;
    p.length = kMaxPayload;
    for (auto _ : state) {
        for (int i = 0; i < 24; i++) {
            p.remaining = static_cast<uint32_t>(rng.below(1 << 20));
            p.msg = rng.below(8);
            q.enqueue(p);
        }
        for (int i = 0; i < 24; i++) benchmark::DoNotOptimize(q.dequeue());
    }
    state.SetItemsProcessed(state.iterations() * 48);
}
BENCHMARK(BM_PFabricQdisc);

void BM_WireCodecRoundTrip(benchmark::State& state) {
    Packet p;
    p.type = PacketType::Data;
    p.src = 3;
    p.dst = 77;
    p.msg = 123456789;
    p.offset = 4242;
    p.length = 1442;
    p.messageLength = 1 << 20;
    std::array<std::byte, wire::kWireHeaderSize> buf;
    for (auto _ : state) {
        wire::encodeHeader(p, buf);
        auto decoded = wire::decodeHeader(buf);
        benchmark::DoNotOptimize(decoded);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireCodecRoundTrip);

void BM_ReassemblyInOrder(benchmark::State& state) {
    for (auto _ : state) {
        Reassembly r(100 * kMaxPayload);
        for (int i = 0; i < 100; i++) {
            r.addRange(i * kMaxPayload, kMaxPayload);
        }
        benchmark::DoNotOptimize(r.complete());
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_ReassemblyInOrder);

void BM_ReassemblyReverse(benchmark::State& state) {
    for (auto _ : state) {
        Reassembly r(100 * kMaxPayload);
        for (int i = 99; i >= 0; i--) {
            r.addRange(i * kMaxPayload, kMaxPayload);
        }
        benchmark::DoNotOptimize(r.complete());
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_ReassemblyReverse);

void BM_WorkloadSample(benchmark::State& state) {
    const SizeDistribution& dist =
        workload(static_cast<WorkloadId>(state.range(0)));
    Rng rng(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(dist.sample(rng));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkloadSample)->DenseRange(0, 4);

}  // namespace
}  // namespace homa

BENCHMARK_MAIN();
