// Table 1: mean and max queue lengths (Kbytes) at switch egress ports, by
// network level, Homa at 80% load. Validates the paper's claim that Homa's
// buffering stays far below switch capacity (no congestion in the core;
// bounded TOR->host occupancy from overcommitment + unscheduled bursts).
// The five workload points run in parallel via SweepRunner; HOMA_SCENARIO
// selects a non-uniform traffic pattern (incast/rack-skew shift where the
// buffering shows up). --shard=i/N / --merge distribute the points across
// machines (see bench/bench_shard.h).
#include "bench_common.h"
#include "bench_shard.h"

using namespace homa;
using namespace homa::bench;

int main(int argc, char** argv) {
    const SweepCli cli = parseSweepCli(argc, argv);
    if (cli.merge) return runShardMerge("table1", cli);
    printHeader("Table 1: switch queue lengths at 80% load",
                "mean/max queued Kbytes per egress port, by network level");

    std::vector<ExperimentConfig> configs;
    std::vector<std::string> labels;
    for (WorkloadId wl : kAllWorkloads) {
        ExperimentConfig cfg;
        cfg.traffic.workload = wl;
        cfg.traffic.load = 0.8;
        cfg.traffic.stop = simWindow();
        cfg.traffic.scenario = scenarioFromEnv();
        labels.push_back(workload(wl).name());
        configs.push_back(std::move(cfg));
    }
    if (cli.sharded) {
        return runShardedSweep("table1", cli, sweepOptionsFromEnv(),
                               std::move(configs), labels);
    }
    SweepOutcome sweep = SweepRunner(sweepOptionsFromEnv()).run(std::move(configs));

    Table table({"Queue", "", "W1", "W2", "W3", "W4", "W5"});
    std::vector<std::array<QueueOccupancy, 3>> cols;
    for (const ExperimentResult& r : sweep.results) {
        cols.push_back({r.torUp, r.aggrDown, r.torDown});
    }
    const char* levels[3] = {"TOR->Aggr", "Aggr->TOR", "TOR->host"};
    for (int lvl = 0; lvl < 3; lvl++) {
        std::vector<std::string> meanRow{levels[lvl], "mean"};
        std::vector<std::string> maxRow{"", "max"};
        for (const auto& c : cols) {
            meanRow.push_back(Table::num(c[lvl].meanBytes / 1000.0, 1));
            maxRow.push_back(
                Table::num(static_cast<double>(c[lvl].maxBytes) / 1000.0, 1));
        }
        table.addRow(std::move(meanRow));
        table.addRow(std::move(maxRow));
    }
    std::printf("%s\n", table.format().c_str());
    printSweepFooter(sweep);
    std::printf(
        "Expected shape (paper): core queues (TOR->Aggr, Aggr->TOR) stay\n"
        "tiny (~1-2 KB mean, <100 KB max); TOR->host means grow with\n"
        "message size (1.7-17 KB) and peak around ~150 KB — well within\n"
        "commodity switch buffers, so drops are rare.\n");
    return 0;
}
