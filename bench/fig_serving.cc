// Multi-tenant serving: p2c-vs-random tail latency + hedging ledgers
// -> BENCH_serving.json.
//
// Three measurements in one artifact (tools/bench_compare gates each):
//
//  1. Load balancing: a 3-tenant serving mix (one incast-heavy open-loop
//     fleet, one uniform open-loop fleet, one closed-loop fleet) against
//     a shared replica group, run twice — replica selection by
//     power-of-two-choices on outstanding-RPC depth, then by random
//     pick. The headline gate: the incast-heavy tenant's p99 slowdown
//     under p2c must be *strictly below* random (the classic
//     power-of-two-choices queueing win, reproduced on the simulated
//     fabric).
//  2. Hedging conservation: the same mix with SLO-aware hedging (p95)
//     enabled; the ServingStats ledgers must balance exactly
//     (issued == won + cancelled + failed, bytes conserved) — recorded
//     as a flag bench_compare hard-fails on.
//  3. Determinism: the hedged run must replay byte-identical serial vs
//     the 4-thread parallel engine, and a 2-point p2c/random sweep must
//     be byte-identical run 1-wide vs N-wide (fingerprint-level flags,
//     hard CI failures at any tolerance).
//
//   ./bench_fig_serving [output.json]   (default BENCH_serving.json)
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "driver/rpc_experiment.h"
#include "driver/sweep_shard.h"

using namespace homa;
using namespace homa::bench;

namespace {

// The 3-tenant mix of the acceptance scenario. The replica group is kept
// small (4 servers behind 12 clients) so selection quality matters: at
// ~80% aggregate replica load, random assignment's transient imbalance
// queues where power-of-two-choices steers around it.
RpcExperimentConfig servingPoint(LbPolicy lb, bool hedged) {
    RpcExperimentConfig cfg;
    cfg.net = NetworkConfig::singleRack16();
    cfg.seed = 29;
    cfg.stop = fullScale() ? milliseconds(60) : milliseconds(15);

    TenantConfig burst;  // incast-heavy: 6 clients fan into the 4 replicas
    burst.name = "burst";
    burst.workload = WorkloadId::W1;
    burst.mode = ArrivalMode::Open;
    burst.load = 0.35;
    burst.clients = 6;

    TenantConfig web;  // uniform background mix
    web.name = "web";
    web.workload = WorkloadId::W3;
    web.mode = ArrivalMode::Open;
    web.load = 0.25;
    web.clients = 4;

    TenantConfig batch;  // closed-loop: windowed, self-clocked
    batch.name = "batch";
    batch.workload = WorkloadId::W2;
    batch.mode = ArrivalMode::Closed;
    batch.window = 4;
    batch.clients = 2;

    ReplicaGroupConfig pool;
    pool.name = "pool";
    pool.replicas = 0;  // all 4 remaining hosts
    pool.policy = lb;
    if (hedged) pool.hedgePercentile = 0.95;

    cfg.serving.tenants = {burst, web, batch};
    cfg.serving.groups = {pool};
    return cfg;
}

bool ledgersBalance(const ServingStats& s) {
    return s.callsIssued == s.logicalIssued + s.hedgesIssued &&
           s.responsesConsumed == s.logicalCompleted &&
           s.hedgesIssued == s.hedgesWon + s.hedgesCancelled + s.hedgesFailed &&
           s.primariesCancelled == s.hedgesWon &&
           s.issuedBytes ==
               s.consumedBytes + s.refundedBytes + s.unresolvedBytes;
}

}  // namespace

int main(int argc, char** argv) {
    const std::string outPath = argc > 1 ? argv[1] : "BENCH_serving.json";
    printHeader("Serving: replica selection tail latency + hedging ledgers",
                "3-tenant mix, p2c vs random replica choice "
                "(BENCH_serving.json)");

    // --- 1. p2c vs random tail latency -----------------------------
    const RpcExperimentConfig p2cCfg = servingPoint(LbPolicy::PowerOfTwo,
                                                    /*hedged=*/false);
    const RpcExperimentConfig randCfg = servingPoint(LbPolicy::Random,
                                                     /*hedged=*/false);
    const RpcExperimentResult p2c = runRpcExperiment(p2cCfg);
    const RpcExperimentResult rnd = runRpcExperiment(randCfg);

    Table t({"tenant", "policy", "ops", "p50 us", "p99 us", "slow p99"});
    for (int i = 0; i < p2c.tenants->tenants(); i++) {
        const std::string name = p2cCfg.serving.tenants[i].name;
        t.addRow({name, "p2c", std::to_string(p2c.tenants->completed(i)),
                  Table::num(p2c.tenants->latencyPercentileUs(i, 0.50)),
                  Table::num(p2c.tenants->latencyPercentileUs(i, 0.99)),
                  Table::num(p2c.tenants->slowdownPercentile(i, 0.99))});
        t.addRow({name, "random", std::to_string(rnd.tenants->completed(i)),
                  Table::num(rnd.tenants->latencyPercentileUs(i, 0.50)),
                  Table::num(rnd.tenants->latencyPercentileUs(i, 0.99)),
                  Table::num(rnd.tenants->slowdownPercentile(i, 0.99))});
    }
    std::printf("%s\n", t.format().c_str());

    // The acceptance gate rides the incast-heavy tenant (index 0).
    const double p2cP99 = p2c.tenants->slowdownPercentile(0, 0.99);
    const double randP99 = rnd.tenants->slowdownPercentile(0, 0.99);
    const bool p2cWins = p2cP99 < randP99;
    std::printf("incast-heavy tenant p99 slowdown: p2c %.3f vs random %.3f "
                "-> %s\n", p2cP99, randP99,
                p2cWins ? "p2c wins" : "P2C DOES NOT WIN");

    // --- 2. hedging conservation ------------------------------------
    const RpcExperimentConfig hedgedCfg =
        servingPoint(LbPolicy::PowerOfTwo, /*hedged=*/true);
    const RpcExperimentResult hedged = runRpcExperiment(hedgedCfg);
    const ServingStats& hs = hedged.serving;
    const bool conserved = ledgersBalance(hs);
    const TenantHedgeStats hedgeTotals = hedged.tenants->totalHedges();
    std::printf("hedged (p95): %llu hedges = %llu won + %llu cancelled + "
                "%llu failed; ledgers %s\n",
                static_cast<unsigned long long>(hs.hedgesIssued),
                static_cast<unsigned long long>(hs.hedgesWon),
                static_cast<unsigned long long>(hs.hedgesCancelled),
                static_cast<unsigned long long>(hs.hedgesFailed),
                conserved ? "balance" : "DO NOT BALANCE");
    (void)hedgeTotals;

    // --- 3. determinism flags ---------------------------------------
    RpcExperimentConfig parallelCfg = hedgedCfg;
    parallelCfg.parallel.threads = 4;
    const RpcExperimentResult threaded = runRpcExperiment(parallelCfg);
    const bool serialParallelIdentical =
        resultFingerprint(hedged) == resultFingerprint(threaded);
    std::printf("serial vs --sim-threads 4 byte-identical: %s\n",
                serialParallelIdentical ? "yes" : "NO");

    SweepOptions one;
    one.threads = 1;
    one.deriveSeeds = true;
    one.baseSeed = 13;
    SweepOptions many = one;
    many.threads = 4;
    const std::vector<RpcExperimentConfig> grid{p2cCfg, randCfg, hedgedCfg};
    const RpcSweepOutcome wide1 = runRpcSweep(grid, one);
    const RpcSweepOutcome wideN = runRpcSweep(grid, many);
    bool sweepIdentical = wide1.results.size() == wideN.results.size();
    for (size_t i = 0; sweepIdentical && i < wide1.results.size(); i++) {
        sweepIdentical = resultFingerprint(wide1.results[i]) ==
                         resultFingerprint(wideN.results[i]);
    }
    std::printf("sweep 1-wide vs %d-wide byte-identical: %s\n",
                wideN.threadsUsed, sweepIdentical ? "yes" : "NO");

    // --- artifact ----------------------------------------------------
    std::string json = "{\n  \"bench\": \"serving\",\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf), "  \"scale\": \"%s\",\n",
                  fullScale() ? "full" : "quick");
    json += buf;
    std::snprintf(buf, sizeof(buf), "  \"hardware_cores\": %u,\n",
                  std::thread::hardware_concurrency());
    json += buf;
    std::snprintf(buf, sizeof(buf), "  \"hosts\": %d,\n",
                  p2cCfg.net.hostCount());
    json += buf;
    std::snprintf(buf, sizeof(buf), "  \"tenants\": %zu,\n",
                  p2cCfg.serving.tenants.size());
    json += buf;
    std::snprintf(buf, sizeof(buf), "  \"p2c_p99_slowdown\": %.4f,\n",
                  p2cP99);
    json += buf;
    std::snprintf(buf, sizeof(buf), "  \"random_p99_slowdown\": %.4f,\n",
                  randP99);
    json += buf;
    std::snprintf(buf, sizeof(buf), "  \"p2c_p99_latency_us\": %.4f,\n",
                  p2c.tenants->latencyPercentileUs(0, 0.99));
    json += buf;
    std::snprintf(buf, sizeof(buf), "  \"random_p99_latency_us\": %.4f,\n",
                  rnd.tenants->latencyPercentileUs(0, 0.99));
    json += buf;
    std::snprintf(buf, sizeof(buf), "  \"tail_win\": %.4f,\n",
                  p2cP99 > 0 ? randP99 / p2cP99 : 0.0);
    json += buf;
    std::snprintf(buf, sizeof(buf), "  \"hedges_issued\": %llu,\n",
                  static_cast<unsigned long long>(hs.hedgesIssued));
    json += buf;
    std::snprintf(buf, sizeof(buf), "  \"hedges_won\": %llu,\n",
                  static_cast<unsigned long long>(hs.hedgesWon));
    json += buf;
    std::snprintf(buf, sizeof(buf), "  \"hedges_cancelled\": %llu,\n",
                  static_cast<unsigned long long>(hs.hedgesCancelled));
    json += buf;
    std::snprintf(buf, sizeof(buf), "  \"hedges_failed\": %llu,\n",
                  static_cast<unsigned long long>(hs.hedgesFailed));
    json += buf;
    json += std::string("  \"hedge_conservation_holds\": ") +
            (conserved ? "true" : "false") + ",\n";
    json += std::string("  \"serial_parallel_identical\": ") +
            (serialParallelIdentical ? "true" : "false") + ",\n";
    json += std::string("  \"sweep_identical\": ") +
            (sweepIdentical ? "true" : "false") + "\n}\n";

    if (!writeTextFile(outPath, json)) {
        std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
        return 1;
    }
    std::printf("wrote %s\n", outPath.c_str());
    return (p2cWins && conserved && serialParallelIdentical && sweepIdentical)
               ? 0
               : 1;
}
