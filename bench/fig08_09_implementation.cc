// Figures 8 and 9: tail and median slowdown of echo RPCs on the 16-host
// single-switch cluster at 80% network load, for Homa, priority-collapsed
// Homa variants (HomaP1/P2/P4), Basic, and streaming transports.
//
// "Stream-SC" is a single connection per client-server pair (the InfRC
// configuration: unbounded window); "Stream-MC" gives every message its own
// connection (InfRC-MC / TCP-MC). The paper's InfRC numbers were measured
// on a different, faster cluster at 33% load; here every transport runs on
// the same simulated cluster at the same load, which is the comparison the
// paper says would make Homa look even better (§5.1).
#include "bench_common.h"
#include "driver/rpc_experiment.h"

using namespace homa;
using namespace homa::bench;

namespace {

struct Variant {
    std::string name;
    ProtocolConfig proto;
};

std::vector<Variant> variants() {
    std::vector<Variant> v;
    {
        ProtocolConfig p;
        v.push_back({"Homa", p});
    }
    for (int x : {4, 2, 1}) {
        ProtocolConfig p;
        p.homa.wirePriorities = x;
        v.push_back({"HomaP" + std::to_string(x), p});
    }
    {
        ProtocolConfig p;
        p.kind = Protocol::Basic;
        v.push_back({"Basic", p});
    }
    {
        ProtocolConfig p;
        p.kind = Protocol::StreamMC;
        v.push_back({"Stream-MC", p});
    }
    {
        ProtocolConfig p;
        p.kind = Protocol::StreamSC;
        v.push_back({"Stream-SC", p});
    }
    return v;
}

}  // namespace

int main() {
    printHeader("Figures 8 & 9: implementation measurements (echo RPCs)",
                "99th-percentile (Fig 8) and median (Fig 9) RPC slowdown vs "
                "size, W3-W5 at 80% load, 16-host cluster");

    for (WorkloadId wl : {WorkloadId::W3, WorkloadId::W4, WorkloadId::W5}) {
        const SizeDistribution& dist = workload(wl);
        std::printf("--- Workload %s ---\n", dist.name().c_str());

        std::vector<std::pair<std::string, const SlowdownTracker*>> curves;
        std::vector<RpcExperimentResult> results;
        std::vector<std::string> names;
        for (const Variant& var : variants()) {
            RpcExperimentConfig cfg;
            cfg.proto = var.proto;
            cfg.workload = wl;
            cfg.load = 0.8;
            cfg.stop = rpcWindow(wl);
            cfg.drainGrace = milliseconds(120);
            results.push_back(runRpcExperiment(cfg));
            names.push_back(var.name);
        }
        for (size_t i = 0; i < results.size(); i++) {
            curves.emplace_back(names[i], results[i].slowdown.get());
        }

        std::printf("[Figure 8] 99%% slowdown:\n");
        printSlowdownTable(dist, curves, /*tail=*/true);
        std::printf("[Figure 9] median slowdown:\n");
        printSlowdownTable(dist, curves, /*tail=*/false);
        for (size_t i = 0; i < results.size(); i++) {
            std::printf("  %-10s issued=%llu completed=%llu keptUp=%d\n",
                        names[i].c_str(),
                        static_cast<unsigned long long>(results[i].issued),
                        static_cast<unsigned long long>(results[i].completed),
                        static_cast<int>(results[i].keptUp));
        }
        std::printf("\n");
    }
    std::printf(
        "Expected shape (paper): Homa p99 ~2-3.5 for most sizes; Basic 5-15x\n"
        "worse; HomaP4 ~= Homa, HomaP2 worse, HomaP1 still better than Basic;\n"
        "Stream-SC 100-1000x worse for small RPCs (head-of-line blocking);\n"
        "Stream-MC between Basic and Homa.\n");
    return 0;
}
