// Fan-out/fan-in DAG slowdown: per-tree completion-time and slowdown
// percentiles for partition-aggregate request trees, across the six
// protocol families (Homa, Basic, pHost, PIAS, pFabric, NDP).
//
// This is the workload class the paper is motivated by (§1): a
// coordinator fans a query out, every worker may fan out again, and the
// reply waits for the slowest leaf — so the receiver-driven SRPT +
// incast-control machinery either tames the fan-in or the tree tail
// explodes. Three tree shapes: a wide flat aggregation (the Figure 10
// regime with dependencies), a two-level partition-aggregate, and the
// same two-level tree with a 10% straggler shard. The whole protocol x
// shape grid fans out across cores via SweepRunner; HOMA_SCENARIO does
// not apply (the scenario *is* the subject). --shard=i/N / --merge
// distribute the grid across machines (see bench/bench_shard.h).
#include "bench_common.h"
#include "bench_shard.h"

using namespace homa;
using namespace homa::bench;

namespace {

struct Shape {
    const char* name;
    DagConfig dag;
};

std::vector<Shape> shapes() {
    // Aggregators return 16 KB summaries, leaves 2 KB shards; queries are
    // 320 B. Four coordinator hosts keep one tree in flight each.
    DagConfig wide;
    wide.fanout = 24;
    wide.depth = 1;
    wide.roots = 4;
    wide.stageResponseBytes = {2000};

    DagConfig agg;
    agg.fanout = 8;
    agg.depth = 2;
    agg.roots = 4;
    agg.stageResponseBytes = {16000, 2000};

    DagConfig straggle = agg;
    straggle.stragglerFraction = 0.1;
    straggle.stragglerFactor = 20.0;

    return {{"wide fanout=24 depth=1", wide},
            {"partition-aggregate fanout=8 depth=2", agg},
            {"straggler 10% x20", straggle}};
}

}  // namespace

int main(int argc, char** argv) {
    const SweepCli cli = parseSweepCli(argc, argv);
    if (cli.merge) return runShardMerge("fig_dag", cli);
    printHeader("DAG slowdown: fan-out/fan-in RPC dependency trees",
                "per-tree completion and slowdown, partition-aggregate "
                "workloads, 144-host fat-tree");

    const std::vector<std::pair<const char*, Protocol>> protocols = {
        {"Homa", Protocol::Homa},   {"Basic", Protocol::Basic},
        {"pHost", Protocol::PHost}, {"PIAS", Protocol::Pias},
        {"pFabric", Protocol::PFabric}, {"NDP", Protocol::Ndp},
    };

    std::vector<Shape> grid = shapes();
    std::vector<ExperimentConfig> configs;
    std::vector<std::string> labels;
    for (const Shape& shape : grid) {
        for (const auto& [name, kind] : protocols) {
            ExperimentConfig cfg;
            cfg.proto.kind = kind;
            cfg.traffic.workload = WorkloadId::W1;  // sizes fixed per stage
            cfg.traffic.stop = fullScale() ? milliseconds(40) : milliseconds(4);
            cfg.traffic.scenario.kind = TrafficPatternKind::Dag;
            cfg.traffic.scenario.dag = shape.dag;
            labels.push_back(std::string(name) + "/" + shape.name);
            configs.push_back(std::move(cfg));
        }
    }
    if (cli.sharded) {
        return runShardedSweep("fig_dag", cli, sweepOptionsFromEnv(),
                               std::move(configs), labels);
    }
    SweepOutcome sweep = SweepRunner(sweepOptionsFromEnv()).run(std::move(configs));

    size_t i = 0;
    for (const Shape& shape : grid) {
        std::printf("--- %s (req 320 B, W=%d, %d roots) ---\n", shape.name,
                    shape.dag.window, shape.dag.roots);
        Table t({"protocol", "trees", "p50 us", "p99 us", "slow p50",
                 "slow p99", "trees/s", "keptUp"});
        for (const auto& [name, kind] : protocols) {
            const ExperimentResult& r = sweep.results[i++];
            t.addRow({name, std::to_string(r.dag->trees()),
                      Table::num(r.dag->completionPercentileUs(0.50)),
                      Table::num(r.dag->completionPercentileUs(0.99)),
                      Table::num(r.dag->slowdownPercentile(0.50)),
                      Table::num(r.dag->slowdownPercentile(0.99)),
                      std::to_string(static_cast<long long>(
                          r.dag->treesPerSec())),
                      r.keptUp ? "yes" : "no"});
        }
        std::printf("%s\n", t.format().c_str());
    }
    printSweepFooter(sweep);
    std::printf(
        "Expected shape: Homa's grant scheduler + incast control keep the\n"
        "p99 tree tail close to p50 even at fanout 24; protocols without\n"
        "receiver-driven fan-in handling (Basic, pHost) widen at p99, and\n"
        "the straggler row is dominated by the inflated shard for all.\n");
    return 0;
}
