// Micro-benchmarks of the grant scheduling subsystem (google-benchmark).
//
// The headline measurement: per-packet grant update cost (one remaining-
// bytes delta + one active-set decision) as a function of the number of
// tracked inbound messages n. The incremental schedulers should be
// O(log n); the legacy rescan-and-sort the receiver used to do is
// O(n log n) and is reproduced here as the comparison baseline. CI runs
// this binary with --benchmark_format=json to populate BENCH_sched.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "sched/grant_scheduler.h"
#include "sched/srpt_index.h"
#include "sim/event_loop.h"
#include "sim/random.h"

namespace homa {
namespace {

GrantContext benchCtx() {
    GrantContext ctx;
    ctx.degree = 8;
    ctx.schedLevels = 7;
    ctx.rttBytes = 9640;
    return ctx;
}

/// One simulated DATA arrival: delta the message's remaining bytes, then
/// recompute the active set. This is the receiver's per-packet hot path.
void runGrantUpdate(GrantScheduler& s, GrantPolicy, int n, Rng& rng,
                    const GrantContext& ctx, std::vector<ActiveGrant>& out) {
    const MsgId id = 1 + rng.below(static_cast<uint64_t>(n));
    s.update(id, 1000 + static_cast<int64_t>(rng.below(2'000'000)));
    s.decide(ctx, out);
    benchmark::DoNotOptimize(out.data());
}

void grantUpdateBench(benchmark::State& state, GrantPolicy policy) {
    const int n = static_cast<int>(state.range(0));
    auto s = makeGrantScheduler(policy);
    Rng rng(7);
    for (MsgId id = 1; id <= static_cast<MsgId>(n); id++) {
        s->add(id, 1000 + static_cast<int64_t>(rng.below(2'000'000)),
               static_cast<Time>(id));
    }
    const GrantContext ctx = benchCtx();
    std::vector<ActiveGrant> out;
    for (auto _ : state) {
        runGrantUpdate(*s, policy, n, rng, ctx, out);
    }
    state.SetItemsProcessed(state.iterations());
    state.SetComplexityN(n);
}

void BM_GrantUpdate_Srpt(benchmark::State& state) {
    grantUpdateBench(state, GrantPolicy::Srpt);
}
BENCHMARK(BM_GrantUpdate_Srpt)
    ->RangeMultiplier(8)
    ->Range(8, 32768)
    ->Complexity(benchmark::oLogN);

void BM_GrantUpdate_Fifo(benchmark::State& state) {
    grantUpdateBench(state, GrantPolicy::Fifo);
}
BENCHMARK(BM_GrantUpdate_Fifo)->RangeMultiplier(8)->Range(8, 32768);

void BM_GrantUpdate_RoundRobin(benchmark::State& state) {
    grantUpdateBench(state, GrantPolicy::RoundRobin);
}
BENCHMARK(BM_GrantUpdate_RoundRobin)->RangeMultiplier(8)->Range(8, 32768);

void BM_GrantUpdate_Unlimited(benchmark::State& state) {
    grantUpdateBench(state, GrantPolicy::Unlimited);
}
BENCHMARK(BM_GrantUpdate_Unlimited)->RangeMultiplier(8)->Range(8, 32768);

/// The legacy receiver hot path: collect every needy message, sort by
/// remaining, take the top `degree`. O(n log n) per packet — kept as the
/// baseline the incremental scheduler is measured against.
void BM_GrantUpdate_LegacyRescan(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    Rng rng(7);
    std::vector<std::pair<int64_t, MsgId>> messages(n);
    for (int i = 0; i < n; i++) {
        messages[i] = {1000 + static_cast<int64_t>(rng.below(2'000'000)),
                       static_cast<MsgId>(i + 1)};
    }
    std::vector<std::pair<int64_t, MsgId>> needy;
    for (auto _ : state) {
        const size_t victim = rng.below(static_cast<uint64_t>(n));
        messages[victim].first =
            1000 + static_cast<int64_t>(rng.below(2'000'000));
        needy.assign(messages.begin(), messages.end());
        std::sort(needy.begin(), needy.end());
        benchmark::DoNotOptimize(needy.data());
    }
    state.SetItemsProcessed(state.iterations());
    state.SetComplexityN(n);
}
BENCHMARK(BM_GrantUpdate_LegacyRescan)
    ->RangeMultiplier(8)
    ->Range(8, 32768)
    ->Complexity(benchmark::oNLogN);

void BM_SrptIndexUpsert(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    SrptIndex<MsgId> idx;
    Rng rng(3);
    for (MsgId id = 1; id <= static_cast<MsgId>(n); id++) {
        idx.upsert(id, static_cast<int64_t>(rng.below(1 << 20)));
    }
    for (auto _ : state) {
        const MsgId id = 1 + rng.below(static_cast<uint64_t>(n));
        idx.upsert(id, static_cast<int64_t>(rng.below(1 << 20)));
        benchmark::DoNotOptimize(idx.best());
    }
    state.SetItemsProcessed(state.iterations());
    state.SetComplexityN(n);
}
BENCHMARK(BM_SrptIndexUpsert)
    ->RangeMultiplier(8)
    ->Range(8, 32768)
    ->Complexity(benchmark::oLogN);

/// Timer arm/cancel churn: the receiver re-arms its timeout scan on every
/// packet, so this rides the pooled-event slab.
void BM_TimerRearm(benchmark::State& state) {
    EventLoop loop;
    int fired = 0;
    Timer t(loop, [&] { fired++; });
    for (auto _ : state) {
        t.schedule(1000);
    }
    t.cancel();
    loop.run();
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimerRearm);

}  // namespace
}  // namespace homa

BENCHMARK_MAIN();
