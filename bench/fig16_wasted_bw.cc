// Figure 16: receiver bandwidth wasted by overcommitment limits, as a
// function of load, for different numbers of scheduled priority levels
// (the degree of overcommitment). Workload W4.
//
// A receiver "wastes" a sample when its downlink is idle while it holds an
// incomplete inbound message it is withholding grants from. The curve for
// K scheduled priorities intersecting the surplus line (100% - load) marks
// the maximum sustainable load at overcommitment K.
#include "bench_common.h"

using namespace homa;
using namespace homa::bench;

int main() {
    printHeader("Figure 16: wasted bandwidth vs load and overcommitment",
                "W4; receiver downlink idle-while-withholding fraction");

    const std::vector<int> schedPrios =
        fullScale() ? std::vector<int>{1, 2, 3, 4, 5, 7}
                    : std::vector<int>{1, 2, 4, 7};
    const std::vector<int> loads = fullScale()
                                       ? std::vector<int>{40, 50, 60, 70, 80, 90}
                                       : std::vector<int>{50, 70, 80, 90};

    std::vector<std::string> header{"load%", "surplus%"};
    for (int k : schedPrios) header.push_back(std::to_string(k) + " sched");
    Table table(header);

    for (int load : loads) {
        std::vector<std::string> row{std::to_string(load),
                                     std::to_string(100 - load)};
        for (int k : schedPrios) {
            ExperimentConfig cfg;
            cfg.traffic.workload = WorkloadId::W4;
            cfg.traffic.load = load / 100.0;
            cfg.traffic.stop = simWindow();
            // Fix the split: 1 unscheduled level, k scheduled levels
            // (overcommitment degree = k, the paper's policy).
            cfg.proto.homa.logicalPriorities = 1 + k;
            cfg.proto.homa.unschedPriorities = 1;
            cfg.measureWastedBandwidth = true;
            ExperimentResult r = runExperiment(cfg);
            row.push_back(Table::num(100.0 * r.wastedBandwidth, 1));
        }
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.format().c_str());
    std::printf(
        "Expected shape (paper): wasted bandwidth rises with load and falls\n"
        "with more scheduled priorities; with 1 scheduled level W4 cannot\n"
        "get past ~63%% load (wasted ~= surplus), while 7 levels sustain\n"
        "~89%%.\n");
    return 0;
}
