// Figure 21: how the 8 priority levels are actually used (W3) at 50/80/90%
// load: bytes transmitted on each level across all receiver downlinks, as
// a fraction of downlink capacity.
#include "bench_common.h"

using namespace homa;
using namespace homa::bench;

int main() {
    printHeader("Figure 21: priority level usage (W3)",
                "%% of downlink bandwidth per priority level; P0-P3 "
                "scheduled, P4-P7 unscheduled for W3");

    std::vector<std::string> header{"load%"};
    for (int p = 0; p < kPriorityLevels; p++) header.push_back("P" + std::to_string(p));
    Table table(header);

    for (int load : {50, 80, 90}) {
        ExperimentConfig cfg;
        cfg.traffic.workload = WorkloadId::W3;
        cfg.traffic.load = load / 100.0;
        cfg.traffic.stop = simWindow();
        ExperimentResult r = runExperiment(cfg);
        std::vector<std::string> row{std::to_string(load)};
        for (int p = 0; p < kPriorityLevels; p++) {
            row.push_back(Table::num(100.0 * r.prioUsage[p], 1));
        }
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.format().c_str());
    std::printf(
        "Expected shape (paper): the four unscheduled levels (P4-P7) carry\n"
        "roughly equal bytes at every load. At 50%% load scheduled traffic\n"
        "sits almost entirely on P0 (lowest-available policy); as load\n"
        "rises, higher scheduled levels fill up because receivers keep\n"
        "more messages active.\n");
    return 0;
}
