// Figure 14: where Homa's remaining tail delay comes from. For short
// messages near the 99th percentile, split the extra delay into queueing
// delay (waiting behind equal/higher-priority packets) and preemption lag
// (a packet already mid-transmission on a link cannot be preempted).
// The five workload points run in parallel via SweepRunner; HOMA_SCENARIO
// selects a non-uniform traffic pattern. --shard=i/N / --merge distribute
// the points across machines (see bench/bench_shard.h).
#include "bench_common.h"
#include "bench_shard.h"

using namespace homa;
using namespace homa::bench;

int main(int argc, char** argv) {
    const SweepCli cli = parseSweepCli(argc, argv);
    if (cli.merge) return runShardMerge("fig14", cli);
    printHeader("Figure 14: sources of tail delay for short messages",
                "mean queueing delay and preemption lag (us) among short "
                "messages near p99, Homa at 80% load");

    std::vector<ExperimentConfig> configs;
    std::vector<std::string> labels;
    for (WorkloadId wl : kAllWorkloads) {
        ExperimentConfig cfg;
        cfg.traffic.workload = wl;
        cfg.traffic.load = 0.8;
        cfg.traffic.stop = simWindow();
        cfg.traffic.scenario = scenarioFromEnv();
        labels.push_back(workload(wl).name());
        configs.push_back(std::move(cfg));
    }
    if (cli.sharded) {
        return runShardedSweep("fig14", cli, sweepOptionsFromEnv(),
                               std::move(configs), labels);
    }
    SweepOutcome sweep = SweepRunner(sweepOptionsFromEnv()).run(std::move(configs));

    Table table({"Workload", "QueuingDelay (us)", "PreemptionLag (us)"});
    for (size_t i = 0; i < sweep.results.size(); i++) {
        auto [queueing, lag] = sweep.results[i].slowdown->tailDelaySources();
        table.addRow({workload(kAllWorkloads[i]).name(),
                      Table::num(toMicros(queueing)), Table::num(toMicros(lag))});
    }
    std::printf("%s\n", table.format().c_str());
    printSweepFooter(sweep);
    std::printf(
        "Expected shape (paper): tail delay is dominated by preemption lag\n"
        "(~1-2.5 us, one packet serialization per congested hop); queueing\n"
        "delay is the smaller component. Homa is near the hardware limit —\n"
        "only link-level packet preemption could remove the rest.\n");
    return 0;
}
