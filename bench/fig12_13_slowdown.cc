// Figures 12 and 13: one-way message slowdown in the 144-host fat-tree for
// Homa, pFabric, pHost, PIAS (all workloads) and NDP (W5), at high and
// moderate load.
//
// Like the paper, protocols that cannot sustain 80% run at the highest
// load they support (pHost ~60%, NDP ~70%); the 50% row runs everyone at
// 50%.
#include "bench_common.h"

using namespace homa;
using namespace homa::bench;

namespace {

struct Entry {
    std::string name;
    Protocol kind;
    double loadCap;  // highest load this protocol sustains (paper, Fig 15)
};

std::vector<Entry> entries(WorkloadId wl) {
    std::vector<Entry> out = {
        {"Homa", Protocol::Homa, 0.90},
        {"pFabric", Protocol::PFabric, 0.85},
        {"pHost", Protocol::PHost, 0.62},
        {"PIAS", Protocol::Pias, 0.75},
    };
    if (wl == WorkloadId::W5) out.push_back({"NDP", Protocol::Ndp, 0.70});
    return out;
}

void runAtLoad(double requestedLoad) {
    for (WorkloadId wl : kAllWorkloads) {
        const SizeDistribution& dist = workload(wl);
        std::printf("--- Workload %s, %d%% network load ---\n",
                    dist.name().c_str(),
                    static_cast<int>(requestedLoad * 100));

        std::vector<ExperimentResult> results;
        std::vector<std::string> names;
        for (const Entry& e : entries(wl)) {
            ExperimentConfig cfg;
            cfg.proto.kind = e.kind;
            cfg.traffic.workload = wl;
            cfg.traffic.load = std::min(requestedLoad, e.loadCap);
            cfg.traffic.stop = simWindow();
            results.push_back(runExperiment(cfg));
            std::string label = e.name;
            if (cfg.traffic.load < requestedLoad) {
                label += "@" + std::to_string(
                                   static_cast<int>(cfg.traffic.load * 100));
            }
            names.push_back(label);
        }

        std::vector<std::pair<std::string, const SlowdownTracker*>> curves;
        for (size_t i = 0; i < results.size(); i++) {
            curves.emplace_back(names[i], results[i].slowdown.get());
        }
        std::printf("[Figure 12] 99%% slowdown:\n");
        printSlowdownTable(dist, curves, /*tail=*/true);
        std::printf("[Figure 13] median slowdown:\n");
        printSlowdownTable(dist, curves, /*tail=*/false);
        for (size_t i = 0; i < results.size(); i++) {
            std::printf("  %-12s delivered %llu/%llu keptUp=%d drops=%llu\n",
                        names[i].c_str(),
                        static_cast<unsigned long long>(results[i].delivered),
                        static_cast<unsigned long long>(results[i].generated),
                        static_cast<int>(results[i].keptUp),
                        static_cast<unsigned long long>(results[i].switchDrops));
        }
        std::printf("\n");
    }
}

}  // namespace

int main() {
    printHeader("Figures 12 & 13: simulation slowdown comparison",
                "99th-percentile and median one-way slowdown vs message "
                "size, 144-host fat-tree");
    runAtLoad(0.8);
    runAtLoad(0.5);
    std::printf(
        "Expected shape (paper): Homa ~= pFabric and well under pHost/PIAS\n"
        "for small messages (p99 <= ~2.2 for the shortest half of each\n"
        "workload at 80%%); PIAS jumps for messages > 1 packet; NDP is\n"
        "uniformly worse for multi-RTT messages (fair-share, no SRPT).\n");
    return 0;
}
