// Figures 12 and 13: one-way message slowdown in the 144-host fat-tree for
// Homa, pFabric, pHost, PIAS (all workloads) and NDP (W5), at high and
// moderate load.
//
// Like the paper, protocols that cannot sustain 80% run at the highest
// load they support (pHost ~60%, NDP ~70%); the 50% row runs everyone at
// 50%. The whole load x workload x protocol grid fans out across cores via
// SweepRunner (results are identical to the sequential run); HOMA_SCENARIO
// selects a non-uniform traffic pattern. --shard=i/N / --merge distribute
// the grid across machines (see bench/bench_shard.h).
#include "bench_common.h"
#include "bench_shard.h"

using namespace homa;
using namespace homa::bench;

namespace {

struct Entry {
    std::string name;
    Protocol kind;
    double loadCap;  // highest load this protocol sustains (paper, Fig 15)
};

std::vector<Entry> entries(WorkloadId wl) {
    std::vector<Entry> out = {
        {"Homa", Protocol::Homa, 0.90},
        {"pFabric", Protocol::PFabric, 0.85},
        {"pHost", Protocol::PHost, 0.62},
        {"PIAS", Protocol::Pias, 0.75},
    };
    if (wl == WorkloadId::W5) out.push_back({"NDP", Protocol::Ndp, 0.70});
    return out;
}

struct Point {
    double requestedLoad;
    WorkloadId wl;
    std::string label;
};

}  // namespace

int main(int argc, char** argv) {
    const SweepCli cli = parseSweepCli(argc, argv);
    if (cli.merge) return runShardMerge("fig12_13", cli);
    printHeader("Figures 12 & 13: simulation slowdown comparison",
                "99th-percentile and median one-way slowdown vs message "
                "size, 144-host fat-tree");

    const ScenarioConfig scenario = scenarioFromEnv();

    // Build the whole grid up front, then fan it across the thread pool.
    std::vector<Point> points;
    std::vector<ExperimentConfig> configs;
    for (double requestedLoad : {0.8, 0.5}) {
        for (WorkloadId wl : kAllWorkloads) {
            for (const Entry& e : entries(wl)) {
                ExperimentConfig cfg;
                cfg.proto.kind = e.kind;
                cfg.traffic.workload = wl;
                cfg.traffic.load = std::min(requestedLoad, e.loadCap);
                cfg.traffic.stop = simWindow();
                cfg.traffic.scenario = scenario;
                std::string label = e.name;
                if (cfg.traffic.load < requestedLoad) {
                    label += '@';
                    label += std::to_string(
                        static_cast<int>(cfg.traffic.load * 100));
                }
                points.push_back({requestedLoad, wl, std::move(label)});
                configs.push_back(std::move(cfg));
            }
        }
    }
    if (cli.sharded) {
        std::vector<std::string> labels;
        labels.reserve(points.size());
        for (const Point& p : points) {
            labels.push_back(workload(p.wl).name() + "/" + p.label + "@" +
                             std::to_string(
                                 static_cast<int>(p.requestedLoad * 100)));
        }
        return runShardedSweep("fig12_13", cli, sweepOptionsFromEnv(),
                               std::move(configs), labels);
    }
    SweepOutcome sweep = SweepRunner(sweepOptionsFromEnv()).run(std::move(configs));

    // Group consecutive points by their stored (load, workload): the
    // grouping comes from the data, not a mirrored copy of the build loop.
    for (size_t i = 0; i < points.size();) {
        const double requestedLoad = points[i].requestedLoad;
        const WorkloadId wl = points[i].wl;
        const SizeDistribution& dist = workload(wl);
        std::printf("--- Workload %s, %d%% network load ---\n",
                    dist.name().c_str(),
                    static_cast<int>(requestedLoad * 100));

        const size_t first = i;
        std::vector<std::pair<std::string, const SlowdownTracker*>> curves;
        for (; i < points.size() && points[i].requestedLoad == requestedLoad &&
               points[i].wl == wl;
             i++) {
            curves.emplace_back(points[i].label,
                                sweep.results[i].slowdown.get());
        }
        std::printf("[Figure 12] 99%% slowdown:\n");
        printSlowdownTable(dist, curves, /*tail=*/true);
        std::printf("[Figure 13] median slowdown:\n");
        printSlowdownTable(dist, curves, /*tail=*/false);
        for (size_t j = first; j < i; j++) {
            const ExperimentResult& r = sweep.results[j];
            std::printf("  %-12s delivered %llu/%llu keptUp=%d drops=%llu\n",
                        points[j].label.c_str(),
                        static_cast<unsigned long long>(r.delivered),
                        static_cast<unsigned long long>(r.generated),
                        static_cast<int>(r.keptUp),
                        static_cast<unsigned long long>(r.switchDrops));
        }
        std::printf("\n");
    }
    printSweepFooter(sweep);
    std::printf(
        "Expected shape (paper): Homa ~= pFabric and well under pHost/PIAS\n"
        "for small messages (p99 <= ~2.2 for the shortest half of each\n"
        "workload at 80%%); PIAS jumps for messages > 1 packet; NDP is\n"
        "uniformly worse for multi-RTT messages (fair-share, no SRPT).\n");
    return 0;
}
