// Figure 17: how many unscheduled priority levels does W1 need? Sweep the
// number of unscheduled levels with a single scheduled level, at 80% load.
#include "bench_common.h"

using namespace homa;
using namespace homa::bench;

int main() {
    printHeader("Figure 17: unscheduled priority levels (W1)",
                "99% slowdown vs size with 1,2,3,7 unscheduled levels "
                "(1 scheduled), 80% load");

    const SizeDistribution& dist = workload(WorkloadId::W1);
    std::vector<ExperimentResult> results;
    std::vector<std::string> names;
    for (int u : {1, 2, 3, 7}) {
        ExperimentConfig cfg;
        cfg.traffic.workload = WorkloadId::W1;
        cfg.traffic.load = 0.8;
        cfg.traffic.stop = simWindow();
        cfg.proto.homa.logicalPriorities = u + 1;  // u unsched + 1 sched
        cfg.proto.homa.unschedPriorities = u;
        results.push_back(runExperiment(cfg));
        names.push_back(std::to_string(u) + " unsched");
    }
    std::vector<std::pair<std::string, const SlowdownTracker*>> curves;
    for (size_t i = 0; i < results.size(); i++) {
        curves.emplace_back(names[i], results[i].slowdown.get());
    }
    printSlowdownTable(dist, curves, /*tail=*/true);
    std::printf(
        "Expected shape (paper): one unscheduled level is ~2.5x worse for\n"
        "most sizes; the second level helps over 80%% of messages; levels\n"
        "beyond 2-3 give diminishing gains.\n");
    return 0;
}
