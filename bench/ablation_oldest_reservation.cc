// Ablation of the paper's §5.1 future-work idea: "the performance of these
// outliers [the very largest messages, p99 slowdown 100x+] could be
// improved by dedicating a small fraction of downlink bandwidth to the
// oldest message."
//
// We run W4 at 80% load with the reservation off and at 5%/10%/20%, and
// report the p99 slowdown of the largest decile (the outliers SRPT
// starves) next to the small-message p99 (which must not regress).
#include "bench_common.h"

using namespace homa;
using namespace homa::bench;

int main() {
    printHeader("Ablation: oldest-message bandwidth reservation",
                "the §5.1 future-work fix for SRPT's largest-message "
                "outliers, W4 at 80% load");

    Table table({"reservation", "p99 smallest decile", "p99 median decile",
                 "p99 largest decile", "keptUp"});
    for (double frac : {0.0, 0.05, 0.10, 0.20}) {
        ExperimentConfig cfg;
        cfg.traffic.workload = WorkloadId::W4;
        cfg.traffic.load = 0.8;
        cfg.traffic.stop = simWindow();
        cfg.proto.homa.oldestReservation = frac;
        ExperimentResult r = runExperiment(cfg);
        auto rows = r.slowdown->rows();
        table.addRow({Table::num(frac, 2), Table::num(rows[0].p99),
                      Table::num(rows[5].p99), Table::num(rows[9].p99),
                      r.keptUp ? "yes" : "no"});
    }
    std::printf("%s\n", table.format().c_str());
    std::printf(
        "Finding: the targeted mechanism works (tests show a deliberately\n"
        "starved transfer completes strictly sooner with the reservation),\n"
        "and small messages are unharmed — but at high load the *aggregate*\n"
        "large-decile tail can get worse: only one message is protected at\n"
        "a time while every other large message donates the reserved\n"
        "bandwidth. The paper's \"we leave a full analysis to future work\"\n"
        "is warranted: a naive oldest-first reservation is not a free win.\n");
    return 0;
}
