#include "sched/grant_scheduler.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <utility>

#include "sched/round_robin.h"
#include "sched/srpt_index.h"

namespace homa {

const char* grantPolicyName(GrantPolicy p) {
    switch (p) {
        case GrantPolicy::Srpt: return "srpt";
        case GrantPolicy::Fifo: return "fifo";
        case GrantPolicy::RoundRobin: return "rr";
        case GrantPolicy::Unlimited: return "unlimited";
    }
    return "?";
}

int scheduledLevelFor(int rank, int activeCount, int schedLevels) {
    return std::min(activeCount - 1 - rank, schedLevels - 1);
}

namespace {

int resolveDegree(const GrantContext& ctx) {
    return ctx.degree > 0 ? ctx.degree : ctx.schedLevels;
}

/// The paper's receiver: SRPT active set with overcommitment, Figure 5
/// priority assignment, and the optional §5.1 oldest-message reservation.
class SrptScheduler final : public GrantScheduler {
public:
    void add(MsgId id, int64_t remaining, Time created) override {
        order_.upsert(id, remaining);
        if (created_.emplace(id, created).second) byAge_.emplace(created, id);
    }

    void update(MsgId id, int64_t remaining) override {
        order_.upsert(id, remaining);
    }

    void remove(MsgId id) override {
        if (!order_.erase(id)) return;
        auto it = created_.find(id);
        byAge_.erase({it->second, id});
        created_.erase(it);
    }

    bool contains(MsgId id) const override { return order_.contains(id); }
    size_t size() const override { return order_.size(); }
    int withheld() const override { return withheld_; }

    void decide(const GrantContext& ctx, std::vector<ActiveGrant>& out) override {
        out.clear();
        const int active = std::min<int>(resolveDegree(ctx),
                                         static_cast<int>(order_.size()));
        withheld_ = static_cast<int>(order_.size()) - active;
        if (active == 0) return;

        // §5.1 extension: the oldest incomplete message always occupies the
        // last active slot (with a reduced window at the top scheduled
        // level) so pure SRPT cannot starve it forever.
        MsgId reserved = 0;
        bool haveReserved = false;
        if (ctx.oldestReservation > 0 && !byAge_.empty()) {
            reserved = byAge_.begin()->second;
            haveReserved = true;
        }

        int rank = 0;
        bool reservedListed = false;
        order_.visitInOrder([&](MsgId id, int64_t) {
            if (rank >= active) return false;
            // Leave the last slot for the reserved message if it would not
            // make the cut on its own.
            if (haveReserved && !reservedListed && rank == active - 1 &&
                id != reserved) {
                return false;
            }
            if (haveReserved && id == reserved) reservedListed = true;
            out.push_back(ActiveGrant{
                id, rank, scheduledLevelFor(rank, active, ctx.schedLevels),
                ctx.rttBytes});
            rank++;
            return true;
        });
        if (haveReserved && !reservedListed) {
            out.push_back(ActiveGrant{reserved, active - 1,
                                      scheduledLevelFor(active - 1, active,
                                                        ctx.schedLevels),
                                      ctx.rttBytes});
        }
        // The reserved message trickles fraction*RTTbytes per RTT at the
        // *top* scheduled level, i.e. ~fraction of the downlink regardless
        // of SRPT rank.
        if (haveReserved && active > 1) {
            for (ActiveGrant& g : out) {
                if (g.id != reserved) continue;
                g.window = std::max<int64_t>(
                    kMaxPayload,
                    static_cast<int64_t>(ctx.oldestReservation *
                                         static_cast<double>(ctx.rttBytes)));
                g.logicalPriority = ctx.schedLevels - 1;
            }
        }
    }

private:
    SrptIndex<MsgId> order_;
    std::unordered_map<MsgId, Time> created_;
    std::set<std::pair<Time, MsgId>> byAge_;
    int withheld_ = 0;
};

/// Active set in arrival order; everything else as in SRPT.
class FifoScheduler final : public GrantScheduler {
public:
    void add(MsgId id, int64_t remaining, Time created) override {
        (void)remaining;
        if (pos_.count(id) != 0) return;
        pos_.emplace(id, created);
        byAge_.emplace(created, id);
    }

    void update(MsgId, int64_t) override {}

    void remove(MsgId id) override {
        auto it = pos_.find(id);
        if (it == pos_.end()) return;
        byAge_.erase({it->second, id});
        pos_.erase(it);
    }

    bool contains(MsgId id) const override { return pos_.count(id) != 0; }
    size_t size() const override { return pos_.size(); }
    int withheld() const override { return withheld_; }

    void decide(const GrantContext& ctx, std::vector<ActiveGrant>& out) override {
        out.clear();
        const int active =
            std::min<int>(resolveDegree(ctx), static_cast<int>(pos_.size()));
        withheld_ = static_cast<int>(pos_.size()) - active;
        int rank = 0;
        for (const auto& [created, id] : byAge_) {
            if (rank >= active) break;
            out.push_back(ActiveGrant{
                id, rank, scheduledLevelFor(rank, active, ctx.schedLevels),
                ctx.rttBytes});
            rank++;
        }
    }

private:
    std::unordered_map<MsgId, Time> pos_;
    std::set<std::pair<Time, MsgId>> byAge_;
    int withheld_ = 0;
};

/// The active-set window rotates one message per decision: every tracked
/// message receives grant bandwidth in turn, NDP/pHost fair-share style.
class RoundRobinScheduler final : public GrantScheduler {
public:
    void add(MsgId id, int64_t, Time) override { ring_.insert(id); }
    void update(MsgId, int64_t) override {}
    void remove(MsgId id) override { ring_.erase(id); }
    bool contains(MsgId id) const override { return ring_.contains(id); }
    size_t size() const override { return ring_.size(); }
    int withheld() const override { return withheld_; }

    void decide(const GrantContext& ctx, std::vector<ActiveGrant>& out) override {
        out.clear();
        const int active =
            std::min<int>(resolveDegree(ctx), static_cast<int>(ring_.size()));
        withheld_ = static_cast<int>(ring_.size()) - active;
        int rank = 0;
        ring_.visit(static_cast<size_t>(active), [&](MsgId id) {
            out.push_back(ActiveGrant{
                id, rank, scheduledLevelFor(rank, active, ctx.schedLevels),
                ctx.rttBytes});
            rank++;
        });
        // Slide the window one member per decision: rotation.
        ring_.advance();
    }

private:
    RoundRobinSet<MsgId> ring_;
    int withheld_ = 0;
};

/// Every message always granted (the "basic transport" strawman): a
/// decision touches only the messages whose deltas arrived, so the cost is
/// O(1) per packet and nothing is ever withheld.
class UnlimitedScheduler final : public GrantScheduler {
public:
    void add(MsgId id, int64_t, Time) override {
        auto [it, fresh] = members_.try_emplace(id, false);
        markDirty(it);
        (void)fresh;
    }

    void update(MsgId id, int64_t) override {
        auto it = members_.find(id);
        if (it != members_.end()) markDirty(it);
    }

    void remove(MsgId id) override { members_.erase(id); }
    bool contains(MsgId id) const override { return members_.count(id) != 0; }
    size_t size() const override { return members_.size(); }
    int withheld() const override { return 0; }

    void decide(const GrantContext& ctx, std::vector<ActiveGrant>& out) override {
        out.clear();
        for (MsgId id : dirty_) {
            auto it = members_.find(id);
            if (it == members_.end() || !it->second) continue;
            it->second = false;
            out.push_back(
                ActiveGrant{id, 0, ctx.schedLevels - 1, ctx.rttBytes});
        }
        dirty_.clear();
    }

private:
    using Member = std::unordered_map<MsgId, bool>::iterator;
    void markDirty(Member it) {
        if (it->second) return;
        it->second = true;
        dirty_.push_back(it->first);
    }

    std::unordered_map<MsgId, bool> members_;  // id -> dirty
    std::vector<MsgId> dirty_;
};

}  // namespace

std::unique_ptr<GrantScheduler> makeGrantScheduler(GrantPolicy policy) {
    switch (policy) {
        case GrantPolicy::Srpt: return std::make_unique<SrptScheduler>();
        case GrantPolicy::Fifo: return std::make_unique<FifoScheduler>();
        case GrantPolicy::RoundRobin:
            return std::make_unique<RoundRobinScheduler>();
        case GrantPolicy::Unlimited:
            return std::make_unique<UnlimitedScheduler>();
    }
    return std::make_unique<SrptScheduler>();
}

}  // namespace homa
