// GrantScheduler: the receiver's grant/priority decision logic as a
// pluggable policy (§3.3-§3.5).
//
// The receiver is "the brain of the protocol": on every DATA arrival it
// must decide which incomplete inbound messages may be granted and at what
// scheduled priority. This used to be a full rescan-and-sort of the message
// table per packet inside HomaReceiver; it is now an incremental subsystem:
// the transport feeds deltas (add / update / remove) and asks for the
// grants to (re)issue, and each policy maintains whatever ordered index it
// needs so a delta costs O(log n), not O(n log n).
//
// Policies:
//  * Srpt       — the paper's receiver: the `degree` messages with fewest
//                 remaining bytes form the active set, assigned scheduled
//                 levels lowest-available-first (Figure 5), with the
//                 optional §5.1 oldest-message bandwidth reservation.
//  * Fifo       — active set in arrival order; the overcommitment and
//                 priority machinery unchanged. The ordering ablation.
//  * RoundRobin — the active-set window rotates one message per decision,
//                 approximating the fair-share pull loops of NDP/pHost
//                 inside the grant framework.
//  * Unlimited  — every incomplete message is always granted (no active
//                 set, nothing withheld): the "basic transport" strawman
//                 the paper compares against. Grants refresh only for the
//                 message whose delta arrived, so a decision is O(1).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/packet.h"
#include "sim/time.h"

namespace homa {

/// Selects the receiver's grant-ordering policy (see the policy catalog
/// in the file comment). Plumbed through HomaConfig::grantPolicy and the
/// --grant-policy flag of example_run_experiment.
enum class GrantPolicy : uint8_t {
    Srpt,        ///< the paper's receiver: shortest remaining bytes first
    Fifo,        ///< active set in arrival order (ordering ablation)
    RoundRobin,  ///< fair rotation of the active-set window
    Unlimited,   ///< grant everyone (basic-transport strawman), O(1)
};

/// Returns "srpt", "fifo", "rr", or "unlimited".
const char* grantPolicyName(GrantPolicy p);

/// Lowest-available-level assignment for the scheduled active set
/// (Figure 5): with k active messages they occupy logical levels 0..k-1,
/// the most urgent (rank 0) highest; extra active messages (overcommit
/// degree > scheduled levels) share the top scheduled level. The single
/// authority for this formula — PriorityAllocator and every GrantScheduler
/// policy delegate here.
int scheduledLevelFor(int rank, int activeCount, int schedLevels);

/// Per-decision inputs the transport resolves at call time (they can change
/// during a run: the online priority allocation re-splits levels).
struct GrantContext {
    int degree = 0;              // overcommit degree; <= 0 -> schedLevels
    int schedLevels = 1;         // scheduled logical levels available
    int64_t rttBytes = 0;        // default grant window per active message
    double oldestReservation = 0;  // §5.1: fraction of window for the oldest
};

/// One entry of the active set: the transport should ensure `id` is granted
/// `window` bytes past what it has received, announced at `logicalPriority`.
struct ActiveGrant {
    MsgId id = 0;
    int rank = 0;              // 0 = most urgent in the active set
    int logicalPriority = 0;   // scheduled level to announce
    int64_t window = 0;        // granted-but-unreceived byte budget
};

class GrantScheduler {
public:
    virtual ~GrantScheduler() = default;

    /// A new incomplete message that still needs grant progress.
    virtual void add(MsgId id, int64_t remaining, Time created) = 0;

    /// Remaining-bytes delta for a tracked message (data arrived).
    virtual void update(MsgId id, int64_t remaining) = 0;

    /// Message no longer needs grants (fully granted, complete, aborted).
    virtual void remove(MsgId id) = 0;

    /// True while `id` is tracked (added and not yet removed).
    virtual bool contains(MsgId id) const = 0;
    /// Number of tracked messages.
    virtual size_t size() const = 0;

    /// Fill `out` (cleared first) with the grants to (re)issue after the
    /// preceding deltas. Policies return at most the active set; issuing a
    /// listed grant must be idempotent for the transport (it already is:
    /// HomaReceiver skips no-op grant packets).
    virtual void decide(const GrantContext& ctx, std::vector<ActiveGrant>& out) = 0;

    /// Messages currently denied grants by the overcommitment limit
    /// (Figure 16's "withheld" condition), as of the last decide().
    virtual int withheld() const = 0;
};

/// Builds the scheduler implementing `policy` (see src/sched/
/// grant_scheduler.cc for the policy classes and docs/ARCHITECTURE.md
/// "Adding a scheduling policy" for the extension recipe).
std::unique_ptr<GrantScheduler> makeGrantScheduler(GrantPolicy policy);

}  // namespace homa
