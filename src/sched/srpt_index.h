// Incremental SRPT ordering: the shared core of every "pick the message
// with the fewest remaining bytes" loop in this repository.
//
// An ordered set of (key, id) plus an id -> key map. All mutations are
// O(log n); key updates reuse the tree node (C++17 node extraction), so the
// steady state allocates only when a message first enters the index.
// Ties break on id, which is monotone per run, keeping order deterministic.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>

namespace homa {

/// Ordered (remaining-bytes, id) index with O(log n) upsert/erase and a
/// bounded in-order walk; the building block behind every SRPT decision
/// (grant scheduler active set, sender packet choice, pHost grantees).
template <typename Id>
class SrptIndex {
public:
    using Key = std::pair<int64_t, Id>;

    /// Insert or re-key `id`. Returns true if it was newly inserted.
    bool upsert(Id id, int64_t key) {
        auto [it, fresh] = keys_.try_emplace(id, key);
        if (fresh) {
            order_.emplace(key, id);
            return true;
        }
        if (it->second != key) {
            auto node = order_.extract(Key{it->second, id});
            node.value() = Key{key, id};
            order_.insert(std::move(node));
            it->second = key;
        }
        return false;
    }

    /// Remove `id`; returns false when it was not in the index.
    bool erase(Id id) {
        auto it = keys_.find(id);
        if (it == keys_.end()) return false;
        order_.erase(Key{it->second, id});
        keys_.erase(it);
        return true;
    }

    /// True while `id` is indexed.
    bool contains(Id id) const { return keys_.count(id) != 0; }
    /// Number of indexed entries.
    size_t size() const { return keys_.size(); }
    bool empty() const { return keys_.empty(); }

    /// Smallest-key entry, or nullopt when empty.
    std::optional<Id> best() const {
        if (order_.empty()) return std::nullopt;
        return order_.begin()->second;
    }

    /// Visit entries in ascending key order until `fn` returns false or the
    /// index is exhausted. Used for bounded top-k walks (k = overcommit
    /// degree), so a call costs O(log n + k).
    template <typename F>
    void visitInOrder(F&& fn) const {
        for (const auto& [key, id] : order_) {
            if (!fn(id, key)) return;
        }
    }

private:
    std::set<Key> order_;
    std::unordered_map<Id, int64_t> keys_;
};

}  // namespace homa
