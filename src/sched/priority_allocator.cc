#include "sched/priority_allocator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <numeric>
#include <string>

namespace homa {

int PriorityAllocation::unschedPriorityFor(uint32_t messageLength) const {
    const int top = logicalLevels - 1;
    for (size_t i = 0; i < cutoffs.size(); i++) {
        if (messageLength <= cutoffs[i]) return top - static_cast<int>(i);
    }
    return lowestUnschedLevel();
}

PriorityAllocation allocationFromSample(std::vector<uint32_t> sizes,
                                        const HomaConfig& cfg,
                                        int64_t rttBytes) {
    assert(!sizes.empty());
    const int levels = cfg.logicalPriorities;
    const int64_t unschedLimit =
        cfg.unschedBytesLimit > 0 ? cfg.unschedBytesLimit : rttBytes;

    // Unscheduled byte fraction F (Figure 4: "the fraction of all incoming
    // bytes that are unscheduled").
    double totalBytes = 0, unschedBytes = 0;
    for (uint32_t s : sizes) {
        totalBytes += s;
        unschedBytes += static_cast<double>(std::min<int64_t>(s, unschedLimit));
    }
    const double frac = totalBytes > 0 ? unschedBytes / totalBytes : 1.0;

    PriorityAllocation alloc;
    alloc.logicalLevels = levels;
    if (cfg.unschedPriorities > 0) {
        alloc.unschedLevels = std::min(cfg.unschedPriorities, levels);
    } else {
        alloc.unschedLevels = std::clamp(
            static_cast<int>(std::lround(frac * levels)), 1, levels - 1);
    }
    alloc.schedLevels = std::max(1, levels - alloc.unschedLevels);

    if (!cfg.explicitCutoffs.empty()) {
        alloc.cutoffs = cfg.explicitCutoffs;
        alloc.cutoffs.resize(
            std::min<size_t>(alloc.cutoffs.size(),
                             static_cast<size_t>(alloc.unschedLevels - 1)));
        return alloc;
    }

    // Equal-unscheduled-bytes cutoffs: sort sizes and walk the cumulative
    // unscheduled-byte mass; cutoff i is the message size where the mass
    // crosses (i+1)/k of the total.
    std::sort(sizes.begin(), sizes.end());
    const int k = alloc.unschedLevels;
    double cum = 0;
    size_t idx = 0;
    for (int i = 0; i + 1 < k; i++) {
        const double target = unschedBytes * static_cast<double>(i + 1) /
                              static_cast<double>(k);
        while (idx < sizes.size() && cum < target) {
            cum += static_cast<double>(
                std::min<int64_t>(sizes[idx], unschedLimit));
            idx++;
        }
        const uint32_t cutoff = idx > 0 ? sizes[idx - 1] : sizes[0];
        alloc.cutoffs.push_back(cutoff);
    }
    // Cutoffs must be non-decreasing (duplicates collapse a level onto the
    // same size range, which is harmless).
    for (size_t i = 1; i < alloc.cutoffs.size(); i++) {
        alloc.cutoffs[i] = std::max(alloc.cutoffs[i], alloc.cutoffs[i - 1]);
    }
    return alloc;
}

PriorityAllocation computeAllocation(const SizeDistribution& dist,
                                     const HomaConfig& cfg, int64_t rttBytes) {
    // Deterministic sample of the workload; large enough that decile-level
    // cutoffs are stable.
    Rng rng(0xA110C ^ std::hash<std::string>{}(dist.name()));
    std::vector<uint32_t> sizes(100000);
    for (auto& s : sizes) s = dist.sample(rng);
    return allocationFromSample(std::move(sizes), cfg, rttBytes);
}

TrafficMeter::TrafficMeter(size_t reservoirSize, uint64_t seed) : rng_(seed) {
    reservoir_.reserve(reservoirSize);
    reservoirCapacity_ = reservoirSize;
}

void TrafficMeter::recordMessage(uint32_t length) {
    observed_++;
    if (reservoir_.size() < reservoirCapacity_) {
        reservoir_.push_back(length);
        return;
    }
    // Vitter's algorithm R.
    const uint64_t j = rng_.below(observed_);
    if (j < reservoir_.size()) reservoir_[j] = length;
}

PriorityAllocation TrafficMeter::allocate(const HomaConfig& cfg,
                                          int64_t rttBytes,
                                          const PriorityAllocation& fallback) const {
    if (observed_ < 100) return fallback;
    return allocationFromSample(reservoir_, cfg, rttBytes);
}

}  // namespace homa
