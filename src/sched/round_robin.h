// O(1) round-robin membership ring.
//
// Replaces the `std::advance(it, cursor % map.size())` pattern (O(n) per
// scheduling decision) in the fair-share transports: members sit on an
// intrusive circular doubly-linked list threaded through an id -> node map,
// and the cursor survives arbitrary insert/erase interleavings. `next()`
// returns the member after the cursor and advances, so repeated calls cycle
// fairly through the membership.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>

namespace homa {

/// O(1) fair-rotation membership ring: insert/erase/next are all
/// constant-time, and the rotation cursor survives arbitrary membership
/// churn. Used by the NDP pull pacer, the PIAS sender, and the
/// RoundRobin grant policy.
template <typename Id>
class RoundRobinSet {
public:
    /// Insert `id` just before the cursor position (it will be visited
    /// last in the current cycle). No-op if already present.
    bool insert(Id id) {
        if (nodes_.count(id) != 0) return false;
        if (!cursorValid_) {
            auto [it, ok] = nodes_.try_emplace(id, Node{id, id});
            (void)ok;
            (void)it;
            cursor_ = id;
            cursorValid_ = true;
            return true;
        }
        // Link before cursor: prev(cursor) <-> id <-> cursor.
        Node& cur = nodes_.at(cursor_);
        const Id prev = cur.prev;
        nodes_.try_emplace(id, Node{prev, cursor_});
        nodes_.at(prev).next = id;
        cur.prev = id;
        return true;
    }

    /// Remove `id`; the cursor slides to its successor when it pointed
    /// here. Returns false when `id` was not a member.
    bool erase(Id id) {
        auto it = nodes_.find(id);
        if (it == nodes_.end()) return false;
        const Node n = it->second;
        if (n.next == id) {  // last member
            nodes_.erase(it);
            cursorValid_ = false;
            return true;
        }
        nodes_.at(n.prev).next = n.next;
        nodes_.at(n.next).prev = n.prev;
        if (cursor_ == id) cursor_ = n.next;
        nodes_.erase(it);
        return true;
    }

    /// True while `id` is a member.
    bool contains(Id id) const { return nodes_.count(id) != 0; }
    /// Number of members on the ring.
    size_t size() const { return nodes_.size(); }
    bool empty() const { return nodes_.empty(); }

    /// The member at the cursor; advances the cursor to its successor.
    std::optional<Id> next() {
        if (!cursorValid_) return std::nullopt;
        const Id id = cursor_;
        cursor_ = nodes_.at(id).next;
        return id;
    }

    /// The member at the cursor without advancing.
    std::optional<Id> peek() const {
        if (!cursorValid_) return std::nullopt;
        return cursor_;
    }

    /// Move the cursor one member forward.
    void advance() {
        if (cursorValid_) cursor_ = nodes_.at(cursor_).next;
    }

    /// Visit up to `limit` members starting at the cursor, in ring order,
    /// without moving the cursor.
    template <typename F>
    void visit(size_t limit, F&& fn) const {
        if (!cursorValid_) return;
        Id id = cursor_;
        for (size_t i = 0; i < limit && i < nodes_.size(); i++) {
            fn(id);
            id = nodes_.at(id).next;
        }
    }

private:
    struct Node {
        Id prev;
        Id next;
    };
    std::unordered_map<Id, Node> nodes_;
    Id cursor_{};
    bool cursorValid_ = false;
};

}  // namespace homa
