// Priority allocation: how Homa splits the 8 network levels (§3.4).
//
// This file owns the whole priority story:
//  * PriorityAllocation — the computed unscheduled/scheduled split plus the
//    message-size cutoffs that spread unscheduled bytes evenly over the
//    unscheduled levels (Figure 4);
//  * PriorityAllocator — the live object a transport consults: unscheduled
//    level for a message size, and the lowest-available-level assignment
//    for the scheduled active set (Figure 5), which previously lived as an
//    inline formula in the receiver;
//  * TrafficMeter — the online variant that recomputes the allocation from
//    recent traffic (§3.4 "uses recent traffic patterns").
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/homa_config.h"
#include "sched/grant_scheduler.h"
#include "workload/distribution.h"

namespace homa {

struct PriorityAllocation {
    int logicalLevels = 8;
    int unschedLevels = 1;
    int schedLevels = 7;

    /// Ascending size cutoffs, one fewer than unschedLevels: a message of
    /// length <= cutoffs[i] sends its unscheduled bytes at logical priority
    /// (top - i); longer than all cutoffs -> the lowest unscheduled level.
    std::vector<uint32_t> cutoffs;

    /// Logical priority for the unscheduled bytes of a message.
    int unschedPriorityFor(uint32_t messageLength) const;

    /// Lowest logical level reserved for unscheduled traffic.
    int lowestUnschedLevel() const { return logicalLevels - unschedLevels; }
};

/// The per-transport priority authority. Wraps the current allocation and
/// answers both priority questions a transport has: which unscheduled level
/// a message's blind bytes use, and which scheduled level an active-set
/// member is granted at.
class PriorityAllocator {
public:
    PriorityAllocator() = default;
    explicit PriorityAllocator(PriorityAllocation a) : alloc_(std::move(a)) {}

    /// The current allocation (replaced wholesale by setAllocation when
    /// the online TrafficMeter recomputes the split).
    const PriorityAllocation& allocation() const { return alloc_; }
    PriorityAllocation& allocation() { return alloc_; }
    void setAllocation(PriorityAllocation a) { alloc_ = std::move(a); }

    int logicalLevels() const { return alloc_.logicalLevels; }
    int schedLevels() const { return alloc_.schedLevels; }
    int unschedLevels() const { return alloc_.unschedLevels; }

    int unschedPriorityFor(uint32_t messageLength) const {
        return alloc_.unschedPriorityFor(messageLength);
    }

    /// Lowest-available-level policy for the scheduled active set
    /// (Figure 5); delegates to the shared scheduledLevelFor() authority.
    int scheduledLevel(int rank, int activeCount) const {
        return scheduledLevelFor(rank, activeCount, alloc_.schedLevels);
    }

    /// Highest logical level a scheduled (granted) message can use.
    int topScheduledLevel() const { return alloc_.schedLevels - 1; }

private:
    PriorityAllocation alloc_;
};

/// Compute the allocation from a known workload distribution; this is what
/// the paper's implementation did ("priorities were precomputed based on
/// knowledge of the benchmark workload").
PriorityAllocation computeAllocation(const SizeDistribution& dist,
                                     const HomaConfig& cfg, int64_t rttBytes);

/// Online variant: a receiver measures its own incoming message sizes and
/// recomputes the allocation periodically (§3.4 "uses recent traffic
/// patterns"). Bounded memory: keeps a reservoir of recent sizes.
class TrafficMeter {
public:
    explicit TrafficMeter(size_t reservoirSize = 4096, uint64_t seed = 7);

    /// Feed one observed inbound message size (reservoir-sampled).
    void recordMessage(uint32_t length);
    /// Total messages observed so far (not just those in the reservoir).
    size_t observed() const { return observed_; }

    /// Allocation from the measured sizes; falls back to `fallback` until
    /// enough messages (>= 100) have been seen.
    PriorityAllocation allocate(const HomaConfig& cfg, int64_t rttBytes,
                                const PriorityAllocation& fallback) const;

private:
    std::vector<uint32_t> reservoir_;
    size_t reservoirCapacity_ = 0;
    size_t observed_ = 0;
    Rng rng_;
};

/// Shared core: allocation from an explicit sample of message sizes.
PriorityAllocation allocationFromSample(std::vector<uint32_t> sizes,
                                        const HomaConfig& cfg,
                                        int64_t rttBytes);

}  // namespace homa
