#include "wire/header.h"

#include <cstring>

#include "wire/checksum.h"

namespace homa::wire {
namespace {

template <typename T>
void put(std::span<std::byte> out, size_t off, T v) {
    std::memcpy(out.data() + off, &v, sizeof(T));
}

template <typename T>
T get(std::span<const std::byte> in, size_t off) {
    T v;
    std::memcpy(&v, in.data() + off, sizeof(T));
    return v;
}

}  // namespace

size_t encodeHeader(const Packet& p, std::span<std::byte> out) {
    if (out.size() < kWireHeaderSize) return 0;
    std::memset(out.data(), 0, kWireHeaderSize);
    put<uint32_t>(out, 0, kMagic);
    put<uint8_t>(out, 4, kVersion);
    put<uint8_t>(out, 5, static_cast<uint8_t>(p.type));
    put<uint8_t>(out, 6, p.priority);
    put<uint8_t>(out, 7, p.grantPriority);
    put<uint16_t>(out, 8, p.flags);
    put<int32_t>(out, 12, p.src);
    put<int32_t>(out, 16, p.dst);
    put<uint64_t>(out, 20, p.msg);
    put<uint32_t>(out, 28, p.offset);
    put<uint32_t>(out, 32, p.length);
    put<uint32_t>(out, 36, p.messageLength);
    put<uint32_t>(out, 40, p.grantOffset);
    put<uint32_t>(out, 44, p.remaining);
    const uint32_t crc = crc32c(out.subspan(0, 54));
    put<uint32_t>(out, 54, crc);
    return kWireHeaderSize;
}

std::optional<Packet> decodeHeader(std::span<const std::byte> in) {
    if (in.size() < kWireHeaderSize) return std::nullopt;
    if (get<uint32_t>(in, 0) != kMagic) return std::nullopt;
    if (get<uint8_t>(in, 4) != kVersion) return std::nullopt;
    if (get<uint32_t>(in, 54) != crc32c(in.subspan(0, 54))) return std::nullopt;

    Packet p;
    const uint8_t type = get<uint8_t>(in, 5);
    if (type > static_cast<uint8_t>(PacketType::Rts)) return std::nullopt;
    p.type = static_cast<PacketType>(type);
    p.priority = get<uint8_t>(in, 6);
    if (p.priority >= kPriorityLevels) return std::nullopt;
    p.grantPriority = get<uint8_t>(in, 7);
    p.flags = get<uint16_t>(in, 8);
    p.src = get<int32_t>(in, 12);
    p.dst = get<int32_t>(in, 16);
    p.msg = get<uint64_t>(in, 20);
    p.offset = get<uint32_t>(in, 28);
    p.length = get<uint32_t>(in, 32);
    p.messageLength = get<uint32_t>(in, 36);
    p.grantOffset = get<uint32_t>(in, 40);
    p.remaining = get<uint32_t>(in, 44);
    return p;
}

}  // namespace homa::wire
