// CRC-32C (Castagnoli) used to protect serialized Homa headers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace homa::wire {

/// CRC-32C of `data`, software table implementation.
uint32_t crc32c(std::span<const std::byte> data);

/// Incremental form: continue a CRC (pass ~0u to start, finalize with ~crc).
uint32_t crc32cUpdate(uint32_t crc, std::span<const std::byte> data);

}  // namespace homa::wire
