// On-the-wire packet header format.
//
// The simulator moves Packet structs by value, but a real deployment needs
// a byte format; this codec defines one (fixed-size, little-endian, CRC-32C
// protected) and round-trips the simulator's Packet. The quickstart example
// and the wire tests exercise it; the header size matches kHeaderBytes so
// wire accounting in the simulator is consistent with the codec.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

#include "sim/packet.h"

namespace homa::wire {

/// Serialized header size in bytes. Layout:
///   0  u32 magic            "HOMA"
///   4  u8  version
///   5  u8  type
///   6  u8  priority
///   7  u8  grantPriority
///   8  u16 flags
///  10  u16 reserved
///  12  i32 src
///  16  i32 dst
///  20  u64 msg
///  28  u32 offset
///  32  u32 length
///  36  u32 messageLength
///  40  u32 grantOffset
///  44  u32 remaining
///  48  u32 reserved2
///  52  u16 reserved3
///  54  u32 crc32c (of bytes [0, 54))
constexpr size_t kWireHeaderSize = 58;
static_assert(kWireHeaderSize == kHeaderBytes,
              "wire codec and simulator header accounting must agree");

constexpr uint32_t kMagic = 0x414D4F48u;  // "HOMA" little-endian
constexpr uint8_t kVersion = 1;

/// Serialize `p`'s header into `out` (must be >= kWireHeaderSize bytes).
/// Returns bytes written.
size_t encodeHeader(const Packet& p, std::span<std::byte> out);

/// Parse a header. Returns nullopt on bad magic/version/CRC/short buffer.
std::optional<Packet> decodeHeader(std::span<const std::byte> in);

}  // namespace homa::wire
