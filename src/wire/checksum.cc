#include "wire/checksum.h"

#include <array>

namespace homa::wire {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reversed CRC-32C polynomial

std::array<uint32_t, 256> makeTable() {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; i++) {
        uint32_t crc = i;
        for (int bit = 0; bit < 8; bit++) {
            crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
        }
        table[i] = crc;
    }
    return table;
}

const std::array<uint32_t, 256>& table() {
    static const auto t = makeTable();
    return t;
}

}  // namespace

uint32_t crc32cUpdate(uint32_t crc, std::span<const std::byte> data) {
    const auto& t = table();
    for (std::byte b : data) {
        crc = t[(crc ^ static_cast<uint8_t>(b)) & 0xFFu] ^ (crc >> 8);
    }
    return crc;
}

uint32_t crc32c(std::span<const std::byte> data) {
    return ~crc32cUpdate(~0u, data);
}

}  // namespace homa::wire
