#include "baselines/phost.h"

#include <algorithm>
#include <cassert>

namespace homa {

PHostTransport::PHostTransport(HostServices& host, PHostConfig cfg,
                               Duration packetTime)
    : host_(host),
      cfg_(cfg),
      packetTime_(packetTime),
      pacer_(host.loop(), [this] { pacerTick(); }) {}

void PHostTransport::sendMessage(const Message& m) {
    OutMessage om;
    om.msg = m;
    om.unschedLimit = std::min<int64_t>(cfg_.rttBytes, m.length);
    out_.emplace(m.id, std::move(om));
    host_.kickNic();
}

std::optional<Packet> PHostTransport::pullPacket() {
    // Expire stale tokens first (the receiver's scheduled slot has passed;
    // using an old token now would congest its downlink).
    if (cfg_.tokenTtl > 0) {
        const Time now = host_.loop().now();
        for (auto& [id, om] : out_) {
            while (!om.tokens.empty() &&
                   now - om.tokens.front() > cfg_.tokenTtl) {
                om.tokens.pop_front();
            }
        }
    }
    // Sender-side SRPT among messages with something transmittable.
    OutMessage* best = nullptr;
    for (auto& [id, om] : out_) {
        if (!om.sendable()) continue;
        if (best == nullptr || om.remaining() < best->remaining()) best = &om;
    }
    if (best == nullptr) return std::nullopt;

    const bool unscheduled = best->nextOffset < best->unschedLimit;
    const int64_t limit =
        unscheduled ? best->unschedLimit : static_cast<int64_t>(best->msg.length);
    const uint32_t chunk = static_cast<uint32_t>(
        std::min<int64_t>(kMaxPayload, limit - best->nextOffset));

    Packet p;
    p.type = PacketType::Data;
    p.dst = best->msg.dst;
    p.msg = best->msg.id;
    p.created = best->msg.created;
    p.offset = static_cast<uint32_t>(best->nextOffset);
    p.length = chunk;
    p.messageLength = best->msg.length;
    p.flags = best->msg.flags;
    p.priority = unscheduled ? cfg_.unschedPriority : cfg_.schedPriority;
    best->nextOffset += chunk;
    if (!unscheduled) best->tokens.pop_front();
    if (best->nextOffset >= best->msg.length) {
        p.setFlag(kFlagLast);
        out_.erase(best->msg.id);
    }
    return p;
}

PHostTransport::InMessage* PHostTransport::chooseGrantee() {
    // SRPT over messages still needing tokens; demote unresponsive senders
    // (free-token timeout) so the pacer is not wasted on them forever.
    const Time now = host_.loop().now();
    InMessage* best = nullptr;
    for (auto& [id, im] : in_) {
        // Lagging check first: a fully-granted message whose sender went
        // quiet must have its token accounting rolled back (the sender let
        // them expire) or it could never be re-scheduled.
        const bool lagging =
            im.tokensSent > static_cast<int64_t>(im.reasm.receivedBytes()) &&
            now - im.lastData > cfg_.freeTokenTimeout;
        if (lagging) {
            im.demoted = true;
            im.tokensSent = im.reasm.receivedBytes();
        }
        if (!im.needsTokens() || im.demoted) continue;
        if (best == nullptr || im.remaining() < best->remaining()) best = &im;
    }
    if (best == nullptr) {
        // Everyone is demoted (or nothing needs tokens): as a last resort
        // grant to the SRPT-best demoted message anyway.
        for (auto& [id, im] : in_) {
            if (!im.needsTokens()) continue;
            if (best == nullptr || im.remaining() < best->remaining()) best = &im;
        }
    }
    return best;
}

void PHostTransport::pacerTick() {
    InMessage* im = chooseGrantee();
    if (im == nullptr) {
        if (!in_.empty()) {
            // Nothing grantable right now (all granted or demoted), but
            // incomplete messages remain: check back on the free-token
            // timescale so expired-token messages get re-scheduled.
            pacer_.schedule(cfg_.freeTokenTimeout);
            return;
        }
        pacerRunning_ = false;
        return;
    }
    Packet t;
    t.type = PacketType::Token;
    t.dst = im->meta.src;
    t.msg = im->meta.id;
    t.priority = kHighestPriority;
    host_.pushPacket(t);
    im->tokensSent += kMaxPayload;
    pacer_.schedule(packetTime_);
}

void PHostTransport::handlePacket(const Packet& p) {
    switch (p.type) {
        case PacketType::Token: {
            auto it = out_.find(p.msg);
            if (it == out_.end()) return;  // message already fully sent
            it->second.tokens.push_back(host_.loop().now());
            host_.kickNic();
            return;
        }
        case PacketType::Data: {
            auto it = in_.find(p.msg);
            if (it == in_.end()) {
                Message meta;
                meta.id = p.msg;
                meta.src = p.src;
                meta.dst = p.dst;
                meta.length = p.messageLength;
                meta.flags = p.flags;
                meta.created = p.created;
                InMessage im(meta, p.messageLength);
                im.tokensSent = std::min<int64_t>(cfg_.rttBytes, p.messageLength);
                it = in_.emplace(p.msg, std::move(im)).first;
            }
            InMessage& im = it->second;
            im.lastData = host_.loop().now();
            im.demoted = false;
            im.reasm.addRange(p.offset, p.length);
            im.acc.packetsReceived++;
            im.acc.queueingDelay += p.queueingDelay;
            im.acc.preemptionLag += p.preemptionLag;
            if (im.reasm.complete()) {
                Message meta = im.meta;
                DeliveryInfo acc = im.acc;
                acc.completed = host_.loop().now();
                in_.erase(it);
                notifyDelivered(meta, acc);
            }
            if (!pacerRunning_ && !in_.empty()) {
                pacerRunning_ = true;
                pacer_.schedule(0);
            }
            return;
        }
        default:
            return;
    }
}

bool PHostTransport::hasWithheldWork() const {
    // pHost grants to one message at a time; any other token-needing
    // message is withheld by design.
    int needy = 0;
    for (const auto& [id, im] : in_) {
        if (im.needsTokens()) needy++;
    }
    return needy > 1;
}

TransportFactory PHostTransport::factory(PHostConfig cfg,
                                         const NetworkConfig& net) {
    if (cfg.rttBytes <= 0) cfg.rttBytes = NetworkTimings::compute(net).rttBytes;
    const Duration packetTime =
        net.hostLink.serialize(kFullPacketWireBytes);
    return [cfg, packetTime](HostServices& host) {
        return std::make_unique<PHostTransport>(host, cfg, packetTime);
    };
}

}  // namespace homa
