#include "baselines/phost.h"

#include <algorithm>
#include <cassert>

namespace homa {

PHostTransport::PHostTransport(HostServices& host, PHostConfig cfg,
                               Duration packetTime)
    : host_(host),
      cfg_(cfg),
      packetTime_(packetTime),
      pacer_(host.loop(), [this] { pacerTick(); }) {}

void PHostTransport::sendMessage(const Message& m) {
    OutMessage om;
    om.msg = m;
    om.unschedLimit = std::min<int64_t>(cfg_.rttBytes, m.length);
    auto it = out_.emplace(m.id, std::move(om)).first;
    sendable_.upsert(m.id, it->second.remaining());
    host_.kickNic();
}

std::optional<Packet> PHostTransport::pullPacket() {
    // Sender-side SRPT among messages with something transmittable. Token
    // expiry is checked lazily when a message surfaces as best: stale
    // tokens mean the receiver's scheduled slot has passed, and using one
    // now would congest its downlink.
    const Time now = host_.loop().now();
    OutMessage* best = nullptr;
    for (;;) {
        const auto id = sendable_.best();
        if (!id) return std::nullopt;
        OutMessage& om = out_.at(*id);
        if (cfg_.tokenTtl > 0) {
            while (!om.tokens.empty() &&
                   now - om.tokens.front() > cfg_.tokenTtl) {
                om.tokens.pop_front();
            }
        }
        if (!om.sendable()) {
            sendable_.erase(*id);  // re-enters when a fresh token arrives
            continue;
        }
        best = &om;
        break;
    }

    const bool unscheduled = best->nextOffset < best->unschedLimit;
    const int64_t limit =
        unscheduled ? best->unschedLimit : static_cast<int64_t>(best->msg.length);
    const uint32_t chunk = static_cast<uint32_t>(
        std::min<int64_t>(kMaxPayload, limit - best->nextOffset));

    Packet p;
    p.type = PacketType::Data;
    p.dst = best->msg.dst;
    p.msg = best->msg.id;
    p.created = best->msg.created;
    p.offset = static_cast<uint32_t>(best->nextOffset);
    p.length = chunk;
    p.messageLength = best->msg.length;
    p.flags = best->msg.flags;
    p.priority = unscheduled ? cfg_.unschedPriority : cfg_.schedPriority;
    best->nextOffset += chunk;
    if (!unscheduled) best->tokens.pop_front();
    if (best->nextOffset >= best->msg.length) {
        p.setFlag(kFlagLast);
        sendable_.erase(best->msg.id);
        out_.erase(best->msg.id);
    } else if (best->sendable()) {
        sendable_.upsert(best->msg.id, best->remaining());
    } else {
        sendable_.erase(best->msg.id);
    }
    return p;
}

void PHostTransport::syncGrantee(InMessage& im) {
    const MsgId id = im.meta.id;
    const bool outstanding =
        im.tokensSent > static_cast<int64_t>(im.reasm.receivedBytes());
    if (im.indexedLastData >= 0 &&
        (!outstanding || im.indexedLastData != im.lastData)) {
        staleness_.erase({im.indexedLastData, id});
        im.indexedLastData = -1;
    }
    if (outstanding && im.indexedLastData < 0) {
        staleness_.insert({im.lastData, id});
        im.indexedLastData = im.lastData;
    }
    if (!im.needsTokens()) {
        eligible_.erase(id);
        demotedIdx_.erase(id);
    } else if (im.demoted) {
        eligible_.erase(id);
        demotedIdx_.upsert(id, im.remaining());
    } else {
        demotedIdx_.erase(id);
        eligible_.upsert(id, im.remaining());
    }
}

void PHostTransport::dropGrantee(InMessage& im) {
    const MsgId id = im.meta.id;
    if (im.indexedLastData >= 0) staleness_.erase({im.indexedLastData, id});
    im.indexedLastData = -1;
    eligible_.erase(id);
    demotedIdx_.erase(id);
}

void PHostTransport::pacerTick() {
    const Time now = host_.loop().now();
    // Free-token timeout, stalest first: a message with outstanding tokens
    // whose sender went quiet has its token accounting rolled back (the
    // sender let them expire) or it could never be re-scheduled. The sweep
    // stops at the first still-live entry, so it touches only actually
    // stale messages instead of scanning the whole table per tick.
    while (!staleness_.empty() &&
           now - staleness_.begin()->first > cfg_.freeTokenTimeout) {
        InMessage& im = in_.at(staleness_.begin()->second);
        im.demoted = true;
        im.tokensSent = im.reasm.receivedBytes();
        syncGrantee(im);
    }
    // SRPT over messages still needing tokens; if everyone is demoted, as
    // a last resort grant to the SRPT-best demoted message anyway.
    auto pick = eligible_.best();
    if (!pick) pick = demotedIdx_.best();
    if (!pick) {
        if (!in_.empty()) {
            // Nothing grantable right now (all granted or demoted), but
            // incomplete messages remain: check back on the free-token
            // timescale so expired-token messages get re-scheduled.
            pacer_.schedule(cfg_.freeTokenTimeout);
            return;
        }
        pacerRunning_ = false;
        return;
    }
    InMessage& im = in_.at(*pick);
    Packet t;
    t.type = PacketType::Token;
    t.dst = im.meta.src;
    t.msg = im.meta.id;
    t.priority = kHighestPriority;
    host_.pushPacket(t);
    im.tokensSent += kMaxPayload;
    syncGrantee(im);
    pacer_.schedule(packetTime_);
}

void PHostTransport::handlePacket(const Packet& p) {
    switch (p.type) {
        case PacketType::Token: {
            auto it = out_.find(p.msg);
            if (it == out_.end()) return;  // message already fully sent
            it->second.tokens.push_back(host_.loop().now());
            sendable_.upsert(p.msg, it->second.remaining());
            host_.kickNic();
            return;
        }
        case PacketType::Data: {
            auto it = in_.find(p.msg);
            if (it == in_.end()) {
                Message meta;
                meta.id = p.msg;
                meta.src = p.src;
                meta.dst = p.dst;
                meta.length = p.messageLength;
                meta.flags = p.flags;
                meta.created = p.created;
                InMessage im(meta, p.messageLength);
                im.tokensSent = std::min<int64_t>(cfg_.rttBytes, p.messageLength);
                it = in_.emplace(p.msg, std::move(im)).first;
            }
            InMessage& im = it->second;
            im.lastData = host_.loop().now();
            im.demoted = false;
            im.reasm.addRange(p.offset, p.length);
            im.acc.packetsReceived++;
            im.acc.queueingDelay += p.queueingDelay;
            im.acc.preemptionLag += p.preemptionLag;
            if (im.reasm.complete()) {
                Message meta = im.meta;
                DeliveryInfo acc = im.acc;
                acc.completed = host_.loop().now();
                dropGrantee(im);
                in_.erase(it);
                notifyDelivered(meta, acc);
            } else {
                syncGrantee(im);
            }
            if (!pacerRunning_ && !in_.empty()) {
                pacerRunning_ = true;
                pacer_.schedule(0);
            }
            return;
        }
        default:
            return;
    }
}

bool PHostTransport::hasWithheldWork() const {
    // pHost grants to one message at a time; any other token-needing
    // message is withheld by design.
    return eligible_.size() + demotedIdx_.size() > 1;
}

TransportFactory PHostTransport::factory(PHostConfig cfg,
                                         const NetworkConfig& net) {
    if (cfg.rttBytes <= 0) cfg.rttBytes = NetworkTimings::compute(net).rttBytes;
    const Duration packetTime =
        net.hostLink.serialize(kFullPacketWireBytes);
    return [cfg, packetTime](HostServices& host) {
        return std::make_unique<PHostTransport>(host, cfg, packetTime);
    };
}

}  // namespace homa
