// PIAS (Bai et al., NSDI 2015) — information-agnostic sender-side
// priorities.
//
// PIAS knows nothing about message sizes a priori; each flow starts at the
// highest priority and is demoted as it sends more bytes (multi-level
// feedback queue over "bytes sent so far"). Underneath it runs DCTCP-style
// window control driven by ECN marks. This captures the behaviours the
// Homa paper analyzes (§5.2): short messages queue behind the high-priority
// prefixes of long ones; long messages starve at low priority ("it is hard
// to finish them"); and ECN-induced backoff hurts multi-packet messages at
// high load.
//
// The demotion thresholds are derived from the workload by equalizing
// bytes per level (the same balancing Homa uses for unscheduled cutoffs) —
// a stand-in for PIAS's offline threshold optimizer.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "sched/round_robin.h"
#include "sim/topology.h"
#include "transport/transport.h"
#include "workload/distribution.h"

namespace homa {

struct PiasConfig {
    /// Bytes-sent demotion thresholds, ascending; level = #thresholds
    /// crossed; priority = highest - level. Empty: derive from workload.
    std::vector<uint32_t> thresholds;

    int64_t initialWindow = 0;  // <= 0: rttBytes (BDP)
    Duration rtt = 0;           // <= 0: derive (for the additive-increase clock)
    double dctcpGain = 1.0 / 16.0;  // EWMA gain g for the marked fraction
};

/// Equal-bytes demotion thresholds for a workload (7 thresholds, 8 levels).
std::vector<uint32_t> piasThresholdsFor(const SizeDistribution& dist);

class PiasTransport final : public Transport {
public:
    PiasTransport(HostServices& host, PiasConfig cfg);

    void sendMessage(const Message& m) override;
    void handlePacket(const Packet& p) override;
    std::optional<Packet> pullPacket() override;

    static TransportFactory factory(PiasConfig cfg, const NetworkConfig& net,
                                    const SizeDistribution* workload);

private:
    struct OutMessage {
        Message msg;
        int64_t nextOffset = 0;   // next fresh byte
        int64_t ackedBytes = 0;
        double cwnd = 0;          // bytes
        double markedEwma = 0;    // DCTCP alpha
        uint32_t acksInRtt = 0;
        uint32_t marksInRtt = 0;
        Time rttStart = 0;

        int64_t inFlight() const { return nextOffset - ackedBytes; }
        bool sendable() const {
            return nextOffset < msg.length && inFlight() < static_cast<int64_t>(cwnd);
        }
    };

    struct InMessage {
        Message meta;
        Reassembly reasm;
        DeliveryInfo acc;
        InMessage(Message m, uint32_t len) : meta(m), reasm(len) {}
    };

    uint8_t priorityForBytesSent(int64_t bytesSent) const;
    void onAck(const Packet& p);
    void syncSend(const OutMessage& om);

    HostServices& host_;
    PiasConfig cfg_;
    std::map<MsgId, OutMessage> out_;
    std::map<MsgId, InMessage> in_;
    // Fair round-robin over exactly the windowed (sendable) flows;
    // replaces an O(n) cursor scan of out_ per pulled packet.
    RoundRobinSet<MsgId> sendRing_;
};

}  // namespace homa
