#include "baselines/pias.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <string>

namespace homa {

std::vector<uint32_t> piasThresholdsFor(const SizeDistribution& dist) {
    // Equal-bytes split of the "bytes sent so far" axis: threshold i is the
    // point by which i/8 of all bytes (across all messages) have been sent.
    // This mirrors PIAS's goal of spreading traffic across levels.
    Rng rng(0x1A5 ^ std::hash<std::string>{}(dist.name()));
    std::vector<uint32_t> sizes(100000);
    double total = 0;
    for (auto& s : sizes) {
        s = dist.sample(rng);
        total += s;
    }
    std::sort(sizes.begin(), sizes.end());

    // Bytes transmitted below a bytes-sent threshold t: sum over messages
    // of min(size, t). Binary-search thresholds for each 1/8 mass.
    auto massBelow = [&](double t) {
        double m = 0;
        for (uint32_t s : sizes) m += std::min<double>(s, t);
        return m;
    };
    std::vector<uint32_t> thresholds;
    for (int i = 1; i < kPriorityLevels; i++) {
        const double target = total * i / kPriorityLevels;
        double lo = 1, hi = dist.maxSize();
        for (int iter = 0; iter < 48 && hi - lo > 0.5; iter++) {
            const double mid = 0.5 * (lo + hi);
            if (massBelow(mid) < target) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        thresholds.push_back(static_cast<uint32_t>(std::lround(hi)));
    }
    // Ensure the first threshold covers at least one full packet: PIAS
    // always sends a single-packet message entirely at top priority.
    thresholds[0] = std::max<uint32_t>(thresholds[0], kMaxPayload);
    for (size_t i = 1; i < thresholds.size(); i++) {
        thresholds[i] = std::max(thresholds[i], thresholds[i - 1]);
    }
    return thresholds;
}

PiasTransport::PiasTransport(HostServices& host, PiasConfig cfg)
    : host_(host), cfg_(cfg) {
    assert(!cfg_.thresholds.empty());
    assert(cfg_.initialWindow > 0);
}

uint8_t PiasTransport::priorityForBytesSent(int64_t bytesSent) const {
    int level = 0;
    for (uint32_t t : cfg_.thresholds) {
        if (bytesSent >= static_cast<int64_t>(t)) level++;
    }
    return static_cast<uint8_t>(
        std::max(0, kHighestPriority - level));
}

void PiasTransport::sendMessage(const Message& m) {
    OutMessage om;
    om.msg = m;
    om.cwnd = static_cast<double>(cfg_.initialWindow);
    om.rttStart = host_.loop().now();
    auto it = out_.emplace(m.id, std::move(om)).first;
    syncSend(it->second);
    host_.kickNic();
}

void PiasTransport::syncSend(const OutMessage& om) {
    if (om.sendable()) {
        sendRing_.insert(om.msg.id);
    } else {
        sendRing_.erase(om.msg.id);
    }
}

std::optional<Packet> PiasTransport::pullPacket() {
    // PIAS senders have no SRPT (sizes unknown); fair round-robin across
    // windowed flows.
    const auto id = sendRing_.next();
    if (!id) return std::nullopt;
    OutMessage& om = out_.at(*id);

    const uint32_t chunk = static_cast<uint32_t>(std::min<int64_t>(
        kMaxPayload, om.msg.length - om.nextOffset));
    Packet p;
    p.type = PacketType::Data;
    p.dst = om.msg.dst;
    p.msg = om.msg.id;
    p.created = om.msg.created;
    p.offset = static_cast<uint32_t>(om.nextOffset);
    p.length = chunk;
    p.messageLength = om.msg.length;
    p.flags = om.msg.flags;
    p.priority = priorityForBytesSent(om.nextOffset);
    om.nextOffset += chunk;
    if (om.nextOffset >= om.msg.length) p.setFlag(kFlagLast);
    syncSend(om);
    return p;
}

void PiasTransport::onAck(const Packet& p) {
    auto it = out_.find(p.msg);
    if (it == out_.end()) return;
    OutMessage& om = it->second;
    om.ackedBytes += p.length;
    om.acksInRtt++;
    if (p.hasFlag(kFlagEcn)) om.marksInRtt++;

    // One DCTCP window update per RTT.
    const Time now = host_.loop().now();
    if (now - om.rttStart >= cfg_.rtt && om.acksInRtt > 0) {
        const double frac = static_cast<double>(om.marksInRtt) /
                            static_cast<double>(om.acksInRtt);
        om.markedEwma = (1 - cfg_.dctcpGain) * om.markedEwma +
                        cfg_.dctcpGain * frac;
        if (om.marksInRtt > 0) {
            om.cwnd *= (1.0 - om.markedEwma / 2.0);
        } else {
            om.cwnd += kMaxPayload;  // additive increase
        }
        om.cwnd = std::max<double>(om.cwnd, kMaxPayload);
        om.acksInRtt = 0;
        om.marksInRtt = 0;
        om.rttStart = now;
    }

    if (om.ackedBytes >= om.msg.length) {
        sendRing_.erase(p.msg);
        out_.erase(it);
    } else {
        syncSend(om);
    }
    host_.kickNic();
}

void PiasTransport::handlePacket(const Packet& p) {
    if (p.type == PacketType::Ack) {
        onAck(p);
        return;
    }
    if (p.type != PacketType::Data) return;

    // Echo the congestion mark back to the sender (DCTCP ECN echo).
    Packet ack;
    ack.type = PacketType::Ack;
    ack.dst = p.src;
    ack.msg = p.msg;
    ack.length = p.length;
    ack.priority = kHighestPriority;
    if (p.hasFlag(kFlagEcn)) ack.setFlag(kFlagEcn);
    host_.pushPacket(ack);

    auto it = in_.find(p.msg);
    if (it == in_.end()) {
        Message meta;
        meta.id = p.msg;
        meta.src = p.src;
        meta.dst = p.dst;
        meta.length = p.messageLength;
        meta.flags = p.flags;
        meta.created = p.created;
        it = in_.emplace(p.msg, InMessage(meta, p.messageLength)).first;
    }
    InMessage& im = it->second;
    im.reasm.addRange(p.offset, p.length);
    im.acc.packetsReceived++;
    im.acc.queueingDelay += p.queueingDelay;
    im.acc.preemptionLag += p.preemptionLag;
    if (im.reasm.complete()) {
        Message meta = im.meta;
        DeliveryInfo acc = im.acc;
        acc.completed = host_.loop().now();
        in_.erase(it);
        notifyDelivered(meta, acc);
    }
}

TransportFactory PiasTransport::factory(PiasConfig cfg, const NetworkConfig& net,
                                        const SizeDistribution* workload) {
    const auto timings = NetworkTimings::compute(net);
    if (cfg.initialWindow <= 0) cfg.initialWindow = timings.rttBytes;
    if (cfg.rtt <= 0) cfg.rtt = timings.rttSmallGrant;
    if (cfg.thresholds.empty()) {
        assert(workload != nullptr);
        cfg.thresholds = piasThresholdsFor(*workload);
    }
    return [cfg](HostServices& host) {
        return std::make_unique<PiasTransport>(host, cfg);
    };
}

}  // namespace homa
