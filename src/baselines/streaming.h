// Connection-oriented byte-stream transport (TCP / InfRC stand-in, §5.1).
//
// Messages multiplexed onto a per-destination stream serialize in FIFO
// order: a short message queued behind a long one waits for all of it —
// the head-of-line blocking that costs streaming transports 100x on tail
// latency (Figure 8's InfRC and TCP curves). Multi-connection mode gives
// every in-flight message its own connection (the paper's "-MC" variants),
// removing sender HOL but still lacking priorities and SRPT.
//
// Delivery respects stream order within a connection (a real byte stream
// cannot deliver message N+1 before N). Data travels at one priority.
// A finite window adds per-packet ACK clocking (TCP flow control); window
// 0 means unbounded in-flight (InfRC reliable connections).
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "transport/transport.h"

namespace homa {

struct StreamingConfig {
    bool multiConnection = false;  // one connection per message vs per peer
    int64_t windowBytes = 0;       // 0 = unbounded (no ACKs needed)
};

class StreamingTransport final : public Transport {
public:
    StreamingTransport(HostServices& host, StreamingConfig cfg);

    void sendMessage(const Message& m) override;
    void handlePacket(const Packet& p) override;
    std::optional<Packet> pullPacket() override;

    static TransportFactory factory(StreamingConfig cfg);

private:
    // Sender side: a connection is an ordered queue of messages; bytes of
    // message k+1 are only sent after all bytes of message k.
    struct Connection {
        uint64_t connId;
        HostId peer;
        std::deque<Message> sendQueue;
        int64_t headSent = 0;    // bytes of the head message already sent
        int64_t inFlight = 0;    // unacked bytes (windowed mode)
    };

    // Receiver side: per-connection in-order delivery.
    struct InboundMessage {
        Message meta;
        Reassembly reasm;
        DeliveryInfo acc;
        InboundMessage(Message m, uint32_t len) : meta(m), reasm(len) {}
    };
    struct InboundStream {
        std::deque<InboundMessage> messages;
    };

    Connection* pickConnection();
    void tryDeliver(InboundStream& s);

    HostServices& host_;
    StreamingConfig cfg_;
    std::vector<Connection> connections_;
    size_t rrCursor_ = 0;
    uint32_t nextConn_ = 1;
    // Receiver streams keyed by (source host, connection id).
    std::map<std::pair<HostId, uint32_t>, InboundStream> inbound_;
};

}  // namespace homa
