#include "baselines/basic_transport.h"

#include <limits>

namespace homa {

HomaConfig basicTransportConfig() {
    HomaConfig cfg;
    cfg.wirePriorities = 1;  // no use of network priorities at all
    // Grant everyone, always: the Unlimited policy keeps every incomplete
    // message granted RTTbytes ahead with no active-set limit (and makes
    // each grant decision O(1) instead of a scan).
    cfg.grantPolicy = GrantPolicy::Unlimited;
    cfg.overcommitDegree = std::numeric_limits<int>::max();
    return cfg;
}

}  // namespace homa
