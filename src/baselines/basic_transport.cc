#include "baselines/basic_transport.h"

#include <limits>

namespace homa {

HomaConfig basicTransportConfig() {
    HomaConfig cfg;
    cfg.wirePriorities = 1;  // no use of network priorities at all
    cfg.overcommitDegree = std::numeric_limits<int>::max();  // grant everyone
    return cfg;
}

}  // namespace homa
