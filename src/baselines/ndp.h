// NDP (Handley et al., SIGCOMM 2017) — receiver-driven pull with packet
// trimming.
//
// Senders blast the first RTT of a message into a FIFO NIC queue (NDP
// senders do not prioritize their transmit queues — the paper blames this
// for sender-side HOL blocking). Switches keep ~8-packet queues and trim
// overflowing data packets to headers, which travel at high priority so
// the receiver learns of the loss instantly. Receivers pace PULL packets
// at their downlink rate, round-robin across active messages (fair-share
// scheduling, not SRPT) and never overcommit — the two properties the Homa
// paper shows cause uniformly high slowdown for multi-RTT messages and a
// ~73% load ceiling.
#pragma once

#include <deque>
#include <map>
#include <optional>

#include "sched/round_robin.h"
#include <set>

#include "sim/event_loop.h"
#include "sim/topology.h"
#include "transport/transport.h"

namespace homa {

struct NdpConfig {
    int64_t initialWindow = 0;            // <= 0: rttBytes
    int64_t switchBufferBytes = 8 * 1500;  // trim threshold per egress port
};

class NdpTransport final : public Transport {
public:
    NdpTransport(HostServices& host, NdpConfig cfg, Duration packetTime);

    void sendMessage(const Message& m) override;
    void handlePacket(const Packet& p) override;
    // NDP pushes everything (FIFO NIC); pullPacket stays empty.

    static TransportFactory factory(NdpConfig cfg, const NetworkConfig& net);

private:
    struct OutMessage {
        Message msg;
        int64_t sentTo = 0;  // fresh bytes handed to the NIC
    };

    struct InMessage {
        Message meta;
        Reassembly reasm;
        DeliveryInfo acc;
        std::set<uint32_t> trimmed;   // offsets needing retransmission
        int64_t pulledTo = 0;         // fresh bytes requested beyond window
        InMessage(Message m, uint32_t len) : meta(m), reasm(len) {}
        bool wantsPull(int64_t window) const {
            if (!trimmed.empty()) return true;
            // Pulls are clocked against arrivals: cap requested-but-unseen
            // bytes so a stalled sender doesn't accumulate a burst.
            return pulledTo < static_cast<int64_t>(reasm.messageLength()) &&
                   pulledTo - reasm.receivedBytes() < 2 * window;
        }
    };

    void pacerTick();
    void sendChunk(const Message& msg, uint32_t offset, uint32_t len,
                   bool retransmit);
    /// Keep `im`'s membership in the pull ring equal to wantsPull().
    void syncPull(InMessage& im);

    HostServices& host_;
    NdpConfig cfg_;
    Duration packetTime_;
    std::map<MsgId, OutMessage> out_;
    std::map<MsgId, InMessage> in_;
    // Fair-share pull rotation over exactly the messages that want a pull;
    // replaces an O(n) cursor scan of the whole inbound table per tick.
    RoundRobinSet<MsgId> pullRing_;
    Timer pacer_;
    bool pacerRunning_ = false;
};

}  // namespace homa
