#include "baselines/streaming.h"

#include <algorithm>
#include <cassert>

namespace homa {

StreamingTransport::StreamingTransport(HostServices& host, StreamingConfig cfg)
    : host_(host), cfg_(cfg) {}

void StreamingTransport::sendMessage(const Message& m) {
    Connection* conn = nullptr;
    if (!cfg_.multiConnection) {
        for (auto& c : connections_) {
            if (c.peer == m.dst) {
                conn = &c;
                break;
            }
        }
    }
    if (conn == nullptr) {
        connections_.push_back(Connection{nextConn_++, m.dst, {}, 0, 0});
        conn = &connections_.back();
    }
    conn->sendQueue.push_back(m);
    host_.kickNic();
}

StreamingTransport::Connection* StreamingTransport::pickConnection() {
    // Multi-connection mode creates a connection per message; sweep retired
    // ones so state stays bounded over long runs.
    if (cfg_.multiConnection && connections_.size() > 64) {
        std::erase_if(connections_, [this](const Connection& c) {
            return c.sendQueue.empty() &&
                   (cfg_.windowBytes == 0 || c.inFlight == 0);
        });
        rrCursor_ = 0;
    }
    // Round-robin across connections with sendable bytes (fair sharing, the
    // scheduling TCP-like stacks effectively provide).
    const size_t n = connections_.size();
    for (size_t step = 0; step < n; step++) {
        Connection& c = connections_[(rrCursor_ + step) % n];
        if (c.sendQueue.empty()) continue;
        if (cfg_.windowBytes > 0 && c.inFlight >= cfg_.windowBytes) continue;
        rrCursor_ = (rrCursor_ + step + 1) % n;
        return &c;
    }
    return nullptr;
}

std::optional<Packet> StreamingTransport::pullPacket() {
    Connection* c = pickConnection();
    if (c == nullptr) return std::nullopt;

    const Message& head = c->sendQueue.front();
    int64_t budget = static_cast<int64_t>(head.length) - c->headSent;
    if (cfg_.windowBytes > 0) {
        budget = std::min(budget, cfg_.windowBytes - c->inFlight);
    }
    const uint32_t chunk =
        static_cast<uint32_t>(std::min<int64_t>(kMaxPayload, budget));
    assert(chunk > 0);

    Packet p;
    p.type = PacketType::Data;
    p.dst = head.dst;
    p.msg = head.id;
    p.created = head.created;
    p.stream = static_cast<uint32_t>(c->connId);
    p.offset = static_cast<uint32_t>(c->headSent);
    p.length = chunk;
    p.messageLength = head.length;
    p.flags = head.flags;
    p.priority = 0;  // streams do not use network priorities
    c->headSent += chunk;
    c->inFlight += chunk;
    if (c->headSent >= head.length) {
        p.setFlag(kFlagLast);
        c->sendQueue.pop_front();
        c->headSent = 0;
    }
    return p;
}

void StreamingTransport::handlePacket(const Packet& p) {
    if (p.type == PacketType::Ack) {
        for (auto& c : connections_) {
            if (c.connId == p.stream) {
                c.inFlight = std::max<int64_t>(0, c.inFlight - p.length);
                host_.kickNic();
                return;
            }
        }
        return;
    }
    if (p.type != PacketType::Data) return;

    if (cfg_.windowBytes > 0) {
        Packet ack;
        ack.type = PacketType::Ack;
        ack.dst = p.src;
        ack.msg = p.msg;
        ack.stream = p.stream;
        ack.length = p.length;
        ack.priority = 0;  // ACKs share the data path's (only) level
        host_.pushPacket(ack);
    }

    InboundStream& s = inbound_[{p.src, p.stream}];
    InboundMessage* im = nullptr;
    for (auto& cand : s.messages) {
        if (cand.meta.id == p.msg) {
            im = &cand;
            break;
        }
    }
    if (im == nullptr) {
        Message meta;
        meta.id = p.msg;
        meta.src = p.src;
        meta.dst = p.dst;
        meta.length = p.messageLength;
        meta.flags = p.flags;
        meta.created = p.created;
        s.messages.emplace_back(meta, p.messageLength);
        im = &s.messages.back();
    }
    im->reasm.addRange(p.offset, p.length);
    im->acc.packetsReceived++;
    im->acc.queueingDelay += p.queueingDelay;
    im->acc.preemptionLag += p.preemptionLag;
    tryDeliver(s);
}

void StreamingTransport::tryDeliver(InboundStream& s) {
    // Byte streams deliver strictly in order: only the head message can
    // complete (the stream HOL-blocking the paper measures).
    while (!s.messages.empty() && s.messages.front().reasm.complete()) {
        InboundMessage& im = s.messages.front();
        im.acc.completed = host_.loop().now();
        Message meta = im.meta;
        DeliveryInfo acc = im.acc;
        s.messages.pop_front();
        notifyDelivered(meta, acc);
    }
    if (s.messages.empty()) {
        // Drop empty stream state (essential in multi-connection mode where
        // every message brings a fresh stream id).
        for (auto it = inbound_.begin(); it != inbound_.end(); ++it) {
            if (&it->second == &s) {
                inbound_.erase(it);
                break;
            }
        }
    }
}

TransportFactory StreamingTransport::factory(StreamingConfig cfg) {
    return [cfg](HostServices& host) {
        return std::make_unique<StreamingTransport>(host, cfg);
    };
}

}  // namespace homa
