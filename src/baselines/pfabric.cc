#include "baselines/pfabric.h"

#include <algorithm>
#include <cassert>

namespace homa {

PFabricTransport::PFabricTransport(HostServices& host, PFabricConfig cfg)
    : host_(host), cfg_(cfg), rtoScan_(host.loop(), [this] { checkTimeouts(); }) {}

void PFabricTransport::sendMessage(const Message& m) {
    OutMessage om(m);
    om.lastAckActivity = host_.loop().now();
    auto it = out_.emplace(m.id, std::move(om)).first;
    syncSendable(it->second);
    if (!rtoScan_.armed()) rtoScan_.schedule(cfg_.rto);
    host_.kickNic();
}

void PFabricTransport::syncSendable(const OutMessage& om) {
    if (om.sendable(cfg_.windowBytes)) {
        sendable_.upsert(om.msg.id, om.remaining());
    } else {
        sendable_.erase(om.msg.id);
    }
}

std::optional<Packet> PFabricTransport::pullPacket() {
    // Sender-side SRPT by remaining (unacked) bytes.
    const auto id = sendable_.best();
    if (!id) return std::nullopt;
    OutMessage* best = &out_.at(*id);

    uint32_t offset, chunk;
    bool retrans = false;
    if (best->retransmit.has_value()) {
        offset = best->retransmit->first;
        chunk = std::min<uint32_t>(best->retransmit->second, kMaxPayload);
        best->retransmit.reset();
        retrans = true;
        retransmissions_++;
    } else {
        offset = static_cast<uint32_t>(best->nextOffset);
        chunk = static_cast<uint32_t>(
            std::min<int64_t>(kMaxPayload, best->msg.length - best->nextOffset));
        best->nextOffset += chunk;
        best->inFlight += chunk;
    }

    Packet p;
    p.type = PacketType::Data;
    p.dst = best->msg.dst;
    p.msg = best->msg.id;
    p.created = best->msg.created;
    p.offset = offset;
    p.length = chunk;
    p.messageLength = best->msg.length;
    p.flags = best->msg.flags;
    if (retrans) p.setFlag(kFlagRetransmit);
    if (offset + chunk >= best->msg.length) p.setFlag(kFlagLast);
    // pFabric's entire scheduling story: the packet carries the remaining
    // message size; switches sort by it. The 8-level `priority` field is
    // irrelevant here (PFabricQdisc ignores it for data).
    p.remaining = static_cast<uint32_t>(std::max<int64_t>(0, best->remaining()));
    p.priority = 0;
    syncSendable(*best);
    return p;
}

void PFabricTransport::handlePacket(const Packet& p) {
    if (p.type == PacketType::Ack) {
        auto it = out_.find(p.msg);
        if (it == out_.end()) return;
        OutMessage& om = it->second;
        const uint32_t fresh = om.acked.addRange(p.offset, p.length);
        om.inFlight = std::max<int64_t>(0, om.inFlight - fresh);
        om.lastAckActivity = host_.loop().now();
        if (om.acked.complete()) {
            sendable_.erase(p.msg);
            out_.erase(it);
        } else {
            syncSendable(om);
        }
        host_.kickNic();
        return;
    }
    if (p.type != PacketType::Data) return;

    // Per-packet ACK; carries the packet's range. ACKs ride the control
    // queue (tiny, never dropped by PFabricQdisc).
    Packet ack;
    ack.type = PacketType::Ack;
    ack.dst = p.src;
    ack.msg = p.msg;
    ack.offset = p.offset;
    ack.length = p.length;
    ack.priority = kHighestPriority;
    host_.pushPacket(ack);

    auto it = in_.find(p.msg);
    if (it == in_.end()) {
        Message meta;
        meta.id = p.msg;
        meta.src = p.src;
        meta.dst = p.dst;
        meta.length = p.messageLength;
        meta.flags = p.flags;
        meta.created = p.created;
        it = in_.emplace(p.msg, InMessage(meta, p.messageLength)).first;
    }
    InMessage& im = it->second;
    im.reasm.addRange(p.offset, p.length);
    im.acc.packetsReceived++;
    im.acc.queueingDelay += p.queueingDelay;
    im.acc.preemptionLag += p.preemptionLag;
    if (im.reasm.complete()) {
        Message meta = im.meta;
        DeliveryInfo acc = im.acc;
        acc.completed = host_.loop().now();
        in_.erase(it);
        notifyDelivered(meta, acc);
    }
}

void PFabricTransport::checkTimeouts() {
    const Time now = host_.loop().now();
    bool any = false;
    for (auto& [id, om] : out_) {
        any = true;
        if (now - om.lastAckActivity < cfg_.rto) continue;
        if (om.retransmit.has_value()) continue;
        // Retransmit the first unacked range; the in-flight estimate for
        // lost packets is stale, so reset it to what the window allows.
        auto gap = om.acked.firstGap();
        if (!gap.has_value()) continue;
        if (gap->first >= om.nextOffset) {
            // Nothing sent is unacked; the window was just idle.
            om.inFlight = 0;
            syncSendable(om);
            continue;
        }
        const uint32_t len = std::min<uint32_t>(gap->second, kMaxPayload);
        om.retransmit = std::make_pair(gap->first, len);
        om.inFlight = 0;
        om.lastAckActivity = now;
        syncSendable(om);
    }
    if (any) {
        rtoScan_.schedule(cfg_.rto / 2);
        host_.kickNic();
    }
}

TransportFactory PFabricTransport::factory(PFabricConfig cfg,
                                           const NetworkConfig& net) {
    const auto timings = NetworkTimings::compute(net);
    if (cfg.windowBytes <= 0) cfg.windowBytes = timings.rttBytes;
    if (cfg.rto <= 0) cfg.rto = 3 * timings.rttSmallGrant;
    return [cfg](HostServices& host) {
        return std::make_unique<PFabricTransport>(host, cfg);
    };
}

}  // namespace homa
