// pHost (Gao et al., CoNEXT 2015) — the receiver-driven baseline.
//
// Mechanisms the paper contrasts with Homa (§2.2, §5.2):
//  * first RTTbytes of every message sent blindly at ONE static high
//    priority; all later packets at ONE static low priority;
//  * receivers schedule one token per packet time, and grant to only ONE
//    message at a time (no overcommitment), the SRPT-best;
//  * a free-token timeout demotes unresponsive senders so the receiver
//    moves on — the mechanism whose limits cap pHost at 58-73% load.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "sched/srpt_index.h"
#include "sim/event_loop.h"
#include "sim/topology.h"
#include "transport/transport.h"

namespace homa {

struct PHostConfig {
    int64_t rttBytes = 0;  // <= 0: derive from topology
    /// Receiver gives up on an unresponsive sender after this long without
    /// a data packet for the granted message.
    Duration freeTokenTimeout = microseconds(15);
    /// Tokens expire if unused this long after arriving at the sender
    /// (the pHost paper uses 1.5 packet transmission times). Expired
    /// tokens are the bandwidth pHost wastes: the receiver scheduled a
    /// packet slot that nobody used. 0 disables expiry.
    Duration tokenTtl = microseconds(2);
    uint8_t unschedPriority = kHighestPriority;  // static, all messages
    uint8_t schedPriority = 0;                   // static, all messages
};

class PHostTransport final : public Transport {
public:
    PHostTransport(HostServices& host, PHostConfig cfg, Duration packetTime);

    void sendMessage(const Message& m) override;
    void handlePacket(const Packet& p) override;
    std::optional<Packet> pullPacket() override;
    bool hasWithheldWork() const override;

    static TransportFactory factory(PHostConfig cfg, const NetworkConfig& net);

private:
    struct OutMessage {
        Message msg;
        int64_t unschedLimit = 0;
        int64_t nextOffset = 0;
        // Unused scheduled-packet permissions: arrival times, so they can
        // expire (pHost's wasted-bandwidth mechanism).
        std::deque<Time> tokens;
        int64_t remaining() const {
            return static_cast<int64_t>(msg.length) - nextOffset;
        }
        bool sendable() const {
            return nextOffset < unschedLimit ||
                   (!tokens.empty() && nextOffset < msg.length);
        }
    };

    struct InMessage {
        Message meta;
        Reassembly reasm;
        DeliveryInfo acc;
        int64_t tokensSent = 0;     // scheduled bytes requested so far
        Time lastData = 0;
        Time indexedLastData = -1;  // key under which staleness_ holds us
        bool demoted = false;       // free-token timeout hit; skip until data
        InMessage(Message m, uint32_t len) : meta(m), reasm(len) {}
        int64_t remaining() const {
            return static_cast<int64_t>(reasm.messageLength()) -
                   reasm.receivedBytes();
        }
        bool needsTokens() const {
            return tokensSent < static_cast<int64_t>(reasm.messageLength());
        }
    };

    void pacerTick();
    /// Re-sync `im`'s membership in the grantee indexes after any change
    /// to its token accounting, reassembly progress, or demotion state.
    void syncGrantee(InMessage& im);
    void dropGrantee(InMessage& im);

    HostServices& host_;
    PHostConfig cfg_;
    Duration packetTime_;  // downlink serialization time of a full packet
    std::map<MsgId, OutMessage> out_;
    std::map<MsgId, InMessage> in_;
    // Sender-side SRPT over (possibly stale-)sendable messages; token
    // expiry is applied lazily when a message surfaces as best.
    SrptIndex<MsgId> sendable_;
    // Incremental grantee choice (was a full scan per pacer tick):
    // SRPT order over token-needing messages, split by demotion state, and
    // a lastData-ordered set of messages with outstanding tokens so the
    // free-token-timeout sweep touches only actually-stale entries.
    SrptIndex<MsgId> eligible_;   // needsTokens && !demoted
    SrptIndex<MsgId> demotedIdx_; // needsTokens && demoted (last resort)
    std::set<std::pair<Time, MsgId>> staleness_;  // tokens outstanding
    Timer pacer_;
    bool pacerRunning_ = false;
};

}  // namespace homa
