#include "baselines/ndp.h"

#include <algorithm>
#include <cassert>

namespace homa {

NdpTransport::NdpTransport(HostServices& host, NdpConfig cfg, Duration packetTime)
    : host_(host),
      cfg_(cfg),
      packetTime_(packetTime),
      pacer_(host.loop(), [this] { pacerTick(); }) {}

void NdpTransport::sendChunk(const Message& msg, uint32_t offset, uint32_t len,
                             bool retransmit) {
    Packet p;
    p.type = PacketType::Data;
    p.dst = msg.dst;
    p.msg = msg.id;
    p.created = msg.created;
    p.offset = offset;
    p.length = len;
    p.messageLength = msg.length;
    p.flags = msg.flags;
    if (retransmit) p.setFlag(kFlagRetransmit);
    if (offset + len >= msg.length) p.setFlag(kFlagLast);
    p.priority = 0;  // all NDP data at one level; trimmed headers get P7
    host_.pushPacket(p);  // FIFO NIC: no sender-side reordering
}

void NdpTransport::sendMessage(const Message& m) {
    // Blast the first window into the NIC immediately (blind start).
    OutMessage om;
    om.msg = m;
    const int64_t burst = std::min<int64_t>(cfg_.initialWindow, m.length);
    while (om.sentTo < burst) {
        const uint32_t chunk = static_cast<uint32_t>(
            std::min<int64_t>(kMaxPayload, burst - om.sentTo));
        sendChunk(m, static_cast<uint32_t>(om.sentTo), chunk, false);
        om.sentTo += chunk;
    }
    out_.emplace(m.id, std::move(om));
    // Fully-sent messages stay around to serve retransmission pulls for
    // trimmed packets; evict the oldest once the table grows large. MsgIds
    // are monotone, so begin() is the oldest entry.
    while (out_.size() > 16384) {
        auto oldest = out_.begin();
        if (oldest->second.sentTo < oldest->second.msg.length) break;
        out_.erase(oldest);
    }
}

void NdpTransport::syncPull(InMessage& im) {
    if (im.wantsPull(cfg_.initialWindow)) {
        pullRing_.insert(im.meta.id);
    } else {
        pullRing_.erase(im.meta.id);
    }
}

void NdpTransport::pacerTick() {
    // Round-robin (fair-share) pull across the messages that want one.
    const auto id = pullRing_.next();
    if (!id) {
        pacerRunning_ = false;
        return;
    }
    InMessage& im = in_.at(*id);
    Packet pull;
    pull.type = PacketType::Pull;
    pull.dst = im.meta.src;
    pull.msg = im.meta.id;
    pull.priority = kHighestPriority;
    if (!im.trimmed.empty()) {
        pull.offset = *im.trimmed.begin();
        pull.setFlag(kFlagRetransmit);
        im.trimmed.erase(im.trimmed.begin());
    } else {
        pull.offset = static_cast<uint32_t>(im.pulledTo);
        im.pulledTo = std::min<int64_t>(
            im.pulledTo + kMaxPayload, im.reasm.messageLength());
    }
    host_.pushPacket(pull);
    syncPull(im);
    pacer_.schedule(packetTime_);
}

void NdpTransport::handlePacket(const Packet& p) {
    switch (p.type) {
        case PacketType::Pull: {
            auto it = out_.find(p.msg);
            if (it == out_.end()) return;  // evicted; loss is unrecoverable
            OutMessage& om = it->second;
            if (p.hasFlag(kFlagRetransmit)) {
                // The pull names the trimmed offset explicitly.
                if (p.offset >= om.msg.length) return;
                const uint32_t chunk = static_cast<uint32_t>(std::min<int64_t>(
                    kMaxPayload, om.msg.length - p.offset));
                sendChunk(om.msg, p.offset, chunk, true);
                return;
            }
            if (om.sentTo >= om.msg.length) return;
            const uint32_t chunk = static_cast<uint32_t>(std::min<int64_t>(
                kMaxPayload, om.msg.length - om.sentTo));
            sendChunk(om.msg, static_cast<uint32_t>(om.sentTo), chunk, false);
            om.sentTo += chunk;
            return;
        }
        case PacketType::Data: {
            auto it = in_.find(p.msg);
            if (it == in_.end() && p.hasFlag(kFlagRetransmit)) {
                return;  // duplicate retransmission after completion
            }
            if (it == in_.end()) {
                Message meta;
                meta.id = p.msg;
                meta.src = p.src;
                meta.dst = p.dst;
                meta.length = p.messageLength;
                meta.flags = p.flags;
                meta.created = p.created;
                InMessage im(meta, p.messageLength);
                im.pulledTo = std::min<int64_t>(cfg_.initialWindow,
                                                p.messageLength);
                it = in_.emplace(p.msg, std::move(im)).first;
            }
            InMessage& im = it->second;
            if (p.hasFlag(kFlagTrimmed)) {
                // Header survived; payload was cut in-network. Queue the
                // offset for a retransmission pull.
                if (!im.reasm.complete()) im.trimmed.insert(p.offset);
            } else {
                im.reasm.addRange(p.offset, p.length);
                im.acc.packetsReceived++;
                im.acc.queueingDelay += p.queueingDelay;
                im.acc.preemptionLag += p.preemptionLag;
            }
            if (im.reasm.complete()) {
                Message meta = im.meta;
                DeliveryInfo acc = im.acc;
                acc.completed = host_.loop().now();
                pullRing_.erase(meta.id);
                in_.erase(it);
                notifyDelivered(meta, acc);
            } else {
                syncPull(im);
                if (!pacerRunning_) {
                    pacerRunning_ = true;
                    pacer_.schedule(0);
                }
            }
            return;
        }
        default:
            return;
    }
}

TransportFactory NdpTransport::factory(NdpConfig cfg, const NetworkConfig& net) {
    if (cfg.initialWindow <= 0) {
        cfg.initialWindow = NetworkTimings::compute(net).rttBytes;
    }
    const Duration packetTime = net.hostLink.serialize(kFullPacketWireBytes);
    return [cfg, packetTime](HostServices& host) {
        return std::make_unique<NdpTransport>(host, cfg, packetTime);
    };
}

}  // namespace homa
