// "Basic": RAMCloud's pre-Homa receiver-driven transport (§5.1).
//
// Basic is Homa minus its two key ideas: it uses no network priorities
// (every packet at one level) and places no limit on overcommitment
// (receivers grant independently to all incoming messages). The paper
// describes it as "roughly HomaP1 with no limit on overcommitment", so we
// express it as a Homa configuration rather than a separate protocol.
#pragma once

#include "core/homa_config.h"

namespace homa {

HomaConfig basicTransportConfig();

}  // namespace homa
