// pFabric (Alizadeh et al., SIGCOMM 2013) — near-optimal SRPT via
// fine-grained in-network priorities.
//
// Every packet carries the sender's remaining message size; switches keep
// tiny buffers, drop the packet with the largest remaining size on
// overflow, and dequeue the smallest (PFabricQdisc). Rate control is
// minimal, per the pFabric philosophy: send at line rate within a BDP
// window, recover drops with a small retransmission timeout. The paper
// credits pFabric with near-optimal latency but notes it wastes bandwidth
// on dropped/retransmitted packets (Figure 15) and needs priority hardware
// that does not exist; both properties reproduce here.
#pragma once

#include <map>
#include <optional>

#include "sched/srpt_index.h"
#include "sim/event_loop.h"
#include "sim/topology.h"
#include "transport/transport.h"

namespace homa {

struct PFabricConfig {
    int64_t windowBytes = 0;    // <= 0: rttBytes (BDP)
    Duration rto = 0;           // <= 0: 3x network RTT
    /// Switch buffer per egress port (the paper's setup uses ~2 BDP).
    int64_t switchBufferBytes = 36 * 1500;
};

class PFabricTransport final : public Transport {
public:
    PFabricTransport(HostServices& host, PFabricConfig cfg);

    void sendMessage(const Message& m) override;
    void handlePacket(const Packet& p) override;
    std::optional<Packet> pullPacket() override;

    static TransportFactory factory(PFabricConfig cfg, const NetworkConfig& net);

    uint64_t retransmissions() const { return retransmissions_; }

private:
    struct OutMessage {
        Message msg;
        Reassembly acked;         // which bytes the receiver confirmed
        int64_t nextOffset = 0;   // next fresh byte
        int64_t inFlight = 0;
        Time lastAckActivity = 0;
        std::optional<std::pair<uint32_t, uint32_t>> retransmit;

        OutMessage(Message m) : msg(m), acked(m.length) {}
        int64_t remaining() const {
            return static_cast<int64_t>(msg.length) - acked.receivedBytes();
        }
        bool sendable(int64_t window) const {
            return retransmit.has_value() ||
                   (nextOffset < msg.length && inFlight < window);
        }
    };

    struct InMessage {
        Message meta;
        Reassembly reasm;
        DeliveryInfo acc;
        InMessage(Message m, uint32_t len) : meta(m), reasm(len) {}
    };

    void checkTimeouts();
    void syncSendable(const OutMessage& om);

    HostServices& host_;
    PFabricConfig cfg_;
    std::map<MsgId, OutMessage> out_;
    std::map<MsgId, InMessage> in_;
    // SRPT order over the sendable subset of out_, keyed by remaining().
    SrptIndex<MsgId> sendable_;
    Timer rtoScan_;
    uint64_t retransmissions_ = 0;
};

}  // namespace homa
