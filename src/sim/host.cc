#include "sim/host.h"

#include <cassert>
#include <utility>

namespace homa {

Host::Host(EventLoop& loop, HostId id, Bandwidth nicSpeed, Duration softwareDelay,
           Rng rng)
    : loop_(loop),
      id_(id),
      softwareDelay_(softwareDelay),
      rng_(rng),
      nic_(loop, nicSpeed, std::make_unique<StrictPriorityQdisc>()) {}

void Host::setTransport(std::unique_ptr<Transport> t) {
    transport_ = std::move(t);
    nic_.setSource(this);
}

std::optional<Packet> Host::pullPacket() {
    auto p = transport_->pullPacket();
    if (p) {
        p->src = id_;
        if (p->created < 0) p->created = loop_.now();
    }
    return p;
}

void Host::deliver(Packet p) {
    // The paper's simulation setup: hosts process any number of packets in
    // parallel, each with a fixed 1.5 us software delay before the
    // transport can react (and before a response packet can be sent).
    assert(transport_ != nullptr);
    rxPackets_++;
    pendingRx_.push_back(std::move(p));
    loop_.after(softwareDelay_, [this] { processHead(); });
}

void Host::processHead() {
    assert(!pendingRx_.empty());
    Packet p = std::move(pendingRx_.front());
    pendingRx_.pop_front();
    transport_->handlePacket(p);
}

void Host::pushPacket(Packet p) {
    p.src = id_;
    if (p.created < 0) p.created = loop_.now();
    nic_.enqueue(std::move(p));
}

}  // namespace homa
