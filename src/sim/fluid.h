// Fluid (flow-level) fast path for long messages.
//
// Per-packet simulation prices every byte the same, but long-message
// transfers are bandwidth-dominated: their completion time is set by the
// max-min fair share they get on the bottleneck trunk, not by per-packet
// scheduling detail. The FluidEngine models them that way — à la SimGrid's
// LV08 flow-level model — so host counts can grow by orders of magnitude
// while packet fidelity stays reserved for the grant-scheduled short-RPC
// region the paper actually targets.
//
// Mechanics: a message admitted to the fluid path becomes one flow with
// `messageWireBytes(length)` bytes remaining, routed over an *aggregated*
// link graph (per-host NIC up/down links, per-rack TOR-uplink and
// -downlink trunks, per-pod aggr<->core trunks on three-tier topologies —
// packet spraying makes each stage behave like one pooled trunk). Rates
// are the bounded max-min fair allocation (progressive filling) and are
// re-solved only at flow arrival and departure epochs, scheduled as a
// single cancellable event on the host EventLoop. A constant latency tail
// — calibrated so an unloaded transfer completes in exactly the oracle's
// best one-way time — covers the store-and-forward pipeline, switch
// delays, and receiver software delay (the LV08 "latency factor" role).
//
// Regime coupling: the packet-level traffic that stays below the
// threshold still exists on the same physical links, so every fluid
// capacity is scaled by (1 - reservedFraction); the driver sets the
// reservation to the expected byte share of the packet regime
// (load x byteWeightedCdf(threshold)).
//
// Determinism: the engine runs on shard 0's loop only (the driver forces
// the network serial when the fluid path is on), flows live in a vector
// in admission order, links are iterated in index order, and every rate
// is a pure double computation over those orderings — same seed, same
// bytes. With the threshold above the workload's largest message no flow
// is ever admitted and the run is byte-identical to one without the
// engine (the offer() hook just declines).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_loop.h"
#include "sim/topology.h"
#include "transport/message.h"
#include "transport/transport.h"

namespace homa {

struct FluidConfig {
    /// Messages with length >= this many bytes take the fluid path;
    /// 0 admits everything, < 0 admits nothing (engine disabled).
    int64_t thresholdBytes = -1;

    /// Fraction of every link's capacity reserved for the packet-level
    /// regime (clamped to [0, 0.95]). The driver derives it from the
    /// workload's byte-weighted CDF at the threshold.
    double reservedFraction = 0.0;

    /// Unloaded one-way delivery time for a message of the given size
    /// (Oracle::bestOneWay). Required: calibrates the latency tail added
    /// after a flow's last byte clears the fluid bottleneck.
    std::function<Duration(uint32_t size, bool intraRack)> bestOneWay;
};

/// Snapshot of the fluid regime's counters for ExperimentResult.
struct FluidStats {
    int64_t thresholdBytes = -1; // effective admission threshold
    uint64_t flows = 0;          // messages admitted to the fluid path
    uint64_t delivered = 0;      // fluid flows completed and delivered
    uint64_t solves = 0;         // rate re-solve epochs
    uint64_t maxConcurrent = 0;  // peak simultaneous fluid flows
    int64_t payloadBytes = 0;    // payload bytes admitted
    int64_t wireBytes = 0;       // wire bytes admitted (payload + headers)
    int64_t deliveredWireBytes = 0;  // wire bytes of completed flows
    double slowP50 = 0;          // fluid-regime slowdown percentiles
    double slowP99 = 0;
    double slowMean = 0;
};

class FluidEngine {
public:
    /// `loop` must be the serial simulation loop (shard 0 of a one-shard
    /// network); `net` describes the topology the trunk graph aggregates.
    FluidEngine(EventLoop& loop, const NetworkConfig& net, FluidConfig cfg);

    /// Offer a message to the fluid path. Returns true — message absorbed,
    /// the packet transport must not see it — when its length reaches the
    /// threshold; false declines it untouched. `m.created` must be set.
    bool offer(const Message& m);

    /// Invoked on the loop at each fluid delivery, mirroring the packet
    /// transports' delivery callback (same signature, same stats path).
    void setDeliveryCallback(Transport::DeliveryCallback cb) {
        deliver_ = std::move(cb);
    }

    int activeFlows() const { return static_cast<int>(flows_.size()); }

    /// Counter snapshot; percentiles computed at call time.
    FluidStats stats() const;

private:
    struct Flow {
        Message msg;
        double wire = 0;       // total wire bytes (payload + per-packet headers)
        double remaining = 0;  // wire bytes not yet through the bottleneck
        double rate = 0;       // bytes per picosecond, set by the solver
        Duration tail = 0;     // pipeline latency after the last byte
        bool intraRack = false;
        int nLinks = 0;
        int links[6] = {0, 0, 0, 0, 0, 0};
    };

    void addLinksFor(Flow& f) const;
    /// Progressive-filling max-min: equal rate growth for all unfrozen
    /// flows until a link saturates, freezing its flows; repeats.
    void solveRates();
    /// Decrement remaining bytes by rate x elapsed and schedule delivery of
    /// every flow that finished its transfer.
    void advanceAndComplete(Time now);
    /// Next-completion event body: advance, re-solve, re-arm.
    void epoch();
    void armNextCompletion();
    void completeFlow(Flow f, Time at);

    EventLoop& loop_;
    FluidConfig cfg_;
    Transport::DeliveryCallback deliver_;

    // Aggregated trunk capacities, bytes/ps, reservation already applied.
    // Layout: [0,n) host uplinks, [n,2n) host downlinks, then per-rack
    // up/down trunks, then per-pod up/down trunks (multi-rack/three-tier
    // only). Scratch vectors are solver state, sized like capacity_.
    std::vector<double> capacity_;
    std::vector<double> alloc_;
    std::vector<int> active_;
    std::vector<char> frozen_;
    int hostsPerRack_ = 1;
    int podRacks_ = 1;
    int rackBase_ = 0;  // index of rack trunk block; -1 if single-rack
    int podBase_ = 0;   // index of pod trunk block; -1 if two-tier

    std::vector<Flow> flows_;  // admission order; erased stably
    Time lastSolve_ = 0;
    // The single pending next-completion event, re-armed at every epoch.
    EventLoop::EventHandle next_{};

    // Counters for stats().
    uint64_t admitted_ = 0, delivered_ = 0, solves_ = 0, maxConcurrent_ = 0;
    int64_t payloadBytes_ = 0, wireBytes_ = 0, deliveredWireBytes_ = 0;
    std::vector<double> slowdowns_;  // per delivered flow, delivery order
};

}  // namespace homa
