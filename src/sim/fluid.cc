#include "sim/fluid.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "sim/packet.h"

namespace homa {

namespace {

// A link is saturated when its remaining room is this fraction of its
// capacity or less; a flow is done when this many bytes (or fewer) remain.
// Both guards absorb the rounding of repeated double accumulation without
// affecting any realistic rate (capacities are ~1e-3 bytes/ps).
constexpr double kSaturationEps = 1e-9;
constexpr double kDoneBytesEps = 1e-6;

double wireBytesOf(uint32_t length) {
    // Mirrors messageWireBytes() (workload layer): payload plus transport
    // header and Ethernet framing per packet.
    const int64_t len = static_cast<int64_t>(length);
    const int64_t packets =
        std::max<int64_t>(1, (len + kMaxPayload - 1) / kMaxPayload);
    return static_cast<double>(len + packets * (kHeaderBytes + kFrameOverhead));
}

double bytesPerPs(Bandwidth b) {
    return b.psPerByte > 0 ? 1.0 / static_cast<double>(b.psPerByte) : 0.0;
}

}  // namespace

FluidEngine::FluidEngine(EventLoop& loop, const NetworkConfig& net,
                         FluidConfig cfg)
    : loop_(loop), cfg_(std::move(cfg)) {
    assert(cfg_.bestOneWay && "FluidConfig::bestOneWay is required");
    const double share =
        1.0 - std::clamp(cfg_.reservedFraction, 0.0, 0.95);
    const int n = net.hostCount();
    hostsPerRack_ = net.hostsPerRack;
    podRacks_ = net.podRacks();

    // Host NIC up/down links first. The trunk blocks only exist on
    // topologies that have the corresponding tier: intra-rack flows cross
    // two links, cross-rack four, cross-pod six.
    capacity_.assign(static_cast<size_t>(2 * n), 0.0);
    const double hostCap = share * bytesPerPs(net.hostLink);
    for (int h = 0; h < 2 * n; h++) capacity_[static_cast<size_t>(h)] = hostCap;

    if (!net.singleRack()) {
        rackBase_ = static_cast<int>(capacity_.size());
        // Packet spraying spreads a rack's cross-rack traffic evenly over
        // its uplinks, so the whole uplink stage behaves like one pooled
        // trunk of aggrSwitches x coreLink (same pool downward).
        const double rackCap =
            share * static_cast<double>(net.aggrSwitches) *
            bytesPerPs(net.coreLink);
        capacity_.insert(capacity_.end(), static_cast<size_t>(2 * net.racks),
                         rackCap);
    } else {
        rackBase_ = -1;
    }
    if (net.threeTier()) {
        podBase_ = static_cast<int>(capacity_.size());
        // Each pod's aggrs together run aggrSwitches x coreSwitches
        // uplinks at the oversubscribed aggr<->core bandwidth — the trunk
        // where cross-pod fluid flows contend, exactly like cross-pod
        // packets do on the real oversubscribed core.
        const double podCap =
            share * static_cast<double>(net.aggrSwitches) *
            static_cast<double>(net.coreSwitches) *
            bytesPerPs(net.aggrCoreLink());
        capacity_.insert(capacity_.end(), static_cast<size_t>(2 * net.pods()),
                         podCap);
    } else {
        podBase_ = -1;
    }
    alloc_.assign(capacity_.size(), 0.0);
    active_.assign(capacity_.size(), 0);
}

void FluidEngine::addLinksFor(Flow& f) const {
    const int hosts = rackBase_ >= 0 ? rackBase_ / 2
                                     : static_cast<int>(capacity_.size()) / 2;
    const int srcRack = f.msg.src / hostsPerRack_;
    const int dstRack = f.msg.dst / hostsPerRack_;
    f.nLinks = 0;
    f.links[f.nLinks++] = f.msg.src;          // host uplink
    f.links[f.nLinks++] = hosts + f.msg.dst;  // host downlink
    f.intraRack = srcRack == dstRack;
    if (f.intraRack || rackBase_ < 0) return;
    const int racks = (podBase_ >= 0 ? podBase_ - rackBase_
                                     : static_cast<int>(capacity_.size()) -
                                           rackBase_) /
                      2;
    f.links[f.nLinks++] = rackBase_ + srcRack;          // rack uplink trunk
    f.links[f.nLinks++] = rackBase_ + racks + dstRack;  // rack downlink trunk
    if (podBase_ < 0) return;
    const int srcPod = srcRack / podRacks_;
    const int dstPod = dstRack / podRacks_;
    if (srcPod == dstPod) return;
    const int pods = (static_cast<int>(capacity_.size()) - podBase_) / 2;
    f.links[f.nLinks++] = podBase_ + srcPod;         // pod->core trunk
    f.links[f.nLinks++] = podBase_ + pods + dstPod;  // core->pod trunk
}

void FluidEngine::solveRates() {
    if (flows_.empty()) return;
    solves_++;
    std::fill(alloc_.begin(), alloc_.end(), 0.0);
    std::fill(active_.begin(), active_.end(), 0);
    for (Flow& f : flows_) {
        f.rate = 0;
        for (int i = 0; i < f.nLinks; i++) active_[f.links[i]]++;
    }
    // Progressive filling: all unfrozen flows grow at the same rate until
    // some link saturates; flows crossing a saturated link freeze at their
    // current rate; repeat on the rest. Links in index order, flows in
    // admission order — the allocation is a pure function of the flow set.
    frozen_.assign(flows_.size(), 0);
    size_t unfrozen = flows_.size();
    // Each round freezes at least one flow, so flows_.size() bounds the
    // rounds; the +1 margin tolerates a no-progress epsilon round.
    for (size_t round = 0; unfrozen > 0 && round <= flows_.size(); round++) {
        double inc = std::numeric_limits<double>::infinity();
        for (size_t l = 0; l < capacity_.size(); l++) {
            if (active_[l] <= 0) continue;
            const double room = (capacity_[l] - alloc_[l]) /
                                static_cast<double>(active_[l]);
            if (room < inc) inc = room;
        }
        if (!std::isfinite(inc) || inc < 0) inc = 0;
        for (size_t i = 0; i < flows_.size(); i++) {
            if (frozen_[i]) continue;
            flows_[i].rate += inc;
            for (int k = 0; k < flows_[i].nLinks; k++) {
                alloc_[flows_[i].links[k]] += inc;
            }
        }
        size_t frozeThisRound = 0;
        for (size_t i = 0; i < flows_.size(); i++) {
            if (frozen_[i]) continue;
            bool saturated = false;
            for (int k = 0; k < flows_[i].nLinks && !saturated; k++) {
                const int l = flows_[i].links[k];
                saturated = capacity_[l] - alloc_[l] <=
                            kSaturationEps * capacity_[l];
            }
            if (!saturated) continue;
            frozen_[i] = 1;
            frozeThisRound++;
            for (int k = 0; k < flows_[i].nLinks; k++) {
                active_[flows_[i].links[k]]--;
            }
        }
        if (frozeThisRound == 0) break;  // fp corner: accept current rates
        unfrozen -= frozeThisRound;
    }
}

void FluidEngine::advanceAndComplete(Time now) {
    const double dt = static_cast<double>(now - lastSolve_);
    if (dt > 0) {
        for (Flow& f : flows_) f.remaining -= f.rate * dt;
    }
    lastSolve_ = now;
    size_t w = 0;
    for (size_t i = 0; i < flows_.size(); i++) {
        if (flows_[i].remaining <= kDoneBytesEps) {
            completeFlow(std::move(flows_[i]), now);
        } else {
            if (w != i) flows_[w] = std::move(flows_[i]);
            w++;
        }
    }
    flows_.resize(w);
}

void FluidEngine::completeFlow(Flow f, Time at) {
    deliveredWireBytes_ += static_cast<int64_t>(f.wire);
    const Time deliverAt = at + f.tail;
    const double best = static_cast<double>(
        cfg_.bestOneWay(f.msg.length, f.intraRack));
    const uint32_t packets = std::max<uint32_t>(
        1, (f.msg.length + kMaxPayload - 1) / kMaxPayload);
    loop_.at(deliverAt, [this, m = f.msg, best, packets] {
        delivered_++;
        if (best > 0) {
            slowdowns_.push_back(
                static_cast<double>(loop_.now() - m.created) / best);
        }
        DeliveryInfo info;
        info.completed = loop_.now();
        info.packetsReceived = packets;
        if (deliver_) deliver_(m, info);
    });
}

void FluidEngine::armNextCompletion() {
    loop_.cancel(next_);
    next_ = EventLoop::EventHandle{};
    if (flows_.empty()) return;
    double soonest = std::numeric_limits<double>::infinity();
    for (const Flow& f : flows_) {
        if (f.rate > 0) soonest = std::min(soonest, f.remaining / f.rate);
    }
    if (!std::isfinite(soonest)) return;  // every flow stalled (cap == 0)
    const Time at =
        lastSolve_ + std::max<Time>(1, static_cast<Time>(std::ceil(soonest)));
    next_ = loop_.at(at, [this] { epoch(); });
}

void FluidEngine::epoch() {
    next_ = EventLoop::EventHandle{};
    advanceAndComplete(loop_.now());
    solveRates();
    armNextCompletion();
}

bool FluidEngine::offer(const Message& m) {
    if (cfg_.thresholdBytes < 0 ||
        static_cast<int64_t>(m.length) < cfg_.thresholdBytes) {
        return false;
    }
    Flow f;
    f.msg = m;
    f.wire = wireBytesOf(m.length);
    f.remaining = f.wire;
    addLinksFor(f);
    // Latency tail: whatever the unloaded pipeline costs beyond pure NIC
    // serialization (switch hops, store-and-forward offsets, receiver
    // software delay). An uncontended flow transfers at NIC rate, so its
    // completion lands exactly on the oracle's best one-way time.
    const Duration serialization = static_cast<Duration>(
        std::llround(f.wire / std::max(capacity_[static_cast<size_t>(m.src)],
                                       1e-12)));
    f.tail = std::max<Duration>(
        0, cfg_.bestOneWay(m.length, f.intraRack) - serialization);

    admitted_++;
    payloadBytes_ += static_cast<int64_t>(m.length);
    wireBytes_ += static_cast<int64_t>(f.wire);

    advanceAndComplete(loop_.now());
    flows_.push_back(f);
    maxConcurrent_ = std::max<uint64_t>(maxConcurrent_, flows_.size());
    solveRates();
    armNextCompletion();
    return true;
}

FluidStats FluidEngine::stats() const {
    FluidStats s;
    s.thresholdBytes = cfg_.thresholdBytes;
    s.flows = admitted_;
    s.delivered = delivered_;
    s.solves = solves_;
    s.maxConcurrent = maxConcurrent_;
    s.payloadBytes = payloadBytes_;
    s.wireBytes = wireBytes_;
    s.deliveredWireBytes = deliveredWireBytes_;
    if (!slowdowns_.empty()) {
        std::vector<double> v = slowdowns_;
        std::sort(v.begin(), v.end());
        auto rank = [&v](double p) {
            size_t i = static_cast<size_t>(
                std::ceil(p * static_cast<double>(v.size())));
            return v[std::min(v.size() - 1, i > 0 ? i - 1 : 0)];
        };
        s.slowP50 = rank(0.50);
        s.slowP99 = rank(0.99);
        double sum = 0;
        for (double x : v) sum += x;
        s.slowMean = sum / static_cast<double>(v.size());
    }
    return s;
}

}  // namespace homa
