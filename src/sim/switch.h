// Store-and-forward switch with strict-priority (or pFabric) egress queues.
//
// A packet that has fully arrived on an ingress link is routed after the
// switch's internal delay (250 ns in the paper's simulations) and enqueued
// on the chosen egress port. Routing is a pluggable function so the same
// class serves TORs (with packet spraying across uplinks) and aggregation
// switches.
//
// Transit order is canonical: packets waiting out the internal delay are
// kept sorted by (arrival time, ingress link id) and routed strictly in
// that order by routeDue(). Arrival events merely *kick* routeDue(), so
// routing outcomes — including the per-switch RNG draws for uplink
// spraying and which packet a priority qdisc dequeues next — are a pure
// function of the set of (arrival, link, packet) triples, never of the
// order the arrival events happened to be scheduled in. The parallel
// engine injects cross-shard arrivals through injectArrival() and relies
// on exactly this property for serial/parallel byte-identity.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_loop.h"
#include "sim/packet.h"
#include "sim/port.h"
#include "sim/random.h"

namespace homa {

class Switch final : public PacketSink, public DueRouter {
public:
    /// Maps a packet to an egress port index; may use rng (spraying).
    using RouteFn = std::function<int(const Packet&, Rng&)>;

    Switch(EventLoop& loop, std::string name, Duration internalDelay, Rng rng)
        : loop_(loop), name_(std::move(name)), delay_(internalDelay), rng_(rng) {}

    /// Add an egress port; returns its index. The port's transmission
    /// boundaries flush this switch's routeDue() (enqueue-before-dequeue).
    int addPort(Bandwidth bw, std::unique_ptr<Qdisc> qdisc, PacketSink* peer);

    void setRoute(RouteFn fn) { route_ = std::move(fn); }

    /// Ingress: the packet finished arriving now.
    void deliver(Packet p) override;

    /// Cross-shard ingress: the packet finished arriving at `arrival`
    /// (in the just-completed lookahead window, so arrival + delay is
    /// still in this shard's future). Called at window barriers only.
    void injectArrival(Time arrival, Packet p);

    /// Route every transit packet whose internal delay has expired, in
    /// canonical (arrival, link) order. Idempotent; safe to over-call.
    void routeDue() override;

    /// Permanent death (fault injection, sim/fault.h): discard everything
    /// queued or in transit (flushDrops), down every egress port (killing
    /// on-wire packets), and discard all future arrivals
    /// (deadIngressDrops). Idempotent.
    void kill();
    bool dead() const { return dead_; }
    uint64_t deadIngressDrops() const { return deadIngressDrops_; }
    uint64_t flushDrops() const { return flushDrops_; }

    /// Packets waiting out the internal delay (conservation accounting).
    size_t transitCount() const { return transit_.size(); }

    EventLoop& loop() { return loop_; }
    EgressPort& port(int i) { return *ports_[i]; }
    const EgressPort& port(int i) const { return *ports_[i]; }
    size_t portCount() const { return ports_.size(); }
    const std::string& name() const { return name_; }

private:
    struct Transit {
        Time route;    // arrival + internal delay
        int32_t link;  // canonical ingress link (ties: distinct real links
                       // never share an arrival instant on one switch)
        Packet pkt;
    };

    void insertTransit(Time arrival, Packet p);

    EventLoop& loop_;
    std::string name_;
    Duration delay_;
    Rng rng_;
    RouteFn route_;
    std::vector<std::unique_ptr<EgressPort>> ports_;
    // Packets inside the switch, sorted by (route, link). Kept as a member
    // so the scheduled kick events capture only `this`.
    std::deque<Transit> transit_;

    bool dead_ = false;
    Time diedAt_ = 0;  // kill() instant, for cross-shard drop attribution
    uint64_t deadIngressDrops_ = 0;
    uint64_t flushDrops_ = 0;
};

}  // namespace homa
