// Store-and-forward switch with strict-priority (or pFabric) egress queues.
//
// A packet that has fully arrived on an ingress link is routed after the
// switch's internal delay (250 ns in the paper's simulations) and enqueued
// on the chosen egress port. Routing is a pluggable function so the same
// class serves TORs (with packet spraying across uplinks) and aggregation
// switches.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_loop.h"
#include "sim/packet.h"
#include "sim/port.h"
#include "sim/random.h"

namespace homa {

class Switch final : public PacketSink {
public:
    /// Maps a packet to an egress port index; may use rng (spraying).
    using RouteFn = std::function<int(const Packet&, Rng&)>;

    Switch(EventLoop& loop, std::string name, Duration internalDelay, Rng rng)
        : loop_(loop), name_(std::move(name)), delay_(internalDelay), rng_(rng) {}

    /// Add an egress port; returns its index.
    int addPort(Bandwidth bw, std::unique_ptr<Qdisc> qdisc, PacketSink* peer);

    void setRoute(RouteFn fn) { route_ = std::move(fn); }

    void deliver(Packet p) override;

    EgressPort& port(int i) { return *ports_[i]; }
    const EgressPort& port(int i) const { return *ports_[i]; }
    size_t portCount() const { return ports_.size(); }
    const std::string& name() const { return name_; }

private:
    void forwardHead();

    EventLoop& loop_;
    std::string name_;
    Duration delay_;
    Rng rng_;
    RouteFn route_;
    std::vector<std::unique_ptr<EgressPort>> ports_;
    // Packets inside the switch (fixed internal delay => FIFO). Kept as a
    // member so the scheduled events capture only `this`.
    std::deque<std::pair<Time, Packet>> transit_;
};

}  // namespace homa
