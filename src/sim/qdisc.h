// Queue disciplines for switch egress ports and host NICs.
//
// Two families cover every protocol in the paper:
//  * StrictPriorityQdisc — 8 FIFO queues served highest-priority-first.
//    Options: byte cap with tail drop (commodity switch), NDP-style
//    trim-to-header on overflow, and DCTCP/PIAS ECN marking.
//  * PFabricQdisc — bounded pool ordered by "remaining bytes" carried in
//    each packet; overflow drops the packet with the most remaining bytes;
//    dequeue picks the message with the fewest remaining bytes and sends
//    its earliest-offset packet (pFabric's starvation-avoidance rule).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sim/packet.h"
#include "sim/packet_pool.h"

namespace homa {

/// Statistics a qdisc keeps about what happened to offered packets.
struct QdiscStats {
    uint64_t enqueued = 0;
    uint64_t dropped = 0;
    uint64_t trimmed = 0;
    uint64_t ecnMarked = 0;
};

class Qdisc {
public:
    virtual ~Qdisc() = default;

    /// Offer a packet. The qdisc may mutate it (ECN mark, trim), accept it,
    /// or reject it (returns false = dropped).
    virtual bool enqueue(Packet& p) = 0;

    virtual std::optional<Packet> dequeue() = 0;

    /// Queued payload+header bytes (excludes any packet already being
    /// transmitted, which the port owns).
    virtual int64_t queuedBytes() const = 0;
    virtual size_t queuedPackets() const = 0;

    const QdiscStats& stats() const { return stats_; }

protected:
    QdiscStats stats_;
};

struct StrictPriorityOptions {
    /// Maximum queued bytes across all levels; 0 = unbounded.
    int64_t capBytes = 0;
    /// On overflow of a DATA packet, trim it to a header and enqueue at the
    /// highest priority instead of dropping (NDP). Control packets are
    /// never trimmed.
    bool trimOnOverflow = false;
    /// Mark kFlagEcn on enqueue when queuedBytes() >= threshold; 0 = off.
    int64_t ecnThresholdBytes = 0;
};

class StrictPriorityQdisc final : public Qdisc {
public:
    explicit StrictPriorityQdisc(StrictPriorityOptions opts = {}) : opts_(opts) {}

    bool enqueue(Packet& p) override;
    std::optional<Packet> dequeue() override;
    int64_t queuedBytes() const override { return bytes_; }
    size_t queuedPackets() const override { return packets_; }

    /// Highest non-empty priority level, or -1 when empty. Ports use this
    /// for the preemption-lag decomposition.
    int headPriority() const;

private:
    StrictPriorityOptions opts_;
    // Queued packets live in a recycled slab; the per-level FIFOs hold
    // 4-byte handles (see packet_pool.h).
    PacketPool pool_;
    std::array<IndexRing, kPriorityLevels> queues_;
    int64_t bytes_ = 0;
    size_t packets_ = 0;
};

struct PFabricOptions {
    /// Pool size in bytes; pFabric provisions ~2x BDP per port.
    int64_t capBytes = 36 * 1500;
};

class PFabricQdisc final : public Qdisc {
public:
    explicit PFabricQdisc(PFabricOptions opts = {}) : opts_(opts) {}

    bool enqueue(Packet& p) override;
    std::optional<Packet> dequeue() override;
    int64_t queuedBytes() const override { return bytes_; }
    size_t queuedPackets() const override { return data_.size() + control_.size(); }

private:
    PFabricOptions opts_;
    PacketPool slab_;
    IndexRing control_;                        // ACKs etc., served first
    std::vector<PacketPool::Handle> data_;     // scanned (queues are small)
    int64_t bytes_ = 0;
};

}  // namespace homa
