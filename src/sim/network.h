// Network: owns the event loop, hosts, and switches; wires the topology.
//
// Fat-tree wiring (Figure 11): every host NIC feeds its rack's TOR; each
// TOR has one egress port per rack host (downlinks) plus one per
// aggregation switch (uplinks, packet-sprayed); each aggregation switch has
// one port per rack. Zero propagation delay; store-and-forward everywhere.
#pragma once

#include <memory>
#include <vector>

#include "sim/event_loop.h"
#include "sim/host.h"
#include "sim/switch.h"
#include "sim/topology.h"
#include "transport/transport.h"

namespace homa {

class Network {
public:
    Network(NetworkConfig cfg, const TransportFactory& makeTransport);

    EventLoop& loop() { return loop_; }
    const NetworkConfig& config() const { return cfg_; }
    const NetworkTimings& timings() const { return timings_; }

    int hostCount() const { return cfg_.hostCount(); }
    Host& host(HostId h) { return *hosts_[h]; }

    /// Hand a message to its source host's transport. Assigns created time;
    /// the id must already be unique (use nextMsgId()).
    void sendMessage(Message m);

    MsgId nextMsgId() { return nextMsg_++; }

    /// Install a delivery callback on every host's transport.
    void setDeliveryCallback(Transport::DeliveryCallback cb);

    /// The TOR egress port that feeds host h (its downlink). Queue stats
    /// here drive Table 1, Figure 16, and Figure 21.
    EgressPort& downlink(HostId h);

    /// Ports grouped by network level, for Table 1.
    std::vector<const EgressPort*> torUplinkPorts() const;
    std::vector<const EgressPort*> aggrDownlinkPorts() const;
    std::vector<const EgressPort*> torDownlinkPorts() const;

    Switch& tor(int rack) { return *tors_[rack]; }
    int rackOf(HostId h) const { return h / cfg_.hostsPerRack; }

private:
    std::unique_ptr<Qdisc> makeQdisc() const;

    NetworkConfig cfg_;
    NetworkTimings timings_;
    EventLoop loop_;
    Rng rng_;
    std::vector<std::unique_ptr<Host>> hosts_;
    std::vector<std::unique_ptr<Switch>> tors_;
    std::vector<std::unique_ptr<Switch>> aggrs_;
    MsgId nextMsg_ = 1;
};

}  // namespace homa
