// Network: owns the event loop(s), hosts, and switches; wires the topology.
//
// Fat-tree wiring (Figure 11): every host NIC feeds its rack's TOR; each
// TOR has one egress port per rack host (downlinks) plus one per
// aggregation switch in its pod (uplinks, packet-sprayed); each
// aggregation switch has one port per rack of its pod. With
// NetworkConfig::coreSwitches > 0 a third tier rises above: racks
// partition into contiguous pods, each pod gets its own aggr set, every
// aggr gains one uplink per core switch (bandwidth set by the
// oversubscription knob, see NetworkConfig::aggrCoreLink()), and every
// core switch has one port per aggr. Cross-pod packets climb
// host->TOR->aggr->core->aggr->TOR->host; intra-pod traffic never touches
// the core. Zero propagation delay; store-and-forward everywhere.
//
// Sharding (the parallel engine): with `shards` > 1 the racks — each rack
// meaning its hosts, their NICs, and its TOR — are dealt round-robin across
// that many EventLoops, and the aggregation and core switches likewise.
// Every host↔TOR link is intra-shard by construction; TOR↔aggr and
// aggr↔core links can cross shards. A cross-shard link's egress port
// deposits completed packets into a per-(source shard, destination shard)
// outbox instead of delivering them; the engine drains outboxes into the
// peer switches at lookahead window barriers (see sim/parallel.h). With
// shards == 1 (the default) the wiring, event order, and results are the
// classic serial ones.
#pragma once

#include <memory>
#include <vector>

#include "sim/event_loop.h"
#include "sim/host.h"
#include "sim/switch.h"
#include "sim/topology.h"
#include "transport/transport.h"

namespace homa {

class Network {
public:
    /// `shards` is clamped to [1, racks]; single-rack topologies and
    /// zero switch delay (no lookahead) always build one shard.
    Network(NetworkConfig cfg, const TransportFactory& makeTransport,
            int shards = 1);

    /// Shard 0's loop — the only loop when shardCount() == 1, and the one
    /// whose clock callers may treat as "the" simulation clock (all shards
    /// agree at barriers and at the end of a run).
    EventLoop& loop() { return *loops_[0]; }

    int shardCount() const { return static_cast<int>(loops_.size()); }
    EventLoop& shardLoop(int s) { return *loops_[s]; }
    EventLoop& loopFor(HostId h) { return *loops_[shardOfHost(h)]; }
    int shardOfRack(int rack) const { return rack % shardCount(); }
    int shardOfHost(HostId h) const { return shardOfRack(rackOf(h)); }

    const NetworkConfig& config() const { return cfg_; }
    const NetworkTimings& timings() const { return timings_; }

    int hostCount() const { return cfg_.hostCount(); }
    Host& host(HostId h) { return *hosts_[h]; }

    /// Hand a message to its source host's transport. Assigns created time;
    /// the id must already be unique (use nextMsgId()).
    void sendMessage(Message m);

    /// Fluid fast-path seam (sim/fluid.h): when set, sendMessage offers
    /// every message here first (after stamping `created`); a true return
    /// means the interceptor absorbed the message and no packet transport
    /// ever sees it. Unset (the default) keeps the pure packet path —
    /// sendMessage behaves byte-identically to before the seam existed.
    void setMessageInterceptor(std::function<bool(const Message&)> f) {
        intercept_ = std::move(f);
    }

    /// Global id stream: serial-only issuers (RPC layer, DAG engine, tests).
    MsgId nextMsgId() { return nextMsg_++; }

    /// Per-host id stream, safe to draw from `src`'s shard concurrently.
    /// Ids pack (src + 1) above bit 40, so they are unique across hosts and
    /// disjoint from the global stream (which never reaches 2^40).
    MsgId nextMsgId(HostId src) {
        return (static_cast<MsgId>(src) + 1) << 40 | perHostMsg_[src]++;
    }

    /// Install a delivery callback on every host's transport.
    void setDeliveryCallback(Transport::DeliveryCallback cb);

    /// Inject every parked cross-shard packet destined for `shard` into its
    /// target switch (canonical transit order makes the drain order across
    /// source shards irrelevant). Parallel engine only, at window barriers.
    void drainInboxes(int shard);

    /// The TOR egress port that feeds host h (its downlink). Queue stats
    /// here drive Table 1, Figure 16, and Figure 21.
    EgressPort& downlink(HostId h);

    /// Ports grouped by network level, for Table 1 and the fig_oversub
    /// core-contention metrics. aggrDownlinkPorts() covers only the
    /// aggr->TOR ports; the aggr->core ports are aggrUplinkPorts() (both
    /// empty groups on topologies without that tier).
    std::vector<const EgressPort*> torUplinkPorts() const;
    std::vector<const EgressPort*> aggrDownlinkPorts() const;
    std::vector<const EgressPort*> torDownlinkPorts() const;
    std::vector<const EgressPort*> aggrUplinkPorts() const;
    std::vector<const EgressPort*> coreDownlinkPorts() const;

    Switch& tor(int rack) { return *tors_[rack]; }
    Switch& aggr(int a) { return *aggrs_[a]; }
    Switch& core(int c) { return *cores_[c]; }
    int rackCount() const { return cfg_.racks; }
    int aggrCount() const { return static_cast<int>(aggrs_.size()); }
    int coreCount() const { return static_cast<int>(cores_.size()); }
    int rackOf(HostId h) const { return h / cfg_.hostsPerRack; }
    int podOf(HostId h) const { return cfg_.podOfRack(rackOf(h)); }

    /// Cross-shard packets parked in outboxes but not yet injected (0 in
    /// serial runs; used by the conservation accounting in test_fault).
    size_t pendingRemotePackets() const;

private:
    struct RemoteEvent {
        Time arrival;  // serialization end on the cross-shard link
        Switch* dst;
        Packet pkt;
    };

    std::unique_ptr<Qdisc> makeQdisc() const;
    /// Register the remote-deliver outbox seam on a cross-shard port pair.
    void wireCrossShard(EgressPort& out, int srcShard, Switch* peer,
                        int dstShard);

    NetworkConfig cfg_;
    NetworkTimings timings_;
    std::vector<std::unique_ptr<EventLoop>> loops_;
    Rng rng_;
    std::vector<std::unique_ptr<Host>> hosts_;
    std::vector<std::unique_ptr<Switch>> tors_;
    std::vector<std::unique_ptr<Switch>> aggrs_;
    std::vector<std::unique_ptr<Switch>> cores_;
    // xshard_[s][d]: packets emitted by shard s for shard d in the current
    // window. Written only by shard s's thread, drained only by shard d's —
    // the window barriers on either side order the accesses.
    std::vector<std::vector<std::vector<RemoteEvent>>> xshard_;
    MsgId nextMsg_ = 1;
    std::vector<uint64_t> perHostMsg_;
    std::function<bool(const Message&)> intercept_;
};

}  // namespace homa
