#include "sim/network.h"

#include <algorithm>
#include <cassert>

namespace homa {

std::unique_ptr<Qdisc> Network::makeQdisc() const {
    if (cfg_.switchQdisc) return cfg_.switchQdisc();
    return std::make_unique<StrictPriorityQdisc>();
}

Network::Network(NetworkConfig cfg, const TransportFactory& makeTransport,
                 int shards)
    : cfg_(cfg), timings_(NetworkTimings::compute(cfg)), rng_(cfg.seed) {
    const int nHosts = cfg_.hostCount();
    const int perRack = cfg_.hostsPerRack;
    const bool multiRack = !cfg_.singleRack();
    const int nAggr = multiRack ? cfg_.aggrSwitches : 0;

    // The parallel engine's lookahead is the switch delay, so a zero delay
    // (like a single rack, where every path is host->TOR->host within one
    // shard anyway) degenerates to serial.
    const int nShards = (!multiRack || cfg_.switchDelay <= 0)
                            ? 1
                            : std::clamp(shards, 1, cfg_.racks);
    loops_.reserve(nShards);
    for (int s = 0; s < nShards; s++) {
        loops_.push_back(std::make_unique<EventLoop>());
    }
    perHostMsg_.assign(nHosts, 0);

    // Hosts first (switch downlinks need them as sinks). Construction stays
    // fully serial and in a fixed order, so the RNG fork sequence — and
    // thus every derived stream — is identical at any shard count.
    hosts_.reserve(nHosts);
    for (HostId h = 0; h < nHosts; h++) {
        hosts_.push_back(std::make_unique<Host>(*loops_[shardOfHost(h)], h,
                                                cfg_.hostLink,
                                                cfg_.softwareDelay, rng_.fork()));
    }

    // Aggregation switches, dealt round-robin across shards.
    for (int a = 0; a < nAggr; a++) {
        aggrs_.push_back(std::make_unique<Switch>(
            *loops_[a % nShards], "aggr" + std::to_string(a), cfg_.switchDelay,
            rng_.fork()));
    }

    // TORs: ports [0, perRack) are host downlinks, [perRack, perRack+nAggr)
    // are uplinks. A TOR lives on its rack's shard.
    for (int r = 0; r < cfg_.racks; r++) {
        auto tor = std::make_unique<Switch>(*loops_[shardOfRack(r)],
                                            "tor" + std::to_string(r),
                                            cfg_.switchDelay, rng_.fork());
        for (int i = 0; i < perRack; i++) {
            tor->addPort(cfg_.hostLink, makeQdisc(), hosts_[r * perRack + i].get());
        }
        for (int a = 0; a < nAggr; a++) {
            tor->addPort(cfg_.coreLink, makeQdisc(), aggrs_[a].get());
        }
        const int rack = r;
        if (cfg_.uplinkPolicy == UplinkPolicy::Ecmp) {
            // Deterministic per-message multi-path hash over the *alive*
            // uplinks: a dead aggr's traffic reroutes instead of
            // blackholing. Liveness is the TOR's own uplink port state —
            // shard-local by construction (fault events for a TOR's
            // uplinks are scheduled on the TOR's shard), so the choice is
            // a pure function of (packet, fault schedule, time) and
            // serial == parallel holds.
            Switch* torPtr = tor.get();
            tor->setRoute([this, torPtr, rack, perRack, nAggr](const Packet& p,
                                                               Rng&) {
                assert(p.dst >= 0 && p.dst < cfg_.hostCount());
                if (p.dst / perRack == rack) return p.dst % perRack;
                uint64_t h = mix64((static_cast<uint64_t>(p.src) << 32) ^
                                   static_cast<uint64_t>(static_cast<uint32_t>(p.dst)));
                h = mix64(h ^ static_cast<uint64_t>(p.msg));
                int alive = 0;
                for (int a = 0; a < nAggr; a++) {
                    if (torPtr->port(perRack + a).linkUp()) alive++;
                }
                if (alive == 0) {
                    // Every uplink dead: nowhere to reroute; pick by hash
                    // (the packet dies on the downed port like spray would).
                    return perRack + static_cast<int>(h % static_cast<uint64_t>(nAggr));
                }
                int pick = static_cast<int>(h % static_cast<uint64_t>(alive));
                for (int a = 0; a < nAggr; a++) {
                    if (!torPtr->port(perRack + a).linkUp()) continue;
                    if (pick-- == 0) return perRack + a;
                }
                assert(false);
                return perRack;
            });
        } else {
            tor->setRoute([this, rack, perRack, nAggr](const Packet& p, Rng& rng) {
                assert(p.dst >= 0 && p.dst < cfg_.hostCount());
                if (p.dst / perRack == rack) return p.dst % perRack;
                // Per-packet spraying across the uplinks (§2.2).
                return perRack + static_cast<int>(rng.below(nAggr));
            });
        }
        tors_.push_back(std::move(tor));
    }

    // Aggr ports: one per rack, feeding that rack's TOR.
    for (int a = 0; a < nAggr; a++) {
        for (int r = 0; r < cfg_.racks; r++) {
            aggrs_[a]->addPort(cfg_.coreLink, makeQdisc(), tors_[r].get());
        }
        aggrs_[a]->setRoute([perRack](const Packet& p, Rng&) {
            return p.dst / perRack;
        });
    }

    // Host NICs feed their TOR.
    for (HostId h = 0; h < nHosts; h++) {
        hosts_[h]->nic().connectTo(tors_[h / perRack].get());
    }

    // Canonical link ids, assigned in topology order: NICs take [0, hosts),
    // then TOR ports rack-by-rack, then aggr ports. A pure function of the
    // config, so transit tie-breaks agree across shard counts.
    int32_t nextLink = nHosts;
    for (HostId h = 0; h < nHosts; h++) hosts_[h]->nic().setLinkId(h);
    for (auto& tor : tors_) {
        for (size_t i = 0; i < tor->portCount(); i++) {
            tor->port(static_cast<int>(i)).setLinkId(nextLink++);
        }
    }
    for (auto& aggr : aggrs_) {
        for (size_t i = 0; i < aggr->portCount(); i++) {
            aggr->port(static_cast<int>(i)).setLinkId(nextLink++);
        }
    }

    // Cross-shard links (always TOR<->aggr: host<->TOR is intra-shard by
    // the rack partition) park completed packets in per-(src,dst) outboxes.
    if (nShards > 1) {
        xshard_.assign(nShards,
                       std::vector<std::vector<RemoteEvent>>(nShards));
        for (int r = 0; r < cfg_.racks; r++) {
            const int rs = shardOfRack(r);
            for (int a = 0; a < nAggr; a++) {
                const int as = a % nShards;
                if (rs == as) continue;
                auto* up = &xshard_[rs][as];
                Switch* aggr = aggrs_[a].get();
                tors_[r]->port(perRack + a).setRemoteDeliver(
                    [up, aggr](Time at, Packet&& p) {
                        up->push_back(RemoteEvent{at, aggr, std::move(p)});
                    });
                auto* down = &xshard_[as][rs];
                Switch* tor = tors_[r].get();
                aggrs_[a]->port(r).setRemoteDeliver(
                    [down, tor](Time at, Packet&& p) {
                        down->push_back(RemoteEvent{at, tor, std::move(p)});
                    });
            }
        }
    }

    // Transports last: they may inspect timings via their HostServices.
    for (HostId h = 0; h < nHosts; h++) {
        hosts_[h]->setTransport(makeTransport(*hosts_[h]));
    }
}

void Network::sendMessage(Message m) {
    assert(m.src >= 0 && m.src < hostCount());
    assert(m.dst >= 0 && m.dst < hostCount());
    assert(m.src != m.dst);
    m.created = loopFor(m.src).now();
    hosts_[m.src]->transport().sendMessage(m);
}

void Network::setDeliveryCallback(Transport::DeliveryCallback cb) {
    for (auto& h : hosts_) h->transport().setDeliveryCallback(cb);
}

void Network::drainInboxes(int shard) {
    for (int s = 0; s < shardCount(); s++) {
        auto& box = xshard_[s][shard];
        for (RemoteEvent& ev : box) {
            ev.dst->injectArrival(ev.arrival, std::move(ev.pkt));
        }
        box.clear();
    }
}

size_t Network::pendingRemotePackets() const {
    size_t n = 0;
    for (const auto& row : xshard_) {
        for (const auto& box : row) n += box.size();
    }
    return n;
}

EgressPort& Network::downlink(HostId h) {
    return tors_[rackOf(h)]->port(h % cfg_.hostsPerRack);
}

std::vector<const EgressPort*> Network::torUplinkPorts() const {
    std::vector<const EgressPort*> out;
    for (const auto& tor : tors_) {
        for (size_t i = cfg_.hostsPerRack; i < tor->portCount(); i++) {
            out.push_back(&tor->port(static_cast<int>(i)));
        }
    }
    return out;
}

std::vector<const EgressPort*> Network::aggrDownlinkPorts() const {
    std::vector<const EgressPort*> out;
    for (const auto& aggr : aggrs_) {
        for (size_t i = 0; i < aggr->portCount(); i++) {
            out.push_back(&aggr->port(static_cast<int>(i)));
        }
    }
    return out;
}

std::vector<const EgressPort*> Network::torDownlinkPorts() const {
    std::vector<const EgressPort*> out;
    for (const auto& tor : tors_) {
        for (int i = 0; i < cfg_.hostsPerRack; i++) out.push_back(&tor->port(i));
    }
    return out;
}

}  // namespace homa
