#include "sim/network.h"

#include <cassert>

namespace homa {

std::unique_ptr<Qdisc> Network::makeQdisc() const {
    if (cfg_.switchQdisc) return cfg_.switchQdisc();
    return std::make_unique<StrictPriorityQdisc>();
}

Network::Network(NetworkConfig cfg, const TransportFactory& makeTransport)
    : cfg_(cfg), timings_(NetworkTimings::compute(cfg)), rng_(cfg.seed) {
    const int nHosts = cfg_.hostCount();
    const int perRack = cfg_.hostsPerRack;
    const bool multiRack = !cfg_.singleRack();
    const int nAggr = multiRack ? cfg_.aggrSwitches : 0;

    // Hosts first (switch downlinks need them as sinks).
    hosts_.reserve(nHosts);
    for (HostId h = 0; h < nHosts; h++) {
        hosts_.push_back(std::make_unique<Host>(loop_, h, cfg_.hostLink,
                                                cfg_.softwareDelay, rng_.fork()));
    }

    // Aggregation switches.
    for (int a = 0; a < nAggr; a++) {
        aggrs_.push_back(std::make_unique<Switch>(
            loop_, "aggr" + std::to_string(a), cfg_.switchDelay, rng_.fork()));
    }

    // TORs: ports [0, perRack) are host downlinks, [perRack, perRack+nAggr)
    // are uplinks.
    for (int r = 0; r < cfg_.racks; r++) {
        auto tor = std::make_unique<Switch>(loop_, "tor" + std::to_string(r),
                                            cfg_.switchDelay, rng_.fork());
        for (int i = 0; i < perRack; i++) {
            tor->addPort(cfg_.hostLink, makeQdisc(), hosts_[r * perRack + i].get());
        }
        for (int a = 0; a < nAggr; a++) {
            tor->addPort(cfg_.coreLink, makeQdisc(), aggrs_[a].get());
        }
        const int rack = r;
        tor->setRoute([this, rack, perRack, nAggr](const Packet& p, Rng& rng) {
            assert(p.dst >= 0 && p.dst < cfg_.hostCount());
            if (p.dst / perRack == rack) return p.dst % perRack;
            // Per-packet spraying across the uplinks (§2.2).
            return perRack + static_cast<int>(rng.below(nAggr));
        });
        tors_.push_back(std::move(tor));
    }

    // Aggr ports: one per rack, feeding that rack's TOR.
    for (int a = 0; a < nAggr; a++) {
        for (int r = 0; r < cfg_.racks; r++) {
            aggrs_[a]->addPort(cfg_.coreLink, makeQdisc(), tors_[r].get());
        }
        aggrs_[a]->setRoute([perRack](const Packet& p, Rng&) {
            return p.dst / perRack;
        });
    }

    // Host NICs feed their TOR.
    for (HostId h = 0; h < nHosts; h++) {
        hosts_[h]->nic().connectTo(tors_[h / perRack].get());
    }

    // Transports last: they may inspect timings via their HostServices.
    for (HostId h = 0; h < nHosts; h++) {
        hosts_[h]->setTransport(makeTransport(*hosts_[h]));
    }
}

void Network::sendMessage(Message m) {
    assert(m.src >= 0 && m.src < hostCount());
    assert(m.dst >= 0 && m.dst < hostCount());
    assert(m.src != m.dst);
    m.created = loop_.now();
    hosts_[m.src]->transport().sendMessage(m);
}

void Network::setDeliveryCallback(Transport::DeliveryCallback cb) {
    for (auto& h : hosts_) h->transport().setDeliveryCallback(cb);
}

EgressPort& Network::downlink(HostId h) {
    return tors_[rackOf(h)]->port(h % cfg_.hostsPerRack);
}

std::vector<const EgressPort*> Network::torUplinkPorts() const {
    std::vector<const EgressPort*> out;
    for (const auto& tor : tors_) {
        for (size_t i = cfg_.hostsPerRack; i < tor->portCount(); i++) {
            out.push_back(&tor->port(static_cast<int>(i)));
        }
    }
    return out;
}

std::vector<const EgressPort*> Network::aggrDownlinkPorts() const {
    std::vector<const EgressPort*> out;
    for (const auto& aggr : aggrs_) {
        for (size_t i = 0; i < aggr->portCount(); i++) {
            out.push_back(&aggr->port(static_cast<int>(i)));
        }
    }
    return out;
}

std::vector<const EgressPort*> Network::torDownlinkPorts() const {
    std::vector<const EgressPort*> out;
    for (const auto& tor : tors_) {
        for (int i = 0; i < cfg_.hostsPerRack; i++) out.push_back(&tor->port(i));
    }
    return out;
}

}  // namespace homa
