#include "sim/network.h"

#include <algorithm>
#include <cassert>

namespace homa {

std::unique_ptr<Qdisc> Network::makeQdisc() const {
    if (cfg_.switchQdisc) return cfg_.switchQdisc();
    return std::make_unique<StrictPriorityQdisc>();
}

void Network::wireCrossShard(EgressPort& out, int srcShard, Switch* peer,
                             int dstShard) {
    if (srcShard == dstShard) return;
    auto* box = &xshard_[srcShard][dstShard];
    out.setRemoteDeliver([box, peer](Time at, Packet&& p) {
        box->push_back(RemoteEvent{at, peer, std::move(p)});
    });
}

Network::Network(NetworkConfig cfg, const TransportFactory& makeTransport,
                 int shards)
    : cfg_(cfg), timings_(NetworkTimings::compute(cfg)), rng_(cfg.seed) {
    assert(validateTopoConfig(cfg_).empty());
    const int nHosts = cfg_.hostCount();
    const int perRack = cfg_.hostsPerRack;
    const bool multiRack = !cfg_.singleRack();
    const int nAggr = cfg_.totalAggrs();
    // Uplinks per TOR == aggrs per pod (== all aggrs on two-tier trees,
    // where the single implicit pod spans every rack).
    const int aggrPerPod = multiRack ? cfg_.aggrSwitches : 0;
    const int nCore = cfg_.threeTier() ? cfg_.coreSwitches : 0;
    const int podRacks = cfg_.podRacks();
    const bool ecmp = cfg_.uplinkPolicy == UplinkPolicy::Ecmp;

    // The parallel engine's lookahead is the switch delay, so a zero delay
    // (like a single rack, where every path is host->TOR->host within one
    // shard anyway) degenerates to serial.
    const int nShards = (!multiRack || cfg_.switchDelay <= 0)
                            ? 1
                            : std::clamp(shards, 1, cfg_.racks);
    loops_.reserve(nShards);
    for (int s = 0; s < nShards; s++) {
        loops_.push_back(std::make_unique<EventLoop>());
    }
    perHostMsg_.assign(nHosts, 0);

    // Hosts first (switch downlinks need them as sinks). Construction stays
    // fully serial and in a fixed order, so the RNG fork sequence — and
    // thus every derived stream — is identical at any shard count. Core
    // switches fork after the TORs, so every coreSwitches == 0 stream is
    // byte-identical to the pre-core-layer wiring.
    hosts_.reserve(nHosts);
    for (HostId h = 0; h < nHosts; h++) {
        hosts_.push_back(std::make_unique<Host>(*loops_[shardOfHost(h)], h,
                                                cfg_.hostLink,
                                                cfg_.softwareDelay, rng_.fork()));
    }

    // Aggregation switches, dealt round-robin across shards. Global index
    // g covers pod g / aggrPerPod.
    for (int a = 0; a < nAggr; a++) {
        aggrs_.push_back(std::make_unique<Switch>(
            *loops_[a % nShards], "aggr" + std::to_string(a), cfg_.switchDelay,
            rng_.fork()));
    }

    // TORs: ports [0, perRack) are host downlinks, [perRack,
    // perRack+aggrPerPod) are uplinks to the rack's pod aggrs. A TOR lives
    // on its rack's shard.
    for (int r = 0; r < cfg_.racks; r++) {
        auto tor = std::make_unique<Switch>(*loops_[shardOfRack(r)],
                                            "tor" + std::to_string(r),
                                            cfg_.switchDelay, rng_.fork());
        const int podBase = cfg_.podOfRack(r) * aggrPerPod;
        for (int i = 0; i < perRack; i++) {
            tor->addPort(cfg_.hostLink, makeQdisc(), hosts_[r * perRack + i].get());
        }
        for (int a = 0; a < aggrPerPod; a++) {
            tor->addPort(cfg_.coreLink, makeQdisc(), aggrs_[podBase + a].get());
        }
        const int rack = r;
        if (ecmp) {
            // Deterministic per-message multi-path hash over the *alive*
            // uplinks: a dead aggr's traffic reroutes instead of
            // blackholing. Liveness is the TOR's own uplink port state —
            // shard-local by construction (fault events for a TOR's
            // uplinks are scheduled on the TOR's shard), so the choice is
            // a pure function of (packet, fault schedule, time) and
            // serial == parallel holds.
            Switch* torPtr = tor.get();
            tor->setRoute([this, torPtr, rack, perRack, aggrPerPod](
                              const Packet& p, Rng&) {
                assert(p.dst >= 0 && p.dst < cfg_.hostCount());
                if (p.dst / perRack == rack) return p.dst % perRack;
                uint64_t h = mix64((static_cast<uint64_t>(p.src) << 32) ^
                                   static_cast<uint64_t>(static_cast<uint32_t>(p.dst)));
                h = mix64(h ^ static_cast<uint64_t>(p.msg));
                int alive = 0;
                for (int a = 0; a < aggrPerPod; a++) {
                    if (torPtr->port(perRack + a).linkUp()) alive++;
                }
                if (alive == 0) {
                    // Every uplink dead: nowhere to reroute; pick by hash
                    // (the packet dies on the downed port like spray would).
                    return perRack + static_cast<int>(h % static_cast<uint64_t>(aggrPerPod));
                }
                int pick = static_cast<int>(h % static_cast<uint64_t>(alive));
                for (int a = 0; a < aggrPerPod; a++) {
                    if (!torPtr->port(perRack + a).linkUp()) continue;
                    if (pick-- == 0) return perRack + a;
                }
                assert(false);
                return perRack;
            });
        } else {
            tor->setRoute([this, rack, perRack, aggrPerPod](const Packet& p,
                                                            Rng& rng) {
                assert(p.dst >= 0 && p.dst < cfg_.hostCount());
                if (p.dst / perRack == rack) return p.dst % perRack;
                // Per-packet spraying across the uplinks (§2.2).
                return perRack + static_cast<int>(rng.below(aggrPerPod));
            });
        }
        tors_.push_back(std::move(tor));
    }

    // Core switches above the pods, dealt round-robin across shards like
    // the aggrs. Forked last so two-tier RNG streams are untouched.
    for (int c = 0; c < nCore; c++) {
        cores_.push_back(std::make_unique<Switch>(
            *loops_[c % nShards], "core" + std::to_string(c), cfg_.switchDelay,
            rng_.fork()));
    }

    // Aggr ports: [0, podRacks) feed the pod's TORs; [podRacks,
    // podRacks+nCore) are uplinks to the cores at the oversubscribed
    // bandwidth. In-pod packets route straight down with no RNG draw, so
    // the coreSwitches == 0 tree (one pod, zero uplinks) routes
    // byte-identically to the pre-core-layer code.
    for (int g = 0; g < nAggr; g++) {
        const int podStart = (g / std::max(aggrPerPod, 1)) * podRacks;
        for (int r = 0; r < podRacks; r++) {
            aggrs_[g]->addPort(cfg_.coreLink, makeQdisc(),
                               tors_[podStart + r].get());
        }
        for (int c = 0; c < nCore; c++) {
            aggrs_[g]->addPort(cfg_.aggrCoreLink(), makeQdisc(),
                               cores_[c].get());
        }
        if (ecmp && nCore > 0) {
            // Same alive-uplink hash as the TORs, salted per switch so the
            // TOR, aggr, and core stages of one message pick independently.
            Switch* aggrPtr = aggrs_[g].get();
            const uint64_t salt = kGoldenGamma * static_cast<uint64_t>(g + 1);
            aggrs_[g]->setRoute([aggrPtr, perRack, podStart, podRacks, nCore,
                                 salt](const Packet& p, Rng&) {
                const int dstRack = p.dst / perRack;
                if (dstRack >= podStart && dstRack < podStart + podRacks) {
                    return dstRack - podStart;
                }
                uint64_t h = mix64((static_cast<uint64_t>(p.src) << 32) ^
                                   static_cast<uint64_t>(static_cast<uint32_t>(p.dst)));
                h = mix64(h ^ static_cast<uint64_t>(p.msg));
                h = mix64(h ^ salt);
                int alive = 0;
                for (int c = 0; c < nCore; c++) {
                    if (aggrPtr->port(podRacks + c).linkUp()) alive++;
                }
                if (alive == 0) {
                    return podRacks + static_cast<int>(h % static_cast<uint64_t>(nCore));
                }
                int pick = static_cast<int>(h % static_cast<uint64_t>(alive));
                for (int c = 0; c < nCore; c++) {
                    if (!aggrPtr->port(podRacks + c).linkUp()) continue;
                    if (pick-- == 0) return podRacks + c;
                }
                assert(false);
                return podRacks;
            });
        } else {
            aggrs_[g]->setRoute([perRack, podStart, podRacks, nCore](
                                    const Packet& p, Rng& rng) {
                const int dstRack = p.dst / perRack;
                if (nCore == 0 ||
                    (dstRack >= podStart && dstRack < podStart + podRacks)) {
                    return dstRack - podStart;
                }
                // Cross-pod: spray across the core uplinks.
                return podRacks + static_cast<int>(rng.below(nCore));
            });
        }
    }

    // Core ports: one per aggr, indexed by global aggr id. A core routes
    // down into the destination pod, spreading across that pod's aggrs.
    for (int c = 0; c < nCore; c++) {
        for (int g = 0; g < nAggr; g++) {
            cores_[c]->addPort(cfg_.aggrCoreLink(), makeQdisc(),
                               aggrs_[g].get());
        }
        if (ecmp) {
            Switch* corePtr = cores_[c].get();
            const uint64_t salt =
                kGoldenGamma * static_cast<uint64_t>(nAggr + c + 1);
            cores_[c]->setRoute([this, corePtr, perRack, aggrPerPod, salt](
                                    const Packet& p, Rng&) {
                const int base =
                    cfg_.podOfRack(p.dst / perRack) * aggrPerPod;
                uint64_t h = mix64((static_cast<uint64_t>(p.src) << 32) ^
                                   static_cast<uint64_t>(static_cast<uint32_t>(p.dst)));
                h = mix64(h ^ static_cast<uint64_t>(p.msg));
                h = mix64(h ^ salt);
                int alive = 0;
                for (int a = 0; a < aggrPerPod; a++) {
                    if (corePtr->port(base + a).linkUp()) alive++;
                }
                if (alive == 0) {
                    return base + static_cast<int>(h % static_cast<uint64_t>(aggrPerPod));
                }
                int pick = static_cast<int>(h % static_cast<uint64_t>(alive));
                for (int a = 0; a < aggrPerPod; a++) {
                    if (!corePtr->port(base + a).linkUp()) continue;
                    if (pick-- == 0) return base + a;
                }
                assert(false);
                return base;
            });
        } else {
            cores_[c]->setRoute([this, perRack, aggrPerPod](const Packet& p,
                                                            Rng& rng) {
                const int base =
                    cfg_.podOfRack(p.dst / perRack) * aggrPerPod;
                return base + static_cast<int>(rng.below(aggrPerPod));
            });
        }
    }

    // Host NICs feed their TOR.
    for (HostId h = 0; h < nHosts; h++) {
        hosts_[h]->nic().connectTo(tors_[h / perRack].get());
    }

    // Canonical link ids, assigned in topology order: NICs take [0, hosts),
    // then TOR ports rack-by-rack, then aggr ports, then core ports. A pure
    // function of the config, so transit tie-breaks agree across shard
    // counts (and the coreSwitches == 0 assignment matches the
    // pre-core-layer ids exactly).
    int32_t nextLink = nHosts;
    for (HostId h = 0; h < nHosts; h++) hosts_[h]->nic().setLinkId(h);
    for (auto& tor : tors_) {
        for (size_t i = 0; i < tor->portCount(); i++) {
            tor->port(static_cast<int>(i)).setLinkId(nextLink++);
        }
    }
    for (auto& aggr : aggrs_) {
        for (size_t i = 0; i < aggr->portCount(); i++) {
            aggr->port(static_cast<int>(i)).setLinkId(nextLink++);
        }
    }
    for (auto& core : cores_) {
        for (size_t i = 0; i < core->portCount(); i++) {
            core->port(static_cast<int>(i)).setLinkId(nextLink++);
        }
    }

    // Cross-shard links (TOR<->aggr and aggr<->core: host<->TOR is
    // intra-shard by the rack partition) park completed packets in
    // per-(src,dst) outboxes.
    if (nShards > 1) {
        xshard_.assign(nShards,
                       std::vector<std::vector<RemoteEvent>>(nShards));
        for (int r = 0; r < cfg_.racks; r++) {
            const int rs = shardOfRack(r);
            const int podBase = cfg_.podOfRack(r) * aggrPerPod;
            for (int a = 0; a < aggrPerPod; a++) {
                const int g = podBase + a;
                const int as = g % nShards;
                wireCrossShard(tors_[r]->port(perRack + a), rs,
                               aggrs_[g].get(), as);
                wireCrossShard(aggrs_[g]->port(r - cfg_.podOfRack(r) * podRacks),
                               as, tors_[r].get(), rs);
            }
        }
        for (int g = 0; g < nAggr; g++) {
            const int as = g % nShards;
            for (int c = 0; c < nCore; c++) {
                const int cs = c % nShards;
                wireCrossShard(aggrs_[g]->port(podRacks + c), as,
                               cores_[c].get(), cs);
                wireCrossShard(cores_[c]->port(g), cs, aggrs_[g].get(), as);
            }
        }
    }

    // Transports last: they may inspect timings via their HostServices.
    for (HostId h = 0; h < nHosts; h++) {
        hosts_[h]->setTransport(makeTransport(*hosts_[h]));
    }
}

void Network::sendMessage(Message m) {
    assert(m.src >= 0 && m.src < hostCount());
    assert(m.dst >= 0 && m.dst < hostCount());
    assert(m.src != m.dst);
    m.created = loopFor(m.src).now();
    if (intercept_ && intercept_(m)) return;
    hosts_[m.src]->transport().sendMessage(m);
}

void Network::setDeliveryCallback(Transport::DeliveryCallback cb) {
    for (auto& h : hosts_) h->transport().setDeliveryCallback(cb);
}

void Network::drainInboxes(int shard) {
    for (int s = 0; s < shardCount(); s++) {
        auto& box = xshard_[s][shard];
        for (RemoteEvent& ev : box) {
            ev.dst->injectArrival(ev.arrival, std::move(ev.pkt));
        }
        box.clear();
    }
}

size_t Network::pendingRemotePackets() const {
    size_t n = 0;
    for (const auto& row : xshard_) {
        for (const auto& box : row) n += box.size();
    }
    return n;
}

EgressPort& Network::downlink(HostId h) {
    return tors_[rackOf(h)]->port(h % cfg_.hostsPerRack);
}

std::vector<const EgressPort*> Network::torUplinkPorts() const {
    std::vector<const EgressPort*> out;
    for (const auto& tor : tors_) {
        for (size_t i = cfg_.hostsPerRack; i < tor->portCount(); i++) {
            out.push_back(&tor->port(static_cast<int>(i)));
        }
    }
    return out;
}

std::vector<const EgressPort*> Network::aggrDownlinkPorts() const {
    std::vector<const EgressPort*> out;
    const int down = cfg_.podRacks();
    for (const auto& aggr : aggrs_) {
        for (int i = 0; i < down; i++) out.push_back(&aggr->port(i));
    }
    return out;
}

std::vector<const EgressPort*> Network::aggrUplinkPorts() const {
    std::vector<const EgressPort*> out;
    const int down = cfg_.podRacks();
    for (const auto& aggr : aggrs_) {
        for (size_t i = down; i < aggr->portCount(); i++) {
            out.push_back(&aggr->port(static_cast<int>(i)));
        }
    }
    return out;
}

std::vector<const EgressPort*> Network::coreDownlinkPorts() const {
    std::vector<const EgressPort*> out;
    for (const auto& core : cores_) {
        for (size_t i = 0; i < core->portCount(); i++) {
            out.push_back(&core->port(static_cast<int>(i)));
        }
    }
    return out;
}

std::vector<const EgressPort*> Network::torDownlinkPorts() const {
    std::vector<const EgressPort*> out;
    for (const auto& tor : tors_) {
        for (int i = 0; i < cfg_.hostsPerRack; i++) out.push_back(&tor->port(i));
    }
    return out;
}

}  // namespace homa
