// Topology configuration for the two clusters in the paper.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/qdisc.h"
#include "sim/time.h"

namespace homa {

/// TOR uplink choice for cross-rack packets.
enum class UplinkPolicy {
    Spray,  // per-packet random spraying across all uplinks (§2.2 default)
    Ecmp,   // deterministic per-message hash over the *alive* uplinks, so
            // a dead aggregation switch reroutes instead of blackholing
};

struct NetworkConfig {
    // Figure 11: 9 racks x 16 hosts, 4 aggregation switches. Setting
    // aggrSwitches = 0 (or racks = 1) produces the single-switch 16-host
    // cluster used for the implementation measurements (§5.1).
    int racks = 9;
    int hostsPerRack = 16;
    int aggrSwitches = 4;

    Bandwidth hostLink = k10Gbps;
    Bandwidth coreLink = k40Gbps;
    Duration switchDelay = nanoseconds(250);
    Duration softwareDelay = nanoseconds(1500);

    uint64_t seed = 1;

    /// Cross-rack uplink choice at the TORs. The hash-based Ecmp policy
    /// consults link liveness (fault injection), a pure function of the
    /// packet and the TOR-local fault schedule — deterministic at any
    /// shard count.
    UplinkPolicy uplinkPolicy = UplinkPolicy::Spray;

    /// Factory for switch egress queues; default is an unbounded
    /// strict-priority queue (commodity switch with 8 levels and buffers
    /// large enough that Homa never drops — validated by Table 1).
    std::function<std::unique_ptr<Qdisc>()> switchQdisc;

    int hostCount() const { return racks * hostsPerRack; }
    bool singleRack() const { return racks == 1 || aggrSwitches == 0; }

    /// Convenience presets matching the paper.
    static NetworkConfig fatTree144();      // §5.2 simulations
    static NetworkConfig singleRack16();    // §5.1 implementation cluster
};

/// Closed-form network constants derived from a config.
struct NetworkTimings {
    Duration fullPacketSerialization10g;  // host link, full data packet
    Duration rttSmallGrant;  // grant out + full data packet back, cross-rack
    int64_t rttBytes;        // bandwidth-delay product of that RTT

    static NetworkTimings compute(const NetworkConfig& cfg);
};

}  // namespace homa
