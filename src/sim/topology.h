// Topology configuration for the two clusters in the paper, plus the
// configurable three-tier oversubscribed fat-tree that extends them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "sim/qdisc.h"
#include "sim/time.h"

namespace homa {

/// TOR uplink choice for cross-rack packets.
enum class UplinkPolicy {
    Spray,  // per-packet random spraying across all uplinks (§2.2 default)
    Ecmp,   // deterministic per-message hash over the *alive* uplinks, so
            // a dead aggregation switch reroutes instead of blackholing
};

struct NetworkConfig {
    // Figure 11: 9 racks x 16 hosts, 4 aggregation switches. Setting
    // aggrSwitches = 0 (or racks = 1) produces the single-switch 16-host
    // cluster used for the implementation measurements (§5.1).
    int racks = 9;
    int hostsPerRack = 16;
    int aggrSwitches = 4;  // per pod when coreSwitches > 0, else total

    // Three-tier core layer. With coreSwitches > 0 the racks partition
    // into `podCount` contiguous pods; each pod gets its own set of
    // `aggrSwitches` aggregation switches, and every aggr connects to
    // every core switch. The paper's symmetric two-tier tree is the
    // coreSwitches == 0 default and is wired byte-identically to before
    // the core layer existed.
    int coreSwitches = 0;
    int podCount = 2;  // only meaningful when coreSwitches > 0

    // Aggregate-to-core capacity ratio: each aggr's total uplink
    // bandwidth is its total downlink bandwidth divided by this. 1.0 is
    // full bisection; > 1 makes cross-pod traffic contend on the core —
    // the regime where receiver-driven scheduling's "the core is never
    // the bottleneck" assumption actually gets stressed. Realized by
    // scaling the aggr<->core link bandwidth (see aggrCoreLink()).
    double oversubscription = 1.0;

    Bandwidth hostLink = k10Gbps;
    Bandwidth coreLink = k40Gbps;
    Duration switchDelay = nanoseconds(250);
    Duration softwareDelay = nanoseconds(1500);

    uint64_t seed = 1;

    /// Cross-rack uplink choice at the TORs (and, on three-tier
    /// topologies, at the aggr->core and core->aggr hops). The hash-based
    /// Ecmp policy consults link liveness (fault injection), a pure
    /// function of the packet and the switch-local fault schedule —
    /// deterministic at any shard count.
    UplinkPolicy uplinkPolicy = UplinkPolicy::Spray;

    /// Factory for switch egress queues; default is an unbounded
    /// strict-priority queue (commodity switch with 8 levels and buffers
    /// large enough that Homa never drops — validated by Table 1).
    std::function<std::unique_ptr<Qdisc>()> switchQdisc;

    int hostCount() const { return racks * hostsPerRack; }
    bool singleRack() const { return racks == 1 || aggrSwitches == 0; }
    bool threeTier() const { return !singleRack() && coreSwitches > 0; }

    /// Pod partition: 1 pod spanning every rack on two-tier topologies.
    int pods() const { return threeTier() ? podCount : 1; }
    int podRacks() const { return racks / pods(); }
    int podOfRack(int rack) const { return rack / podRacks(); }

    /// Aggregation switches across all pods (what Network instantiates).
    int totalAggrs() const {
        return singleRack() ? 0 : aggrSwitches * pods();
    }

    /// Bandwidth of each aggr<->core link, chosen so one aggr's total
    /// uplink capacity is its downlink capacity / oversubscription:
    /// psPerByte = coreLink.psPerByte * oversubscription * coreSwitches
    /// / podRacks (rounded, floored at 1). A pure integer function of the
    /// config, so serialization times — and thus results — are exact.
    Bandwidth aggrCoreLink() const;

    /// Convenience presets matching the paper.
    static NetworkConfig fatTree144();      // §5.2 simulations
    static NetworkConfig singleRack16();    // §5.1 implementation cluster
};

/// Structural validation (index ranges, pod divisibility, oversub > 0).
/// Returns "" when valid, else a human-readable reason.
std::string validateTopoConfig(const NetworkConfig& cfg);

/// Parses a topology spec body — "racks=8,hosts=4,aggr=2,core=2,
/// oversub=4,pods=2" — applying each key over the current values of
/// `out`, then validates the result (validateTopoConfig). Keys: racks,
/// hosts (per rack), aggr (per pod on three-tier), core, oversub, pods.
/// Returns false — leaving `out` untouched — on malformed text or an
/// invalid resulting topology, with a reason in *err (if given). This is
/// the grammar behind the scenario "topo:" modifier and the runner's
/// --topo flag.
bool parseTopoSpec(const std::string& body, NetworkConfig& out,
                   std::string* err = nullptr);

/// One-line human description, e.g. "144-host fat-tree" or
/// "64-host 3-tier fat-tree (2 pods x 4 racks x 8, 2 aggr/pod, 2 core,
/// oversub 4)".
std::string topologySummary(const NetworkConfig& cfg);

/// Closed-form network constants derived from a config.
struct NetworkTimings {
    Duration fullPacketSerialization10g;  // host link, full data packet
    Duration rttSmallGrant;  // grant out + full data packet back, worst-case
    int64_t rttBytes;        // bandwidth-delay product of that RTT

    static NetworkTimings compute(const NetworkConfig& cfg);
};

}  // namespace homa
