#include "sim/topology.h"

#include "sim/packet.h"

namespace homa {

NetworkConfig NetworkConfig::fatTree144() { return NetworkConfig{}; }

NetworkConfig NetworkConfig::singleRack16() {
    NetworkConfig cfg;
    cfg.racks = 1;
    cfg.hostsPerRack = 16;
    cfg.aggrSwitches = 0;
    return cfg;
}

NetworkTimings NetworkTimings::compute(const NetworkConfig& cfg) {
    const int64_t controlWire = kHeaderBytes + kFrameOverhead;
    const int64_t dataWire = kFullPacketWireBytes;

    // Worst-case path between two hosts: 2 host links + (cross-rack only)
    // 2 core links, with one switch delay per switch traversed.
    const int switches = cfg.singleRack() ? 1 : 3;
    auto pathTime = [&](int64_t wireBytes) {
        Duration t = 2 * cfg.hostLink.serialize(wireBytes);
        if (!cfg.singleRack()) t += 2 * cfg.coreLink.serialize(wireBytes);
        t += switches * cfg.switchDelay;
        return t;
    };

    NetworkTimings tm{};
    tm.fullPacketSerialization10g = cfg.hostLink.serialize(dataWire);
    // Full control loop: grant travels to the sender, the sender's software
    // processes it, a full data packet travels back, and the receiver's
    // software processes it before it can influence the next grant.
    tm.rttSmallGrant =
        pathTime(controlWire) + cfg.softwareDelay + pathTime(dataWire) +
        cfg.softwareDelay;
    tm.rttBytes = tm.rttSmallGrant / cfg.hostLink.psPerByte;
    return tm;
}

}  // namespace homa
