#include "sim/topology.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sim/packet.h"

namespace homa {

NetworkConfig NetworkConfig::fatTree144() { return NetworkConfig{}; }

NetworkConfig NetworkConfig::singleRack16() {
    NetworkConfig cfg;
    cfg.racks = 1;
    cfg.hostsPerRack = 16;
    cfg.aggrSwitches = 0;
    return cfg;
}

Bandwidth NetworkConfig::aggrCoreLink() const {
    if (!threeTier()) return coreLink;
    const double psPerByte = static_cast<double>(coreLink.psPerByte) *
                             oversubscription *
                             static_cast<double>(coreSwitches) /
                             static_cast<double>(podRacks());
    return Bandwidth{std::max<int64_t>(1, std::llround(psPerByte))};
}

std::string validateTopoConfig(const NetworkConfig& cfg) {
    if (cfg.racks < 1) return "racks must be >= 1";
    if (cfg.hostsPerRack < 1) return "hosts per rack must be >= 1";
    if (cfg.aggrSwitches < 0) return "aggr switch count must be >= 0";
    if (cfg.coreSwitches < 0) return "core switch count must be >= 0";
    if (cfg.oversubscription <= 0 || !std::isfinite(cfg.oversubscription)) {
        return "oversubscription must be a finite ratio > 0";
    }
    if (cfg.coreSwitches > 0 && cfg.singleRack()) {
        return "core switches need a multi-rack topology (racks >= 2 "
               "and aggr >= 1)";
    }
    if (cfg.threeTier()) {
        if (cfg.podCount < 1) return "pod count must be >= 1";
        if (cfg.podCount > cfg.racks) {
            return "pod count cannot exceed the rack count";
        }
        if (cfg.racks % cfg.podCount != 0) {
            return "racks must divide evenly into pods (racks=" +
                   std::to_string(cfg.racks) + ", pods=" +
                   std::to_string(cfg.podCount) + ")";
        }
    }
    return "";
}

namespace {

bool parseTopoInt(const std::string& v, int& out) {
    char* end = nullptr;
    const long n = std::strtol(v.c_str(), &end, 10);
    if (v.empty() || *end != '\0' || n < 0 || n > 1'000'000) return false;
    out = static_cast<int>(n);
    return true;
}

bool parseTopoDouble(const std::string& v, double& out) {
    char* end = nullptr;
    const double d = std::strtod(v.c_str(), &end);
    if (v.empty() || *end != '\0' || !std::isfinite(d)) return false;
    out = d;
    return true;
}

}  // namespace

bool parseTopoSpec(const std::string& body, NetworkConfig& out,
                   std::string* err) {
    auto fail = [err](const std::string& why) {
        if (err) *err = why;
        return false;
    };
    NetworkConfig cfg = out;
    if (body.empty()) return fail("empty topo spec");
    size_t pos = 0;
    while (pos <= body.size()) {
        const size_t comma = std::min(body.find(',', pos), body.size());
        const std::string pair = body.substr(pos, comma - pos);
        pos = comma + 1;
        const size_t eq = pair.find('=');
        if (eq == std::string::npos) {
            return fail(pair.empty() ? "empty topo key"
                                     : "topo key '" + pair +
                                           "' needs =<value>");
        }
        const std::string key = pair.substr(0, eq);
        const std::string val = pair.substr(eq + 1);
        bool ok;
        if (key == "racks") ok = parseTopoInt(val, cfg.racks);
        else if (key == "hosts") ok = parseTopoInt(val, cfg.hostsPerRack);
        else if (key == "aggr") ok = parseTopoInt(val, cfg.aggrSwitches);
        else if (key == "core") ok = parseTopoInt(val, cfg.coreSwitches);
        else if (key == "pods") ok = parseTopoInt(val, cfg.podCount);
        else if (key == "oversub") {
            ok = parseTopoDouble(val, cfg.oversubscription);
        } else {
            return fail("unknown topo key '" + key +
                        "' (known: racks, hosts, aggr, core, oversub, pods)");
        }
        if (!ok) return fail("bad topo value '" + val + "' for " + key);
        if (comma == body.size()) break;
    }
    const std::string verr = validateTopoConfig(cfg);
    if (!verr.empty()) return fail(verr);
    out = cfg;
    return true;
}

std::string topologySummary(const NetworkConfig& cfg) {
    char buf[160];
    if (cfg.singleRack()) {
        std::snprintf(buf, sizeof(buf), "%d-host rack", cfg.hostCount());
    } else if (!cfg.threeTier()) {
        std::snprintf(buf, sizeof(buf), "%d-host fat-tree", cfg.hostCount());
    } else {
        std::snprintf(buf, sizeof(buf),
                      "%d-host 3-tier fat-tree (%d pods x %d racks x %d, "
                      "%d aggr/pod, %d core, oversub %g)",
                      cfg.hostCount(), cfg.pods(), cfg.podRacks(),
                      cfg.hostsPerRack, cfg.aggrSwitches, cfg.coreSwitches,
                      cfg.oversubscription);
    }
    return buf;
}

NetworkTimings NetworkTimings::compute(const NetworkConfig& cfg) {
    const int64_t controlWire = kHeaderBytes + kFrameOverhead;
    const int64_t dataWire = kFullPacketWireBytes;

    // Worst-case path between two hosts: 2 host links + (cross-rack only)
    // 2 core links + (three-tier only) 2 aggr<->core links, with one
    // switch delay per switch traversed. The coreSwitches == 0 arithmetic
    // is byte-identical to the pre-core-layer computation.
    const int switches = cfg.singleRack() ? 1 : (cfg.threeTier() ? 5 : 3);
    auto pathTime = [&](int64_t wireBytes) {
        Duration t = 2 * cfg.hostLink.serialize(wireBytes);
        if (!cfg.singleRack()) t += 2 * cfg.coreLink.serialize(wireBytes);
        if (cfg.threeTier()) t += 2 * cfg.aggrCoreLink().serialize(wireBytes);
        t += switches * cfg.switchDelay;
        return t;
    };

    NetworkTimings tm{};
    tm.fullPacketSerialization10g = cfg.hostLink.serialize(dataWire);
    // Full control loop: grant travels to the sender, the sender's software
    // processes it, a full data packet travels back, and the receiver's
    // software processes it before it can influence the next grant.
    tm.rttSmallGrant =
        pathTime(controlWire) + cfg.softwareDelay + pathTime(dataWire) +
        cfg.softwareDelay;
    tm.rttBytes = tm.rttSmallGrant / cfg.hostLink.psPerByte;
    return tm;
}

}  // namespace homa
