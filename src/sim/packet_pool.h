// Packet slab + freelist, and the index ring that queues them.
//
// The simulator used to move Packets by value through per-qdisc
// std::deques, paying deque chunk allocation and ~140-byte element copies
// per hop. Queues now hold 4-byte handles into a PacketPool whose slots are
// recycled through a freelist: steady-state enqueue/dequeue allocates
// nothing, and the hot data stays in two tight arrays.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/packet.h"

namespace homa {

class PacketPool {
public:
    using Handle = uint32_t;
    static constexpr Handle kNone = UINT32_MAX;

    /// Copy `p` into a recycled (or new) slot.
    Handle acquire(const Packet& p) {
        if (freeHead_ != kNone) {
            const Handle h = freeHead_;
            freeHead_ = nextFree_[h];
            slots_[h] = p;
            return h;
        }
        slots_.push_back(p);
        nextFree_.push_back(kNone);
        return static_cast<Handle>(slots_.size() - 1);
    }

    /// Move the packet out and recycle its slot.
    Packet release(Handle h) {
        Packet p = std::move(slots_[h]);
        nextFree_[h] = freeHead_;
        freeHead_ = h;
        return p;
    }

    Packet& at(Handle h) { return slots_[h]; }
    const Packet& at(Handle h) const { return slots_[h]; }

    size_t capacity() const { return slots_.size(); }

private:
    std::vector<Packet> slots_;
    std::vector<Handle> nextFree_;
    Handle freeHead_ = kNone;
};

/// FIFO of pool handles on a power-of-two ring buffer; grows on demand and
/// never shrinks, so a warmed-up queue performs no allocation.
class IndexRing {
public:
    bool empty() const { return count_ == 0; }
    size_t size() const { return count_; }

    void push_back(PacketPool::Handle h) {
        if (count_ == buf_.size()) grow();
        buf_[(head_ + count_) & (buf_.size() - 1)] = h;
        count_++;
    }

    PacketPool::Handle front() const {
        assert(count_ > 0);
        return buf_[head_];
    }

    PacketPool::Handle pop_front() {
        assert(count_ > 0);
        const PacketPool::Handle h = buf_[head_];
        head_ = (head_ + 1) & (buf_.size() - 1);
        count_--;
        return h;
    }

private:
    void grow() {
        const size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
        std::vector<PacketPool::Handle> next(cap);
        for (size_t i = 0; i < count_; i++) {
            next[i] = buf_[(head_ + i) & (buf_.size() - 1)];
        }
        buf_ = std::move(next);
        head_ = 0;
    }

    std::vector<PacketPool::Handle> buf_;
    size_t head_ = 0;
    size_t count_ = 0;
};

}  // namespace homa
