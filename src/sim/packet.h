// The simulated packet.
//
// One struct serves every protocol in the repository. The simulator moves
// packets by value; they carry sizes and metadata, not payload bytes (timing
// depends only on sizes). The on-the-wire byte format lives in src/wire and
// is exercised by its own tests and examples.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace homa {

using HostId = int32_t;
using MsgId = uint64_t;

constexpr HostId kNoHost = -1;

/// Number of in-network priority levels (per the paper: modern switches
/// support 8 queues per port). Priority 0 is lowest, 7 highest.
constexpr int kPriorityLevels = 8;
constexpr int kHighestPriority = kPriorityLevels - 1;

/// Maximum application payload per DATA packet. The simulations in the
/// paper use 1442-byte full packets (ns-2 heritage); keep that so W5's
/// full-packet quantization matches the paper's x-axis ticks.
constexpr int kMaxPayload = 1442;

/// Transport+IP+Ethernet header bytes carried by every packet.
constexpr int kHeaderBytes = 58;

/// Extra per-frame wire overhead: preamble (8) + inter-packet gap (12) +
/// frame check sequence (4).
constexpr int kFrameOverhead = 24;

/// Bytes on the wire for a full-size data packet.
constexpr int kFullPacketWireBytes = kMaxPayload + kHeaderBytes + kFrameOverhead;

enum class PacketType : uint8_t {
    Data,     // a range of message bytes (all protocols)
    Grant,    // Homa/Basic: permits bytes up to `grantOffset` at `priority`
    Resend,   // Homa: receiver asks for [offset, offset+length)
    Busy,     // Homa: sender defers a RESEND
    Token,    // pHost: permits one packet
    Pull,     // NDP: permits one packet
    Nack,     // NDP: header of a trimmed packet, bounced to the sender
    Ack,      // streaming/pFabric bookkeeping
    Rts,      // pHost request-to-send (rides in first unscheduled packet too)
};

/// Packet flags (bitmask).
enum PacketFlag : uint16_t {
    kFlagRetransmit = 1 << 0,   // resent data
    kFlagTrimmed = 1 << 1,      // NDP: payload removed in-network
    kFlagIncastMark = 1 << 2,   // Homa: RPC flagged for incast response limits
    kFlagEcn = 1 << 3,          // PIAS/DCTCP: congestion experienced
    kFlagRequest = 1 << 4,      // RPC request (vs response) message
    kFlagLast = 1 << 5,         // last packet of its message
};

struct Packet {
    HostId src = kNoHost;
    HostId dst = kNoHost;
    PacketType type = PacketType::Data;
    uint8_t priority = 0;            // discrete in-network priority (0..7)
    uint16_t flags = 0;

    MsgId msg = 0;                   // message / RPC identifier
    uint32_t offset = 0;             // data: first byte; resend: range start
    uint32_t length = 0;             // data payload bytes; resend: range len
    uint32_t messageLength = 0;      // total message length

    // Grant/Token/Pull fields.
    uint32_t grantOffset = 0;        // Homa/Basic: may send up to this
    uint8_t grantPriority = 0;       // Homa: priority for the granted bytes

    // pFabric's fine-grained priority: bytes remaining in the message when
    // this packet was sent. Smaller = more urgent.
    uint32_t remaining = 0;

    // Streaming transports: connection/stream identifier (unique per
    // sending host).
    uint32_t stream = 0;

    // --- Instrumentation (not on the wire) -------------------------------
    Time created = -1;               // message creation time; -1 = unset
    Duration queueingDelay = 0;      // waited behind >= priority packets
    Duration preemptionLag = 0;      // waited behind a < priority packet
    uint32_t hops = 0;
    // Transient per-hop accounting, reset by each port.
    Time hopEnqueuedAt = 0;
    Duration hopPreemptLagBound = 0;
    // Canonical id of the link this packet most recently arrived on,
    // stamped by the transmitting port (-1 until the first hop). Switches
    // order their internal transit queue by (arrival time, arrivalLink), so
    // routing order is a pure function of packet arrivals rather than of
    // event scheduling order — the parallel engine's byte-identity with the
    // serial engine leans on this.
    int32_t arrivalLink = -1;

    bool isControl() const { return type != PacketType::Data; }
    bool hasFlag(PacketFlag f) const { return (flags & f) != 0; }
    void setFlag(PacketFlag f) { flags |= f; }

    /// Bytes this packet occupies on a link, including framing. Trimmed
    /// packets lose their payload but keep header + framing.
    int64_t wireBytes() const;

    std::string summary() const;  // compact human-readable form for logs
};

const char* packetTypeName(PacketType t);

}  // namespace homa
