// Deterministic fault injection: link flaps, permanent switch death, and
// degraded links, scheduled on the existing event loop(s).
//
// A `FaultSpec` names one fault (parsed from the scenario-spec grammar, see
// docs/SCENARIOS.md); a `FaultTimeline` expands a list of specs into
// primitive link/switch actions and installs them on the owning shard's
// EventLoop *before* the run starts. Setup-scheduled events sort before any
// runtime event at the same instant on their loop (the EventLoop ordering
// contract), and every action touches only state owned by its own shard —
// a dead aggr is represented both by the aggr switch dying on its shard
// *and* by each TOR's uplink port going down on the TOR's shard — so the
// parallel engine needs no cross-shard reads and serial == parallel stays
// byte-identical.
//
// Drop accounting (the conservation law tests/test_fault.cc checks):
//  * wireDrops        — a packet mid-serialization when its link went down
//                       (counted at the port, summed over NICs too)
//  * probDrops        — degraded-link probabilistic loss, drawn at
//                       serialization end from a per-port RNG seeded by
//                       (fault seed, canonical link id)
//  * deadIngressDrops — arrivals discarded by a dead switch
//  * flushDrops       — packets queued or in transit inside a switch at
//                       the instant it died
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.h"
#include "sim/time.h"
#include "sim/topology.h"

namespace homa {

class Network;
class EgressPort;
class Switch;

enum class FaultKind {
    Flap,       // link(s) down at `at`, back up `duration` later
    Kill,       // permanent switch (or host-link) death at `at`
    Degrade,    // reduced bandwidth / extra delay / probabilistic drop
    FlapTrain,  // seed-derived random train of flaps (exponential gaps)
};

enum class FaultTargetKind {
    Host,  // the host's NIC and its TOR downlink
    Tor,   // every link touching the TOR (downlinks, uplinks, NICs, aggrs)
    Aggr,  // every TOR<->aggr (and, three-tier, aggr<->core) link of one
           // aggregation switch, addressed by global index across pods
    Core,  // every aggr<->core link of one core switch (three-tier only)
};

const char* faultKindName(FaultKind k);
const char* faultTargetKindName(FaultTargetKind k);

struct FaultSpec {
    FaultKind kind = FaultKind::Flap;
    FaultTargetKind targetKind = FaultTargetKind::Aggr;
    int targetIndex = 0;

    Duration at = 0;        // when the fault starts
    Duration duration = 0;  // Flap: down window; Degrade: 0 = rest of run;
                            // FlapTrain: *mean* down window (exponential)

    // Degrade knobs (at least one must be set).
    double bwFactor = 1.0;   // serialization slowed by 1/bwFactor, in (0,1]
    Duration extraDelay = 0; // added to every packet's link occupancy
    double dropProb = 0.0;   // per-packet loss at serialization end, [0,1)

    // FlapTrain knobs.
    int count = 0;    // number of flaps in the train
    Duration gap = 0; // mean gap between successive flap starts (exponential)
};

/// Parses the body of a fault spec segment — everything after "fault:" —
/// e.g. "flap=aggr0,at=50ms,for=10ms", "kill=aggr1,at=30ms",
/// "degrade=host5,at=1ms,for=5ms,bw=0.25,delay=10us,drop=0.01",
/// "flap-train=aggr2,at=10ms,count=5,gap=2ms,for=500us".
/// Durations take a unit suffix (ns/us/ms/s). Returns false on malformed
/// or contradictory keys, with a human-readable reason in *err (if given).
bool parseFaultSpec(const std::string& body, FaultSpec& out,
                    std::string* err = nullptr);

/// Validates a parsed spec against a topology (index ranges; aggr targets
/// need a multi-rack fat tree; core targets need a three-tier one).
/// Returns "" if valid, else a reason naming the valid target range for
/// the tier (e.g. "... this topology has 4 aggregation switches (valid:
/// aggr0..aggr3)").
std::string validateFaultSpec(const FaultSpec& spec, const NetworkConfig& cfg);

/// Canonical round-trip of a spec back to its "fault:..." body.
std::string faultSpecToString(const FaultSpec& spec);

/// Fault event counts (pure function of the expanded schedule) plus drops
/// by cause (gathered from port/switch counters after a run).
struct FaultStats {
    uint64_t linkDownEvents = 0;  // flap windows scheduled (train elements too)
    uint64_t linkUpEvents = 0;
    uint64_t switchKills = 0;
    uint64_t degradeEvents = 0;

    uint64_t wireDrops = 0;
    uint64_t probDrops = 0;
    uint64_t deadIngressDrops = 0;
    uint64_t flushDrops = 0;

    uint64_t totalDrops() const {
        return wireDrops + probDrops + deadIngressDrops + flushDrops;
    }
};

/// Seed for flap-train expansion and per-port drop RNGs, derived from the
/// traffic seed so a fault scenario is reproducible from one number.
uint64_t deriveFaultSeed(uint64_t trafficSeed);

/// Expands fault specs into primitive actions and installs them on the
/// network's event loops. Construct and schedule() after the Network is
/// built but before the run starts; keep alive until collect().
class FaultTimeline {
public:
    /// Specs must already satisfy validateFaultSpec for net's config
    /// (schedule() aborts loudly otherwise).
    FaultTimeline(Network& net, std::vector<FaultSpec> specs, uint64_t seed);

    /// Install every primitive action on its owning shard's loop. Call
    /// exactly once, before the run.
    void schedule();

    /// Event counts from the expanded schedule (valid after schedule()).
    const FaultStats& events() const { return events_; }

    /// Event counts plus drops-by-cause gathered from every port and
    /// switch; call after the run.
    FaultStats collect() const;

private:
    template <typename Fn>
    void forEachTargetPort(const FaultSpec& spec, Fn&& fn);
    template <typename Fn>
    void forEachIngressPort(const FaultSpec& spec, Fn&& fn);
    Switch* switchOfTarget(const FaultSpec& spec);

    void scheduleFlap(const FaultSpec& spec, Duration at, Duration down);
    void scheduleKill(const FaultSpec& spec);
    void scheduleDegrade(const FaultSpec& spec);

    Network& net_;
    std::vector<FaultSpec> specs_;
    uint64_t seed_;
    FaultStats events_;
    bool scheduled_ = false;
};

}  // namespace homa
