#include "sim/parallel.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <thread>
#include <vector>

namespace homa {
namespace {

// Sense-reversing spin barrier. A window is ~L = 250 ns of simulated time,
// so a run crosses hundreds of thousands of barriers; parking threads in a
// futex (std::barrier) would cost microseconds per crossing and erase the
// speedup. Spinning on an atomic phase counter costs ~0.1 us. The last
// arriver runs `completion` before releasing the others, which makes the
// completion's writes visible to every shard (release/acquire on phase_).
class SpinBarrier {
public:
    explicit SpinBarrier(int n) : n_(n) {}

    template <typename F>
    void arriveAndWait(F&& completion) {
        const uint64_t phase = phase_.load(std::memory_order_acquire);
        if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
            completion();
            count_.store(0, std::memory_order_relaxed);
            phase_.store(phase + 1, std::memory_order_release);
        } else {
            int spins = 0;
            while (phase_.load(std::memory_order_acquire) == phase) {
                if (++spins > 4096) {  // oversubscribed or sanitized: yield
                    std::this_thread::yield();
                    spins = 0;
                }
            }
        }
    }

private:
    const int n_;
    std::atomic<int> count_{0};
    std::atomic<uint64_t> phase_{0};
};

struct WindowState {
    // Written only by the barrier completion (one thread, between
    // barriers); reads are ordered by the barrier itself.
    Time windowStart = 0;
    std::vector<Time> nextLocal;
};

void shardWorker(Network& net, int me, Time end, Duration lookahead,
                 SpinBarrier& barrier, WindowState& st) {
    EventLoop& loop = net.shardLoop(me);
    const int shards = net.shardCount();
    for (;;) {
        const Time w = st.windowStart;
        if (w >= end) break;
        const Time wEnd = std::min<Time>(w + lookahead, end);
        loop.runBefore(wEnd);
        barrier.arriveAndWait([] {});
        net.drainInboxes(me);
        st.nextLocal[me] = loop.nextEventTime();
        barrier.arriveAndWait([&st, wEnd, end, shards] {
            Time next = EventLoop::kNoEvent;
            for (int s = 0; s < shards; s++) {
                next = std::min(next, st.nextLocal[s]);
            }
            // Skip straight to the earliest pending event; never backwards,
            // never past the end.
            st.windowStart = std::max(wEnd, std::min(next, end));
        });
    }
    // Events at exactly `end` run with the clock at `end`, mirroring the
    // serial engine's runUntil(end). Any cross-shard packet they complete
    // could only matter at end + lookahead, which is past the run.
    loop.runUntil(end);
}

}  // namespace

void runNetworkUntil(Network& net, Time end) {
    const int shards = net.shardCount();
    if (shards <= 1) {
        net.loop().runUntil(end);
        return;
    }
    const Duration lookahead = net.config().switchDelay;
    assert(lookahead > 0);  // Network guarantees this when sharded

    SpinBarrier barrier(shards);
    WindowState st;
    st.nextLocal.assign(shards, EventLoop::kNoEvent);

    std::vector<std::thread> workers;
    workers.reserve(shards - 1);
    for (int s = 1; s < shards; s++) {
        workers.emplace_back([&net, s, end, lookahead, &barrier, &st] {
            shardWorker(net, s, end, lookahead, barrier, st);
        });
    }
    shardWorker(net, 0, end, lookahead, barrier, st);
    for (std::thread& t : workers) t.join();
}

}  // namespace homa
