// Discrete-event execution core.
//
// A binary-heap calendar of (time, sequence) ordered callbacks. Sequence
// numbers break ties so that two events scheduled for the same instant run
// in scheduling order, which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace homa {

class EventLoop {
public:
    using Callback = std::function<void()>;

    /// Current simulated time.
    Time now() const { return now_; }

    /// Schedule `fn` to run at absolute time `t` (clamped to now()).
    void at(Time t, Callback fn);

    /// Schedule `fn` to run `d` after now().
    void after(Duration d, Callback fn) { at(now_ + d, std::move(fn)); }

    /// Run the earliest pending event; returns false if none are pending.
    bool runOne();

    /// Run events until the queue is empty or `limit` events have run.
    /// Returns the number of events executed.
    uint64_t run(uint64_t limit = UINT64_MAX);

    /// Run all events with time <= t, then advance the clock to t.
    void runUntil(Time t);

    size_t pendingEvents() const { return heap_.size(); }
    uint64_t executedEvents() const { return executed_; }

private:
    struct Event {
        Time time;
        uint64_t seq;
        Callback fn;
        bool operator>(const Event& o) const {
            return time != o.time ? time > o.time : seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
    Time now_ = 0;
    uint64_t nextSeq_ = 0;
    uint64_t executed_ = 0;
};

/// A cancellable, re-armable one-shot timer built on EventLoop.
///
/// Cancellation is by generation counter: stale heap entries fire but see a
/// newer generation and do nothing. This keeps EventLoop's heap simple.
class Timer {
public:
    Timer(EventLoop& loop, std::function<void()> fn)
        : loop_(loop), fn_(std::move(fn)), state_(std::make_shared<State>()) {}

    ~Timer() { cancel(); }
    Timer(const Timer&) = delete;
    Timer& operator=(const Timer&) = delete;

    /// (Re)arm the timer to fire `d` from now; cancels any prior arming.
    void schedule(Duration d);

    void cancel() {
        state_->generation++;
        armed_ = false;
    }

    bool armed() const { return armed_; }
    Time deadline() const { return deadline_; }

private:
    struct State {
        uint64_t generation = 0;
    };

    EventLoop& loop_;
    std::function<void()> fn_;
    std::shared_ptr<State> state_;
    bool armed_ = false;
    Time deadline_ = 0;
};

}  // namespace homa
