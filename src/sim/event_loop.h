// Discrete-event execution core.
//
// A binary-heap calendar of (time, sequence) ordered events. The heap holds
// small POD entries; the callables live in a slab of fixed-size slots that
// are recycled through a freelist, so steady-state scheduling performs no
// heap allocation (callables larger than a slot fall back to one boxed
// allocation each; everything in the hot paths fits inline).
//
// Ordering contract: events fire in (time, scheduling order). Scheduling an
// event in the past (t < now()) clamps it to now() *at scheduling time*, so
// it joins the back of the current instant's FIFO — clamping never reorders
// events that execute at the same instant relative to their scheduling
// order, and never preempts an event already pending at now().
//
// Cancellation is by handle: at()/after() return an EventHandle that
// cancel() invalidates in O(1). The heap entry becomes a ghost that is
// discarded lazily when it reaches the top; its slot is recycled
// immediately (a generation counter makes stale handles and ghost heap
// entries detectable). When ghosts outnumber live events the heap is
// compacted in one pass, so pathological cancel/re-arm churn (timers) stays
// O(log n) amortized with bounded memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace homa {

class EventLoop {
public:
    using Callback = std::function<void()>;

    /// Identifies a scheduled event for cancellation. Default-constructed
    /// handles are empty; handles become stale (harmless) once the event
    /// runs or is cancelled.
    struct EventHandle {
        uint32_t slot = kNone;
        uint32_t gen = 0;
        explicit operator bool() const { return slot != kNone; }
        static constexpr uint32_t kNone = UINT32_MAX;
    };

    EventLoop() = default;
    EventLoop(const EventLoop&) = delete;
    EventLoop& operator=(const EventLoop&) = delete;
    ~EventLoop();

    /// Current simulated time.
    Time now() const { return now_; }

    /// Schedule `fn` to run at absolute time `t` (clamped to now(); see the
    /// ordering contract above).
    template <typename F>
    EventHandle at(Time t, F&& fn) {
        if (t < now_) t = now_;
        const uint32_t idx = allocSlot();
        Slot& s = slots_[idx];
        using D = std::decay_t<F>;
        if constexpr (fitsInline<D>()) {
            ::new (static_cast<void*>(s.storage)) D(std::forward<F>(fn));
            s.ops = &InlineOps<D>::ops;
        } else {
            ::new (static_cast<void*>(s.storage)) D*(new D(std::forward<F>(fn)));
            s.ops = &BoxedOps<D>::ops;
        }
        heapPush(HeapEntry{t, nextSeq_++, idx, s.gen});
        live_++;
        return EventHandle{idx, s.gen};
    }

    /// Schedule `fn` to run `d` after now().
    template <typename F>
    EventHandle after(Duration d, F&& fn) {
        return at(now_ + d, std::forward<F>(fn));
    }

    /// Cancel a pending event. Returns true if it was still pending (it
    /// will not run); false for empty, stale, or already-run handles.
    bool cancel(EventHandle h);

    /// True while the referenced event is still pending.
    bool pending(EventHandle h) const {
        return h.slot < slots_.size() && slots_[h.slot].gen == h.gen &&
               slots_[h.slot].ops != nullptr;
    }

    /// Run the earliest pending event; returns false if none are pending.
    bool runOne();

    /// Run events until the queue is empty or `limit` events have run.
    /// Returns the number of events executed.
    uint64_t run(uint64_t limit = UINT64_MAX);

    /// Run all events with time <= t, then advance the clock to t.
    void runUntil(Time t);

    /// Run all events with time strictly < t, then advance the clock to t.
    /// The parallel engine executes one lookahead window [now, t) per call;
    /// events at exactly t belong to the next window, so a window boundary
    /// never splits the FIFO of a single instant across windows.
    void runBefore(Time t);

    /// Sentinel returned by nextEventTime() when no events are pending.
    static constexpr Time kNoEvent = INT64_MAX;

    /// Earliest pending event time, or kNoEvent. Non-const: pops cancelled
    /// ghosts off the heap top so the answer reflects live events only.
    Time nextEventTime();

    /// Pending (live, uncancelled) events.
    size_t pendingEvents() const { return live_; }
    uint64_t executedEvents() const { return executed_; }

    /// Capacity counters, exposed for tests and the substrate bench.
    size_t slabSlots() const { return slots_.size(); }

private:
    // Per-callable-type operation table. `relocate` move-constructs into
    // dst and destroys src, letting runOne() evacuate the callable onto the
    // stack before invoking it (the callable may grow the slab).
    struct Ops {
        void (*relocate)(void* dst, void* src) noexcept;
        void (*invoke)(void* p);           // call, then destroy
        void (*destroy)(void* p) noexcept; // destroy without calling
    };

    static constexpr size_t kInlineBytes = 48;

    template <typename D>
    static constexpr bool fitsInline() {
        return sizeof(D) <= kInlineBytes &&
               alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

    template <typename D>
    struct InlineOps {
        static void relocate(void* dst, void* src) noexcept {
            D* s = static_cast<D*>(src);
            ::new (dst) D(std::move(*s));
            s->~D();
        }
        static void invoke(void* p) {
            D* f = static_cast<D*>(p);
            (*f)();
            f->~D();
        }
        static void destroy(void* p) noexcept { static_cast<D*>(p)->~D(); }
        static constexpr Ops ops{&relocate, &invoke, &destroy};
    };

    template <typename D>
    struct BoxedOps {  // storage holds a D*
        static void relocate(void* dst, void* src) noexcept {
            std::memcpy(dst, src, sizeof(D*));
        }
        static void invoke(void* p) {
            D* f;
            std::memcpy(&f, p, sizeof(D*));
            (*f)();
            delete f;
        }
        static void destroy(void* p) noexcept {
            D* f;
            std::memcpy(&f, p, sizeof(D*));
            delete f;
        }
        static constexpr Ops ops{&relocate, &invoke, &destroy};
    };

    struct Slot {
        alignas(alignof(std::max_align_t)) unsigned char storage[kInlineBytes];
        const Ops* ops = nullptr;  // nullptr = free
        uint32_t gen = 0;
        uint32_t nextFree = EventHandle::kNone;
    };

    struct HeapEntry {
        Time time;
        uint64_t seq;
        uint32_t slot;
        uint32_t gen;
        bool operator>(const HeapEntry& o) const {
            return time != o.time ? time > o.time : seq > o.seq;
        }
    };

    uint32_t allocSlot();
    void freeSlot(uint32_t idx);
    /// Pop cancelled ghosts off the heap top.
    void dropGhosts();
    /// Rebuild the heap without ghost entries.
    void compactHeap();
    void heapPush(HeapEntry e);
    HeapEntry heapPop();

    // Min-heap over (time, seq), maintained with the std heap algorithms so
    // it can be compacted in place.
    std::vector<HeapEntry> heap_;
    std::vector<Slot> slots_;
    uint32_t freeHead_ = EventHandle::kNone;
    size_t live_ = 0;
    size_t ghosts_ = 0;
    Time now_ = 0;
    uint64_t nextSeq_ = 0;
    uint64_t executed_ = 0;
};

/// A cancellable, re-armable one-shot timer built on EventLoop handles.
/// Each (re)arming costs one slab slot; the callback closure captures only
/// `this`, so arming never allocates.
class Timer {
public:
    Timer(EventLoop& loop, std::function<void()> fn)
        : loop_(loop), fn_(std::move(fn)) {}

    ~Timer() { cancel(); }
    Timer(const Timer&) = delete;
    Timer& operator=(const Timer&) = delete;

    /// (Re)arm the timer to fire `d` from now; cancels any prior arming.
    void schedule(Duration d) {
        loop_.cancel(handle_);
        deadline_ = loop_.now() + d;
        handle_ = loop_.at(deadline_, [this] {
            handle_ = EventLoop::EventHandle{};
            fn_();
        });
    }

    void cancel() {
        loop_.cancel(handle_);
        handle_ = EventLoop::EventHandle{};
    }

    bool armed() const { return static_cast<bool>(handle_); }
    Time deadline() const { return deadline_; }

private:
    EventLoop& loop_;
    std::function<void()> fn_;
    EventLoop::EventHandle handle_;
    Time deadline_ = 0;
};

}  // namespace homa
