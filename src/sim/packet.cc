#include "sim/packet.h"

#include <cstdio>

namespace homa {

int64_t Packet::wireBytes() const {
    int64_t payload = 0;
    if (type == PacketType::Data && !hasFlag(kFlagTrimmed)) payload = length;
    return payload + kHeaderBytes + kFrameOverhead;
}

const char* packetTypeName(PacketType t) {
    switch (t) {
        case PacketType::Data: return "DATA";
        case PacketType::Grant: return "GRANT";
        case PacketType::Resend: return "RESEND";
        case PacketType::Busy: return "BUSY";
        case PacketType::Token: return "TOKEN";
        case PacketType::Pull: return "PULL";
        case PacketType::Nack: return "NACK";
        case PacketType::Ack: return "ACK";
        case PacketType::Rts: return "RTS";
    }
    return "?";
}

std::string Packet::summary() const {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s msg=%llu %d->%d off=%u len=%u prio=%u",
                  packetTypeName(type), static_cast<unsigned long long>(msg),
                  src, dst, offset, length, priority);
    return buf;
}

}  // namespace homa
