#include "sim/event_loop.h"

#include <algorithm>
#include <functional>

namespace homa {

// Note: std::push_heap et al. with std::greater<> (via HeapEntry's
// operator>) maintain the min-(time, seq) heap the calendar needs, with
// heap_.front() the earliest event.

EventLoop::~EventLoop() {
    for (Slot& s : slots_) {
        if (s.ops != nullptr) s.ops->destroy(s.storage);
    }
}

uint32_t EventLoop::allocSlot() {
    if (freeHead_ != EventHandle::kNone) {
        const uint32_t idx = freeHead_;
        freeHead_ = slots_[idx].nextFree;
        return idx;
    }
    slots_.emplace_back();
    return static_cast<uint32_t>(slots_.size() - 1);
}

void EventLoop::freeSlot(uint32_t idx) {
    Slot& s = slots_[idx];
    s.ops = nullptr;
    s.gen++;  // invalidates outstanding handles and ghost heap entries
    s.nextFree = freeHead_;
    freeHead_ = idx;
}

void EventLoop::heapPush(HeapEntry e) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
}

EventLoop::HeapEntry EventLoop::heapPop() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    const HeapEntry e = heap_.back();
    heap_.pop_back();
    return e;
}

void EventLoop::compactHeap() {
    std::erase_if(heap_, [this](const HeapEntry& e) {
        return slots_[e.slot].gen != e.gen;
    });
    std::make_heap(heap_.begin(), heap_.end(), std::greater<>());
    ghosts_ = 0;
}

bool EventLoop::cancel(EventHandle h) {
    if (!pending(h)) return false;
    Slot& s = slots_[h.slot];
    s.ops->destroy(s.storage);
    freeSlot(h.slot);
    live_--;
    ghosts_++;
    // Keep cancel/re-arm churn (timers) from growing the heap without
    // bound: once ghosts dominate, one O(n) sweep reclaims them all.
    if (ghosts_ > 64 && ghosts_ > live_) compactHeap();
    return true;
}

void EventLoop::dropGhosts() {
    while (!heap_.empty()) {
        const HeapEntry& e = heap_.front();
        if (slots_[e.slot].gen == e.gen) return;
        heapPop();
        if (ghosts_ > 0) ghosts_--;
    }
}

bool EventLoop::runOne() {
    dropGhosts();
    if (heap_.empty()) return false;
    const HeapEntry e = heapPop();
    now_ = e.time;
    executed_++;
    live_--;
    // Evacuate the callable onto the stack and recycle its slot *before*
    // invoking: the callable may schedule events, growing the slab.
    alignas(alignof(std::max_align_t)) unsigned char buf[kInlineBytes];
    const Ops* ops = slots_[e.slot].ops;
    ops->relocate(buf, slots_[e.slot].storage);
    freeSlot(e.slot);
    ops->invoke(buf);
    return true;
}

uint64_t EventLoop::run(uint64_t limit) {
    uint64_t n = 0;
    while (n < limit && runOne()) n++;
    return n;
}

void EventLoop::runUntil(Time t) {
    for (;;) {
        dropGhosts();
        if (heap_.empty() || heap_.front().time > t) break;
        runOne();
    }
    if (now_ < t) now_ = t;
}

void EventLoop::runBefore(Time t) {
    for (;;) {
        dropGhosts();
        if (heap_.empty() || heap_.front().time >= t) break;
        runOne();
    }
    if (now_ < t) now_ = t;
}

Time EventLoop::nextEventTime() {
    dropGhosts();
    return heap_.empty() ? kNoEvent : heap_.front().time;
}

}  // namespace homa
