#include "sim/event_loop.h"

#include <utility>

namespace homa {

void EventLoop::at(Time t, Callback fn) {
    if (t < now_) t = now_;
    heap_.push(Event{t, nextSeq_++, std::move(fn)});
}

bool EventLoop::runOne() {
    if (heap_.empty()) return false;
    // priority_queue::top() is const; move out via const_cast, which is safe
    // because we pop immediately and never touch the moved-from element.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.time;
    executed_++;
    ev.fn();
    return true;
}

uint64_t EventLoop::run(uint64_t limit) {
    uint64_t n = 0;
    while (n < limit && runOne()) n++;
    return n;
}

void EventLoop::runUntil(Time t) {
    while (!heap_.empty() && heap_.top().time <= t) runOne();
    if (now_ < t) now_ = t;
}

void Timer::schedule(Duration d) {
    state_->generation++;
    const uint64_t expected = state_->generation;
    armed_ = true;
    deadline_ = loop_.now() + d;
    loop_.after(d, [this, state = state_, expected] {
        if (state->generation != expected) return;  // cancelled or re-armed
        armed_ = false;
        fn_();
    });
}

}  // namespace homa
