#include "sim/qdisc.h"

#include <algorithm>

namespace homa {

namespace {
// Bytes a packet contributes to queue occupancy: payload + header (framing
// overhead exists only on the wire, not in buffers).
int64_t bufferBytes(const Packet& p) {
    int64_t payload =
        (p.type == PacketType::Data && !p.hasFlag(kFlagTrimmed)) ? p.length : 0;
    return payload + kHeaderBytes;
}
}  // namespace

bool StrictPriorityQdisc::enqueue(Packet& p) {
    if (opts_.ecnThresholdBytes > 0 && bytes_ >= opts_.ecnThresholdBytes) {
        p.setFlag(kFlagEcn);
        stats_.ecnMarked++;
    }
    if (opts_.capBytes > 0 && bytes_ + bufferBytes(p) > opts_.capBytes) {
        if (opts_.trimOnOverflow) {
            // NDP-style switch: overflowing data packets lose their payload
            // but the header must get through (switches reserve a separate
            // header queue), as must control packets — otherwise receivers
            // could never learn about the loss.
            if (p.type == PacketType::Data && !p.hasFlag(kFlagTrimmed)) {
                p.setFlag(kFlagTrimmed);
                p.priority = kHighestPriority;
                stats_.trimmed++;
            }
            // Headers and control bypass the cap.
        } else {
            stats_.dropped++;
            return false;
        }
    }
    queues_[p.priority].push_back(pool_.acquire(p));
    bytes_ += bufferBytes(p);
    packets_++;
    stats_.enqueued++;
    return true;
}

std::optional<Packet> StrictPriorityQdisc::dequeue() {
    for (int prio = kHighestPriority; prio >= 0; prio--) {
        auto& q = queues_[prio];
        if (q.empty()) continue;
        Packet p = pool_.release(q.pop_front());
        bytes_ -= bufferBytes(p);
        packets_--;
        return p;
    }
    return std::nullopt;
}

int StrictPriorityQdisc::headPriority() const {
    for (int prio = kHighestPriority; prio >= 0; prio--) {
        if (!queues_[prio].empty()) return prio;
    }
    return -1;
}

bool PFabricQdisc::enqueue(Packet& p) {
    if (p.isControl()) {
        control_.push_back(slab_.acquire(p));
        bytes_ += bufferBytes(p);
        stats_.enqueued++;
        return true;
    }
    if (bytes_ + bufferBytes(p) > opts_.capBytes) {
        // Drop the lowest-priority packet in the pool (largest remaining);
        // if the incoming packet is the worst, drop it instead.
        auto worstOf = [this]() {
            return std::max_element(data_.begin(), data_.end(),
                                    [this](PacketPool::Handle a,
                                           PacketPool::Handle b) {
                                        return slab_.at(a).remaining <
                                               slab_.at(b).remaining;
                                    });
        };
        auto worst = worstOf();
        if (worst == data_.end() || slab_.at(*worst).remaining <= p.remaining) {
            stats_.dropped++;
            return false;
        }
        while (bytes_ + bufferBytes(p) > opts_.capBytes && !data_.empty()) {
            worst = worstOf();
            if (slab_.at(*worst).remaining <= p.remaining) break;
            bytes_ -= bufferBytes(slab_.at(*worst));
            slab_.release(*worst);
            data_.erase(worst);
            stats_.dropped++;
        }
        if (bytes_ + bufferBytes(p) > opts_.capBytes) {
            stats_.dropped++;
            return false;
        }
    }
    data_.push_back(slab_.acquire(p));
    bytes_ += bufferBytes(p);
    stats_.enqueued++;
    return true;
}

std::optional<Packet> PFabricQdisc::dequeue() {
    if (!control_.empty()) {
        Packet p = slab_.release(control_.pop_front());
        bytes_ -= bufferBytes(p);
        return p;
    }
    if (data_.empty()) return std::nullopt;
    // Message with fewest remaining bytes wins; within it, earliest offset
    // first so the receiver can make contiguous progress.
    auto best = std::min_element(
        data_.begin(), data_.end(),
        [this](PacketPool::Handle a, PacketPool::Handle b) {
            return slab_.at(a).remaining < slab_.at(b).remaining;
        });
    const MsgId msg = slab_.at(*best).msg;
    auto earliest = data_.end();
    for (auto it = data_.begin(); it != data_.end(); ++it) {
        if (slab_.at(*it).msg != msg) continue;
        if (earliest == data_.end() ||
            slab_.at(*it).offset < slab_.at(*earliest).offset) {
            earliest = it;
        }
    }
    Packet p = slab_.release(*earliest);
    data_.erase(earliest);
    bytes_ -= bufferBytes(p);
    return p;
}

}  // namespace homa
