#include "sim/qdisc.h"

#include <algorithm>

namespace homa {

namespace {
// Bytes a packet contributes to queue occupancy: payload + header (framing
// overhead exists only on the wire, not in buffers).
int64_t bufferBytes(const Packet& p) {
    int64_t payload =
        (p.type == PacketType::Data && !p.hasFlag(kFlagTrimmed)) ? p.length : 0;
    return payload + kHeaderBytes;
}
}  // namespace

bool StrictPriorityQdisc::enqueue(Packet& p) {
    if (opts_.ecnThresholdBytes > 0 && bytes_ >= opts_.ecnThresholdBytes) {
        p.setFlag(kFlagEcn);
        stats_.ecnMarked++;
    }
    if (opts_.capBytes > 0 && bytes_ + bufferBytes(p) > opts_.capBytes) {
        if (opts_.trimOnOverflow) {
            // NDP-style switch: overflowing data packets lose their payload
            // but the header must get through (switches reserve a separate
            // header queue), as must control packets — otherwise receivers
            // could never learn about the loss.
            if (p.type == PacketType::Data && !p.hasFlag(kFlagTrimmed)) {
                p.setFlag(kFlagTrimmed);
                p.priority = kHighestPriority;
                stats_.trimmed++;
            }
            // Headers and control bypass the cap.
        } else {
            stats_.dropped++;
            return false;
        }
    }
    queues_[p.priority].push_back(p);
    bytes_ += bufferBytes(p);
    packets_++;
    stats_.enqueued++;
    return true;
}

std::optional<Packet> StrictPriorityQdisc::dequeue() {
    for (int prio = kHighestPriority; prio >= 0; prio--) {
        auto& q = queues_[prio];
        if (q.empty()) continue;
        Packet p = q.front();
        q.pop_front();
        bytes_ -= bufferBytes(p);
        packets_--;
        return p;
    }
    return std::nullopt;
}

int StrictPriorityQdisc::headPriority() const {
    for (int prio = kHighestPriority; prio >= 0; prio--) {
        if (!queues_[prio].empty()) return prio;
    }
    return -1;
}

bool PFabricQdisc::enqueue(Packet& p) {
    if (p.isControl()) {
        control_.push_back(p);
        bytes_ += bufferBytes(p);
        stats_.enqueued++;
        return true;
    }
    if (bytes_ + bufferBytes(p) > opts_.capBytes) {
        // Drop the lowest-priority packet in the pool (largest remaining);
        // if the incoming packet is the worst, drop it instead.
        auto worst = std::max_element(
            pool_.begin(), pool_.end(),
            [](const Packet& a, const Packet& b) { return a.remaining < b.remaining; });
        if (worst == pool_.end() || worst->remaining <= p.remaining) {
            stats_.dropped++;
            return false;
        }
        while (bytes_ + bufferBytes(p) > opts_.capBytes && !pool_.empty()) {
            worst = std::max_element(pool_.begin(), pool_.end(),
                                     [](const Packet& a, const Packet& b) {
                                         return a.remaining < b.remaining;
                                     });
            if (worst->remaining <= p.remaining) break;
            bytes_ -= bufferBytes(*worst);
            pool_.erase(worst);
            stats_.dropped++;
        }
        if (bytes_ + bufferBytes(p) > opts_.capBytes) {
            stats_.dropped++;
            return false;
        }
    }
    pool_.push_back(p);
    bytes_ += bufferBytes(p);
    stats_.enqueued++;
    return true;
}

std::optional<Packet> PFabricQdisc::dequeue() {
    if (!control_.empty()) {
        Packet p = control_.front();
        control_.pop_front();
        bytes_ -= bufferBytes(p);
        return p;
    }
    if (pool_.empty()) return std::nullopt;
    // Message with fewest remaining bytes wins; within it, earliest offset
    // first so the receiver can make contiguous progress.
    auto best = std::min_element(pool_.begin(), pool_.end(),
                                 [](const Packet& a, const Packet& b) {
                                     return a.remaining < b.remaining;
                                 });
    MsgId msg = best->msg;
    auto earliest = pool_.end();
    for (auto it = pool_.begin(); it != pool_.end(); ++it) {
        if (it->msg != msg) continue;
        if (earliest == pool_.end() || it->offset < earliest->offset) earliest = it;
    }
    Packet p = *earliest;
    pool_.erase(earliest);
    bytes_ -= bufferBytes(p);
    return p;
}

}  // namespace homa
