// Conservative parallel discrete-event engine.
//
// The network is partitioned by rack into shards (see sim/network.h), one
// EventLoop and one worker thread per shard; aggregation and core switches
// are dealt round-robin across the same shards. All shards advance in
// lock-stepped lookahead windows of width L = the switch internal delay:
//
//   1. each shard runs its own events in [W, W+L) — cross-shard links
//      (TOR<->aggr and, on three-tier topologies, aggr<->core) park
//      completed packets in per-(src,dst)-shard outboxes;
//   2. barrier; each shard drains the outboxes addressed to it, inserting
//      the packets into their target switches' canonical transit queues
//      (Switch::injectArrival);
//   3. barrier; the next window starts at the earliest pending event
//      across all shards (clamped to [W+L, end]), so idle stretches — the
//      drain grace, OFF periods — are skipped in one hop.
//
// Why L = switch delay is a safe lookahead: a cross-shard packet finishes
// arriving at some t in [W, W+L), so the earliest event it can cause on
// the receiving shard is its routing at t + L >= W+L — always a future
// window. Why results are byte-identical to serial: every cross-shard
// influence enters a shard either as a transit insertion ordered by the
// canonical (arrival time, link id) key — a pure function of packet
// content — or as an idempotent routeDue() kick; given identical inputs,
// each shard's own (time, seq) event order reproduces the serial order of
// that shard's events. See ARCHITECTURE.md "Parallel engine".
#pragma once

#include "sim/network.h"

namespace homa {

/// Thread-count knob for the parallel engine, carried by
/// ExperimentConfig/RpcExperimentConfig and the sweep layer.
struct ParallelConfig {
    /// Number of event-loop shards (worker threads) to aim for; values
    /// <= 1 select the classic serial engine. The effective shard count is
    /// further capped by the rack count, and scenarios with zero-lookahead
    /// feedback (closed-loop, DAG) or whole-network probes always run
    /// serially regardless.
    int threads = 1;
};

/// Advance every shard of `net` to exactly time `end`. With one shard this
/// is net.loop().runUntil(end); with more it runs the windowed engine
/// above. Either way, every shard's clock reads `end` on return.
void runNetworkUntil(Network& net, Time end);

}  // namespace homa
