#include "sim/fault.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/network.h"

namespace homa {

const char* faultKindName(FaultKind k) {
    switch (k) {
        case FaultKind::Flap: return "flap";
        case FaultKind::Kill: return "kill";
        case FaultKind::Degrade: return "degrade";
        case FaultKind::FlapTrain: return "flap-train";
    }
    return "?";
}

const char* faultTargetKindName(FaultTargetKind k) {
    switch (k) {
        case FaultTargetKind::Host: return "host";
        case FaultTargetKind::Tor: return "tor";
        case FaultTargetKind::Aggr: return "aggr";
        case FaultTargetKind::Core: return "core";
    }
    return "?";
}

namespace {

bool parseTarget(const std::string& v, FaultSpec& out, std::string* err) {
    FaultTargetKind kind;
    size_t prefix;
    if (v.rfind("aggr", 0) == 0) {
        kind = FaultTargetKind::Aggr;
        prefix = 4;
    } else if (v.rfind("core", 0) == 0) {
        kind = FaultTargetKind::Core;
        prefix = 4;
    } else if (v.rfind("tor", 0) == 0) {
        kind = FaultTargetKind::Tor;
        prefix = 3;
    } else if (v.rfind("host", 0) == 0) {
        kind = FaultTargetKind::Host;
        prefix = 4;
    } else {
        if (err) {
            *err = "bad fault target '" + v +
                   "' (expected aggr<k>, core<c>, tor<r>, or host<h>)";
        }
        return false;
    }
    const std::string idx = v.substr(prefix);
    char* end = nullptr;
    const long n = std::strtol(idx.c_str(), &end, 10);
    if (idx.empty() || *end != '\0' || n < 0) {
        if (err) {
            *err = "bad fault target index in '" + v +
                   "' (expected aggr<k>, core<c>, tor<r>, or host<h>)";
        }
        return false;
    }
    out.targetKind = kind;
    out.targetIndex = static_cast<int>(n);
    return true;
}

// "50ms", "10us", "250ns", "0.5s" — a number with a required unit suffix.
bool parseFaultDuration(const std::string& v, Duration& out,
                        std::string* err) {
    char* end = nullptr;
    const double n = std::strtod(v.c_str(), &end);
    double unit = 0;
    if (std::strcmp(end, "ns") == 0) unit = 1e-9;
    else if (std::strcmp(end, "us") == 0) unit = 1e-6;
    else if (std::strcmp(end, "ms") == 0) unit = 1e-3;
    else if (std::strcmp(end, "s") == 0) unit = 1.0;
    if (end == v.c_str() || unit == 0 || !std::isfinite(n) || n < 0) {
        if (err) {
            *err = "bad duration '" + v + "' (a number with ns/us/ms/s)";
        }
        return false;
    }
    out = static_cast<Duration>(n * unit * static_cast<double>(kSecond));
    return true;
}

bool parseFaultDouble(const std::string& v, double& out, std::string* err) {
    char* end = nullptr;
    const double d = std::strtod(v.c_str(), &end);
    if (v.empty() || *end != '\0' || !std::isfinite(d)) {
        if (err) *err = "bad number '" + v + "'";
        return false;
    }
    out = d;
    return true;
}

}  // namespace

bool parseFaultSpec(const std::string& body, FaultSpec& out,
                    std::string* err) {
    FaultSpec spec;
    bool haveKind = false;
    bool haveFor = false, haveBw = false, haveDelay = false, haveDrop = false;
    bool haveCount = false, haveGap = false;
    size_t pos = 0;
    while (pos <= body.size()) {
        const size_t comma = std::min(body.find(',', pos), body.size());
        const std::string pair = body.substr(pos, comma - pos);
        pos = comma + 1;
        const size_t eq = pair.find('=');
        if (eq == std::string::npos) {
            if (err) {
                *err = pair.empty() ? "empty fault spec"
                                    : "fault key '" + pair + "' needs =<value>";
            }
            return false;
        }
        const std::string key = pair.substr(0, eq);
        const std::string val = pair.substr(eq + 1);
        if (!haveKind) {
            // The first pair names the fault and its target.
            if (key == "flap") spec.kind = FaultKind::Flap;
            else if (key == "kill") spec.kind = FaultKind::Kill;
            else if (key == "degrade") spec.kind = FaultKind::Degrade;
            else if (key == "flap-train") spec.kind = FaultKind::FlapTrain;
            else {
                if (err) {
                    *err = "fault spec must start with flap=/kill=/degrade=/"
                           "flap-train=<target> (got '" + key + "')";
                }
                return false;
            }
            if (!parseTarget(val, spec, err)) return false;
            haveKind = true;
        } else if (key == "at") {
            if (!parseFaultDuration(val, spec.at, err)) return false;
        } else if (key == "for") {
            if (!parseFaultDuration(val, spec.duration, err)) return false;
            haveFor = true;
        } else if (key == "bw") {
            if (!parseFaultDouble(val, spec.bwFactor, err)) return false;
            haveBw = true;
        } else if (key == "delay") {
            if (!parseFaultDuration(val, spec.extraDelay, err)) return false;
            haveDelay = true;
        } else if (key == "drop") {
            if (!parseFaultDouble(val, spec.dropProb, err)) return false;
            haveDrop = true;
        } else if (key == "count") {
            double n = 0;
            if (!parseFaultDouble(val, n, err)) return false;
            spec.count = static_cast<int>(n);
            haveCount = true;
        } else if (key == "gap") {
            if (!parseFaultDuration(val, spec.gap, err)) return false;
            haveGap = true;
        } else {
            if (err) {
                *err = "unknown fault key '" + key +
                       "' (known: at, for, bw, delay, drop, count, gap)";
            }
            return false;
        }
        if (comma == body.size()) break;
    }
    if (!haveKind) {
        if (err) *err = "empty fault spec";
        return false;
    }

    // Contradictory / missing keys, per kind.
    auto fail = [&](const char* m) {
        if (err) *err = m;
        return false;
    };
    const bool degradeKnobs = haveBw || haveDelay || haveDrop;
    const bool trainKnobs = haveCount || haveGap;
    switch (spec.kind) {
        case FaultKind::Flap:
            if (!haveFor || spec.duration <= 0) {
                return fail("flap needs for=<duration> > 0");
            }
            if (degradeKnobs) {
                return fail("flap takes no degrade knobs (bw/delay/drop); "
                            "use degrade=");
            }
            if (trainKnobs) {
                return fail("flap takes no count/gap; use flap-train=");
            }
            break;
        case FaultKind::Kill:
            if (haveFor) {
                return fail("kill is permanent: 'for' does not apply "
                            "(use flap= for a transient outage)");
            }
            if (degradeKnobs) {
                return fail("kill takes no degrade knobs (bw/delay/drop)");
            }
            if (trainKnobs) return fail("kill takes no count/gap");
            break;
        case FaultKind::Degrade:
            if (!degradeKnobs) {
                return fail("degrade needs at least one of bw=, delay=, drop=");
            }
            if (trainKnobs) return fail("degrade takes no count/gap");
            if (haveBw && (spec.bwFactor <= 0.0 || spec.bwFactor > 1.0)) {
                return fail("bw must be in (0, 1]");
            }
            if (haveDrop && (spec.dropProb < 0.0 || spec.dropProb >= 1.0)) {
                return fail("drop must be in [0, 1)");
            }
            break;
        case FaultKind::FlapTrain:
            if (!haveCount || spec.count < 1) {
                return fail("flap-train needs count=<n> >= 1");
            }
            if (!haveGap || spec.gap <= 0) {
                return fail("flap-train needs gap=<mean duration> > 0");
            }
            if (!haveFor || spec.duration <= 0) {
                return fail("flap-train needs for=<mean down duration> > 0");
            }
            if (degradeKnobs) {
                return fail("flap-train takes no degrade knobs "
                            "(bw/delay/drop)");
            }
            break;
    }
    out = spec;
    return true;
}

std::string validateFaultSpec(const FaultSpec& spec,
                              const NetworkConfig& cfg) {
    // "<tier> fault target index <i> out of range: ... (valid: tier0..tierN-1)"
    auto outOfRange = [&spec](const char* tier, const char* what, int n) {
        return std::string(tier) + " fault target index " +
               std::to_string(spec.targetIndex) +
               " out of range: this topology has " + std::to_string(n) + " " +
               what + " (valid: " + tier + "0.." + tier +
               std::to_string(n - 1) + ")";
    };
    switch (spec.targetKind) {
        case FaultTargetKind::Aggr:
            if (cfg.singleRack()) {
                return "aggr fault targets need a multi-rack fat-tree "
                       "topology (no aggregation switches here)";
            }
            if (spec.targetIndex >= cfg.totalAggrs()) {
                return outOfRange("aggr", "aggregation switches",
                                  cfg.totalAggrs());
            }
            break;
        case FaultTargetKind::Core:
            if (!cfg.threeTier()) {
                return "core fault targets need a three-tier topology "
                       "(no core switches here; set core=<n> in the topo "
                       "spec)";
            }
            if (spec.targetIndex >= cfg.coreSwitches) {
                return outOfRange("core", "core switches", cfg.coreSwitches);
            }
            break;
        case FaultTargetKind::Tor:
            if (spec.targetIndex >= cfg.racks) {
                return outOfRange("tor", "racks", cfg.racks);
            }
            break;
        case FaultTargetKind::Host:
            if (spec.targetIndex >= cfg.hostCount()) {
                return outOfRange("host", "hosts", cfg.hostCount());
            }
            break;
    }
    return "";
}

std::string faultSpecToString(const FaultSpec& spec) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s=%s%d,at=%.3fus", faultKindName(spec.kind),
                  faultTargetKindName(spec.targetKind), spec.targetIndex,
                  toMicros(spec.at));
    std::string s = buf;
    auto addDur = [&s](const char* key, Duration d) {
        char b[64];
        std::snprintf(b, sizeof(b), ",%s=%.3fus", key, toMicros(d));
        s += b;
    };
    switch (spec.kind) {
        case FaultKind::Flap:
            addDur("for", spec.duration);
            break;
        case FaultKind::Kill:
            break;
        case FaultKind::Degrade: {
            if (spec.duration > 0) addDur("for", spec.duration);
            char b[96];
            std::snprintf(b, sizeof(b), ",bw=%g,drop=%g", spec.bwFactor,
                          spec.dropProb);
            s += b;
            if (spec.extraDelay > 0) addDur("delay", spec.extraDelay);
            break;
        }
        case FaultKind::FlapTrain: {
            char b[48];
            std::snprintf(b, sizeof(b), ",count=%d", spec.count);
            s += b;
            addDur("gap", spec.gap);
            addDur("for", spec.duration);
            break;
        }
    }
    return s;
}

uint64_t deriveFaultSeed(uint64_t trafficSeed) {
    // A fixed salt keeps the fault streams disjoint from every traffic
    // stream forked from the same seed.
    return mix64(trafficSeed ^ 0xFA17FA17FA17FA17ull);
}

FaultTimeline::FaultTimeline(Network& net, std::vector<FaultSpec> specs,
                             uint64_t seed)
    : net_(net), specs_(std::move(specs)), seed_(seed) {}

Switch* FaultTimeline::switchOfTarget(const FaultSpec& spec) {
    switch (spec.targetKind) {
        case FaultTargetKind::Tor: return &net_.tor(spec.targetIndex);
        case FaultTargetKind::Aggr: return &net_.aggr(spec.targetIndex);
        case FaultTargetKind::Core: return &net_.core(spec.targetIndex);
        case FaultTargetKind::Host: return nullptr;  // hosts are not switches
    }
    return nullptr;
}

// Every directed link of the target, both directions, in canonical order.
// Pod arithmetic: an aggr g serves pod g / aggrSwitches; its downlink to
// rack r is port (r - podStart), and the TOR uplink feeding it is port
// perRack + (g % aggrSwitches). On two-tier topologies the single implicit
// pod spans every rack, making all of this identical to the pre-core code.
template <typename Fn>
void FaultTimeline::forEachTargetPort(const FaultSpec& spec, Fn&& fn) {
    const NetworkConfig& cfg = net_.config();
    const int perRack = cfg.hostsPerRack;
    const int aggrPerPod = cfg.aggrSwitches;
    const int podRacks = cfg.podRacks();
    const int nCore = net_.coreCount();
    switch (spec.targetKind) {
        case FaultTargetKind::Host: {
            const HostId h = spec.targetIndex;
            fn(net_.host(h).nic());
            fn(net_.downlink(h));
            break;
        }
        case FaultTargetKind::Tor: {
            const int r = spec.targetIndex;
            Switch& tor = net_.tor(r);
            for (int i = 0; i < static_cast<int>(tor.portCount()); i++) {
                fn(tor.port(i));
            }
            for (int i = 0; i < perRack; i++) {
                fn(net_.host(r * perRack + i).nic());
            }
            const int podBase = cfg.podOfRack(r) * aggrPerPod;
            const int down = r - cfg.podOfRack(r) * podRacks;
            for (int a = 0; a < aggrPerPod; a++) {
                fn(net_.aggr(podBase + a).port(down));
            }
            break;
        }
        case FaultTargetKind::Aggr: {
            const int g = spec.targetIndex;
            const int pod = g / aggrPerPod;
            const int localA = g % aggrPerPod;
            for (int r = 0; r < podRacks; r++) {
                fn(net_.tor(pod * podRacks + r).port(perRack + localA));
                fn(net_.aggr(g).port(r));
            }
            for (int c = 0; c < nCore; c++) {
                fn(net_.aggr(g).port(podRacks + c));
                fn(net_.core(c).port(g));
            }
            break;
        }
        case FaultTargetKind::Core: {
            const int c = spec.targetIndex;
            for (int g = 0; g < net_.aggrCount(); g++) {
                fn(net_.aggr(g).port(podRacks + c));
                fn(net_.core(c).port(g));
            }
            break;
        }
    }
}

// The directed links *feeding* the target (a dead device's neighbors must
// stop transmitting toward it: their on-wire packets count as wireDrops —
// "in-flight packets on a dead link"). The target's own egress ports are
// handled by Switch::kill() (or, for hosts, included here).
template <typename Fn>
void FaultTimeline::forEachIngressPort(const FaultSpec& spec, Fn&& fn) {
    const NetworkConfig& cfg = net_.config();
    const int perRack = cfg.hostsPerRack;
    const int aggrPerPod = cfg.aggrSwitches;
    const int podRacks = cfg.podRacks();
    const int nCore = net_.coreCount();
    switch (spec.targetKind) {
        case FaultTargetKind::Host: {
            const HostId h = spec.targetIndex;
            fn(net_.host(h).nic());  // host death: its NIC dies too
            fn(net_.downlink(h));
            break;
        }
        case FaultTargetKind::Tor: {
            const int r = spec.targetIndex;
            for (int i = 0; i < perRack; i++) {
                fn(net_.host(r * perRack + i).nic());
            }
            const int podBase = cfg.podOfRack(r) * aggrPerPod;
            const int down = r - cfg.podOfRack(r) * podRacks;
            for (int a = 0; a < aggrPerPod; a++) {
                fn(net_.aggr(podBase + a).port(down));
            }
            break;
        }
        case FaultTargetKind::Aggr: {
            const int g = spec.targetIndex;
            const int pod = g / aggrPerPod;
            const int localA = g % aggrPerPod;
            for (int r = 0; r < podRacks; r++) {
                fn(net_.tor(pod * podRacks + r).port(perRack + localA));
            }
            for (int c = 0; c < nCore; c++) {
                fn(net_.core(c).port(g));
            }
            break;
        }
        case FaultTargetKind::Core: {
            const int c = spec.targetIndex;
            for (int g = 0; g < net_.aggrCount(); g++) {
                fn(net_.aggr(g).port(podRacks + c));
            }
            break;
        }
    }
}

void FaultTimeline::scheduleFlap(const FaultSpec& spec, Duration at,
                                 Duration down) {
    forEachTargetPort(spec, [at, down](EgressPort& p) {
        // Each port's events go on its own shard's loop; the nesting
        // down-count makes overlapping windows compose.
        p.loop().at(at, [&p] { p.faultLinkDown(); });
        p.loop().at(at + down, [&p] { p.faultLinkUp(); });
    });
    events_.linkDownEvents++;
    events_.linkUpEvents++;
}

void FaultTimeline::scheduleKill(const FaultSpec& spec) {
    Switch* sw = switchOfTarget(spec);
    const Duration at = spec.at;
    if (sw != nullptr) {
        sw->loop().at(at, [sw] { sw->kill(); });
    }
    forEachIngressPort(spec, [at](EgressPort& p) {
        p.loop().at(at, [&p] { p.faultKill(); });
    });
    events_.switchKills++;
}

void FaultTimeline::scheduleDegrade(const FaultSpec& spec) {
    const Duration at = spec.at;
    const Duration until = spec.duration > 0 ? at + spec.duration : -1;
    const double bw = spec.bwFactor;
    const Duration delay = spec.extraDelay;
    const double drop = spec.dropProb;
    const uint64_t seed = seed_;
    forEachTargetPort(spec, [&](EgressPort& p) {
        EgressPort* port = &p;
        // Per-port RNG seed: a pure function of (fault seed, canonical
        // link id) — identical at any shard count.
        const uint64_t portSeed =
            mix64(seed ^ (kGoldenGamma * (static_cast<uint64_t>(p.linkId()) + 1)));
        p.loop().at(at, [port, bw, delay, drop, portSeed] {
            port->setDegrade(bw, delay, drop, portSeed);
        });
        if (until >= 0) {
            p.loop().at(until, [port] { port->clearDegrade(); });
        }
    });
    events_.degradeEvents++;
}

void FaultTimeline::schedule() {
    assert(!scheduled_);
    scheduled_ = true;
    for (size_t i = 0; i < specs_.size(); i++) {
        const FaultSpec& spec = specs_[i];
        const std::string verr = validateFaultSpec(spec, net_.config());
        if (!verr.empty()) {
            std::fprintf(stderr, "FaultTimeline: invalid spec '%s': %s\n",
                         faultSpecToString(spec).c_str(), verr.c_str());
            std::abort();
        }
        switch (spec.kind) {
            case FaultKind::Flap:
                scheduleFlap(spec, spec.at, spec.duration);
                break;
            case FaultKind::Kill:
                scheduleKill(spec);
                break;
            case FaultKind::Degrade:
                scheduleDegrade(spec);
                break;
            case FaultKind::FlapTrain: {
                // Seed-derived random train: exponential down windows and
                // gaps, expanded deterministically at schedule time (the
                // expansion never touches simulation state, so it is
                // identical at any shard count).
                Rng rng(mix64(seed_ + kGoldenGamma * (i + 1)));
                Duration t = spec.at;
                for (int k = 0; k < spec.count; k++) {
                    const Duration down = std::max<Duration>(
                        1, exponentialDuration(rng, toSeconds(spec.duration)));
                    scheduleFlap(spec, t, down);
                    t += std::max<Duration>(
                        1, exponentialDuration(rng, toSeconds(spec.gap)));
                }
                break;
            }
        }
    }
}

FaultStats FaultTimeline::collect() const {
    FaultStats out = events_;
    auto addPort = [&out](const EgressPort& p) {
        out.wireDrops += p.stats().faultWireDrops;
        out.probDrops += p.stats().faultProbDrops;
    };
    for (HostId h = 0; h < net_.hostCount(); h++) {
        addPort(net_.host(h).nic());
    }
    auto addSwitch = [&](Switch& sw) {
        for (int i = 0; i < static_cast<int>(sw.portCount()); i++) {
            addPort(sw.port(i));
        }
        out.deadIngressDrops += sw.deadIngressDrops();
        out.flushDrops += sw.flushDrops();
    };
    for (int r = 0; r < net_.rackCount(); r++) addSwitch(net_.tor(r));
    for (int a = 0; a < net_.aggrCount(); a++) addSwitch(net_.aggr(a));
    for (int c = 0; c < net_.coreCount(); c++) addSwitch(net_.core(c));
    return out;
}

}  // namespace homa
