#include "sim/switch.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace homa {

int Switch::addPort(Bandwidth bw, std::unique_ptr<Qdisc> qdisc, PacketSink* peer) {
    auto port = std::make_unique<EgressPort>(loop_, bw, std::move(qdisc));
    port->connectTo(peer);
    port->setOwner(this);
    ports_.push_back(std::move(port));
    return static_cast<int>(ports_.size()) - 1;
}

void Switch::insertTransit(Time arrival, Packet p) {
    Transit t{arrival + delay_, p.arrivalLink, std::move(p)};
    // upper_bound keeps equal keys FIFO. Real links serialize, so two
    // packets can tie on (route, link) only when tests call deliver()
    // directly (link -1); FIFO preserves their scheduling order.
    auto pos = std::upper_bound(
        transit_.begin(), transit_.end(), t,
        [](const Transit& a, const Transit& b) {
            return a.route != b.route ? a.route < b.route : a.link < b.link;
        });
    transit_.insert(pos, std::move(t));
}

void Switch::deliver(Packet p) {
    if (dead_) {
        deadIngressDrops_++;
        return;
    }
    insertTransit(loop_.now(), std::move(p));
    loop_.after(delay_, [this] { routeDue(); });
}

void Switch::injectArrival(Time arrival, Packet p) {
    if (dead_) {
        // A parked cross-shard packet can reach a dead switch after the
        // kill event even though its wire arrival preceded the death: the
        // serial engine would have put it in transit and flushed it at the
        // kill, so attribute by arrival time to keep the by-cause counters
        // byte-identical to serial. (Ties go to ingress drops: the kill is
        // a setup-scheduled event and sorts before arrivals at the same
        // instant.)
        if (arrival < diedAt_) {
            flushDrops_++;
        } else {
            deadIngressDrops_++;
        }
        return;
    }
    assert(arrival + delay_ >= loop_.now());
    insertTransit(arrival, std::move(p));
    loop_.at(arrival + delay_, [this] { routeDue(); });
}

void Switch::kill() {
    if (dead_) return;
    dead_ = true;
    diedAt_ = loop_.now();
    flushDrops_ += transit_.size();
    transit_.clear();
    for (auto& port : ports_) {
        flushDrops_ += port->dropAllQueued();
        port->faultKill();
    }
}

void Switch::routeDue() {
    while (!transit_.empty() && transit_.front().route <= loop_.now()) {
        Packet p = std::move(transit_.front().pkt);
        transit_.pop_front();
        assert(route_);
        const int out = route_(p, rng_);
        assert(out >= 0 && out < static_cast<int>(ports_.size()));
        ports_[out]->enqueue(std::move(p));
    }
}

}  // namespace homa
