#include "sim/switch.h"

#include <cassert>
#include <utility>

namespace homa {

int Switch::addPort(Bandwidth bw, std::unique_ptr<Qdisc> qdisc, PacketSink* peer) {
    auto port = std::make_unique<EgressPort>(loop_, bw, std::move(qdisc));
    port->connectTo(peer);
    ports_.push_back(std::move(port));
    return static_cast<int>(ports_.size()) - 1;
}

void Switch::deliver(Packet p) {
    assert(route_);
    transit_.emplace_back(loop_.now() + delay_, std::move(p));
    loop_.after(delay_, [this] { forwardHead(); });
}

void Switch::forwardHead() {
    assert(!transit_.empty());
    assert(transit_.front().first == loop_.now());
    Packet p = std::move(transit_.front().second);
    transit_.pop_front();
    const int out = route_(p, rng_);
    assert(out >= 0 && out < static_cast<int>(ports_.size()));
    ports_[out]->enqueue(std::move(p));
}

}  // namespace homa
