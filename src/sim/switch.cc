#include "sim/switch.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace homa {

int Switch::addPort(Bandwidth bw, std::unique_ptr<Qdisc> qdisc, PacketSink* peer) {
    auto port = std::make_unique<EgressPort>(loop_, bw, std::move(qdisc));
    port->connectTo(peer);
    port->setOwner(this);
    ports_.push_back(std::move(port));
    return static_cast<int>(ports_.size()) - 1;
}

void Switch::insertTransit(Time arrival, Packet p) {
    Transit t{arrival + delay_, p.arrivalLink, std::move(p)};
    // upper_bound keeps equal keys FIFO. Real links serialize, so two
    // packets can tie on (route, link) only when tests call deliver()
    // directly (link -1); FIFO preserves their scheduling order.
    auto pos = std::upper_bound(
        transit_.begin(), transit_.end(), t,
        [](const Transit& a, const Transit& b) {
            return a.route != b.route ? a.route < b.route : a.link < b.link;
        });
    transit_.insert(pos, std::move(t));
}

void Switch::deliver(Packet p) {
    insertTransit(loop_.now(), std::move(p));
    loop_.after(delay_, [this] { routeDue(); });
}

void Switch::injectArrival(Time arrival, Packet p) {
    assert(arrival + delay_ >= loop_.now());
    insertTransit(arrival, std::move(p));
    loop_.at(arrival + delay_, [this] { routeDue(); });
}

void Switch::routeDue() {
    while (!transit_.empty() && transit_.front().route <= loop_.now()) {
        Packet p = std::move(transit_.front().pkt);
        transit_.pop_front();
        assert(route_);
        const int out = route_(p, rng_);
        assert(out >= 0 && out < static_cast<int>(ports_.size()));
        ports_[out]->enqueue(std::move(p));
    }
}

}  // namespace homa
