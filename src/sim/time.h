// Simulated time.
//
// The simulator clock is a signed 64-bit count of picoseconds. Picosecond
// resolution lets link serialization times be exact integers for the
// bandwidths we care about (10 Gbps = 800 ps/byte, 40 Gbps = 200 ps/byte),
// which keeps runs bit-for-bit deterministic across platforms.
#pragma once

#include <cstdint>

namespace homa {

/// Simulated time in picoseconds since the start of the run.
using Time = int64_t;

/// Durations share the representation of Time.
using Duration = int64_t;

constexpr Duration kPicosecond = 1;
constexpr Duration kNanosecond = 1000;
constexpr Duration kMicrosecond = 1000 * kNanosecond;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;

constexpr Duration nanoseconds(int64_t n) { return n * kNanosecond; }
constexpr Duration microseconds(int64_t n) { return n * kMicrosecond; }
constexpr Duration milliseconds(int64_t n) { return n * kMillisecond; }

constexpr double toSeconds(Duration d) {
    return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr double toMicros(Duration d) {
    return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

/// Link speed expressed as picoseconds per byte; exact for common rates.
struct Bandwidth {
    /// Time to place one byte on the wire.
    Duration psPerByte = 0;

    constexpr Duration serialize(int64_t bytes) const { return psPerByte * bytes; }

    /// Bytes transmittable in `d`; rounds down.
    constexpr int64_t bytesIn(Duration d) const {
        return psPerByte > 0 ? d / psPerByte : 0;
    }

    constexpr double gbps() const {
        return psPerByte > 0 ? 8000.0 / static_cast<double>(psPerByte) : 0.0;
    }

    static constexpr Bandwidth fromGbps(int64_t gbps) {
        // 1 Gbps = 8000 ps/byte.
        return Bandwidth{8000 / gbps};
    }
};

constexpr Bandwidth k10Gbps = Bandwidth::fromGbps(10);   // 800 ps/byte
constexpr Bandwidth k40Gbps = Bandwidth::fromGbps(40);   // 200 ps/byte

}  // namespace homa
