#include "sim/random.h"

#include <cmath>

namespace homa {

uint64_t mix64(uint64_t z) {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

namespace {

uint64_t splitmix64(uint64_t& x) { return mix64(x += kGoldenGamma); }

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
}

uint64_t Rng::next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double Rng::uniform() {
    // 53 high-quality bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::below(uint64_t n) {
    // Lemire-style rejection to avoid modulo bias.
    const uint64_t threshold = (0 - n) % n;
    for (;;) {
        const uint64_t r = next();
        if (r >= threshold) return r % n;
    }
}

double Rng::exponential(double mean) {
    // uniform() can return 0; 1-u is in (0, 1].
    double u = uniform();
    return -mean * std::log(1.0 - u);
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace homa
