// Deterministic random numbers for the simulator.
//
// xoshiro256** seeded via SplitMix64. We avoid <random> engines/distributions
// because their outputs are not guaranteed identical across standard library
// implementations; experiments must replay bit-for-bit from a seed.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>

#include "sim/time.h"

namespace homa {

/// The SplitMix64 additive constant (golden-ratio gamma).
constexpr uint64_t kGoldenGamma = 0x9E3779B97F4A7C15ull;

/// SplitMix64 finalizer: a high-quality stateless 64-bit mixer. Used for
/// Rng seeding and for derived-seed rules (e.g. deriveSweepSeed).
uint64_t mix64(uint64_t z);

class Rng {
public:
    explicit Rng(uint64_t seed) { reseed(seed); }

    void reseed(uint64_t seed);

    /// Uniform 64-bit value.
    uint64_t next();

    /// Uniform double in [0, 1).
    double uniform();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /// Uniform integer in [0, n); n must be > 0. Unbiased (rejection).
    uint64_t below(uint64_t n);

    /// Uniform integer in [lo, hi] inclusive.
    int64_t range(int64_t lo, int64_t hi) {
        return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
    }

    /// Exponentially distributed value with the given mean (> 0).
    double exponential(double mean);

    /// True with probability p.
    bool chance(double p) { return uniform() < p; }

    /// Derive an independent child stream (e.g., one per host).
    Rng fork();

private:
    std::array<uint64_t, 4> s_{};
};

/// Exponentially distributed Duration with mean `meanSeconds`, clamped to
/// at least 1 ps (event-loop deltas must move time forward). The arrival
/// gap / think-time / ON-clock draw shared by the traffic generator and
/// the RPC harness.
inline Duration exponentialDuration(Rng& rng, double meanSeconds) {
    return std::max<Duration>(
        1, static_cast<Duration>(rng.exponential(meanSeconds) *
                                 static_cast<double>(kSecond)));
}

}  // namespace homa
