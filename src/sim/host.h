// A simulated end host: NIC + fixed software delay + transport instance.
#pragma once

#include <deque>
#include <memory>

#include "sim/event_loop.h"
#include "sim/packet.h"
#include "sim/port.h"
#include "sim/random.h"
#include "transport/transport.h"

namespace homa {

class Host final : public PacketSink, public PacketSource, public HostServices {
public:
    Host(EventLoop& loop, HostId id, Bandwidth nicSpeed, Duration softwareDelay,
         Rng rng);

    /// Install the transport (must be called before traffic flows).
    void setTransport(std::unique_ptr<Transport> t);

    Transport& transport() { return *transport_; }
    EgressPort& nic() { return nic_; }

    /// Packets fully received off the TOR downlink (conservation
    /// accounting in test_fault: every packet a NIC started serializing is
    /// eventually received here, dropped somewhere with a counted cause,
    /// or still in flight).
    uint64_t rxPackets() const { return rxPackets_; }

    // PacketSink: packet fully received from the TOR downlink.
    void deliver(Packet p) override;

    // PacketSource: the NIC pulls the transport's next data packet; the
    // host stamps source and creation time.
    std::optional<Packet> pullPacket() override;

    // HostServices.
    EventLoop& loop() override { return loop_; }
    HostId id() const override { return id_; }
    void pushPacket(Packet p) override;
    void kickNic() override { nic_.kick(); }
    Rng& rng() override { return rng_; }

private:
    void processHead();

    EventLoop& loop_;
    HostId id_;
    Duration softwareDelay_;
    Rng rng_;
    EgressPort nic_;
    std::unique_ptr<Transport> transport_;
    // Packets waiting out the software delay (fixed delay => FIFO); member
    // storage keeps the scheduled events pointer-sized.
    std::deque<Packet> pendingRx_;
    uint64_t rxPackets_ = 0;
};

}  // namespace homa
