// EgressPort: the serializing end of a unidirectional link.
//
// A port owns a qdisc and a link of fixed bandwidth. Whenever the link is
// free it dequeues the next packet, holds the link for the packet's wire
// time, and then delivers the packet to the downstream PacketSink (switches
// in this simulator are store-and-forward: a hop sees a packet only once it
// has fully arrived; propagation delay is zero, per the paper's setup).
//
// Ports support two feeding styles:
//  * push: upstream calls enqueue(); packets wait in the qdisc.
//  * pull: a PacketSource is consulted whenever the link goes idle and the
//    qdisc is empty. This models NICs whose transmit queue is kept nearly
//    empty so the transport can reorder packets (Homa §4 keeps at most two
//    full packets in the NIC).
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "sim/event_loop.h"
#include "sim/packet.h"
#include "sim/qdisc.h"
#include "sim/random.h"
#include "sim/time.h"

namespace homa {

class PacketSink {
public:
    virtual ~PacketSink() = default;
    virtual void deliver(Packet p) = 0;
};

class PacketSource {
public:
    virtual ~PacketSource() = default;
    /// Return the next data packet to transmit, or nullopt if none ready.
    virtual std::optional<Packet> pullPacket() = 0;
};

/// Implemented by store-and-forward switches: route every transit packet
/// whose internal delay has expired, in the switch's canonical order (see
/// Switch::routeDue). An EgressPort calls its owning switch's routeDue() at
/// every transmission boundary *before* dequeuing, so a same-instant
/// "routing enqueues" / "port dequeues" pair always resolves enqueue-first.
/// That structural rule — shared by the serial and parallel engines — is
/// what removes the one same-instant tie whose resolution could differ
/// between event orders (it changes which packet a priority qdisc yields).
class DueRouter {
public:
    virtual ~DueRouter() = default;
    virtual void routeDue() = 0;
};

/// Per-port statistics; Table 1, Figure 14, Figure 16, and Figure 21 are
/// all computed from these.
struct PortStats {
    uint64_t packetsSent = 0;
    int64_t wireBytesSent = 0;
    int64_t bytesByPriority[kPriorityLevels] = {};
    Duration busyTime = 0;

    // Fault-injection drops (sim/fault.h). `packetsSent` and
    // `wireBytesSent` count *started* transmissions, so both causes below
    // subtract from what actually reached the peer.
    uint64_t faultWireDrops = 0;  // on-wire packet killed by link-down
    uint64_t faultProbDrops = 0;  // degraded-link probabilistic loss

    // Time-weighted queue occupancy (buffer bytes, excluding the packet on
    // the wire), maintained on every queue change.
    int64_t maxQueueBytes = 0;
    double queueByteTimeIntegral = 0;  // bytes * picoseconds
    Time lastQueueChange = 0;

    double meanQueueBytes(Time elapsed) const {
        return elapsed > 0 ? queueByteTimeIntegral / static_cast<double>(elapsed) : 0.0;
    }
};

class EgressPort : public PacketSink {
public:
    EgressPort(EventLoop& loop, Bandwidth bw, std::unique_ptr<Qdisc> qdisc);

    void connectTo(PacketSink* peer) { peer_ = peer; }
    /// Downstream sink this port feeds (the topology tests walk these to
    /// prove every link has a matching reverse link).
    PacketSink* peer() const { return peer_; }
    void setSource(PacketSource* src) { source_ = src; }

    /// The switch this port belongs to (null for host NICs): its routeDue()
    /// is flushed at every transmission boundary, before dequeuing.
    void setOwner(DueRouter* owner) { owner_ = owner; }

    /// Canonical global link id, assigned once by Network wiring in
    /// topology order; stamped into every packet this port completes
    /// (Packet::arrivalLink).
    void setLinkId(int32_t id) { linkId_ = id; }
    int32_t linkId() const { return linkId_; }

    /// Cross-shard seam: when set, a completed packet is handed to `fn`
    /// with its arrival (serialization-end) time instead of being delivered
    /// to peer_. The parallel engine points this at a per-(src,dst)-shard
    /// outbox; the packet is re-injected into the peer switch at a window
    /// barrier via Switch::injectArrival().
    using RemoteDeliverFn = std::function<void(Time, Packet&&)>;
    void setRemoteDeliver(RemoteDeliverFn fn) { remote_ = std::move(fn); }

    /// Push-style entry; also the PacketSink interface so a port can be the
    /// delivery target of an upstream hop (used by switch wiring).
    void deliver(Packet p) override { enqueue(std::move(p)); }
    void enqueue(Packet p);

    /// Re-poll the pull source (call when the source gains data).
    void kick() { tryTransmit(); }

    // ----------------------------------------------------------- faults
    // Hooks driven by FaultTimeline (sim/fault.h). Link-down states nest
    // (overlapping flap windows hold the link down until every window has
    // lifted); a kill is permanent. Taking the link down mid-transmission
    // kills the on-wire packet (stats().faultWireDrops) and refunds its
    // unserved busy time.

    /// One more reason the link is down; kills any on-wire packet.
    void faultLinkDown();
    /// One reason lifted; resumes transmitting when none remain.
    void faultLinkUp();
    /// Permanent death (a dead switch's links never come back).
    void faultKill();
    bool linkUp() const { return downCount_ == 0 && !killed_; }

    /// Degraded-link state: serialization slowed by 1/bwFactor, every
    /// packet holds the link `extraDelay` longer, and each packet is lost
    /// with probability dropProb at serialization end (drawn from a
    /// deterministic per-port RNG seeded with `rngSeed`; the RNG persists
    /// across degrade windows so repeated windows continue one stream).
    void setDegrade(double bwFactor, Duration extraDelay, double dropProb,
                    uint64_t rngSeed);
    void clearDegrade();

    /// Discard every queued packet (switch death); returns how many.
    uint64_t dropAllQueued();

    bool busy() const { return busy_; }
    bool idle() const { return !busy_ && qdisc_->queuedPackets() == 0; }
    Bandwidth bandwidth() const { return bw_; }
    Qdisc& qdisc() { return *qdisc_; }
    const Qdisc& qdisc() const { return *qdisc_; }
    const PortStats& stats() const { return stats_; }
    EventLoop& loop() { return loop_; }

    /// Total bytes accepted but not yet fully serialized (queued + on the
    /// wire). Senders use this to honor NIC queue limits.
    int64_t backlogBytes() const { return qdisc_->queuedBytes() + inFlightBytes_; }

private:
    void tryTransmit();
    void startTransmission(Packet p);
    void noteQueueChange();
    void abortTransmission();

    EventLoop& loop_;
    Bandwidth bw_;
    std::unique_ptr<Qdisc> qdisc_;
    PacketSink* peer_ = nullptr;
    PacketSource* source_ = nullptr;
    DueRouter* owner_ = nullptr;
    RemoteDeliverFn remote_;
    int32_t linkId_ = -1;

    bool busy_ = false;
    int64_t inFlightBytes_ = 0;
    uint8_t txPriority_ = 0;   // priority of the packet on the wire
    Time txEndsAt_ = 0;
    std::optional<Packet> txPacket_;  // the packet on the wire
    EventLoop::EventHandle txEvent_;  // serialization-end event (cancellable)

    // Fault state (sim/fault.h).
    int downCount_ = 0;
    bool killed_ = false;
    double degradeBwFactor_ = 1.0;
    Duration degradeExtraDelay_ = 0;
    double degradeDropProb_ = 0.0;
    std::optional<Rng> faultRng_;

    PortStats stats_;
};

}  // namespace homa
