#include "sim/port.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace homa {

EgressPort::EgressPort(EventLoop& loop, Bandwidth bw, std::unique_ptr<Qdisc> qdisc)
    : loop_(loop), bw_(bw), qdisc_(std::move(qdisc)) {}

void EgressPort::noteQueueChange() {
    const Time now = loop_.now();
    stats_.queueByteTimeIntegral +=
        static_cast<double>(qdisc_->queuedBytes()) *
        static_cast<double>(now - stats_.lastQueueChange);
    stats_.lastQueueChange = now;
}

void EgressPort::enqueue(Packet p) {
    // Stamp wait-decomposition state (Figure 14): if a *lower*-priority
    // packet currently holds the wire, its residual transmission time will
    // count as preemption lag; any further waiting (behind equal-or-higher
    // priority packets) counts as queueing delay.
    p.hopEnqueuedAt = loop_.now();
    p.hopPreemptLagBound =
        (busy_ && txPriority_ < p.priority) ? (txEndsAt_ - loop_.now()) : 0;

    noteQueueChange();
    const bool accepted = qdisc_->enqueue(p);
    noteQueueChange();
    if (!accepted) return;  // dropped; qdisc stats recorded it
    stats_.maxQueueBytes = std::max(stats_.maxQueueBytes, qdisc_->queuedBytes());
    tryTransmit();
}

void EgressPort::faultLinkDown() {
    const bool wasUp = linkUp();
    downCount_++;
    if (wasUp) abortTransmission();
}

void EgressPort::faultLinkUp() {
    if (downCount_ > 0) downCount_--;
    if (!linkUp()) return;
    // Canonical enqueue-before-dequeue: route everything due at the owning
    // switch before this port picks its next packet (see DueRouter).
    if (owner_ != nullptr) owner_->routeDue();
    tryTransmit();
}

void EgressPort::faultKill() {
    const bool wasUp = linkUp();
    killed_ = true;
    if (wasUp) abortTransmission();
}

void EgressPort::abortTransmission() {
    if (!busy_) return;
    loop_.cancel(txEvent_);
    txEvent_ = {};
    // The refund keeps busyTime equal to time the wire actually served.
    stats_.busyTime -= txEndsAt_ - loop_.now();
    busy_ = false;
    inFlightBytes_ = 0;
    txPacket_.reset();
    stats_.faultWireDrops++;
}

void EgressPort::setDegrade(double bwFactor, Duration extraDelay,
                            double dropProb, uint64_t rngSeed) {
    assert(bwFactor > 0.0 && bwFactor <= 1.0);
    assert(dropProb >= 0.0 && dropProb < 1.0);
    degradeBwFactor_ = bwFactor;
    degradeExtraDelay_ = extraDelay;
    degradeDropProb_ = dropProb;
    // One persistent stream per port: repeated windows continue it, so the
    // draw sequence is a pure function of (seed, packets serialized while
    // degraded), never of how many windows the schedule used.
    if (dropProb > 0.0 && !faultRng_) faultRng_.emplace(rngSeed);
}

void EgressPort::clearDegrade() {
    degradeBwFactor_ = 1.0;
    degradeExtraDelay_ = 0;
    degradeDropProb_ = 0.0;
}

uint64_t EgressPort::dropAllQueued() {
    uint64_t n = 0;
    noteQueueChange();
    while (qdisc_->dequeue()) n++;
    noteQueueChange();
    return n;
}

void EgressPort::tryTransmit() {
    if (busy_ || !linkUp()) return;
    noteQueueChange();
    std::optional<Packet> next = qdisc_->dequeue();
    noteQueueChange();
    if (!next && source_ != nullptr) {
        next = source_->pullPacket();
        if (next) {
            next->hopEnqueuedAt = loop_.now();  // pulled: no wait at this hop
            next->hopPreemptLagBound = 0;
        }
    }
    if (!next) return;
    startTransmission(std::move(*next));
}

void EgressPort::startTransmission(Packet p) {
    assert(!busy_);

    // Attribute the wait this packet experienced at this hop.
    const Duration waited = loop_.now() - p.hopEnqueuedAt;
    const Duration lag = std::min(waited, p.hopPreemptLagBound);
    p.preemptionLag += lag;
    p.queueingDelay += waited - lag;

    const int64_t wire = p.wireBytes();
    Duration serialization = bw_.serialize(wire);
    if (degradeBwFactor_ < 1.0) {
        serialization = static_cast<Duration>(
            static_cast<double>(serialization) / degradeBwFactor_);
    }
    serialization += degradeExtraDelay_;
    busy_ = true;
    inFlightBytes_ = wire;
    txPriority_ = p.priority;
    txEndsAt_ = loop_.now() + serialization;

    stats_.packetsSent++;
    stats_.wireBytesSent += wire;
    stats_.busyTime += serialization;
    stats_.bytesByPriority[p.priority] += wire;

    // The packet lives in txPacket_ rather than the closure: keeping the
    // capture pointer-sized keeps the event inside the EventLoop's inline
    // slab slot, which matters at tens of millions of events per run.
    txPacket_ = std::move(p);
    txEvent_ = loop_.at(txEndsAt_, [this] {
        busy_ = false;
        inFlightBytes_ = 0;
        txEvent_ = {};
        Packet done = std::move(*txPacket_);
        txPacket_.reset();
        done.arrivalLink = linkId_;
        if (degradeDropProb_ > 0.0 && faultRng_->chance(degradeDropProb_)) {
            // Lost on the degraded wire: it burned serialization time but
            // never reaches the peer.
            stats_.faultProbDrops++;
        } else if (remote_) {
            // Cross-shard link: park the packet in the engine's outbox; it
            // reaches the peer switch at the next window barrier.
            done.hops++;
            remote_(loop_.now(), std::move(done));
        } else if (peer_ != nullptr) {
            done.hops++;
            peer_->deliver(std::move(done));
        }
        // Canonical enqueue-before-dequeue: apply all due routings at the
        // owning switch before this port picks its next packet.
        if (owner_ != nullptr) owner_->routeDue();
        tryTransmit();
    });
}

}  // namespace homa
