// Traffic scenarios: who talks to whom, and at what relative rate.
//
// The paper's evaluation (§5.2) uses uniform-random Poisson traffic, but
// receiver-driven scheduling is stressed hardest by *skewed* matrices:
// fan-in hotspots (incast), rack-local locality, and heavy-tailed sender
// popularity. `TrafficPattern` is the seam behind `TrafficGenerator` that
// owns destination choice and per-sender rate weighting; `ScenarioConfig`
// selects and parameterizes a pattern and rides inside `TrafficConfig`, so
// every experiment, bench, and the sweep runner can pick a scenario.
//
// All patterns are deterministic given (config, seed): pattern-internal
// randomness (permutations, hotspot placement, popularity ranks) is fixed
// at construction from the seed the generator passes in.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/packet.h"
#include "sim/random.h"
#include "sim/time.h"

namespace homa {

enum class TrafficPatternKind {
    Uniform,        // destinations uniform over the other hosts (the paper)
    Permutation,    // fixed random derangement: host i always sends to p(i)
    RackSkew,       // rackLocalFraction of messages stay inside the rack
    Incast,         // N-to-1 fan-in groups aimed at a few hot receivers
    ParetoSenders,  // sender popularity ~ rank^-alpha, destinations uniform
    TraceReplay,    // explicit (time, src, dst, size) schedule from text
};

const char* patternName(TrafficPatternKind kind);
/// Parses a pattern name (as printed by patternName, case-sensitive);
/// returns false and leaves `out` untouched on unknown names.
bool patternFromName(const std::string& name, TrafficPatternKind& out);

struct ScenarioConfig {
    TrafficPatternKind kind = TrafficPatternKind::Uniform;

    // Incast: `hotspots` hot receivers (capped at half the cluster); each
    // is the target of a fan-in group of `hotspotDegree` dedicated senders
    // (0 = all non-hot hosts join a group; capped at the senders available
    // per hotspot). A group sender aims `hotspotFraction` of its messages
    // at its hotspot and spreads the rest uniformly; hosts outside every
    // group send uniform background traffic.
    int hotspots = 1;
    int hotspotDegree = 16;
    double hotspotFraction = 1.0;

    // RackSkew: fraction of messages that pick an intra-rack destination.
    double rackLocalFraction = 0.8;

    // ParetoSenders: weight of the k-th most popular sender ~ k^-alpha.
    double paretoAlpha = 1.2;

    // TraceReplay: lines of "<time_us> <src> <dst> <size_bytes>"
    // (blank lines and '#' comments ignored). `traceText` takes precedence
    // over `tracePath`; times are offsets from the generator's start time.
    std::string tracePath;
    std::string traceText;
};

/// One trace-replay record; `at` is an offset from TrafficConfig::start.
struct TraceRecord {
    Duration at = 0;
    HostId src = 0;
    HostId dst = 0;
    uint32_t size = 0;
};

/// Parses trace text. Aborts (assert/fprintf+exit) on malformed lines or
/// out-of-range hosts when `hostCount` > 0.
std::vector<TraceRecord> parseTrace(const std::string& text,
                                    int hostCount = 0);
std::vector<TraceRecord> loadTraceFile(const std::string& path,
                                       int hostCount = 0);

/// Destination choice and sender rate weighting for Poisson scenarios.
class TrafficPattern {
public:
    virtual ~TrafficPattern() = default;

    virtual TrafficPatternKind kind() const = 0;

    /// Relative Poisson arrival weight of host h; 0 = host never sends.
    /// The generator normalizes weights so the aggregate offered load is
    /// independent of the pattern, and water-fills so no single sender is
    /// asked to offer more than its line rate (excess redistributes over
    /// the unclamped hosts) — skew patterns saturate their top senders
    /// instead of demanding the physically impossible.
    virtual double senderWeight(HostId) const { return 1.0; }

    /// Pick a destination for a message from `src`; never returns `src`.
    virtual HostId pickDestination(HostId src, Rng& rng) const = 0;
};

/// Builds the pattern for a scenario (TraceReplay has no pattern; the
/// generator replays records directly — calling this for it aborts).
std::unique_ptr<TrafficPattern> makeTrafficPattern(const ScenarioConfig& cfg,
                                                   int hostCount,
                                                   int hostsPerRack,
                                                   uint64_t seed);

}  // namespace homa
