// Traffic scenarios: who talks to whom, and at what relative rate.
//
// The paper's evaluation (§5.2) uses uniform-random Poisson traffic, but
// receiver-driven scheduling is stressed hardest by *skewed* matrices:
// fan-in hotspots (incast), rack-local locality, and heavy-tailed sender
// popularity. `TrafficPattern` is the seam behind `TrafficGenerator` that
// owns destination choice and per-sender rate weighting; `ScenarioConfig`
// selects and parameterizes a pattern and rides inside `TrafficConfig`, so
// every experiment, bench, and the sweep runner can pick a scenario.
//
// All patterns are deterministic given (config, seed): pattern-internal
// randomness (permutations, hotspot placement, popularity ranks) is fixed
// at construction from the seed the generator passes in.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/fault.h"
#include "sim/packet.h"
#include "sim/random.h"
#include "sim/time.h"
#include "workload/rpc_dag.h"
#include "workload/serving.h"

namespace homa {

enum class TrafficPatternKind {
    Uniform,        // destinations uniform over the other hosts (the paper)
    Permutation,    // fixed random derangement: host i always sends to p(i)
    RackSkew,       // rackLocalFraction of messages stay inside the rack
    Incast,         // N-to-1 fan-in groups aimed at a few hot receivers
    ParetoSenders,  // sender popularity ~ rank^-alpha, destinations uniform
    TraceReplay,    // explicit (time, src, dst, size) schedule from text
    ClosedLoop,     // W outstanding messages per host; next issues on delivery
    Dag,            // fan-out/fan-in RPC trees (partition-aggregate)
};

/// Returns the canonical name of a pattern ("uniform", "closed-loop", ...).
const char* patternName(TrafficPatternKind kind);
/// Parses a pattern name (as printed by patternName, case-sensitive);
/// returns false and leaves `out` untouched on unknown names.
bool patternFromName(const std::string& name, TrafficPatternKind& out);

/// Distribution family for ON-OFF burst/idle period durations.
enum class OnOffDist {
    Exponential,  // memoryless periods (classic interrupted Poisson process)
    Pareto,       // heavy-tailed periods (self-similar traffic, shape > 1)
};

/// Returns "exp" or "pareto".
const char* onOffDistName(OnOffDist d);
/// Parses an ON-OFF distribution name; false on unknown names.
bool onOffDistFromName(const std::string& name, OnOffDist& out);

/// Bursty arrival modulation, composable with every Poisson pattern and
/// with closed-loop clients. Each host alternates independent ON (burst)
/// and OFF (idle) periods. Poisson patterns run their arrival process on
/// the host's ON-time clock with the rate boosted by 1/dutyCycle, so the
/// *average* offered load stays calibrated to TrafficConfig::load while
/// bursts transmit well above it. Closed-loop clients simply pause issuing
/// during OFF periods and refill their window when the burst starts.
struct OnOffConfig {
    bool enabled = false;
    Duration onMean = microseconds(100);   // mean burst duration
    Duration offMean = microseconds(300);  // mean idle duration
    OnOffDist dist = OnOffDist::Exponential;
    double paretoShape = 1.5;  // Pareto period shape (must be > 1)

    /// Long-run fraction of time a host spends in a burst.
    double dutyCycle() const {
        return static_cast<double>(onMean) /
               static_cast<double>(onMean + offMean);
    }
};

struct ScenarioConfig {
    TrafficPatternKind kind = TrafficPatternKind::Uniform;

    // Incast: `hotspots` hot receivers (capped at half the cluster); each
    // is the target of a fan-in group of `hotspotDegree` dedicated senders
    // (0 = all non-hot hosts join a group; capped at the senders available
    // per hotspot). A group sender aims `hotspotFraction` of its messages
    // at its hotspot and spreads the rest uniformly; hosts outside every
    // group send uniform background traffic.
    int hotspots = 1;
    int hotspotDegree = 16;
    double hotspotFraction = 1.0;

    // RackSkew: fraction of messages that pick an intra-rack destination.
    double rackLocalFraction = 0.8;

    // ParetoSenders: weight of the k-th most popular sender ~ k^-alpha.
    double paretoAlpha = 1.2;

    // TraceReplay: lines of "<time_us> <src> <dst> <size_bytes>"
    // (blank lines and '#' comments ignored). `traceText` takes precedence
    // over `tracePath`; times are offsets from the generator's start time.
    std::string tracePath;
    std::string traceText;

    // ClosedLoop: each host keeps `closedLoopWindow` messages outstanding
    // (destinations uniform) and issues the next one only when a previous
    // delivery completes, after an optional exponential think time with
    // mean `thinkTime`. The offered load is endogenous — `load` is ignored.
    int closedLoopWindow = 4;
    Duration thinkTime = 0;

    // Dag: fan-out/fan-in request trees (see workload/rpc_dag.h). Roots
    // run closed-loop — `dag.window` trees outstanding each — so `load`
    // is ignored, like ClosedLoop.
    DagConfig dag;

    // ON-OFF burst/idle modulation; composes with every pattern above
    // except TraceReplay (which carries its own explicit timing).
    OnOffConfig onOff;

    // Fault injection (sim/fault.h): link flaps, switch death, degraded
    // links, scheduled deterministically on the event loops. Composes
    // with every pattern; runExperiment builds a FaultTimeline from these
    // and reports FaultStats in ExperimentResult::faults.
    std::vector<FaultSpec> faults;

    // TOR uplink choice: false = the paper's per-packet random spraying;
    // true = deterministic per-message ECMP hash over the *alive* uplinks
    // so a dead aggregation switch reroutes instead of blackholing.
    bool ecmpUplinks = false;

    // Topology override ("topo:" modifier): a parseTopoSpec body applied
    // over the experiment's base NetworkConfig by runExperiment, e.g.
    // "racks=8,hosts=4,aggr=2,core=2,oversub=4". Empty = run the base
    // topology untouched.
    std::string topoSpec;

    // Multi-tenant serving ("tenants:" / "replicas:" modifiers): tenant
    // fleets with their own workloads and arrival modes against named
    // replica groups, run by the RPC harness (runRpcExperiment) rather
    // than the message-level generator — the CLI dispatches on
    // serving.enabled(). Composes with "topo:" and "ecmp" only: the
    // serving harness owns its arrival processes (no on-off), and its
    // per-call accounting assumes the packet engine (no fluid, no
    // faults). The pattern segment must be "uniform" (the placeholder —
    // tenants override destination choice entirely).
    ServingConfig serving;

    // Fluid fast path ("fluid:" modifier): messages with length >= this
    // many bytes are simulated as flow-level fluid transfers (sim/fluid.h)
    // instead of packet by packet; 0 sends everything fluid. -1 (default)
    // defers to ExperimentConfig::fluidThresholdBytes (itself -1 =
    // disabled). Does not compose with fault injection: fluid flows never
    // touch the switches faults act on, so a hybrid fault run would break
    // conservation silently — the spec parser rejects the combination.
    int64_t fluidThresholdBytes = -1;
};

/// Parses a scenario spec: a pattern segment followed by '+'-separated
/// modifiers, e.g. "incast+on-off", "uniform+ecmp+fault:flap=aggr0,
/// at=50ms,for=10ms+fault:degrade=host3,drop=0.01". The pattern leaves
/// all knobs at defaults — except `dag`, which takes parameters:
/// "dag[:k=v,k=v...]" (keys per parseDagSpec). Modifiers: "on-off",
/// "ecmp", "topo:<body>" (parseTopoSpec; at most one), "fluid:<bytes>"
/// (fluid fast-path threshold, a non-negative integer; at most one, and
/// not combinable with fault segments), and any number of "fault:<body>"
/// segments (parseFaultSpec). Serving modifiers: "tenants:<body>"
/// (parseTenantsSpec; at most one, pattern must be "uniform", not
/// combinable with on-off/fluid/fault) and "replicas:<body>"
/// (parseReplicasSpec; requires a tenants segment).
/// Returns false and leaves `out` untouched on malformed specs, with a
/// human-readable reason in *err (if given). This is the syntax the
/// figure benches accept via HOMA_SCENARIO.
bool scenarioFromSpec(const std::string& spec, ScenarioConfig& out,
                      std::string* err = nullptr);

/// One trace-replay record; `at` is an offset from TrafficConfig::start.
struct TraceRecord {
    Duration at = 0;
    HostId src = 0;
    HostId dst = 0;
    uint32_t size = 0;
};

/// Parses trace text. Aborts (assert/fprintf+exit) on malformed lines or
/// out-of-range hosts when `hostCount` > 0.
std::vector<TraceRecord> parseTrace(const std::string& text,
                                    int hostCount = 0);
std::vector<TraceRecord> loadTraceFile(const std::string& path,
                                       int hostCount = 0);

/// Per-host ON-OFF state machine: a lazily generated alternating sequence
/// of burst and idle periods, deterministic given (config, seed).
///
/// Two query styles, one per arrival mode (a given host uses exactly one):
///  * `advance(onDelay)` — Poisson mode. Maps a delay measured on the
///    host's ON-time clock to the wall-clock instant reached, starting
///    from the previous arrival. Running the arrival process on the
///    ON-clock (at rate base/dutyCycle) keeps the long-run rate calibrated.
///  * `gate(now)` — closed-loop mode. Returns `now` when the host is mid-
///    burst, else the start of the next burst. Queries must be issued with
///    non-decreasing `now` (event-loop time, which is monotonic).
///
/// The initial phase is sampled from the stationary distribution for
/// exponential periods (exact, by memorylessness); for Pareto periods the
/// same draw is an approximation, which a long window amortizes away.
class OnOffModulator {
public:
    OnOffModulator(const OnOffConfig& cfg, Time start, uint64_t seed);

    /// Advance `onDelay` of ON time past the previous mapped instant and
    /// return the wall-clock time reached (OFF periods are skipped whole).
    Time advance(Duration onDelay);

    /// `now` when ON at `now`; otherwise the start of the next ON period.
    Time gate(Time now);

private:
    Duration samplePeriod(bool on);

    OnOffConfig cfg_;
    Rng rng_;
    bool on_;
    Time periodEnd_;  // wall-clock end of the current period
    Time cursor_;     // last wall-clock instant mapped by advance()
};

/// Destination choice and sender rate weighting for Poisson scenarios.
class TrafficPattern {
public:
    virtual ~TrafficPattern() = default;

    virtual TrafficPatternKind kind() const = 0;

    /// Relative Poisson arrival weight of host h; 0 = host never sends.
    /// The generator normalizes weights so the aggregate offered load is
    /// independent of the pattern, and water-fills so no single sender is
    /// asked to offer more than its line rate (excess redistributes over
    /// the unclamped hosts) — skew patterns saturate their top senders
    /// instead of demanding the physically impossible.
    virtual double senderWeight(HostId) const { return 1.0; }

    /// Pick a destination for a message from `src`; never returns `src`.
    virtual HostId pickDestination(HostId src, Rng& rng) const = 0;
};

/// Builds the pattern for a scenario (TraceReplay has no pattern; the
/// generator replays records directly — calling this for it aborts).
std::unique_ptr<TrafficPattern> makeTrafficPattern(const ScenarioConfig& cfg,
                                                   int hostCount,
                                                   int hostsPerRack,
                                                   uint64_t seed);

}  // namespace homa
