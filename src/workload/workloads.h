// The five workloads of Figure 1.
//
// W1: Facebook memcached (ETC model), W2: Google search app, W3: aggregated
// Google datacenter RPCs, W4: Facebook Hadoop, W5: DCTCP web search. The
// decile points come from the x-axis ticks of Figure 12 (which are, by the
// paper's construction, the 10%..100% quantiles of each workload). W5 is
// quantized to full 1442-byte packets, matching the variant the paper used
// so the NDP simulator could run it.
#pragma once

#include "workload/distribution.h"

namespace homa {

enum class WorkloadId { W1, W2, W3, W4, W5 };

const SizeDistribution& workload(WorkloadId id);
const char* workloadName(WorkloadId id);
WorkloadId workloadFromName(const std::string& name);

constexpr WorkloadId kAllWorkloads[] = {WorkloadId::W1, WorkloadId::W2,
                                        WorkloadId::W3, WorkloadId::W4,
                                        WorkloadId::W5};

}  // namespace homa
