#include "workload/serving.h"

#include <algorithm>
#include <cassert>

#include "workload/rpc_dag.h"  // parseDagInt/Double: the strict parsers

namespace homa {

const char* lbPolicyName(LbPolicy p) {
    switch (p) {
        case LbPolicy::RoundRobin: return "rr";
        case LbPolicy::Random: return "random";
        case LbPolicy::PowerOfTwo: return "p2c";
    }
    return "?";
}

bool lbPolicyFromName(const std::string& name, LbPolicy& out) {
    for (LbPolicy p : {LbPolicy::RoundRobin, LbPolicy::Random,
                       LbPolicy::PowerOfTwo}) {
        if (name == lbPolicyName(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

const char* arrivalModeName(ArrivalMode m) {
    return m == ArrivalMode::Open ? "open" : "closed";
}

bool arrivalModeFromName(const std::string& name, ArrivalMode& out) {
    if (name == "open") {
        out = ArrivalMode::Open;
        return true;
    }
    if (name == "closed") {
        out = ArrivalMode::Closed;
        return true;
    }
    return false;
}

int ServingConfig::totalClients() const {
    int total = 0;
    for (const TenantConfig& t : tenants) total += t.clients;
    return total;
}

std::vector<ReplicaGroupConfig> ServingConfig::effectiveGroups() const {
    if (!groups.empty()) return groups;
    return {ReplicaGroupConfig{}};  // "pool": all servers, random policy
}

bool resolveReplicaGroups(const ServingConfig& cfg, int servers,
                          std::vector<ResolvedGroup>& out, std::string* err) {
    auto fail = [err](const std::string& why) {
        if (err) *err = why;
        return false;
    };
    const std::vector<ReplicaGroupConfig> groups = cfg.effectiveGroups();
    std::vector<ResolvedGroup> resolved;
    int next = 0;
    for (size_t g = 0; g < groups.size(); g++) {
        const ReplicaGroupConfig& grp = groups[g];
        int count = grp.replicas;
        if (count == 0) {
            if (g + 1 != groups.size()) {
                return fail("group '" + grp.name + "': n=0 (the rest of the "
                            "pool) is only legal for the last group");
            }
            count = servers - next;
        }
        if (count < 1 || next + count > servers) {
            return fail("group '" + grp.name + "' needs " +
                        std::to_string(count) + " replica(s) but only " +
                        std::to_string(servers - next) + " of " +
                        std::to_string(servers) + " server hosts remain");
        }
        resolved.push_back(ResolvedGroup{next, count});
        next += count;
    }
    out = std::move(resolved);
    return true;
}

int tenantGroupIndex(const ServingConfig& cfg, const TenantConfig& t) {
    const std::vector<ReplicaGroupConfig> groups = cfg.effectiveGroups();
    if (t.group.empty()) return 0;
    for (size_t g = 0; g < groups.size(); g++) {
        if (groups[g].name == t.group) return static_cast<int>(g);
    }
    return -1;
}

std::string validateServingConfig(const ServingConfig& cfg, int hostCount) {
    if (cfg.tenants.empty()) return "serving needs at least one tenant";
    for (const TenantConfig& t : cfg.tenants) {
        if (t.name.empty()) return "tenant names must be non-empty";
        if (t.clients < 1) {
            return "tenant '" + t.name + "': clients must be >= 1";
        }
        if (t.mode == ArrivalMode::Open &&
            (t.load <= 0 || t.load > 1.5)) {
            return "tenant '" + t.name + "': load must be in (0, 1.5]";
        }
        if (t.mode == ArrivalMode::Closed && t.window < 1) {
            return "tenant '" + t.name + "': window must be >= 1";
        }
        if (t.think < 0) {
            return "tenant '" + t.name + "': think time must be >= 0";
        }
    }
    for (size_t i = 0; i < cfg.tenants.size(); i++) {
        for (size_t j = i + 1; j < cfg.tenants.size(); j++) {
            if (cfg.tenants[i].name == cfg.tenants[j].name) {
                return "duplicate tenant name '" + cfg.tenants[i].name + "'";
            }
        }
    }
    const std::vector<ReplicaGroupConfig> groups = cfg.effectiveGroups();
    for (const ReplicaGroupConfig& g : groups) {
        if (g.name.empty()) return "replica group names must be non-empty";
        if (g.replicas < 0) {
            return "group '" + g.name + "': n must be >= 0";
        }
        if (g.hedgePercentile < 0 || g.hedgePercentile >= 1) {
            return "group '" + g.name + "': hedge percentile must be in "
                   "[0, 1) (0 = off)";
        }
        if (g.hedgeFloor < 0) {
            return "group '" + g.name + "': hedge floor must be >= 0";
        }
        if (g.hedgeMinSamples < 1) {
            return "group '" + g.name + "': hedge_min must be >= 1";
        }
    }
    for (size_t i = 0; i < groups.size(); i++) {
        for (size_t j = i + 1; j < groups.size(); j++) {
            if (groups[i].name == groups[j].name) {
                return "duplicate replica group name '" + groups[i].name + "'";
            }
        }
    }
    for (const TenantConfig& t : cfg.tenants) {
        if (tenantGroupIndex(cfg, t) < 0) {
            return "tenant '" + t.name + "' targets unknown replica group '" +
                   t.group + "'";
        }
    }
    const int clients = cfg.totalClients();
    const int servers = hostCount - clients;
    if (servers < 1) {
        return "serving needs at least one server host: " +
               std::to_string(clients) + " tenant clients leave " +
               std::to_string(servers) + " of " + std::to_string(hostCount) +
               " hosts";
    }
    std::vector<ResolvedGroup> resolved;
    std::string err;
    if (!resolveReplicaGroups(cfg, servers, resolved, &err)) return err;
    for (size_t g = 0; g < groups.size(); g++) {
        const bool needsTwo = groups[g].policy == LbPolicy::PowerOfTwo ||
                              groups[g].hedging();
        if (needsTwo && resolved[g].count < 2) {
            return "group '" + groups[g].name + "': " +
                   std::string(groups[g].policy == LbPolicy::PowerOfTwo
                                   ? "p2c"
                                   : "hedging") +
                   " needs >= 2 replicas";
        }
    }
    return "";
}

// ------------------------------------------------------------ spec grammar

namespace {

/// Splits `body` on `sep`, keeping empty fields (they become parse errors
/// downstream, with better messages than silent dropping would give).
std::vector<std::string> splitOn(const std::string& body, char sep) {
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= body.size()) {
        const size_t at = std::min(body.find(sep, pos), body.size());
        out.push_back(body.substr(pos, at - pos));
        pos = at + 1;
        if (at == body.size()) break;
    }
    return out;
}

bool splitKeyValue(const std::string& pair, std::string& key,
                   std::string& val) {
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) return false;
    key = pair.substr(0, eq);
    val = pair.substr(eq + 1);
    return true;
}

bool workloadFromSpecName(const std::string& name, WorkloadId& out) {
    for (WorkloadId id : {WorkloadId::W1, WorkloadId::W2, WorkloadId::W3,
                          WorkloadId::W4, WorkloadId::W5}) {
        if (name == workloadName(id)) {
            out = id;
            return true;
        }
    }
    return false;
}

bool parseMicros(const std::string& val, Duration& out) {
    double us = 0;
    if (!parseDagDouble(val, us) || us < 0) return false;
    out = static_cast<Duration>(us * static_cast<double>(kMicrosecond));
    return true;
}

std::string fmtDouble(double v) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

}  // namespace

bool parseTenantsSpec(const std::string& body, std::vector<TenantConfig>& out,
                      std::string* err) {
    auto fail = [err](const std::string& why) {
        if (err) *err = why;
        return false;
    };
    if (body.empty()) return fail("empty tenant spec");
    std::vector<TenantConfig> tenants;
    for (const std::string& seg : splitOn(body, ';')) {
        if (seg.empty()) return fail("empty tenant entry (stray ';')");
        TenantConfig t;
        t.name.clear();  // must be named explicitly
        bool loadSeen = false, windowSeen = false, thinkSeen = false;
        for (const std::string& pair : splitOn(seg, ',')) {
            std::string key, val;
            if (!splitKeyValue(pair, key, val)) {
                return fail("tenant entry '" + seg + "': expected k=v, got '" +
                            pair + "'");
            }
            if (key == "name") {
                t.name = val;
            } else if (key == "wl") {
                if (!workloadFromSpecName(val, t.workload)) {
                    return fail("tenant key wl: unknown workload '" + val +
                                "' (expected W1..W5)");
                }
            } else if (key == "mode") {
                if (!arrivalModeFromName(val, t.mode)) {
                    return fail("tenant key mode: expected open or closed, "
                                "got '" + val + "'");
                }
            } else if (key == "load") {
                if (!parseDagDouble(val, t.load)) {
                    return fail("tenant key load: expected a number, got '" +
                                val + "'");
                }
                loadSeen = true;
            } else if (key == "window") {
                if (!parseDagInt(val, t.window)) {
                    return fail("tenant key window: expected an integer, "
                                "got '" + val + "'");
                }
                windowSeen = true;
            } else if (key == "think_us") {
                if (!parseMicros(val, t.think)) {
                    return fail("tenant key think_us: expected a "
                                "non-negative number, got '" + val + "'");
                }
                thinkSeen = true;
            } else if (key == "clients") {
                if (!parseDagInt(val, t.clients)) {
                    return fail("tenant key clients: expected an integer, "
                                "got '" + val + "'");
                }
            } else if (key == "group") {
                t.group = val;
            } else {
                return fail("unknown tenant key '" + key + "' (expected "
                            "name, wl, mode, load, window, think_us, "
                            "clients, group)");
            }
        }
        if (t.name.empty()) {
            return fail("tenant entry '" + seg + "' has no name= key");
        }
        if (t.mode == ArrivalMode::Open && (windowSeen || thinkSeen)) {
            return fail("tenant '" + t.name + "': window/think_us are "
                        "closed-mode knobs (mode=open sets load)");
        }
        if (t.mode == ArrivalMode::Closed && loadSeen) {
            return fail("tenant '" + t.name + "': load is an open-mode knob "
                        "(mode=closed sets window/think_us)");
        }
        tenants.push_back(std::move(t));
    }
    out = std::move(tenants);
    return true;
}

bool parseReplicasSpec(const std::string& body,
                       std::vector<ReplicaGroupConfig>& out,
                       std::string* err) {
    auto fail = [err](const std::string& why) {
        if (err) *err = why;
        return false;
    };
    if (body.empty()) return fail("empty replica spec");
    std::vector<ReplicaGroupConfig> groups;
    for (const std::string& seg : splitOn(body, ';')) {
        if (seg.empty()) return fail("empty replica group entry (stray ';')");
        ReplicaGroupConfig g;
        g.name.clear();  // must be named explicitly
        for (const std::string& pair : splitOn(seg, ',')) {
            std::string key, val;
            if (!splitKeyValue(pair, key, val)) {
                return fail("replica group entry '" + seg + "': expected "
                            "k=v, got '" + pair + "'");
            }
            if (key == "name") {
                g.name = val;
            } else if (key == "n") {
                if (!parseDagInt(val, g.replicas)) {
                    return fail("replica key n: expected an integer, got '" +
                                val + "'");
                }
            } else if (key == "lb") {
                if (!lbPolicyFromName(val, g.policy)) {
                    return fail("replica key lb: expected rr, random, or "
                                "p2c, got '" + val + "'");
                }
            } else if (key == "hedge") {
                if (val == "off") {
                    g.hedgePercentile = 0;
                } else if (val.size() >= 2 && val[0] == 'p') {
                    int pct = 0;
                    if (!parseDagInt(val.substr(1), pct) || pct < 1 ||
                        pct > 99) {
                        return fail("replica key hedge: expected off or "
                                    "p1..p99, got '" + val + "'");
                    }
                    g.hedgePercentile = pct / 100.0;
                } else {
                    return fail("replica key hedge: expected off or p1..p99 "
                                "(e.g. p95), got '" + val + "'");
                }
            } else if (key == "hedge_floor_us") {
                if (!parseMicros(val, g.hedgeFloor)) {
                    return fail("replica key hedge_floor_us: expected a "
                                "non-negative number, got '" + val + "'");
                }
            } else if (key == "hedge_min") {
                if (!parseDagInt(val, g.hedgeMinSamples)) {
                    return fail("replica key hedge_min: expected an "
                                "integer, got '" + val + "'");
                }
            } else {
                return fail("unknown replica key '" + key + "' (expected "
                            "name, n, lb, hedge, hedge_floor_us, hedge_min)");
            }
        }
        if (g.name.empty()) {
            return fail("replica group entry '" + seg + "' has no name= key");
        }
        groups.push_back(std::move(g));
    }
    out = std::move(groups);
    return true;
}

std::string tenantsSpecToString(const std::vector<TenantConfig>& tenants) {
    std::string s;
    for (size_t i = 0; i < tenants.size(); i++) {
        const TenantConfig& t = tenants[i];
        if (i > 0) s += ';';
        s += "name=" + t.name;
        s += ",wl=" + std::string(workloadName(t.workload));
        s += ",mode=" + std::string(arrivalModeName(t.mode));
        if (t.mode == ArrivalMode::Open) {
            s += ",load=" + fmtDouble(t.load);
        } else {
            s += ",window=" + std::to_string(t.window);
            if (t.think > 0) {
                s += ",think_us=" + fmtDouble(toMicros(t.think));
            }
        }
        s += ",clients=" + std::to_string(t.clients);
        if (!t.group.empty()) s += ",group=" + t.group;
    }
    return s;
}

std::string replicasSpecToString(
    const std::vector<ReplicaGroupConfig>& groups) {
    std::string s;
    for (size_t i = 0; i < groups.size(); i++) {
        const ReplicaGroupConfig& g = groups[i];
        if (i > 0) s += ';';
        s += "name=" + g.name;
        s += ",n=" + std::to_string(g.replicas);
        s += ",lb=" + std::string(lbPolicyName(g.policy));
        if (g.hedging()) {
            s += ",hedge=p" + std::to_string(static_cast<int>(
                                  g.hedgePercentile * 100 + 0.5));
            s += ",hedge_floor_us=" + fmtDouble(toMicros(g.hedgeFloor));
            s += ",hedge_min=" + std::to_string(g.hedgeMinSamples);
        }
    }
    return s;
}

// --------------------------------------------------------- ReplicaSelector

ReplicaSelector::ReplicaSelector(LbPolicy policy, int replicas, uint64_t seed,
                                 int tenant)
    : policy_(policy), replicas_(replicas) {
    assert(replicas_ >= 1);
    // One mixed base per (seed, tenant): draws chain mix64 over it so any
    // (salt, rpcSeq) pair lands on an independent value.
    base_ = mix64(seed + kGoldenGamma *
                             (static_cast<uint64_t>(tenant) + 1));
    if (policy_ == LbPolicy::RoundRobin) {
        // Seeded Fisher-Yates permutation: fair (each replica exactly once
        // per cycle of `replicas_` picks) but not phase-aligned across
        // tenants, so co-located tenants do not march in lockstep.
        perm_.resize(static_cast<size_t>(replicas_));
        for (int i = 0; i < replicas_; i++) perm_[static_cast<size_t>(i)] = i;
        Rng rng(base_);
        for (int i = replicas_ - 1; i > 0; i--) {
            const int j = static_cast<int>(
                rng.below(static_cast<uint64_t>(i) + 1));
            std::swap(perm_[static_cast<size_t>(i)],
                      perm_[static_cast<size_t>(j)]);
        }
    }
}

uint64_t ReplicaSelector::draw(uint64_t salt, uint64_t rpcSeq) const {
    return mix64(base_ ^ mix64(rpcSeq + kGoldenGamma * (salt + 1)));
}

std::pair<int, int> ReplicaSelector::candidates(uint64_t rpcSeq) const {
    const int n = replicas_;
    const int c1 = static_cast<int>(draw(1, rpcSeq) %
                                    static_cast<uint64_t>(n));
    if (n < 2) return {c1, c1};
    const int off = static_cast<int>(draw(2, rpcSeq) %
                                     static_cast<uint64_t>(n - 1));
    const int c2 = (c1 + 1 + off) % n;
    return {c1, c2};
}

int ReplicaSelector::pick(uint64_t rpcSeq, const DepthFn& depth) const {
    const int n = replicas_;
    switch (policy_) {
        case LbPolicy::RoundRobin:
            return perm_[static_cast<size_t>(rpcSeq %
                                             static_cast<uint64_t>(n))];
        case LbPolicy::Random:
            return static_cast<int>(draw(0, rpcSeq) %
                                    static_cast<uint64_t>(n));
        case LbPolicy::PowerOfTwo: {
            const auto [c1, c2] = candidates(rpcSeq);
            if (c1 == c2 || !depth) return c1;
            // Ties go to the first candidate: either way the winner is no
            // deeper than both, the property the tests pin.
            return depth(c2) < depth(c1) ? c2 : c1;
        }
    }
    return 0;
}

int ReplicaSelector::pickHedge(uint64_t rpcSeq, int primary) const {
    assert(replicas_ >= 2);
    assert(primary >= 0 && primary < replicas_);
    const int off = static_cast<int>(draw(3, rpcSeq) %
                                     static_cast<uint64_t>(replicas_ - 1));
    return (primary + 1 + off) % replicas_;
}

}  // namespace homa
