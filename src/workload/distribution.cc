#include "workload/distribution.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <string>

#include "sim/packet.h"

namespace homa {

int64_t messageWireBytes(int64_t len) {
    const int64_t packets = std::max<int64_t>(1, (len + kMaxPayload - 1) / kMaxPayload);
    return len + packets * (kHeaderBytes + kFrameOverhead);
}

SizeDistribution::SizeDistribution(std::string name, uint32_t minSize,
                                   std::array<uint32_t, 10> deciles,
                                   uint32_t quantum, std::vector<Anchor> anchors)
    : name_(std::move(name)), min_(minSize), deciles_(deciles), quantum_(quantum) {
    assert(min_ >= 1);
    [[maybe_unused]] uint32_t prev = min_;
    for ([[maybe_unused]] uint32_t d : deciles_) {
        assert(d >= prev);
        prev = d;
    }
    grid_.emplace_back(0.0, static_cast<double>(min_));
    for (int i = 0; i < 10; i++) {
        grid_.emplace_back((i + 1) / 10.0, static_cast<double>(deciles_[i]));
    }
    for (const Anchor& a : anchors) {
        assert(a.p > 0 && a.p < 1);
        grid_.emplace_back(a.p, static_cast<double>(a.size));
    }
    std::sort(grid_.begin(), grid_.end());
    // Sizes must be non-decreasing along the grid for the quantile function
    // to be well-defined.
    for (size_t i = 1; i < grid_.size(); i++) {
        assert(grid_[i].second >= grid_[i - 1].second);
    }
}

double SizeDistribution::quantile(double p) const {
    p = std::clamp(p, 0.0, 1.0);
    // Find the segment [p0, p1) containing p; geometric interpolation.
    auto it = std::upper_bound(grid_.begin(), grid_.end(),
                               std::make_pair(p, 1e300));
    if (it == grid_.begin()) return grid_.front().second;
    if (it == grid_.end()) return grid_.back().second;
    const auto [p0, s0] = *std::prev(it);
    const auto [p1, s1] = *it;
    if (p1 <= p0 || s0 <= 0 || s1 <= s0) return s1;
    const double f = (p - p0) / (p1 - p0);
    return s0 * std::pow(s1 / s0, f);
}

double SizeDistribution::cdf(double size) const {
    if (size <= min_) return 0.0;
    if (size >= deciles_[9]) return 1.0;
    for (size_t i = 1; i < grid_.size(); i++) {
        const auto [p0, s0] = grid_[i - 1];
        const auto [p1, s1] = grid_[i];
        if (size > s1) continue;
        if (s1 <= s0) return p1;
        const double f = std::log(size / s0) / std::log(s1 / s0);
        return p0 + (p1 - p0) * std::clamp(f, 0.0, 1.0);
    }
    return 1.0;
}

uint32_t SizeDistribution::sample(Rng& rng) const {
    // Ceiling maps the continuous segment (lo, hi] onto integers such that
    // P(size <= decile_i) is exactly i/10 — the decile-exactness the
    // evaluation's bucketing relies on.
    const double x = quantile(rng.uniform());
    uint32_t size = static_cast<uint32_t>(std::ceil(x - 1e-9));
    if (quantum_ > 1) {
        size = std::max(quantum_, (size + quantum_ / 2) / quantum_ * quantum_);
    }
    return std::clamp(size, min_, deciles_[9]);
}

double SizeDistribution::meanSize() const {
    // E[size] per log-linear segment: lo * (r - 1) / ln r, r = hi/lo,
    // weighted by the segment's probability mass.
    double mean = 0.0;
    for (size_t i = 1; i < grid_.size(); i++) {
        const auto [p0, lo] = grid_[i - 1];
        const auto [p1, hi] = grid_[i];
        if (p1 <= p0) continue;
        double segMean;
        if (hi <= lo || lo <= 0) {
            segMean = hi;
        } else {
            const double r = hi / lo;
            segMean = lo * (r - 1.0) / std::log(r);
        }
        mean += (p1 - p0) * segMean;
    }
    return mean;
}

void SizeDistribution::ensureSample() const {
    // Both Monte Carlo caches build together under one once_flag so
    // concurrent sweep workers never observe a partial cache.
    std::call_once(mcOnce_, [this] {
        Rng rng(0x5EEDull ^ std::hash<std::string>{}(name_));
        mcSample_.resize(200000);
        for (auto& s : mcSample_) s = sample(rng);
        double total = 0;
        for (uint32_t s : mcSample_) {
            total += static_cast<double>(messageWireBytes(s));
        }
        cachedMeanWire_ = total / static_cast<double>(mcSample_.size());
    });
}

double SizeDistribution::meanWireBytes() const {
    ensureSample();
    return cachedMeanWire_;
}

double SizeDistribution::byteWeightedCdf(double s) const {
    ensureSample();
    double below = 0, total = 0;
    for (uint32_t sz : mcSample_) {
        total += sz;
        if (sz <= s) below += sz;
    }
    return total > 0 ? below / total : 0.0;
}

}  // namespace homa
