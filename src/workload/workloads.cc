#include "workload/workloads.h"

#include <stdexcept>

namespace homa {
namespace {

const SizeDistribution& w1() {
    // Top-decile anchors: memcached values cluster well under a few KB
    // (the ETC model); without them the log-linear tail to 16 KB would
    // push W1's mean above W2's, breaking Figure 1's ordering.
    static const SizeDistribution d(
        "W1", 1, {2, 3, 5, 11, 28, 85, 167, 291, 508, 16129},
        /*quantum=*/1,
        {{0.95, 1000}, {0.99, 3000}});
    return d;
}

// W2 and W3 carry extra top-decile anchors because their extreme tails are
// thin in the real traces: naive log-linear interpolation from the 90%
// decile to the max would put most of the *byte* mass in the extreme tail,
// contradicting facts the paper states. The anchors below were fitted so
// that, with RTTbytes ~= 9.6 KB:
//  * W2's unscheduled byte fraction is ~0.80 and it gets 6 of 8 priority
//    levels for unscheduled traffic (Figure 4's exact example);
//  * W3 splits the levels 4/4 (Figure 21) and the 2-level byte-balancing
//    cutoff lands near the paper's 1930 bytes (Figure 18).

const SizeDistribution& w2() {
    static const SizeDistribution d(
        "W2", 2, {3, 34, 58, 171, 269, 320, 366, 427, 512, 262144},
        /*quantum=*/1,
        {{0.99, 3000}, {0.999, 20000}});
    return d;
}

const SizeDistribution& w3() {
    static const SizeDistribution d(
        "W3", 24, {36, 77, 110, 158, 268, 313, 402, 573, 1755, 5114695},
        /*quantum=*/1,
        {{0.995, 6000}, {0.9995, 80000}});
    return d;
}

const SizeDistribution& w4() {
    static const SizeDistribution d(
        "W4", 256, {315, 376, 502, 561, 662, 960, 6387, 49408, 120373, 10000000});
    return d;
}

const SizeDistribution& w5() {
    // Full-packet quantized: ticks are exact multiples of 1442 bytes
    // (5, 15, 20, 35, 49, 187, 734, 1533, 8001, 20000 packets).
    static const SizeDistribution d(
        "W5", 1442,
        {7210, 21630, 28840, 50470, 70658, 269654, 1058428, 2210586, 11537442,
         28840000},
        1442);
    return d;
}

}  // namespace

const SizeDistribution& workload(WorkloadId id) {
    switch (id) {
        case WorkloadId::W1: return w1();
        case WorkloadId::W2: return w2();
        case WorkloadId::W3: return w3();
        case WorkloadId::W4: return w4();
        case WorkloadId::W5: return w5();
    }
    throw std::invalid_argument("unknown workload");
}

const char* workloadName(WorkloadId id) { return workload(id).name().c_str(); }

WorkloadId workloadFromName(const std::string& name) {
    for (WorkloadId id : kAllWorkloads) {
        if (workload(id).name() == name) return id;
    }
    throw std::invalid_argument("unknown workload: " + name);
}

}  // namespace homa
