#include "workload/rpc_dag.h"

#include <algorithm>
#include <cassert>
#include <climits>
#include <cmath>
#include <cstdlib>

namespace homa {

int64_t dagTreeNodeCount(const DagConfig& cfg) {
    int64_t total = 0;
    int64_t level = 1;
    for (int d = 1; d <= cfg.depth; d++) {
        level *= cfg.fanout;
        total += level;
        if (total > kMaxDagNodes) return kMaxDagNodes + 1;
    }
    return total;
}

const char* validateDagConfig(const DagConfig& cfg) {
    if (cfg.fanout < 1) return "fanout must be >= 1";
    if (cfg.depth < 1) return "depth must be >= 1";
    if (cfg.window < 1) return "window must be >= 1";
    if (cfg.roots < 0) return "roots must be >= 0";
    if (cfg.requestBytes < 1) return "request bytes must be >= 1";
    for (uint32_t b : cfg.stageResponseBytes) {
        if (b < 1) return "response bytes must be >= 1";
    }
    if (cfg.stragglerFraction < 0 || cfg.stragglerFraction > 1) {
        return "straggler fraction must be in [0, 1]";
    }
    if (cfg.stragglerFactor < 1) return "straggler factor must be >= 1";
    if (cfg.joinFraction < 0 || cfg.joinFraction > 1) {
        return "join fraction must be in [0, 1]";
    }
    if (dagTreeNodeCount(cfg) > kMaxDagNodes) {
        return "fanout^depth exceeds the per-tree node cap";
    }
    return nullptr;
}

int dagRootCount(const DagConfig& cfg, int hostCount) {
    if (cfg.roots <= 0) return hostCount;
    return std::min(cfg.roots, hostCount);
}

bool parseDagInt(const std::string& v, int& out) {
    if (v.empty()) return false;
    char* end = nullptr;
    const long n = std::strtol(v.c_str(), &end, 10);
    if (*end != '\0' || n < INT_MIN || n > INT_MAX) return false;
    out = static_cast<int>(n);
    return true;
}

bool parseDagBytes(const std::string& v, uint32_t& out) {
    if (v.empty()) return false;
    // strtoull accepts a leading '-' and wraps; reject signs explicitly.
    if (v[0] == '-' || v[0] == '+') return false;
    char* end = nullptr;
    const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
    if (*end != '\0' || n < 1 || n > 0xFFFFFFFFull) return false;
    out = static_cast<uint32_t>(n);
    return true;
}

bool parseDagDouble(const std::string& v, double& out) {
    if (v.empty()) return false;
    char* end = nullptr;
    const double d = std::strtod(v.c_str(), &end);
    if (*end != '\0' || !std::isfinite(d)) return false;
    out = d;
    return true;
}

bool parseDagSpec(const std::string& body, DagConfig& out) {
    DagConfig cfg;
    size_t pos = 0;
    while (pos <= body.size()) {
        const size_t comma = std::min(body.find(',', pos), body.size());
        const std::string pair = body.substr(pos, comma - pos);
        pos = comma + 1;
        const size_t eq = pair.find('=');
        if (eq == std::string::npos) return false;
        const std::string key = pair.substr(0, eq);
        const std::string val = pair.substr(eq + 1);
        if (key == "fanout") {
            if (!parseDagInt(val, cfg.fanout)) return false;
        } else if (key == "depth") {
            if (!parseDagInt(val, cfg.depth)) return false;
        } else if (key == "window") {
            if (!parseDagInt(val, cfg.window)) return false;
        } else if (key == "roots") {
            if (!parseDagInt(val, cfg.roots)) return false;
        } else if (key == "req") {
            if (!parseDagBytes(val, cfg.requestBytes)) return false;
        } else if (key == "resp") {
            cfg.stageResponseBytes.clear();
            size_t p = 0;
            while (p <= val.size()) {
                const size_t slash = std::min(val.find('/', p), val.size());
                uint32_t bytes = 0;
                if (!parseDagBytes(val.substr(p, slash - p), bytes)) return false;
                cfg.stageResponseBytes.push_back(bytes);
                p = slash + 1;
            }
        } else if (key == "straggler") {
            if (!parseDagDouble(val, cfg.stragglerFraction)) return false;
        } else if (key == "factor") {
            if (!parseDagDouble(val, cfg.stragglerFactor)) return false;
        } else if (key == "join") {
            if (!parseDagDouble(val, cfg.joinFraction)) return false;
        } else {
            return false;
        }
        if (comma == body.size()) break;
    }
    if (validateDagConfig(cfg) != nullptr) return false;
    out = cfg;
    return true;
}

DagTreeSpec sampleDagTree(
    const DagConfig& cfg, const SizeDistribution* sizes, Rng& rng,
    HostId root, const std::function<HostId(HostId, Rng&)>& pickChild) {
    assert(validateDagConfig(cfg) == nullptr);
    assert(sizes != nullptr || !cfg.stageResponseBytes.empty());
    DagTreeSpec tree;
    tree.nodes.reserve(static_cast<size_t>(dagTreeNodeCount(cfg)) + 1);
    DagNodeSpec rootNode;
    rootNode.host = root;
    tree.nodes.push_back(rootNode);

    auto respBytesFor = [&](int stage) -> uint32_t {
        if (cfg.stageResponseBytes.empty()) {
            return std::max<uint32_t>(1, sizes->sample(rng));
        }
        const size_t i = std::min<size_t>(static_cast<size_t>(stage - 1),
                                          cfg.stageResponseBytes.size() - 1);
        return cfg.stageResponseBytes[i];
    };

    // BFS level by level: children are appended contiguously, so each
    // parent records [firstChild, firstChild + childCount).
    size_t levelBegin = 0, levelEnd = 1;
    for (int stage = 1; stage <= cfg.depth; stage++) {
        for (size_t p = levelBegin; p < levelEnd; p++) {
            tree.nodes[p].firstChild = static_cast<int>(tree.nodes.size());
            tree.nodes[p].childCount = cfg.fanout;
            for (int c = 0; c < cfg.fanout; c++) {
                DagNodeSpec n;
                n.host = pickChild(tree.nodes[p].host, rng);
                assert(n.host != tree.nodes[p].host);
                n.parent = static_cast<int>(p);
                n.stage = stage;
                n.respBytes = respBytesFor(stage);
                if (stage == cfg.depth && cfg.stragglerFraction > 0 &&
                    rng.chance(cfg.stragglerFraction)) {
                    const double inflated =
                        static_cast<double>(n.respBytes) * cfg.stragglerFactor;
                    n.respBytes = static_cast<uint32_t>(std::min(
                        inflated, static_cast<double>(1u << 30)));
                }
                tree.nodes.push_back(n);
            }
        }
        levelBegin = levelEnd;
        levelEnd = tree.nodes.size();
    }

    // Join edges are sampled *after* the full tree build: joinFraction = 0
    // draws nothing, so pure-tree shapes replay byte-identically to the
    // pre-join sampler. Candidates for node i's extra parent: the previous
    // stage, minus its own parent and any node on i's host (a node never
    // queries itself).
    if (cfg.joinFraction > 0 && cfg.depth >= 2) {
        // Stages are contiguous in BFS order: stage s occupies
        // [stageFirst[s], stageFirst[s + 1]).
        std::vector<size_t> stageFirst(static_cast<size_t>(cfg.depth) + 2,
                                       tree.nodes.size());
        for (size_t i = tree.nodes.size(); i-- > 0;) {
            stageFirst[static_cast<size_t>(tree.nodes[i].stage)] = i;
        }
        std::vector<int> candidates;
        for (size_t i = 1; i < tree.nodes.size(); i++) {
            const DagNodeSpec& n = tree.nodes[i];
            if (n.stage < 2) continue;
            if (!rng.chance(cfg.joinFraction)) continue;
            candidates.clear();
            for (size_t p = stageFirst[static_cast<size_t>(n.stage) - 1];
                 p < stageFirst[static_cast<size_t>(n.stage)]; p++) {
                if (static_cast<int>(p) == n.parent) continue;
                if (tree.nodes[p].host == n.host) continue;
                candidates.push_back(static_cast<int>(p));
            }
            if (candidates.empty()) continue;
            const int extra =
                candidates[rng.below(static_cast<int>(candidates.size()))];
            tree.joins.push_back(DagJoinEdge{extra, static_cast<int>(i)});
        }
    }
    return tree;
}

std::vector<std::vector<int>> dagJoinChildren(const DagTreeSpec& tree) {
    std::vector<std::vector<int>> kids(tree.nodes.size());
    for (const DagJoinEdge& e : tree.joins) kids[e.parent].push_back(e.child);
    return kids;
}

int64_t dagTreeBytes(const DagConfig& cfg, const DagTreeSpec& tree) {
    int64_t total = 0;
    for (size_t i = 1; i < tree.nodes.size(); i++) {
        total += static_cast<int64_t>(cfg.requestBytes) + tree.nodes[i].respBytes;
    }
    for (const DagJoinEdge& e : tree.joins) {
        total += static_cast<int64_t>(cfg.requestBytes) +
                 tree.nodes[e.child].respBytes;
    }
    return total;
}

Duration dagTreeIdeal(const DagTreeSpec& tree, uint32_t requestBytes,
                      const DagCostFn& cost) {
    if (!cost) return 0;
    // Absolute-time formulation (the old relative recursion cannot express
    // a node with two parents). Forward pass: arrive[n] = earliest any
    // parent's request reaches n (parents precede children in BFS order,
    // and join parents sit one stage up, so arrive[parent] is final when
    // n is visited). Reverse pass: done[n] = time n's subtree completes =
    // max over children/join-children c of the time c's response reaches
    // n, where c answers n at max(n's request arrival at c, done[c]) plus
    // the response edge. Integer arithmetic throughout, so pure trees
    // produce bit-identical results to the old slowest-child recursion.
    const size_t count = tree.nodes.size();
    std::vector<std::vector<int>> extraParents(count);
    for (const DagJoinEdge& e : tree.joins) {
        extraParents[e.child].push_back(e.parent);
    }
    std::vector<Duration> arrive(count, 0);
    for (size_t i = 1; i < count; i++) {
        const DagNodeSpec& n = tree.nodes[i];
        Duration a = arrive[n.parent] +
                     cost(tree.nodes[n.parent].host, n.host, requestBytes);
        for (int p : extraParents[i]) {
            a = std::min(a, arrive[p] +
                                cost(tree.nodes[p].host, n.host, requestBytes));
        }
        arrive[i] = a;
    }
    std::vector<Duration> done(count, 0);
    auto foldResponse = [&](size_t child, int parent) {
        const DagNodeSpec& c = tree.nodes[child];
        const HostId parentHost = tree.nodes[parent].host;
        const Duration reqAt =
            arrive[parent] + cost(parentHost, c.host, requestBytes);
        const Duration respAt = std::max(reqAt, done[child]) +
                                cost(c.host, parentHost, c.respBytes);
        done[parent] = std::max(done[parent], respAt);
    };
    for (size_t i = count; i-- > 1;) {
        foldResponse(i, tree.nodes[i].parent);
        for (int p : extraParents[i]) foldResponse(i, p);
    }
    return done[0];
}

DagEngine::DagEngine(const DagConfig& cfg, const SizeDistribution* sizes,
                     int hostCount, EventLoop& loop, AllocIdFn allocId,
                     EmitFn emit)
    : cfg_(cfg),
      sizes_(sizes),
      hostCount_(hostCount),
      loop_(loop),
      allocId_(std::move(allocId)),
      emit_(std::move(emit)) {
    assert(validateDagConfig(cfg_) == nullptr);
    assert(hostCount_ >= 2);
    assert(allocId_ && emit_);
}

void DagEngine::issueTree(HostId root, Rng& rng) {
    const uint64_t id = nextTree_++;
    TreeState st;
    st.root = root;
    st.issued = loop_.now();
    st.spec = sampleDagTree(
        cfg_, sizes_, rng, root, [this](HostId parent, Rng& r) {
            return uniformHostExcept(hostCount_, parent, r);
        });
    st.pending.resize(st.spec.nodes.size());
    for (size_t i = 0; i < st.spec.nodes.size(); i++) {
        st.pending[i] = st.spec.nodes[i].childCount;
    }
    st.joinKids = dagJoinChildren(st.spec);
    for (const DagJoinEdge& e : st.spec.joins) st.pending[e.parent]++;
    st.fanned.assign(st.spec.nodes.size(), 0);
    st.waiting.resize(st.spec.nodes.size());
    st.bytes = dagTreeBytes(cfg_, st.spec);
    issued_++;
    TreeState& placed = trees_.emplace(id, std::move(st)).first->second;
    // The root's fan-out: requests to every stage-1 child, sent now (the
    // caller already bounced through the event loop). The root never has
    // join children (their extra parents sit at stage >= 1).
    placed.fanned[0] = 1;
    const DagNodeSpec& rootNode = placed.spec.nodes[0];
    for (int c = 0; c < rootNode.childCount; c++) {
        sendRequest(id, placed, rootNode.firstChild + c, /*parent=*/0);
    }
}

void DagEngine::send(uint64_t tree, int node, int parent, bool response,
                     HostId src, HostId dst, uint32_t bytes) {
    Message m;
    m.id = allocId_();
    m.src = src;
    m.dst = dst;
    m.length = bytes;
    // Register before emitting so creation-time observers can resolve it.
    byMsg_.emplace(m.id, MsgRole{tree, node, parent, response});
    emit_(m);
}

void DagEngine::sendRequest(uint64_t tree, TreeState& st, int node,
                            int parent) {
    const DagNodeSpec& n = st.spec.nodes[node];
    send(tree, node, parent, /*response=*/false, st.spec.nodes[parent].host,
         n.host, cfg_.requestBytes);
}

void DagEngine::sendResponse(uint64_t tree, TreeState& st, int node,
                             int parent) {
    const DagNodeSpec& n = st.spec.nodes[node];
    send(tree, node, parent, /*response=*/true, n.host,
         st.spec.nodes[parent].host, n.respBytes);
}

void DagEngine::onDelivered(const Message& m) {
    const auto it = byMsg_.find(m.id);
    if (it == byMsg_.end()) return;  // not one of ours
    const MsgRole role = it->second;
    byMsg_.erase(it);
    const auto treeIt = trees_.find(role.tree);
    assert(treeIt != trees_.end());
    TreeState& st = treeIt->second;

    if (!role.response) {
        // Request arrived at the node. Bounce through the loop so nothing
        // is emitted from inside the transport's delivery callback (and to
        // model a minimal software hand-off).
        loop_.after(1, [this, tree = role.tree, node = role.node,
                        parent = role.parent] {
            onRequestAt(tree, node, parent);
        });
        return;
    }
    // Response delivered at the parent it was addressed to: fan-in
    // accounting there (a join child decrements each parent once, via its
    // per-parent response).
    nodeAnswered(role.tree, st, role.parent);
}

void DagEngine::onRequestAt(uint64_t tree, int node, int parent) {
    const auto tIt = trees_.find(tree);
    assert(tIt != trees_.end());
    TreeState& ts = tIt->second;
    const DagNodeSpec& n = ts.spec.nodes[node];
    if (n.childCount == 0) {
        // Leaves answer every requesting parent immediately.
        sendResponse(tree, ts, node, parent);
        return;
    }
    if (!ts.fanned[node]) {
        // First request triggers the (single) fan-out: own children plus
        // any join children this node is the extra parent of. The
        // requesting parent waits for the subtree.
        ts.fanned[node] = 1;
        ts.waiting[node].push_back(parent);
        for (int c = 0; c < n.childCount; c++) {
            sendRequest(tree, ts, n.firstChild + c, node);
        }
        for (int jc : ts.joinKids[node]) {
            sendRequest(tree, ts, jc, node);
        }
        return;
    }
    if (ts.pending[node] == 0) {
        // Subtree already complete (a later parent's request arrived after
        // the fan-in finished): answer from the completed state.
        sendResponse(tree, ts, node, parent);
        return;
    }
    ts.waiting[node].push_back(parent);
}

void DagEngine::nodeAnswered(uint64_t tree, TreeState& st, int node) {
    assert(st.pending[node] > 0);
    if (--st.pending[node] > 0) return;
    if (node == 0) {
        // The last stage-1 response reached the root: the tree is done.
        DagTreeResult r;
        r.root = st.root;
        r.issued = st.issued;
        r.completed = loop_.now();
        r.nodes = static_cast<int>(st.spec.nodes.size()) - 1;
        r.bytes = st.bytes;
        r.ideal = dagTreeIdeal(st.spec, cfg_.requestBytes, cost_);
        completed_++;
        trees_.erase(tree);
        if (onComplete_) onComplete_(r);
        return;
    }
    // All children (and join children) answered: answer every parent
    // whose request has arrived so far; any parent requesting later gets
    // answered straight from onRequestAt's completed-subtree branch.
    loop_.after(1, [this, tree, node] {
        const auto tIt = trees_.find(tree);
        assert(tIt != trees_.end());
        TreeState& ts = tIt->second;
        for (int parent : ts.waiting[node]) {
            sendResponse(tree, ts, node, parent);
        }
        ts.waiting[node].clear();
    });
}

std::optional<DagEngine::MsgRole> DagEngine::roleOf(MsgId id) const {
    const auto it = byMsg_.find(id);
    if (it == byMsg_.end()) return std::nullopt;
    return it->second;
}

const DagTreeSpec* DagEngine::treeSpec(uint64_t tree) const {
    const auto it = trees_.find(tree);
    return it == trees_.end() ? nullptr : &it->second.spec;
}

}  // namespace homa
