// Multi-tenant RPC serving: tenants, replica groups, load balancing.
//
// The paper's motivating deployments are serving systems: many client
// fleets (tenants) issuing RPCs against shared, replicated server tiers.
// `runRpcExperiment` models this when `RpcExperimentConfig::serving` is
// populated: each `TenantConfig` owns a client subset with its own
// workload mix and arrival mode (open-loop Poisson or closed-loop
// window + think time), and sends to a named `ReplicaGroupConfig` — a
// server pool fronted by a pluggable load-balancing policy and an
// optional SLO-aware hedge (re-issue to a second replica once an RPC
// outlives a latency percentile; first response wins, the loser is
// cancelled on the RPC retry path).
//
// `ReplicaSelector` is the load-balancing seam. Selection is a pure
// function of (seed, tenant, per-tenant RPC sequence number) — plus, for
// power-of-two-choices, the outstanding-RPC depth the harness feeds in,
// which is itself deterministic — so serving runs replay byte-for-byte
// from the seed like everything else in the repo.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/random.h"
#include "sim/time.h"
#include "workload/workloads.h"

namespace homa {

/// Replica choice policy of a group.
enum class LbPolicy {
    RoundRobin,  // seeded fair permutation, cycled per tenant
    Random,      // independent hash-uniform pick per RPC
    PowerOfTwo,  // two hash-uniform candidates, least outstanding wins
};

/// Canonical names: "rr", "random", "p2c".
const char* lbPolicyName(LbPolicy p);
/// Parses a policy name; returns false leaving `out` untouched on
/// unknown names.
bool lbPolicyFromName(const std::string& name, LbPolicy& out);

/// How a tenant's clients issue requests.
enum class ArrivalMode {
    Open,    // Poisson arrivals calibrated to TenantConfig::load
    Closed,  // TenantConfig::window outstanding, think time between refills
};

/// Canonical names: "open", "closed".
const char* arrivalModeName(ArrivalMode m);
bool arrivalModeFromName(const std::string& name, ArrivalMode& out);

/// A named server pool with a load-balancing policy and optional hedging.
struct ReplicaGroupConfig {
    std::string name = "pool";
    /// Servers in this group. Groups carve the server pool (hosts past
    /// the clients) in declaration order; 0 = all remaining servers
    /// (only legal for the last group).
    int replicas = 0;
    LbPolicy policy = LbPolicy::Random;

    /// SLO-aware hedging: 0 = off; p in (0, 1) re-issues an RPC to a
    /// second replica once it outlives the tenant's observed latency
    /// percentile p. First response wins; the loser is cancelled.
    double hedgePercentile = 0;
    /// Hedge delay never drops below this (early samples are noisy).
    Duration hedgeFloor = microseconds(20);
    /// Completed RPCs a tenant must observe before its hedges arm.
    int hedgeMinSamples = 32;

    bool hedging() const { return hedgePercentile > 0; }
};

/// One tenant: a client fleet with its own workload mix and arrival mode.
struct TenantConfig {
    std::string name = "tenant";
    WorkloadId workload = WorkloadId::W3;
    ArrivalMode mode = ArrivalMode::Open;
    double load = 0.5;       ///< open mode: per-client offered load fraction
    int window = 4;          ///< closed mode: RPCs kept outstanding per client
    Duration think = 0;      ///< closed mode: mean exponential think time
    int clients = 2;         ///< client hosts owned by this tenant
    std::string group;       ///< replica group name; empty = first group
};

/// The full serving shape: tenants plus the replica groups they target.
/// An empty tenant list disables serving mode entirely.
struct ServingConfig {
    std::vector<TenantConfig> tenants;
    /// Empty = one implicit group ("pool", all servers, random policy).
    std::vector<ReplicaGroupConfig> groups;

    bool enabled() const { return !tenants.empty(); }
    int totalClients() const;
    /// Groups with the implicit default filled in when `groups` is empty.
    std::vector<ReplicaGroupConfig> effectiveGroups() const;
};

/// A group resolved onto the server pool: servers
/// [first, first + count) counted from the first server host.
struct ResolvedGroup {
    int first = 0;
    int count = 0;
};

/// Carves `servers` server hosts into the config's effective groups in
/// declaration order. Returns false with a reason in *err when the pool
/// is too small or a non-final group asks for "the rest".
bool resolveReplicaGroups(const ServingConfig& cfg, int servers,
                          std::vector<ResolvedGroup>& out, std::string* err);

/// Index into effectiveGroups() of the group tenant `t` targets, or -1
/// when the name resolves to nothing.
int tenantGroupIndex(const ServingConfig& cfg, const TenantConfig& t);

/// Returns "" when the config is coherent for a cluster of `hostCount`
/// hosts, else a human-readable reason (duplicate names, dangling group
/// references, per-field range violations, or a pool that does not fit).
std::string validateServingConfig(const ServingConfig& cfg, int hostCount);

/// Parses the body of a "tenants:<body>" spec segment / --tenants flag:
/// ';'-separated tenants, each comma-separated k=v with keys
///   name, wl (W1..W5), mode (open|closed), load, window, think_us,
///   clients, group.
/// Returns false leaving `out` untouched, with a reason in *err.
bool parseTenantsSpec(const std::string& body, std::vector<TenantConfig>& out,
                      std::string* err = nullptr);

/// Parses the body of a "replicas:<body>" spec segment / --replicas flag:
/// ';'-separated groups, each comma-separated k=v with keys
///   name, n (replica count; 0 = rest), lb (rr|random|p2c),
///   hedge (off or pNN, e.g. p95), hedge_floor_us, hedge_min.
bool parseReplicasSpec(const std::string& body,
                       std::vector<ReplicaGroupConfig>& out,
                       std::string* err = nullptr);

/// Canonical spec bodies (parse(print(x)) == x); the round-trip the spec
/// grammar tests pin.
std::string tenantsSpecToString(const std::vector<TenantConfig>& tenants);
std::string replicasSpecToString(const std::vector<ReplicaGroupConfig>& groups);

/// Replica choice for one (tenant, group) pair. Stateless: every pick is
/// a pure function of (seed, tenant, rpcSeq), so replays and sweeps see
/// identical selections regardless of call interleaving.
class ReplicaSelector {
public:
    /// Outstanding-RPC depth of group-local replica r, fed by the harness.
    using DepthFn = std::function<int(int)>;

    ReplicaSelector(LbPolicy policy, int replicas, uint64_t seed, int tenant);

    /// Group-local replica for the tenant's `rpcSeq`-th RPC. `depth` is
    /// only consulted by PowerOfTwo (pass {} for the other policies).
    int pick(uint64_t rpcSeq, const DepthFn& depth) const;

    /// The hedge target for `rpcSeq`: uniform over the group excluding
    /// `primary`. Requires replicas >= 2.
    int pickHedge(uint64_t rpcSeq, int primary) const;

    /// PowerOfTwo's two sampled candidates for `rpcSeq` (distinct when
    /// replicas >= 2); exposed so the property tests can check that
    /// pick() never returns a replica deeper than both.
    std::pair<int, int> candidates(uint64_t rpcSeq) const;

    int replicas() const { return replicas_; }
    LbPolicy policy() const { return policy_; }

private:
    uint64_t draw(uint64_t salt, uint64_t rpcSeq) const;

    LbPolicy policy_;
    int replicas_;
    uint64_t base_;
    std::vector<int> perm_;  // RoundRobin's seeded fair permutation
};

}  // namespace homa
