// Traffic generation (§5.2 methodology), scenario-aware.
//
// Three arrival modes, selected by the scenario:
//  * Open loop (the paper): each host creates one-way messages according
//    to a Poisson process; sizes come from the chosen workload;
//    destinations and per-host rate weights come from the scenario's
//    `TrafficPattern` (uniform by default). Arrival rates are calibrated
//    so the aggregate offered load is the requested fraction of total
//    host-link bandwidth, counting on-the-wire bytes — weights are
//    normalized, so the aggregate is pattern-independent. With
//    `ScenarioConfig::onOff` enabled, each host's Poisson process runs on
//    its ON-time clock at rate base/dutyCycle: bursts transmit well above
//    the average rate, idle periods are silent, and the long-run offered
//    load stays calibrated.
//  * Closed loop (`TrafficPatternKind::ClosedLoop`): each host keeps a
//    window of `closedLoopWindow` messages outstanding and issues the
//    next one only when the driver reports a delivery via `onDelivered()`
//    (optional exponential think time; ON-OFF gates issue times). Offered
//    load is endogenous — `TrafficConfig::load` is ignored.
//  * Trace replay: bypasses the Poisson process and replays an explicit
//    (time, src, dst, size) schedule.
//
// `TrafficPatternKind::Dag` is closed-loop over *trees*: each root host
// keeps `ScenarioConfig::dag.window` fan-out/fan-in request trees
// outstanding (see workload/rpc_dag.h), the per-message cascade is driven
// by `onDelivered()`, and a completed tree refills the root's window
// (ON-OFF gates tree issues exactly like closed-loop message issues).
#pragma once

#include <functional>

#include "sim/network.h"
#include "workload/rpc_dag.h"
#include "workload/scenario.h"
#include "workload/workloads.h"

namespace homa {

struct TrafficConfig {
    WorkloadId workload = WorkloadId::W3;
    double load = 0.8;        // fraction of aggregate host-link bandwidth
    uint64_t seed = 99;
    Time start = 0;
    Time stop = milliseconds(10);  // stop *generating* at this time
    ScenarioConfig scenario;
};

class TrafficGenerator {
public:
    /// `onCreate` (optional) observes every generated message.
    TrafficGenerator(Network& net, TrafficConfig cfg,
                     std::function<void(const Message&)> onCreate = nullptr);

    /// Schedule the generation processes on the network's event loop.
    void start();

    /// Closed-loop feed: the driver calls this for every delivered
    /// message (a no-op in open-loop and trace modes). The source host's
    /// window frees a slot and, before `stop`, the next message is issued
    /// after the optional think time (and ON-OFF gating).
    void onDelivered(const Message& m);

    /// Totals, summed over hosts; call after the run (the per-host cells
    /// are written from each source host's shard while it runs).
    uint64_t generatedMessages() const {
        uint64_t n = 0;
        for (uint64_t v : perHostGenerated_) n += v;
        return n;
    }
    int64_t generatedBytes() const {
        int64_t n = 0;
        for (int64_t v : perHostGeneratedBytes_) n += v;
        return n;
    }

    /// Mean interarrival time for a weight-1 host (0 for trace replay and
    /// closed loop).
    Duration meanInterarrival() const { return meanGap_; }

    /// Closed loop: the highest outstanding count any host ever reached
    /// (never exceeds `closedLoopWindow` — tested invariant). Dag mode:
    /// the analogous peak count of outstanding *trees*. 0 otherwise.
    int maxOutstanding() const { return maxOutstanding_; }

    /// The scenario's pattern (null for trace replay).
    const TrafficPattern* pattern() const { return pattern_.get(); }

    /// Dag mode only (null otherwise): the tree orchestrator, exposed for
    /// the fan-in semantics tests.
    const DagEngine* dag() const { return dag_.get(); }

    /// Dag mode: inject the unloaded-edge cost used for per-tree slowdown
    /// (the driver wraps its Oracle). Call before start().
    void setDagCost(DagCostFn cost);

    /// Dag mode: observe every completed tree (after the generator's own
    /// window refill accounting). Call before start().
    void setOnTreeComplete(std::function<void(const DagTreeResult&)> fn) {
        onTreeComplete_ = std::move(fn);
    }

private:
    bool closedLoop() const {
        return cfg_.scenario.kind == TrafficPatternKind::ClosedLoop;
    }
    bool dagMode() const {
        return cfg_.scenario.kind == TrafficPatternKind::Dag;
    }
    void scheduleNext(HostId h);           // open loop, unmodulated
    void scheduleNextModulated(HostId h);  // open loop, ON-OFF
    void issueClosedLoop(HostId h);        // closed loop (applies gating)
    void issueDagTree(HostId h);           // dag (applies gating)
    void emit(Message m);

    Network& net_;
    TrafficConfig cfg_;
    const SizeDistribution& dist_;
    std::function<void(const Message&)> onCreate_;
    std::unique_ptr<TrafficPattern> pattern_;
    std::vector<double> gaps_;       // per-host mean interarrival (0 = mute)
    std::vector<TraceRecord> trace_;
    Duration meanGap_ = 0;
    std::vector<Rng> rngs_;  // one independent stream per host
    std::vector<OnOffModulator> onoff_;  // one per host when enabled
    std::vector<int> outstanding_;       // closed loop/dag: in-flight per host
    std::unique_ptr<DagEngine> dag_;     // dag mode only
    std::function<void(const DagTreeResult&)> onTreeComplete_;
    int dagRoots_ = 0;                   // dag mode: hosts [0, dagRoots_)
    int maxOutstanding_ = 0;
    // Cell h is only touched by host h's shard (emit runs on the source
    // host's loop), so open-loop generation needs no synchronization.
    std::vector<uint64_t> perHostGenerated_;
    std::vector<int64_t> perHostGeneratedBytes_;
};

}  // namespace homa
