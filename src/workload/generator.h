// Open-loop traffic generation (§5.2 methodology), scenario-aware.
//
// For Poisson scenarios, each host creates new one-way messages according
// to a Poisson process; sizes come from the chosen workload; destinations
// and per-host rate weights come from the scenario's `TrafficPattern`
// (uniform by default). The arrival rates are calibrated so the aggregate
// offered load is the requested fraction of total host-link bandwidth,
// counting on-the-wire bytes of goodput data packets (payload + headers +
// framing) — weights are normalized, so the aggregate is
// pattern-independent. A TraceReplay scenario bypasses the Poisson process
// and replays an explicit (time, src, dst, size) schedule.
#pragma once

#include <functional>

#include "sim/network.h"
#include "workload/scenario.h"
#include "workload/workloads.h"

namespace homa {

struct TrafficConfig {
    WorkloadId workload = WorkloadId::W3;
    double load = 0.8;        // fraction of aggregate host-link bandwidth
    uint64_t seed = 99;
    Time start = 0;
    Time stop = milliseconds(10);  // stop *generating* at this time
    ScenarioConfig scenario;
};

class TrafficGenerator {
public:
    /// `onCreate` (optional) observes every generated message.
    TrafficGenerator(Network& net, TrafficConfig cfg,
                     std::function<void(const Message&)> onCreate = nullptr);

    /// Schedule the generation processes on the network's event loop.
    void start();

    uint64_t generatedMessages() const { return generated_; }
    int64_t generatedBytes() const { return generatedBytes_; }

    /// Mean interarrival time for a weight-1 host (0 for trace replay).
    Duration meanInterarrival() const { return meanGap_; }

    /// The scenario's pattern (null for trace replay).
    const TrafficPattern* pattern() const { return pattern_.get(); }

private:
    void scheduleNext(HostId h);
    void emit(Message m);

    Network& net_;
    TrafficConfig cfg_;
    const SizeDistribution& dist_;
    std::function<void(const Message&)> onCreate_;
    std::unique_ptr<TrafficPattern> pattern_;
    std::vector<double> gaps_;       // per-host mean interarrival (0 = mute)
    std::vector<TraceRecord> trace_;
    Duration meanGap_ = 0;
    std::vector<Rng> rngs_;  // one independent stream per host
    uint64_t generated_ = 0;
    int64_t generatedBytes_ = 0;
};

}  // namespace homa
