// Open-loop Poisson traffic generation (§5.2 methodology).
//
// Each host creates new one-way messages according to a Poisson process;
// sizes come from the chosen workload; destinations are uniform over the
// other hosts. The per-host arrival rate is calibrated so the aggregate
// offered load is the requested fraction of total host-link bandwidth,
// counting on-the-wire bytes of goodput data packets (payload + headers +
// framing).
#pragma once

#include <functional>

#include "sim/network.h"
#include "workload/workloads.h"

namespace homa {

struct TrafficConfig {
    WorkloadId workload = WorkloadId::W3;
    double load = 0.8;        // fraction of aggregate host-link bandwidth
    uint64_t seed = 99;
    Time start = 0;
    Time stop = milliseconds(10);  // stop *generating* at this time
};

class TrafficGenerator {
public:
    /// `onCreate` (optional) observes every generated message.
    TrafficGenerator(Network& net, TrafficConfig cfg,
                     std::function<void(const Message&)> onCreate = nullptr);

    /// Schedule the generation processes on the network's event loop.
    void start();

    uint64_t generatedMessages() const { return generated_; }
    int64_t generatedBytes() const { return generatedBytes_; }

    /// Mean interarrival time per host for this config.
    Duration meanInterarrival() const { return meanGap_; }

private:
    void scheduleNext(HostId h);

    Network& net_;
    TrafficConfig cfg_;
    const SizeDistribution& dist_;
    std::function<void(const Message&)> onCreate_;
    Duration meanGap_ = 0;
    std::vector<Rng> rngs_;  // one independent stream per host
    uint64_t generated_ = 0;
    int64_t generatedBytes_ = 0;
};

}  // namespace homa
