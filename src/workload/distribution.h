// Message-size distributions.
//
// The paper's evaluation buckets every result by the deciles of each
// workload's message-size CDF (the x-axis ticks of Figures 8-13). We define
// each workload by exactly those decile points and interpolate
// log-linearly in between: within decile bucket i, a size is
// lo * (hi/lo)^f with f uniform in [0,1). This matches the printed deciles
// exactly — i.e., matches the workload at every point where the paper
// measures it.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "sim/random.h"

namespace homa {

class SizeDistribution {
public:
    /// Extra quantile anchor: the size at cumulative probability p. Used to
    /// shape the top decile, whose byte mass log-linear interpolation would
    /// otherwise grossly overstate (the real traces have thin extreme
    /// tails; see workloads.cc for how each workload's anchors were fixed
    /// against facts the paper states).
    struct Anchor {
        double p;
        uint32_t size;
    };

    /// `deciles` holds the 10%,20%,...,100% quantiles (10 ascending values).
    /// `minSize` is the smallest possible message. If `quantum` > 1, sizes
    /// are rounded to multiples of it (W5's full-packet quantization).
    SizeDistribution(std::string name, uint32_t minSize,
                     std::array<uint32_t, 10> deciles, uint32_t quantum = 1,
                     std::vector<Anchor> anchors = {});

    const std::string& name() const { return name_; }
    const std::array<uint32_t, 10>& deciles() const { return deciles_; }
    uint32_t minSize() const { return min_; }
    uint32_t maxSize() const { return deciles_[9]; }

    /// Sample one message size.
    uint32_t sample(Rng& rng) const;

    /// Quantile of the continuous model (p in [0,1]).
    double quantile(double p) const;

    /// CDF of the continuous model (fraction of messages <= size).
    double cdf(double size) const;

    /// Mean message size of the continuous model (closed form per segment).
    double meanSize() const;

    /// Mean on-the-wire bytes per message (payload + per-packet header and
    /// framing overhead), computed by deterministic Monte Carlo. Used for
    /// load calibration.
    double meanWireBytes() const;

    /// Fraction of all *bytes* that belong to messages with size <= s
    /// (byte-weighted CDF, lower graph of Figure 1). Monte Carlo estimate.
    double byteWeightedCdf(double s) const;

private:
    std::string name_;
    uint32_t min_;
    std::array<uint32_t, 10> deciles_;
    uint32_t quantum_;
    // Merged breakpoint grid: (cumulative probability, size), ascending,
    // starting at (0, min) and ending at (1, max).
    std::vector<std::pair<double, double>> grid_;
    // Cached Monte Carlo aggregates (computed lazily, deterministic seed).
    // Guarded by a once_flag: the workload singletons are shared across
    // sweep worker threads, and the caches must build exactly once.
    mutable std::once_flag mcOnce_;
    mutable double cachedMeanWire_ = -1.0;
    mutable std::vector<uint32_t> mcSample_;
    void ensureSample() const;
};

/// Wire bytes for a message of `len` payload bytes (sum over its packets).
int64_t messageWireBytes(int64_t len);

}  // namespace homa
