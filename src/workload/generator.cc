#include "workload/generator.h"

#include <cassert>
#include <cmath>

namespace homa {

TrafficGenerator::TrafficGenerator(Network& net, TrafficConfig cfg,
                                   std::function<void(const Message&)> onCreate)
    : net_(net),
      cfg_(cfg),
      dist_(workload(cfg.workload)),
      onCreate_(std::move(onCreate)) {
    Rng master(cfg_.seed);
    rngs_.reserve(net_.hostCount());
    for (int h = 0; h < net_.hostCount(); h++) rngs_.push_back(master.fork());

    if (cfg_.scenario.kind == TrafficPatternKind::TraceReplay) {
        trace_ = !cfg_.scenario.traceText.empty()
                     ? parseTrace(cfg_.scenario.traceText, net_.hostCount())
                     : loadTraceFile(cfg_.scenario.tracePath, net_.hostCount());
        return;
    }

    assert(cfg_.load > 0 && cfg_.load <= 1.5);  // >1 allowed for overload tests
    // load = (wire bytes/message) / (interarrival * link rate)
    //   => mean gap = meanWireBytes * psPerByte / load for a weight-1 host.
    const double psPerByte =
        static_cast<double>(net_.config().hostLink.psPerByte);
    meanGap_ = static_cast<Duration>(
        std::llround(dist_.meanWireBytes() * psPerByte / cfg_.load));

    // The pattern's own randomness (permutation, popularity ranks) derives
    // from the master stream, after the per-host forks, so adding a pattern
    // never perturbs the per-host arrival streams of other scenarios.
    pattern_ = makeTrafficPattern(cfg_.scenario, net_.hostCount(),
                                  net_.config().hostsPerRack, master.next());

    // Normalize weights so their sum is hostCount: the aggregate arrival
    // rate (and thus offered load) is then independent of the pattern.
    // Water-fill on top of that: a sender cannot offer more than its line
    // rate (fraction 1.0; or `load` itself when load > 1, so overload
    // experiments stay uniform overloads), so weights clamp at `cap` and
    // the excess redistributes over the unclamped hosts. A no-op for
    // patterns whose weights are all equal.
    const int n = net_.hostCount();
    const double cap = std::max(1.0, cfg_.load) / cfg_.load;
    std::vector<double> raw(n), weight(n, 0.0);
    for (HostId h = 0; h < n; h++) {
        raw[h] = pattern_->senderWeight(h);
        assert(raw[h] >= 0);
    }
    std::vector<bool> atCap(n, false);
    int clamped = 0;
    while (clamped < n) {
        double freeRaw = 0;
        for (HostId h = 0; h < n; h++) {
            if (!atCap[h]) freeRaw += raw[h];
        }
        const double budget = static_cast<double>(n) - cap * clamped;
        // Undistributable budget (every positive-weight sender capped):
        // the requested aggregate is infeasible; offer what the caps allow.
        if (freeRaw <= 0 || budget <= 0) break;
        const double scale = budget / freeRaw;
        bool newlyClamped = false;
        for (HostId h = 0; h < n; h++) {
            if (atCap[h]) continue;
            if (raw[h] * scale > cap) {
                atCap[h] = true;
                weight[h] = cap;
                clamped++;
                newlyClamped = true;
            } else {
                weight[h] = raw[h] * scale;
            }
        }
        if (!newlyClamped) break;
    }
    gaps_.assign(n, 0.0);
    for (HostId h = 0; h < n; h++) {
        gaps_[h] = weight[h] > 0 ? toSeconds(meanGap_) / weight[h] : 0.0;
    }
}

void TrafficGenerator::start() {
    if (cfg_.scenario.kind == TrafficPatternKind::TraceReplay) {
        for (const TraceRecord& rec : trace_) {
            const Time at = cfg_.start + rec.at;
            if (at >= cfg_.stop) break;  // trace_ is time-sorted
            net_.loop().at(at, [this, rec] {
                Message m;
                m.id = net_.nextMsgId();
                m.src = rec.src;
                m.dst = rec.dst;
                m.length = rec.size;
                emit(m);
            });
        }
        return;
    }
    for (HostId h = 0; h < net_.hostCount(); h++) {
        if (gaps_[h] <= 0) continue;  // pattern muted this sender
        // Random phase so hosts don't fire in lockstep at t=start.
        const Duration phase = static_cast<Duration>(
            rngs_[h].exponential(gaps_[h]) * static_cast<double>(kSecond));
        net_.loop().at(cfg_.start + phase, [this, h] { scheduleNext(h); });
    }
}

void TrafficGenerator::emit(Message m) {
    net_.sendMessage(m);
    m.created = net_.loop().now();
    generated_++;
    generatedBytes_ += m.length;
    if (onCreate_) onCreate_(m);
}

void TrafficGenerator::scheduleNext(HostId h) {
    if (net_.loop().now() >= cfg_.stop) return;

    Message m;
    m.id = net_.nextMsgId();
    m.src = h;
    m.dst = pattern_->pickDestination(h, rngs_[h]);
    assert(m.dst != h);
    m.length = dist_.sample(rngs_[h]);
    emit(m);

    const Duration gap = static_cast<Duration>(
        rngs_[h].exponential(gaps_[h]) * static_cast<double>(kSecond));
    net_.loop().after(std::max<Duration>(1, gap), [this, h] { scheduleNext(h); });
}

}  // namespace homa
