#include "workload/generator.h"

#include <cassert>
#include <cmath>

namespace homa {

TrafficGenerator::TrafficGenerator(Network& net, TrafficConfig cfg,
                                   std::function<void(const Message&)> onCreate)
    : net_(net),
      cfg_(cfg),
      dist_(workload(cfg.workload)),
      onCreate_(std::move(onCreate)) {
    Rng master(cfg_.seed);
    rngs_.reserve(net_.hostCount());
    for (int h = 0; h < net_.hostCount(); h++) rngs_.push_back(master.fork());
    perHostGenerated_.assign(net_.hostCount(), 0);
    perHostGeneratedBytes_.assign(net_.hostCount(), 0);

    if (cfg_.scenario.kind == TrafficPatternKind::TraceReplay) {
        trace_ = !cfg_.scenario.traceText.empty()
                     ? parseTrace(cfg_.scenario.traceText, net_.hostCount())
                     : loadTraceFile(cfg_.scenario.tracePath, net_.hostCount());
        return;
    }

    // The pattern's own randomness (permutation, popularity ranks) derives
    // from the master stream, after the per-host forks, so adding a pattern
    // never perturbs the per-host arrival streams of other scenarios.
    // (Keep the master-stream call order fixed: forks, then the pattern
    // seed, then any ON-OFF modulator seeds.)
    pattern_ = makeTrafficPattern(cfg_.scenario, net_.hostCount(),
                                  net_.config().hostsPerRack, master.next());

    if (closedLoop()) {
        assert(cfg_.scenario.closedLoopWindow >= 1);
        outstanding_.assign(net_.hostCount(), 0);
    } else if (dagMode()) {
        assert(validateDagConfig(cfg_.scenario.dag) == nullptr);
        dagRoots_ = dagRootCount(cfg_.scenario.dag, net_.hostCount());
        outstanding_.assign(dagRoots_, 0);
        dag_ = std::make_unique<DagEngine>(
            cfg_.scenario.dag, &dist_, net_.hostCount(), net_.loop(),
            [this] { return net_.nextMsgId(); },
            [this](const Message& m) { emit(m); });
        dag_->setOnComplete([this](const DagTreeResult& r) {
            assert(r.root >= 0 && r.root < dagRoots_);
            assert(outstanding_[r.root] > 0);
            outstanding_[r.root]--;
            if (onTreeComplete_) onTreeComplete_(r);
            if (net_.loop().now() >= cfg_.stop) return;
            // Refill the root's slot; bounce through the event loop so the
            // next tree is not issued from inside the delivery callback.
            const HostId h = r.root;
            net_.loop().after(1, [this, h] { issueDagTree(h); });
        });
    } else {
        assert(cfg_.load > 0 && cfg_.load <= 1.5);  // >1 allowed for overload
        // load = (wire bytes/message) / (interarrival * link rate)
        //   => mean gap = meanWireBytes * psPerByte / load for weight 1.
        const double psPerByte =
            static_cast<double>(net_.config().hostLink.psPerByte);
        meanGap_ = static_cast<Duration>(
            std::llround(dist_.meanWireBytes() * psPerByte / cfg_.load));

        // Normalize weights so their sum is hostCount: the aggregate
        // arrival rate (and thus offered load) is then independent of the
        // pattern. Water-fill on top of that: a sender cannot offer more
        // than its line rate (fraction 1.0; or `load` itself when load > 1,
        // so overload experiments stay uniform overloads), so weights clamp
        // at `cap` and the excess redistributes over the unclamped hosts.
        // A no-op for patterns whose weights are all equal.
        const int n = net_.hostCount();
        const double cap = std::max(1.0, cfg_.load) / cfg_.load;
        std::vector<double> raw(n), weight(n, 0.0);
        for (HostId h = 0; h < n; h++) {
            raw[h] = pattern_->senderWeight(h);
            assert(raw[h] >= 0);
        }
        std::vector<bool> atCap(n, false);
        int clamped = 0;
        while (clamped < n) {
            double freeRaw = 0;
            for (HostId h = 0; h < n; h++) {
                if (!atCap[h]) freeRaw += raw[h];
            }
            const double budget = static_cast<double>(n) - cap * clamped;
            // Undistributable budget (every positive-weight sender capped):
            // the requested aggregate is infeasible; offer what caps allow.
            if (freeRaw <= 0 || budget <= 0) break;
            const double scale = budget / freeRaw;
            bool newlyClamped = false;
            for (HostId h = 0; h < n; h++) {
                if (atCap[h]) continue;
                if (raw[h] * scale > cap) {
                    atCap[h] = true;
                    weight[h] = cap;
                    clamped++;
                    newlyClamped = true;
                } else {
                    weight[h] = raw[h] * scale;
                }
            }
            if (!newlyClamped) break;
        }
        gaps_.assign(n, 0.0);
        for (HostId h = 0; h < n; h++) {
            gaps_[h] = weight[h] > 0 ? toSeconds(meanGap_) / weight[h] : 0.0;
        }
    }

    if (cfg_.scenario.onOff.enabled) {
        onoff_.reserve(net_.hostCount());
        for (int h = 0; h < net_.hostCount(); h++) {
            onoff_.emplace_back(cfg_.scenario.onOff, cfg_.start, master.next());
        }
    }
}

void TrafficGenerator::start() {
    if (cfg_.scenario.kind == TrafficPatternKind::TraceReplay) {
        for (const TraceRecord& rec : trace_) {
            const Time at = cfg_.start + rec.at;
            if (at >= cfg_.stop) break;  // trace_ is time-sorted
            net_.loopFor(rec.src).at(at, [this, rec] {
                Message m;
                m.id = net_.nextMsgId(rec.src);
                m.src = rec.src;
                m.dst = rec.dst;
                m.length = rec.size;
                emit(m);
            });
        }
        return;
    }
    if (closedLoop()) {
        // Prime every host's window. Slots get a small random stagger so
        // the cluster doesn't fire hostCount * W messages in lockstep at
        // t=start (ON-OFF gating, applied inside issueClosedLoop, then
        // pushes gated slots to each host's first burst).
        for (HostId h = 0; h < net_.hostCount(); h++) {
            for (int w = 0; w < cfg_.scenario.closedLoopWindow; w++) {
                const Duration jitter = static_cast<Duration>(
                    rngs_[h].uniform() * static_cast<double>(microseconds(5)));
                net_.loop().at(cfg_.start + jitter,
                               [this, h] { issueClosedLoop(h); });
            }
        }
        return;
    }
    if (dagMode()) {
        // Prime every root's tree window, staggered like closed loop.
        for (HostId h = 0; h < dagRoots_; h++) {
            for (int w = 0; w < cfg_.scenario.dag.window; w++) {
                const Duration jitter = static_cast<Duration>(
                    rngs_[h].uniform() * static_cast<double>(microseconds(5)));
                net_.loop().at(cfg_.start + jitter,
                               [this, h] { issueDagTree(h); });
            }
        }
        return;
    }
    for (HostId h = 0; h < net_.hostCount(); h++) {
        if (gaps_[h] <= 0) continue;  // pattern muted this sender
        if (!onoff_.empty()) {
            // The first arrival falls out of the ON-clock process itself
            // (advance() from the stationary initial phase), so no extra
            // phase draw is needed.
            scheduleNextModulated(h);
            continue;
        }
        // Random phase so hosts don't fire in lockstep at t=start.
        const Duration phase = exponentialDuration(rngs_[h], gaps_[h]);
        net_.loopFor(h).at(cfg_.start + phase, [this, h] { scheduleNext(h); });
    }
}

void TrafficGenerator::emit(Message m) {
    net_.sendMessage(m);
    m.created = net_.loopFor(m.src).now();
    perHostGenerated_[m.src]++;
    perHostGeneratedBytes_[m.src] += m.length;
    if (onCreate_) onCreate_(m);
}

void TrafficGenerator::scheduleNext(HostId h) {
    if (net_.loopFor(h).now() >= cfg_.stop) return;

    Message m;
    m.id = net_.nextMsgId(h);
    m.src = h;
    m.dst = pattern_->pickDestination(h, rngs_[h]);
    assert(m.dst != h);
    m.length = dist_.sample(rngs_[h]);
    emit(m);

    const Duration gap = exponentialDuration(rngs_[h], gaps_[h]);
    net_.loopFor(h).after(gap, [this, h] { scheduleNext(h); });
}

void TrafficGenerator::scheduleNextModulated(HostId h) {
    // Poisson on the host's ON-time clock: mean gap scaled down by the
    // duty cycle, so bursts run at base/duty and the average is calibrated.
    const double onGap = gaps_[h] * cfg_.scenario.onOff.dutyCycle();
    const Duration onDelay = exponentialDuration(rngs_[h], onGap);
    const Time at = onoff_[h].advance(onDelay);
    net_.loopFor(h).at(at, [this, h] {
        if (net_.loopFor(h).now() >= cfg_.stop) return;
        Message m;
        m.id = net_.nextMsgId(h);
        m.src = h;
        m.dst = pattern_->pickDestination(h, rngs_[h]);
        assert(m.dst != h);
        m.length = dist_.sample(rngs_[h]);
        emit(m);
        scheduleNextModulated(h);
    });
}

void TrafficGenerator::issueClosedLoop(HostId h) {
    if (net_.loop().now() >= cfg_.stop) return;
    if (!onoff_.empty()) {
        const Time go = onoff_[h].gate(net_.loop().now());
        if (go > net_.loop().now()) {
            net_.loop().at(go, [this, h] { issueClosedLoop(h); });
            return;
        }
    }
    Message m;
    m.id = net_.nextMsgId();
    m.src = h;
    m.dst = pattern_->pickDestination(h, rngs_[h]);
    assert(m.dst != h);
    m.length = dist_.sample(rngs_[h]);
    outstanding_[h]++;
    maxOutstanding_ = std::max(maxOutstanding_, outstanding_[h]);
    assert(outstanding_[h] <= cfg_.scenario.closedLoopWindow);
    emit(m);
}

void TrafficGenerator::issueDagTree(HostId h) {
    if (net_.loop().now() >= cfg_.stop) return;
    if (!onoff_.empty()) {
        const Time go = onoff_[h].gate(net_.loop().now());
        if (go > net_.loop().now()) {
            net_.loop().at(go, [this, h] { issueDagTree(h); });
            return;
        }
    }
    outstanding_[h]++;
    maxOutstanding_ = std::max(maxOutstanding_, outstanding_[h]);
    assert(outstanding_[h] <= cfg_.scenario.dag.window);
    dag_->issueTree(h, rngs_[h]);
}

void TrafficGenerator::setDagCost(DagCostFn cost) {
    assert(dag_);
    dag_->setCost(std::move(cost));
}

void TrafficGenerator::onDelivered(const Message& m) {
    // Closed-loop and DAG modes have zero-lookahead feedback — a delivery
    // observed on the destination's shard refills the *source's* window at
    // the same instant — so the driver always runs them single-shard, and
    // net_.loop() here is the only loop (same for issueClosedLoop and
    // issueDagTree below, plus the DagEngine's use of net_.loop()).
    if (dagMode()) {
        dag_->onDelivered(m);
        return;
    }
    if (!closedLoop()) return;
    const HostId h = m.src;
    assert(h >= 0 && h < static_cast<HostId>(outstanding_.size()));
    assert(outstanding_[h] > 0);
    outstanding_[h]--;
    if (net_.loop().now() >= cfg_.stop) return;
    // Think, then issue; always bounce through the event loop so the new
    // message is not emitted from inside the delivery callback.
    const Duration think =
        cfg_.scenario.thinkTime > 0
            ? exponentialDuration(rngs_[h], toSeconds(cfg_.scenario.thinkTime))
            : 1;
    net_.loop().after(think, [this, h] { issueClosedLoop(h); });
}

}  // namespace homa
