#include "workload/generator.h"

#include <cassert>
#include <cmath>

namespace homa {

TrafficGenerator::TrafficGenerator(Network& net, TrafficConfig cfg,
                                   std::function<void(const Message&)> onCreate)
    : net_(net),
      cfg_(cfg),
      dist_(workload(cfg.workload)),
      onCreate_(std::move(onCreate)) {
    assert(cfg_.load > 0 && cfg_.load <= 1.5);  // >1 allowed for overload tests
    // load = (wire bytes/message) / (interarrival * link rate)
    //   => mean gap = meanWireBytes * psPerByte / load.
    const double psPerByte =
        static_cast<double>(net_.config().hostLink.psPerByte);
    meanGap_ = static_cast<Duration>(
        std::llround(dist_.meanWireBytes() * psPerByte / cfg_.load));

    Rng master(cfg_.seed);
    rngs_.reserve(net_.hostCount());
    for (int h = 0; h < net_.hostCount(); h++) rngs_.push_back(master.fork());
}

void TrafficGenerator::start() {
    for (HostId h = 0; h < net_.hostCount(); h++) {
        // Random phase so hosts don't fire in lockstep at t=start.
        const Duration phase =
            static_cast<Duration>(rngs_[h].exponential(toSeconds(meanGap_)) *
                                  static_cast<double>(kSecond));
        net_.loop().at(cfg_.start + phase, [this, h] { scheduleNext(h); });
    }
}

void TrafficGenerator::scheduleNext(HostId h) {
    if (net_.loop().now() >= cfg_.stop) return;

    Message m;
    m.id = net_.nextMsgId();
    m.src = h;
    HostId dst = static_cast<HostId>(rngs_[h].below(net_.hostCount() - 1));
    if (dst >= h) dst++;
    m.dst = dst;
    m.length = dist_.sample(rngs_[h]);
    net_.sendMessage(m);
    m.created = net_.loop().now();
    generated_++;
    generatedBytes_ += m.length;
    if (onCreate_) onCreate_(m);

    const Duration gap = static_cast<Duration>(
        rngs_[h].exponential(toSeconds(meanGap_)) * static_cast<double>(kSecond));
    net_.loop().after(std::max<Duration>(1, gap), [this, h] { scheduleNext(h); });
}

}  // namespace homa
