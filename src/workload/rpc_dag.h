// Fan-out/fan-in RPC dependency DAGs (partition-aggregate trees).
//
// The paper's motivating applications (§1, §2.1) are built from short-RPC
// trees: a coordinator fans a query out to N workers, each worker may fan
// out again, and a node can answer its parent only after *all* of its
// children have answered it — so tree latency is the latency of the
// slowest leaf-to-root path, exactly the incast + tail-latency regime
// receiver-driven SRPT scheduling targets. None of the flat patterns
// (uniform, incast, closed-loop) can express that dependency structure;
// this module does.
//
// Two harnesses drive the same tree description:
//  * `DagEngine` — message-level orchestration inside `TrafficGenerator`
//    (`TrafficPatternKind::Dag`): every edge is a one-way request message
//    down and a response message up, so every transport in the repo runs
//    the workload unmodified and `runExperiment`/`SweepRunner`/
//    `resultFingerprint` apply as-is.
//  * `runRpcExperiment` dag mode — the same trees as *real* RPCs through
//    `RpcEndpoint` (deferred fan-in responses, retries, incast marks).
//
// Trees are closed-loop: each root keeps `DagConfig::window` trees in
// flight and issues the next one when a tree completes, riding the same
// `TrafficGenerator::onDelivered` refill machinery (and ON-OFF gating) as
// the closed-loop pattern. Everything is deterministic given (config,
// seed): tree shapes and sizes are fixed when the root issues the tree.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/event_loop.h"
#include "sim/random.h"
#include "transport/message.h"
#include "workload/distribution.h"

namespace homa {

/// Shape and sizing of a partition-aggregate request tree. Everything is
/// deterministic given (config, seed); validateDagConfig() checks ranges
/// and the kMaxDagNodes cap.
struct DagConfig {
    int fanout = 8;   ///< children per internal node (>= 1)
    int depth = 2;    ///< levels of fan-out below the root (>= 1)
    int window = 1;   ///< trees each root keeps outstanding (>= 1)
    int roots = 0;    ///< coordinator hosts [0, roots); 0 = every host
    uint32_t requestBytes = 320;  ///< query size on every downward edge

    /// Response size of a node at stage d (1..depth; the last entry covers
    /// deeper stages). Empty = sample each node's response from the
    /// experiment's workload size distribution instead.
    std::vector<uint32_t> stageResponseBytes;

    /// Straggler/skew knobs: each *leaf* independently becomes a straggler
    /// with probability `stragglerFraction`, inflating its response size by
    /// `stragglerFactor` — one slow shard then dominates the whole tree.
    double stragglerFraction = 0.0;
    double stragglerFactor = 10.0;  ///< response-size multiplier (> 0)

    /// General DAGs beyond trees: each node at stage >= 2 independently
    /// gains a second parent (uniform over the previous stage, excluding
    /// its own parent and same-host nodes) with this probability. The
    /// extra parent also queries the node and waits for its answer — a
    /// shared subtree / multi-parent join. 0 = pure trees, and samples no
    /// extra randomness, so existing tree goldens are unperturbed. Joins
    /// only materialize when depth >= 2 (stage-1 nodes' only possible
    /// extra parent is the root itself).
    double joinFraction = 0.0;
};

/// Nodes per tree (excluding the root): sum of fanout^d for d in
/// [1, depth]. Saturates at kMaxDagNodes + 1 instead of overflowing.
int64_t dagTreeNodeCount(const DagConfig& cfg);

/// Hard cap on nodes per tree; validateDagConfig rejects larger trees.
constexpr int64_t kMaxDagNodes = 200000;

/// Returns nullptr when `cfg` is valid, else a static string describing
/// the first problem (range checks plus the kMaxDagNodes cap).
const char* validateDagConfig(const DagConfig& cfg);

/// Number of coordinator hosts for a cluster of `hostCount` hosts.
int dagRootCount(const DagConfig& cfg, int hostCount);

/// Uniform pick over [0, hostCount) excluding `exclude` — the skip-one
/// sampling shared by the flat patterns (scenario.cc), the DAG engines,
/// and the tests. Requires hostCount >= 2 and exclude in range.
inline HostId uniformHostExcept(int hostCount, HostId exclude, Rng& rng) {
    HostId h = static_cast<HostId>(rng.below(hostCount - 1));
    if (h >= exclude) h++;
    return h;
}

/// Strict single-field parsers behind the spec grammar, shared with the
/// CLI so `--dag-fanout abc` errors instead of throwing: whole-string
/// numeric format checks (parseDagBytes additionally enforces
/// [1, 2^32)), no cross-field validation — run validateDagConfig on the
/// assembled config for that.
bool parseDagInt(const std::string& text, int& out);
bool parseDagBytes(const std::string& text, uint32_t& out);
bool parseDagDouble(const std::string& text, double& out);

/// Parses the body of a "dag:<body>" scenario spec — comma-separated
/// key=value pairs: fanout, depth, window, roots, req (request bytes),
/// resp (per-stage response bytes, '/'-separated, e.g. resp=16000/2000),
/// straggler (leaf fraction), factor (size multiplier). Returns false and
/// leaves `out` untouched on unknown keys, malformed values, or a config
/// validateDagConfig rejects.
bool parseDagSpec(const std::string& body, DagConfig& out);

/// One node of a sampled tree. Nodes are stored in BFS order (root at
/// index 0, children after their parent), so a parent's index is always
/// lower than its children's.
struct DagNodeSpec {
    HostId host = kNoHost;   ///< host this node runs on
    int parent = -1;         ///< index into nodes; -1 for the root
    int stage = 0;           ///< 0 = root, depth = leaves
    uint32_t respBytes = 0;  ///< response this node sends its parent (root: 0)
    int firstChild = -1;     ///< index of the first child; -1 for leaves
    int childCount = 0;      ///< number of children (contiguous from firstChild)
};

/// A join edge: `parent` is an *additional* parent of `child` (on top of
/// nodes[child].parent). The extra parent sends `child` its own request
/// and `child` answers it with its own copy of the response; the extra
/// parent's fan-in then also waits on `child`. Always stage(parent) ==
/// stage(child) - 1, so edges never form cycles and parent < child in
/// BFS order.
struct DagJoinEdge {
    int parent = 0;
    int child = 0;
};

/// A fully sampled tree — or DAG when `joins` is non-empty: shape,
/// placement, and sizes, fixed at issue time (see sampleDagTree).
struct DagTreeSpec {
    std::vector<DagNodeSpec> nodes;  ///< BFS order; parent index < child index
    std::vector<DagJoinEdge> joins;  ///< extra parent edges, child-ascending
};

/// Adjacency of the join edges: result[p] lists the join children of
/// node p, in edge order. Nodes with no joins get empty lists.
std::vector<std::vector<int>> dagJoinChildren(const DagTreeSpec& tree);

/// Samples one tree: shape from `cfg`, node hosts from `pickChild`
/// (must never return the parent's host), response sizes from
/// `cfg.stageResponseBytes` or — when that is empty — from `sizes`
/// (required in that case). All randomness draws from `rng`.
DagTreeSpec sampleDagTree(
    const DagConfig& cfg, const SizeDistribution* sizes, Rng& rng,
    HostId root,
    const std::function<HostId(HostId parent, Rng&)>& pickChild);

/// Payload bytes the tree moves end-to-end: one request per edge plus
/// every node's response — join edges carry their own request and
/// response copy.
int64_t dagTreeBytes(const DagConfig& cfg, const DagTreeSpec& tree);

/// Best-case transfer time of `bytes` from `src` to `dst` on an unloaded
/// network (an Oracle::bestOneWay wrapper, injected by the driver).
using DagCostFn = std::function<Duration(HostId src, HostId dst, uint32_t bytes)>;

/// Unloaded critical path of the tree (or DAG): the slowest chain of
/// request/response transfers from the root back to the root, assuming
/// perfect pipelining of siblings (a lower bound — it ignores the
/// serialization of a node's fan-out on its own uplink, which is part of
/// what the experiment measures). With join edges a node answers an
/// extra parent no earlier than max(that parent's request arrival, its
/// own subtree completion). 0 when `cost` is empty.
Duration dagTreeIdeal(const DagTreeSpec& tree, uint32_t requestBytes,
                      const DagCostFn& cost);

/// What a completed tree looked like; feeds DagTracker.
struct DagTreeResult {
    HostId root = kNoHost;  ///< coordinator host that issued the tree
    Time issued = 0;        ///< when the root issued the tree
    Time completed = 0;     ///< when the last child's response reached the root
    int nodes = 0;          ///< node count, excluding the root
    int64_t bytes = 0;      ///< payload moved (requests + responses)
    Duration ideal = 0;     ///< unloaded critical path; 0 when no cost fn
};

/// Message-level tree orchestration for `TrafficGenerator`.
///
/// The engine owns the trees' control flow but not the clock or the wire:
/// it sends through `SendFn` (which creates the message, emits it, and
/// returns its id) and advances on `onDelivered` feedback. Cascade sends
/// bounce through the event loop (1 ps) so no message is emitted from
/// inside a transport's delivery callback.
class DagEngine {
public:
    using AllocIdFn = std::function<MsgId()>;
    using EmitFn = std::function<void(const Message& m)>;
    using CompleteFn = std::function<void(const DagTreeResult&)>;

    /// `sizes` may be null when cfg.stageResponseBytes is non-empty.
    /// Ids come from `allocId` *before* the message reaches `emit`, so an
    /// emit-side observer can already resolve roleOf(m.id).
    DagEngine(const DagConfig& cfg, const SizeDistribution* sizes,
              int hostCount, EventLoop& loop, AllocIdFn allocId, EmitFn emit);

    void setCost(DagCostFn cost) { cost_ = std::move(cost); }
    void setOnComplete(CompleteFn fn) { onComplete_ = std::move(fn); }

    /// Issue one tree rooted at `root` now; shape/sizes drawn from `rng`.
    void issueTree(HostId root, Rng& rng);

    /// Delivery feed; advances the owning tree (child requests, responses,
    /// fan-in completion). Every message the engine sent is consumed here
    /// exactly once.
    void onDelivered(const Message& m);

    int activeTrees() const { return static_cast<int>(trees_.size()); }
    uint64_t treesIssued() const { return issued_; }
    uint64_t treesCompleted() const { return completed_; }

    /// Introspection for the fan-in semantics tests. `parent` is the node
    /// index the message pairs with: the parent that sent the request /
    /// the parent the response is addressed to (join children exchange
    /// one request+response pair per parent).
    struct MsgRole {
        uint64_t tree = 0;
        int node = 0;
        int parent = -1;
        bool response = false;
    };
    std::optional<MsgRole> roleOf(MsgId id) const;
    /// Null once the tree completed (its state is reclaimed).
    const DagTreeSpec* treeSpec(uint64_t tree) const;

private:
    struct TreeState {
        DagTreeSpec spec;
        std::vector<int> pending;  // unanswered children (+ joins) per node
        std::vector<std::vector<int>> joinKids;  // dagJoinChildren(spec)
        std::vector<char> fanned;  // node already fanned out
        // Parents whose request arrived before the node's subtree was
        // done; all answered at once when the last child answers.
        std::vector<std::vector<int>> waiting;
        HostId root = kNoHost;
        Time issued = 0;
        int64_t bytes = 0;
    };

    void send(uint64_t tree, int node, int parent, bool response, HostId src,
              HostId dst, uint32_t bytes);
    void sendRequest(uint64_t tree, TreeState& st, int node, int parent);
    void sendResponse(uint64_t tree, TreeState& st, int node, int parent);
    void onRequestAt(uint64_t tree, int node, int parent);
    void nodeAnswered(uint64_t tree, TreeState& st, int node);

    DagConfig cfg_;
    const SizeDistribution* sizes_;
    int hostCount_;
    EventLoop& loop_;
    AllocIdFn allocId_;
    EmitFn emit_;
    DagCostFn cost_;
    CompleteFn onComplete_;
    std::unordered_map<uint64_t, TreeState> trees_;
    std::unordered_map<MsgId, MsgRole> byMsg_;
    uint64_t nextTree_ = 1;
    uint64_t issued_ = 0;
    uint64_t completed_ = 0;
};

}  // namespace homa
