#include "workload/scenario.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace homa {

const char* patternName(TrafficPatternKind kind) {
    switch (kind) {
        case TrafficPatternKind::Uniform: return "uniform";
        case TrafficPatternKind::Permutation: return "permutation";
        case TrafficPatternKind::RackSkew: return "rack-skew";
        case TrafficPatternKind::Incast: return "incast";
        case TrafficPatternKind::ParetoSenders: return "pareto";
        case TrafficPatternKind::TraceReplay: return "trace";
        case TrafficPatternKind::ClosedLoop: return "closed-loop";
        case TrafficPatternKind::Dag: return "dag";
    }
    return "?";
}

bool patternFromName(const std::string& name, TrafficPatternKind& out) {
    for (TrafficPatternKind k :
         {TrafficPatternKind::Uniform, TrafficPatternKind::Permutation,
          TrafficPatternKind::RackSkew, TrafficPatternKind::Incast,
          TrafficPatternKind::ParetoSenders, TrafficPatternKind::TraceReplay,
          TrafficPatternKind::ClosedLoop, TrafficPatternKind::Dag}) {
        if (name == patternName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

const char* onOffDistName(OnOffDist d) {
    switch (d) {
        case OnOffDist::Exponential: return "exp";
        case OnOffDist::Pareto: return "pareto";
    }
    return "?";
}

bool onOffDistFromName(const std::string& name, OnOffDist& out) {
    for (OnOffDist d : {OnOffDist::Exponential, OnOffDist::Pareto}) {
        if (name == onOffDistName(d)) {
            out = d;
            return true;
        }
    }
    return false;
}

bool scenarioFromSpec(const std::string& spec, ScenarioConfig& out,
                      std::string* err) {
    auto fail = [err](const std::string& why) {
        if (err) *err = why;
        return false;
    };
    // Split on '+': the first segment is the pattern, the rest modifiers.
    std::vector<std::string> segs;
    size_t pos = 0;
    while (pos <= spec.size()) {
        const size_t plus = std::min(spec.find('+', pos), spec.size());
        segs.push_back(spec.substr(pos, plus - pos));
        pos = plus + 1;
        if (plus == spec.size()) break;
    }

    ScenarioConfig parsed;
    const std::string& pattern = segs[0];
    // Only dag takes ':' parameters: "dag:fanout=40,depth=2".
    const size_t colon = pattern.find(':');
    if (colon != std::string::npos) {
        const std::string head = pattern.substr(0, colon);
        if (head == "fault") {
            return fail("a fault segment cannot come first: the spec is "
                        "'<pattern>[+fault:...]' (e.g. "
                        "\"uniform+fault:flap=aggr0,at=5ms,for=1ms\")");
        }
        if (head == "topo") {
            return fail("a topo segment cannot come first: the spec is "
                        "'<pattern>[+topo:...]' (e.g. "
                        "\"uniform+topo:racks=8,aggr=2,core=2,oversub=4\")");
        }
        if (head == "fluid") {
            return fail("a fluid segment cannot come first: the spec is "
                        "'<pattern>[+fluid:<bytes>]' (e.g. "
                        "\"uniform+fluid:20000\")");
        }
        if (head == "tenants") {
            return fail("a tenants segment cannot come first: the spec is "
                        "'uniform+tenants:...' (e.g. "
                        "\"uniform+tenants:name=a,wl=W4,load=0.6\")");
        }
        if (head == "replicas") {
            return fail("a replicas segment cannot come first: the spec is "
                        "'uniform+tenants:...+replicas:...'");
        }
        if (head != "dag") {
            return fail("pattern '" + head + "' takes no ':' parameters "
                        "(only dag does)");
        }
        if (!parseDagSpec(pattern.substr(colon + 1), parsed.dag)) {
            return fail("bad dag spec '" + pattern.substr(colon + 1) +
                        "' (keys: fanout, depth, window, roots, req, resp, "
                        "straggler, factor)");
        }
        parsed.kind = TrafficPatternKind::Dag;
    } else if (!patternFromName(pattern, parsed.kind)) {
        return fail("unknown pattern '" + pattern + "'");
    }

    for (size_t i = 1; i < segs.size(); i++) {
        const std::string& seg = segs[i];
        if (seg == "on-off") {
            parsed.onOff.enabled = true;
        } else if (seg == "ecmp") {
            parsed.ecmpUplinks = true;
        } else if (seg.rfind("fault:", 0) == 0) {
            FaultSpec fs;
            std::string ferr;
            if (!parseFaultSpec(seg.substr(6), fs, &ferr)) {
                return fail("bad fault spec '" + seg.substr(6) + "': " + ferr);
            }
            parsed.faults.push_back(fs);
        } else if (seg.rfind("topo:", 0) == 0) {
            if (!parsed.topoSpec.empty()) {
                return fail("at most one topo: segment per scenario");
            }
            const std::string body = seg.substr(5);
            // Eager validation against the default base so a bad spec fails
            // at parse time, not mid-experiment. The stored body re-applies
            // over the experiment's actual base config in runExperiment.
            NetworkConfig probe = NetworkConfig::fatTree144();
            std::string terr;
            if (!parseTopoSpec(body, probe, &terr)) {
                return fail("bad topo spec '" + body + "': " + terr);
            }
            parsed.topoSpec = body;
        } else if (seg.rfind("fluid:", 0) == 0) {
            if (parsed.fluidThresholdBytes >= 0) {
                return fail("at most one fluid: segment per scenario");
            }
            const std::string body = seg.substr(6);
            if (body.empty() ||
                body.find_first_not_of("0123456789") != std::string::npos) {
                return fail("bad fluid threshold '" + body +
                            "' (expected a non-negative byte count, e.g. "
                            "fluid:20000; 0 = everything fluid)");
            }
            errno = 0;
            const long long v = std::strtoll(body.c_str(), nullptr, 10);
            if (errno != 0 || v < 0) {
                return fail("fluid threshold '" + body + "' out of range");
            }
            parsed.fluidThresholdBytes = static_cast<int64_t>(v);
        } else if (seg.rfind("tenants:", 0) == 0) {
            if (!parsed.serving.tenants.empty()) {
                return fail("at most one tenants: segment per scenario");
            }
            std::string terr;
            if (!parseTenantsSpec(seg.substr(8), parsed.serving.tenants,
                                  &terr)) {
                return fail("bad tenants spec '" + seg.substr(8) + "': " +
                            terr);
            }
        } else if (seg.rfind("replicas:", 0) == 0) {
            if (!parsed.serving.groups.empty()) {
                return fail("at most one replicas: segment per scenario");
            }
            std::string rerr;
            if (!parseReplicasSpec(seg.substr(9), parsed.serving.groups,
                                   &rerr)) {
                return fail("bad replicas spec '" + seg.substr(9) + "': " +
                            rerr);
            }
        } else {
            return fail("unknown scenario modifier '" + seg +
                        "' (expected on-off, ecmp, topo:..., fluid:<bytes>, "
                        "fault:..., tenants:..., or replicas:...)");
        }
    }
    if (parsed.fluidThresholdBytes >= 0 && !parsed.faults.empty()) {
        return fail("fluid does not compose with fault injection: fluid "
                    "flows bypass the switches faults act on");
    }
    if (!parsed.serving.groups.empty() && parsed.serving.tenants.empty()) {
        return fail("a replicas: segment requires a tenants: segment "
                    "(groups without tenants serve nobody)");
    }
    if (parsed.serving.enabled()) {
        if (parsed.kind != TrafficPatternKind::Uniform) {
            return fail("tenants require the 'uniform' pattern placeholder: "
                        "tenant configs own destination choice and arrival "
                        "modes, so '" + std::string(patternName(parsed.kind)) +
                        "' would be ignored");
        }
        if (parsed.onOff.enabled) {
            return fail("tenants do not compose with on-off: each tenant "
                        "carries its own arrival mode");
        }
        if (!parsed.faults.empty()) {
            return fail("tenants do not compose with fault injection: the "
                        "serving harness's call ledgers assume a fault-free "
                        "fabric");
        }
        if (parsed.fluidThresholdBytes >= 0) {
            return fail("tenants do not compose with fluid: serving runs "
                        "account per RPC on the packet engine");
        }
        // Validate group references eagerly (host counts are checked at
        // run time against the actual topology).
        for (const TenantConfig& t : parsed.serving.tenants) {
            if (tenantGroupIndex(parsed.serving, t) < 0) {
                return fail("tenant '" + t.name + "' references unknown "
                            "replica group '" + t.group + "'");
            }
        }
    }
    out = parsed;
    return true;
}

OnOffModulator::OnOffModulator(const OnOffConfig& cfg, Time start,
                               uint64_t seed)
    : cfg_(cfg), rng_(seed) {
    assert(cfg_.onMean > 0 && cfg_.offMean >= 0);
    assert(cfg_.dist != OnOffDist::Pareto || cfg_.paretoShape > 1.0);
    // Stationary initial phase: ON with probability dutyCycle, and the
    // residual period life re-sampled from the full-period distribution
    // (exact for exponential periods, by memorylessness).
    on_ = rng_.chance(cfg_.dutyCycle());
    periodEnd_ = start + samplePeriod(on_);
    cursor_ = start;
}

Duration OnOffModulator::samplePeriod(bool on) {
    const double mean = toSeconds(on ? cfg_.onMean : cfg_.offMean);
    double seconds;
    if (cfg_.dist == OnOffDist::Exponential) {
        seconds = rng_.exponential(mean);
    } else {
        // Pareto with mean `mean` and shape a: scale xm = mean*(a-1)/a,
        // sample xm * u^(-1/a) with u uniform in (0, 1].
        const double a = cfg_.paretoShape;
        const double xm = mean * (a - 1.0) / a;
        const double u = 1.0 - rng_.uniform();  // (0, 1]
        seconds = xm * std::pow(u, -1.0 / a);
    }
    return std::max<Duration>(
        1, static_cast<Duration>(seconds * static_cast<double>(kSecond)));
}

Time OnOffModulator::advance(Duration onDelay) {
    for (;;) {
        if (on_) {
            const Duration available = periodEnd_ - cursor_;
            if (onDelay < available) {
                cursor_ += onDelay;
                return cursor_;
            }
            onDelay -= available;
        }
        // Burst exhausted (or currently idle): skip to the next period.
        cursor_ = periodEnd_;
        on_ = !on_;
        periodEnd_ = cursor_ + samplePeriod(on_);
    }
}

Time OnOffModulator::gate(Time now) {
    while (periodEnd_ <= now) {
        on_ = !on_;
        periodEnd_ += samplePeriod(on_);
    }
    return on_ ? now : periodEnd_;
}

namespace {

[[noreturn]] void traceError(size_t line, const char* what) {
    std::fprintf(stderr, "trace line %zu: %s\n", line, what);
    std::exit(2);
}

/// Uniform destination over all hosts except `src`.
HostId uniformDst(HostId src, int hostCount, Rng& rng) {
    return uniformHostExcept(hostCount, src, rng);
}

class UniformPattern final : public TrafficPattern {
public:
    explicit UniformPattern(int hostCount) : hosts_(hostCount) {}
    TrafficPatternKind kind() const override {
        return TrafficPatternKind::Uniform;
    }
    HostId pickDestination(HostId src, Rng& rng) const override {
        return uniformDst(src, hosts_, rng);
    }

private:
    int hosts_;
};

class PermutationPattern final : public TrafficPattern {
public:
    PermutationPattern(int hostCount, uint64_t seed) : dst_(hostCount) {
        // Sattolo's algorithm: a uniform single-cycle permutation, so no
        // host sends to itself and every host receives from exactly one.
        Rng rng(seed);
        std::vector<HostId> p(hostCount);
        for (int i = 0; i < hostCount; i++) p[i] = static_cast<HostId>(i);
        for (int i = hostCount - 1; i > 0; i--) {
            const int j = static_cast<int>(rng.below(static_cast<uint64_t>(i)));
            std::swap(p[i], p[j]);
        }
        dst_ = std::move(p);
    }
    TrafficPatternKind kind() const override {
        return TrafficPatternKind::Permutation;
    }
    HostId pickDestination(HostId src, Rng&) const override {
        return dst_[src];
    }

private:
    std::vector<HostId> dst_;
};

class RackSkewPattern final : public TrafficPattern {
public:
    RackSkewPattern(int hostCount, int hostsPerRack, double localFraction)
        : hosts_(hostCount),
          perRack_(hostsPerRack),
          local_(perRack_ > 1 ? localFraction : 0.0) {}
    TrafficPatternKind kind() const override {
        return TrafficPatternKind::RackSkew;
    }
    HostId pickDestination(HostId src, Rng& rng) const override {
        if (rng.chance(local_)) {
            const HostId rackBase = src / perRack_ * perRack_;
            HostId dst = rackBase + static_cast<HostId>(rng.below(perRack_ - 1));
            if (dst >= src) dst++;
            return dst;
        }
        return uniformDst(src, hosts_, rng);
    }

private:
    int hosts_;
    int perRack_;
    double local_;
};

class IncastPattern final : public TrafficPattern {
public:
    IncastPattern(const ScenarioConfig& cfg, int hostCount)
        : hosts_(hostCount), fraction_(cfg.hotspotFraction) {
        // Every hotspot needs at least one dedicated sender, so the
        // hotspot count caps at half the cluster and the fan-in degree at
        // the senders available per hotspot. Hot receivers are hosts
        // [0, hot); their senders are assigned round-robin from the
        // remaining hosts so groups span racks.
        const int hot = std::clamp(cfg.hotspots, 1, hostCount / 2);
        const int perHot = (hostCount - hot) / hot;  // >= 1
        int degree = cfg.hotspotDegree <= 0 ? perHot : cfg.hotspotDegree;
        degree = std::clamp(degree, 1, perHot);
        target_.assign(hostCount, kNone);
        for (int i = 0; i < hot * degree; i++) {
            target_[hot + i] = static_cast<HostId>(i % hot);
        }
    }
    TrafficPatternKind kind() const override {
        return TrafficPatternKind::Incast;
    }
    HostId pickDestination(HostId src, Rng& rng) const override {
        const HostId hot = target_[src];
        if (hot != kNone && rng.chance(fraction_)) return hot;
        return uniformDst(src, hosts_, rng);
    }
    /// Fan-in target of `src`, or -1 when `src` is background traffic.
    HostId targetOf(HostId src) const { return target_[src]; }

private:
    static constexpr HostId kNone = -1;
    int hosts_;
    double fraction_;
    std::vector<HostId> target_;
};

class ParetoSendersPattern final : public TrafficPattern {
public:
    ParetoSendersPattern(int hostCount, double alpha, uint64_t seed)
        : hosts_(hostCount), weight_(hostCount) {
        // Popularity rank is a deterministic shuffle of the hosts; the
        // k-th most popular sender gets weight (k+1)^-alpha. The generator
        // renormalizes, so only relative magnitudes matter here.
        Rng rng(seed);
        std::vector<int> rank(hostCount);
        for (int i = 0; i < hostCount; i++) rank[i] = i;
        for (int i = hostCount - 1; i > 0; i--) {
            const int j =
                static_cast<int>(rng.below(static_cast<uint64_t>(i + 1)));
            std::swap(rank[i], rank[j]);
        }
        for (int i = 0; i < hostCount; i++) {
            weight_[rank[i]] = std::pow(static_cast<double>(i + 1), -alpha);
        }
    }
    TrafficPatternKind kind() const override {
        return TrafficPatternKind::ParetoSenders;
    }
    double senderWeight(HostId h) const override { return weight_[h]; }
    HostId pickDestination(HostId src, Rng& rng) const override {
        return uniformDst(src, hosts_, rng);
    }

private:
    int hosts_;
    std::vector<double> weight_;
};

// Closed-loop clients pick servers uniformly (the §5.1 client/server echo
// setup); the arrival process — window refill on delivery — lives in
// TrafficGenerator, which keys off kind() == ClosedLoop.
class ClosedLoopPattern final : public TrafficPattern {
public:
    explicit ClosedLoopPattern(int hostCount) : hosts_(hostCount) {}
    TrafficPatternKind kind() const override {
        return TrafficPatternKind::ClosedLoop;
    }
    HostId pickDestination(HostId src, Rng& rng) const override {
        return uniformDst(src, hosts_, rng);
    }

private:
    int hosts_;
};

// Dag destinations are chosen per tree node by the DagEngine (uniform,
// never the parent's host); the pattern object only carries the kind.
class DagPattern final : public TrafficPattern {
public:
    explicit DagPattern(int hostCount) : hosts_(hostCount) {}
    TrafficPatternKind kind() const override {
        return TrafficPatternKind::Dag;
    }
    HostId pickDestination(HostId src, Rng& rng) const override {
        return uniformDst(src, hosts_, rng);
    }

private:
    int hosts_;
};

}  // namespace

std::vector<TraceRecord> parseTrace(const std::string& text, int hostCount) {
    std::vector<TraceRecord> out;
    std::istringstream in(text);
    std::string line;
    size_t lineNo = 0;
    while (std::getline(in, line)) {
        lineNo++;
        const size_t hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        if (line.find_first_not_of(" \t\r") == std::string::npos) {
            continue;  // blank or comment-only line
        }
        std::istringstream fields(line);
        double timeUs;
        int64_t src, dst, size;
        if (!(fields >> timeUs >> src >> dst >> size)) {
            traceError(lineNo, "expected '<time_us> <src> <dst> <size>'");
        }
        if (timeUs < 0 || size <= 0 || size > 0xFFFFFFFFll || src == dst) {
            traceError(lineNo,
                       "negative time, size out of [1, 2^32), or src==dst");
        }
        if (hostCount > 0 &&
            (src < 0 || src >= hostCount || dst < 0 || dst >= hostCount)) {
            traceError(lineNo, "host id out of range for this topology");
        }
        TraceRecord r;
        r.at = static_cast<Duration>(timeUs * static_cast<double>(kMicrosecond));
        r.src = static_cast<HostId>(src);
        r.dst = static_cast<HostId>(dst);
        r.size = static_cast<uint32_t>(size);
        out.push_back(r);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceRecord& a, const TraceRecord& b) {
                         return a.at < b.at;
                     });
    return out;
}

std::vector<TraceRecord> loadTraceFile(const std::string& path, int hostCount) {
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open trace file: %s\n", path.c_str());
        std::exit(2);
    }
    std::stringstream buf;
    buf << in.rdbuf();
    return parseTrace(buf.str(), hostCount);
}

std::unique_ptr<TrafficPattern> makeTrafficPattern(const ScenarioConfig& cfg,
                                                   int hostCount,
                                                   int hostsPerRack,
                                                   uint64_t seed) {
    assert(hostCount >= 2);
    switch (cfg.kind) {
        case TrafficPatternKind::Uniform:
            return std::make_unique<UniformPattern>(hostCount);
        case TrafficPatternKind::Permutation:
            return std::make_unique<PermutationPattern>(hostCount, seed);
        case TrafficPatternKind::RackSkew:
            return std::make_unique<RackSkewPattern>(hostCount, hostsPerRack,
                                                     cfg.rackLocalFraction);
        case TrafficPatternKind::Incast:
            return std::make_unique<IncastPattern>(cfg, hostCount);
        case TrafficPatternKind::ParetoSenders:
            return std::make_unique<ParetoSendersPattern>(
                hostCount, cfg.paretoAlpha, seed);
        case TrafficPatternKind::ClosedLoop:
            return std::make_unique<ClosedLoopPattern>(hostCount);
        case TrafficPatternKind::Dag:
            return std::make_unique<DagPattern>(hostCount);
        case TrafficPatternKind::TraceReplay:
            break;
    }
    assert(false && "TraceReplay has no TrafficPattern");
    return nullptr;
}

}  // namespace homa
