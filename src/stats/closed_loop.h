// Closed-loop-native metrics (per-client view).
//
// Open-loop experiments summarize slowdown against an oracle; a
// closed-loop client cares about different numbers: how many operations
// its window sustained (throughput), and the latency distribution of
// those operations — especially under bursty (ON-OFF) arrival modulation,
// where averages hide the burst-time tail. `ClosedLoopTracker` keeps one
// row per client plus an aggregate latency distribution, counting only
// completions inside the measurement window.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "stats/percentile.h"

namespace homa {

class ClosedLoopTracker {
public:
    /// Tracks `clients` clients; only completions with `completedAt` in
    /// [windowStart, windowEnd) count.
    ClosedLoopTracker(int clients, Time windowStart, Time windowEnd);

    /// Record one completed operation: a delivered closed-loop message or
    /// an RPC response. `bytes` is the operation's payload total (request
    /// plus response for RPCs); `elapsed` is issue-to-completion time.
    void record(int client, int64_t bytes, Duration elapsed, Time completedAt);

    /// One client's in-window completion count and rates.
    struct ClientRow {
        uint64_t completed = 0;
        double opsPerSec = 0;
        double gbps = 0;  // payload bytes moved, as bits/s over the window
    };
    int clients() const { return static_cast<int>(completed_.size()); }
    ClientRow client(int c) const;

    uint64_t totalCompleted() const;
    double aggregateOpsPerSec() const;
    double aggregateGbps() const;

    /// Busiest / quietest client by completion count (imbalance probe:
    /// under ON-OFF bursts the spread widens even though the mean holds).
    uint64_t maxClientCompleted() const;
    uint64_t minClientCompleted() const;

    /// Latency percentile (p in [0,1]) across all in-window completions,
    /// in microseconds; 0 when nothing completed.
    double latencyPercentileUs(double p) const;
    double latencyMeanUs() const;
    size_t latencySamples() const { return latency_.count(); }

private:
    double windowSeconds() const;

    Time windowStart_;
    Time windowEnd_;
    std::vector<uint64_t> completed_;
    std::vector<int64_t> bytes_;
    Samples latency_;  // microseconds
};

}  // namespace homa
