// Plain-text table formatting for the bench harnesses.
#pragma once

#include <string>
#include <vector>

namespace homa {

/// Fixed-width table: first row is the header. Column widths auto-sized.
class Table {
public:
    explicit Table(std::vector<std::string> header);

    void addRow(std::vector<std::string> row);
    std::string format() const;

    /// Helpers for cell formatting.
    static std::string num(double v, int precision = 2);
    static std::string bytes(int64_t v);  // human size: 1442, 9.7K, 10M ...

private:
    std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner for bench output.
std::string banner(const std::string& title);

}  // namespace homa
