#include "stats/counters.h"

namespace homa {

WastedBandwidthProbe::WastedBandwidthProbe(Network& net, Duration interval)
    : net_(net), interval_(interval) {}

void WastedBandwidthProbe::start(Time from, Time until) {
    until_ = until;
    net_.loop().at(from, [this] { sampleOnce(); });
}

void WastedBandwidthProbe::sampleOnce() {
    for (HostId h = 0; h < net_.hostCount(); h++) {
        samples_++;
        if (net_.downlink(h).idle() && net_.host(h).transport().hasWithheldWork()) {
            wasted_++;
        }
    }
    if (net_.loop().now() + interval_ <= until_) {
        net_.loop().after(interval_, [this] { sampleOnce(); });
    }
}

QueueOccupancy summarizeQueues(const std::vector<const EgressPort*>& ports,
                               Time elapsed) {
    QueueOccupancy out;
    if (ports.empty() || elapsed <= 0) return out;
    double meanSum = 0;
    for (const auto* p : ports) {
        meanSum += p->stats().meanQueueBytes(elapsed);
        out.maxBytes = std::max(out.maxBytes, p->stats().maxQueueBytes);
    }
    out.meanBytes = meanSum / static_cast<double>(ports.size());
    return out;
}

std::array<double, kPriorityLevels> priorityUsage(Network& net, Time elapsed) {
    std::array<double, kPriorityLevels> out{};
    if (elapsed <= 0) return out;
    double capacity = 0;
    for (HostId h = 0; h < net.hostCount(); h++) {
        const auto& st = net.downlink(h).stats();
        for (int p = 0; p < kPriorityLevels; p++) {
            out[p] += static_cast<double>(st.bytesByPriority[p]);
        }
        capacity += static_cast<double>(
            net.downlink(h).bandwidth().bytesIn(elapsed));
    }
    for (auto& v : out) v = capacity > 0 ? v / capacity : 0.0;
    return out;
}

double downlinkUtilization(Network& net, Time elapsed) {
    if (elapsed <= 0) return 0;
    double sent = 0, capacity = 0;
    for (HostId h = 0; h < net.hostCount(); h++) {
        sent += static_cast<double>(net.downlink(h).stats().wireBytesSent);
        capacity += static_cast<double>(
            net.downlink(h).bandwidth().bytesIn(elapsed));
    }
    return capacity > 0 ? sent / capacity : 0.0;
}

}  // namespace homa
