#include "stats/closed_loop.h"

#include <algorithm>
#include <cassert>

namespace homa {

ClosedLoopTracker::ClosedLoopTracker(int clients, Time windowStart,
                                     Time windowEnd)
    : windowStart_(windowStart),
      windowEnd_(windowEnd),
      completed_(clients, 0),
      bytes_(clients, 0) {
    assert(clients > 0 && windowEnd > windowStart);
}

void ClosedLoopTracker::record(int client, int64_t bytes, Duration elapsed,
                               Time completedAt) {
    assert(client >= 0 && client < clients());
    if (completedAt < windowStart_ || completedAt >= windowEnd_) return;
    completed_[client]++;
    bytes_[client] += bytes;
    latency_.add(toMicros(elapsed));
}

double ClosedLoopTracker::windowSeconds() const {
    return toSeconds(windowEnd_ - windowStart_);
}

ClosedLoopTracker::ClientRow ClosedLoopTracker::client(int c) const {
    assert(c >= 0 && c < clients());
    ClientRow row;
    row.completed = completed_[c];
    row.opsPerSec = static_cast<double>(completed_[c]) / windowSeconds();
    row.gbps = static_cast<double>(bytes_[c]) * 8.0 / (windowSeconds() * 1e9);
    return row;
}

uint64_t ClosedLoopTracker::totalCompleted() const {
    uint64_t total = 0;
    for (uint64_t c : completed_) total += c;
    return total;
}

double ClosedLoopTracker::aggregateOpsPerSec() const {
    return static_cast<double>(totalCompleted()) / windowSeconds();
}

double ClosedLoopTracker::aggregateGbps() const {
    int64_t total = 0;
    for (int64_t b : bytes_) total += b;
    return static_cast<double>(total) * 8.0 / (windowSeconds() * 1e9);
}

uint64_t ClosedLoopTracker::maxClientCompleted() const {
    return *std::max_element(completed_.begin(), completed_.end());
}

uint64_t ClosedLoopTracker::minClientCompleted() const {
    return *std::min_element(completed_.begin(), completed_.end());
}

double ClosedLoopTracker::latencyPercentileUs(double p) const {
    return latency_.percentile(p);
}

double ClosedLoopTracker::latencyMeanUs() const {
    return latency_.empty() ? 0 : latency_.mean();
}

}  // namespace homa
