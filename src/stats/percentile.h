// Sample collection with exact percentiles.
//
// Experiments collect up to a few million samples; storing them and using
// nth_element on demand is simpler and more accurate than sketches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace homa {

class Samples {
public:
    void add(double v);

    /// Append another collection's samples. The driver records into
    /// per-host collections and merges them in host order in *both* the
    /// serial and parallel engines, so the floating-point accumulation
    /// order of mean() — the one order-sensitive statistic here — is a pure
    /// function of the samples, not of engine or thread count.
    void absorb(const Samples& other);

    size_t count() const { return values_.size(); }
    bool empty() const { return values_.empty(); }
    double mean() const;
    double min() const;
    double max() const;

    /// Exact p-quantile (p in [0,1]) by nearest-rank; 0 if empty.
    double percentile(double p) const;

    double median() const { return percentile(0.50); }
    double p99() const { return percentile(0.99); }

    const std::vector<double>& values() const { return values_; }

private:
    mutable std::vector<double> values_;
    mutable bool sorted_ = false;
    double sum_ = 0;
};

}  // namespace homa
