#include "stats/tenant.h"

#include <cassert>

namespace homa {

TenantTracker::TenantTracker(int tenants, Time windowStart, Time windowEnd)
    : windowStart_(windowStart),
      windowEnd_(windowEnd),
      completed_(static_cast<size_t>(tenants)),
      bytes_(static_cast<size_t>(tenants)),
      latencyUs_(static_cast<size_t>(tenants)),
      slowdown_(static_cast<size_t>(tenants)),
      hedges_(static_cast<size_t>(tenants)) {
    assert(tenants > 0);
    assert(windowEnd_ > windowStart_);
}

void TenantTracker::record(int tenant, int64_t bytes, Duration elapsed,
                           double slowdown, Time completedAt) {
    assert(tenant >= 0 && tenant < tenants());
    if (completedAt < windowStart_ || completedAt >= windowEnd_) return;
    completed_[tenant]++;
    bytes_[tenant] += bytes;
    latencyUs_[tenant].add(toMicros(elapsed));
    slowdown_[tenant].add(slowdown);
}

uint64_t TenantTracker::totalCompleted() const {
    uint64_t total = 0;
    for (uint64_t c : completed_) total += c;
    return total;
}

double TenantTracker::windowSeconds() const {
    return toSeconds(windowEnd_ - windowStart_);
}

double TenantTracker::opsPerSec(int tenant) const {
    return static_cast<double>(completed_[tenant]) / windowSeconds();
}

double TenantTracker::gbps(int tenant) const {
    return static_cast<double>(bytes_[tenant]) * 8.0 /
           (windowSeconds() * 1e9);
}

double TenantTracker::latencyPercentileUs(int tenant, double p) const {
    return latencyUs_[tenant].percentile(p);
}

double TenantTracker::latencyMeanUs(int tenant) const {
    return latencyUs_[tenant].empty() ? 0 : latencyUs_[tenant].mean();
}

double TenantTracker::slowdownPercentile(int tenant, double p) const {
    return slowdown_[tenant].percentile(p);
}

TenantHedgeStats TenantTracker::totalHedges() const {
    TenantHedgeStats total;
    for (const TenantHedgeStats& h : hedges_) {
        total.issued += h.issued;
        total.won += h.won;
        total.cancelled += h.cancelled;
        total.failed += h.failed;
    }
    return total;
}

}  // namespace homa
