// Per-tenant SLO metrics for the multi-tenant serving harness.
//
// A serving experiment mixes tenants with different workloads and arrival
// modes against shared replica groups; aggregate percentiles hide exactly
// the cross-tenant interference the harness exists to measure. The
// tracker keeps one row per tenant: in-window completion counts and
// latency/slowdown percentiles, plus whole-run hedge/retry accounting
// (the hedge counters are conservation ledgers — issued must equal
// won + cancelled + failed — so they are *not* window-gated).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "stats/percentile.h"

namespace homa {

/// Hedge lifecycle counts of one tenant. Conservation invariant (the
/// serving tests pin it): issued == won + cancelled + failed once the
/// run has drained.
struct TenantHedgeStats {
    uint64_t issued = 0;     ///< hedge RPCs sent to a second replica
    uint64_t won = 0;        ///< hedge answered first (primary cancelled)
    uint64_t cancelled = 0;  ///< primary answered first (hedge cancelled)
    uint64_t failed = 0;     ///< neither response arrived by run end
};

class TenantTracker {
public:
    /// Tracks `tenants` tenants; only completions with `completedAt` in
    /// [windowStart, windowEnd) contribute to the latency/slowdown rows.
    TenantTracker(int tenants, Time windowStart, Time windowEnd);

    /// Record one completed logical RPC. `bytes` is request + response
    /// payload; `slowdown` is elapsed over the unloaded echo time.
    void record(int tenant, int64_t bytes, Duration elapsed, double slowdown,
                Time completedAt);

    void recordHedgeIssued(int tenant) { hedges_[tenant].issued++; }
    void recordHedgeWon(int tenant) { hedges_[tenant].won++; }
    void recordHedgeCancelled(int tenant) { hedges_[tenant].cancelled++; }
    void recordHedgeFailed(int tenant) { hedges_[tenant].failed++; }

    int tenants() const { return static_cast<int>(completed_.size()); }
    uint64_t completed(int tenant) const { return completed_[tenant]; }
    uint64_t totalCompleted() const;
    double opsPerSec(int tenant) const;
    double gbps(int tenant) const;

    /// In-window latency percentile (p in [0,1]) in microseconds; 0 when
    /// the tenant completed nothing in the window.
    double latencyPercentileUs(int tenant, double p) const;
    double latencyMeanUs(int tenant) const;
    double slowdownPercentile(int tenant, double p) const;

    const TenantHedgeStats& hedges(int tenant) const {
        return hedges_[tenant];
    }
    TenantHedgeStats totalHedges() const;

private:
    double windowSeconds() const;

    Time windowStart_;
    Time windowEnd_;
    std::vector<uint64_t> completed_;
    std::vector<int64_t> bytes_;
    std::vector<Samples> latencyUs_;
    std::vector<Samples> slowdown_;
    std::vector<TenantHedgeStats> hedges_;
};

}  // namespace homa
