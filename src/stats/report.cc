#include "stats/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace homa {

Table::Table(std::vector<std::string> header) { rows_.push_back(std::move(header)); }

void Table::addRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

std::string Table::format() const {
    std::vector<size_t> widths;
    for (const auto& row : rows_) {
        if (widths.size() < row.size()) widths.resize(row.size(), 0);
        for (size_t i = 0; i < row.size(); i++) {
            widths[i] = std::max(widths[i], row[i].size());
        }
    }
    std::ostringstream out;
    for (size_t r = 0; r < rows_.size(); r++) {
        for (size_t i = 0; i < rows_[r].size(); i++) {
            if (i > 0) out << "  ";
            out << rows_[r][i];
            for (size_t pad = rows_[r][i].size(); pad < widths[i]; pad++) out << ' ';
        }
        out << '\n';
        if (r == 0) {
            for (size_t i = 0; i < widths.size(); i++) {
                if (i > 0) out << "  ";
                out << std::string(widths[i], '-');
            }
            out << '\n';
        }
    }
    return out.str();
}

std::string Table::num(double v, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string Table::bytes(int64_t v) {
    char buf[64];
    if (v >= 10'000'000) {
        std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(v) / 1e6);
    } else if (v >= 10'000) {
        std::snprintf(buf, sizeof(buf), "%.1fK", static_cast<double>(v) / 1e3);
    } else {
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    }
    return buf;
}

std::string banner(const std::string& title) {
    std::string line(title.size() + 8, '=');
    return line + "\n==  " + title + "  ==\n" + line + "\n";
}

}  // namespace homa
