#include "stats/slowdown.h"

#include <algorithm>
#include <cassert>

#include "sim/packet.h"

namespace homa {

SlowdownTracker::SlowdownTracker(const SizeDistribution& dist, OracleFn oracle)
    : dist_(dist), oracle_(std::move(oracle)) {
    // "Short" per Figure 14: smallest 20% of messages for W1-W4; all
    // single-packet messages for W5.
    shortSizeLimit_ = std::max<uint32_t>(dist_.deciles()[1],
                                         0);  // 20% decile edge
    if (dist_.minSize() >= kMaxPayload) {
        shortSizeLimit_ = kMaxPayload;
    }
}

int SlowdownTracker::bucketFor(uint32_t size) const {
    const auto& d = dist_.deciles();
    for (int i = 0; i < 10; i++) {
        if (size <= d[i]) return i;
    }
    return 9;
}

void SlowdownTracker::record(uint32_t size, Duration elapsed,
                             Duration queueingDelay, Duration preemptionLag) {
    recordWithBest(size, elapsed, oracle_(size), queueingDelay, preemptionLag);
}

void SlowdownTracker::recordWithBest(uint32_t size, Duration elapsed,
                                     Duration best, Duration queueingDelay,
                                     Duration preemptionLag) {
    assert(best > 0);
    const double slowdown =
        static_cast<double>(elapsed) / static_cast<double>(best);
    buckets_[bucketFor(size)].add(slowdown);
    all_.add(slowdown);
    if (size <= shortSizeLimit_) {
        shortMessages_.push_back(
            CompletionRecord{size, elapsed, queueingDelay, preemptionLag});
    }
}

void SlowdownTracker::absorb(const SlowdownTracker& other) {
    for (int i = 0; i < 10; i++) buckets_[i].absorb(other.buckets_[i]);
    all_.absorb(other.all_);
    shortMessages_.insert(shortMessages_.end(), other.shortMessages_.begin(),
                          other.shortMessages_.end());
}

std::vector<SlowdownRow> SlowdownTracker::rows() const {
    std::vector<SlowdownRow> out;
    out.reserve(10);
    for (int i = 0; i < 10; i++) {
        SlowdownRow row;
        row.bucketMaxSize = dist_.deciles()[i];
        row.count = buckets_[i].count();
        row.median = buckets_[i].median();
        row.p99 = buckets_[i].p99();
        row.mean = buckets_[i].mean();
        out.push_back(row);
    }
    return out;
}

std::pair<Duration, Duration> SlowdownTracker::tailDelaySources() const {
    if (shortMessages_.empty()) return {0, 0};
    Samples delays;
    for (const auto& r : shortMessages_) delays.add(static_cast<double>(r.elapsed));
    const double lo = delays.percentile(0.98);
    Duration q = 0, lag = 0;
    int64_t n = 0;
    for (const auto& r : shortMessages_) {
        if (static_cast<double>(r.elapsed) < lo) continue;
        q += r.queueingDelay;
        lag += r.preemptionLag;
        n++;
    }
    if (n == 0) return {0, 0};
    return {q / n, lag / n};
}

}  // namespace homa
