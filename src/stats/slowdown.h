// Slowdown bookkeeping, bucketed exactly the way the paper plots it.
//
// Slowdown = actual completion time / best possible time for a message of
// that size on an unloaded network (§5.1). The x-axes of Figures 8-13 are
// linear in message count: one bucket per decile of the workload's size
// distribution. This tracker buckets by those deciles and reports median
// and 99th-percentile slowdown per bucket.
#pragma once

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.h"
#include "stats/percentile.h"
#include "workload/distribution.h"

namespace homa {

/// Best-case (unloaded) completion time for a message of a given size.
using OracleFn = std::function<Duration(uint32_t size)>;

struct SlowdownRow {
    uint32_t bucketMaxSize = 0;  // decile upper edge (the paper's tick label)
    size_t count = 0;
    double median = 0;
    double p99 = 0;
    double mean = 0;
};

/// One record per delivered message, kept for decomposition queries.
struct CompletionRecord {
    uint32_t size;
    Duration elapsed;
    Duration queueingDelay;
    Duration preemptionLag;
};

class SlowdownTracker {
public:
    SlowdownTracker(const SizeDistribution& dist, OracleFn oracle);

    void record(uint32_t size, Duration elapsed, Duration queueingDelay = 0,
                Duration preemptionLag = 0);

    /// Variant with an externally computed best-case time (e.g. a
    /// placement-aware oracle: intra-rack messages have a shorter path).
    void recordWithBest(uint32_t size, Duration elapsed, Duration best,
                        Duration queueingDelay = 0, Duration preemptionLag = 0);

    /// Merge another tracker's samples and records (same distribution).
    /// The driver keeps one tracker per destination host and merges them
    /// in host order — identically in the serial and parallel engines.
    void absorb(const SlowdownTracker& other);

    /// Per-decile rows (10 of them), in ascending size order.
    std::vector<SlowdownRow> rows() const;

    /// Slowdown percentile across all messages.
    double overallPercentile(double p) const { return all_.percentile(p); }
    size_t count() const { return all_.count(); }

    /// Figure 14: among "short" messages (smallest 20% of the workload; for
    /// W5, single-packet messages), average queueing delay and preemption
    /// lag of the messages whose total delay lies in [p98, p100] — i.e.
    /// near the tail. Returns {meanQueueingDelay, meanPreemptionLag}.
    std::pair<Duration, Duration> tailDelaySources() const;

    const SizeDistribution& distribution() const { return dist_; }
    OracleFn oracle() const { return oracle_; }

private:
    int bucketFor(uint32_t size) const;

    const SizeDistribution& dist_;
    OracleFn oracle_;
    std::array<Samples, 10> buckets_;
    Samples all_;
    uint32_t shortSizeLimit_;
    std::vector<CompletionRecord> shortMessages_;
};

}  // namespace homa
