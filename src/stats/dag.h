// Per-tree metrics for fan-out/fan-in RPC dependency DAGs.
//
// A DAG workload's unit of work is the whole tree, not the individual
// message: the coordinator's reply is gated on the slowest leaf-to-root
// path, so the numbers that matter are per-tree completion-time
// percentiles and per-tree slowdown (completion / unloaded critical
// path). `DagTracker` keeps one completion-count row per root plus
// aggregate completion and slowdown distributions, counting only trees
// completed inside the measurement window — the DAG analogue of
// `ClosedLoopTracker`.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "stats/percentile.h"

namespace homa {

class DagTracker {
public:
    /// Tracks `roots` coordinator hosts; only trees with `completedAt` in
    /// [windowStart, windowEnd) count.
    DagTracker(int roots, Time windowStart, Time windowEnd);

    /// Record one completed tree. `nodes`/`bytes` describe the tree,
    /// `elapsed` is root-issue-to-root-completion, `ideal` the unloaded
    /// critical path (0 = unknown; the slowdown sample is then skipped).
    void record(int root, int nodes, int64_t bytes, Duration elapsed,
                Duration ideal, Time completedAt);

    int roots() const { return static_cast<int>(completed_.size()); }
    uint64_t trees() const;               // in-window completions
    uint64_t rootTrees(int root) const { return completed_[root]; }
    uint64_t maxRootTrees() const;
    uint64_t minRootTrees() const;
    uint64_t totalNodes() const { return nodes_; }
    int64_t totalBytes() const { return bytes_; }

    double treesPerSec() const;
    double aggregateGbps() const;  // payload bytes moved, bits/s in window

    /// Tree completion-time percentile (p in [0,1]) in microseconds.
    double completionPercentileUs(double p) const;
    double completionMeanUs() const;

    /// Tree slowdown percentile; 0 when no tree carried an ideal time.
    double slowdownPercentile(double p) const;
    size_t slowdownSamples() const { return slowdown_.count(); }

private:
    double windowSeconds() const;

    Time windowStart_;
    Time windowEnd_;
    std::vector<uint64_t> completed_;
    uint64_t nodes_ = 0;
    int64_t bytes_ = 0;
    Samples completionUs_;
    Samples slowdown_;
};

}  // namespace homa
