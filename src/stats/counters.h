// Network-level probes: wasted receiver bandwidth (Figure 16), queue
// occupancy per switch level (Table 1), priority usage (Figure 21).
#pragma once

#include <array>
#include <vector>

#include "sim/network.h"

namespace homa {

/// Samples every receiver's downlink periodically; a sample is "wasted" if
/// the downlink is idle while the receiver holds at least one incomplete
/// inbound message to which it is not granting (§5.2, Figure 16).
class WastedBandwidthProbe {
public:
    WastedBandwidthProbe(Network& net, Duration interval = microseconds(2));

    void start(Time from, Time until);

    /// Fraction of (receiver, sample) pairs that were wasted.
    double wastedFraction() const {
        return samples_ > 0 ? static_cast<double>(wasted_) /
                                  static_cast<double>(samples_)
                            : 0.0;
    }

private:
    void sampleOnce();

    Network& net_;
    Duration interval_;
    Time until_ = 0;
    uint64_t samples_ = 0;
    uint64_t wasted_ = 0;
};

/// Table 1 row: queue occupancy for a set of ports over a measured window.
struct QueueOccupancy {
    double meanBytes = 0;  // average of per-port time-weighted means
    int64_t maxBytes = 0;  // max across ports
};

QueueOccupancy summarizeQueues(const std::vector<const EgressPort*>& ports,
                               Time elapsed);

/// Figure 21: wire bytes per priority level across all TOR->host downlinks,
/// as a fraction of total downlink capacity over `elapsed`.
std::array<double, kPriorityLevels> priorityUsage(Network& net, Time elapsed);

/// Aggregate goodput across downlinks (wire bytes / capacity).
double downlinkUtilization(Network& net, Time elapsed);

}  // namespace homa
