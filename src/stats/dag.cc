#include "stats/dag.h"

#include <algorithm>
#include <cassert>

namespace homa {

DagTracker::DagTracker(int roots, Time windowStart, Time windowEnd)
    : windowStart_(windowStart),
      windowEnd_(windowEnd),
      completed_(roots, 0) {
    assert(roots > 0 && windowEnd > windowStart);
}

void DagTracker::record(int root, int nodes, int64_t bytes, Duration elapsed,
                        Duration ideal, Time completedAt) {
    assert(root >= 0 && root < roots());
    if (completedAt < windowStart_ || completedAt >= windowEnd_) return;
    completed_[root]++;
    nodes_ += static_cast<uint64_t>(nodes);
    bytes_ += bytes;
    completionUs_.add(toMicros(elapsed));
    if (ideal > 0) {
        slowdown_.add(static_cast<double>(elapsed) /
                      static_cast<double>(ideal));
    }
}

double DagTracker::windowSeconds() const {
    return toSeconds(windowEnd_ - windowStart_);
}

uint64_t DagTracker::trees() const {
    uint64_t total = 0;
    for (uint64_t c : completed_) total += c;
    return total;
}

uint64_t DagTracker::maxRootTrees() const {
    return *std::max_element(completed_.begin(), completed_.end());
}

uint64_t DagTracker::minRootTrees() const {
    return *std::min_element(completed_.begin(), completed_.end());
}

double DagTracker::treesPerSec() const {
    return static_cast<double>(trees()) / windowSeconds();
}

double DagTracker::aggregateGbps() const {
    return static_cast<double>(bytes_) * 8.0 / (windowSeconds() * 1e9);
}

double DagTracker::completionPercentileUs(double p) const {
    return completionUs_.percentile(p);
}

double DagTracker::completionMeanUs() const {
    return completionUs_.empty() ? 0 : completionUs_.mean();
}

double DagTracker::slowdownPercentile(double p) const {
    return slowdown_.percentile(p);
}

}  // namespace homa
