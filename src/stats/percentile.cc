#include "stats/percentile.h"

#include <algorithm>
#include <cmath>

namespace homa {

void Samples::add(double v) {
    values_.push_back(v);
    sorted_ = false;
    sum_ += v;
}

void Samples::absorb(const Samples& other) {
    values_.insert(values_.end(), other.values_.begin(), other.values_.end());
    sorted_ = false;
    sum_ += other.sum_;
}

double Samples::mean() const {
    return values_.empty() ? 0.0 : sum_ / static_cast<double>(values_.size());
}

double Samples::min() const {
    if (values_.empty()) return 0.0;
    return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
    if (values_.empty()) return 0.0;
    return *std::max_element(values_.begin(), values_.end());
}

double Samples::percentile(double p) const {
    if (values_.empty()) return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    if (!sorted_) {
        std::sort(values_.begin(), values_.end());
        sorted_ = true;
    }
    const size_t idx = std::min(
        values_.size() - 1,
        static_cast<size_t>(std::ceil(p * static_cast<double>(values_.size())) -
                            (p > 0.0 ? 1 : 0)));
    return values_[idx];
}

}  // namespace homa
