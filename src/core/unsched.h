// Priority allocation for unscheduled packets (§3.4, Figure 4).
//
// A receiver splits the 8 levels between unscheduled and scheduled traffic
// in proportion to the unscheduled fraction of its incoming bytes, then
// picks message-size cutoffs so each unscheduled level carries an equal
// share of unscheduled bytes (smaller messages on higher levels).
#pragma once

#include <cstdint>
#include <vector>

#include "core/homa_config.h"
#include "workload/distribution.h"

namespace homa {

struct PriorityAllocation {
    int logicalLevels = 8;
    int unschedLevels = 1;
    int schedLevels = 7;

    /// Ascending size cutoffs, one fewer than unschedLevels: a message of
    /// length <= cutoffs[i] sends its unscheduled bytes at logical priority
    /// (top - i); longer than all cutoffs -> the lowest unscheduled level.
    std::vector<uint32_t> cutoffs;

    /// Logical priority for the unscheduled bytes of a message.
    int unschedPriorityFor(uint32_t messageLength) const;

    /// Lowest logical level reserved for unscheduled traffic.
    int lowestUnschedLevel() const { return logicalLevels - unschedLevels; }
};

/// Compute the allocation from a known workload distribution; this is what
/// the paper's implementation did ("priorities were precomputed based on
/// knowledge of the benchmark workload").
PriorityAllocation computeAllocation(const SizeDistribution& dist,
                                     const HomaConfig& cfg, int64_t rttBytes);

/// Online variant: a receiver measures its own incoming message sizes and
/// recomputes the allocation periodically (§3.4 "uses recent traffic
/// patterns"). Bounded memory: keeps a reservoir of recent sizes.
class TrafficMeter {
public:
    explicit TrafficMeter(size_t reservoirSize = 4096, uint64_t seed = 7);

    void recordMessage(uint32_t length);
    size_t observed() const { return observed_; }

    /// Allocation from the measured sizes; falls back to `fallback` until
    /// enough messages (>= 100) have been seen.
    PriorityAllocation allocate(const HomaConfig& cfg, int64_t rttBytes,
                                const PriorityAllocation& fallback) const;

private:
    std::vector<uint32_t> reservoir_;
    size_t reservoirCapacity_ = 0;
    size_t observed_ = 0;
    Rng rng_;
};

/// Shared core: allocation from an explicit sample of message sizes.
PriorityAllocation allocationFromSample(std::vector<uint32_t> sizes,
                                        const HomaConfig& cfg,
                                        int64_t rttBytes);

}  // namespace homa
