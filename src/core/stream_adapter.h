// Byte streams over Homa (§3.1, §3.8 future work).
//
// The paper: "traditional applications could be supported by implementing
// a socket-like byte stream interface above Homa" and "a TCP-like
// streaming mechanism can be implemented as a very thin layer on top of
// Homa that discards duplicate data and preserves order."
//
// This is that thin layer. A HomaStream chops an outgoing byte stream into
// messages (one per write, split at a configurable chunk size) tagged with
// a per-stream sequence number carried in the message id. The receiving
// side reorders by sequence number, discards duplicates (Homa is
// at-least-once), and delivers a strictly ordered byte stream to the
// application. Unlike TCP-on-a-connection, *different* streams between the
// same pair of hosts share nothing: no head-of-line blocking across
// streams, and short streams still enjoy Homa's SRPT.
//
// Message id layout (64 bits) — globally unique, so streams from
// different hosts can target one receiver without collisions:
//   [ 1 bit kRpcResponseBit=0 ][ 15 bits src host ][ 16 bits stream id ]
//   [ 32 bits sequence ]
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "core/homa_transport.h"
#include "sim/network.h"

namespace homa {

constexpr MsgId kStreamSeqMask = (1ull << 32) - 1;
constexpr MsgId kStreamIdMask = (1ull << 16) - 1;
constexpr MsgId kStreamHostMask = (1ull << 15) - 1;

inline MsgId streamMessageId(HostId src, uint32_t streamId, uint64_t seq) {
    return (static_cast<MsgId>(static_cast<uint32_t>(src) & kStreamHostMask)
            << 48) |
           (static_cast<MsgId>(streamId & kStreamIdMask) << 32) |
           (seq & kStreamSeqMask);
}
inline uint32_t streamIdOf(MsgId id) {
    return static_cast<uint32_t>((id >> 32) & kStreamIdMask);
}
inline uint64_t streamSeqOf(MsgId id) { return id & kStreamSeqMask; }

/// One host's endpoint for stream traffic. Owns the transport delivery
/// callback of its host (like RpcEndpoint does for RPCs; use one or the
/// other per host, or chain callbacks externally).
class StreamMux {
public:
    /// Bytes delivered in order on stream `streamId` from host `from`.
    using ReadCallback =
        std::function<void(HostId from, uint32_t streamId,
                           const std::vector<uint8_t>& data)>;

    StreamMux(Network& net, HostId self);

    /// Open an outgoing stream to `peer`. Stream ids are unique per mux.
    uint32_t openStream(HostId peer);

    /// Append bytes to a stream; transmits immediately as one or more
    /// messages of at most `chunkBytes`. Data content is synthesized
    /// (deterministic pattern) since the simulator carries sizes; the
    /// pattern is checked end-to-end by tests via the length+seq framing.
    void write(uint32_t streamId, uint32_t bytes);

    void setReadCallback(ReadCallback cb) { onRead_ = std::move(cb); }

    /// Total in-order bytes delivered from (peer, stream).
    uint64_t bytesRead(HostId from, uint32_t streamId) const;

    /// Writer-side position (bytes accepted for sending).
    uint64_t bytesWritten(uint32_t streamId) const;

    uint32_t chunkBytes = 64 * 1024;  // max message size per chunk

private:
    struct OutStream {
        HostId peer;
        uint64_t nextSeq = 0;
        uint64_t written = 0;
    };
    struct InStream {
        uint64_t nextSeq = 0;      // next sequence to deliver
        uint64_t delivered = 0;    // in-order bytes handed up
        std::map<uint64_t, uint32_t> pending;  // seq -> length (reordered)
    };

    void onDelivered(const Message& m);

    Network& net_;
    HostId self_;
    uint32_t nextStreamId_ = 1;
    std::map<uint32_t, OutStream> out_;
    std::map<std::pair<HostId, uint32_t>, InStream> in_;
    ReadCallback onRead_;
};

}  // namespace homa
