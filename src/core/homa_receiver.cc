#include "core/homa_receiver.h"

#include <algorithm>
#include <cassert>

namespace homa {

HomaReceiver::HomaReceiver(HomaContext& ctx, DeliverFn deliver)
    : ctx_(ctx),
      deliver_(std::move(deliver)),
      sched_(makeGrantScheduler(ctx.cfg.grantPolicy)),
      timeoutScan_(ctx.host.loop(), [this] { checkTimeouts(); }) {}

bool HomaReceiver::recentlyCompleted(MsgId id) const {
    return completedSet_.count(id) != 0;
}

void HomaReceiver::noteCompleted(MsgId id) {
    completedSet_.insert(id);
    completedFifo_.push_back(id);
    while (completedFifo_.size() > 8192) {
        completedSet_.erase(completedFifo_.front());
        completedFifo_.pop_front();
    }
}

void HomaReceiver::handleData(const Packet& p) {
    if (recentlyCompleted(p.msg)) return;  // duplicate tail of a done message

    auto it = in_.find(p.msg);
    if (it == in_.end()) {
        Message meta;
        meta.id = p.msg;
        meta.src = p.src;
        meta.dst = p.dst;
        meta.length = p.messageLength;
        meta.flags = p.flags;
        meta.created = p.created;  // stamped by the sending host
        InMessage im(meta, p.messageLength);
        // The sender transmitted its unscheduled region blindly; those
        // bytes count as already granted.
        im.grantedTo = ctx_.unschedLimitFor(p.messageLength, p.flags);
        it = in_.emplace(p.msg, std::move(im)).first;
        if (!it->second.fullyGranted()) {
            sched_->add(p.msg, it->second.remaining(), meta.created);
        }
    }

    InMessage& im = it->second;
    im.lastActivity = ctx_.host.loop().now();
    const uint32_t fresh = im.reasm.addRange(p.offset, p.length);
    im.acc.packetsReceived++;
    im.acc.duplicateBytes += p.length - fresh;
    im.acc.queueingDelay += p.queueingDelay;
    im.acc.preemptionLag += p.preemptionLag;

    if (im.reasm.complete()) {
        Message meta = im.meta;
        DeliveryInfo info = im.acc;
        info.completed = ctx_.host.loop().now();
        noteCompleted(p.msg);
        sched_->remove(p.msg);
        in_.erase(it);
        applyGrantDecision();  // a finished message may unblock a withheld one
        deliver_(meta, info);
        return;
    }
    if (sched_->contains(p.msg)) sched_->update(p.msg, im.remaining());
    applyGrantDecision();
    if (!timeoutScan_.armed()) timeoutScan_.schedule(ctx_.cfg.resendTimeout / 2);
}

void HomaReceiver::handleBusy(const Packet& p) {
    auto it = in_.find(p.msg);
    if (it == in_.end()) return;
    it->second.lastActivity = ctx_.host.loop().now();
    it->second.resends = 0;  // the sender is alive, just occupied
}

void HomaReceiver::issueGrant(InMessage& im, int64_t window, int logical) {
    const int64_t target = std::min<int64_t>(
        im.reasm.messageLength(), im.reasm.receivedBytes() + window);
    const bool extends = target > im.grantedTo;
    // Re-announce even without new bytes when the scheduled priority
    // changed and granted data is still in flight (§3.4: the receiver
    // sets the priority of each scheduled packet dynamically; a stale
    // low priority would otherwise stick to the rest of the window).
    const bool reprioritize =
        logical != im.lastGrantPriority &&
        im.grantedTo > static_cast<int64_t>(im.reasm.receivedBytes());
    if (!extends && !reprioritize) return;
    Packet g;
    g.type = PacketType::Grant;
    g.dst = im.meta.src;
    g.msg = im.meta.id;
    g.grantOffset = static_cast<uint32_t>(std::max<int64_t>(target, im.grantedTo));
    g.grantPriority = static_cast<uint8_t>(logical);
    g.priority = ctx_.controlPriority();
    ctx_.host.pushPacket(g);
    im.grantedTo = std::max(im.grantedTo, target);
    im.lastGrantPriority = logical;
}

void HomaReceiver::applyGrantDecision() {
    GrantContext gctx;
    gctx.degree = ctx_.cfg.overcommitDegree;
    gctx.schedLevels = ctx_.prio.schedLevels();
    gctx.rttBytes = ctx_.rttBytes;
    gctx.oldestReservation = ctx_.cfg.oldestReservation;
    sched_->decide(gctx, grantBuf_);
    for (const ActiveGrant& g : grantBuf_) {
        auto it = in_.find(g.id);
        if (it == in_.end()) continue;
        issueGrant(it->second, g.window, g.logicalPriority);
        // A fully-granted message needs no more scheduling; it leaves the
        // active set (and frees its slot) until it completes or aborts.
        if (it->second.fullyGranted()) sched_->remove(g.id);
    }
}

void HomaReceiver::checkTimeouts() {
    const Time now = ctx_.host.loop().now();
    bool anyIncomplete = false;
    for (auto it = in_.begin(); it != in_.end();) {
        InMessage& im = it->second;
        // Only messages we are *expecting* data from can time out: granted
        // (or unscheduled) bytes outstanding. A message the receiver is
        // intentionally withholding grants from is silent by design.
        const bool expecting =
            im.grantedTo > static_cast<int64_t>(im.reasm.receivedBytes());
        // Exponential backoff: under load, low-priority data can sit
        // queued for many milliseconds behind higher-priority messages;
        // only sustained *silence* (no data, no BUSY) should abort.
        const Duration patience =
            ctx_.cfg.resendTimeout * (1ll << std::min(im.resends, 5));
        if (!expecting || now - im.lastActivity < patience) {
            anyIncomplete = true;
            ++it;
            continue;
        }
        if (im.resends >= ctx_.cfg.maxResends) {
            aborted_++;
            sched_->remove(it->first);
            it = in_.erase(it);
            continue;
        }
        // First missing range, clipped to what was actually granted — a
        // RESEND must never ask for (and thereby implicitly authorize)
        // bytes the receiver has not scheduled.
        auto gap = im.reasm.firstGap();
        assert(gap.has_value());
        const int64_t gapEnd =
            std::min<int64_t>(gap->first + gap->second, im.grantedTo);
        if (gapEnd <= gap->first) {
            ++it;
            continue;
        }
        Packet r;
        r.type = PacketType::Resend;
        r.dst = im.meta.src;
        r.msg = im.meta.id;
        r.offset = gap->first;
        r.length = static_cast<uint32_t>(gapEnd - gap->first);
        r.priority = ctx_.controlPriority();
        ctx_.host.pushPacket(r);
        im.resends++;
        im.lastActivity = now;
        resendsSent_++;
        anyIncomplete = true;
        ++it;
    }
    if (anyIncomplete) timeoutScan_.schedule(ctx_.cfg.resendTimeout / 2);
}

}  // namespace homa
