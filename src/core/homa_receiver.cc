#include "core/homa_receiver.h"

#include <algorithm>
#include <cassert>

namespace homa {

HomaReceiver::HomaReceiver(HomaContext& ctx, DeliverFn deliver)
    : ctx_(ctx),
      deliver_(std::move(deliver)),
      timeoutScan_(ctx.host.loop(), [this] { checkTimeouts(); }) {}

bool HomaReceiver::recentlyCompleted(MsgId id) const {
    return completedSet_.count(id) != 0;
}

void HomaReceiver::noteCompleted(MsgId id) {
    completedSet_.insert(id);
    completedFifo_.push_back(id);
    while (completedFifo_.size() > 8192) {
        completedSet_.erase(completedFifo_.front());
        completedFifo_.pop_front();
    }
}

void HomaReceiver::handleData(const Packet& p) {
    if (recentlyCompleted(p.msg)) return;  // duplicate tail of a done message

    auto it = in_.find(p.msg);
    if (it == in_.end()) {
        Message meta;
        meta.id = p.msg;
        meta.src = p.src;
        meta.dst = p.dst;
        meta.length = p.messageLength;
        meta.flags = p.flags;
        meta.created = p.created;  // stamped by the sending host
        InMessage im(meta, p.messageLength);
        // The sender transmitted its unscheduled region blindly; those
        // bytes count as already granted.
        im.grantedTo = ctx_.unschedLimitFor(p.messageLength, p.flags);
        it = in_.emplace(p.msg, std::move(im)).first;
    }

    InMessage& im = it->second;
    im.lastActivity = ctx_.host.loop().now();
    const uint32_t fresh = im.reasm.addRange(p.offset, p.length);
    im.acc.packetsReceived++;
    im.acc.duplicateBytes += p.length - fresh;
    im.acc.queueingDelay += p.queueingDelay;
    im.acc.preemptionLag += p.preemptionLag;

    if (im.reasm.complete()) {
        Message meta = im.meta;
        DeliveryInfo info = im.acc;
        info.completed = ctx_.host.loop().now();
        noteCompleted(p.msg);
        in_.erase(it);
        updateGrants();  // a finished message may unblock a withheld one
        deliver_(meta, info);
        return;
    }
    updateGrants();
    if (!timeoutScan_.armed()) timeoutScan_.schedule(ctx_.cfg.resendTimeout / 2);
}

void HomaReceiver::handleBusy(const Packet& p) {
    auto it = in_.find(p.msg);
    if (it == in_.end()) return;
    it->second.lastActivity = ctx_.host.loop().now();
    it->second.resends = 0;  // the sender is alive, just occupied
}

void HomaReceiver::updateGrants() {
    // Messages that still need grant progress, SRPT order (fewest bytes
    // remaining to receive first).
    std::vector<InMessage*> needy;
    needy.reserve(in_.size());
    for (auto& [id, im] : in_) {
        if (im.grantedTo < static_cast<int64_t>(im.reasm.messageLength())) {
            needy.push_back(&im);
        }
    }
    std::sort(needy.begin(), needy.end(), [](const InMessage* a, const InMessage* b) {
        if (a->remaining() != b->remaining()) return a->remaining() < b->remaining();
        return a->meta.id < b->meta.id;  // deterministic tie-break
    });

    const int degree = ctx_.cfg.overcommitDegree > 0 ? ctx_.cfg.overcommitDegree
                                                     : ctx_.alloc.schedLevels;
    int active = std::min<int>(degree, static_cast<int>(needy.size()));

    // §5.1 future-work extension: the oldest message always stays active
    // (with a reduced grant window) so pure SRPT cannot starve it forever.
    InMessage* reserved = nullptr;
    if (ctx_.cfg.oldestReservation > 0 && !needy.empty()) {
        reserved = *std::min_element(
            needy.begin(), needy.end(), [](const InMessage* a, const InMessage* b) {
                return a->meta.created < b->meta.created;
            });
        const bool alreadyActive =
            std::find(needy.begin(), needy.begin() + active, reserved) !=
            needy.begin() + active;
        if (!alreadyActive) {
            // Give it the last active slot.
            std::iter_swap(std::find(needy.begin(), needy.end(), reserved),
                           needy.begin() + active - 1);
        }
    }
    withheld_ = static_cast<int>(needy.size()) - active;

    auto grantUpTo = [&](InMessage& im, int64_t window, int logical) {
        const int64_t target = std::min<int64_t>(
            im.reasm.messageLength(), im.reasm.receivedBytes() + window);
        const bool extends = target > im.grantedTo;
        // Re-announce even without new bytes when the scheduled priority
        // changed and granted data is still in flight (§3.4: the receiver
        // sets the priority of each scheduled packet dynamically; a stale
        // low priority would otherwise stick to the rest of the window).
        const bool reprioritize =
            logical != im.lastGrantPriority &&
            im.grantedTo > static_cast<int64_t>(im.reasm.receivedBytes());
        if (!extends && !reprioritize) return;
        Packet g;
        g.type = PacketType::Grant;
        g.dst = im.meta.src;
        g.msg = im.meta.id;
        g.grantOffset = static_cast<uint32_t>(std::max<int64_t>(target, im.grantedTo));
        g.grantPriority = static_cast<uint8_t>(logical);
        g.priority = ctx_.controlPriority();
        ctx_.host.pushPacket(g);
        im.grantedTo = std::max(im.grantedTo, target);
        im.lastGrantPriority = logical;
    };

    for (int i = 0; i < active; i++) {
        InMessage& im = *needy[i];
        // Lowest-available-level policy (Figure 5): with k active messages
        // they occupy logical levels 0..k-1; the shortest (i = 0) gets the
        // highest of those. Extra active messages (degree > sched levels)
        // share the top scheduled level.
        int logical = std::min(active - 1 - i, ctx_.alloc.schedLevels - 1);
        int64_t window = ctx_.rttBytes;
        if (&im == reserved && active > 1) {
            // Dedicating bandwidth in a priority system means sending at a
            // priority that will actually be served: the reserved message
            // trickles fraction*RTTbytes per RTT at the *top* scheduled
            // level, i.e. ~fraction of the downlink regardless of SRPT.
            window = std::max<int64_t>(
                kMaxPayload,
                static_cast<int64_t>(ctx_.cfg.oldestReservation *
                                     static_cast<double>(ctx_.rttBytes)));
            logical = ctx_.alloc.schedLevels - 1;
        }
        grantUpTo(im, window, logical);
    }
}

void HomaReceiver::checkTimeouts() {
    const Time now = ctx_.host.loop().now();
    bool anyIncomplete = false;
    for (auto it = in_.begin(); it != in_.end();) {
        InMessage& im = it->second;
        // Only messages we are *expecting* data from can time out: granted
        // (or unscheduled) bytes outstanding. A message the receiver is
        // intentionally withholding grants from is silent by design.
        const bool expecting =
            im.grantedTo > static_cast<int64_t>(im.reasm.receivedBytes());
        // Exponential backoff: under load, low-priority data can sit
        // queued for many milliseconds behind higher-priority messages;
        // only sustained *silence* (no data, no BUSY) should abort.
        const Duration patience =
            ctx_.cfg.resendTimeout * (1ll << std::min(im.resends, 5));
        if (!expecting || now - im.lastActivity < patience) {
            anyIncomplete = true;
            ++it;
            continue;
        }
        if (im.resends >= ctx_.cfg.maxResends) {
            aborted_++;
            it = in_.erase(it);
            continue;
        }
        // First missing range, clipped to what was actually granted — a
        // RESEND must never ask for (and thereby implicitly authorize)
        // bytes the receiver has not scheduled.
        auto gap = im.reasm.firstGap();
        assert(gap.has_value());
        const int64_t gapEnd =
            std::min<int64_t>(gap->first + gap->second, im.grantedTo);
        if (gapEnd <= gap->first) {
            ++it;
            continue;
        }
        Packet r;
        r.type = PacketType::Resend;
        r.dst = im.meta.src;
        r.msg = im.meta.id;
        r.offset = gap->first;
        r.length = static_cast<uint32_t>(gapEnd - gap->first);
        r.priority = ctx_.controlPriority();
        ctx_.host.pushPacket(r);
        im.resends++;
        im.lastActivity = now;
        resendsSent_++;
        anyIncomplete = true;
        ++it;
    }
    if (anyIncomplete) timeoutScan_.schedule(ctx_.cfg.resendTimeout / 2);
}

}  // namespace homa
