// HomaTransport: glue between sender half, receiver half, and the host.
#pragma once

#include <functional>
#include <memory>

#include "core/homa_context.h"
#include "core/homa_receiver.h"
#include "core/homa_sender.h"
#include "sim/topology.h"
#include "transport/transport.h"
#include "workload/workloads.h"

namespace homa {

class HomaTransport final : public Transport {
public:
    /// `precomputed`, when given, seeds the unscheduled priority allocation
    /// exactly like the paper's implementation (§4). Without it, the
    /// transport starts from a single unscheduled level and adapts online
    /// from measured traffic (§3.4).
    HomaTransport(HostServices& host, HomaConfig cfg, int64_t rttBytes,
                  const PriorityAllocation* precomputed);

    void sendMessage(const Message& m) override;
    void handlePacket(const Packet& p) override;
    std::optional<Packet> pullPacket() override;
    bool hasWithheldWork() const override { return receiver_->hasWithheldWork(); }

    /// RESEND arrived for a message this sender no longer (or never) knew.
    /// The RPC layer uses this for at-least-once re-execution (§3.7/§3.8).
    using UnknownResendHandler = std::function<void(const Packet&)>;
    void setUnknownResendHandler(UnknownResendHandler h) {
        onUnknownResend_ = std::move(h);
    }

    const HomaContext& context() const { return ctx_; }
    HomaSender& sender() { return *sender_; }
    HomaReceiver& receiver() { return *receiver_; }

    /// Build a factory for Network construction.
    static TransportFactory factory(HomaConfig cfg, const NetworkConfig& net,
                                    const SizeDistribution* workload);

private:
    HomaContext ctx_;
    std::unique_ptr<HomaSender> sender_;
    std::unique_ptr<HomaReceiver> receiver_;
    TrafficMeter meter_;
    bool onlineAllocation_;
    uint64_t messagesSinceRealloc_ = 0;
    UnknownResendHandler onUnknownResend_;
};

}  // namespace homa
