#include "core/rpc.h"

#include <cassert>

namespace homa {

RpcEndpoint::RpcEndpoint(Network& net, HostId self)
    : net_(net),
      self_(self),
      scan_(net.loop(), [this] { checkTimeouts(); }) {
    handler_ = [](const Message& request) { return request.length; };  // echo
    Transport& t = net_.host(self_).transport();
    t.setDeliveryCallback([this](const Message& m, const DeliveryInfo& info) {
        onDelivered(m, info);
    });
    if (auto* homa = dynamic_cast<HomaTransport*>(&t)) {
        homa->setUnknownResendHandler(
            [this](const Packet& p) { onUnknownResend(p); });
    }
}

RpcId RpcEndpoint::call(HostId server, uint32_t requestSize, ResponseCallback cb) {
    Message req;
    req.id = net_.nextMsgId() << 1;  // keep the top bit free for responses
    req.src = self_;
    req.dst = server;
    req.length = requestSize;
    req.flags = kFlagRequest;
    // Self-inflicted incast detection (§3.6): mark requests once too many
    // RPCs are outstanding so the server limits the response's unscheduled
    // bytes.
    if (static_cast<int>(pending_.size()) >= incastThreshold_) {
        req.flags |= kFlagIncastMark;
    }

    pending_.emplace(req.id, PendingRpc{server, requestSize, net_.loop().now(),
                                        std::move(cb), 0});
    stats_.issued++;
    net_.sendMessage(req);
    if (!scan_.armed()) scan_.schedule(responseTimeout_ / 2);
    return req.id;
}

bool RpcEndpoint::cancel(RpcId id) {
    const auto it = pending_.find(id);
    if (it == pending_.end()) return false;
    pending_.erase(it);
    stats_.cancelled++;
    return true;
}

void RpcEndpoint::respond(const Message& request, uint32_t responseSize) {
    Message resp;
    resp.id = request.id | kRpcResponseBit;
    resp.src = self_;
    resp.dst = request.src;
    resp.length = std::max<uint32_t>(1, responseSize);
    // Propagate the incast mark so the response's unscheduled bytes are
    // capped (the whole point of the mechanism).
    resp.flags = static_cast<uint16_t>(request.flags & kFlagIncastMark);
    answered_[resp.id] = resp.length;
    if (answered_.size() > 16384) answered_.erase(answered_.begin());
    net_.sendMessage(resp);
}

void RpcEndpoint::onDelivered(const Message& m, const DeliveryInfo& info) {
    (void)info;
    if ((m.flags & kFlagRequest) != 0) {
        // Server side: execute and respond. Re-arrival of a request we
        // already answered means re-execution (at-least-once).
        if (answered_.count(m.id | kRpcResponseBit) != 0) stats_.reexecutions++;
        if (asyncHandler_) {
            // Deferred: the handler answers when its own work (e.g. child
            // RPCs) completes. Copy the request; `m` dies with this frame.
            asyncHandler_(m, [this, req = m](uint32_t responseSize) {
                respond(req, responseSize);
            });
            return;
        }
        respond(m, handler_(m));
        return;
    }
    if (!isResponseId(m.id)) return;  // plain one-way message, not ours
    auto it = pending_.find(requestIdOf(m.id));
    if (it == pending_.end()) return;  // duplicate response after retry
    PendingRpc rpc = std::move(it->second);
    pending_.erase(it);
    stats_.completed++;
    if (rpc.cb) {
        rpc.cb(requestIdOf(m.id), rpc.requestSize, m.length,
               net_.loop().now() - rpc.issued);
    }
}

void RpcEndpoint::onUnknownResend(const Packet& p) {
    // Someone wants a message this transport no longer has.
    if (isResponseId(p.msg)) {
        // Client RESENDing a response we forgot: ask for the request again;
        // its re-delivery re-executes the RPC (§3.7).
        auto it = answered_.find(p.msg);
        if (it != answered_.end()) {
            // Regenerate the response without re-execution.
            Message req;
            req.id = requestIdOf(p.msg);
            req.src = self_;  // respond() flips src/dst via request fields
            req.dst = p.src;
            req.flags = kFlagRequest;
            Message fake;
            fake.id = req.id;
            fake.src = p.src;
            fake.dst = self_;
            fake.length = 1;
            respond(fake, it->second);
            return;
        }
        Packet r;
        r.type = PacketType::Resend;
        r.dst = p.src;
        r.msg = requestIdOf(p.msg);
        r.offset = 0;
        r.length = kMaxPayload;
        r.priority = kHighestPriority;
        net_.host(self_).pushPacket(r);
    }
}

void RpcEndpoint::checkTimeouts() {
    const Time now = net_.loop().now();
    for (auto it = pending_.begin(); it != pending_.end();) {
        PendingRpc& rpc = it->second;
        // Exponential backoff: deliberate incast legitimately delays
        // responses for many milliseconds; do not storm the server.
        const Duration wait = responseTimeout_ * (1ll << std::min(rpc.retries, 6));
        if (now - rpc.issued < wait) {
            ++it;
            continue;
        }
        if (rpc.retries >= maxRetries_) {
            stats_.aborted++;
            it = pending_.erase(it);
            continue;
        }
        // RESEND for the response (even if the request never fully made it;
        // the server answers a RESEND for an unknown response by RESENDing
        // the request, §3.7).
        Packet r;
        r.type = PacketType::Resend;
        r.dst = rpc.server;
        r.msg = it->first | kRpcResponseBit;
        r.offset = 0;
        r.length = kMaxPayload;
        r.priority = kHighestPriority;
        net_.host(self_).pushPacket(r);
        rpc.retries++;
        stats_.retries++;
        ++it;
    }
    if (!pending_.empty()) scan_.schedule(responseTimeout_ / 2);
}

}  // namespace homa
