// Tunables of the Homa protocol (§3 of the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "sched/grant_scheduler.h"
#include "sim/time.h"

namespace homa {

struct HomaConfig {
    /// Grant scheduling policy of the receiver (src/sched/). Srpt is the
    /// paper's receiver; Unlimited turns Homa into the "basic transport"
    /// strawman; Fifo/RoundRobin are ordering ablations approximating the
    /// fair-share baselines.
    GrantPolicy grantPolicy = GrantPolicy::Srpt;

    /// Bandwidth-delay product of the grant control loop: a sender may
    /// transmit this many bytes of a message blindly (§2.2); receivers keep
    /// this many bytes granted-but-not-received per active message (§3.3).
    /// <= 0 means "derive from the topology" (~9.7 KB on the fat-tree).
    int64_t rttBytes = 0;

    /// Logical priority levels Homa's algorithms work with (the paper uses
    /// all 8 switch levels).
    int logicalPriorities = 8;

    /// Wire priority levels actually emitted. The HomaPx variants of
    /// Figures 8/9 collapse adjacent logical levels onto x wire levels;
    /// the internal allocation (and thus the overcommitment degree) is
    /// unchanged, only the packet markings coarsen.
    int wirePriorities = 8;

    /// Unscheduled priority levels. <= 0 means "allocate by measured
    /// unscheduled byte fraction" (Figure 4): round(F * logicalPriorities),
    /// clamped to [1, logicalPriorities - 1].
    int unschedPriorities = 0;

    /// Degree of overcommitment. <= 0 means "number of scheduled priority
    /// levels", the paper's default policy (§3.5).
    int overcommitDegree = 0;

    /// Max unscheduled bytes per message. <= 0 means rttBytes (the paper's
    /// default); Figure 20 sweeps this.
    int64_t unschedBytesLimit = 0;

    /// Explicit unscheduled cutoffs for sweeps (Figure 18); empty means
    /// "balance unscheduled bytes across levels" (the paper's policy).
    std::vector<uint32_t> explicitCutoffs;

    /// Loss recovery (§3.7). Timeouts are a few milliseconds in the paper.
    Duration resendTimeout = milliseconds(2);
    int maxResends = 5;

    /// Incast control (§3.6): requests beyond this many outstanding RPCs
    /// are marked; marked responses cap their unscheduled bytes.
    bool incastControl = true;
    int incastThreshold = 25;
    int64_t incastUnschedBytes = 320;

    /// Keep sender state around after the last byte is sent so RESENDs can
    /// be answered (§3.8 discards on response *transmission*; we linger a
    /// little to serve retransmissions of one-way messages).
    Duration senderLinger = milliseconds(10);

    /// Future-work extension the paper sketches in §5.1: dedicate a small
    /// fraction of receiver downlink bandwidth to the *oldest* incomplete
    /// message, so SRPT cannot starve the very largest messages (their
    /// 99th-percentile slowdown is 100x+ under plain SRPT). 0 disables;
    /// 0.1 reserves ~10% of the grant window for the oldest message.
    double oldestReservation = 0.0;
};

}  // namespace homa
