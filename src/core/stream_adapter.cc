#include "core/stream_adapter.h"

#include <cassert>

namespace homa {

StreamMux::StreamMux(Network& net, HostId self) : net_(net), self_(self) {
    net_.host(self_).transport().setDeliveryCallback(
        [this](const Message& m, const DeliveryInfo&) { onDelivered(m); });
}

uint32_t StreamMux::openStream(HostId peer) {
    const uint32_t id = nextStreamId_++;
    assert(id <= kStreamIdMask);
    out_.emplace(id, OutStream{peer, 0, 0});
    return id;
}

void StreamMux::write(uint32_t streamId, uint32_t bytes) {
    auto it = out_.find(streamId);
    assert(it != out_.end());
    OutStream& os = it->second;
    while (bytes > 0) {
        const uint32_t chunk = std::min(bytes, chunkBytes);
        Message m;
        m.id = streamMessageId(self_, streamId, os.nextSeq++);
        m.src = self_;
        m.dst = os.peer;
        m.length = chunk;
        net_.sendMessage(m);
        os.written += chunk;
        bytes -= chunk;
    }
}

void StreamMux::onDelivered(const Message& m) {
    const uint32_t sid = streamIdOf(m.id);
    const uint64_t seq = streamSeqOf(m.id);
    InStream& is = in_[{m.src, sid}];
    if (seq < is.nextSeq || is.pending.count(seq) != 0) {
        return;  // duplicate (at-least-once re-delivery): discard (§3.8)
    }
    is.pending.emplace(seq, m.length);
    // Deliver the in-order prefix.
    while (!is.pending.empty() && is.pending.begin()->first == is.nextSeq) {
        const uint32_t len = is.pending.begin()->second;
        is.pending.erase(is.pending.begin());
        is.nextSeq++;
        is.delivered += len;
        if (onRead_) {
            // Synthesize a deterministic payload pattern for the app.
            std::vector<uint8_t> data(len);
            for (uint32_t i = 0; i < len; i++) {
                data[i] = static_cast<uint8_t>((seq + i) & 0xFF);
            }
            onRead_(m.src, sid, data);
        }
    }
}

uint64_t StreamMux::bytesRead(HostId from, uint32_t streamId) const {
    auto it = in_.find({from, streamId});
    return it == in_.end() ? 0 : it->second.delivered;
}

uint64_t StreamMux::bytesWritten(uint32_t streamId) const {
    auto it = out_.find(streamId);
    return it == out_.end() ? 0 : it->second.written;
}

}  // namespace homa
