// Sender side of Homa (§3.2).
//
// Transmits the first `unscheduled` bytes of each message blindly, then
// only granted bytes. Among messages with transmittable bytes the sender
// picks the one with the fewest remaining bytes (SRPT); the NIC pulls
// packets one at a time so this ordering is re-evaluated per packet, which
// models the paper's 2-full-packets NIC queue cap (§4). The ordering lives
// in an incremental SrptIndex (src/sched/) kept in sync with sendability,
// so each pull costs O(log n) instead of a scan of every message.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>

#include "core/homa_context.h"
#include "sched/srpt_index.h"
#include "transport/message.h"

namespace homa {

class HomaSender {
public:
    explicit HomaSender(HomaContext& ctx) : ctx_(ctx) {}

    void sendMessage(const Message& m);
    void handleGrant(const Packet& p);

    /// Receiver asked for a retransmission. Replies BUSY when this message
    /// is not what SRPT would send now (§3.7 / Figure 3).
    void handleResend(const Packet& p);

    /// NIC pull: next DATA packet by SRPT, or nullopt.
    std::optional<Packet> pullPacket();

    size_t activeMessages() const { return out_.size(); }
    bool knowsMessage(MsgId id) const {
        return out_.count(id) != 0 || lingering_.count(id) != 0;
    }
    int64_t untransmittedBytes() const;

private:
    struct OutMessage {
        Message msg;
        int64_t unschedLimit = 0;   // blind-transmit boundary
        int64_t nextOffset = 0;     // next fresh byte
        int64_t grantedTo = 0;      // may transmit fresh bytes below this
        int schedPriority = 0;      // logical level from the latest GRANT
        std::deque<std::pair<uint32_t, uint32_t>> resends;
        Time lingerUntil = 0;
        Time lastSend = 0;          // last time a DATA packet left

        int64_t remaining() const {
            return static_cast<int64_t>(msg.length) - nextOffset;
        }
        bool sendable() const {
            return !resends.empty() ||
                   nextOffset < std::min<int64_t>(grantedTo, msg.length);
        }
        bool fullySent() const {
            return resends.empty() && nextOffset >= msg.length;
        }
    };

    Packet makeDataPacket(OutMessage& om, uint32_t offset, uint32_t len,
                          bool retransmit) const;
    /// Re-sync `om`'s membership/key in the sendable index after any state
    /// change that can flip sendable() or change remaining().
    void syncSendable(const OutMessage& om);
    void scheduleReap();

    HomaContext& ctx_;
    // In-progress messages only; fully sent messages move to lingering_
    // (kept to answer RESENDs) and come back only if a retransmission is
    // requested.
    std::map<MsgId, OutMessage> out_;
    std::map<MsgId, OutMessage> lingering_;
    // SRPT order over the sendable subset of out_, keyed by remaining().
    SrptIndex<MsgId> sendable_;
    bool reapScheduled_ = false;
};

}  // namespace homa
