// Receiver side of Homa: grant scheduling, overcommitment, priorities.
//
// The receiver is the brain of the protocol (§3.3-§3.5). On every DATA
// arrival it recomputes the active set — the `overcommitDegree` incomplete
// messages with the fewest remaining bytes — keeps RTTbytes granted but
// unreceived for each, and assigns each active message its own scheduled
// priority level, using the *lowest* available levels so that a newly
// arriving shorter message can preempt via a higher level (Figure 5).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_set>
#include <vector>

#include "core/homa_context.h"
#include "sim/event_loop.h"
#include "transport/message.h"

namespace homa {

class HomaReceiver {
public:
    using DeliverFn =
        std::function<void(const Message&, const DeliveryInfo&)>;

    HomaReceiver(HomaContext& ctx, DeliverFn deliver);

    void handleData(const Packet& p);
    void handleBusy(const Packet& p);

    /// True when an incomplete inbound message is being denied grants by
    /// the overcommitment limit (Figure 16's "withheld" condition).
    bool hasWithheldWork() const { return withheld_ > 0; }

    size_t incompleteMessages() const { return in_.size(); }
    uint64_t abortedMessages() const { return aborted_; }
    uint64_t resendsSent() const { return resendsSent_; }

private:
    struct InMessage {
        Message meta;
        Reassembly reasm;
        int64_t grantedTo = 0;
        int lastGrantPriority = -1;  // last scheduled level announced
        Time lastActivity = 0;
        int resends = 0;
        DeliveryInfo acc;

        InMessage(Message m, uint32_t len) : meta(m), reasm(len) {}
        int64_t remaining() const {
            return static_cast<int64_t>(reasm.messageLength()) -
                   reasm.receivedBytes();
        }
    };

    void updateGrants();
    void checkTimeouts();
    bool recentlyCompleted(MsgId id) const;
    void noteCompleted(MsgId id);

    HomaContext& ctx_;
    DeliverFn deliver_;
    std::map<MsgId, InMessage> in_;
    int withheld_ = 0;
    uint64_t aborted_ = 0;
    uint64_t resendsSent_ = 0;

    // Duplicate suppression after completion (retransmitted tails).
    std::unordered_set<MsgId> completedSet_;
    std::deque<MsgId> completedFifo_;

    Timer timeoutScan_;
};

}  // namespace homa
