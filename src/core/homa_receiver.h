// Receiver side of Homa: grant scheduling, overcommitment, priorities.
//
// The receiver is the brain of the protocol (§3.3-§3.5), but the brain's
// decision logic lives in src/sched/: a pluggable GrantScheduler tracks the
// incomplete inbound messages incrementally and, after every delta, names
// the active set — which messages to keep RTTbytes granted-but-unreceived
// and at which scheduled priority level (Figure 5). This file owns the
// per-message reassembly/grant state, turns scheduler decisions into GRANT
// packets (skipping no-ops), and runs the timeout/RESEND/abort machinery
// (§3.7).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/homa_context.h"
#include "sched/grant_scheduler.h"
#include "sim/event_loop.h"
#include "transport/message.h"

namespace homa {

class HomaReceiver {
public:
    using DeliverFn =
        std::function<void(const Message&, const DeliveryInfo&)>;

    HomaReceiver(HomaContext& ctx, DeliverFn deliver);

    void handleData(const Packet& p);
    void handleBusy(const Packet& p);

    /// True when an incomplete inbound message is being denied grants by
    /// the overcommitment limit (Figure 16's "withheld" condition).
    bool hasWithheldWork() const { return sched_->withheld() > 0; }

    size_t incompleteMessages() const { return in_.size(); }
    uint64_t abortedMessages() const { return aborted_; }
    uint64_t resendsSent() const { return resendsSent_; }
    const GrantScheduler& scheduler() const { return *sched_; }

private:
    struct InMessage {
        Message meta;
        Reassembly reasm;
        int64_t grantedTo = 0;
        int lastGrantPriority = -1;  // last scheduled level announced
        Time lastActivity = 0;
        int resends = 0;
        DeliveryInfo acc;

        InMessage(Message m, uint32_t len) : meta(m), reasm(len) {}
        int64_t remaining() const {
            return static_cast<int64_t>(reasm.messageLength()) -
                   reasm.receivedBytes();
        }
        bool fullyGranted() const {
            return grantedTo >= static_cast<int64_t>(reasm.messageLength());
        }
    };

    /// Ask the scheduler for the post-delta active set and issue the
    /// implied GRANTs (no-ops suppressed). O(log n + degree) per call.
    void applyGrantDecision();
    void issueGrant(InMessage& im, int64_t window, int logical);
    void checkTimeouts();
    bool recentlyCompleted(MsgId id) const;
    void noteCompleted(MsgId id);

    HomaContext& ctx_;
    DeliverFn deliver_;
    std::map<MsgId, InMessage> in_;
    std::unique_ptr<GrantScheduler> sched_;
    std::vector<ActiveGrant> grantBuf_;  // reused per decision
    uint64_t aborted_ = 0;
    uint64_t resendsSent_ = 0;

    // Duplicate suppression after completion (retransmitted tails).
    std::unordered_set<MsgId> completedSet_;
    std::deque<MsgId> completedFifo_;

    Timer timeoutScan_;
};

}  // namespace homa
