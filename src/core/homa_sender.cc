#include "core/homa_sender.h"

#include <cassert>

namespace homa {

void HomaSender::sendMessage(const Message& m) {
    assert(m.length > 0);
    OutMessage om;
    om.msg = m;
    om.unschedLimit = ctx_.unschedLimitFor(m.length, m.flags);
    om.grantedTo = om.unschedLimit;
    // Before any grant arrives, scheduled bytes (if the receiver grants
    // past the unscheduled region) go at the lowest level; the receiver's
    // first GRANT overrides this.
    om.schedPriority = 0;
    auto it = out_.emplace(m.id, std::move(om)).first;
    syncSendable(it->second);
    ctx_.host.kickNic();
}

void HomaSender::syncSendable(const OutMessage& om) {
    if (om.sendable()) {
        sendable_.upsert(om.msg.id, om.remaining());
    } else {
        sendable_.erase(om.msg.id);
    }
}

void HomaSender::handleGrant(const Packet& p) {
    auto it = out_.find(p.msg);
    if (it == out_.end()) return;  // stale grant for a finished message
    OutMessage& om = it->second;
    om.grantedTo = std::max<int64_t>(om.grantedTo, p.grantOffset);
    om.schedPriority = p.grantPriority;
    syncSendable(om);
    ctx_.host.kickNic();
}

void HomaSender::handleResend(const Packet& p) {
    auto it = out_.find(p.msg);
    if (it == out_.end()) {
        // Fully-sent message: revive it from the linger table so the
        // retransmission flows through the normal SRPT path.
        auto lit = lingering_.find(p.msg);
        if (lit == lingering_.end()) return;
        it = out_.emplace(p.msg, std::move(lit->second)).first;
        lingering_.erase(lit);
    }
    OutMessage& om = it->second;

    // A RESEND also acts as a grant for any not-yet-sent bytes it covers
    // (it proves the receiver wants them, e.g. after a lost GRANT).
    const int64_t end = static_cast<int64_t>(p.offset) + p.length;
    om.grantedTo = std::max(om.grantedTo, std::min<int64_t>(end, om.msg.length));

    // Always answer BUSY first (Figure 3): it travels at the highest
    // priority, so even when the actual data is starved at a low priority
    // level behind other inbound traffic, the receiver learns the sender
    // is alive and does not escalate to an abort.
    Packet busy;
    busy.type = PacketType::Busy;
    busy.dst = om.msg.dst;
    busy.msg = om.msg.id;
    busy.priority = ctx_.controlPriority();
    ctx_.host.pushPacket(busy);

    // If this message is still actively transmitting — it has sendable
    // bytes, or data left here very recently — the "missing" bytes are
    // almost certainly in flight or queued behind other messages, not
    // lost; the BUSY alone is the right answer (no duplicate spraying).
    const Time now = ctx_.host.loop().now();
    const bool activelySending =
        om.sendable() || (now - om.lastSend) < ctx_.cfg.resendTimeout / 2;
    if (!activelySending) {
        // Retransmit only what was already sent; fresh bytes flow normally.
        const int64_t resendEnd = std::min<int64_t>(end, om.nextOffset);
        if (static_cast<int64_t>(p.offset) < resendEnd) {
            om.resends.emplace_back(p.offset,
                                    static_cast<uint32_t>(resendEnd - p.offset));
        }
    }
    syncSendable(om);
    ctx_.host.kickNic();
}

Packet HomaSender::makeDataPacket(OutMessage& om, uint32_t offset, uint32_t len,
                                  bool retransmit) const {
    Packet p;
    p.type = PacketType::Data;
    p.dst = om.msg.dst;
    p.msg = om.msg.id;
    p.created = om.msg.created;
    p.offset = offset;
    p.length = len;
    p.messageLength = om.msg.length;
    p.flags = om.msg.flags;
    if (retransmit) p.setFlag(kFlagRetransmit);
    if (offset + len >= om.msg.length) p.setFlag(kFlagLast);

    const bool unscheduled = offset < om.unschedLimit;
    const int logical = unscheduled
                            ? ctx_.prio.unschedPriorityFor(om.msg.length)
                            : om.schedPriority;
    p.priority = ctx_.wirePriority(logical);
    p.remaining = static_cast<uint32_t>(
        std::max<int64_t>(0, om.msg.length - offset - len));
    return p;
}

std::optional<Packet> HomaSender::pullPacket() {
    const auto best = sendable_.best();
    if (!best) return std::nullopt;
    OutMessage* om = &out_.at(*best);

    Packet p;
    if (!om->resends.empty()) {
        auto [off, len] = om->resends.front();
        const uint32_t chunk = std::min<uint32_t>(len, kMaxPayload);
        p = makeDataPacket(*om, off, chunk, /*retransmit=*/true);
        if (chunk == len) {
            om->resends.pop_front();
        } else {
            om->resends.front() = {off + chunk, len - chunk};
        }
    } else {
        const int64_t limit = std::min<int64_t>(om->grantedTo, om->msg.length);
        const uint32_t chunk =
            static_cast<uint32_t>(std::min<int64_t>(kMaxPayload,
                                                    limit - om->nextOffset));
        p = makeDataPacket(*om, static_cast<uint32_t>(om->nextOffset), chunk,
                           /*retransmit=*/false);
        om->nextOffset += chunk;
    }

    om->lastSend = ctx_.host.loop().now();
    if (om->fullySent()) {
        // Keep state briefly so RESENDs can still be answered (§3.8), then
        // reap. Lingering state is bounded by the linger window.
        om->lingerUntil = ctx_.host.loop().now() + ctx_.cfg.senderLinger;
        const MsgId id = om->msg.id;
        sendable_.erase(id);
        auto it = out_.find(id);
        lingering_.emplace(id, std::move(it->second));
        out_.erase(it);
        scheduleReap();
    } else {
        syncSendable(*om);
    }
    return p;
}

void HomaSender::scheduleReap() {
    if (reapScheduled_) return;
    reapScheduled_ = true;
    ctx_.host.loop().after(ctx_.cfg.senderLinger, [this] {
        reapScheduled_ = false;
        const Time now = ctx_.host.loop().now();
        for (auto it = lingering_.begin(); it != lingering_.end();) {
            if (it->second.lingerUntil <= now) {
                it = lingering_.erase(it);
            } else {
                ++it;
            }
        }
        if (!lingering_.empty()) scheduleReap();
    });
}

int64_t HomaSender::untransmittedBytes() const {
    int64_t total = 0;
    for (const auto& [id, om] : out_) total += std::max<int64_t>(0, om.remaining());
    return total;
}

}  // namespace homa
