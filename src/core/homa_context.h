// Shared state between the Homa sender and receiver halves.
#pragma once

#include <algorithm>
#include <memory>

#include "core/homa_config.h"
#include "sched/priority_allocator.h"
#include "transport/transport.h"

namespace homa {

struct HomaContext {
    HostServices& host;
    HomaConfig cfg;
    int64_t rttBytes;            // resolved (config override or topology)
    PriorityAllocator prio;      // current unsched/sched split + cutoffs

    /// Map a logical priority (0..logicalPriorities-1) onto the wire
    /// levels. The HomaPx experiments collapse adjacent levels; the
    /// internal algorithm is untouched (§5.1).
    uint8_t wirePriority(int logical) const {
        const int levels = cfg.logicalPriorities;
        const int x = std::clamp(cfg.wirePriorities, 1, kPriorityLevels);
        const int mapped = logical * x / levels;
        return static_cast<uint8_t>(std::clamp(mapped, 0, x - 1));
    }

    uint8_t controlPriority() const {
        // "All packet types except DATA are sent at highest priority."
        return static_cast<uint8_t>(
            std::clamp(cfg.wirePriorities, 1, kPriorityLevels) - 1);
    }

    /// Blind-transmit limit for a message (smaller for incast-marked ones).
    int64_t unschedLimitFor(uint32_t length, uint16_t flags) const {
        int64_t limit = cfg.unschedBytesLimit > 0 ? cfg.unschedBytesLimit
                                                  : rttBytes;
        if (cfg.incastControl && (flags & kFlagIncastMark) != 0) {
            limit = std::min(limit, cfg.incastUnschedBytes);
        }
        return std::min<int64_t>(limit, length);
    }
};

}  // namespace homa
