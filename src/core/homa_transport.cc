#include "core/homa_transport.h"

#include <cassert>

namespace homa {

HomaTransport::HomaTransport(HostServices& host, HomaConfig cfg,
                             int64_t rttBytes,
                             const PriorityAllocation* precomputed)
    : ctx_{host, cfg, rttBytes, PriorityAllocator{}},
      meter_(),
      onlineAllocation_(precomputed == nullptr) {
    assert(rttBytes > 0);
    if (precomputed != nullptr) {
        ctx_.prio.setAllocation(*precomputed);
    } else {
        // Conservative startup: one unscheduled level (the top), the rest
        // scheduled; the meter refines this as traffic is observed.
        PriorityAllocation& alloc = ctx_.prio.allocation();
        alloc.logicalLevels = cfg.logicalPriorities;
        alloc.unschedLevels = 1;
        alloc.schedLevels = cfg.logicalPriorities - 1;
    }
    sender_ = std::make_unique<HomaSender>(ctx_);
    receiver_ = std::make_unique<HomaReceiver>(
        ctx_, [this](const Message& m, const DeliveryInfo& info) {
            if (onlineAllocation_) {
                meter_.recordMessage(m.length);
                if (++messagesSinceRealloc_ >= 256) {
                    messagesSinceRealloc_ = 0;
                    ctx_.prio.setAllocation(meter_.allocate(
                        ctx_.cfg, ctx_.rttBytes, ctx_.prio.allocation()));
                }
            }
            notifyDelivered(m, info);
        });
}

void HomaTransport::sendMessage(const Message& m) { sender_->sendMessage(m); }

void HomaTransport::handlePacket(const Packet& p) {
    switch (p.type) {
        case PacketType::Data:
            receiver_->handleData(p);
            break;
        case PacketType::Grant:
            sender_->handleGrant(p);
            break;
        case PacketType::Resend:
            if (sender_->knowsMessage(p.msg)) {
                sender_->handleResend(p);
            } else if (onUnknownResend_) {
                onUnknownResend_(p);
            }
            break;
        case PacketType::Busy:
            receiver_->handleBusy(p);
            break;
        default:
            break;  // other types belong to other protocols
    }
}

std::optional<Packet> HomaTransport::pullPacket() { return sender_->pullPacket(); }

TransportFactory HomaTransport::factory(HomaConfig cfg, const NetworkConfig& net,
                                        const SizeDistribution* workload) {
    int64_t rtt = cfg.rttBytes;
    if (rtt <= 0) rtt = NetworkTimings::compute(net).rttBytes;
    // Compute the workload-derived allocation once, not per host (the
    // sampling pass is expensive and identical everywhere).
    std::shared_ptr<PriorityAllocation> alloc;
    if (workload != nullptr) {
        alloc = std::make_shared<PriorityAllocation>(
            computeAllocation(*workload, cfg, rtt));
    }
    return [cfg, rtt, alloc](HostServices& host) {
        return std::make_unique<HomaTransport>(host, cfg, rtt, alloc.get());
    };
}

}  // namespace homa
