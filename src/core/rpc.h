// Connectionless RPC on top of a message transport (§3.1, §3.6-§3.8).
//
// An RPC is a request message and a response message sharing an identifier:
// responseId = requestId | kRpcResponseBit. No connection state: a server
// forgets an RPC as soon as the response is handed to its transport (the
// transport's short linger window answers retransmissions). Lost responses
// are recovered by the client RESENDing the response; a server that no
// longer knows the RPC RESENDs the request, which re-executes the
// operation — at-least-once semantics, observable via Stats::reexecutions.
#pragma once

#include <functional>
#include <map>

#include "core/homa_transport.h"
#include "sim/network.h"

namespace homa {

using RpcId = MsgId;
constexpr MsgId kRpcResponseBit = 1ull << 63;

inline bool isResponseId(MsgId id) { return (id & kRpcResponseBit) != 0; }
inline MsgId requestIdOf(MsgId id) { return id & ~kRpcResponseBit; }

class RpcEndpoint {
public:
    /// Called on the client when a response arrives: (rpc, request size,
    /// response size, elapsed since call()).
    using ResponseCallback =
        std::function<void(RpcId, uint32_t, uint32_t, Duration)>;

    /// Server-side handler: request message -> response size in bytes.
    using Handler = std::function<uint32_t(const Message& request)>;

    /// Deferred server-side handler for operations that cannot answer at
    /// request-delivery time (fan-out/fan-in: a node answers its parent
    /// only after its own child RPCs return). The handler receives a
    /// responder it must eventually invoke exactly once with the response
    /// size; until then the RPC has no response for retransmissions to
    /// recover, so a client RESEND re-delivers the request and re-invokes
    /// the handler (at-least-once, as for plain handlers — §3.7).
    using Responder = std::function<void(uint32_t responseSize)>;
    using AsyncHandler =
        std::function<void(const Message& request, Responder respond)>;

    struct Stats {
        uint64_t issued = 0;
        uint64_t completed = 0;
        uint64_t retries = 0;        // client-side RESENDs for responses
        uint64_t reexecutions = 0;   // server handler ran again for same RPC
        uint64_t aborted = 0;        // client gave up after max retries
        uint64_t cancelled = 0;      // caller cancelled (hedge lost the race)
    };

    /// Installs itself as the delivery callback of host `self`'s transport.
    RpcEndpoint(Network& net, HostId self);

    /// Default handler echoes the request (response size == request size).
    void setHandler(Handler h) { handler_ = std::move(h); }

    /// Install a deferred handler instead (takes precedence over the
    /// plain handler while set).
    void setAsyncHandler(AsyncHandler h) { asyncHandler_ = std::move(h); }

    RpcId call(HostId server, uint32_t requestSize, ResponseCallback cb);

    /// Abandon a pending RPC without waiting for its response: the loser
    /// of a hedged request race. Drops the callback and stops the retry
    /// scan for this id; a response that still arrives is ignored like
    /// any duplicate (the server may well have executed the operation —
    /// at-least-once semantics are unchanged). Returns false when the id
    /// is no longer pending (already answered, aborted, or cancelled).
    bool cancel(RpcId id);

    size_t outstanding() const { return pending_.size(); }
    const Stats& stats() const { return stats_; }

    /// Incast control knobs (§3.6); mirrored from HomaConfig defaults.
    void setIncastThreshold(int t) { incastThreshold_ = t; }

private:
    struct PendingRpc {
        HostId server;
        uint32_t requestSize;
        Time issued;
        ResponseCallback cb;
        int retries = 0;
    };

    void onDelivered(const Message& m, const DeliveryInfo& info);
    void onUnknownResend(const Packet& p);
    void checkTimeouts();
    void respond(const Message& request, uint32_t responseSize);

    Network& net_;
    HostId self_;
    Handler handler_;
    AsyncHandler asyncHandler_;
    std::map<RpcId, PendingRpc> pending_;
    // Recently answered requests: responseId -> response size, so a lost
    // response can be regenerated without re-execution while fresh.
    std::map<MsgId, uint32_t> answered_;
    Stats stats_;
    int incastThreshold_ = 25;
    Duration responseTimeout_ = milliseconds(4);
    int maxRetries_ = 5;
    Timer scan_;
};

}  // namespace homa
